// Package grouting is a Go implementation of gRouting — the smart query
// routing framework for distributed graph querying with decoupled storage
// described in:
//
//	Arijit Khan, Gustavo Segovia, Donald Kossmann.
//	"On Smart Query Routing: For Distributed Graph Querying with
//	Decoupled Storage." USENIX ATC 2018 (arXiv:1611.03959).
//
// The system decouples query processing from graph storage: the graph
// lives in a sharded in-memory key-value store (hash partitioned, as
// RAMCloud does), a tier of stateless query processors answers h-hop
// traversal queries out of per-processor LRU caches, and a query router in
// front decides — per query — which processor should handle it. The smart
// routing strategies (landmark and graph-embedding based) send successive
// queries on nearby nodes to the same processor, so the overlapping parts
// of their h-hop neighbourhoods are already cached there.
//
// # Quick start
//
// Every deployment is driven through the transport-agnostic [Client]
// interface — Execute, ExecuteBatch and the pipelined ExecuteStream, all
// context-aware. The in-process virtual-time engine is one transport:
//
//	g := grouting.GenerateDataset(grouting.WebGraph, 0.1, 42)
//	sys, err := grouting.New(g, grouting.WithPolicy(grouting.PolicyEmbed))
//	if err != nil { ... }
//	c, err := grouting.NewLocalClient(sys)
//	res, err := c.Execute(ctx, grouting.Query{
//		Type: grouting.NeighborAgg, Node: 123, Hops: 2, Dir: grouting.Out,
//	})
//
// # Same code, two transports
//
// A real networked deployment serves the identical interface, so client
// code is written once against [Client] and runs unmodified on either:
//
//	func countNeighbours(ctx context.Context, c grouting.Client, n grouting.NodeID) (int, error) {
//		res, err := c.Execute(ctx, grouting.Query{
//			Type: grouting.NeighborAgg, Node: n, Hops: 2, Dir: grouting.Out,
//		})
//		return res.Count, err
//	}
//
//	local, _ := grouting.NewLocalClient(sys)                  // virtual-time engine
//	remote, _ := grouting.Dial(ctx, "10.0.0.7:7200")          // TCP cluster (ServeStorage/
//	                                                          // ServeProcessor/ServeRouter)
//
// Both transports validate queries the same way (Query.Validate) and
// classify failures into the same typed errors — [ErrBadQuery],
// [ErrUnknownNode], [ErrUnavailable] — and both honour context
// cancellation and deadlines (the networked router forwards the caller's
// deadline to the processors).
//
// # Routing strategies are an extension point
//
// The routing policies are backed by an open registry: implement
// [Strategy] (Pick/Observe/DecisionUnits, optionally [DistanceAware] and
// [StatsObserver]), register it with [RegisterStrategy], and the returned
// [Policy] works everywhere a built-in does — [WithPolicy]/[WithStrategy]
// locally, [RouterSpec] over TCP, the daemons' -policy flags, and
// [ParsePolicy]/[Policy.String] round-trips. [PolicyAdaptive] ships
// through this API: hash routing until the observed cache hit rate shows
// locality worth exploiting, then a hot-swap to the embedding scheme.
//
// # Observability
//
// Every Client reports [Client.Stats]: one snapshot structure
// (per-processor placement counts, cache hit/miss/eviction counters,
// routing-decision-time and queue-depth percentiles) identical across
// transports; groutingd additionally serves it over HTTP (/statsz and
// expvar) when started with -http.
//
// For measurement, [System.RunWorkload] executes a whole workload on the
// virtual clock and reports the paper's figures (throughput, response
// time, cache hit rates). Sessions ([System.NewSession]) remain as the
// lower-level interactive handle the Client wraps.
//
// The package re-exports the building blocks (graph model, workload
// generator, cluster profiles, routing policies) so downstream users never
// import internal packages. Experiment harnesses that regenerate every
// table and figure of the paper live under cmd/grouting-bench.
package grouting

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/simnet"
)

// Graph model (Section 2.1): a labelled directed multigraph storing both
// in- and out-edges per node.
type (
	// Graph is the in-memory labelled directed graph.
	Graph = graph.Graph
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Edge is one adjacency entry (endpoint + edge label).
	Edge = graph.Edge
	// Direction selects out-edges, in-edges or both for a traversal.
	Direction = graph.Direction
)

// Traversal directions.
const (
	Out  = graph.Out
	In   = graph.In
	Both = graph.Both
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// NewGraphWithCapacity returns an empty graph with storage pre-allocated
// for n nodes.
func NewGraphWithCapacity(n int) *Graph { return graph.NewWithCapacity(n) }

// Queries (Section 2.2): the three online h-hop traversal kinds.
type (
	// Query is one online request.
	Query = query.Query
	// Result is a query answer.
	Result = query.Result
	// QueryType enumerates the query kinds.
	QueryType = query.Type
	// WorkloadSpec configures the hotspot workload generator (Section 4.1).
	WorkloadSpec = query.WorkloadSpec
	// Pattern is the subgraph template of a PatternMatch query:
	// variables (optionally labelled, optionally anchored at concrete
	// graph nodes) connected by directed, optionally edge-labelled
	// template edges. Matching counts homomorphisms.
	Pattern = query.Pattern
	// PatternNode is one template variable.
	PatternNode = query.PatternNode
	// PatternEdge is one template edge (From/To index Pattern.Nodes).
	PatternEdge = query.PatternEdge
)

// Query types.
const (
	// NeighborAgg counts (optionally label-filtered) h-hop neighbours.
	NeighborAgg = query.NeighborAgg
	// RandomWalk runs an h-step random walk with restart.
	RandomWalk = query.RandomWalk
	// Reachability answers h-hop reachability via bidirectional BFS.
	Reachability = query.Reachability
	// PatternMatch counts the homomorphic matches of a multi-anchor
	// subgraph template; each anchor's candidate edges are gathered on the
	// processor owning it and joined at the router.
	PatternMatch = query.PatternMatch
	// BoundedReach answers multi-source reachability by partial
	// evaluation: every per-partition subtask expands at most VisitBudget
	// nodes, and the router relaunches boundary frontiers in later waves.
	BoundedReach = query.BoundedReach
	// KNearest returns the K nodes within Hops (undirected) of Node that
	// are nearest to it under the system's embedding: candidate
	// generation runs on the anchor's processor, the exact re-rank at the
	// coordinator. Needs an embedding — PolicyEmbed or WithEmbedProvider.
	KNearest = query.KNearest
)

// MaxKNearest bounds Query.K; Result.Nearest holds that many slots.
const MaxKNearest = query.MaxKNearest

// HotspotWorkload generates the paper's workload: hotspot regions with
// consecutive queries on nearby nodes (Section 4.1).
func HotspotWorkload(g *Graph, spec WorkloadSpec) []Query { return query.Hotspot(g, spec) }

// MixedTypes is the full query mix including the multi-anchor kinds; set
// it as WorkloadSpec.Types to generate pattern-matching and bounded-
// reachability queries alongside the classic traversals.
var MixedTypes = query.MixedTypes

// MixedTypesKNN additionally mixes in KNearest queries — use it on
// systems that hold an embedding (PolicyEmbed or WithEmbedProvider).
var MixedTypesKNN = query.MixedTypesKNN

// Answer computes a query's reference result directly on the in-memory
// graph (the oracle the distributed system must agree with). KNearest
// answers additionally depend on the embedding: use AnswerKNN.
func Answer(g *Graph, q Query) Result { return query.Answer(g, q) }

// AnswerKNN computes a KNearest query's reference result directly on the
// in-memory graph and a coordinate source (System.Embedding, or any
// materialised provider) — the oracle both transports must agree with.
func AnswerKNN(g *Graph, coords CoordSource, q Query) Result { return query.AnswerKNN(g, coords, q) }

// System assembly.
type (
	// Config describes a deployment (tier sizes, routing policy, cache
	// capacity, smart-routing parameters). The zero value uses the paper's
	// defaults: 7 processors, 4 storage servers, Infiniband, embed
	// routing, 4 GB caches, 96 landmarks, 10 dimensions.
	Config = core.Config
	// System is an assembled decoupled deployment over one graph.
	System = core.System
	// Session executes queries interactively with persistent caches.
	Session = core.Session
	// Report summarises a workload run (throughput, response time, cache
	// hits/misses — the quantities the paper's figures plot).
	Report = core.Report
	// Policy selects the routing scheme.
	Policy = core.Policy
	// NetworkProfile is a cluster cost model (latency, bandwidth,
	// per-operation costs) used by the virtual-time engine.
	NetworkProfile = simnet.Profile
)

// Routing policies (Sections 3.3 and 3.4).
const (
	// PolicyNoCache disables processor caches (the no-cache control).
	PolicyNoCache = core.PolicyNoCache
	// PolicyNextReady dispatches to the least-loaded processor.
	PolicyNextReady = core.PolicyNextReady
	// PolicyHash dispatches by node-id modulo hashing (Eq 1).
	PolicyHash = core.PolicyHash
	// PolicyLandmark routes by landmark regions (Section 3.4.1).
	PolicyLandmark = core.PolicyLandmark
	// PolicyEmbed routes by graph embedding (Section 3.4.2) — the paper's
	// best performer and the default.
	PolicyEmbed = core.PolicyEmbed
	// PolicyStableHash routes by rendezvous hashing over the active
	// processor set: the elastic-topology hash baseline, which remaps only
	// ~1/N of the node space when the tier scales instead of reshuffling
	// everything the way modulo hashing does.
	PolicyStableHash = core.PolicyStableHash
)

// NewSystem loads g into the storage tier, runs the preprocessing the
// configured policy needs (landmark BFS, embedding), and returns a
// ready-to-query system.
func NewSystem(g *Graph, cfg Config) (*System, error) { return core.NewSystem(g, cfg) }

// Infiniband returns the 40 Gbps RDMA cluster profile (the paper's primary
// deployment).
func Infiniband() NetworkProfile { return simnet.Infiniband() }

// Ethernet returns the 10 GbE profile (gRouting-E and the coupled
// baselines).
func Ethernet() NetworkProfile { return simnet.Ethernet() }

// Dataset names one of the paper's four graph datasets (Table 1), which
// this package regenerates synthetically at any scale.
type Dataset = gen.Dataset

// The four dataset presets of Table 1.
const (
	WebGraph    = gen.WebGraph
	Friendster  = gen.Friendster
	Memetracker = gen.Memetracker
	Freebase    = gen.Freebase
)

// GenerateDataset builds the named synthetic dataset at the given scale
// (1.0 is the default benchmark size; the paper's originals are listed in
// Table 1 of the README). Identical (dataset, scale, seed) triples produce
// identical graphs. It panics on an unknown dataset name; use gen.Preset
// for error handling.
func GenerateDataset(d Dataset, scale float64, seed int64) *Graph {
	g, err := gen.Preset(d, scale, seed)
	if err != nil {
		panic("grouting: " + err.Error())
	}
	return g
}
