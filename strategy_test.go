package grouting_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	grouting "repro"
)

// bandStrategy is the test's custom routing strategy, registered through
// the public API exactly as a downstream user would: it partitions the
// node-id space into contiguous bands, one per processor. It is
// deterministic and load-independent, so both transports must produce
// identical per-processor assignment counts for the same query stream.
type bandStrategy struct {
	bandSize uint64
}

func newBandStrategy(res grouting.StrategyResources) (grouting.Strategy, error) {
	if res.Graph == nil {
		return nil, fmt.Errorf("band strategy needs the graph to size its bands")
	}
	n := uint64(res.Graph.MaxNodeID())
	band := (n + uint64(res.Procs) - 1) / uint64(res.Procs)
	if band == 0 {
		band = 1
	}
	return &bandStrategy{bandSize: band}, nil
}

func (s *bandStrategy) Name() string { return "bands" }

func (s *bandStrategy) Pick(q grouting.Query, loads []int) int {
	p := int(uint64(q.Node) / s.bandSize)
	if p >= len(loads) {
		p = len(loads) - 1
	}
	return p
}

func (s *bandStrategy) Observe(grouting.Query, int) {}
func (s *bandStrategy) DecisionUnits() int          { return 1 }

var policyBands = grouting.RegisterStrategy("bands", newBandStrategy)

// TestCustomStrategyTwoTransports is the redesign's acceptance test: a
// strategy registered via the public API routes queries on BOTH transports
// with identical results and identical per-processor assignment counts,
// and Client.Stats() reports non-zero cache and routing counters on each.
func TestCustomStrategyTwoTransports(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 9, QueriesPerHotspot: 5, R: 2, H: 2, Seed: 3,
	})
	ctx := context.Background()

	sys, err := grouting.New(g,
		grouting.WithProcessors(3),
		grouting.WithStorageServers(2),
		grouting.WithStrategy("bands"),
		grouting.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Config().Policy; got != policyBands {
		t.Fatalf("WithStrategy resolved to %v, want %v", got, policyBands)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	remote := startTCPCluster(t, g, 2, 3, policyBands)

	clients := []struct {
		name string
		c    grouting.Client
	}{{"virtual-time", local}, {"tcp", remote}}

	var results [2][]grouting.Result
	var snaps [2]grouting.Stats
	for i, tc := range clients {
		results[i] = make([]grouting.Result, len(qs))
		for _, q := range qs {
			res, err := tc.c.Execute(ctx, q)
			if err != nil {
				t.Fatalf("%s: query %d: %v", tc.name, q.ID, err)
			}
			if want := grouting.Answer(g, q); res != want {
				t.Fatalf("%s: query %d: got %+v, want %+v", tc.name, q.ID, res, want)
			}
			results[i][q.ID] = res
		}
		snap, err := tc.c.Stats(ctx)
		if err != nil {
			t.Fatalf("%s: stats: %v", tc.name, err)
		}
		snaps[i] = snap
	}

	for id := range qs {
		if results[0][id] != results[1][id] {
			t.Fatalf("query %d differs between transports: %+v vs %+v", id, results[0][id], results[1][id])
		}
	}

	for i, tc := range clients {
		snap := snaps[i]
		if snap.Policy != "bands" {
			t.Fatalf("%s: policy = %q, want bands", tc.name, snap.Policy)
		}
		if snap.Strategy != "bands" {
			t.Fatalf("%s: strategy = %q, want bands", tc.name, snap.Strategy)
		}
		if snap.Queries != int64(len(qs)) {
			t.Fatalf("%s: queries = %d, want %d", tc.name, snap.Queries, len(qs))
		}
		if snap.Cache.Touches() == 0 {
			t.Fatalf("%s: cache counters all zero", tc.name)
		}
		if snap.RoutingNanos.Count != int64(len(qs)) {
			t.Fatalf("%s: routing decisions = %d, want %d", tc.name, snap.RoutingNanos.Count, len(qs))
		}
	}

	// The strategy is deterministic and load-independent, so the
	// per-processor assignment counts must agree exactly across transports.
	if len(snaps[0].PerProc) != len(snaps[1].PerProc) {
		t.Fatalf("per-proc lengths differ: %d vs %d", len(snaps[0].PerProc), len(snaps[1].PerProc))
	}
	var spread int
	for p := range snaps[0].PerProc {
		a0, a1 := snaps[0].PerProc[p].Assigned, snaps[1].PerProc[p].Assigned
		if a0 != a1 {
			t.Fatalf("processor %d assigned %d locally vs %d over tcp\nlocal: %+v\ntcp: %+v",
				p, a0, a1, snaps[0].PerProc, snaps[1].PerProc)
		}
		if a0 > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("workload landed on %d processor(s); band routing should spread it", spread)
	}
}

// TestAdaptiveStrategySwaps drives the shipped adaptive hybrid on the
// virtual-time transport with a high-locality stream (repeats on one
// hotspot) and watches it hot-swap from hash to embed once the observed
// hit rate crosses the threshold, with every answer still exact.
func TestAdaptiveStrategySwaps(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	sys, err := grouting.New(g,
		grouting.WithProcessors(3),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyAdaptive),
		grouting.WithLandmarks(8),
		grouting.WithMinSeparation(1),
		grouting.WithDimensions(4),
		grouting.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	snap, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Policy != "adaptive" || snap.Strategy != "adaptive[hash]" {
		t.Fatalf("fresh adaptive session: policy=%q strategy=%q", snap.Policy, snap.Strategy)
	}

	// Repeating one node's 2-hop query makes every access after the first
	// a cache hit, driving the observed hit rate towards 1.
	q := grouting.Query{Type: grouting.NeighborAgg, Node: 10, Hops: 2, Dir: grouting.Out}
	want := grouting.Answer(g, q)
	swapped := false
	for i := 0; i < 400 && !swapped; i++ {
		res, err := cl.Execute(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res != want {
			t.Fatalf("iteration %d: got %+v, want %+v", i, res, want)
		}
		snap, err = cl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		swapped = snap.Strategy == "adaptive[embed]"
	}
	if !swapped {
		t.Fatalf("adaptive never swapped: %d touches at %.2f hit rate",
			snap.Cache.Touches(), snap.Cache.HitRate())
	}
	if snap.Cache.Touches() < grouting.AdaptiveMinTouches {
		t.Fatalf("swapped before the minimum sample: %d touches", snap.Cache.Touches())
	}
	// Post-swap the system keeps answering exactly (embed leg live).
	for i := 0; i < 10; i++ {
		res, err := cl.Execute(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res != want {
			t.Fatalf("post-swap: got %+v, want %+v", res, want)
		}
	}
}

// TestAdaptiveStrategyTCP runs the adaptive policy on a loopback TCP
// cluster: preprocessing resolves through the registry (the registration
// declares it needs the embedding), the hot-swap fires on the piggybacked
// cache feedback, and answers stay oracle-exact throughout.
func TestAdaptiveStrategyTCP(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	if !grouting.PolicyAdaptive.NeedsLandmarks() {
		t.Fatal("adaptive registration lost its preprocessing requirement")
	}
	cl := startTCPCluster(t, g, 2, 2, grouting.PolicyAdaptive)
	ctx := context.Background()

	q := grouting.Query{Type: grouting.NeighborAgg, Node: 10, Hops: 2, Dir: grouting.Out}
	want := grouting.Answer(g, q)
	var snap grouting.Stats
	swapped := false
	for i := 0; i < 400 && !swapped; i++ {
		res, err := cl.Execute(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res != want {
			t.Fatalf("iteration %d: got %+v, want %+v", i, res, want)
		}
		var serr error
		snap, serr = cl.Stats(ctx)
		if serr != nil {
			t.Fatal(serr)
		}
		swapped = snap.Strategy == "adaptive[embed]"
	}
	if !swapped {
		t.Fatalf("adaptive never swapped over tcp: %d touches at %.2f hit rate",
			snap.Cache.Touches(), snap.Cache.HitRate())
	}
	if snap.Transport != "tcp" || snap.Policy != "adaptive" {
		t.Fatalf("snapshot header = transport=%q policy=%q", snap.Transport, snap.Policy)
	}
}

// TestParsePolicyRoundTrip: ParsePolicy is an exact inverse of
// Policy.String over every registered name — built-ins and public
// registrations alike — and unknown names produce the documented error
// listing the registry.
func TestParsePolicyRoundTrip(t *testing.T) {
	names := grouting.Strategies()
	if len(names) < 6 { // 5 built-ins + at least the shipped adaptive
		t.Fatalf("registry too small: %v", names)
	}
	for _, name := range names {
		p, err := grouting.ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if got := p.String(); got != name {
			t.Fatalf("round-trip broke: ParsePolicy(%q).String() = %q", name, got)
		}
	}
	// The built-in constants round-trip to themselves.
	for _, p := range []grouting.Policy{
		grouting.PolicyNoCache, grouting.PolicyNextReady, grouting.PolicyHash,
		grouting.PolicyLandmark, grouting.PolicyEmbed, grouting.PolicyAdaptive, policyBands,
	} {
		back, err := grouting.ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%v.String()): %v", p, err)
		}
		if back != p {
			t.Fatalf("constant round-trip broke: %v -> %q -> %v", p, p.String(), back)
		}
	}

	_, err := grouting.ParsePolicy("bogus")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown policy "bogus"`) {
		t.Fatalf("error %q does not name the bad policy", msg)
	}
	for _, name := range names {
		if !strings.Contains(msg, name) {
			t.Fatalf("error %q does not list registered name %q", msg, name)
		}
	}
}

// TestWithStrategyUnknownName: an unregistered name surfaces as a
// constructor error naming the registry.
func TestWithStrategyUnknownName(t *testing.T) {
	g := grouting.GenerateDataset(grouting.Memetracker, 0.02, 3)
	_, err := grouting.New(g, grouting.WithStrategy("nope"))
	if err == nil {
		t.Fatal("unknown strategy name accepted")
	}
	if !strings.Contains(err.Error(), `"nope"`) || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("error %q should name the bad strategy and list the registry", err)
	}
}

// TestRegisterStrategyPanics: misregistration is a loud programming error.
func TestRegisterStrategyPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		reg  func()
	}{
		{"duplicate", func() { grouting.RegisterStrategy("bands", newBandStrategy) }},
		{"empty", func() { grouting.RegisterStrategy("", newBandStrategy) }},
		{"nil-ctor", func() { grouting.RegisterStrategy("nilctor", nil) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s registration did not panic", tc.name)
				}
			}()
			tc.reg()
		}()
	}
}

// TestStrategyRegistryListing: the registry listing carries the
// preprocessing requirements the daemons need to know about.
func TestStrategyRegistryListing(t *testing.T) {
	infos := grouting.StrategyRegistry()
	byName := map[string]grouting.StrategyInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	if in := byName["hash"]; in.NeedsLandmarks || in.NeedsEmbedding || in.Policy != grouting.PolicyHash {
		t.Fatalf("hash info = %+v", in)
	}
	if in := byName["landmark"]; !in.NeedsLandmarks || in.NeedsEmbedding {
		t.Fatalf("landmark info = %+v", in)
	}
	if in := byName["embed"]; !in.NeedsLandmarks || !in.NeedsEmbedding {
		t.Fatalf("embed info = %+v", in)
	}
	if in := byName["adaptive"]; !in.NeedsEmbedding || in.Policy != grouting.PolicyAdaptive {
		t.Fatalf("adaptive info = %+v", in)
	}
	if in := byName["bands"]; in.NeedsLandmarks || in.Policy != policyBands {
		t.Fatalf("bands info = %+v", in)
	}
}
