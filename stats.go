package grouting

import "repro/internal/metrics"

// The observability surface: every Client reports the same structured
// snapshot — per-processor assignment/execution/steal/diversion counts,
// cache hit/miss/eviction counters and routing-decision/queue-depth
// percentiles — whether it drives the in-process virtual-time engine or a
// networked deployment (where the snapshot travels in one OpStats round
// trip). groutingd additionally serves the same data over HTTP on
// /statsz and expvar's /debug/vars when started with -http.
type (
	// Stats is a system-wide snapshot of runtime counters.
	Stats = metrics.Snapshot
	// ProcStats is one processor's share of a Stats snapshot.
	ProcStats = metrics.ProcCounters
	// CacheCounters is a cache's activity counters (also what
	// StatsObserver strategies receive as their feedback signal).
	CacheCounters = metrics.CacheCounters
	// StatsSummary is a compact percentile digest (routing decision time,
	// queue depth).
	StatsSummary = metrics.Summary
	// EpochEvent is one topology transition in a Stats snapshot's bounded
	// epoch log: what changed (tier-tagged "proc" or "storage") and how
	// many queries had to move because of it.
	EpochEvent = metrics.EpochEvent
	// StorageStats is one storage member's share of a Stats snapshot:
	// membership state plus shard counters, including the per-replica
	// failover health signal.
	StorageStats = metrics.StorageCounters
)
