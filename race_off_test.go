//go:build !race

package grouting_test

// raceEnabled reports whether the race detector instruments this build —
// allocation measurements are meaningless under it.
const raceEnabled = false
