package grouting_test

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	grouting "repro"
)

// elasticTCPCluster is a loopback deployment whose pieces stay reachable
// so the test can grow and shrink the processing tier at runtime.
type elasticTCPCluster struct {
	client       grouting.Client
	router       *grouting.RouterServer
	storageAddrs []string
}

func startElasticTCPCluster(t testing.TB, g *grouting.Graph, nProcs int, policy grouting.Policy) *elasticTCPCluster {
	t.Helper()
	ctx := context.Background()
	var storageAddrs []string
	for i := 0; i < 2; i++ {
		ss, err := grouting.ServeStorage("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ss.Close() })
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	if err := grouting.LoadStorage(ctx, g, storageAddrs); err != nil {
		t.Fatal(err)
	}
	var procAddrs []string
	for i := 0; i < nProcs; i++ {
		ps, err := grouting.ServeProcessor("127.0.0.1:0", storageAddrs, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ps.Close() })
		procAddrs = append(procAddrs, ps.Addr())
	}
	rs, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
		Processors: procAddrs,
		Policy:     policy,
		Graph:      g,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	cl, err := grouting.Dial(ctx, rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return &elasticTCPCluster{client: cl, router: rs, storageAddrs: storageAddrs}
}

// joinProcessor starts a fresh processor and registers it with the
// running router, returning its assigned slot.
func (c *elasticTCPCluster) joinProcessor(t testing.TB) (*grouting.ProcessorServer, int) {
	t.Helper()
	ps, err := grouting.ServeProcessor("127.0.0.1:0", c.storageAddrs, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	slot, err := ps.Register(context.Background(), c.router.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	return ps, slot
}

// TestElasticityCrossTransport is the PR's acceptance test: scale the
// processing tier from 4 to 6 mid-workload on the virtual-time engine AND
// over TCP. Both transports must finish with exact (hence identical)
// results, the joined processors must receive work within the epoch that
// admitted them, and the stable-remap hash policy must move only ~1/N of
// a sampled key set between the two epochs.
func TestElasticityCrossTransport(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 20, QueriesPerHotspot: 10, R: 2, H: 2, Seed: 3,
	})
	half := len(qs) / 2
	ctx := context.Background()

	sys, err := grouting.New(g,
		grouting.WithProcessors(4),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyStableHash),
		grouting.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	tcp := startElasticTCPCluster(t, g, 4, grouting.PolicyStableHash)

	scaleOut := map[string]func() []int{
		"virtual-time": func() []int {
			return []int{sys.AddProcessor(), sys.AddProcessor()}
		},
		"tcp": func() []int {
			_, s1 := tcp.joinProcessor(t)
			_, s2 := tcp.joinProcessor(t)
			return []int{s1, s2}
		},
	}
	clients := map[string]grouting.Client{"virtual-time": local, "tcp": tcp.client}

	results := map[string][]grouting.Result{}
	for name, cl := range clients {
		res := make([]grouting.Result, len(qs))
		for _, q := range qs[:half] {
			r, err := cl.Execute(ctx, q)
			if err != nil {
				t.Fatalf("%s: pre-scale query %d: %v", name, q.ID, err)
			}
			res[q.ID] = r
		}
		pre, err := cl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		joined := scaleOut[name]()
		for _, q := range qs[half:] {
			r, err := cl.Execute(ctx, q)
			if err != nil {
				t.Fatalf("%s: post-scale query %d: %v", name, q.ID, err)
			}
			res[q.ID] = r
		}
		snap, err := cl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Epoch <= pre.Epoch {
			t.Fatalf("%s: epoch did not advance on scale-out (%d -> %d)", name, pre.Epoch, snap.Epoch)
		}
		if snap.Processors != 6 || len(snap.PerProc) != 6 {
			t.Fatalf("%s: snapshot sees %d processors, want 6", name, snap.Processors)
		}
		// The joined processors received work within the same epoch that
		// admitted them (no further transitions happened).
		for _, slot := range joined {
			if snap.PerProc[slot].Assigned == 0 {
				t.Fatalf("%s: joined slot %d assigned no work in epoch %d: %+v",
					name, slot, snap.Epoch, snap.PerProc[slot])
			}
		}
		results[name] = res
	}

	// Both transports agree with the oracle — and therefore each other —
	// across the epoch change.
	for name, res := range results {
		for _, q := range qs {
			if want := grouting.Answer(g, q); res[q.ID] != want {
				t.Fatalf("%s: query %d: got %+v, want %+v", name, q.ID, res[q.ID], want)
			}
		}
	}
	for id := range qs {
		if results["virtual-time"][id] != results["tcp"][id] {
			t.Fatalf("query %d differs between transports", id)
		}
	}
}

// TestStableRemapBoundPublicAPI pins the stable-remap acceptance bound on
// the public strategy path: growing the active set 4→6 moves at most ~1/N
// (here 2/6 ≈ 33%, asserted ≤ 45% with sampling slack) of a sampled key
// set, far below the ~83% a modulo remap shows on the same sample.
func TestStableRemapBoundPublicAPI(t *testing.T) {
	s, err := grouting.NewStrategy(grouting.PolicyStableHash, grouting.StrategyResources{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	ta, ok := s.(grouting.TopologyAware)
	if !ok {
		t.Fatal("stablehash is not topology-aware")
	}
	const keys = 4000
	loads := make([]int, 6)
	before := make([]int, keys)
	for k := 0; k < keys; k++ {
		before[k] = s.Pick(grouting.Query{Node: grouting.NodeID(k)}, loads[:4])
	}
	six := grouting.TopologyView{Epoch: 2, Members: make([]grouting.TopologyMember, 6)}
	for i := range six.Members {
		six.Members[i] = grouting.TopologyMember{Slot: i, Status: grouting.ProcActive}
	}
	ta.SetTopology(six)
	moved, naiveMoved := 0, 0
	for k := 0; k < keys; k++ {
		if s.Pick(grouting.Query{Node: grouting.NodeID(k)}, loads) != before[k] {
			moved++
		}
		if k%4 != k%6 {
			naiveMoved++
		}
	}
	if frac := float64(moved) / keys; frac > 0.45 {
		t.Fatalf("stablehash moved %.1f%% of sampled keys on 4->6, want <= 45%%", 100*frac)
	}
	if frac := float64(naiveMoved) / keys; float64(moved)/keys >= frac {
		t.Fatalf("stablehash (%d) does not beat modulo (%d) on the same sample", moved, naiveMoved)
	}
}

// checkSnapshotConsistent asserts a snapshot is internally consistent with
// the single epoch it claims: the active-member count matches the header,
// and rows exist for every slot of that epoch.
func checkSnapshotConsistent(t *testing.T, name string, snap grouting.Stats) {
	t.Helper()
	active := 0
	for _, p := range snap.PerProc {
		if p.Status == "active" {
			active++
		}
	}
	if active != snap.Processors {
		t.Fatalf("%s: snapshot mixes epochs: header says %d active, rows say %d (epoch %d)",
			name, snap.Processors, active, snap.Epoch)
	}
}

// TestConcurrentExecuteStatsLocalTransition hammers a local client with
// concurrent Execute and Stats while the topology transitions underneath
// (run under -race in CI): no query is lost or double-counted, every
// snapshot is internally consistent, and epochs only move forward.
func TestConcurrentExecuteStatsLocalTransition(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 15, QueriesPerHotspot: 10, R: 2, H: 2, Seed: 3,
	})
	sys, err := grouting.New(g,
		grouting.WithProcessors(3),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyStableHash),
		grouting.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	runConcurrentTransitions(t, "local", cl, qs,
		func() int { return sys.AddProcessor() },
		func(slot int) error { return sys.DrainProcessor(slot) },
	)
}

// TestConcurrentExecuteStatsTCPTransition is the same hammering over TCP:
// processors join and drain while clients execute and poll stats.
func TestConcurrentExecuteStatsTCPTransition(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 15, QueriesPerHotspot: 10, R: 2, H: 2, Seed: 3,
	})
	tcp := startElasticTCPCluster(t, g, 3, grouting.PolicyStableHash)
	var procs sync.Map // slot -> *grouting.ProcessorServer
	runConcurrentTransitions(t, "tcp", tcp.client, qs,
		func() int {
			ps, slot := tcp.joinProcessor(t)
			procs.Store(slot, ps)
			return slot
		},
		func(slot int) error {
			v, _ := procs.Load(slot)
			return v.(*grouting.ProcessorServer).Deregister(context.Background())
		},
	)
}

// runConcurrentTransitions drives exec/stats/transition goroutines against
// one client and checks the final accounting.
func runConcurrentTransitions(t *testing.T, name string, cl grouting.Client, qs []grouting.Query,
	add func() int, drain func(int) error) {
	t.Helper()
	ctx := context.Background()
	var executed atomic.Int64
	var wg sync.WaitGroup
	execDone := make(chan struct{})

	wg.Add(1)
	go func() { // executor
		defer wg.Done()
		defer close(execDone)
		for _, q := range qs {
			if _, err := cl.Execute(ctx, q); err != nil {
				t.Errorf("%s: execute: %v", name, err)
				return
			}
			executed.Add(1)
		}
	}()
	wg.Add(1)
	go func() { // stats poller
		defer wg.Done()
		var lastEpoch uint64
		for {
			select {
			case <-execDone:
				return
			default:
			}
			snap, err := cl.Stats(ctx)
			if err != nil {
				t.Errorf("%s: stats: %v", name, err)
				return
			}
			if snap.Epoch < lastEpoch {
				t.Errorf("%s: epoch went backwards: %d -> %d", name, lastEpoch, snap.Epoch)
				return
			}
			lastEpoch = snap.Epoch
			checkSnapshotConsistent(t, name, snap)
			// Brief pause: a stats poll costs real round trips on tcp; an
			// unthrottled poller starves the executor on small CI boxes.
			time.Sleep(time.Millisecond)
		}
	}()
	// waitFor parks until the executor has passed n queries (or finished).
	waitFor := func(n int64) {
		for executed.Load() < n {
			select {
			case <-execDone:
				return
			default:
				runtime.Gosched()
			}
		}
	}
	wg.Add(1)
	go func() { // topology churn: two joins, then drain one of them
		defer wg.Done()
		waitFor(int64(len(qs)) / 4)
		s1 := add()
		waitFor(int64(len(qs)) / 2)
		add()
		waitFor(int64(3*len(qs)) / 4)
		if err := drain(s1); err != nil {
			t.Errorf("%s: drain: %v", name, err)
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	snap, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshotConsistent(t, name, snap)
	var sumExecuted int64
	for _, p := range snap.PerProc {
		sumExecuted += p.Executed
	}
	if sumExecuted != int64(len(qs)) {
		t.Fatalf("%s: per-proc executed sums to %d, want %d (lost or double-counted)", name, sumExecuted, len(qs))
	}
	if snap.Queries != int64(len(qs)) {
		t.Fatalf("%s: Queries = %d, want %d", name, snap.Queries, len(qs))
	}
}
