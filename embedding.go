package grouting

import (
	"context"
	"time"

	"repro/internal/embed"
	"repro/internal/query"
)

// Pluggable embedding providers. The routing strategies and the KNearest
// query class consume node coordinates through the Embedder interface;
// three implementations ship built in — the paper's learned-means scheme
// (the default, built automatically by embedding policies), a
// precomputed-file provider (OpenEmbeddingFile), and an in-process
// external-service stub (NewEmbedService) — and any user type satisfying
// the interface plugs in the same way, via WithEmbedProvider locally or
// RouterSpec.EmbedProvider over TCP. The conformance suite under
// internal/embed/embedtest pins the contract every provider must meet.
type (
	// Embedder is the pluggable coordinate source: batched, positional,
	// deterministic, context-aware. A node the provider does not cover
	// gets a nil row, not an error.
	Embedder = embed.Embedder
	// Embedding is the dense materialised coordinate table the router
	// ranks and routes with.
	Embedding = embed.Embedding
	// EmbedServiceFunc computes coordinate rows for a batch of nodes —
	// the callable behind an external-service provider.
	EmbedServiceFunc = embed.EmbedFunc
	// FileProvider serves a precomputed embedding artifact.
	FileProvider = embed.FileProvider
	// EmbedService is the in-process external-service provider stub:
	// retry with doubling backoff, typed unavailability on exhaustion.
	EmbedService = embed.Service
	// EmbedServiceOption customises an EmbedService.
	EmbedServiceOption = embed.ServiceOption
	// CoordSource supplies coordinates for KNearest evaluation;
	// *Embedding satisfies it.
	CoordSource = query.CoordSource
)

// ErrEmbedUnavailable marks a provider that cannot serve coordinates:
// degraded external service, exhausted retries, missing artifact.
// Distinct from the transport-level ErrUnavailable — a KNearest query on
// a system whose provider failed answers an error wrapping the latter.
var ErrEmbedUnavailable = embed.ErrUnavailable

// OpenEmbeddingFile loads a precomputed embedding artifact written by
// WriteEmbeddingFile and returns it as a provider (versioned binary
// format, CRC-verified).
func OpenEmbeddingFile(path string) (*FileProvider, error) { return embed.OpenFileProvider(path) }

// NewFileProvider wraps an already-materialised embedding as a provider —
// the way both transports of one deployment share identical coordinates.
func NewFileProvider(e *Embedding) *FileProvider { return embed.NewFileProvider(e) }

// WriteEmbeddingFile persists an embedding as a precomputed artifact
// loadable by OpenEmbeddingFile and groutingd -embed-file.
func WriteEmbeddingFile(path string, e *Embedding) error { return embed.WriteEmbeddingFile(path, e) }

// NewEmbedService wraps an external embedding computation as a provider
// with retry/backoff semantics: transient failures are retried with
// doubling backoff, and exhaustion surfaces as ErrEmbedUnavailable —
// which KNearest queries translate into the typed ErrUnavailable.
func NewEmbedService(name string, dims int, fn EmbedServiceFunc, opts ...EmbedServiceOption) *EmbedService {
	return embed.NewService(name, dims, fn, opts...)
}

// WithEmbedRetries sets how many times an EmbedService retries a failed
// call before reporting ErrEmbedUnavailable (default 2).
func WithEmbedRetries(n int) EmbedServiceOption { return embed.WithRetries(n) }

// WithEmbedBackoff sets an EmbedService's initial retry backoff, doubled
// per attempt (default 10ms).
func WithEmbedBackoff(d time.Duration) EmbedServiceOption { return embed.WithBackoff(d) }

// MaterializeEmbedding evaluates a provider over every node of g and
// returns the dense coordinate table — what a system does internally at
// construction, exposed for writing artifacts and for oracles.
func MaterializeEmbedding(ctx context.Context, p Embedder, g *Graph) (*Embedding, error) {
	return embed.Materialize(ctx, p, g)
}
