package grouting_test

import (
	"context"
	"errors"
	"testing"
	"time"

	grouting "repro"
)

// startTCPCluster assembles a real loopback deployment through the public
// API: storage shards, processors, a router, and a dialled Client.
func startTCPCluster(t testing.TB, g *grouting.Graph, nStorage, nProcs int, policy grouting.Policy) grouting.Client {
	t.Helper()
	ctx := context.Background()
	var storageAddrs []string
	for i := 0; i < nStorage; i++ {
		ss, err := grouting.ServeStorage("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ss.Close() })
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	if err := grouting.LoadStorage(ctx, g, storageAddrs); err != nil {
		t.Fatal(err)
	}
	var procAddrs []string
	for i := 0; i < nProcs; i++ {
		ps, err := grouting.ServeProcessor("127.0.0.1:0", storageAddrs, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ps.Close() })
		procAddrs = append(procAddrs, ps.Addr())
	}
	rs, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
		Processors: procAddrs,
		Policy:     policy,
		Graph:      g,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	cl, err := grouting.Dial(ctx, rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// runWorkload is THE transport-agnostic client function: it exercises all
// three submission paths (per-query Execute, one ExecuteBatch round trip,
// pipelined ExecuteStream) against whatever Client it is handed, and
// returns the results indexed by query ID. The same code runs unmodified
// against the virtual-time system and a real TCP cluster.
func runWorkload(ctx context.Context, c grouting.Client, qs []grouting.Query) ([]grouting.Result, error) {
	results := make([]grouting.Result, len(qs))
	third := len(qs) / 3

	for _, q := range qs[:third] {
		res, err := c.Execute(ctx, q)
		if err != nil {
			return nil, err
		}
		results[q.ID] = res
	}

	batch := qs[third : 2*third]
	bres, err := c.ExecuteBatch(ctx, batch)
	if err != nil {
		return nil, err
	}
	for i, q := range batch {
		results[q.ID] = bres[i]
	}

	rest := qs[2*third:]
	in := make(chan grouting.Query)
	go func() {
		defer close(in)
		for _, q := range rest {
			select {
			case in <- q:
			case <-ctx.Done():
				return
			}
		}
	}()
	for o := range c.ExecuteStream(ctx, in) {
		if o.Err != nil {
			return nil, o.Err
		}
		results[o.Query.ID] = o.Result
	}
	return results, ctx.Err()
}

// TestClientTwoTransports is the redesign's acceptance test: the same
// client function runs unmodified against the in-process virtual-time
// system and a real loopback TCP cluster, producing results identical to
// each other and to the oracle, with the same typed errors from both.
func TestClientTwoTransports(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 9, QueriesPerHotspot: 5, R: 2, H: 2, Seed: 3,
	})
	ctx := context.Background()

	sys, err := grouting.New(g,
		grouting.WithProcessors(3),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyLandmark),
		grouting.WithLandmarks(8),
		grouting.WithMinSeparation(1),
		grouting.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	remote := startTCPCluster(t, g, 2, 3, grouting.PolicyLandmark)

	clients := []struct {
		name string
		c    grouting.Client
	}{{"virtual-time", local}, {"tcp", remote}}

	var perClient [2][]grouting.Result
	for i, tc := range clients {
		results, err := runWorkload(ctx, tc.c, qs)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, q := range qs {
			if want := grouting.Answer(g, q); results[q.ID] != want {
				t.Fatalf("%s: query %d (%v on %d): got %+v, want %+v",
					tc.name, q.ID, q.Type, q.Node, results[q.ID], want)
			}
		}
		perClient[i] = results
	}
	for id := range qs {
		if perClient[0][id] != perClient[1][id] {
			t.Fatalf("query %d differs between transports: %+v vs %+v",
				id, perClient[0][id], perClient[1][id])
		}
	}

	// Both transports return the same typed errors.
	for _, tc := range clients {
		bad := grouting.Query{Type: grouting.NeighborAgg, Node: 1, Hops: -2, Dir: grouting.Out}
		if _, err := tc.c.Execute(ctx, bad); !errors.Is(err, grouting.ErrBadQuery) {
			t.Fatalf("%s: bad query error = %v, want ErrBadQuery", tc.name, err)
		}
		unknown := grouting.Query{Type: grouting.NeighborAgg, Node: 1 << 30, Hops: 1, Dir: grouting.Out}
		if _, err := tc.c.Execute(ctx, unknown); !errors.Is(err, grouting.ErrUnknownNode) {
			t.Fatalf("%s: unknown node error = %v, want ErrUnknownNode", tc.name, err)
		}
		cancelled, cancel := context.WithCancel(ctx)
		cancel()
		ok := grouting.Query{Type: grouting.NeighborAgg, Node: 10, Hops: 1, Dir: grouting.Out}
		if _, err := tc.c.Execute(cancelled, ok); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: cancelled execute error = %v, want context.Canceled", tc.name, err)
		}
	}
}

// TestClientStreamCancellation drives ExecuteStream on both transports
// with an endless query feed and cancels mid-stream: every outcome
// delivered before the cancel must match the oracle, outcomes racing the
// cancel must carry a context error, and the stream must close promptly
// even though the input channel never does. Run under -race this also
// checks the concurrent client paths.
func TestClientStreamCancellation(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 40, QueriesPerHotspot: 10, R: 2, H: 2, Seed: 5,
	})

	sys, err := grouting.New(g,
		grouting.WithProcessors(2),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyHash),
		grouting.WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	remote := startTCPCluster(t, g, 2, 2, grouting.PolicyHash)

	for _, tc := range []struct {
		name string
		c    grouting.Client
	}{{"virtual-time", local}, {"tcp", remote}} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			in := make(chan grouting.Query)
			go func() {
				for i := 0; ; i++ {
					select {
					case in <- qs[i%len(qs)]:
					case <-ctx.Done():
						return
					}
				}
			}()
			out := tc.c.ExecuteStream(ctx, in)

			for seen := 0; seen < 25; seen++ {
				o, ok := <-out
				if !ok {
					t.Fatal("stream closed before cancellation")
				}
				if o.Err != nil {
					t.Fatalf("pre-cancel outcome error: %v", o.Err)
				}
				if want := grouting.Answer(g, o.Query); o.Result != want {
					t.Fatalf("streamed query %d: got %+v, want %+v", o.Query.ID, o.Result, want)
				}
			}
			cancel()

			closed := make(chan struct{})
			go func() {
				defer close(closed)
				for o := range out {
					if o.Err == nil {
						// In-flight queries may still complete; completed
						// results must stay correct.
						if want := grouting.Answer(g, o.Query); o.Result != want {
							t.Errorf("post-cancel query %d: got %+v, want %+v", o.Query.ID, o.Result, want)
						}
					} else if !errors.Is(o.Err, context.Canceled) && !errors.Is(o.Err, grouting.ErrUnavailable) {
						t.Errorf("post-cancel outcome error = %v, want context.Canceled or ErrUnavailable", o.Err)
					}
				}
			}()
			select {
			case <-closed:
			case <-time.After(10 * time.Second):
				t.Fatal("stream did not close after cancellation")
			}
		})
	}
}

// TestConfigOptionsEquivalence checks the functional options assemble the
// same Config as the struct literal they sugar.
func TestConfigOptionsEquivalence(t *testing.T) {
	got := grouting.NewConfig(
		grouting.WithProcessors(5),
		grouting.WithStorageServers(3),
		grouting.WithPolicy(grouting.PolicyLandmark),
		grouting.WithNetwork(grouting.Ethernet()),
		grouting.WithCacheBytes(1<<20),
		grouting.WithLandmarks(12),
		grouting.WithMinSeparation(2),
		grouting.WithDimensions(4),
		grouting.WithSeed(9),
		grouting.WithLoadFactor(10),
		grouting.WithAlpha(0.25),
		grouting.WithoutStealing(),
		grouting.WithPrepWorkers(2),
	)
	want := grouting.Config{
		Processors:      5,
		StorageServers:  3,
		Policy:          grouting.PolicyLandmark,
		Network:         grouting.Ethernet(),
		CacheBytes:      1 << 20,
		Landmarks:       12,
		MinSeparation:   2,
		Dimensions:      4,
		Seed:            9,
		LoadFactor:      10,
		Alpha:           0.25,
		DisableStealing: true,
		PrepWorkers:     2,
	}
	if got.Processors != want.Processors || got.StorageServers != want.StorageServers ||
		got.Policy != want.Policy || got.Network.Name != want.Network.Name ||
		got.CacheBytes != want.CacheBytes || got.Landmarks != want.Landmarks ||
		got.MinSeparation != want.MinSeparation || got.Dimensions != want.Dimensions ||
		got.Seed != want.Seed || got.LoadFactor != want.LoadFactor ||
		got.Alpha != want.Alpha || got.DisableStealing != want.DisableStealing ||
		got.PrepWorkers != want.PrepWorkers {
		t.Fatalf("options config %+v != struct config %+v", got, want)
	}
}

// TestLocalClientClose checks closed clients fail with ErrUnavailable.
func TestLocalClientClose(t *testing.T) {
	g := grouting.GenerateDataset(grouting.Memetracker, 0.02, 3)
	sys, err := grouting.New(g,
		grouting.WithProcessors(2),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyHash),
	)
	if err != nil {
		t.Fatal(err)
	}
	c, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	q := grouting.Query{Type: grouting.NeighborAgg, Node: 1, Hops: 1, Dir: grouting.Out}
	if _, err := c.Execute(context.Background(), q); !errors.Is(err, grouting.ErrUnavailable) {
		t.Fatalf("closed client error = %v, want ErrUnavailable", err)
	}
}
