package grouting_test

import (
	"context"
	"errors"
	"testing"
	"time"

	grouting "repro"
)

// TestClientTwoTransportsMultiAnchor is the multi-anchor acceptance test:
// a pinned mixed workload — the classic traversals plus PatternMatch and
// BoundedReach — runs unmodified against the virtual-time system and a
// real loopback TCP cluster, producing results identical to each other
// and to the oracle.
func TestClientTwoTransportsMultiAnchor(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 9, QueriesPerHotspot: 5, R: 2, H: 2,
		Types: grouting.MixedTypes, VisitBudget: 8, Seed: 3,
	})
	var patterns, reaches int
	for _, q := range qs {
		switch q.Type {
		case grouting.PatternMatch:
			patterns++
		case grouting.BoundedReach:
			reaches++
		}
	}
	if patterns == 0 || reaches == 0 {
		t.Fatalf("workload has %d patterns, %d bounded reaches; want both > 0", patterns, reaches)
	}
	ctx := context.Background()

	sys, err := grouting.New(g,
		grouting.WithProcessors(3),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyEmbed),
		grouting.WithDimensions(4),
		grouting.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	remote := startTCPCluster(t, g, 2, 3, grouting.PolicyEmbed)

	clients := []struct {
		name string
		c    grouting.Client
	}{{"virtual-time", local}, {"tcp", remote}}

	var perClient [2][]grouting.Result
	for i, tc := range clients {
		results, err := runWorkload(ctx, tc.c, qs)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, q := range qs {
			if want := grouting.Answer(g, q); results[q.ID] != want {
				t.Fatalf("%s: query %d (%v): got %+v, want %+v",
					tc.name, q.ID, q.Type, results[q.ID], want)
			}
		}
		perClient[i] = results
	}
	for id := range qs {
		if perClient[0][id] != perClient[1][id] {
			t.Fatalf("query %d differs between transports: %+v vs %+v",
				id, perClient[0][id], perClient[1][id])
		}
	}

	// A hand-built template through the public re-exports (Pattern,
	// PatternNode, PatternEdge): both transports agree with the oracle.
	anchor := g.Nodes()[1]
	adhoc := grouting.Query{
		Type: grouting.PatternMatch,
		Node: anchor,
		Pattern: &grouting.Pattern{
			Nodes: []grouting.PatternNode{{Anchor: anchor}, {}},
			Edges: []grouting.PatternEdge{{From: 0, To: 1}},
		},
		Dir: grouting.Out,
	}
	for _, tc := range clients {
		got, err := tc.c.Execute(ctx, adhoc)
		if err != nil {
			t.Fatalf("%s: ad-hoc pattern: %v", tc.name, err)
		}
		if want := grouting.Answer(g, adhoc); got != want {
			t.Fatalf("%s: ad-hoc pattern: got %+v, want %+v", tc.name, got, want)
		}
	}

	// Multi-anchor admission: a query anchored at a node outside the graph
	// is the same typed error on both transports' classic path analogue.
	bad := grouting.Query{
		Type: grouting.BoundedReach, Node: 10,
		Anchors: []grouting.NodeID{10}, Target: 0,
		Hops: 2, VisitBudget: 4, Dir: grouting.Out,
	}
	for _, tc := range clients {
		if _, err := tc.c.Execute(ctx, bad); !errors.Is(err, grouting.ErrBadQuery) {
			t.Fatalf("%s: target-less bounded reach error = %v, want ErrBadQuery", tc.name, err)
		}
	}
}

// TestClientStreamCancellationMultiAnchor is the satellite's mid-stream
// cancellation case: an endless mixed multi-anchor feed through
// ExecuteStream is cancelled mid-flight on both transports. Outcomes
// delivered before the cancel must match the oracle, racing outcomes must
// carry a typed context/transport error, and the stream must close. Under
// -race this exercises the concurrent wave-cancellation paths.
func TestClientStreamCancellationMultiAnchor(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 40, QueriesPerHotspot: 10, R: 2, H: 2,
		Types:       []grouting.QueryType{grouting.PatternMatch, grouting.BoundedReach},
		VisitBudget: 4, Seed: 5,
	})

	sys, err := grouting.New(g,
		grouting.WithProcessors(2),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyHash),
		grouting.WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	remote := startTCPCluster(t, g, 2, 2, grouting.PolicyHash)

	for _, tc := range []struct {
		name string
		c    grouting.Client
	}{{"virtual-time", local}, {"tcp", remote}} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			in := make(chan grouting.Query)
			go func() {
				for i := 0; ; i++ {
					select {
					case in <- qs[i%len(qs)]:
					case <-ctx.Done():
						return
					}
				}
			}()
			out := tc.c.ExecuteStream(ctx, in)

			for seen := 0; seen < 25; seen++ {
				o, ok := <-out
				if !ok {
					t.Fatal("stream closed before cancellation")
				}
				if o.Err != nil {
					t.Fatalf("pre-cancel outcome error: %v", o.Err)
				}
				if want := grouting.Answer(g, o.Query); o.Result != want {
					t.Fatalf("streamed query %d (%v): got %+v, want %+v",
						o.Query.ID, o.Query.Type, o.Result, want)
				}
			}
			cancel()

			closed := make(chan struct{})
			go func() {
				defer close(closed)
				for o := range out {
					if o.Err == nil {
						if want := grouting.Answer(g, o.Query); o.Result != want {
							t.Errorf("post-cancel query %d: got %+v, want %+v", o.Query.ID, o.Result, want)
						}
					} else if !errors.Is(o.Err, context.Canceled) && !errors.Is(o.Err, grouting.ErrUnavailable) {
						t.Errorf("post-cancel outcome error = %v, want context.Canceled or ErrUnavailable", o.Err)
					}
				}
			}()
			select {
			case <-closed:
			case <-time.After(10 * time.Second):
				t.Fatal("stream did not close after cancellation")
			}
		})
	}
}
