package grouting

// The adaptive hybrid strategy — registered through the same public API
// user strategies use, as proof the extension point carries a real scheme.
//
// Rationale: hash routing (Eq 1) costs O(1) per decision and already wins
// when a workload mostly repeats queries on the same nodes. The embedding
// scheme (Section 3.4.2) costs O(P·D) per decision but additionally
// co-routes *nearby* nodes, so it pays off exactly when the workload shows
// cache locality. The hybrid starts on hash and watches the observed cache
// hit rate through the StatsObserver feedback both transports provide;
// once the hit rate crosses a threshold — evidence the workload has the
// locality structure smart routing exploits — it hot-swaps to embed and
// lets the EMA means (Eq 5) take over. This is a first step towards the
// dynamic, workload-driven adaptation of PHD-Store and Peng et al.

// PolicyAdaptive is the adaptive hybrid routing strategy: hash until the
// observed cache hit rate crosses AdaptiveSwapHitRate (over at least
// AdaptiveMinTouches record accesses), then embed.
var PolicyAdaptive = RegisterStrategy("adaptive", newAdaptive, RequireEmbedding())

const (
	// AdaptiveMinTouches is the minimum record accesses before the hybrid
	// trusts the hit rate (too-small samples would swap on noise).
	AdaptiveMinTouches = 256
	// AdaptiveSwapHitRate is the observed hit rate at which the hybrid
	// switches from hash to embed.
	AdaptiveSwapHitRate = 0.5
)

type adaptiveStrategy struct {
	hash    Strategy
	embed   Strategy
	active  Strategy
	swapped bool
}

func newAdaptive(res StrategyResources) (Strategy, error) {
	h, err := NewStrategy(PolicyHash, res)
	if err != nil {
		return nil, err
	}
	e, err := NewStrategy(PolicyEmbed, res)
	if err != nil {
		return nil, err
	}
	return &adaptiveStrategy{hash: h, embed: e, active: h}, nil
}

// Name reports the currently active leg, so a Stats snapshot shows
// whether the swap has happened.
func (s *adaptiveStrategy) Name() string {
	if s.swapped {
		return "adaptive[embed]"
	}
	return "adaptive[hash]"
}

func (s *adaptiveStrategy) Pick(q Query, loads []int) int { return s.active.Pick(q, loads) }

func (s *adaptiveStrategy) Observe(q Query, proc int) { s.active.Observe(q, proc) }

func (s *adaptiveStrategy) DecisionUnits() int { return s.active.DecisionUnits() }

// ObserveStats implements StatsObserver: the hot-swap trigger. Both
// routers call it under their own lock, after each executed query, with
// the system's cumulative cache counters.
func (s *adaptiveStrategy) ObserveStats(c CacheCounters) {
	if s.swapped {
		return
	}
	if c.Touches() >= AdaptiveMinTouches && c.HitRate() >= AdaptiveSwapHitRate {
		s.swapped = true
		s.active = s.embed
	}
}

// SetTopology implements TopologyAware by forwarding the new view to both
// legs, so whichever is active when the tier scales routes correctly (the
// embed leg re-provisions its per-member means; the hash leg is modulo
// over the slot count and relies on the router's diversion).
func (s *adaptiveStrategy) SetTopology(v TopologyView) {
	if ta, ok := s.hash.(TopologyAware); ok {
		ta.SetTopology(v)
	}
	if ta, ok := s.embed.(TopologyAware); ok {
		ta.SetTopology(v)
	}
}
