package grouting

import (
	"repro/internal/router"
	"repro/internal/topology"
)

// Elastic topology: the processing tier is an epoch-versioned membership,
// not a constructor argument. On the virtual-time system the [System]
// methods AddProcessor / DrainProcessor / FailProcessor / ReviveProcessor
// move it (sessions and clients apply the new view atomically at their
// next query, so every query runs under exactly one epoch); on a networked
// deployment processors self-register with [ProcessorServer.Register] and
// leave cleanly with [ProcessorServer.Deregister] (groutingd exposes these
// as -join and graceful SIGTERM shutdown). [Client.Stats] reports the
// current epoch and the per-epoch reassignment counts on both transports.
type (
	// TopologyView is an immutable snapshot of the processing tier at one
	// epoch: slot-indexed members with their lifecycle status. Slots are
	// stable processor ids, assigned at join and never reused.
	TopologyView = topology.View
	// TopologyMember is one processor slot's membership record.
	TopologyMember = topology.Member
	// TopologyStatus is a member's lifecycle state.
	TopologyStatus = topology.Status
	// TopologyAware is optionally implemented by routing strategies that
	// adapt to membership changes: SetTopology fires under the router's
	// lock at construction and on every applied epoch, letting the
	// strategy re-derive its assignments for the new active set (the
	// built-in landmark, embed and stablehash strategies all do).
	TopologyAware = router.TopologyAware
	// TopologyTier tells processor members and storage members apart in
	// mixed renderings (the CLI topology table, the epoch log).
	TopologyTier = topology.Tier
)

// Topology tiers.
const (
	// TierProcessor members are query processors.
	TierProcessor = topology.TierProcessor
	// TierStorage members are storage servers.
	TierStorage = topology.TierStorage
)

// Member lifecycle states.
const (
	// ProcActive members receive new work.
	ProcActive = topology.Active
	// ProcDraining members receive no new work and depart once their
	// pending work finishes.
	ProcDraining = topology.Draining
	// ProcDown members have failed; they may revive.
	ProcDown = topology.Down
	// ProcLeft members are gone for good; their slot is never reused.
	ProcLeft = topology.Left
)

// RendezvousHash picks the destination slot for key by rendezvous
// (highest-random-weight) hashing over slots — the stable-remap primitive
// behind PolicyStableHash, exported for user strategies that want the same
// ~1/N remap property on topology changes. Returns -1 when slots is empty.
func RendezvousHash(key uint64, slots []int) int {
	return topology.Rendezvous(key, slots)
}

// RendezvousHashN appends key's top-r slots by rendezvous score to dst
// (best first; dst may be nil) — the replica-placement primitive behind
// WithStorageReplicas, exported for placement-aware tooling. r is capped
// at 8.
func RendezvousHashN(key uint64, slots []int, r int, dst []int) []int {
	return topology.RendezvousN(key, slots, r, dst)
}
