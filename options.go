package grouting

import (
	"fmt"

	"repro/internal/core"
)

// Option customises a deployment Config. Options compose with the paper's
// defaults: New(g) alone builds the paper's primary setup (7 processors,
// 4 storage servers, Infiniband, embed routing, 4 GB caches).
type Option func(*Config)

// WithPolicy selects the routing scheme.
func WithPolicy(p Policy) Option { return func(c *Config) { c.Policy = p } }

// WithProcessors sets the number of query processors.
func WithProcessors(n int) Option { return func(c *Config) { c.Processors = n } }

// WithStorageServers sets the number of storage servers.
func WithStorageServers(n int) Option { return func(c *Config) { c.StorageServers = n } }

// WithStorageReplicas sets the storage tier's replication factor. With
// >= 2, every node record lives on that many replicas placed by
// rendezvous hashing over the epoch-versioned storage view, reads fail
// over transparently when a replica dies, and the storage tier becomes
// elastic: System.AddStorage / DrainStorage / FailStorage / ReviveStorage
// move the membership live, re-replicating under-replicated records
// before each call returns.
func WithStorageReplicas(r int) Option { return func(c *Config) { c.StorageReplicas = r } }

// WithStorageDir enables WAL + snapshot durability on the storage tier:
// each shard logs every write under its own subdirectory of dir before
// acking it, compacts the log into a snapshot periodically, and a shard
// restarted over the same directory (System.RestartStorage after a
// CrashStorage) recovers warm — every acked write intact — with rejoin
// re-replication reduced to the missed delta.
func WithStorageDir(dir string) Option { return func(c *Config) { c.StorageDir = dir } }

// WithStorageSnapshotEvery sets how many WAL records a durable shard
// accumulates before compacting them into a snapshot (0 = the kvstore
// default). Ignored without WithStorageDir.
func WithStorageSnapshotEvery(n int) Option { return func(c *Config) { c.StorageSnapshotEvery = n } }

// WithAdaptivePlacement enables the workload-adaptive placement subsystem:
// sessions accumulate per-record storage-read heat attributed to the
// reading processor, and a planner migrates hot records toward their
// dominant reader's near storage slot as bounded, versioned
// copy-then-tombstone moves. budgetBytes bounds the bytes migrated per
// planning cycle (<= 0 = unbounded); every > 0 runs one cycle
// automatically after that many queries on a session (0 = only explicit
// Session.PlacementTick calls).
func WithAdaptivePlacement(budgetBytes int64, every int) Option {
	return func(c *Config) {
		c.AdaptivePlacement = true
		c.PlacementBudget = budgetBytes
		c.PlacementEvery = every
	}
}

// WithPlacementMinReads sets the planner's hysteresis floor: a record read
// fewer times than this since the last decay never moves (0 = default).
func WithPlacementMinReads(n int64) Option { return func(c *Config) { c.PlacementMinReads = n } }

// WithStorageAffinity makes storage locality matter to the virtual-time
// cost model: a fetch served by a storage slot other than the processor's
// near slot has its network and service cost multiplied by factor (>= 1;
// 0 or 1 keeps the paper's uniform-cost model). This is the lever adaptive
// placement pulls — moving a hot record to its dominant reader's near slot
// converts far fetches into near ones.
func WithStorageAffinity(factor float64) Option {
	return func(c *Config) { c.StorageAffinity = factor }
}

// WithNetwork sets the cluster cost profile (Infiniband or Ethernet).
func WithNetwork(p NetworkProfile) Option { return func(c *Config) { c.Network = p } }

// WithCacheBytes sets each processor's LRU cache capacity.
func WithCacheBytes(b int64) Option { return func(c *Config) { c.CacheBytes = b } }

// WithLandmarks sets |L|, the landmark count for smart routing.
func WithLandmarks(n int) Option { return func(c *Config) { c.Landmarks = n } }

// WithMinSeparation sets the minimum hop separation between landmarks.
func WithMinSeparation(h int) Option { return func(c *Config) { c.MinSeparation = h } }

// WithDimensions sets the graph-embedding dimensionality.
func WithDimensions(d int) Option { return func(c *Config) { c.Dimensions = d } }

// WithSeed drives every stochastic choice; identical graphs, options and
// seeds produce identical systems.
func WithSeed(s int64) Option { return func(c *Config) { c.Seed = s } }

// WithLoadFactor sets Eq 3/7's load-balancing divisor.
func WithLoadFactor(f float64) Option { return func(c *Config) { c.LoadFactor = f } }

// WithAlpha sets Eq 5's EMA smoothing parameter.
func WithAlpha(a float64) Option { return func(c *Config) { c.Alpha = a } }

// WithoutStealing disables query stealing (Requirement 2).
func WithoutStealing() Option { return func(c *Config) { c.DisableStealing = true } }

// WithPrepWorkers bounds preprocessing parallelism (0 = GOMAXPROCS).
func WithPrepWorkers(n int) Option { return func(c *Config) { c.PrepWorkers = n } }

// WithEmbedProvider plugs a coordinate source (OpenEmbeddingFile,
// NewEmbedService, or any Embedder) into the system in place of the
// built-in learned embedding: it is materialised once at construction and
// then serves both embedding-based routing and KNearest ranking. When the
// provider fails and the policy does not require an embedding, the system
// starts degraded — KNearest queries answer the typed ErrUnavailable.
func WithEmbedProvider(p Embedder) Option { return func(c *Config) { c.EmbedProvider = p } }

// ParsePolicy maps a policy name (as printed by Policy.String and used by
// the daemons' -policy flags) back to the Policy. It resolves through the
// strategy registry, so it is an exact round-trip of Policy.String for
// built-ins and RegisterStrategy additions alike; the unknown-name error
// lists every registered name.
func ParsePolicy(s string) (Policy, error) {
	p, err := core.ParsePolicy(s)
	if err != nil {
		return 0, fmt.Errorf("grouting: %w", err)
	}
	return p, nil
}

// NewConfig assembles a Config from options (zero fields keep the paper's
// defaults, exactly as the plain Config struct does).
func NewConfig(opts ...Option) Config {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// New builds a system from functional options: it loads g into the storage
// tier, runs the preprocessing the configured policy needs, and returns a
// ready-to-query system. NewSystem with a Config struct remains supported;
// New(g, opts...) is sugar over it.
func New(g *Graph, opts ...Option) (*System, error) {
	return NewSystem(g, NewConfig(opts...))
}
