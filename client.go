package grouting

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/query"
)

// Typed errors shared by every Client implementation. Both transports
// classify failures into these sentinels (the networked deployment carries
// them across the wire as codes), so downstream code can errors.Is against
// them regardless of where execution landed.
var (
	// ErrBadQuery marks a query rejected by Query.Validate before any
	// execution happened.
	ErrBadQuery = query.ErrBadQuery
	// ErrUnknownNode marks a query whose Node is not in the system (never
	// added, or removed).
	ErrUnknownNode = query.ErrUnknownNode
	// ErrUnavailable marks a transport failure: the client is closed, a
	// daemon is unreachable, or a connection broke mid-call.
	ErrUnavailable = query.ErrUnavailable
	// ErrConflict marks a mutation the graph's current state rejects:
	// removing an edge that does not exist, or adding an edge whose
	// endpoint was never created. The graph is unchanged.
	ErrConflict = query.ErrConflict
)

// MutOp enumerates the online graph mutations.
type MutOp = core.MutOp

// Mutation operations.
const (
	// MutUpsertNode creates Node with Label, or relabels it. Idempotent.
	MutUpsertNode = core.MutUpsertNode
	// MutAddEdge ensures the edge Node->To with Label exists (no duplicate
	// parallel edge is ever created); a missing endpoint is ErrConflict.
	MutAddEdge = core.MutAddEdge
	// MutRemoveEdge removes the edge Node->To (any label); an absent edge
	// is ErrConflict.
	MutRemoveEdge = core.MutRemoveEdge
)

// Mutation is one online graph write as clients express it: labels travel
// as strings (the server side interns them), exactly like Query.CountLabel.
// Node is the subject (the upserted node, or an edge's source); To is the
// edge destination; Label is the node label for MutUpsertNode and the edge
// label for MutAddEdge (ignored by MutRemoveEdge).
type Mutation struct {
	Op    MutOp
	Node  NodeID
	To    NodeID
	Label string
}

// Client is the transport-agnostic query interface: the same client code
// runs against the in-process virtual-time engine (NewLocalClient) and a
// real networked deployment (Dial), with identical results, the same typed
// errors, and context cancellation/deadlines honoured by both.
type Client interface {
	// Execute runs one query and returns its result.
	Execute(ctx context.Context, q Query) (Result, error)
	// ExecuteBatch runs a batch of queries, returning results positionally
	// aligned with qs. Over the network the whole batch travels in one
	// round trip and fans out across processors in parallel. One failing
	// query fails the batch.
	ExecuteBatch(ctx context.Context, qs []Query) ([]Result, error)
	// ExecuteStream pipelines queries: it consumes in until the channel
	// closes or ctx is cancelled, and delivers one Outcome per executed
	// query on the returned channel, which is closed when the stream
	// drains. Outcomes may arrive out of submission order on transports
	// that execute concurrently; match them through Outcome.Query.
	ExecuteStream(ctx context.Context, in <-chan Query) <-chan Outcome
	// UpsertNode ensures node id exists carrying label (creating or
	// relabelling it). Idempotent; acked writes are replicated to every
	// storage replica and durable when the tier runs with a WAL.
	UpsertNode(ctx context.Context, id NodeID, label string) error
	// AddEdge ensures the directed edge u->v with label exists. Adding an
	// edge that is already present succeeds without duplicating it; a
	// missing endpoint fails with ErrConflict.
	AddEdge(ctx context.Context, u, v NodeID, label string) error
	// RemoveEdge removes the directed edge u->v (any label). Removing an
	// edge that does not exist fails with ErrConflict.
	RemoveEdge(ctx context.Context, u, v NodeID) error
	// Mutate applies a batch of mutations in order, stopping at the first
	// failure. It returns how many were applied — the applied prefix
	// stays applied (each mutation acks individually), so a conflict
	// mid-batch does not roll back the writes before it. Both transports
	// guarantee read-your-writes: a query issued through this client
	// after Mutate returns observes the mutation.
	Mutate(ctx context.Context, muts []Mutation) (int, error)
	// Stats returns a snapshot of the system's runtime counters:
	// per-processor assigned/executed/stolen/diverted counts, cache
	// hit/miss/eviction counters, and routing-decision-time / queue-depth
	// percentiles. Both transports report the identical structure (the
	// networked client fetches it from the router in one round trip).
	Stats(ctx context.Context) (Stats, error)
	// Close releases the client. Calls after Close fail with
	// ErrUnavailable.
	Close() error
}

// Outcome pairs a streamed query with its result or error.
type Outcome struct {
	Query  Query
	Result Result
	Err    error
}

// stream is the shared ExecuteStream engine: workers goroutines consume in
// and emit outcomes until the input drains or ctx is cancelled.
func stream(ctx context.Context, in <-chan Query, workers int, exec func(context.Context, Query) (Result, error)) <-chan Outcome {
	if workers < 1 {
		workers = 1
	}
	out := make(chan Outcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case q, ok := <-in:
					if !ok {
						return
					}
					res, err := exec(ctx, q)
					select {
					case out <- Outcome{Query: q, Result: res, Err: err}:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// NewLocalClient returns a Client over the in-process virtual-time system:
// a fresh session (cold caches) whose processor caches persist across the
// client's lifetime. It is safe for concurrent use; queries execute one at
// a time on the session's virtual clock.
func NewLocalClient(sys *System) (Client, error) {
	ses, err := sys.NewSession()
	if err != nil {
		return nil, err
	}
	return &localClient{sys: sys, ses: ses}, nil
}

type localClient struct {
	mu     sync.Mutex
	sys    *System
	ses    *Session
	closed bool
}

func (c *localClient) exec(ctx context.Context, q Query) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Result{}, fmt.Errorf("%w: client closed", ErrUnavailable)
	}
	for _, a := range q.AnchorNodes() {
		if !c.sys.Graph().Exists(a) {
			return Result{}, fmt.Errorf("%w: node %d not in graph", ErrUnknownNode, a)
		}
	}
	res, _, err := c.ses.Execute(q)
	return res, err
}

func (c *localClient) Execute(ctx context.Context, q Query) (Result, error) {
	return c.exec(ctx, q)
}

func (c *localClient) ExecuteBatch(ctx context.Context, qs []Query) ([]Result, error) {
	results := make([]Result, len(qs))
	for i, q := range qs {
		res, err := c.exec(ctx, q)
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}

func (c *localClient) ExecuteStream(ctx context.Context, in <-chan Query) <-chan Outcome {
	// One worker: the virtual clock serialises execution anyway.
	return stream(ctx, in, 1, c.exec)
}

func (c *localClient) Mutate(ctx context.Context, muts []Mutation) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, fmt.Errorf("%w: client closed", ErrUnavailable)
	}
	g := c.sys.Graph()
	cm := make([]core.Mutation, len(muts))
	for i, m := range muts {
		cm[i] = core.Mutation{Op: m.Op, Node: m.Node, To: m.To, Label: g.InternLabel(m.Label)}
	}
	return c.ses.Mutate(cm...)
}

func (c *localClient) UpsertNode(ctx context.Context, id NodeID, label string) error {
	_, err := c.Mutate(ctx, []Mutation{{Op: MutUpsertNode, Node: id, Label: label}})
	return err
}

func (c *localClient) AddEdge(ctx context.Context, u, v NodeID, label string) error {
	_, err := c.Mutate(ctx, []Mutation{{Op: MutAddEdge, Node: u, To: v, Label: label}})
	return err
}

func (c *localClient) RemoveEdge(ctx context.Context, u, v NodeID) error {
	_, err := c.Mutate(ctx, []Mutation{{Op: MutRemoveEdge, Node: u, To: v}})
	return err
}

func (c *localClient) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Stats{}, fmt.Errorf("%w: client closed", ErrUnavailable)
	}
	return *c.ses.Snapshot(), nil
}

func (c *localClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}
