// Distributed example — same code, two transports: one client function
// written against the transport-agnostic grouting.Client interface runs
// first on the in-process virtual-time system, then against a complete
// networked deployment on localhost (two storage shards, three query
// processors and a landmark router, all real TCP daemons), with every
// answer verified against the in-memory oracle.
//
// The TCP topology here is the same one cmd/groutingd runs across
// machines; clients there connect with grouting.Dial exactly as below.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	grouting "repro"
)

// runWorkload is written once against grouting.Client and never knows
// which transport it drives: per-query Execute for the first half, one
// pipelined ExecuteBatch round trip for the rest.
func runWorkload(ctx context.Context, c grouting.Client, g *grouting.Graph, qs []grouting.Query) (time.Duration, error) {
	start := time.Now()
	half := len(qs) / 2
	for _, q := range qs[:half] {
		res, err := c.Execute(ctx, q)
		if err != nil {
			return 0, err
		}
		if res != grouting.Answer(g, q) {
			return 0, fmt.Errorf("query %d disagrees with oracle", q.ID)
		}
	}
	results, err := c.ExecuteBatch(ctx, qs[half:])
	if err != nil {
		return 0, err
	}
	for i, q := range qs[half:] {
		if results[i] != grouting.Answer(g, q) {
			return 0, fmt.Errorf("batched query %d disagrees with oracle", q.ID)
		}
	}
	return time.Since(start), nil
}

func main() {
	ctx := context.Background()
	g := grouting.GenerateDataset(grouting.WebGraph, 0.03, 42)
	fmt.Printf("dataset: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	workload := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 10, QueriesPerHotspot: 10, R: 2, H: 2, Seed: 9,
	})

	// Transport 1: the in-process virtual-time engine.
	sys, err := grouting.New(g,
		grouting.WithProcessors(3),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyLandmark),
		grouting.WithLandmarks(16),
		grouting.WithMinSeparation(2),
		grouting.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		log.Fatal(err)
	}
	elapsed, err := runWorkload(ctx, local, g, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual-time transport: %d queries in %v, all verified\n", len(workload), elapsed.Round(time.Millisecond))

	// Transport 2: a real TCP deployment on localhost.
	var storageAddrs []string
	for i := 0; i < 2; i++ {
		ss, err := grouting.ServeStorage("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ss.Close()
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	start := time.Now()
	if err := grouting.LoadStorage(ctx, g, storageAddrs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded into %d shards in %v\n", len(storageAddrs), time.Since(start).Round(time.Millisecond))

	var procAddrs []string
	for i := 0; i < 3; i++ {
		ps, err := grouting.ServeProcessor("127.0.0.1:0", storageAddrs, 64<<20)
		if err != nil {
			log.Fatal(err)
		}
		defer ps.Close()
		procAddrs = append(procAddrs, ps.Addr())
	}

	rs, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
		Processors: procAddrs,
		Policy:     grouting.PolicyLandmark,
		Graph:      g,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Close()
	fmt.Printf("deployment: router %s -> %d processors -> %d storage shards\n",
		rs.Addr(), len(procAddrs), len(storageAddrs))

	remote, err := grouting.Dial(ctx, rs.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()

	// The exact same function, now over TCP.
	elapsed, err = runWorkload(ctx, remote, g, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tcp transport: %d queries in %v (%.0f q/s), all verified against the oracle\n",
		len(workload), elapsed.Round(time.Millisecond), float64(len(workload))/elapsed.Seconds())
}
