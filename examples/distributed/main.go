// Distributed example: a complete networked gRouting deployment on
// localhost — two storage shards, three query processors and a router
// with landmark routing, all real TCP daemons — loaded with a dataset and
// queried through the router, with every answer verified against the
// in-memory oracle.
//
// This is the same topology cmd/groutingd runs across machines.
package main

import (
	"fmt"
	"log"
	"time"

	grouting "repro"
	"repro/internal/rpc"
)

func main() {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.03, 42)
	fmt.Printf("dataset: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// Storage tier: two shards.
	var storageAddrs []string
	for i := 0; i < 2; i++ {
		ss, err := rpc.NewStorageServer("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ss.Close()
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	loader, err := rpc.DialStorage(storageAddrs)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := loader.LoadGraph(g); err != nil {
		log.Fatal(err)
	}
	loader.Close()
	fmt.Printf("loaded into %d shards in %v\n", len(storageAddrs), time.Since(start).Round(time.Millisecond))

	// Processing tier: three processors with 64 MiB caches.
	var procAddrs []string
	for i := 0; i < 3; i++ {
		ps, err := rpc.NewProcessorServer("127.0.0.1:0", storageAddrs, 64<<20)
		if err != nil {
			log.Fatal(err)
		}
		defer ps.Close()
		procAddrs = append(procAddrs, ps.Addr())
	}

	// Router with landmark routing (preprocessing runs here).
	strat, err := rpc.BuildStrategy("landmark", g, len(procAddrs), 7)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := rpc.NewRouterServer("127.0.0.1:0", rpc.RouterConfig{
		ProcessorAddrs: procAddrs,
		Strategy:       strat,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Close()
	fmt.Printf("deployment: router %s -> %d processors -> %d storage shards\n\n",
		rs.Addr(), len(procAddrs), len(storageAddrs))

	// Client: run a hotspot workload over the wire.
	cl, err := rpc.DialRouter(rs.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	workload := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 10, QueriesPerHotspot: 10, R: 2, H: 2, Seed: 9,
	})
	start = time.Now()
	for _, q := range workload {
		res, err := cl.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		if res != grouting.Answer(g, q) {
			log.Fatalf("query %d: network result disagrees with oracle", q.ID)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d queries over TCP in %v (%.0f q/s), all verified against the oracle\n",
		len(workload), elapsed.Round(time.Millisecond), float64(len(workload))/elapsed.Seconds())
}
