// Social-network example (paper Intro, example 2): ego-centric queries —
// "user Alice may search for her connections within 2 hops" — against a
// Friendster-like graph, comparing how each routing policy exploits the
// cache when many users from the same community browse at once.
package main

import (
	"fmt"
	"log"

	grouting "repro"
)

func main() {
	g := grouting.GenerateDataset(grouting.Friendster, 0.05, 42)
	fmt.Printf("social graph: %d users, %d friendship links\n", g.NumNodes(), g.NumEdges())

	// A browsing session storm: communities (hotspots) of users refresh
	// their 2-hop ego networks in bursts.
	workload := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots:       20,
		QueriesPerHotspot: 10,
		R:                 2,
		H:                 2,
		Types:             []grouting.QueryType{grouting.NeighborAgg},
		Seed:              9,
	})
	fmt.Printf("workload: %d ego-centric queries from 20 communities\n\n", len(workload))

	fmt.Printf("%-10s %12s %14s %10s %8s\n", "policy", "throughput", "mean-response", "hit-rate", "stolen")
	for _, policy := range []grouting.Policy{
		grouting.PolicyNextReady, grouting.PolicyHash,
		grouting.PolicyLandmark, grouting.PolicyEmbed,
	} {
		sys, err := grouting.NewSystem(g, grouting.Config{
			Processors:     7,
			StorageServers: 4,
			Policy:         policy,
			Landmarks:      24,
			MinSeparation:  2,
			Dimensions:     8,
			Seed:           3,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.RunWorkload(workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %9.0f q/s %14v %9.1f%% %8d\n",
			policy, rep.ThroughputQPS, rep.MeanResponse, rep.HitRate*100, rep.Stolen)
	}
	fmt.Println("\nsmart routing sends each community's queries to the same processor,")
	fmt.Println("so overlapping ego networks are served from its cache")
}
