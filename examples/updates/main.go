// Updates example (Section 3.4, "Dealing with Graph Updates"): stream node
// and edge insertions into a live system. New nodes get landmark distances
// and embedding coordinates through the incremental paths — no offline
// re-preprocessing — and queries on them stay exact while smart routing
// keeps working.
package main

import (
	"fmt"
	"log"

	grouting "repro"
)

func main() {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.03, 42)
	base := g.NumNodes()
	fmt.Printf("initial graph: %d nodes, %d edges\n", base, g.NumEdges())

	sys, err := grouting.NewSystem(g, grouting.Config{
		Processors:     4,
		StorageServers: 2,
		Policy:         grouting.PolicyEmbed,
		Landmarks:      16,
		MinSeparation:  2,
		Dimensions:     6,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessing: %d landmarks, %d coordinate bytes\n\n",
		sys.Prep().Landmarks, sys.Prep().EmbedBytes)

	// Stream in 50 new pages, each linking to two existing ones — the
	// paper's node-addition path: distances to landmarks and coordinates
	// are computed incrementally per node.
	var added []grouting.NodeID
	for i := 0; i < 50; i++ {
		u := g.AddNode(fmt.Sprintf("newpage%d", i))
		anchor := grouting.NodeID((i * 37) % base)
		if err := g.AddEdge(u, anchor, "links"); err != nil {
			log.Fatal(err)
		}
		if err := g.AddEdge(grouting.NodeID((i*53+7)%base), u, "links"); err != nil {
			log.Fatal(err)
		}
		sys.AddNode(u)
		added = append(added, u)
	}
	fmt.Printf("streamed %d new nodes through the incremental update path\n", len(added))

	// An edge update between existing nodes refreshes both records and
	// re-relaxes landmark distances around the endpoints.
	g.AddEdgeFast(added[0], added[1])
	sys.UpdateEdge(added[0], added[1])
	fmt.Println("added a shortcut edge between two new nodes (2-hop distance refresh)")

	// Queries on the new nodes are exact, and the embedding covers them.
	ses, err := sys.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	wrong := 0
	for _, u := range added {
		q := grouting.Query{Type: grouting.NeighborAgg, Node: u, Hops: 2, Dir: grouting.Both}
		res, _, err := ses.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		if res != grouting.Answer(g, q) {
			wrong++
		}
		if sys.Embedding().Coords(u) == nil {
			log.Fatalf("node %d missing embedding coordinates", u)
		}
	}
	hits, misses := ses.Stats()
	fmt.Printf("\nqueried all %d new nodes: %d mismatches vs oracle (cache: %d hits / %d misses)\n",
		len(added), wrong, hits, misses)
	if wrong > 0 {
		log.Fatal("incremental updates broke correctness")
	}
	fmt.Println("incremental maintenance kept routing data and results consistent")
}
