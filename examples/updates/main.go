// Updates example (Section 3.4, "Dealing with Graph Updates"): stream node
// and edge mutations into a live system through the public Client write
// path — the same code, two transports. One function written against the
// transport-agnostic grouting.Client streams upserts, edge inserts, a
// batched burst and a tombstoning removal, first into the in-process
// virtual-time system and then into a complete TCP deployment. Every
// write is mirrored onto a client-side oracle graph, and queries on the
// new nodes must agree with it exactly on both transports. On the
// virtual-time system the incremental routing paths (landmark distances,
// embedding coordinates) absorb the new nodes with no offline
// re-preprocessing.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	grouting "repro"
)

const (
	newNodes = 50
	dataset  = grouting.WebGraph
	scale    = 0.03
	seed     = 42
)

// streamUpdates is written once against grouting.Client and never knows
// which transport it drives. Every mutation it sends is mirrored onto the
// caller's oracle graph; afterwards a 2-hop query on each new node must
// match the oracle answer — read-your-writes, on whichever tier is behind
// the interface.
func streamUpdates(ctx context.Context, c grouting.Client, oracle *grouting.Graph) error {
	base := oracle.NumNodes()
	pageLabel := oracle.InternLabel("newpage")
	linkLabel := oracle.InternLabel("links")

	// Stream in new pages one write at a time, each linking to two
	// existing ones — the paper's node-addition path.
	var added []grouting.NodeID
	for i := 0; i < newNodes/2; i++ {
		u := oracle.MaxNodeID()
		if err := c.UpsertNode(ctx, u, "newpage"); err != nil {
			return fmt.Errorf("upsert %d: %w", u, err)
		}
		oracle.UpsertNode(u, pageLabel)
		anchor := grouting.NodeID((i * 37) % base)
		if err := c.AddEdge(ctx, u, anchor, "links"); err != nil {
			return fmt.Errorf("edge %d->%d: %w", u, anchor, err)
		}
		if _, err := oracle.EnsureEdge(u, anchor, linkLabel); err != nil {
			return err
		}
		back := grouting.NodeID((i*53 + 7) % base)
		if err := c.AddEdge(ctx, back, u, "links"); err != nil {
			return fmt.Errorf("edge %d->%d: %w", back, u, err)
		}
		if _, err := oracle.EnsureEdge(back, u, linkLabel); err != nil {
			return err
		}
		added = append(added, u)
	}

	// The other half arrives as one batched Mutate call — a crawler
	// flushing a burst of discoveries in a single round trip.
	var burst []grouting.Mutation
	next := oracle.MaxNodeID()
	for i := newNodes / 2; i < newNodes; i++ {
		u := next
		next++
		anchor := grouting.NodeID((i * 37) % base)
		burst = append(burst,
			grouting.Mutation{Op: grouting.MutUpsertNode, Node: u, Label: "newpage"},
			grouting.Mutation{Op: grouting.MutAddEdge, Node: u, To: anchor, Label: "links"},
		)
	}
	if n, err := c.Mutate(ctx, burst); err != nil {
		return fmt.Errorf("batch applied %d of %d: %w", n, len(burst), err)
	}
	for _, m := range burst {
		switch m.Op {
		case grouting.MutUpsertNode:
			oracle.UpsertNode(m.Node, pageLabel)
			added = append(added, m.Node)
		case grouting.MutAddEdge:
			if _, err := oracle.EnsureEdge(m.Node, m.To, linkLabel); err != nil {
				return err
			}
		}
	}

	// A shortcut edge between two new nodes, then its removal: the write
	// path's tombstone. Removing it twice is the typed conflict — state
	// the graph rejects, not a transport failure.
	if err := c.AddEdge(ctx, added[0], added[1], "links"); err != nil {
		return err
	}
	if err := c.RemoveEdge(ctx, added[0], added[1]); err != nil {
		return err
	}
	if err := c.RemoveEdge(ctx, added[0], added[1]); !errors.Is(err, grouting.ErrConflict) {
		return fmt.Errorf("second removal: want ErrConflict, got %v", err)
	}

	// Read back every new node: 2-hop neighbourhoods must agree with the
	// client-side oracle — the writes are visible, exact, and the removed
	// edge stays removed.
	for _, u := range added {
		q := grouting.Query{Type: grouting.NeighborAgg, Node: u, Hops: 2, Dir: grouting.Both}
		res, err := c.Execute(ctx, q)
		if err != nil {
			return fmt.Errorf("query on new node %d: %w", u, err)
		}
		if res != grouting.Answer(oracle, q) {
			return fmt.Errorf("node %d disagrees with oracle after updates", u)
		}
	}
	return nil
}

func main() {
	ctx := context.Background()
	oracle := grouting.GenerateDataset(dataset, scale, seed)
	fmt.Printf("initial graph: %d nodes, %d edges\n", oracle.NumNodes(), oracle.NumEdges())

	// Transport 1: the in-process virtual-time engine. Its system owns an
	// identical copy of the graph (same dataset, same seed); the client
	// mutates that copy while we mirror onto the oracle.
	gLocal := grouting.GenerateDataset(dataset, scale, seed)
	sys, err := grouting.NewSystem(gLocal, grouting.Config{
		Processors:     4,
		StorageServers: 2,
		Policy:         grouting.PolicyEmbed,
		Landmarks:      16,
		MinSeparation:  2,
		Dimensions:     6,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessing: %d landmarks, %d coordinate bytes\n",
		sys.Prep().Landmarks, sys.Prep().EmbedBytes)
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		log.Fatal(err)
	}
	if err := streamUpdates(ctx, local, oracle); err != nil {
		log.Fatal(err)
	}
	// The incremental update path gave every streamed node coordinates.
	for u := grouting.NodeID(0); u < oracle.MaxNodeID(); u++ {
		if sys.Embedding().Coords(u) == nil {
			log.Fatalf("node %d missing embedding coordinates", u)
		}
	}
	fmt.Printf("virtual-time transport: %d writes + read-back verified; embedding covers all %d nodes\n",
		newNodes, oracle.NumNodes())

	// Transport 2: a real TCP deployment on localhost — storage shards,
	// processors, a router. Seeding Storage gives the router the write
	// path's placement domain.
	oracle2 := grouting.GenerateDataset(dataset, scale, seed)
	gRemote := grouting.GenerateDataset(dataset, scale, seed)
	var storageAddrs []string
	for i := 0; i < 2; i++ {
		ss, err := grouting.ServeStorage("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ss.Close()
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	if err := grouting.LoadStorage(ctx, gRemote, storageAddrs); err != nil {
		log.Fatal(err)
	}
	var procAddrs []string
	for i := 0; i < 3; i++ {
		ps, err := grouting.ServeProcessor("127.0.0.1:0", storageAddrs, 64<<20)
		if err != nil {
			log.Fatal(err)
		}
		defer ps.Close()
		procAddrs = append(procAddrs, ps.Addr())
	}
	rs, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
		Processors: procAddrs,
		Policy:     grouting.PolicyLandmark,
		Graph:      gRemote,
		Seed:       7,
		Storage:    storageAddrs,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Close()
	remote, err := grouting.Dial(ctx, rs.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()

	// The exact same function, now writing over TCP: each mutation is a
	// replicated write-all through the router, acked only once every
	// shard replica took it and every processor cache dropped it.
	start := time.Now()
	if err := streamUpdates(ctx, remote, oracle2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tcp transport: %d writes + read-back verified in %v\n",
		newNodes, time.Since(start).Round(time.Millisecond))
	fmt.Println("same client code streamed mutations through both transports, exactly")
}
