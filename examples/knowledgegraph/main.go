// Knowledge-graph example (paper Intro, example 3 and Figure 3): entity
// relations in a Freebase-like graph, answering label-filtered
// neighbourhood aggregation ("how many type7 entities within 2 hops of
// this hub?") and distance-constrained reachability between entities.
package main

import (
	"fmt"
	"log"

	grouting "repro"
)

func main() {
	g := grouting.GenerateDataset(grouting.Freebase, 0.1, 42)
	fmt.Printf("knowledge graph: %d entities, %d relations\n\n", g.NumNodes(), g.NumEdges())

	sys, err := grouting.NewSystem(g, grouting.Config{
		Processors:     4,
		StorageServers: 2,
		Policy:         grouting.PolicyLandmark,
		Landmarks:      16,
		MinSeparation:  1,
		Seed:           5,
	})
	if err != nil {
		log.Fatal(err)
	}
	ses, err := sys.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	// Pick a hub entity (dense knowledge-graph entities behave like the
	// paper's "Google" / "Asian people" examples).
	var hub grouting.NodeID
	for id := grouting.NodeID(0); id < g.MaxNodeID(); id++ {
		if g.Exists(id) && g.Degree(id) > g.Degree(hub) {
			hub = id
		}
	}
	fmt.Printf("hub entity: node %d (label %q, degree %d)\n\n", hub, g.NodeLabel(hub), g.Degree(hub))

	// Unfiltered vs label-filtered 2-hop aggregation.
	all, lat, err := ses.Execute(grouting.Query{
		Type: grouting.NeighborAgg, Node: hub, Hops: 2, Dir: grouting.Both,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entities within 2 hops of the hub: %d (in %v)\n", all.Count, lat)
	for _, label := range []string{"type1", "type7"} {
		res, lat, err := ses.Execute(grouting.Query{
			Type: grouting.NeighborAgg, Node: hub, Hops: 2, Dir: grouting.Both, CountLabel: label,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ... of type %q: %d (in %v; warm cache)\n", label, res.Count, lat)
	}

	// Distance-constrained reachability between random entity pairs.
	fmt.Println("\ndistance-constrained reachability (<= 4 hops):")
	reachable := 0
	for probe := grouting.NodeID(10); probe < 20; probe++ {
		res, _, err := ses.Execute(grouting.Query{
			Type: grouting.Reachability, Node: probe, Target: hub, Hops: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Reachable {
			reachable++
		}
	}
	fmt.Printf("  %d of 10 probed entities reach the hub within 4 hops\n", reachable)
	hits, misses := ses.Stats()
	fmt.Printf("\nsession cache: %d hits, %d misses\n", hits, misses)
}
