// Custom strategy example — the routing layer as an extension point: a
// user-defined strategy registered through grouting.RegisterStrategy
// routes queries on both transports (the in-process virtual-time engine
// and a real loopback TCP deployment) exactly like a built-in, and the
// Client.Stats() snapshot shows its per-processor placement on each.
//
// The strategy here routes by contiguous node-id bands — a stand-in for
// any domain knowledge you have about your graph's layout (tenant ranges,
// time-ordered ids, pre-sharded crawls). Because it is deterministic and
// ignores load, both transports produce identical per-processor
// assignment counts for the same query stream.
package main

import (
	"context"
	"fmt"
	"log"

	grouting "repro"
)

// bandStrategy sends node u to processor u / bandSize: contiguous id
// ranges stay together, so consecutive queries on nearby ids share a
// processor's cache.
type bandStrategy struct {
	bandSize uint64
}

func newBandStrategy(res grouting.StrategyResources) (grouting.Strategy, error) {
	if res.Graph == nil {
		return nil, fmt.Errorf("bands: need the graph to size the bands")
	}
	n := uint64(res.Graph.MaxNodeID())
	band := (n + uint64(res.Procs) - 1) / uint64(res.Procs)
	if band == 0 {
		band = 1
	}
	return &bandStrategy{bandSize: band}, nil
}

func (s *bandStrategy) Name() string { return "bands" }

func (s *bandStrategy) Pick(q grouting.Query, loads []int) int {
	p := int(uint64(q.Node) / s.bandSize)
	if p >= len(loads) {
		p = len(loads) - 1
	}
	return p
}

func (s *bandStrategy) Observe(grouting.Query, int) {} // stateless
func (s *bandStrategy) DecisionUnits() int          { return 1 }

// One registration covers every deployment shape: WithPolicy/WithStrategy
// locally, RouterSpec.Policy over TCP, and groutingd -policy bands.
var policyBands = grouting.RegisterStrategy("bands", newBandStrategy)

func main() {
	ctx := context.Background()
	g := grouting.GenerateDataset(grouting.WebGraph, 0.03, 42)
	fmt.Printf("dataset: %d nodes, %d edges; registered strategies: %v\n",
		g.NumNodes(), g.NumEdges(), grouting.Strategies())
	workload := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 10, QueriesPerHotspot: 10, R: 2, H: 2, Seed: 9,
	})

	// Transport 1: the virtual-time engine, selecting the strategy by name.
	sys, err := grouting.New(g,
		grouting.WithProcessors(3),
		grouting.WithStorageServers(2),
		grouting.WithStrategy("bands"),
	)
	if err != nil {
		log.Fatal(err)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		log.Fatal(err)
	}
	run(ctx, "virtual-time", local, g, workload)

	// Transport 2: a real TCP deployment, selecting it by Policy value.
	var storageAddrs []string
	for i := 0; i < 2; i++ {
		ss, err := grouting.ServeStorage("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ss.Close()
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	if err := grouting.LoadStorage(ctx, g, storageAddrs); err != nil {
		log.Fatal(err)
	}
	var procAddrs []string
	for i := 0; i < 3; i++ {
		ps, err := grouting.ServeProcessor("127.0.0.1:0", storageAddrs, 64<<20)
		if err != nil {
			log.Fatal(err)
		}
		defer ps.Close()
		procAddrs = append(procAddrs, ps.Addr())
	}
	rs, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
		Processors: procAddrs,
		Policy:     policyBands,
		Graph:      g, // the constructor sizes its bands from the graph
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Close()
	remote, err := grouting.Dial(ctx, rs.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()
	run(ctx, "tcp", remote, g, workload)
}

// run executes the workload through any Client, verifies every answer
// against the oracle, and prints the observability snapshot.
func run(ctx context.Context, name string, c grouting.Client, g *grouting.Graph, qs []grouting.Query) {
	for _, q := range qs {
		res, err := c.Execute(ctx, q)
		if err != nil {
			log.Fatalf("%s: query %d: %v", name, q.ID, err)
		}
		if res != grouting.Answer(g, q) {
			log.Fatalf("%s: query %d disagrees with the oracle", name, q.ID)
		}
	}
	snap, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== %s: %d queries, all verified ===\n%s", name, len(qs), snap.String())
}
