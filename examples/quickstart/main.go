// Quickstart: build a small graph, assemble a decoupled gRouting system
// with functional options, and run each of the paper's three query types
// under every routing policy through the Client interface, printing
// results and cache behaviour.
package main

import (
	"context"
	"fmt"
	"log"

	grouting "repro"
)

func main() {
	ctx := context.Background()

	// A small web-like graph (scaled-down uk-2007 stand-in).
	g := grouting.GenerateDataset(grouting.WebGraph, 0.05, 42)
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	queries := []grouting.Query{
		{Type: grouting.NeighborAgg, Node: 1200, Hops: 2, Dir: grouting.Out},
		{Type: grouting.RandomWalk, Node: 1200, Hops: 5, RestartProb: 0.15, Dir: grouting.Out, Seed: 7},
		{Type: grouting.Reachability, Node: 1200, Target: 1500, Hops: 4},
	}

	for _, policy := range []grouting.Policy{
		grouting.PolicyNoCache, grouting.PolicyNextReady, grouting.PolicyHash,
		grouting.PolicyLandmark, grouting.PolicyEmbed,
	} {
		sys, err := grouting.New(g,
			grouting.WithProcessors(4),
			grouting.WithStorageServers(2),
			grouting.WithPolicy(policy),
			grouting.WithLandmarks(16),
			grouting.WithMinSeparation(2),
			grouting.WithDimensions(6),
			grouting.WithSeed(1),
		)
		if err != nil {
			log.Fatal(err)
		}
		c, err := grouting.NewLocalClient(sys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policy %s:\n", policy)
		for _, q := range queries {
			res, err := c.Execute(ctx, q)
			if err != nil {
				log.Fatal(err)
			}
			switch q.Type {
			case grouting.NeighborAgg:
				fmt.Printf("  2-hop neighbours of %d: %d\n", q.Node, res.Count)
			case grouting.RandomWalk:
				fmt.Printf("  5-step walk from %d ended at %d\n", q.Node, res.EndNode)
			case grouting.Reachability:
				fmt.Printf("  %d reaches %d within 4 hops: %v\n", q.Node, q.Target, res.Reachable)
			}
			// Each answer matches the single-machine oracle exactly.
			if res != grouting.Answer(g, q) {
				log.Fatalf("result mismatch vs oracle for %v", q.Type)
			}
		}
		// The session underneath keeps per-processor caches warm between
		// queries; its stats are still reachable for diagnostics.
		ses, err := sys.NewSession()
		if err != nil {
			log.Fatal(err)
		}
		res, latency, err := ses.Execute(queries[0])
		if err != nil || res != grouting.Answer(g, queries[0]) {
			log.Fatal("session result mismatch")
		}
		fmt.Printf("  (session Execute: same result in %v virtual time)\n\n", latency)
	}
}
