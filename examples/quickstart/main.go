// Quickstart: build a small graph, assemble a decoupled gRouting system,
// and run each of the paper's three query types under every routing
// policy, printing latency and cache behaviour.
package main

import (
	"fmt"
	"log"

	grouting "repro"
)

func main() {
	// A small web-like graph (scaled-down uk-2007 stand-in).
	g := grouting.GenerateDataset(grouting.WebGraph, 0.05, 42)
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	queries := []grouting.Query{
		{Type: grouting.NeighborAgg, Node: 1200, Hops: 2, Dir: grouting.Out},
		{Type: grouting.RandomWalk, Node: 1200, Hops: 5, RestartProb: 0.15, Dir: grouting.Out, Seed: 7},
		{Type: grouting.Reachability, Node: 1200, Target: 1500, Hops: 4},
	}

	for _, policy := range []grouting.Policy{
		grouting.PolicyNoCache, grouting.PolicyNextReady, grouting.PolicyHash,
		grouting.PolicyLandmark, grouting.PolicyEmbed,
	} {
		sys, err := grouting.NewSystem(g, grouting.Config{
			Processors:     4,
			StorageServers: 2,
			Policy:         policy,
			Landmarks:      16,
			MinSeparation:  2,
			Dimensions:     6,
			Seed:           1,
		})
		if err != nil {
			log.Fatal(err)
		}
		ses, err := sys.NewSession()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policy %s:\n", policy)
		for _, q := range queries {
			res, latency, err := ses.Execute(q)
			if err != nil {
				log.Fatal(err)
			}
			switch q.Type {
			case grouting.NeighborAgg:
				fmt.Printf("  2-hop neighbours of %d: %d (in %v)\n", q.Node, res.Count, latency)
			case grouting.RandomWalk:
				fmt.Printf("  5-step walk from %d ended at %d (in %v)\n", q.Node, res.EndNode, latency)
			case grouting.Reachability:
				fmt.Printf("  %d reaches %d within 4 hops: %v (in %v)\n", q.Node, q.Target, res.Reachable, latency)
			}
			// Each answer matches the single-machine oracle exactly.
			if res != grouting.Answer(g, q) {
				log.Fatalf("result mismatch vs oracle for %v", q.Type)
			}
		}
		hits, misses := ses.Stats()
		fmt.Printf("  cache: %d hits, %d misses\n\n", hits, misses)
	}
}
