// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 4) at the Quick scale, plus micro-benchmarks of the query path.
//
//	go test -bench=. -benchmem                 # everything, quick scale
//	go test -bench=BenchmarkFig8a              # one figure
//	go run ./cmd/grouting-bench -run all -scale full   # paper-scale runs
//
// Each BenchmarkFigXX / BenchmarkTableX iteration performs one complete
// experiment (graph generation, preprocessing, workload execution across
// every configuration the figure sweeps).
package grouting_test

import (
	"io"
	"testing"

	grouting "repro"
	"repro/internal/experiments"
	"repro/internal/gstore"
	"repro/internal/kvstore"
)

// benchExperiment runs the registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, experiments.Quick); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// Tables.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// Figure 7: throughput vs SEDGE/Giraph and PowerGraph.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// Figure 8: scalability of the processing and storage tiers.
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B) { benchExperiment(b, "fig8c") }

// Figure 9: cache capacity.
func BenchmarkFig9a(b *testing.B) { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B) { benchExperiment(b, "fig9b") }
func BenchmarkFig9c(b *testing.B) { benchExperiment(b, "fig9c") }

// Figure 10: robustness to graph updates.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// Figure 11: load factor and smoothing parameter.
func BenchmarkFig11a(b *testing.B) { benchExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B) { benchExperiment(b, "fig11b") }

// Figure 12: embedding dimensionality.
func BenchmarkFig12a(b *testing.B) { benchExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B) { benchExperiment(b, "fig12b") }

// Figure 13: landmark count and separation.
func BenchmarkFig13a(b *testing.B) { benchExperiment(b, "fig13a") }
func BenchmarkFig13b(b *testing.B) { benchExperiment(b, "fig13b") }

// Figures 14-16: hotspot radius, traversal depth, other datasets.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// Ablations beyond the paper.
func BenchmarkAblationStealing(b *testing.B)  { benchExperiment(b, "ablation-stealing") }
func BenchmarkAblationPartition(b *testing.B) { benchExperiment(b, "ablation-partition") }
func BenchmarkAblationBatch(b *testing.B)     { benchExperiment(b, "ablation-batch") }

// Elasticity and fault-tolerance experiments beyond the paper.
func BenchmarkElastic(b *testing.B)      { benchExperiment(b, "elastic") }
func BenchmarkStorageFault(b *testing.B) { benchExperiment(b, "storagefault") }

// benchFetchBatch measures the storage tier's batched fetch path on a
// warm store (the per-frontier hot path of every query).
func benchFetchBatch(b *testing.B, st *kvstore.Store) {
	b.Helper()
	g := grouting.GenerateDataset(grouting.WebGraph, 0.05, 42)
	gstore.Load(st, g)
	tier := gstore.NewTier(st)
	ids := make([]grouting.NodeID, 64)
	for i := range ids {
		ids[i] = grouting.NodeID(uint32(i*131) % uint32(g.NumNodes()))
	}
	dst := make([]gstore.FetchResult, len(ids))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tier.FetchBatchInto(ids, dst, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFetchBatch is the R=1 hot-path baseline (PR 1's
// allocation-free work: only the decoded records allocate).
func BenchmarkFetchBatch(b *testing.B) {
	st, err := kvstore.New(4, nil)
	if err != nil {
		b.Fatal(err)
	}
	benchFetchBatch(b, st)
}

// BenchmarkFetchBatchReplicated is the benchmark guard for the tentpole:
// the R=2 happy path (rendezvous replica placement + health checks, no
// faults) must stay within 6 allocs/op of the R=1 hot path. The paired
// regression test lives in internal/gstore (TestFetchBatchReplicatedAllocs);
// this benchmark tracks the time and allocation trajectory.
func BenchmarkFetchBatchReplicated(b *testing.B) {
	st, err := kvstore.NewReplicated(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	benchFetchBatch(b, st)
}

// Micro-benchmarks: the per-query execution path under each policy on a
// warm system (graph generation and preprocessing excluded).
func benchQueryPath(b *testing.B, policy grouting.Policy) {
	b.Helper()
	g := grouting.GenerateDataset(grouting.WebGraph, 0.05, 42)
	sys, err := grouting.NewSystem(g, grouting.Config{
		Processors: 4, StorageServers: 2, Policy: policy,
		Landmarks: 16, MinSeparation: 2, Dimensions: 6, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ses, err := sys.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := grouting.Query{
			Type: grouting.NeighborAgg,
			Node: grouting.NodeID(uint32(i*97) % uint32(g.NumNodes())),
			Hops: 2, Dir: grouting.Out,
		}
		if _, _, err := ses.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunWorkload measures the full engine loop (routing, stealing,
// virtual timelines, cache churn) per query type on a fixed mid-size
// graph. One iteration is one complete cold-cache workload run of 256
// queries, so allocs/op regressions in the hot path are directly visible
// in the bench trajectory.
func BenchmarkRunWorkload(b *testing.B) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.1, 7)
	sys, err := grouting.NewSystem(g, grouting.Config{
		Processors: 4, StorageServers: 2, Policy: grouting.PolicyEmbed,
		Landmarks: 16, MinSeparation: 2, Dimensions: 6, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := uint32(g.NumNodes())
	for _, bench := range []struct {
		name string
		mk   func(i int) grouting.Query
	}{
		{"NeighborAgg", func(i int) grouting.Query {
			return grouting.Query{Type: grouting.NeighborAgg, Node: grouting.NodeID(uint32(i*131) % n), Hops: 2, Dir: grouting.Out}
		}},
		{"RandomWalk", func(i int) grouting.Query {
			return grouting.Query{Type: grouting.RandomWalk, Node: grouting.NodeID(uint32(i*131) % n), Hops: 8, RestartProb: 0.15, Dir: grouting.Out, Seed: int64(i)}
		}},
		{"Reachability", func(i int) grouting.Query {
			return grouting.Query{Type: grouting.Reachability, Node: grouting.NodeID(uint32(i*131) % n), Target: grouting.NodeID(uint32(i*977+13) % n), Hops: 4}
		}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			qs := make([]grouting.Query, 256)
			for i := range qs {
				qs[i] = bench.mk(i)
				qs[i].ID = i
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.RunWorkload(qs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkQueryNoCache(b *testing.B)  { benchQueryPath(b, grouting.PolicyNoCache) }
func BenchmarkQueryHash(b *testing.B)     { benchQueryPath(b, grouting.PolicyHash) }
func BenchmarkQueryLandmark(b *testing.B) { benchQueryPath(b, grouting.PolicyLandmark) }
func BenchmarkQueryEmbed(b *testing.B)    { benchQueryPath(b, grouting.PolicyEmbed) }
