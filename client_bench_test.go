package grouting_test

import (
	"context"
	"testing"

	grouting "repro"
)

// BenchmarkClientBatch quantifies the pipelining win on the loopback TCP
// transport: the same workload submitted one round trip per query
// (Execute), as a single batched round trip (ExecuteBatch), and as a
// pipelined stream with several queries in flight (ExecuteStream).
func BenchmarkClientBatch(b *testing.B) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 16, QueriesPerHotspot: 4, R: 2, H: 2, Seed: 3,
	})
	cl := startTCPCluster(b, g, 2, 3, grouting.PolicyHash)
	ctx := context.Background()

	// Warm the processor caches so every variant measures submission cost,
	// not first-touch storage fetches.
	if _, err := cl.ExecuteBatch(ctx, qs); err != nil {
		b.Fatal(err)
	}

	b.Run("execute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				if _, err := cl.Execute(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(qs)), "queries/op")
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cl.ExecuteBatch(ctx, qs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(qs)), "queries/op")
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := make(chan grouting.Query)
			go func() {
				defer close(in)
				for _, q := range qs {
					in <- q
				}
			}()
			for o := range cl.ExecuteStream(ctx, in) {
				if o.Err != nil {
					b.Fatal(o.Err)
				}
			}
		}
		b.ReportMetric(float64(len(qs)), "queries/op")
	})
}

// allocBenchSetup builds the paired clients the allocation measurements
// compare: the in-process virtual-time engine and a loopback TCP cluster
// over the binary wire protocol, both warmed on the same workload.
func allocBenchSetup(tb testing.TB) (local, remote grouting.Client, qs []grouting.Query) {
	tb.Helper()
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	qs = grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 16, QueriesPerHotspot: 4, R: 2, H: 2, Seed: 3,
	})
	sys, err := grouting.New(g,
		grouting.WithProcessors(3),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyHash),
		grouting.WithSeed(1),
	)
	if err != nil {
		tb.Fatal(err)
	}
	local, err = grouting.NewLocalClient(sys)
	if err != nil {
		tb.Fatal(err)
	}
	remote = startTCPCluster(tb, g, 2, 3, grouting.PolicyHash)

	// Warm processor caches, connection pools, and frame-slab pools so the
	// measurements see the steady state, not dials and first-touch fetches.
	ctx := context.Background()
	for _, cl := range []grouting.Client{local, remote} {
		for _, q := range qs {
			if _, err := cl.Execute(ctx, q); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return local, remote, qs
}

// BenchmarkClientExecuteTCP reports the steady-state per-query cost of the
// binary-framed TCP path side by side with the virtual-time baseline —
// allocs/op is the headline number the zero-alloc wire protocol is judged
// by.
func BenchmarkClientExecuteTCP(b *testing.B) {
	local, remote, qs := allocBenchSetup(b)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		c    grouting.Client
	}{{"virtual-time", local}, {"tcp", remote}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := tc.c.Execute(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// tcpAllocBudget is the steady-state per-query allocation ratchet for the
// loopback TCP path: client encode, server decode, routing, execution,
// response encode, client decode — two hops (client→router→processor), all
// in this process. The warmed virtual-time path runs alloc-free (its engine
// reuses every buffer and there is no wire), so "within 2x of virtual time"
// is vacuous; the budget is the operative bound. Measured steady state is
// ~17 allocs/query (down from ~51 under gob framing) — the residue is
// per-request goroutine spawns, pool misses under connection concurrency,
// and the freshly-allocated Result internals that make envelope recycling
// safe. Tighten the budget if the codec improves; never loosen it without a
// pprof diff showing where the new allocations come from.
const tcpAllocBudget = 24

// TestTCPAllocBudget pins the wire protocol's allocation overhead: a
// steady-state query over loopback TCP must stay within 2x the virtual-time
// path or the absolute budget, whichever is larger. Catches any regression
// that reintroduces per-call buffers, reflection, or descriptor traffic in
// the codec.
func TestTCPAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	local, remote, qs := allocBenchSetup(t)
	ctx := context.Background()

	perQuery := func(cl grouting.Client) float64 {
		return testing.AllocsPerRun(10, func() {
			for _, q := range qs {
				if _, err := cl.Execute(ctx, q); err != nil {
					t.Fatal(err)
				}
			}
		}) / float64(len(qs))
	}

	localAllocs := perQuery(local)
	tcpAllocs := perQuery(remote)
	t.Logf("allocs/query: virtual-time = %.1f, tcp = %.1f", localAllocs, tcpAllocs)
	limit := 2 * localAllocs
	if limit < tcpAllocBudget {
		limit = tcpAllocBudget
	}
	if tcpAllocs > limit {
		t.Errorf("TCP path allocates %.1f/query, above the budget of %.1f (virtual-time path: %.1f)",
			tcpAllocs, limit, localAllocs)
	}
}
