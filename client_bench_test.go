package grouting_test

import (
	"context"
	"testing"

	grouting "repro"
)

// BenchmarkClientBatch quantifies the pipelining win on the loopback TCP
// transport: the same workload submitted one round trip per query
// (Execute), as a single batched round trip (ExecuteBatch), and as a
// pipelined stream with several queries in flight (ExecuteStream).
func BenchmarkClientBatch(b *testing.B) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 16, QueriesPerHotspot: 4, R: 2, H: 2, Seed: 3,
	})
	cl := startTCPCluster(b, g, 2, 3, grouting.PolicyHash)
	ctx := context.Background()

	// Warm the processor caches so every variant measures submission cost,
	// not first-touch storage fetches.
	if _, err := cl.ExecuteBatch(ctx, qs); err != nil {
		b.Fatal(err)
	}

	b.Run("execute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				if _, err := cl.Execute(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(qs)), "queries/op")
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cl.ExecuteBatch(ctx, qs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(qs)), "queries/op")
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := make(chan grouting.Query)
			go func() {
				defer close(in)
				for _, q := range qs {
					in <- q
				}
			}()
			for o := range cl.ExecuteStream(ctx, in) {
				if o.Err != nil {
					b.Fatal(o.Err)
				}
			}
		}
		b.ReportMetric(float64(len(qs)), "queries/op")
	})
}
