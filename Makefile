GO ?= go

.PHONY: ci fmt-check vet build test bench-smoke bench suite

ci: fmt-check vet build test bench-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One-iteration smoke of the hot-path benchmark: catches crashes and gross
# regressions without CI-scale runtimes.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkQueryEmbed' -benchtime 1x .

# Full micro-benchmarks with allocation accounting.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkQuery|BenchmarkRunWorkload' -benchmem .

# Regenerate every figure/table at quick scale on all cores.
suite:
	$(GO) run ./cmd/grouting-bench -run all -parallel 0
