GO ?= go
STATICCHECK ?= staticcheck

.PHONY: ci fmt-check vet lint build test race cover examples bench-smoke bench suite chaos chaos-smoke loadgen-smoke

ci: fmt-check lint build test race cover examples bench-smoke loadgen-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis: go vet always; staticcheck when installed (CI installs
# it; locally `go install honnef.co/go/tools/cmd/staticcheck@latest`).
lint: vet
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		echo "staticcheck ./..."; $(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (vet ran)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrent surfaces: the networked transport, the
# root-package client (ExecuteStream, pooled conns, cancellation, elastic
# topology transitions, mid-workload storage kills, concurrent writers),
# the router (strategy registry, stealing/diversion accounting), the
# topology tracker, the replicated storage tier (membership transitions
# vs concurrent reads) and the placement planner feeding the router's
# background migration loop.
race:
	$(GO) test -race ./internal/rpc ./internal/router ./internal/topology ./internal/kvstore ./internal/gstore ./internal/chaos ./internal/placement ./internal/mquery ./internal/embed .

# Coverage ratchet for the storage stack the replication work lives in
# plus the binary wire protocol and the embedding-provider subsystem:
# each package must stay at or above its floor (set just under the
# current coverage — raise the floors as coverage grows, never lower
# them). Current: gstore 96%, kvstore 89%, topology 79%, chaos 84%,
# placement 100%, rpc 76%, embed 88%.
COVER_FLOORS = ./internal/gstore:90 ./internal/kvstore:85 ./internal/topology:75 ./internal/chaos:70 ./internal/placement:95 ./internal/mquery:85 ./internal/rpc:72 ./internal/embed:85

cover:
	@set -e; for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		out=$$($(GO) test -cover $$pkg | tail -1); \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "no coverage figure for $$pkg: $$out"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p>=f)?1:0}'); \
		if [ "$$ok" != 1 ]; then echo "FAIL: $$pkg coverage $$pct% is below the $$floor% ratchet"; exit 1; fi; \
		echo "$$pkg: $$pct% (floor $$floor%)"; \
	done

# Compile every example program so public-API drift breaks the build here,
# not the examples.
examples:
	@for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null ./$$d || exit 1; \
	done

# One-iteration smoke of every benchmark in the repo: catches crashes and
# bit-rot in benchmark code without CI-scale runtimes.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full micro-benchmarks with allocation accounting, including the
# transport pipelining comparison (BenchmarkClientBatch).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkQuery|BenchmarkRunWorkload|BenchmarkClientBatch' -benchmem .

# Sustained-load smoke: 30s open-loop run against in-process loopback
# daemons over the binary wire protocol. grouting-loadgen exits non-zero
# on zero goodput, so a passing run proves the serving path moves queries
# end to end; BENCH_loadgen.json captures the latency/alloc numbers.
loadgen-smoke:
	$(GO) run ./cmd/grouting-loadgen -qps 500 -duration 30s -benchdir .

# Regenerate every figure/table at quick scale on all cores.
suite:
	$(GO) run ./cmd/grouting-bench -run all -parallel 0

# Every built-in chaos scenario on the virtual-time engine, plus the
# rolling-restart acceptance scenario against real TCP daemons.
chaos:
	$(GO) run ./cmd/grouting-chaos -list
	$(GO) run ./cmd/grouting-chaos -scenario rolling-restart -harness both
	$(GO) run ./cmd/grouting-chaos -scenario netsplit -harness sim
	$(GO) run ./cmd/grouting-chaos -scenario kill9 -harness sim
	$(GO) run ./cmd/grouting-chaos -scenario slowlink -harness sim
	$(GO) run ./cmd/grouting-chaos -scenario scaleout -harness sim

# The CI subset: rolling-restart and netsplit on the deterministic simnet
# harness under the race detector (fast, no wall-clock flake surface).
chaos-smoke:
	$(GO) test -race -run 'TestRollingRestartSim|TestNetsplitSim' -count=1 ./internal/chaos
