GO ?= go

.PHONY: ci fmt-check vet build test race examples bench-smoke bench suite

ci: fmt-check vet build test race examples bench-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrent surfaces: the networked transport, the
# root-package client (ExecuteStream, pooled conns, cancellation) and the
# router (strategy registry, stealing/diversion accounting).
race:
	$(GO) test -race ./internal/rpc ./internal/router .

# Compile every example program so public-API drift breaks the build here,
# not the examples.
examples:
	@for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null ./$$d || exit 1; \
	done

# One-iteration smoke of every benchmark in the repo: catches crashes and
# bit-rot in benchmark code without CI-scale runtimes.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full micro-benchmarks with allocation accounting, including the
# transport pipelining comparison (BenchmarkClientBatch).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkQuery|BenchmarkRunWorkload|BenchmarkClientBatch' -benchmem .

# Regenerate every figure/table at quick scale on all cores.
suite:
	$(GO) run ./cmd/grouting-bench -run all -parallel 0
