GO ?= go
STATICCHECK ?= staticcheck

.PHONY: ci fmt-check vet lint build test race examples bench-smoke bench suite

ci: fmt-check lint build test race examples bench-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis: go vet always; staticcheck when installed (CI installs
# it; locally `go install honnef.co/go/tools/cmd/staticcheck@latest`).
lint: vet
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		echo "staticcheck ./..."; $(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (vet ran)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrent surfaces: the networked transport, the
# root-package client (ExecuteStream, pooled conns, cancellation, elastic
# topology transitions), the router (strategy registry, stealing/diversion
# accounting) and the topology tracker.
race:
	$(GO) test -race ./internal/rpc ./internal/router ./internal/topology .

# Compile every example program so public-API drift breaks the build here,
# not the examples.
examples:
	@for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null ./$$d || exit 1; \
	done

# One-iteration smoke of every benchmark in the repo: catches crashes and
# bit-rot in benchmark code without CI-scale runtimes.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full micro-benchmarks with allocation accounting, including the
# transport pipelining comparison (BenchmarkClientBatch).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkQuery|BenchmarkRunWorkload|BenchmarkClientBatch' -benchmem .

# Regenerate every figure/table at quick scale on all cores.
suite:
	$(GO) run ./cmd/grouting-bench -run all -parallel 0
