// Command grouting-loadgen drives a cluster with sustained open-loop load
// and reports what the serving stack actually delivers: latency quantiles
// (p50/p99/p999), goodput, allocations per query, and the highest QPS at
// which the p99 still meets the SLO.
//
// Usage:
//
//	grouting-loadgen                          # self-hosted loopback cluster, SLO ramp + sustained run
//	grouting-loadgen -qps 2000 -duration 30s  # fixed-rate sustained run only
//	grouting-loadgen -router 10.0.0.1:7000    # drive a live router (no alloc comparison)
//	grouting-loadgen -slo 5ms -benchdir out   # tighter SLO, artifact under out/
//
// The generator is open-loop and coordinated-omission-safe: queries are
// launched on a fixed schedule regardless of how fast earlier ones finish,
// and every latency is measured from the query's *scheduled* send time, so
// server-side stalls surface as tail latency instead of silently slowing
// the generator down. Results land in BENCH_loadgen.json so the perf
// trajectory stays machine-readable across PRs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	grouting "repro"
)

func main() {
	var (
		routerAddr  = flag.String("router", "", "router address to drive; empty self-hosts a loopback cluster")
		nStorage    = flag.Int("storage", 2, "self-host: storage shards")
		nProcs      = flag.Int("procs", 3, "self-host: processors")
		policyName  = flag.String("policy", "hash", "self-host: routing policy")
		cacheBytes  = flag.Int64("cache", 64<<20, "self-host: per-processor cache bytes")
		scale       = flag.Float64("scale", 0.02, "dataset scale factor")
		seed        = flag.Int64("seed", 7, "dataset and workload seed")
		hotspots    = flag.Int("hotspots", 16, "workload hotspots")
		qps         = flag.Float64("qps", 0, "sustained target QPS; 0 ramps to find max QPS at SLO first")
		duration    = flag.Duration("duration", 10*time.Second, "sustained-run length")
		step        = flag.Duration("step", 3*time.Second, "ramp: per-step window length")
		startQPS    = flag.Float64("startqps", 200, "ramp: first step's target QPS")
		growth      = flag.Float64("growth", 1.6, "ramp: per-step rate multiplier")
		maxSteps    = flag.Int("maxsteps", 12, "ramp: step limit")
		slo         = flag.Duration("slo", 20*time.Millisecond, "p99 latency SLO")
		maxInflight = flag.Int("maxinflight", 512, "open-loop concurrency cap (backpressure still counts as latency)")
		benchDir    = flag.String("benchdir", ".", "directory for BENCH_loadgen.json ('' disables it)")
	)
	flag.Parse()
	if err := run(config{
		routerAddr: *routerAddr, nStorage: *nStorage, nProcs: *nProcs,
		policyName: *policyName, cacheBytes: *cacheBytes,
		scale: *scale, seed: *seed, hotspots: *hotspots,
		qps: *qps, duration: *duration,
		step: *step, startQPS: *startQPS, growth: *growth, maxSteps: *maxSteps,
		slo: *slo, maxInflight: *maxInflight, benchDir: *benchDir,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "grouting-loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	routerAddr       string
	nStorage, nProcs int
	policyName       string
	cacheBytes       int64
	scale            float64
	seed             int64
	hotspots         int
	qps              float64
	duration         time.Duration
	step             time.Duration
	startQPS, growth float64
	maxSteps         int
	slo              time.Duration
	maxInflight      int
	benchDir         string
}

// window is one measured load interval: a ramp step or the sustained run.
type window struct {
	TargetQPS   float64 `json:"target_qps"`
	DurationSec float64 `json:"duration_sec"`
	Sent        int64   `json:"sent"`
	Done        int64   `json:"done"`
	Errors      int64   `json:"errors"`
	AchievedQPS float64 `json:"achieved_qps"`
	GoodputQPS  float64 `json:"goodput_qps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	MetSLO      bool    `json:"met_slo"`
}

// report is the BENCH_loadgen.json artifact.
type report struct {
	Config struct {
		Target      string  `json:"target"`
		Scale       float64 `json:"scale"`
		Seed        int64   `json:"seed"`
		Hotspots    int     `json:"hotspots"`
		Storage     int     `json:"storage"`
		Processors  int     `json:"processors"`
		Policy      string  `json:"policy"`
		SLOMs       float64 `json:"slo_ms"`
		MaxInflight int     `json:"max_inflight"`
	} `json:"config"`
	Ramp        []window `json:"ramp,omitempty"`
	MaxQPSAtSLO float64  `json:"max_qps_at_slo"`
	Sustained   window   `json:"sustained"`
	Allocs      *struct {
		TCPPerQuery     float64 `json:"tcp_allocs_per_query"`
		VirtualPerQuery float64 `json:"virtual_allocs_per_query"`
		Budget          float64 `json:"budget"`
	} `json:"alloc_comparison,omitempty"`
}

func run(cfg config) error {
	ctx := context.Background()
	g := grouting.GenerateDataset(grouting.WebGraph, cfg.scale, cfg.seed)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: cfg.hotspots, QueriesPerHotspot: 4, R: 2, H: 2, Seed: cfg.seed,
	})

	var rep report
	rep.Config.Scale = cfg.scale
	rep.Config.Seed = cfg.seed
	rep.Config.Hotspots = cfg.hotspots
	rep.Config.SLOMs = float64(cfg.slo) / float64(time.Millisecond)
	rep.Config.MaxInflight = cfg.maxInflight

	var cl grouting.Client
	var local grouting.Client // self-host only: the alloc baseline
	if cfg.routerAddr != "" {
		rep.Config.Target = cfg.routerAddr
		c, err := grouting.Dial(ctx, cfg.routerAddr)
		if err != nil {
			return err
		}
		defer c.Close()
		cl = c
	} else {
		rep.Config.Target = "self-hosted loopback"
		rep.Config.Storage = cfg.nStorage
		rep.Config.Processors = cfg.nProcs
		rep.Config.Policy = cfg.policyName
		policy, err := grouting.ParsePolicy(cfg.policyName)
		if err != nil {
			return err
		}
		remote, loc, cleanup, err := selfHost(ctx, g, cfg, policy)
		if err != nil {
			return err
		}
		defer cleanup()
		cl, local = remote, loc
	}

	// Warm caches, connection pools, and slab pools so the measured windows
	// see the steady state, not dials and first-touch storage fetches.
	for _, q := range qs {
		if _, err := cl.Execute(ctx, q); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}

	// Ramp: step the target rate up until the SLO breaks; the last step
	// that held is the max-QPS-at-SLO number.
	target := cfg.qps
	if target <= 0 {
		rate := cfg.startQPS
		for i := 0; i < cfg.maxSteps; i++ {
			w := runWindow(ctx, cl, qs, rate, cfg.step, cfg.maxInflight, cfg.slo)
			rep.Ramp = append(rep.Ramp, w)
			fmt.Printf("ramp %8.0f qps: achieved %8.1f  goodput %8.1f  p50 %6.2fms  p99 %6.2fms  p999 %6.2fms  %s\n",
				w.TargetQPS, w.AchievedQPS, w.GoodputQPS, w.P50Ms, w.P99Ms, w.P999Ms, verdict(w.MetSLO))
			if !w.MetSLO {
				break
			}
			rep.MaxQPSAtSLO = rate
			rate *= cfg.growth
		}
		if rep.MaxQPSAtSLO == 0 {
			// Even the first step missed the SLO: sustain at the starting
			// rate anyway so the artifact still records the tail shape.
			target = cfg.startQPS
		} else {
			target = rep.MaxQPSAtSLO
		}
	}

	w := runWindow(ctx, cl, qs, target, cfg.duration, cfg.maxInflight, cfg.slo)
	rep.Sustained = w
	if cfg.qps > 0 && w.MetSLO {
		rep.MaxQPSAtSLO = target
	}
	fmt.Printf("sustained %.0f qps for %v: goodput %.1f qps, p50 %.2fms p99 %.2fms p999 %.2fms, %.1f allocs/op, %s\n",
		w.TargetQPS, cfg.duration, w.GoodputQPS, w.P50Ms, w.P99Ms, w.P999Ms, w.AllocsPerOp, verdict(w.MetSLO))

	// Self-host mode pins the acceptance number: steady-state TCP per-query
	// allocations next to the virtual-time baseline (same budget as
	// TestTCPAllocBudget — the virtual path is alloc-free, so the absolute
	// budget is the operative bound).
	if local != nil {
		tcp := allocsPerQuery(ctx, cl, qs)
		virt := allocsPerQuery(ctx, local, qs)
		rep.Allocs = &struct {
			TCPPerQuery     float64 `json:"tcp_allocs_per_query"`
			VirtualPerQuery float64 `json:"virtual_allocs_per_query"`
			Budget          float64 `json:"budget"`
		}{TCPPerQuery: tcp, VirtualPerQuery: virt, Budget: 24}
		fmt.Printf("allocs/query: tcp %.1f, virtual-time %.1f (budget 24)\n", tcp, virt)
	}

	if err := writeReport(cfg.benchDir, &rep); err != nil {
		return err
	}
	if rep.Sustained.GoodputQPS <= 0 {
		return fmt.Errorf("zero goodput: %d sent, %d errors", rep.Sustained.Sent, rep.Sustained.Errors)
	}
	return nil
}

func verdict(met bool) string {
	if met {
		return "SLO met"
	}
	return "SLO MISSED"
}

// selfHost assembles a real loopback deployment through the public API plus
// the in-process virtual-time client used as the allocation baseline.
func selfHost(ctx context.Context, g *grouting.Graph, cfg config, policy grouting.Policy) (remote, local grouting.Client, cleanup func(), err error) {
	var closers []interface{ Close() error }
	cleanup = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i].Close()
		}
	}
	defer func() {
		if err != nil {
			cleanup()
		}
	}()

	var storageAddrs []string
	for i := 0; i < cfg.nStorage; i++ {
		ss, serr := grouting.ServeStorage("127.0.0.1:0")
		if serr != nil {
			return nil, nil, nil, serr
		}
		closers = append(closers, ss)
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	if err := grouting.LoadStorage(ctx, g, storageAddrs); err != nil {
		return nil, nil, nil, err
	}
	var procAddrs []string
	for i := 0; i < cfg.nProcs; i++ {
		ps, serr := grouting.ServeProcessor("127.0.0.1:0", storageAddrs, cfg.cacheBytes)
		if serr != nil {
			return nil, nil, nil, serr
		}
		closers = append(closers, ps)
		procAddrs = append(procAddrs, ps.Addr())
	}
	rs, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
		Processors: procAddrs,
		Policy:     policy,
		Graph:      g,
		Seed:       cfg.seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	closers = append(closers, rs)
	cl, err := grouting.Dial(ctx, rs.Addr())
	if err != nil {
		return nil, nil, nil, err
	}
	closers = append(closers, cl)

	sys, err := grouting.New(g,
		grouting.WithProcessors(cfg.nProcs),
		grouting.WithStorageServers(cfg.nStorage),
		grouting.WithPolicy(policy),
		grouting.WithSeed(cfg.seed),
	)
	if err != nil {
		return nil, nil, nil, err
	}
	local, err = grouting.NewLocalClient(sys)
	if err != nil {
		return nil, nil, nil, err
	}
	return cl, local, cleanup, nil
}

// runWindow drives cl open-loop at targetQPS for dur. Queries launch on a
// fixed schedule; each latency is completion minus *scheduled* send, so a
// stalled server shows up as tail latency (coordinated-omission-safe). The
// in-flight cap bounds memory, and because waiting for a slot happens after
// the scheduled timestamp is taken, backpressure is charged to the queries
// that suffered it.
func runWindow(ctx context.Context, cl grouting.Client, qs []grouting.Query, targetQPS float64, dur time.Duration, maxInflight int, slo time.Duration) window {
	interval := time.Duration(float64(time.Second) / targetQPS)
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	var done, errs atomic.Int64
	var mu sync.Mutex
	lats := make([]time.Duration, 0, int(targetQPS*dur.Seconds())+16)

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	deadline := start.Add(dur)
	var sent int64
	for i := 0; ; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if !sched.Before(deadline) {
			break
		}
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		sent++
		wg.Add(1)
		go func(q grouting.Query, sched time.Time) {
			defer wg.Done()
			_, err := cl.Execute(ctx, q)
			lat := time.Since(sched)
			<-sem
			if err != nil {
				errs.Add(1)
			}
			done.Add(1)
			mu.Lock()
			lats = append(lats, lat)
			mu.Unlock()
		}(qs[i%len(qs)], sched)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	w := window{
		TargetQPS:   targetQPS,
		DurationSec: elapsed.Seconds(),
		Sent:        sent,
		Done:        done.Load(),
		Errors:      errs.Load(),
	}
	if elapsed > 0 {
		w.AchievedQPS = float64(w.Done) / elapsed.Seconds()
		w.GoodputQPS = float64(w.Done-w.Errors) / elapsed.Seconds()
	}
	if w.Done > 0 {
		w.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(w.Done)
		w.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(w.Done)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	w.P50Ms = quantileMs(lats, 0.50)
	w.P99Ms = quantileMs(lats, 0.99)
	w.P999Ms = quantileMs(lats, 0.999)
	// SLO verdict: the p99 held, the generator kept (close to) its schedule,
	// and errors stayed under 1%.
	w.MetSLO = len(lats) > 0 &&
		w.P99Ms <= float64(slo)/float64(time.Millisecond) &&
		w.AchievedQPS >= 0.9*targetQPS &&
		float64(w.Errors) <= 0.01*float64(w.Sent)
	return w
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// allocsPerQuery measures steady-state per-query heap allocations on a
// serial closed loop — the same definition TestTCPAllocBudget pins.
func allocsPerQuery(ctx context.Context, cl grouting.Client, qs []grouting.Query) float64 {
	// One warm pass, then measure.
	for _, q := range qs {
		cl.Execute(ctx, q)
	}
	const rounds = 10
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for r := 0; r < rounds; r++ {
		for _, q := range qs {
			cl.Execute(ctx, q)
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(rounds*len(qs))
}

func writeReport(dir string, rep *report) error {
	if dir == "" {
		fmt.Println("BENCH_loadgen.json: skipped (no bench dir)")
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_loadgen.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
