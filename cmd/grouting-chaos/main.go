// Command grouting-chaos executes declarative chaos scenarios against the
// storage tier: a scenario is data (topology + scripted fault schedule +
// invariants), and the same scenario runs on the deterministic virtual-time
// engine or against real TCP daemons crashed and restarted in-process.
//
//	# what scenarios ship built in
//	grouting-chaos -list
//
//	# the acceptance scenario on both harnesses
//	grouting-chaos -scenario rolling-restart -harness both
//
//	# a custom scenario from disk (see -list output, or print one with -dump)
//	grouting-chaos -f myscenario.json -harness sim
//
//	# print a builtin as JSON — the starting point for a custom scenario
//	grouting-chaos -scenario netsplit -dump > myscenario.json
//
// The exit status is 0 only when every executed scenario passed its
// invariants; skipped runs (the live harness cannot inject netsplits or
// slow links) do not fail the command but are reported as SKIPPED.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chaos"
	"repro/internal/metrics"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the built-in scenarios and exit")
		scenario = flag.String("scenario", "", "built-in scenario name (see -list)")
		file     = flag.String("f", "", "run a scenario from a JSON file instead of a builtin")
		harness  = flag.String("harness", "sim", "sim | live | both")
		dump     = flag.Bool("dump", false, "print the selected scenario as JSON and exit (template for -f)")
	)
	flag.Parse()

	if *list {
		t := metrics.NewTable("scenario", "topology", "steps", "description")
		for _, name := range chaos.BuiltinNames() {
			sc := chaos.Builtin(name)
			topo := fmt.Sprintf("%dp/%ds/R%d", sc.Processors, sc.StorageServers, sc.StorageReplicas)
			if sc.Durable {
				topo += "+wal"
			}
			t.AddRow(name, topo, len(sc.Steps), sc.Description)
		}
		fmt.Print(t.String())
		return
	}

	sc, err := loadScenario(*scenario, *file)
	exitOn(err)

	if *dump {
		data, err := sc.JSON()
		exitOn(err)
		fmt.Println(string(data))
		return
	}

	sim := func() chaos.Harness { return chaos.NewSimHarness() }
	live := func() chaos.Harness { return chaos.NewLiveHarness() }
	var mks []func() chaos.Harness
	switch *harness {
	case "sim":
		mks = []func() chaos.Harness{sim}
	case "live":
		mks = []func() chaos.Harness{live}
	case "both":
		mks = []func() chaos.Harness{sim, live}
	default:
		exitOn(fmt.Errorf("unknown -harness %q (want sim, live or both)", *harness))
	}

	failed := false
	for _, mk := range mks {
		res, err := chaos.Run(sc, mk)
		exitOn(err)
		fmt.Print(res.String())
		if !res.Skipped && !res.Passed() {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// loadScenario resolves the -scenario / -f flags to a validated scenario.
func loadScenario(name, file string) (*chaos.Scenario, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("-scenario and -f are mutually exclusive")
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return chaos.Parse(data)
	case name != "":
		sc := chaos.Builtin(name)
		if sc == nil {
			return nil, fmt.Errorf("no built-in scenario %q (have: %s)", name, strings.Join(chaos.BuiltinNames(), ", "))
		}
		return sc, nil
	default:
		return nil, fmt.Errorf("need -scenario, -f or -list")
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
