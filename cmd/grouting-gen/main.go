// Command grouting-gen generates the synthetic dataset presets to disk in
// a plain adjacency-list text format and prints their Table 1 statistics.
//
//	grouting-gen -dataset webgraph -scale 0.5 -out webgraph.adj
//	grouting-gen -stats            # print Table 1 for all presets
//
// Format: one line per node — "nodeID: out1 out2 ..." (labels omitted).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "preset to generate (webgraph|friendster|memetracker|freebase)")
		scale   = flag.Float64("scale", 1.0, "scale factor")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print Table 1 statistics for every preset and exit")
	)
	flag.Parse()

	if *stats {
		fmt.Printf("%-12s %10s %12s %10s %14s %14s\n", "dataset", "nodes", "edges", "avg-2hop", "paper-nodes", "paper-edges")
		for _, d := range gen.Datasets {
			g, err := gen.Preset(d, *scale, *seed)
			exitOn(err)
			st := graph.ComputeStats(g)
			spec := gen.Specs[d]
			fmt.Printf("%-12s %10d %12d %10.0f %14d %14d\n",
				d, st.Nodes, st.Edges, graph.AvgKHopSize(g, 2, 40, graph.Out), spec.PaperNodes, spec.PaperEdges)
		}
		return
	}

	if *dataset == "" {
		fmt.Fprintln(os.Stderr, "need -dataset or -stats")
		flag.Usage()
		os.Exit(2)
	}
	g, err := gen.Preset(gen.Dataset(*dataset), *scale, *seed)
	exitOn(err)

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		exitOn(err)
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		if !g.Exists(id) {
			continue
		}
		fmt.Fprintf(w, "%d:", id)
		for _, e := range g.OutEdges(id) {
			fmt.Fprintf(w, " %d", e.To)
		}
		fmt.Fprintln(w)
	}
	exitOn(w.Flush())
	if *out != "" {
		fmt.Printf("wrote %d nodes / %d edges to %s\n", g.NumNodes(), g.NumEdges(), *out)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
