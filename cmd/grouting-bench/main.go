// Command grouting-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	grouting-bench -list
//	grouting-bench -run fig8a                 # one experiment, quick scale
//	grouting-bench -run all -scale full       # everything at paper scale
//	grouting-bench -run fig7 -graphscale 0.5  # override the graph size
//	grouting-bench -run all -parallel 0       # fan cells out over all cores
//
// Each figure's independent (policy, configuration, dataset) cells run on
// a bounded worker pool when -parallel is set; every cell owns a private
// System and virtual timeline, so the reported numbers are bit-identical
// to a serial run at any worker count.
//
// Output is a paper-style text table per experiment, with the expected
// qualitative shape quoted from the paper next to the measured rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		runID      = flag.String("run", "", "experiment id to run, or 'all'")
		list       = flag.Bool("list", false, "list available experiments")
		scaleName  = flag.String("scale", "quick", "quick or full")
		graphScale = flag.Float64("graphscale", 0, "override the dataset scale factor")
		hotspots   = flag.Int("hotspots", 0, "override the number of workload hotspots")
		seed       = flag.Int64("seed", 0, "override the experiment seed")
		parallel   = flag.Int("parallel", 1, "worker pool size for independent experiment cells; 0 = GOMAXPROCS, 1 = serial (results are identical at any setting)")
		benchDir   = flag.String("benchdir", ".", "directory for machine-readable BENCH_*.json artifacts ('' disables them)")
	)
	flag.Parse()
	experiments.SetParallelism(*parallel)
	experiments.SetBenchDir(*benchDir)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %-14s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}
	if *runID == "" {
		flag.Usage()
		os.Exit(2)
	}

	sc := experiments.Quick
	switch *scaleName {
	case "quick":
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleName)
		os.Exit(2)
	}
	if *graphScale > 0 {
		sc.GraphScale = *graphScale
	}
	if *hotspots > 0 {
		sc.Hotspots = *hotspots
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	var toRun []experiments.Experiment
	if *runID == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.Get(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *runID)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		if err := e.Run(os.Stdout, sc); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
