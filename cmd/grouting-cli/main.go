// Command grouting-cli is the client for a networked gRouting deployment:
// it loads a dataset into the storage tier and issues queries through the
// router via the transport-agnostic grouting.Client API.
//
//	# load the (seeded, regenerable) dataset into the storage shards
//	grouting-cli -load -dataset webgraph -graphscale 0.05 \
//	    -storage 127.0.0.1:7001,127.0.0.1:7002
//
//	# run a workload through the router and verify against the oracle
//	grouting-cli -router 127.0.0.1:7200 -dataset webgraph -graphscale 0.05 \
//	    -hotspots 20 -verify
//
//	# pipelined submission: batches of 32 queries per round trip
//	grouting-cli -router 127.0.0.1:7200 -batch 32
//
//	# the system's observability snapshot after the run
//	grouting-cli -router 127.0.0.1:7200 -stats
//
//	# the processing tier's current topology (epoch, member status, the
//	# per-epoch transition log) — watch a scale-out land
//	grouting-cli -router 127.0.0.1:7200 -topology
//
//	# online mutations through the router's write path: upsert nodes
//	# ("id" or "id:label"), add edges ("u->v" or "u->v:label"), remove
//	# edges ("u->v"); comma-separate for one atomic-feeling batch
//	grouting-cli -router 127.0.0.1:7200 -put "900001:city,900001->17:near"
//	grouting-cli -router 127.0.0.1:7200 -del "900001->17"
//
//	# adaptive placement: trigger a planning cycle, inspect the counters
//	# and the migration log
//	grouting-cli -router 127.0.0.1:7200 -migrate
//	grouting-cli -router 127.0.0.1:7200 -placement
//
//	# ad-hoc multi-anchor queries: a two-anchor pattern join (anchors 7
//	# and 9 sharing an out-neighbour) and a budgeted multi-source
//	# reachability (partial evaluation, 8 visits per subtask)
//	grouting-cli -router 127.0.0.1:7200 -pattern "7->x,9->x"
//	grouting-cli -router 127.0.0.1:7200 -reach "5+9->1400" -h 6 -budget 8
//
//	# k-nearest by embedding: the 8 nodes within 2 undirected hops of
//	# node 42 nearest to it under the router's embedding (the router
//	# needs PolicyEmbed or groutingd -embed-file)
//	grouting-cli -router 127.0.0.1:7200 -knn 42 -k 8 -h 2
//
//	# generated workloads can include the multi-anchor kinds too
//	grouting-cli -router 127.0.0.1:7200 -mixed -budget 8 -verify
//
//	# what routing strategies are registered (built-ins + user strategies)
//	grouting-cli -policy list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	grouting "repro"
	"repro/internal/cliutil"
	"repro/internal/gen"
	"repro/internal/metrics"
)

func main() {
	var (
		load       = flag.Bool("load", false, "load the dataset into the storage tier and exit")
		storage    = flag.String("storage", "", "comma-separated storage addresses (for -load)")
		replicas   = flag.Int("replicas", 1, "storage replication factor for -load (start processors with the same -storage-replicas)")
		routerAddr = flag.String("router", "", "router address (for querying)")
		policy     = flag.String("policy", "", "'list' prints the strategy registry; any other name resolves and prints it")
		dataset    = flag.String("dataset", "webgraph", "dataset preset")
		graphScale = flag.Float64("graphscale", 0.05, "dataset scale")
		seed       = flag.Int64("seed", 42, "generator seed")
		hotspots   = flag.Int("hotspots", 10, "workload hotspots")
		perHotspot = flag.Int("per-hotspot", 10, "queries per hotspot")
		r          = flag.Int("r", 2, "hotspot radius (hops)")
		h          = flag.Int("h", 2, "traversal depth (hops)")
		batch      = flag.Int("batch", 1, "queries per round trip (1 = one Execute per query)")
		timeout    = flag.Duration("timeout", 0, "overall deadline for the workload (0 = none)")
		verify     = flag.Bool("verify", false, "check every result against the in-memory oracle")
		stats      = flag.Bool("stats", false, "print the system's Stats() snapshot after the run")
		topo       = flag.Bool("topology", false, "print the processing tier's topology (epoch, member status, transition log) and exit")
		put        = flag.String("put", "", `mutations to apply and exit: "id", "id:label", "u->v", "u->v:label", comma-separated`)
		del        = flag.String("del", "", `edges to remove and exit: "u->v", comma-separated (combines with -put in one batch, puts first)`)
		migrate    = flag.Bool("migrate", false, "trigger one adaptive-placement planning cycle on the router and exit")
		placementV = flag.Bool("placement", false, "print the adaptive-placement counters and migration log and exit")
		patternF   = flag.String("pattern", "", `ad-hoc pattern query: template edges "u->v[:elabel]" comma-separated; numeric endpoints anchor at that node, names are free variables, "name=label" constrains a variable's node label (e.g. "7->x,9->x,x=paper")`)
		reachF     = flag.String("reach", "", `ad-hoc bounded-reachability query "a1+a2+...->target" (multi-anchor; depth -h, per-subtask budget -budget)`)
		knnF       = flag.String("knn", "", `ad-hoc k-nearest query: anchor node id (candidates within -h undirected hops, ranked by the router's embedding, top -k returned)`)
		k          = flag.Int("k", 8, fmt.Sprintf("result count for -knn (1..%d)", grouting.MaxKNearest))
		budget     = flag.Int("budget", 64, "per-partition visit budget for -reach and -mixed BoundedReach queries")
		mixed      = flag.Bool("mixed", false, "generate the full mixed workload (classic + PatternMatch + BoundedReach) instead of the classic three")
	)
	flag.Parse()

	if *policy != "" {
		if *policy == "list" {
			fmt.Print(policyTable())
			return
		}
		pol, err := grouting.ParsePolicy(*policy)
		exitOn(err)
		fmt.Printf("%s resolves to policy %d (needs landmarks: %v, needs embedding: %v)\n",
			pol, int(pol), pol.NeedsLandmarks(), pol.NeedsEmbedding())
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *topo {
		if *routerAddr == "" {
			exitOn(fmt.Errorf("-topology needs -router"))
		}
		cl, err := grouting.Dial(ctx, *routerAddr)
		exitOn(err)
		defer cl.Close()
		snap, err := cl.Stats(ctx)
		exitOn(err)
		fmt.Print(topologyTable(&snap))
		return
	}

	if *put != "" || *del != "" {
		if *routerAddr == "" {
			exitOn(fmt.Errorf("-put/-del need -router"))
		}
		muts, err := parseMutations(*put, *del)
		exitOn(err)
		cl, err := grouting.Dial(ctx, *routerAddr)
		exitOn(err)
		defer cl.Close()
		n, err := cl.Mutate(ctx, muts)
		if err != nil {
			exitOn(fmt.Errorf("applied %d of %d mutations: %w", n, len(muts), err))
		}
		fmt.Printf("applied %d mutations\n", n)
		return
	}

	if *migrate {
		if *routerAddr == "" {
			exitOn(fmt.Errorf("-migrate needs -router"))
		}
		moved, err := grouting.TriggerPlacement(ctx, *routerAddr)
		exitOn(err)
		fmt.Printf("placement cycle moved %d records\n", moved)
		if !*placementV {
			return
		}
	}

	if *placementV {
		if *routerAddr == "" {
			exitOn(fmt.Errorf("-placement needs -router"))
		}
		cl, err := grouting.Dial(ctx, *routerAddr)
		exitOn(err)
		defer cl.Close()
		snap, err := cl.Stats(ctx)
		exitOn(err)
		fmt.Print(placementTable(&snap))
		return
	}

	if *patternF != "" || *reachF != "" || *knnF != "" {
		if *routerAddr == "" {
			exitOn(fmt.Errorf("-pattern/-reach/-knn need -router"))
		}
		q, err := parseAdHoc(*patternF, *reachF, *knnF, *h, *budget, *k)
		exitOn(err)
		cl, err := grouting.Dial(ctx, *routerAddr)
		exitOn(err)
		defer cl.Close()
		start := time.Now()
		res, err := cl.Execute(ctx, q)
		exitOn(err)
		switch q.Type {
		case grouting.PatternMatch:
			fmt.Printf("%d matches in %v\n", res.Matches, time.Since(start).Round(time.Microsecond))
		case grouting.KNearest:
			fmt.Printf("%d nearest of node %d: %v in %v\n",
				res.Count, q.Node, res.Nearest[:res.Count], time.Since(start).Round(time.Microsecond))
		default:
			fmt.Printf("reachable: %v in %v\n", res.Reachable, time.Since(start).Round(time.Microsecond))
		}
		return
	}

	g, err := gen.Preset(gen.Dataset(*dataset), *graphScale, *seed)
	exitOn(err)

	if *load {
		addrs, err := cliutil.SplitAddrs(*storage)
		exitOn(err)
		if len(addrs) == 0 {
			exitOn(fmt.Errorf("-load needs -storage"))
		}
		start := time.Now()
		exitOn(grouting.LoadStorageReplicated(ctx, g, addrs, *replicas))
		fmt.Printf("loaded %d nodes / %d edges across %d shards (x%d replicas) in %v\n",
			g.NumNodes(), g.NumEdges(), len(addrs), *replicas, time.Since(start).Round(time.Millisecond))
		return
	}

	if *routerAddr == "" {
		fmt.Fprintln(os.Stderr, "need -load or -router")
		flag.Usage()
		os.Exit(2)
	}
	cl, err := grouting.Dial(ctx, *routerAddr)
	exitOn(err)
	defer cl.Close()

	spec := grouting.WorkloadSpec{
		NumHotspots: *hotspots, QueriesPerHotspot: *perHotspot, R: *r, H: *h, Seed: *seed + 1,
	}
	if *mixed {
		spec.Types = grouting.MixedTypes
		spec.VisitBudget = *budget
	}
	qs := grouting.HotspotWorkload(g, spec)
	results := make([]grouting.Result, len(qs))
	start := time.Now()
	if *batch <= 1 {
		for i, q := range qs {
			res, err := cl.Execute(ctx, q)
			exitOn(err)
			results[i] = res
		}
	} else {
		for lo := 0; lo < len(qs); lo += *batch {
			hi := min(lo+*batch, len(qs))
			res, err := cl.ExecuteBatch(ctx, qs[lo:hi])
			exitOn(err)
			copy(results[lo:hi], res)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d queries in %v (%.1f q/s, mean %.2fms)\n",
		len(qs), elapsed.Round(time.Millisecond),
		float64(len(qs))/elapsed.Seconds(),
		elapsed.Seconds()*1000/float64(len(qs)))
	if *verify {
		wrong := 0
		for i, q := range qs {
			if results[i] != grouting.Answer(g, q) {
				wrong++
			}
		}
		if wrong > 0 {
			exitOn(fmt.Errorf("%d of %d results disagree with the oracle", wrong, len(qs)))
		}
		fmt.Println("all results verified against the oracle")
	}
	if *stats {
		snap, err := cl.Stats(ctx)
		exitOn(err)
		fmt.Print(snap.String())
	}
}

// parseAdHoc builds the single query behind -pattern, -reach or -knn
// (mutually exclusive).
func parseAdHoc(pattern, reach, knn string, hops, budget, k int) (grouting.Query, error) {
	set := 0
	for _, s := range []string{pattern, reach, knn} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return grouting.Query{}, fmt.Errorf("-pattern, -reach and -knn are mutually exclusive")
	}
	switch {
	case pattern != "":
		return parsePattern(pattern)
	case knn != "":
		return parseKNN(knn, hops, k)
	}
	return parseReach(reach, hops, budget)
}

// parsePattern turns a comma-separated template spec into a PatternMatch
// query. Each part is an edge "u->v" / "u->v:elabel" (numeric endpoints
// anchor at that graph node, other tokens name free variables; repeating a
// token reuses its variable) or a node-label constraint "name=label".
func parsePattern(spec string) (grouting.Query, error) {
	var q grouting.Query
	pat := &grouting.Pattern{}
	idx := make(map[string]int)
	varOf := func(tok string) (int, error) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return 0, fmt.Errorf("empty endpoint")
		}
		if i, ok := idx[tok]; ok {
			return i, nil
		}
		var pn grouting.PatternNode
		if n, err := strconv.ParseUint(tok, 10, 32); err == nil {
			if n == 0 {
				return 0, fmt.Errorf("node 0 cannot anchor a pattern")
			}
			pn.Anchor = grouting.NodeID(n)
		}
		idx[tok] = len(pat.Nodes)
		pat.Nodes = append(pat.Nodes, pn)
		return idx[tok], nil
	}
	for _, part := range splitSpecs(spec) {
		if !strings.Contains(part, "->") {
			name, label, ok := strings.Cut(part, "=")
			if !ok {
				return q, fmt.Errorf(`-pattern %q: want "u->v[:elabel]" or "name=label"`, part)
			}
			i, err := varOf(name)
			if err != nil {
				return q, fmt.Errorf("-pattern %q: %w", part, err)
			}
			pat.Nodes[i].Label = strings.TrimSpace(label)
			continue
		}
		body, elabel := part, ""
		if i := strings.IndexByte(part, ':'); i >= 0 {
			body, elabel = part[:i], part[i+1:]
		}
		u, v, _ := strings.Cut(body, "->")
		ui, err := varOf(u)
		if err != nil {
			return q, fmt.Errorf("-pattern %q: %w", part, err)
		}
		vi, err := varOf(v)
		if err != nil {
			return q, fmt.Errorf("-pattern %q: %w", part, err)
		}
		pat.Edges = append(pat.Edges, grouting.PatternEdge{From: ui, To: vi, Label: strings.TrimSpace(elabel)})
	}
	q = grouting.Query{Type: grouting.PatternMatch, Pattern: pat, Dir: grouting.Out}
	if anchors := q.AnchorNodes(); len(anchors) > 0 {
		q.Node = anchors[0]
	}
	return q, q.Validate()
}

// parseReach turns "a1+a2+...->target" into a BoundedReach query.
func parseReach(spec string, hops, budget int) (grouting.Query, error) {
	var q grouting.Query
	left, right, ok := strings.Cut(spec, "->")
	if !ok {
		return q, fmt.Errorf(`-reach %q: want "a1+a2+...->target"`, spec)
	}
	target, err := parseNodeID(right)
	if err != nil {
		return q, fmt.Errorf("-reach %q: %w", spec, err)
	}
	var anchors []grouting.NodeID
	for _, tok := range strings.Split(left, "+") {
		a, err := parseNodeID(tok)
		if err != nil {
			return q, fmt.Errorf("-reach %q: %w", spec, err)
		}
		anchors = append(anchors, a)
	}
	q = grouting.Query{
		Type: grouting.BoundedReach, Node: anchors[0], Anchors: anchors,
		Target: target, Hops: hops, VisitBudget: budget, Dir: grouting.Out,
	}
	return q, q.Validate()
}

// parseKNN turns an anchor node id into a KNearest query.
func parseKNN(spec string, hops, k int) (grouting.Query, error) {
	anchor, err := parseNodeID(spec)
	if err != nil {
		return grouting.Query{}, fmt.Errorf("-knn %q: %w", spec, err)
	}
	q := grouting.Query{Type: grouting.KNearest, Node: anchor, Hops: hops, K: k, Dir: grouting.Both}
	return q, q.Validate()
}

// parseMutations turns the -put and -del flag values into one mutation
// batch, puts first. Each comma-separated spec is "id" / "id:label"
// (upsert node) or "u->v" / "u->v:label" (edge); -del accepts edges only.
func parseMutations(put, del string) ([]grouting.Mutation, error) {
	var muts []grouting.Mutation
	for _, spec := range splitSpecs(put) {
		m, err := parseSpec(spec, false)
		if err != nil {
			return nil, fmt.Errorf("-put %q: %w", spec, err)
		}
		muts = append(muts, m)
	}
	for _, spec := range splitSpecs(del) {
		m, err := parseSpec(spec, true)
		if err != nil {
			return nil, fmt.Errorf("-del %q: %w", spec, err)
		}
		muts = append(muts, m)
	}
	return muts, nil
}

func splitSpecs(s string) []string {
	var specs []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			specs = append(specs, part)
		}
	}
	return specs
}

func parseSpec(spec string, del bool) (grouting.Mutation, error) {
	var m grouting.Mutation
	body := spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		body, m.Label = spec[:i], spec[i+1:]
	}
	u, v, isEdge := strings.Cut(body, "->")
	switch {
	case del && !isEdge:
		return m, fmt.Errorf(`want "u->v" (only edges can be removed)`)
	case del && m.Label != "":
		return m, fmt.Errorf("remove-edge matches any label; drop the :%s", m.Label)
	case del:
		m.Op = grouting.MutRemoveEdge
	case isEdge:
		m.Op = grouting.MutAddEdge
	default:
		m.Op = grouting.MutUpsertNode
	}
	id, err := parseNodeID(u)
	if err != nil {
		return m, err
	}
	m.Node = id
	if isEdge {
		if m.To, err = parseNodeID(v); err != nil {
			return m, err
		}
	}
	return m, nil
}

func parseNodeID(s string) (grouting.NodeID, error) {
	n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad node id %q", s)
	}
	return grouting.NodeID(n), nil
}

// placementTable renders the adaptive-placement subsystem's counters and
// its migration log from a Stats snapshot.
func placementTable(snap *grouting.Stats) string {
	var b strings.Builder
	p := snap.Placement
	budget := "unbounded"
	if p.BudgetBytes > 0 {
		budget = fmt.Sprintf("%d KiB", p.BudgetBytes>>10)
	}
	fmt.Fprintf(&b, "placement: %d cycles, %d moved of %d planned (%d KiB, budget %s/cycle), %d records pinned\n",
		p.Cycles, p.Moved, p.Planned, p.MovedBytes>>10, budget, p.Overrides)
	fmt.Fprintf(&b, "skipped: %d over budget, %d below hysteresis; %d mutations applied\n",
		p.SkippedBudget, p.SkippedCold, snap.Mutations)
	if len(snap.PlacementLog) > 0 {
		t := metrics.NewTable("key", "from", "to", "reader", "reads", "bytes")
		for _, e := range snap.PlacementLog {
			t.AddRow(e.Key, e.From, e.To, e.Reader, e.Reads, e.Bytes)
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// policyTable renders the strategy registry as an aligned table.
func policyTable() string {
	t := metrics.NewTable("policy", "id", "landmarks", "embedding")
	for _, in := range grouting.StrategyRegistry() {
		t.AddRow(in.Name, int(in.Policy), in.NeedsLandmarks, in.NeedsEmbedding)
	}
	return t.String()
}

// topologyTable renders both tiers' membership and the tier-tagged epoch
// transition log from a Stats snapshot.
func topologyTable(snap *grouting.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "processors: epoch %d, %d active of %d slots (policy %s, strategy %s, %d reassigned across transitions)\n",
		snap.Epoch, snap.Processors, len(snap.PerProc), snap.Policy, snap.Strategy, snap.Reassigned)
	t := metrics.NewTable("tier", "slot", "status", "addr", "assigned", "executed", "queue")
	for _, p := range snap.PerProc {
		t.AddRow("proc", p.Proc, p.Status, p.Addr, p.Assigned, p.Executed, p.QueueDepth)
	}
	b.WriteString(t.String())
	if len(snap.PerStorage) > 0 {
		fmt.Fprintf(&b, "storage: epoch %d, %d members, %d replicas per record\n",
			snap.StorageEpoch, len(snap.PerStorage), snap.StorageReplicas)
		// The durability columns show each shard's crash-recovery state:
		// "-" = in-memory only, "fresh" = WAL enabled and started empty,
		// "warm" = recovered its state from local snapshot + WAL; dur-ver
		// is the durable record watermark a rejoining shard announces.
		ts := metrics.NewTable("tier", "slot", "status", "addr", "keys", "gets", "failovers", "durable", "dur-ver", "wal-kb", "snaps")
		for _, m := range snap.PerStorage {
			durable := m.Durable
			if durable == "" {
				durable = "-"
			}
			ts.AddRow("storage", m.Slot, m.Status, m.Addr, m.Keys, m.Gets, m.Failovers,
				durable, m.DurableVersion, m.WALBytes>>10, m.Snapshots)
		}
		b.WriteString(ts.String())
	}
	if len(snap.Epochs) > 0 {
		te := metrics.NewTable("tier", "epoch", "joined", "left", "failed", "revived", "reassigned")
		for _, e := range snap.Epochs {
			tier := e.Tier
			if tier == "" {
				tier = "proc"
			}
			te.AddRow(tier, e.Epoch, e.Joined, e.Left, e.Failed, e.Revived, e.Reassigned)
		}
		b.WriteString(te.String())
	}
	return b.String()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
