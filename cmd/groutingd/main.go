// Command groutingd runs one daemon of the decoupled deployment: a storage
// shard, a query processor, or the query router — the public
// grouting.ServeStorage / ServeProcessor / ServeRouter entry points as a
// binary.
//
// A minimal localhost deployment:
//
//	groutingd -role storage -listen 127.0.0.1:7001 &
//	groutingd -role storage -listen 127.0.0.1:7002 &
//	groutingd -role processor -listen 127.0.0.1:7101 \
//	    -storage 127.0.0.1:7001,127.0.0.1:7002 &
//	groutingd -role router -listen 127.0.0.1:7200 \
//	    -processors 127.0.0.1:7101 -policy landmark \
//	    -dataset webgraph -graphscale 0.05 &
//
// Both tiers are elastic: additional processors join the running router
// at any time with -join (the router verifies them, bumps the topology
// epoch and starts routing to them immediately), storage shards -join the
// router's storage view the same way, and SIGINT / SIGTERM shuts every
// role down gracefully — a joined member first deregisters through the
// drain path, so the router sees a clean leave rather than a dead peer:
//
//	groutingd -role processor -listen 127.0.0.1:7102 \
//	    -storage 127.0.0.1:7001,127.0.0.1:7002 \
//	    -join 127.0.0.1:7200 &
//
// The storage tier can be replicated: load it with grouting-cli -load
// -replicas 2 and start every processor with -storage-replicas 2. Reads
// then fail over transparently when a shard dies and recover when it
// answers again; grouting-cli -topology shows both tiers' membership.
//
// Smart routing policies need the graph for preprocessing, so the router
// regenerates the named dataset (the same seeded generator grouting-cli
// uses to load the storage tier). Clients connect to the router with
// grouting.Dial.
//
// Every role can additionally expose its runtime counters over HTTP with
// -http addr: GET /statsz returns them as JSON (for the router, the full
// system-wide grouting.Stats snapshot — per-processor placement, topology
// epoch, cache hit rates, routing-decision percentiles), and /debug/vars
// serves the same data through the standard expvar surface for scrapers.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	grouting "repro"
	"repro/internal/cliutil"
	"repro/internal/gen"
)

func main() {
	var (
		role       = flag.String("role", "", "storage | processor | router")
		listen     = flag.String("listen", "127.0.0.1:0", "listen address")
		httpAddr   = flag.String("http", "", "serve /statsz (JSON) and expvar /debug/vars on this address (empty = disabled)")
		storage    = flag.String("storage", "", "comma-separated storage addresses (processor role; optional for the router role, to seed its storage view)")
		replicas   = flag.Int("storage-replicas", 1, "storage replication factor (processor + router roles; must match what the loader used)")
		processors = flag.String("processors", "", "comma-separated processor addresses (router role)")
		join       = flag.String("join", "", "router address to register with at startup (processor and storage roles)")
		walDir     = flag.String("wal-dir", "", "storage role: log every write to a WAL under this directory and recover from it on restart (empty = in-memory only)")
		walFsync   = flag.Bool("wal-fsync", false, "storage role: fsync every WAL append (machine-crash durable; default is process-death durable)")
		advertise  = flag.String("advertise", "", "address announced to the router on -join (default: the listen address)")
		policy     = flag.String("policy", "nextready", "routing policy (any registered strategy; see grouting-cli -policy list)")
		cacheMB    = flag.Int64("cache-mb", 256, "processor cache capacity in MiB")
		dataset    = flag.String("dataset", "webgraph", "dataset preset for smart-routing preprocessing (router role)")
		graphScale = flag.Float64("graphscale", 0.05, "dataset scale for preprocessing (router role)")
		seed       = flag.Int64("seed", 42, "generator / preprocessing seed")
		embedFile  = flag.String("embed-file", "", "router role: precomputed embedding artifact (grouting.WriteEmbeddingFile) used in place of the learned embedding for routing and k-nearest queries")

		adaptive      = flag.Bool("adaptive", false, "router role: enable workload-adaptive placement (needs -storage)")
		placeBudgetKB = flag.Int64("placement-budget-kb", 0, "router role: bytes migrated per placement cycle in KiB (0 = unbounded)")
		placeEvery    = flag.Int("placement-every", 0, "router role: run a placement cycle every N completed queries (0 = only explicit grouting-cli -migrate)")
		placeMinReads = flag.Int64("placement-min-reads", 0, "router role: planner hysteresis floor, reads per record per cycle (0 = default)")
	)
	flag.Parse()

	switch *role {
	case "storage":
		var s *grouting.StorageServer
		var err error
		if *walDir != "" {
			s, err = grouting.ServeStorageDurable(*listen, *walDir, *walFsync)
			exitOn(err)
			st := s.Stats()
			fmt.Printf("storage shard listening on %s (%s, %d durable records under %s)\n",
				s.Addr(), st.Durable, st.DurableVersion, *walDir)
		} else {
			s, err = grouting.ServeStorage(*listen)
			exitOn(err)
			fmt.Printf("storage shard listening on %s\n", s.Addr())
		}
		if *join != "" {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			slot, err := s.Register(ctx, *join, *advertise)
			cancel()
			exitOn(err)
			fmt.Printf("joined router %s as storage slot %d\n", *join, slot)
		}
		serveHTTP(*httpAddr, func() (any, error) { return s.Stats(), nil })
		awaitSignal()
		// Shutdown order matters for durability: flush + fsync the WAL
		// while still serving (every acked write reaches disk), then leave
		// the router's view cleanly, then close the listener.
		fmt.Println("shutting down storage shard")
		if err := s.SyncWAL(); err != nil {
			fmt.Fprintf(os.Stderr, "wal sync: %v\n", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := s.Deregister(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "deregister: %v\n", err)
		}
		cancel()
		s.Close()
	case "processor":
		addrs, err := cliutil.SplitAddrs(*storage)
		exitOn(err)
		if len(addrs) == 0 {
			exitOn(fmt.Errorf("processor role needs -storage"))
		}
		p, err := grouting.ServeProcessorWith(*listen, grouting.ProcessorSpec{
			Storage: addrs, StorageReplicas: *replicas, CacheBytes: *cacheMB << 20,
		})
		exitOn(err)
		fmt.Printf("processor listening on %s (storage: %s, replicas %d)\n", p.Addr(), *storage, *replicas)
		if *join != "" {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			slot, err := p.Register(ctx, *join, *advertise)
			cancel()
			exitOn(err)
			fmt.Printf("joined router %s as processor slot %d\n", *join, slot)
		}
		serveHTTP(*httpAddr, func() (any, error) { return p.Stats(), nil })
		awaitSignal()
		// Leave cleanly: the router drains us (no new work, in-flight
		// queries finish on the old view) before we close the listener.
		fmt.Println("shutting down processor")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := p.Deregister(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "deregister: %v\n", err)
		}
		cancel()
		p.Close()
	case "router":
		addrs, err := cliutil.SplitAddrs(*processors)
		exitOn(err)
		if len(addrs) == 0 {
			exitOn(fmt.Errorf("router role needs -processors (more can -join later)"))
		}
		pol, err := grouting.ParsePolicy(*policy)
		exitOn(err)
		spec := grouting.RouterSpec{
			Processors: addrs, Policy: pol, Seed: *seed, StorageReplicas: *replicas,
			AdaptivePlacement: *adaptive, PlacementBudget: *placeBudgetKB << 10,
			PlacementEvery: *placeEvery, PlacementMinReads: *placeMinReads,
		}
		if *storage != "" {
			saddrs, err := cliutil.SplitAddrs(*storage)
			exitOn(err)
			spec.Storage = saddrs
		}
		if pol.NeedsLandmarks() {
			g, err := gen.Preset(gen.Dataset(*dataset), *graphScale, *seed)
			exitOn(err)
			spec.Graph = g
		}
		if *embedFile != "" {
			fp, err := grouting.OpenEmbeddingFile(*embedFile)
			exitOn(err)
			spec.EmbedProvider = fp
			fmt.Printf("embedding from %s (%d dims)\n", *embedFile, fp.Dimensions())
		}
		r, err := grouting.ServeRouter(*listen, spec)
		exitOn(err)
		fmt.Printf("router listening on %s (policy %s, %d processors, epoch %d)\n",
			r.Addr(), pol, len(addrs), r.Epoch())
		serveHTTP(*httpAddr, func() (any, error) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			return r.Snapshot(ctx)
		})
		awaitSignal()
		fmt.Println("shutting down router")
		r.Close()
	default:
		fmt.Fprintln(os.Stderr, "need -role storage|processor|router")
		flag.Usage()
		os.Exit(2)
	}
}

// awaitSignal blocks until SIGINT or SIGTERM, then returns so the caller
// can shut its daemon down gracefully (close listeners, deregister from
// the router) instead of dying mid-request.
func awaitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
}

// serveHTTP exposes the daemon's counters on addr: /statsz as plain JSON
// and /debug/vars through expvar (the snapshot is published as the
// "grouting" variable). No-op when addr is empty.
func serveHTTP(addr string, stats func() (any, error)) {
	if addr == "" {
		return
	}
	expvar.Publish("grouting", expvar.Func(func() any {
		v, err := stats()
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return v
	}))
	mux := http.NewServeMux()
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		v, err := stats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	ln, err := net.Listen("tcp", addr)
	exitOn(err)
	fmt.Printf("http stats on http://%s/statsz\n", ln.Addr())
	go http.Serve(ln, mux)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
