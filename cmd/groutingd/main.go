// Command groutingd runs one daemon of the decoupled deployment: a storage
// shard, a query processor, or the query router — the public
// grouting.ServeStorage / ServeProcessor / ServeRouter entry points as a
// binary.
//
// A minimal localhost deployment:
//
//	groutingd -role storage -listen 127.0.0.1:7001 &
//	groutingd -role storage -listen 127.0.0.1:7002 &
//	groutingd -role processor -listen 127.0.0.1:7101 \
//	    -storage 127.0.0.1:7001,127.0.0.1:7002 &
//	groutingd -role router -listen 127.0.0.1:7200 \
//	    -processors 127.0.0.1:7101 -policy landmark \
//	    -dataset webgraph -graphscale 0.05 &
//
// Smart routing policies need the graph for preprocessing, so the router
// regenerates the named dataset (the same seeded generator grouting-cli
// uses to load the storage tier). Clients connect to the router with
// grouting.Dial.
//
// Every role can additionally expose its runtime counters over HTTP with
// -http addr: GET /statsz returns them as JSON (for the router, the full
// system-wide grouting.Stats snapshot — per-processor placement, cache hit
// rates, routing-decision percentiles), and /debug/vars serves the same
// data through the standard expvar surface for scrapers.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	grouting "repro"
	"repro/internal/gen"
)

func main() {
	var (
		role       = flag.String("role", "", "storage | processor | router")
		listen     = flag.String("listen", "127.0.0.1:0", "listen address")
		httpAddr   = flag.String("http", "", "serve /statsz (JSON) and expvar /debug/vars on this address (empty = disabled)")
		storage    = flag.String("storage", "", "comma-separated storage addresses (processor role)")
		processors = flag.String("processors", "", "comma-separated processor addresses (router role)")
		policy     = flag.String("policy", "nextready", "routing policy (any registered strategy; see grouting-cli -policy list)")
		cacheMB    = flag.Int64("cache-mb", 256, "processor cache capacity in MiB")
		dataset    = flag.String("dataset", "webgraph", "dataset preset for smart-routing preprocessing (router role)")
		graphScale = flag.Float64("graphscale", 0.05, "dataset scale for preprocessing (router role)")
		seed       = flag.Int64("seed", 42, "generator / preprocessing seed")
	)
	flag.Parse()

	switch *role {
	case "storage":
		s, err := grouting.ServeStorage(*listen)
		exitOn(err)
		fmt.Printf("storage shard listening on %s\n", s.Addr())
		serveHTTP(*httpAddr, func() (any, error) { return s.Stats(), nil })
		select {}
	case "processor":
		addrs := splitAddrs(*storage)
		if len(addrs) == 0 {
			exitOn(fmt.Errorf("processor role needs -storage"))
		}
		p, err := grouting.ServeProcessor(*listen, addrs, *cacheMB<<20)
		exitOn(err)
		fmt.Printf("processor listening on %s (storage: %s)\n", p.Addr(), *storage)
		serveHTTP(*httpAddr, func() (any, error) { return p.Stats(), nil })
		select {}
	case "router":
		addrs := splitAddrs(*processors)
		if len(addrs) == 0 {
			exitOn(fmt.Errorf("router role needs -processors"))
		}
		pol, err := grouting.ParsePolicy(*policy)
		exitOn(err)
		spec := grouting.RouterSpec{Processors: addrs, Policy: pol, Seed: *seed}
		if pol.NeedsLandmarks() {
			g, err := gen.Preset(gen.Dataset(*dataset), *graphScale, *seed)
			exitOn(err)
			spec.Graph = g
		}
		r, err := grouting.ServeRouter(*listen, spec)
		exitOn(err)
		fmt.Printf("router listening on %s (policy %s, %d processors)\n", r.Addr(), pol, len(addrs))
		serveHTTP(*httpAddr, func() (any, error) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			return r.Snapshot(ctx)
		})
		select {}
	default:
		fmt.Fprintln(os.Stderr, "need -role storage|processor|router")
		flag.Usage()
		os.Exit(2)
	}
}

// serveHTTP exposes the daemon's counters on addr: /statsz as plain JSON
// and /debug/vars through expvar (the snapshot is published as the
// "grouting" variable). No-op when addr is empty.
func serveHTTP(addr string, stats func() (any, error)) {
	if addr == "" {
		return
	}
	expvar.Publish("grouting", expvar.Func(func() any {
		v, err := stats()
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return v
	}))
	mux := http.NewServeMux()
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		v, err := stats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	ln, err := net.Listen("tcp", addr)
	exitOn(err)
	fmt.Printf("http stats on http://%s/statsz\n", ln.Addr())
	go http.Serve(ln, mux)
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
