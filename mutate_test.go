package grouting_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	grouting "repro"
)

// startWritableTCPCluster is startTCPCluster with the storage tier handed
// to the router, which is what arms the replicated write path (and, when
// spec'd, the placement planner) on the TCP transport.
func startWritableTCPCluster(t testing.TB, g *grouting.Graph, nStorage, nProcs int, policy grouting.Policy) grouting.Client {
	t.Helper()
	ctx := context.Background()
	var storageAddrs []string
	for i := 0; i < nStorage; i++ {
		ss, err := grouting.ServeStorage("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ss.Close() })
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	if err := grouting.LoadStorage(ctx, g, storageAddrs); err != nil {
		t.Fatal(err)
	}
	var procAddrs []string
	for i := 0; i < nProcs; i++ {
		ps, err := grouting.ServeProcessor("127.0.0.1:0", storageAddrs, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ps.Close() })
		procAddrs = append(procAddrs, ps.Addr())
	}
	rs, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
		Processors: procAddrs,
		Policy:     policy,
		Graph:      g,
		Seed:       7,
		Storage:    storageAddrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	cl, err := grouting.Dial(ctx, rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// mutationStream is the transport-agnostic write workload: singleton
// upserts and edge inserts, a batched burst, and a tombstoning removal,
// every write mirrored onto the caller's oracle. It returns the nodes it
// created.
func mutationStream(ctx context.Context, c grouting.Client, oracle *grouting.Graph) ([]grouting.NodeID, error) {
	const newNodes = 20
	base := oracle.NumNodes()
	pageLabel := oracle.InternLabel("page")
	linkLabel := oracle.InternLabel("link")

	var added []grouting.NodeID
	for i := 0; i < newNodes/2; i++ {
		u := oracle.MaxNodeID()
		if err := c.UpsertNode(ctx, u, "page"); err != nil {
			return nil, err
		}
		oracle.UpsertNode(u, pageLabel)
		anchor := grouting.NodeID((i * 31) % base)
		if err := c.AddEdge(ctx, u, anchor, "link"); err != nil {
			return nil, err
		}
		if _, err := oracle.EnsureEdge(u, anchor, linkLabel); err != nil {
			return nil, err
		}
		added = append(added, u)
	}

	var burst []grouting.Mutation
	next := oracle.MaxNodeID()
	for i := newNodes / 2; i < newNodes; i++ {
		burst = append(burst,
			grouting.Mutation{Op: grouting.MutUpsertNode, Node: next, Label: "page"},
			grouting.Mutation{Op: grouting.MutAddEdge, Node: next, To: grouting.NodeID((i*31 + 5) % base), Label: "link"},
		)
		next++
	}
	if n, err := c.Mutate(ctx, burst); err != nil {
		return nil, fmt.Errorf("batch applied %d of %d: %w", n, len(burst), err)
	}
	for _, m := range burst {
		switch m.Op {
		case grouting.MutUpsertNode:
			oracle.UpsertNode(m.Node, pageLabel)
			added = append(added, m.Node)
		case grouting.MutAddEdge:
			if _, err := oracle.EnsureEdge(m.Node, m.To, linkLabel); err != nil {
				return nil, err
			}
		}
	}

	// Tombstone: add a shortcut, remove it, and prove a second removal is
	// the typed conflict rather than a transport failure.
	if err := c.AddEdge(ctx, added[0], added[1], "link"); err != nil {
		return nil, err
	}
	if err := c.RemoveEdge(ctx, added[0], added[1]); err != nil {
		return nil, err
	}
	if err := c.RemoveEdge(ctx, added[0], added[1]); !errors.Is(err, grouting.ErrConflict) {
		return nil, fmt.Errorf("double removal: err = %v, want ErrConflict", err)
	}
	return added, nil
}

// TestMutateTwoTransports runs the same mutation stream through the
// virtual-time client and a real TCP cluster: on both, every subsequent
// query must agree with the client-side oracle (read-your-writes, no
// resurrection of the removed edge), the two transports must agree with
// each other, and both must return the same typed write errors.
func TestMutateTwoTransports(t *testing.T) {
	const scale, seed = 0.02, 7
	ctx := context.Background()

	sys, err := grouting.New(grouting.GenerateDataset(grouting.WebGraph, scale, seed),
		grouting.WithProcessors(3),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyLandmark),
		grouting.WithLandmarks(8),
		grouting.WithMinSeparation(1),
		grouting.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	remote := startWritableTCPCluster(t, grouting.GenerateDataset(grouting.WebGraph, scale, seed),
		2, 3, grouting.PolicyLandmark)

	clients := []struct {
		name string
		c    grouting.Client
	}{{"virtual-time", local}, {"tcp", remote}}

	var perClient [2][]grouting.Result
	for i, tc := range clients {
		o := grouting.GenerateDataset(grouting.WebGraph, scale, seed)
		added, err := mutationStream(ctx, tc.c, o)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var results []grouting.Result
		for _, u := range added {
			q := grouting.Query{Type: grouting.NeighborAgg, Node: u, Hops: 2, Dir: grouting.Both}
			res, err := tc.c.Execute(ctx, q)
			if err != nil {
				t.Fatalf("%s: query on new node %d: %v", tc.name, u, err)
			}
			if want := grouting.Answer(o, q); res != want {
				t.Fatalf("%s: node %d: got %+v, want %+v", tc.name, u, res, want)
			}
			results = append(results, res)
		}
		perClient[i] = results
	}
	for i := range perClient[0] {
		if perClient[0][i] != perClient[1][i] {
			t.Fatalf("result %d differs between transports: %+v vs %+v",
				i, perClient[0][i], perClient[1][i])
		}
	}

	// Same typed write errors from both transports.
	for _, tc := range clients {
		if _, err := tc.c.Mutate(ctx, []grouting.Mutation{
			{Op: grouting.MutAddEdge, Node: 3, To: 3, Label: "link"},
		}); !errors.Is(err, grouting.ErrBadQuery) {
			t.Fatalf("%s: self-loop err = %v, want ErrBadQuery", tc.name, err)
		}
		if err := tc.c.AddEdge(ctx, 1<<30, 0, "link"); !errors.Is(err, grouting.ErrConflict) {
			t.Fatalf("%s: edge on missing endpoint err = %v, want ErrConflict", tc.name, err)
		}
	}
}

// TestMutateConcurrentReadYourWrites hammers both transports with
// concurrent writers touching disjoint records, each immediately reading
// back its own write. Run under -race this exercises the concurrent
// client paths and the router's single-writer mutation lock.
func TestMutateConcurrentReadYourWrites(t *testing.T) {
	const scale, seed = 0.02, 7
	const workers, perWorker = 6, 4
	ctx := context.Background()

	// Precompute the final oracle: every worker's writes applied. Worker
	// neighbourhoods are disjoint, so each read-back answer is independent
	// of how the other workers' writes interleave.
	oracle := grouting.GenerateDataset(grouting.WebGraph, scale, seed)
	base := oracle.NumNodes()
	pageLabel := oracle.InternLabel("page")
	linkLabel := oracle.InternLabel("link")
	first := oracle.MaxNodeID()
	type job struct {
		node   grouting.NodeID
		anchor grouting.NodeID
		want   grouting.Result
	}
	jobs := make([][]job, workers)
	for w := 0; w < workers; w++ {
		for k := 0; k < perWorker; k++ {
			u := first + grouting.NodeID(w*perWorker+k)
			anchor := grouting.NodeID(w*perWorker+k) * 7 // distinct, < base
			if int(anchor) >= base {
				t.Fatalf("anchor %d escapes the base graph", anchor)
			}
			oracle.UpsertNode(u, pageLabel)
			if _, err := oracle.EnsureEdge(u, anchor, linkLabel); err != nil {
				t.Fatal(err)
			}
			jobs[w] = append(jobs[w], job{node: u, anchor: anchor})
		}
	}
	for w := range jobs {
		for k := range jobs[w] {
			q := grouting.Query{Type: grouting.NeighborAgg, Node: jobs[w][k].node, Hops: 1, Dir: grouting.Out}
			jobs[w][k].want = grouting.Answer(oracle, q)
		}
	}

	sys, err := grouting.New(grouting.GenerateDataset(grouting.WebGraph, scale, seed),
		grouting.WithProcessors(3),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyHash),
	)
	if err != nil {
		t.Fatal(err)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	remote := startWritableTCPCluster(t, grouting.GenerateDataset(grouting.WebGraph, scale, seed),
		2, 3, grouting.PolicyHash)

	for _, tc := range []struct {
		name string
		c    grouting.Client
	}{{"virtual-time", local}, {"tcp", remote}} {
		t.Run(tc.name, func(t *testing.T) {
			errs := make(chan error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for _, j := range jobs[w] {
						if err := tc.c.UpsertNode(ctx, j.node, "page"); err != nil {
							errs <- fmt.Errorf("worker %d: upsert %d: %w", w, j.node, err)
							return
						}
						if err := tc.c.AddEdge(ctx, j.node, j.anchor, "link"); err != nil {
							errs <- fmt.Errorf("worker %d: edge %d->%d: %w", w, j.node, j.anchor, err)
							return
						}
						q := grouting.Query{Type: grouting.NeighborAgg, Node: j.node, Hops: 1, Dir: grouting.Out}
						res, err := tc.c.Execute(ctx, q)
						if err != nil {
							errs <- fmt.Errorf("worker %d: read-back %d: %w", w, j.node, err)
							return
						}
						if res != j.want {
							errs <- fmt.Errorf("worker %d: node %d read its own write wrong: got %+v, want %+v",
								w, j.node, res, j.want)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}
