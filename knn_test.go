package grouting_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	grouting "repro"
)

// testCoords is the deterministic coordinate function behind the shared
// test provider: a pure function of the node id, with every 17th node
// left uncovered (nil row) so the drop-uncovered ranking rule is live.
func testCoords(u grouting.NodeID) []float32 {
	if u%17 == 0 {
		return nil
	}
	return []float32{float32(u % 5), float32(u%11) / 2, float32(u % 3)}
}

// sharedEmbedding materialises the test coordinates over g once — the
// table both transports rank with and the oracle checks against.
func sharedEmbedding(t testing.TB, g *grouting.Graph) *grouting.Embedding {
	t.Helper()
	svc := grouting.NewEmbedService("test-coords", 3, func(_ context.Context, nodes []grouting.NodeID) ([][]float32, error) {
		rows := make([][]float32, len(nodes))
		for i, u := range nodes {
			rows[i] = testCoords(u)
		}
		return rows, nil
	})
	emb, err := grouting.MaterializeEmbedding(context.Background(), svc, g)
	if err != nil {
		t.Fatal(err)
	}
	return emb
}

// startKNNCluster is startTCPCluster with an embedding provider plugged
// into the router, the way groutingd -embed-file does.
func startKNNCluster(t testing.TB, g *grouting.Graph, policy grouting.Policy, provider grouting.Embedder) grouting.Client {
	t.Helper()
	ctx := context.Background()
	var storageAddrs []string
	for i := 0; i < 2; i++ {
		ss, err := grouting.ServeStorage("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ss.Close() })
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	if err := grouting.LoadStorage(ctx, g, storageAddrs); err != nil {
		t.Fatal(err)
	}
	var procAddrs []string
	for i := 0; i < 2; i++ {
		ps, err := grouting.ServeProcessor("127.0.0.1:0", storageAddrs, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ps.Close() })
		procAddrs = append(procAddrs, ps.Addr())
	}
	rs, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
		Processors:    procAddrs,
		Policy:        policy,
		Graph:         g,
		Seed:          7,
		EmbedProvider: provider,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	cl, err := grouting.Dial(ctx, rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestClientTwoTransportsKNN is the k-nearest acceptance test: a pinned
// KNearest workload runs unmodified against the virtual-time system and a
// real loopback TCP cluster under EVERY registered routing policy, with
// one shared embedding reaching the local system through
// WithEmbedProvider and the router through a WriteEmbeddingFile →
// RouterSpec.EmbedProvider artifact round trip. Every answer must match
// the exact oracle (AnswerKNN) and the two transports each other.
func TestClientTwoTransportsKNN(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	emb := sharedEmbedding(t, g)

	// The TCP side loads the embedding the production way: from a
	// precomputed artifact on disk.
	path := filepath.Join(t.TempDir(), "emb.gemb")
	if err := grouting.WriteEmbeddingFile(path, emb); err != nil {
		t.Fatal(err)
	}
	fileProv, err := grouting.OpenEmbeddingFile(path)
	if err != nil {
		t.Fatal(err)
	}

	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 6, QueriesPerHotspot: 4, R: 2, H: 2,
		Types: []grouting.QueryType{grouting.KNearest}, K: 5, Seed: 3,
	})
	knn := 0
	for _, q := range qs {
		if q.Type == grouting.KNearest {
			knn++
		}
	}
	if knn == 0 {
		t.Fatal("workload has no KNearest queries")
	}
	ctx := context.Background()

	for _, info := range grouting.StrategyRegistry() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			sys, err := grouting.New(g,
				grouting.WithProcessors(2),
				grouting.WithStorageServers(2),
				grouting.WithPolicy(info.Policy),
				grouting.WithSeed(1),
				grouting.WithEmbedProvider(grouting.NewFileProvider(emb)),
			)
			if err != nil {
				t.Fatal(err)
			}
			local, err := grouting.NewLocalClient(sys)
			if err != nil {
				t.Fatal(err)
			}
			remote := startKNNCluster(t, g, info.Policy, fileProv)

			var perClient [2][]grouting.Result
			for i, tc := range []struct {
				name string
				c    grouting.Client
			}{{"virtual-time", local}, {"tcp", remote}} {
				results, err := runWorkload(ctx, tc.c, qs)
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				for _, q := range qs {
					if q.Type != grouting.KNearest {
						continue
					}
					if want := grouting.AnswerKNN(g, emb, q); results[q.ID] != want {
						t.Fatalf("%s: query %d on node %d: got %+v, want %+v",
							tc.name, q.ID, q.Node, results[q.ID], want)
					}
				}
				perClient[i] = results
			}
			for id := range qs {
				if perClient[0][id] != perClient[1][id] {
					t.Fatalf("query %d differs between transports: %+v vs %+v",
						id, perClient[0][id], perClient[1][id])
				}
			}
		})
	}
}

// TestClientStreamCancellationKNN mirrors the multi-anchor mid-stream
// cancellation case with the KNN-bearing mix: an endless MixedTypesKNN
// feed through ExecuteStream is cancelled mid-flight on both transports.
// Pre-cancel outcomes must match the oracle (AnswerKNN for the new
// class), racing outcomes must carry a typed error, and the stream must
// close. Under -race this exercises the concurrent cancellation paths
// through the KNearest re-rank.
func TestClientStreamCancellationKNN(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	emb := sharedEmbedding(t, g)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 40, QueriesPerHotspot: 10, R: 2, H: 2,
		Types: grouting.MixedTypesKNN, VisitBudget: 4, K: 5, Seed: 5,
	})
	oracle := func(q grouting.Query) grouting.Result {
		if q.Type == grouting.KNearest {
			return grouting.AnswerKNN(g, emb, q)
		}
		return grouting.Answer(g, q)
	}

	sys, err := grouting.New(g,
		grouting.WithProcessors(2),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyHash),
		grouting.WithSeed(2),
		grouting.WithEmbedProvider(grouting.NewFileProvider(emb)),
	)
	if err != nil {
		t.Fatal(err)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	remote := startKNNCluster(t, g, grouting.PolicyHash, grouting.NewFileProvider(emb))

	for _, tc := range []struct {
		name string
		c    grouting.Client
	}{{"virtual-time", local}, {"tcp", remote}} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			in := make(chan grouting.Query)
			go func() {
				for i := 0; ; i++ {
					select {
					case in <- qs[i%len(qs)]:
					case <-ctx.Done():
						return
					}
				}
			}()
			out := tc.c.ExecuteStream(ctx, in)

			for seen := 0; seen < 25; seen++ {
				o, ok := <-out
				if !ok {
					t.Fatal("stream closed before cancellation")
				}
				if o.Err != nil {
					t.Fatalf("pre-cancel outcome error: %v", o.Err)
				}
				if want := oracle(o.Query); o.Result != want {
					t.Fatalf("streamed query %d (%v): got %+v, want %+v",
						o.Query.ID, o.Query.Type, o.Result, want)
				}
			}
			cancel()

			closed := make(chan struct{})
			go func() {
				defer close(closed)
				for o := range out {
					if o.Err == nil {
						if want := oracle(o.Query); o.Result != want {
							t.Errorf("post-cancel query %d: got %+v, want %+v", o.Query.ID, o.Result, want)
						}
					} else if !errors.Is(o.Err, context.Canceled) && !errors.Is(o.Err, grouting.ErrUnavailable) {
						t.Errorf("post-cancel outcome error = %v, want context.Canceled or ErrUnavailable", o.Err)
					}
				}
			}()
			select {
			case <-closed:
			case <-time.After(10 * time.Second):
				t.Fatal("stream did not close after cancellation")
			}
		})
	}
}

// TestKNNDegradedProvider pins the degraded-provider contract on both
// transports: with a provider that cannot serve coordinates and a policy
// that routes without them, the system starts and answers everything
// except KNearest, which fails with the typed ErrUnavailable; a policy
// that requires the embedding refuses to construct at all.
func TestKNNDegradedProvider(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	ctx := context.Background()
	failing := grouting.NewEmbedService("down", 3,
		func(context.Context, []grouting.NodeID) ([][]float32, error) {
			return nil, fmt.Errorf("backend unreachable")
		},
		grouting.WithEmbedRetries(0), grouting.WithEmbedBackoff(time.Microsecond))

	anchor := g.Nodes()[1]
	knnQ := grouting.Query{Type: grouting.KNearest, Node: anchor, Hops: 2, K: 4, Dir: grouting.Both}
	plainQ := grouting.Query{Type: grouting.NeighborAgg, Node: anchor, Hops: 2, Dir: grouting.Out}

	// Local transport, degraded start.
	sys, err := grouting.New(g,
		grouting.WithProcessors(2),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyHash),
		grouting.WithSeed(2),
		grouting.WithEmbedProvider(failing),
	)
	if err != nil {
		t.Fatalf("degraded system must still construct: %v", err)
	}
	local, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}

	// TCP transport, degraded start.
	remote := startKNNCluster(t, g, grouting.PolicyHash, failing)

	for _, tc := range []struct {
		name string
		c    grouting.Client
	}{{"virtual-time", local}, {"tcp", remote}} {
		if _, err := tc.c.Execute(ctx, knnQ); !errors.Is(err, grouting.ErrUnavailable) {
			t.Errorf("%s: KNearest on degraded provider: err = %v, want ErrUnavailable", tc.name, err)
		}
		res, err := tc.c.Execute(ctx, plainQ)
		if err != nil {
			t.Errorf("%s: classic query on degraded system: %v", tc.name, err)
		} else if want := grouting.Answer(g, plainQ); res != want {
			t.Errorf("%s: classic query: got %+v, want %+v", tc.name, res, want)
		}
	}

	// A KNearest on a system with no embedding at all (no provider, policy
	// builds none) is the same typed error.
	bare, err := grouting.New(g,
		grouting.WithProcessors(2),
		grouting.WithStorageServers(2),
		grouting.WithPolicy(grouting.PolicyHash),
		grouting.WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	bareCl, err := grouting.NewLocalClient(bare)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bareCl.Execute(ctx, knnQ); !errors.Is(err, grouting.ErrUnavailable) {
		t.Errorf("KNearest without embedding: err = %v, want ErrUnavailable", err)
	}

	// An embedding-requiring policy cannot start on a failed provider.
	if _, err := grouting.New(g,
		grouting.WithPolicy(grouting.PolicyEmbed),
		grouting.WithEmbedProvider(failing),
	); err == nil {
		t.Error("PolicyEmbed constructed over a failed provider")
	}
	if _, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
		Processors:    []string{"127.0.0.1:1"},
		Policy:        grouting.PolicyEmbed,
		Graph:         g,
		Seed:          7,
		EmbedProvider: failing,
	}); err == nil {
		t.Error("TCP router with PolicyEmbed constructed over a failed provider")
	}
}
