// Cross-transport tests for the replicated storage tier: the same
// workload answers oracle-identically with R=1 and R=2 storage, and —
// the tentpole acceptance — killing one of R=2 replicas mid-workload
// loses zero queries on both the virtual-time and TCP transports. Run
// with -race in CI: the kill lands concurrently with query execution.
package grouting_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	grouting "repro"
)

func storageWorkload(g *grouting.Graph, seed int64) []grouting.Query {
	return grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 12, QueriesPerHotspot: 8, R: 2, H: 2, Seed: seed,
	})
}

// TestCrossTransportReplicationEquivalence runs one workload four ways —
// {R=1, R=2} × {virtual-time, TCP} — and requires oracle-identical
// results from every cell.
func TestCrossTransportReplicationEquivalence(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.03, 11)
	qs := storageWorkload(g, 23)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	runLocal := func(replicas int) []grouting.Result {
		sys, err := grouting.New(g,
			grouting.WithPolicy(grouting.PolicyHash),
			grouting.WithProcessors(3),
			grouting.WithStorageServers(3),
			grouting.WithStorageReplicas(replicas),
			grouting.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := grouting.NewLocalClient(sys)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		out, err := cl.ExecuteBatch(ctx, qs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	runTCP := func(replicas int) []grouting.Result {
		var storageAddrs []string
		for i := 0; i < 3; i++ {
			ss, err := grouting.ServeStorage("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ss.Close()
			storageAddrs = append(storageAddrs, ss.Addr())
		}
		if err := grouting.LoadStorageReplicated(ctx, g, storageAddrs, replicas); err != nil {
			t.Fatal(err)
		}
		var procAddrs []string
		for i := 0; i < 2; i++ {
			ps, err := grouting.ServeProcessorWith("127.0.0.1:0", grouting.ProcessorSpec{
				Storage: storageAddrs, StorageReplicas: replicas, CacheBytes: 32 << 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ps.Close()
			procAddrs = append(procAddrs, ps.Addr())
		}
		rs, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
			Processors: procAddrs, Policy: grouting.PolicyHash,
			Storage: storageAddrs, StorageReplicas: replicas,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
		cl, err := grouting.Dial(ctx, rs.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		out, err := cl.ExecuteBatch(ctx, qs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cells := map[string][]grouting.Result{
		"local-R1": runLocal(1),
		"local-R2": runLocal(2),
		"tcp-R1":   runTCP(1),
		"tcp-R2":   runTCP(2),
	}
	for i, q := range qs {
		want := grouting.Answer(g, q)
		for name, res := range cells {
			if res[i] != want {
				t.Fatalf("%s query %d: %v, oracle %v", name, i, res[i], want)
			}
		}
	}
}

// TestKillReplicaMidWorkloadLocal is the virtual-time half of the
// acceptance criterion: with R=2, a storage failure injected concurrently
// with execution loses zero queries and every answer stays exact.
func TestKillReplicaMidWorkloadLocal(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.03, 11)
	qs := storageWorkload(g, 29)
	sys, err := grouting.New(g,
		grouting.WithPolicy(grouting.PolicyHash),
		grouting.WithProcessors(3),
		grouting.WithStorageServers(3),
		grouting.WithStorageReplicas(2),
		grouting.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := sys.FailStorage(2); err != nil {
			t.Errorf("FailStorage: %v", err)
		}
	}()
	for i, q := range qs {
		res, err := cl.Execute(ctx, q)
		if err != nil {
			t.Fatalf("query %d lost across the replica kill: %v", i, err)
		}
		if res != grouting.Answer(g, q) {
			t.Fatalf("query %d answered wrongly across the replica kill", i)
		}
	}
	wg.Wait()

	// The storage view reflects the failure on the public Stats surface.
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StorageReplicas != 2 || len(stats.PerStorage) != 3 {
		t.Fatalf("stats storage section: replicas %d, %d members", stats.StorageReplicas, len(stats.PerStorage))
	}
	if stats.PerStorage[2].Status != "down" {
		t.Fatalf("killed member status = %q", stats.PerStorage[2].Status)
	}
}

// TestKillReplicaMidWorkloadTCP is the networked half: one of the R=2
// storage shards is hard-closed (listener and live connections) while the
// client streams queries; the processors' replica failover must keep
// every answer exact with zero failures.
func TestKillReplicaMidWorkloadTCP(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.03, 11)
	qs := storageWorkload(g, 31)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var shards []*grouting.StorageServer
	var storageAddrs []string
	for i := 0; i < 3; i++ {
		ss, err := grouting.ServeStorage("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ss.Close()
		shards = append(shards, ss)
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	if err := grouting.LoadStorageReplicated(ctx, g, storageAddrs, 2); err != nil {
		t.Fatal(err)
	}
	var procAddrs []string
	for i := 0; i < 2; i++ {
		ps, err := grouting.ServeProcessorWith("127.0.0.1:0", grouting.ProcessorSpec{
			Storage: storageAddrs, StorageReplicas: 2, CacheBytes: 32 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ps.Close()
		procAddrs = append(procAddrs, ps.Addr())
	}
	rs, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
		Processors: procAddrs, Policy: grouting.PolicyHash,
		Storage: storageAddrs, StorageReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	cl, err := grouting.Dial(ctx, rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	kill := len(qs) / 3
	for i, q := range qs {
		if i == kill {
			shards[0].Close()
		}
		res, err := cl.Execute(ctx, q)
		if err != nil {
			t.Fatalf("query %d lost across the shard kill: %v", i, err)
		}
		if res != grouting.Answer(g, q) {
			t.Fatalf("query %d answered wrongly across the shard kill", i)
		}
	}
}

// TestDurableCrashRestartLocal pins the public durability surface on the
// virtual-time transport: with WithStorageDir, a crashed shard restarts
// warm from its WAL directory mid-workload and every answer stays exact.
func TestDurableCrashRestartLocal(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.03, 11)
	qs := storageWorkload(g, 41)
	sys, err := grouting.New(g,
		grouting.WithPolicy(grouting.PolicyHash),
		grouting.WithProcessors(3),
		grouting.WithStorageServers(3),
		grouting.WithStorageReplicas(2),
		grouting.WithStorageDir(t.TempDir()),
		grouting.WithStorageSnapshotEvery(64),
		grouting.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := grouting.NewLocalClient(sys)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	crash, restart := len(qs)/3, 2*len(qs)/3
	for i, q := range qs {
		if i == crash {
			if err := sys.CrashStorage(1); err != nil {
				t.Fatalf("CrashStorage: %v", err)
			}
		}
		if i == restart {
			if err := sys.RestartStorage(1); err != nil {
				t.Fatalf("RestartStorage: %v", err)
			}
		}
		res, err := cl.Execute(ctx, q)
		if err != nil {
			t.Fatalf("query %d lost across crash/restart: %v", i, err)
		}
		if res != grouting.Answer(g, q) {
			t.Fatalf("query %d answered wrongly across crash/restart", i)
		}
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerStorage[1].Durable != "warm" {
		t.Fatalf("restarted shard durability = %q, want warm", stats.PerStorage[1].Durable)
	}
	if stats.PerStorage[0].Durable != "fresh" && stats.PerStorage[0].Durable != "warm" {
		t.Fatalf("surviving shard durability = %q", stats.PerStorage[0].Durable)
	}
}

// TestUnreplicatedTCPLosesQueries pins the contrast the storagefault
// experiment quantifies: without replication, killing a shard makes its
// keys' queries fail with the typed unavailable error (never a wrong
// answer).
func TestUnreplicatedTCPLosesQueries(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.03, 11)
	qs := storageWorkload(g, 37)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var shards []*grouting.StorageServer
	var storageAddrs []string
	for i := 0; i < 2; i++ {
		ss, err := grouting.ServeStorage("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ss.Close()
		shards = append(shards, ss)
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	if err := grouting.LoadStorage(ctx, g, storageAddrs); err != nil {
		t.Fatal(err)
	}
	ps, err := grouting.ServeProcessor("127.0.0.1:0", storageAddrs, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	rs, err := grouting.ServeRouter("127.0.0.1:0", grouting.RouterSpec{
		Processors: []string{ps.Addr()}, Policy: grouting.PolicyHash,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	cl, err := grouting.Dial(ctx, rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	shards[1].Close()
	failed := 0
	for i, q := range qs {
		res, err := cl.Execute(ctx, q)
		if err != nil {
			if !errors.Is(err, grouting.ErrUnavailable) {
				t.Fatalf("query %d failed untyped: %v", i, err)
			}
			failed++
			continue
		}
		if res != grouting.Answer(g, q) {
			t.Fatalf("query %d answered wrongly on a half-dead tier", i)
		}
	}
	if failed == 0 {
		t.Fatal("no query touched the dead shard — test is vacuous")
	}
}
