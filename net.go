package grouting

import (
	"context"
	"fmt"

	"repro/internal/embed"
	"repro/internal/rpc"
)

// Networked deployment daemons, promoted from internal/rpc: the same
// decoupled tiers as the virtual-time engine, as real TCP servers.
type (
	// StorageServer is one shard of the networked storage tier.
	StorageServer = rpc.StorageServer
	// ProcessorServer is one networked query processor.
	ProcessorServer = rpc.ProcessorServer
	// RouterServer is the networked query router.
	RouterServer = rpc.RouterServer
)

// ServeStorage starts a storage shard on addr ("127.0.0.1:0" for an
// ephemeral port) serving in the background.
func ServeStorage(addr string) (*StorageServer, error) { return rpc.NewStorageServer(addr) }

// ServeStorageDurable starts a storage shard whose writes survive a
// crash: every put is appended to a write-ahead log under dir before it
// is acked, periodically compacted into a snapshot. Starting over a
// directory left by a previous (even killed) process replays snapshot +
// WAL, so the shard comes back warm with every acked write and announces
// its recovered watermark when it re-registers with a router. With fsync
// true each append is fsynced (durable against machine crash, not just
// process death).
func ServeStorageDurable(addr, dir string, fsync bool) (*StorageServer, error) {
	return rpc.NewStorageServerDurable(addr, dir, fsync)
}

// ServeProcessor starts a query processor on addr, fetching from the given
// unreplicated storage shards with cacheBytes of LRU capacity.
func ServeProcessor(addr string, storageAddrs []string, cacheBytes int64) (*ProcessorServer, error) {
	return rpc.NewProcessorServer(addr, storageAddrs, cacheBytes)
}

// ProcessorSpec configures a networked query processor.
type ProcessorSpec struct {
	// Storage lists the storage shards the processor fetches from.
	Storage []string
	// StorageReplicas is the storage tier's replication factor (0 or 1 =
	// unreplicated). It must match what the loader used — placement is
	// client-side. With >= 2 the processor's reads fail over
	// transparently when a replica dies and recover it when it answers
	// again.
	StorageReplicas int
	// CacheBytes is the processor's LRU capacity.
	CacheBytes int64
}

// ServeProcessorWith starts a query processor on addr with the full
// configuration, including the storage replication factor.
func ServeProcessorWith(addr string, spec ProcessorSpec) (*ProcessorServer, error) {
	return rpc.NewProcessorServerWith(addr, rpc.ProcessorConfig{
		Storage:         spec.Storage,
		StorageReplicas: spec.StorageReplicas,
		CacheBytes:      spec.CacheBytes,
	})
}

// RouterSpec configures a networked router.
type RouterSpec struct {
	// Processors lists the initial processing tier's addresses; more
	// processors can join the running router at any time with
	// ProcessorServer.Register (groutingd -join) and leave cleanly with
	// Deregister, each transition producing a new topology epoch.
	Processors []string
	// Policy selects the routing scheme. Smart policies (PolicyLandmark,
	// PolicyEmbed) need Graph for preprocessing.
	Policy Policy
	// Graph is the dataset the smart-routing preprocessing runs over
	// (ignored by the baseline policies).
	Graph *Graph
	// Seed drives the preprocessing's stochastic choices.
	Seed int64
	// PoolSize bounds the router's connections per processor (0 = default).
	PoolSize int
	// Storage optionally seeds the router's storage view: the listed
	// shards appear in Stats()/grouting-cli -topology with their status
	// and shard counters, and more can join at runtime with
	// StorageServer.Register (groutingd -role storage -join). It is also
	// the write path's placement domain: mutations (Client.Mutate through
	// Dial) and adaptive placement need it.
	Storage []string
	// StorageReplicas is the deployment's storage replication factor,
	// reported in Stats() (0 reads as 1).
	StorageReplicas int
	// AdaptivePlacement enables the workload-adaptive placement subsystem
	// on the router: it periodically drains per-record read heat from the
	// processors and migrates hot records toward their dominant reader as
	// bounded copy-then-drop moves. Requires Storage.
	AdaptivePlacement bool
	// PlacementBudget bounds the bytes migrated per planning cycle
	// (<= 0 = unbounded).
	PlacementBudget int64
	// PlacementEvery runs one planning cycle automatically after that
	// many completed queries (0 = only explicit cycles).
	PlacementEvery int
	// PlacementMinReads is the planner's hysteresis floor (0 = default).
	PlacementMinReads int64
	// EmbedProvider supplies node coordinates from a pluggable source
	// (OpenEmbeddingFile, NewEmbedService, or any user Embedder) instead
	// of the built-in learned embedding. It is materialised once at router
	// start and then serves both embedding-based routing and KNearest
	// ranking. Providers without their own snapshot need Graph to walk.
	// When it fails and the policy does not require an embedding, the
	// router starts degraded: KNearest queries answer the typed
	// ErrUnavailable; everything else is unaffected.
	EmbedProvider Embedder
}

// ServeRouter starts a query router on addr: it builds the routing
// strategy (running smart-routing preprocessing over spec.Graph when the
// policy needs it, or materialising spec.EmbedProvider), connects to the
// processors and serves in the background.
func ServeRouter(addr string, spec RouterSpec) (*RouterServer, error) {
	if spec.Policy.NeedsLandmarks() && spec.Graph == nil {
		return nil, fmt.Errorf("grouting: policy %v needs a graph for preprocessing", spec.Policy)
	}
	var emb *Embedding
	var embErr error
	if spec.EmbedProvider != nil {
		emb, embErr = embed.Materialize(context.Background(), spec.EmbedProvider, spec.Graph)
		if embErr != nil {
			if spec.Policy.NeedsEmbedding() {
				// The strategy cannot route without coordinates.
				return nil, fmt.Errorf("grouting: embed provider %q: %w", spec.EmbedProvider.Name(), embErr)
			}
			emb = nil // degraded start: KNearest reports embErr per query
		}
	}
	strat, emb, err := rpc.BuildStrategyEmbed(spec.Policy.String(), spec.Graph, len(spec.Processors), spec.Seed, emb)
	if err != nil {
		return nil, err
	}
	return rpc.NewRouterServer(addr, rpc.RouterConfig{
		ProcessorAddrs:    spec.Processors,
		Strategy:          strat,
		PolicyName:        spec.Policy.String(),
		PoolSize:          spec.PoolSize,
		StorageAddrs:      spec.Storage,
		StorageReplicas:   spec.StorageReplicas,
		Graph:             spec.Graph,
		AdaptivePlacement: spec.AdaptivePlacement,
		PlacementBudget:   spec.PlacementBudget,
		PlacementEvery:    spec.PlacementEvery,
		PlacementMinReads: spec.PlacementMinReads,
		Embedding:         emb,
		EmbedErr:          embErr,
	})
}

// LoadStorage bulk-loads every live node of g across the storage shards —
// the networked analogue of what NewSystem does in-process.
func LoadStorage(ctx context.Context, g *Graph, storageAddrs []string) error {
	return LoadStorageReplicated(ctx, g, storageAddrs, 1)
}

// LoadStorageReplicated bulk-loads every live node of g across the
// storage shards with the given replication factor: each record is
// written to every replica of its rendezvous placement set. Processors
// reading the data must be started with the same factor
// (ProcessorSpec.StorageReplicas / groutingd -storage-replicas).
func LoadStorageReplicated(ctx context.Context, g *Graph, storageAddrs []string, replicas int) error {
	sc, err := rpc.DialStorageReplicated(storageAddrs, replicas)
	if err != nil {
		return err
	}
	defer sc.Close()
	return sc.LoadGraph(ctx, g)
}

// DialOption customises a networked client.
type DialOption func(*dialConfig)

type dialConfig struct {
	streamWorkers int
}

// WithStreamWorkers sets how many queries ExecuteStream keeps in flight
// concurrently (default 4).
func WithStreamWorkers(n int) DialOption {
	return func(c *dialConfig) { c.streamWorkers = n }
}

const defaultStreamWorkers = 4

// Dial connects a Client to a networked deployment's router. The returned
// client satisfies the same Client interface as NewLocalClient: identical
// results, the same typed errors, contexts honoured end to end (the
// router forwards the caller's deadline to the processors).
func Dial(ctx context.Context, routerAddr string, opts ...DialOption) (Client, error) {
	cfg := dialConfig{streamWorkers: defaultStreamWorkers}
	for _, o := range opts {
		o(&cfg)
	}
	rc, err := rpc.DialRouter(ctx, routerAddr)
	if err != nil {
		return nil, err
	}
	return &netClient{rc: rc, workers: cfg.streamWorkers}, nil
}

// TriggerPlacement asks a networked deployment's router to run one
// adaptive-placement planning cycle now and returns how many records
// moved. Routers running without the subsystem reject it with ErrBadQuery.
// Deployments with RouterSpec.PlacementEvery > 0 cycle automatically; an
// explicit trigger composes with that (cycles are serialised).
func TriggerPlacement(ctx context.Context, routerAddr string) (int, error) {
	rc, err := rpc.DialRouter(ctx, routerAddr)
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	return rc.Migrate(ctx)
}

// netClient adapts the pooled rpc router client to the Client interface.
type netClient struct {
	rc      *rpc.RouterClient
	workers int
}

func (c *netClient) Execute(ctx context.Context, q Query) (Result, error) {
	return c.rc.Execute(ctx, q)
}

func (c *netClient) ExecuteBatch(ctx context.Context, qs []Query) ([]Result, error) {
	return c.rc.ExecuteBatch(ctx, qs)
}

func (c *netClient) ExecuteStream(ctx context.Context, in <-chan Query) <-chan Outcome {
	return stream(ctx, in, c.workers, c.rc.Execute)
}

func (c *netClient) Mutate(ctx context.Context, muts []Mutation) (int, error) {
	wire := make([]rpc.Mutation, len(muts))
	for i, m := range muts {
		wire[i] = rpc.Mutation{Op: uint8(m.Op), Node: m.Node, To: m.To, Label: m.Label}
	}
	return c.rc.Mutate(ctx, wire)
}

func (c *netClient) UpsertNode(ctx context.Context, id NodeID, label string) error {
	_, err := c.Mutate(ctx, []Mutation{{Op: MutUpsertNode, Node: id, Label: label}})
	return err
}

func (c *netClient) AddEdge(ctx context.Context, u, v NodeID, label string) error {
	_, err := c.Mutate(ctx, []Mutation{{Op: MutAddEdge, Node: u, To: v, Label: label}})
	return err
}

func (c *netClient) RemoveEdge(ctx context.Context, u, v NodeID) error {
	_, err := c.Mutate(ctx, []Mutation{{Op: MutRemoveEdge, Node: u, To: v}})
	return err
}

func (c *netClient) Stats(ctx context.Context) (Stats, error) {
	snap, err := c.rc.Stats(ctx)
	if err != nil {
		return Stats{}, err
	}
	return *snap, nil
}

func (c *netClient) Close() error { return c.rc.Close() }
