package grouting_test

import (
	"testing"

	grouting "repro"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way a
// downstream user would: build a graph, assemble a system, run queries.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := grouting.GenerateDataset(grouting.WebGraph, 0.02, 7)
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty generated graph")
	}
	sys, err := grouting.NewSystem(g, grouting.Config{
		Processors:     3,
		StorageServers: 2,
		Policy:         grouting.PolicyLandmark,
		Landmarks:      8,
		MinSeparation:  1,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ses, err := sys.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	q := grouting.Query{Type: grouting.NeighborAgg, Node: 10, Hops: 2, Dir: grouting.Out}
	res, latency, err := ses.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if latency <= 0 {
		t.Fatalf("latency = %v", latency)
	}
	if want := grouting.Answer(g, q); res != want {
		t.Fatalf("result %+v != oracle %+v", res, want)
	}
}

func TestPublicWorkloadRun(t *testing.T) {
	g := grouting.GenerateDataset(grouting.Memetracker, 0.02, 3)
	qs := grouting.HotspotWorkload(g, grouting.WorkloadSpec{
		NumHotspots: 5, QueriesPerHotspot: 4, R: 2, H: 2, Seed: 9,
	})
	sys, err := grouting.NewSystem(g, grouting.Config{
		Processors: 2, StorageServers: 2, Policy: grouting.PolicyHash, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWorkload(qs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != len(qs) || rep.ThroughputQPS <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	for _, q := range qs {
		if rep.Results[q.ID] != grouting.Answer(g, q) {
			t.Fatalf("query %d disagrees with oracle", q.ID)
		}
	}
}

func TestPublicGraphConstruction(t *testing.T) {
	g := grouting.NewGraph()
	jerry := g.AddNode("Jerry Yang")
	yahoo := g.AddNode("Yahoo!")
	if err := g.AddEdge(jerry, yahoo, "founded"); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(jerry, yahoo) {
		t.Fatal("edge missing")
	}
	g2 := grouting.NewGraphWithCapacity(100)
	g2.AddNodes(100)
	if g2.NumNodes() != 100 {
		t.Fatal("bulk add failed")
	}
}

func TestProfilesExposed(t *testing.T) {
	ib, eth := grouting.Infiniband(), grouting.Ethernet()
	if ib.RTT >= eth.RTT {
		t.Fatal("profile latencies inverted")
	}
}

func TestGenerateDatasetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown dataset")
		}
	}()
	grouting.GenerateDataset("nope", 1, 1)
}
