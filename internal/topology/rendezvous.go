package topology

// Rendezvous picks the destination slot for key by highest-random-weight
// (rendezvous) hashing over the given slots: every (key, slot) pair gets
// an independent pseudo-random score and the highest score wins.
//
// This is the stable-remap property elastic routing needs: when the active
// set grows from N to N+k, a key only moves if one of the k new slots wins
// it, so the expected moved fraction is k/(N+k); when a slot leaves, only
// its own ~1/N of the keys move. Naive modulo hashing (Eq 1) reshuffles
// almost everything on any size change, throwing away every processor's
// cache at once.
//
// Returns -1 when slots is empty.
func Rendezvous(key uint64, slots []int) int {
	best, bestScore := -1, uint64(0)
	for _, s := range slots {
		score := mix64(key ^ (uint64(s)+1)*0x9e3779b97f4a7c15)
		if best < 0 || score > bestScore || (score == bestScore && s < best) {
			best, bestScore = s, score
		}
	}
	return best
}

// MaxReplicas bounds the replica sets RendezvousN produces: large enough
// for any sensible replication factor, small enough that the per-key
// top-R selection runs on fixed-size stack scratch with zero allocations.
const MaxReplicas = 8

// RendezvousN appends the top-r slots for key to dst (pass dst[:0] to
// reuse a buffer) in descending rendezvous-score order, so dst[0] is
// exactly Rendezvous(key, slots). This is the replica-placement primitive
// of the storage tier: the top-R set shares Rendezvous's stable-remap
// property — adding k slots to N displaces each of a key's R replicas
// with probability ~k/(N+k), and removing a slot moves only the keys it
// held. r is clamped to [0, MaxReplicas]; fewer than r slots yields them
// all. Allocation-free when dst has capacity r.
func RendezvousN(key uint64, slots []int, r int, dst []int) []int {
	dst = dst[:0]
	if r <= 0 || len(slots) == 0 {
		return dst
	}
	if r > MaxReplicas {
		r = MaxReplicas
	}
	var scores [MaxReplicas]uint64
	for _, s := range slots {
		sc := mix64(key ^ (uint64(s)+1)*0x9e3779b97f4a7c15)
		// Insertion position: higher score first, smaller slot on ties
		// (the same tie-break Rendezvous uses).
		i := len(dst)
		for i > 0 && (scores[i-1] < sc || (scores[i-1] == sc && dst[i-1] > s)) {
			i--
		}
		if i >= r {
			continue
		}
		if len(dst) < r {
			dst = append(dst, 0)
		}
		for j := len(dst) - 1; j > i; j-- {
			dst[j], scores[j] = dst[j-1], scores[j-1]
		}
		dst[i], scores[i] = s, sc
	}
	return dst
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// mixer, plenty for destination scoring.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
