package topology

// Rendezvous picks the destination slot for key by highest-random-weight
// (rendezvous) hashing over the given slots: every (key, slot) pair gets
// an independent pseudo-random score and the highest score wins.
//
// This is the stable-remap property elastic routing needs: when the active
// set grows from N to N+k, a key only moves if one of the k new slots wins
// it, so the expected moved fraction is k/(N+k); when a slot leaves, only
// its own ~1/N of the keys move. Naive modulo hashing (Eq 1) reshuffles
// almost everything on any size change, throwing away every processor's
// cache at once.
//
// Returns -1 when slots is empty.
func Rendezvous(key uint64, slots []int) int {
	best, bestScore := -1, uint64(0)
	for _, s := range slots {
		score := mix64(key ^ (uint64(s)+1)*0x9e3779b97f4a7c15)
		if best < 0 || score > bestScore || (score == bestScore && s < best) {
			best, bestScore = s, score
		}
	}
	return best
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// mixer, plenty for destination scoring.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
