// Package topology makes cluster membership a first-class, epoch-versioned
// value instead of a constructor argument. The paper's core argument for
// decoupling storage from query processing is that "a query processor that
// is down can be replaced without affecting the routing strategy" and that
// processors can be added or removed without repartitioning the graph
// (Section 1); this package carries that property through the running
// system.
//
// A Tracker owns the mutable membership of the processing tier. Every
// mutation — join, drain, leave, fail, revive — produces a new immutable
// View with a strictly increasing epoch. Consumers (the router, sessions,
// strategies) hold a View, compare epochs, and apply newer views
// atomically at their own boundaries, so in-flight queries always complete
// on the view they were routed under.
//
// Processor identity is a slot: a small integer assigned at join time and
// never reused. Slots only grow, so slot-indexed counter arrays stay valid
// across every epoch and per-slot accounting never aliases two different
// processors.
package topology

import (
	"fmt"
	"sync"
)

// EpochLogCap bounds the routers' topology-transition logs carried in
// stats snapshots (oldest entries drop first).
const EpochLogCap = 32

// Tier names which tier of the decoupled architecture a member belongs
// to. One Tracker owns one tier's membership: the processing tier and the
// storage tier evolve independently — that independence is the paper's
// core decoupling argument — so each gets its own tracker and epoch
// counter, but both share the Member/View/transition machinery.
type Tier int8

const (
	// TierProcessor members are query processors.
	TierProcessor Tier = iota
	// TierStorage members are storage servers.
	TierStorage
)

// String renders the tier the way stats snapshots and the CLI print it.
func (t Tier) String() string {
	switch t {
	case TierProcessor:
		return "proc"
	case TierStorage:
		return "storage"
	}
	return fmt.Sprintf("Tier(%d)", int8(t))
}

// Status is a member's lifecycle state.
type Status int8

const (
	// Active members receive new work.
	Active Status = iota
	// Draining members receive no new work; their in-flight/queued work
	// finishes (or is reassigned) before they become Left.
	Draining
	// Down members have failed: no new work, but they may Revive. Their
	// backlog is recovered by the live processors (stealing).
	Down
	// Left members are gone for good; their slot is never reused.
	Left
)

// String renders the status the way /statsz and the CLI print it.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Draining:
		return "draining"
	case Down:
		return "down"
	case Left:
		return "left"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Member is one slot's membership record.
type Member struct {
	// Slot is the stable member id: assigned at join, never reused.
	Slot int
	// Addr is the member's network address (empty on the virtual-time
	// engine, where both tiers are in-process).
	Addr string
	// Status is the member's lifecycle state.
	Status Status
	// Tier records which tier the member serves (processor or storage),
	// so mixed renderings — the CLI topology table, the epoch log — can
	// tell the two apart.
	Tier Tier
}

// View is an immutable snapshot of the processing tier at one epoch.
// Members is slot-indexed and covers every slot ever allocated (Left
// members stay, so slot-indexed accounting remains aligned).
type View struct {
	Epoch   uint64
	Members []Member
}

// Slots returns the total number of slots ever allocated (active or not).
func (v View) Slots() int { return len(v.Members) }

// IsActive reports whether slot receives new work in this view.
func (v View) IsActive(slot int) bool {
	return slot >= 0 && slot < len(v.Members) && v.Members[slot].Status == Active
}

// Status returns slot's lifecycle state (Left for out-of-range slots).
func (v View) Status(slot int) Status {
	if slot < 0 || slot >= len(v.Members) {
		return Left
	}
	return v.Members[slot].Status
}

// ActiveSlots returns the slots receiving new work, in ascending order.
func (v View) ActiveSlots() []int {
	out := make([]int, 0, len(v.Members))
	for _, m := range v.Members {
		if m.Status == Active {
			out = append(out, m.Slot)
		}
	}
	return out
}

// RoutableSlots returns every slot that is still a member — everything
// but Left — in ascending order. Routing strategies derive their
// candidate sets from this, not from ActiveSlots: a Down member stays a
// valid destination in the strategy's model (its keys divert to the
// next-best live processor and come back when it revives, the paper's
// §3.4.1 fault-tolerance behaviour), while a Left member is gone for
// good and its share of the key space is permanently remapped.
func (v View) RoutableSlots() []int {
	out := make([]int, 0, len(v.Members))
	for _, m := range v.Members {
		if m.Status != Left {
			out = append(out, m.Slot)
		}
	}
	return out
}

// Diff summarises the member transitions from old to new, in the terms
// the observability surface reports. Draining is transient and not
// counted on its own — the eventual Leave is.
type Diff struct {
	Joined  int
	Left    int
	Failed  int
	Revived int
	// LeftSlots lists the slots that became Left in this transition.
	LeftSlots []int
}

// DiffViews classifies every member whose status changed between two
// views (new slots count as joins). Both routers build their epoch event
// logs from this one implementation.
func DiffViews(old, new View) Diff {
	var d Diff
	for _, m := range new.Members {
		prev := Status(-1)
		if m.Slot < len(old.Members) {
			prev = old.Members[m.Slot].Status
		}
		if prev == m.Status {
			continue
		}
		switch m.Status {
		case Active:
			if prev == Down {
				d.Revived++
			} else {
				d.Joined++
			}
		case Down:
			d.Failed++
		case Left:
			d.Left++
			d.LeftSlots = append(d.LeftSlots, m.Slot)
		}
	}
	return d
}

// NumActive returns the number of active members.
func (v View) NumActive() int {
	n := 0
	for _, m := range v.Members {
		if m.Status == Active {
			n++
		}
	}
	return n
}

// Static returns a single-epoch view of n active in-process members — the
// fixed topology every deployment had before elasticity, still the
// starting point of every elastic one.
func Static(n int) View {
	v := View{Epoch: 1, Members: make([]Member, n)}
	for i := range v.Members {
		v.Members[i] = Member{Slot: i, Status: Active}
	}
	return v
}

// Tracker owns the mutable membership of one deployment. All methods are
// safe for concurrent use; every successful mutation bumps the epoch and
// the returned View is an isolated copy.
type Tracker struct {
	mu      sync.Mutex
	epoch   uint64
	tier    Tier
	members []Member
}

// NewTracker seeds a processor-tier tracker with n active in-process
// members (slots 0..n-1) at epoch 1. Slots listed in down start in the
// Down state — the whole-run failure configuration the virtual-time
// engine's FailedProcessors maps onto.
func NewTracker(n int, down []int) *Tracker {
	t := NewTierTracker(TierProcessor, n)
	for _, s := range down {
		if s >= 0 && s < n {
			t.members[s].Status = Down
		}
	}
	return t
}

// NewTierTracker seeds a tracker for the given tier with n active
// in-process members (slots 0..n-1) at epoch 1.
func NewTierTracker(tier Tier, n int) *Tracker {
	t := &Tracker{epoch: 1, tier: tier, members: make([]Member, n)}
	for i := range t.members {
		t.members[i] = Member{Slot: i, Status: Active, Tier: tier}
	}
	return t
}

// NewTrackerAddrs seeds a processor-tier tracker with one active member
// per address (slots in argument order) at epoch 1.
func NewTrackerAddrs(addrs []string) *Tracker {
	return NewTierTrackerAddrs(TierProcessor, addrs)
}

// NewTierTrackerAddrs seeds a tracker for the given tier with one active
// member per address (slots in argument order) at epoch 1.
func NewTierTrackerAddrs(tier Tier, addrs []string) *Tracker {
	t := &Tracker{epoch: 1, tier: tier, members: make([]Member, len(addrs))}
	for i, a := range addrs {
		t.members[i] = Member{Slot: i, Addr: a, Status: Active, Tier: tier}
	}
	return t
}

// Tier returns which tier this tracker's members serve.
func (t *Tracker) Tier() Tier { return t.tier }

// View returns the current view.
func (t *Tracker) View() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.viewLocked()
}

// Epoch returns the current epoch without copying the member list.
func (t *Tracker) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

func (t *Tracker) viewLocked() View {
	return View{Epoch: t.epoch, Members: append([]Member(nil), t.members...)}
}

// Join allocates a new slot for a member at addr (may be empty for
// in-process members) and returns it with the new view.
func (t *Tracker) Join(addr string) (int, View) {
	t.mu.Lock()
	defer t.mu.Unlock()
	slot := len(t.members)
	t.members = append(t.members, Member{Slot: slot, Addr: addr, Status: Active, Tier: t.tier})
	t.epoch++
	return slot, t.viewLocked()
}

// Lookup returns the slot of the Active member at addr (-1 when absent).
// Only Active members match: a Draining or Down slot at the same address
// is on its way out, and a processor restarting there must be admitted as
// a fresh member rather than handed a slot about to become Left.
func (t *Tracker) Lookup(addr string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, m := range t.members {
		if m.Addr == addr && m.Status == Active {
			return m.Slot
		}
	}
	return -1
}

// transition moves slot from any of the from states to the to state. A
// transition that would leave a previously-serving tier with no active
// member is refused: the routers cannot divert anywhere, so losing the
// last processor is an operational error, not a topology change.
func (t *Tracker) transition(slot int, to Status, from ...Status) (View, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if slot < 0 || slot >= len(t.members) {
		return View{}, fmt.Errorf("topology: slot %d out of range [0,%d)", slot, len(t.members))
	}
	cur := t.members[slot].Status
	ok := false
	for _, f := range from {
		if cur == f {
			ok = true
			break
		}
	}
	if !ok {
		return View{}, fmt.Errorf("topology: slot %d is %s, cannot become %s", slot, cur, to)
	}
	if cur == Active && to != Active {
		active := 0
		for _, m := range t.members {
			if m.Status == Active {
				active++
			}
		}
		if active <= 1 {
			return View{}, fmt.Errorf("topology: slot %d is the last active member", slot)
		}
	}
	t.members[slot].Status = to
	t.epoch++
	return t.viewLocked(), nil
}

// Drain marks slot as draining: it receives no new work, and once its
// pending work is flushed the owner completes the drain with Leave. This
// is the clean-leave path a shutting-down processor takes, as opposed to
// just vanishing and being treated as Down.
func (t *Tracker) Drain(slot int) (View, error) {
	return t.transition(slot, Draining, Active, Down)
}

// Leave removes slot permanently. Pending work the routers still hold for
// it is reassigned to live members when they apply the new view.
func (t *Tracker) Leave(slot int) (View, error) {
	return t.transition(slot, Left, Active, Draining, Down)
}

// Fail marks slot as down (it may Revive later).
func (t *Tracker) Fail(slot int) (View, error) {
	return t.transition(slot, Down, Active, Draining)
}

// Revive returns a Down slot to Active.
func (t *Tracker) Revive(slot int) (View, error) {
	return t.transition(slot, Active, Down)
}
