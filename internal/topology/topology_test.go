package topology

import (
	"sync"
	"testing"
)

func TestStaticView(t *testing.T) {
	v := Static(3)
	if v.Epoch != 1 || v.Slots() != 3 || v.NumActive() != 3 {
		t.Fatalf("Static(3) = %+v", v)
	}
	if got := v.ActiveSlots(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("ActiveSlots = %v", got)
	}
	if v.IsActive(3) || v.Status(99) != Left {
		t.Fatal("out-of-range slots must read as Left")
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker(2, nil)
	if e := tr.Epoch(); e != 1 {
		t.Fatalf("initial epoch = %d", e)
	}

	slot, v := tr.Join("10.0.0.7:7101")
	if slot != 2 || v.Epoch != 2 || !v.IsActive(2) {
		t.Fatalf("join: slot=%d view=%+v", slot, v)
	}
	if got := tr.Lookup("10.0.0.7:7101"); got != 2 {
		t.Fatalf("Lookup = %d", got)
	}

	v, err := tr.Drain(0)
	if err != nil || v.Status(0) != Draining || v.Epoch != 3 {
		t.Fatalf("drain: %v %+v", err, v)
	}
	if v.IsActive(0) {
		t.Fatal("draining slot still active")
	}
	v, err = tr.Leave(0)
	if err != nil || v.Status(0) != Left || v.Epoch != 4 {
		t.Fatalf("leave: %v %+v", err, v)
	}
	// Left is terminal.
	if _, err := tr.Revive(0); err == nil {
		t.Fatal("revived a Left slot")
	}
	if _, err := tr.Drain(0); err == nil {
		t.Fatal("drained a Left slot")
	}

	// Fail/revive cycle.
	if v, err = tr.Fail(1); err != nil || v.Status(1) != Down {
		t.Fatalf("fail: %v %+v", err, v)
	}
	if v, err = tr.Revive(1); err != nil || !v.IsActive(1) {
		t.Fatalf("revive: %v %+v", err, v)
	}

	// Slots never shrink or get reused.
	slot2, v := tr.Join("")
	if slot2 != 3 || v.Slots() != 4 {
		t.Fatalf("second join: slot=%d slots=%d", slot2, v.Slots())
	}
	if _, err := tr.Leave(-1); err == nil {
		t.Fatal("out-of-range leave accepted")
	}
}

func TestTrackerSeededDown(t *testing.T) {
	tr := NewTracker(4, []int{1, 3})
	v := tr.View()
	if v.NumActive() != 2 || v.Status(1) != Down || v.Status(3) != Down {
		t.Fatalf("seeded view = %+v", v)
	}
	if v, err := tr.Revive(3); err != nil || !v.IsActive(3) {
		t.Fatalf("revive seeded-down: %v", err)
	}
}

func TestViewIsolation(t *testing.T) {
	tr := NewTracker(1, nil)
	v1 := tr.View()
	tr.Join("")
	if v1.Slots() != 1 {
		t.Fatal("earlier view mutated by later join")
	}
	v1.Members[0].Status = Down
	if tr.View().Status(0) != Active {
		t.Fatal("mutating a view copy leaked into the tracker")
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker(2, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tr.Join("")
				tr.View()
			}
		}()
	}
	wg.Wait()
	v := tr.View()
	if v.Slots() != 2+8*50 {
		t.Fatalf("slots = %d, want %d", v.Slots(), 2+8*50)
	}
	if v.Epoch != uint64(1+8*50) {
		t.Fatalf("epoch = %d, want %d", v.Epoch, 1+8*50)
	}
}

func TestRendezvousDeterministicAndInRange(t *testing.T) {
	slots := []int{0, 1, 2, 3}
	for key := uint64(0); key < 1000; key++ {
		p := Rendezvous(key, slots)
		if p < 0 || p > 3 {
			t.Fatalf("key %d -> %d", key, p)
		}
		if q := Rendezvous(key, slots); q != p {
			t.Fatalf("key %d not deterministic: %d vs %d", key, p, q)
		}
	}
	if Rendezvous(7, nil) != -1 {
		t.Fatal("empty slot set must return -1")
	}
}

func TestRendezvousBalances(t *testing.T) {
	slots := []int{0, 1, 2, 3, 4, 5}
	counts := make(map[int]int)
	const keys = 60000
	for key := uint64(0); key < keys; key++ {
		counts[Rendezvous(key, slots)]++
	}
	want := keys / len(slots)
	for _, s := range slots {
		if c := counts[s]; c < want*8/10 || c > want*12/10 {
			t.Fatalf("slot %d got %d of %d keys (want ~%d)", s, c, keys, want)
		}
	}
}

// TestRendezvousStableRemap pins the property the elasticity acceptance
// criterion relies on: growing the active set from N to N+k moves only
// ~k/(N+k) of the keys, and removing one member moves only its own share.
func TestRendezvousStableRemap(t *testing.T) {
	const keys = 20000
	four := []int{0, 1, 2, 3}
	six := []int{0, 1, 2, 3, 4, 5}

	moved := 0
	for key := uint64(0); key < keys; key++ {
		if Rendezvous(key, four) != Rendezvous(key, six) {
			moved++
		}
	}
	frac := float64(moved) / keys
	// Expected 2/6 ≈ 0.333; allow generous sampling slack but stay far
	// below the ~0.83 a modulo remap would show.
	if frac > 0.40 {
		t.Fatalf("4->6 moved %.1f%% of keys, want ~33%%", 100*frac)
	}
	if frac < 0.25 {
		t.Fatalf("4->6 moved only %.1f%% of keys — new members are starved", 100*frac)
	}

	// Removing slot 2: only keys owned by 2 move, nothing else reshuffles.
	fourMinus := []int{0, 1, 3}
	for key := uint64(0); key < keys; key++ {
		was, now := Rendezvous(key, four), Rendezvous(key, fourMinus)
		if was != 2 && now != was {
			t.Fatalf("key %d moved %d->%d though slot 2 left", key, was, now)
		}
		if was == 2 && now == 2 {
			t.Fatalf("key %d still routed to removed slot", key)
		}
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Active: "active", Draining: "draining", Down: "down", Left: "left",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
