package topology

import "testing"

func TestTierString(t *testing.T) {
	if TierProcessor.String() != "proc" || TierStorage.String() != "storage" {
		t.Fatalf("tier strings = %q / %q", TierProcessor, TierStorage)
	}
}

func TestTierTrackerMembersCarryTier(t *testing.T) {
	tr := NewTierTracker(TierStorage, 3)
	if tr.Tier() != TierStorage {
		t.Fatalf("Tier() = %v", tr.Tier())
	}
	for _, m := range tr.View().Members {
		if m.Tier != TierStorage {
			t.Fatalf("seeded member %+v lacks storage tier", m)
		}
	}
	slot, v := tr.Join("10.0.0.9:7003")
	if v.Members[slot].Tier != TierStorage {
		t.Fatalf("joined member %+v lacks storage tier", v.Members[slot])
	}
	// The processor-tier constructors keep the zero tier, so existing
	// slot-indexed accounting is untouched.
	pr := NewTracker(2, nil)
	if pr.Tier() != TierProcessor || pr.View().Members[0].Tier != TierProcessor {
		t.Fatal("NewTracker must seed processor-tier members")
	}
}

func TestRendezvousNHeadMatchesRendezvous(t *testing.T) {
	slots := []int{0, 1, 2, 3, 4, 5, 6}
	var buf [MaxReplicas]int
	for key := uint64(0); key < 5000; key++ {
		got := RendezvousN(key, slots, 3, buf[:0])
		if len(got) != 3 {
			t.Fatalf("key %d: %d slots, want 3", key, len(got))
		}
		if got[0] != Rendezvous(key, slots) {
			t.Fatalf("key %d: head %d != Rendezvous %d", key, got[0], Rendezvous(key, slots))
		}
		seen := map[int]bool{}
		for _, s := range got {
			if seen[s] {
				t.Fatalf("key %d: duplicate slot %d in %v", key, s, got)
			}
			seen[s] = true
		}
	}
}

func TestRendezvousNEdgeCases(t *testing.T) {
	if got := RendezvousN(7, nil, 2, nil); len(got) != 0 {
		t.Fatalf("empty slots -> %v", got)
	}
	if got := RendezvousN(7, []int{4}, 3, nil); len(got) != 1 || got[0] != 4 {
		t.Fatalf("1 slot, r=3 -> %v", got)
	}
	if got := RendezvousN(7, []int{1, 2}, 0, nil); len(got) != 0 {
		t.Fatalf("r=0 -> %v", got)
	}
	// r above MaxReplicas clamps instead of overrunning the scratch.
	slots := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := RendezvousN(7, slots, 99, nil); len(got) != MaxReplicas {
		t.Fatalf("r=99 -> %d slots, want %d", len(got), MaxReplicas)
	}
}

// TestRendezvousNStableRemap mirrors the single-destination remap-bound
// test for replica sets: adding k slots to N displaces each of a key's R
// replicas with probability ~k/(N+k), and removing a slot only moves the
// keys that held it.
func TestRendezvousNStableRemap(t *testing.T) {
	const keys = 20000
	const r = 2
	six := []int{0, 1, 2, 3, 4, 5}
	seven := []int{0, 1, 2, 3, 4, 5, 6}

	var a, b [MaxReplicas]int
	changed := 0
	for key := uint64(0); key < keys; key++ {
		was := append([]int(nil), RendezvousN(key, six, r, a[:0])...)
		now := RendezvousN(key, seven, r, b[:0])
		same := len(was) == len(now)
		for i := 0; same && i < len(was); i++ {
			same = was[i] == now[i]
		}
		if !same {
			changed++
		}
	}
	frac := float64(changed) / keys
	// Each of the 2 replicas moves with probability ~1/7, so ~2/7 ≈ 0.286
	// of keys see any placement change; allow sampling slack but stay far
	// below a reshuffle.
	if frac > 0.36 {
		t.Fatalf("6->7 changed %.1f%% of replica sets, want ~29%%", 100*frac)
	}
	if frac < 0.20 {
		t.Fatalf("6->7 changed only %.1f%% of replica sets — the new slot is starved", 100*frac)
	}

	// Removing slot 3: keys whose set excluded 3 keep identical sets.
	sixMinus := []int{0, 1, 2, 4, 5}
	for key := uint64(0); key < keys; key++ {
		was := append([]int(nil), RendezvousN(key, six, r, a[:0])...)
		had := false
		for _, s := range was {
			if s == 3 {
				had = true
			}
		}
		now := RendezvousN(key, sixMinus, r, b[:0])
		if !had {
			for i := range was {
				if now[i] != was[i] {
					t.Fatalf("key %d: set %v -> %v though slot 3 was not a replica", key, was, now)
				}
			}
			continue
		}
		for _, s := range now {
			if s == 3 {
				t.Fatalf("key %d still placed on removed slot 3: %v", key, now)
			}
		}
	}
}

func TestRendezvousNAllocationFree(t *testing.T) {
	slots := []int{0, 1, 2, 3, 4, 5}
	var buf [MaxReplicas]int
	allocs := testing.AllocsPerRun(200, func() {
		for key := uint64(0); key < 64; key++ {
			RendezvousN(key, slots, 2, buf[:0])
		}
	})
	if allocs != 0 {
		t.Fatalf("RendezvousN allocates %.1f per 64-key run, want 0", allocs)
	}
}
