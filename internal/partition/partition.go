// Package partition implements the graph partitioners the compared systems
// rely on (Section 4.1, Related Work):
//
//   - Hash: the inexpensive murmur partitioning gRouting's storage tier
//     uses by default.
//   - LDG: linear deterministic greedy streaming partitioning (Stanton &
//     Kliot), a practical one-pass edge-cut heuristic.
//   - Refine: greedy move-based edge-cut refinement, standing in for the
//     METIS/ParMETIS pipeline SEDGE employs (the paper's point is only
//     that such partitioners are expensive and produce low cuts).
//   - GreedyVertexCut: PowerGraph's greedy edge-placement heuristic that
//     minimises vertex replication on power-law graphs.
package partition

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hash"
)

// EdgeCut assigns every node to one of K parts.
type EdgeCut struct {
	Of []int32 // node id -> part (-1 for tombstoned ids)
	K  int
}

// HashPartition places nodes by murmur hash — O(n), no structure awareness.
func HashPartition(g *graph.Graph, k int) *EdgeCut {
	a := newEdgeCut(g, k)
	for u := graph.NodeID(0); u < g.MaxNodeID(); u++ {
		if g.Exists(u) {
			a.Of[u] = int32(hash.Key64(uint64(u), 0) % uint64(k))
		}
	}
	return a
}

func newEdgeCut(g *graph.Graph, k int) *EdgeCut {
	a := &EdgeCut{Of: make([]int32, g.MaxNodeID()), K: k}
	for i := range a.Of {
		a.Of[i] = -1
	}
	return a
}

// LDG streams nodes in id order, placing each on the part holding most of
// its already-placed neighbours, weighted by remaining capacity:
// score(p) = |N(u) ∩ p| · (1 − size(p)/capacity). Capacity is
// (1+slack)·n/k.
func LDG(g *graph.Graph, k int, slack float64) *EdgeCut {
	a := newEdgeCut(g, k)
	n := g.NumNodes()
	capacity := float64(n)/float64(k)*(1+slack) + 1
	sizes := make([]int, k)
	neigh := make([]int, k)
	for u := graph.NodeID(0); u < g.MaxNodeID(); u++ {
		if !g.Exists(u) {
			continue
		}
		for i := range neigh {
			neigh[i] = 0
		}
		countNeighbor := func(v graph.NodeID) {
			if int(v) < len(a.Of) && a.Of[v] >= 0 {
				neigh[a.Of[v]]++
			}
		}
		for _, e := range g.OutEdges(u) {
			countNeighbor(e.To)
		}
		for _, e := range g.InEdges(u) {
			countNeighbor(e.To)
		}
		best, bestScore := 0, -1.0
		for p := 0; p < k; p++ {
			penalty := 1 - float64(sizes[p])/capacity
			if penalty < 0 {
				penalty = 0
			}
			score := float64(neigh[p])*penalty + penalty*1e-6 // tie-break by emptiness
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		a.Of[u] = int32(best)
		sizes[best]++
	}
	return a
}

// Refine greedily moves nodes to the neighbouring part with the largest
// cut reduction, respecting a balance cap of (1+slack)·n/k, for the given
// number of passes. Applied after LDG it approximates the quality of a
// multilevel partitioner at a fraction of the complexity.
func Refine(g *graph.Graph, a *EdgeCut, passes int, slack float64) {
	n := g.NumNodes()
	capacity := int(float64(n)/float64(a.K)*(1+slack)) + 1
	sizes := make([]int, a.K)
	for u := graph.NodeID(0); u < g.MaxNodeID(); u++ {
		if g.Exists(u) && a.Of[u] >= 0 {
			sizes[a.Of[u]]++
		}
	}
	gain := make([]int, a.K)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for u := graph.NodeID(0); u < g.MaxNodeID(); u++ {
			if !g.Exists(u) || a.Of[u] < 0 {
				continue
			}
			for i := range gain {
				gain[i] = 0
			}
			count := func(v graph.NodeID) {
				if int(v) < len(a.Of) && a.Of[v] >= 0 {
					gain[a.Of[v]]++
				}
			}
			for _, e := range g.OutEdges(u) {
				count(e.To)
			}
			for _, e := range g.InEdges(u) {
				count(e.To)
			}
			cur := a.Of[u]
			best, bestGain := cur, gain[cur]
			for p := int32(0); p < int32(a.K); p++ {
				if p == cur || sizes[p] >= capacity {
					continue
				}
				if gain[p] > bestGain {
					best, bestGain = p, gain[p]
				}
			}
			if best != cur {
				sizes[cur]--
				sizes[best]++
				a.Of[u] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// CutFraction returns the fraction of live edges whose endpoints live in
// different parts — lower is better for BSP message traffic.
func (a *EdgeCut) CutFraction(g *graph.Graph) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	cut := 0
	for u := graph.NodeID(0); u < g.MaxNodeID(); u++ {
		if !g.Exists(u) {
			continue
		}
		for _, e := range g.OutEdges(u) {
			if int(e.To) < len(a.Of) && a.Of[u] != a.Of[e.To] {
				cut++
			}
		}
	}
	return float64(cut) / float64(g.NumEdges())
}

// Balance returns max part size / ideal part size (1.0 = perfect).
func (a *EdgeCut) Balance(g *graph.Graph) float64 {
	sizes := make([]int, a.K)
	total := 0
	for u := graph.NodeID(0); u < g.MaxNodeID(); u++ {
		if g.Exists(u) && a.Of[u] >= 0 {
			sizes[a.Of[u]]++
			total++
		}
	}
	if total == 0 {
		return 1
	}
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	return float64(maxSize) * float64(a.K) / float64(total)
}

// Validate checks that every live node is assigned to a valid part.
func (a *EdgeCut) Validate(g *graph.Graph) error {
	for u := graph.NodeID(0); u < g.MaxNodeID(); u++ {
		if !g.Exists(u) {
			continue
		}
		if int(u) >= len(a.Of) || a.Of[u] < 0 || a.Of[u] >= int32(a.K) {
			return fmt.Errorf("partition: node %d unassigned or out of range", u)
		}
	}
	return nil
}
