package partition

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// VertexCut assigns every directed edge to one of K (≤ 64) parts; a vertex
// is replicated on every part that holds one of its edges, as in
// PowerGraph's GAS model.
type VertexCut struct {
	K int
	// EdgeOf[u][i] is the part of the i-th out-edge of u (parallel to
	// g.OutEdges(u) at construction time).
	EdgeOf [][]uint8
	// replicas[u] is the bitmask of parts hosting a replica of u.
	replicas []uint64
	// edgeLoad counts edges per part.
	edgeLoad []int
}

// GreedyVertexCut places edges with PowerGraph's greedy heuristic:
//
//  1. if the endpoints' replica sets intersect, pick the least-loaded
//     common part;
//  2. else if both endpoints have replicas, pick the least-loaded part
//     among their union;
//  3. else if one endpoint has replicas, pick its least-loaded part;
//  4. else pick the globally least-loaded part.
func GreedyVertexCut(g *graph.Graph, k int) (*VertexCut, error) {
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("partition: vertex cut supports 1..64 parts, got %d", k)
	}
	vc := &VertexCut{
		K:        k,
		EdgeOf:   make([][]uint8, g.MaxNodeID()),
		replicas: make([]uint64, g.MaxNodeID()),
		edgeLoad: make([]int, k),
	}
	leastLoaded := func(mask uint64) int {
		best, bestLoad := -1, int(^uint(0)>>1)
		for p := 0; p < k; p++ {
			if mask&(1<<uint(p)) == 0 {
				continue
			}
			if vc.edgeLoad[p] < bestLoad {
				best, bestLoad = p, vc.edgeLoad[p]
			}
		}
		return best
	}
	allMask := uint64(1)<<uint(k) - 1
	if k == 64 {
		allMask = ^uint64(0)
	}
	assigned := 0
	for u := graph.NodeID(0); u < g.MaxNodeID(); u++ {
		if !g.Exists(u) {
			continue
		}
		out := g.OutEdges(u)
		vc.EdgeOf[u] = make([]uint8, len(out))
		for i, e := range out {
			ru, rv := vc.replicas[u], vc.replicas[e.To]
			var p int
			switch {
			case ru&rv != 0:
				p = leastLoaded(ru & rv)
			case ru != 0 && rv != 0:
				p = leastLoaded(ru | rv)
			case ru != 0:
				p = leastLoaded(ru)
			case rv != 0:
				p = leastLoaded(rv)
			default:
				p = leastLoaded(allMask)
			}
			// Balance guard (PowerGraph bounds imbalance the same way):
			// when affinity would overload a part, fall back to the
			// globally least-loaded one instead.
			if cap := assigned/k + assigned/(5*k) + 8; vc.edgeLoad[p] >= cap {
				p = leastLoaded(allMask)
			}
			assigned++
			vc.EdgeOf[u][i] = uint8(p)
			vc.replicas[u] |= 1 << uint(p)
			vc.replicas[e.To] |= 1 << uint(p)
			vc.edgeLoad[p]++
		}
	}
	return vc, nil
}

// Replicas returns the number of parts hosting node u.
func (vc *VertexCut) Replicas(u graph.NodeID) int {
	if int(u) >= len(vc.replicas) {
		return 0
	}
	return bits.OnesCount64(vc.replicas[u])
}

// ReplicationFactor is the average replica count over nodes with at least
// one replica — PowerGraph's headline partition-quality metric.
func (vc *VertexCut) ReplicationFactor() float64 {
	total, nodes := 0, 0
	for _, m := range vc.replicas {
		if m != 0 {
			total += bits.OnesCount64(m)
			nodes++
		}
	}
	if nodes == 0 {
		return 0
	}
	return float64(total) / float64(nodes)
}

// EdgeBalance returns max part edge-load / ideal (1.0 = perfect).
func (vc *VertexCut) EdgeBalance() float64 {
	total, maxLoad := 0, 0
	for _, l := range vc.edgeLoad {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if total == 0 {
		return 1
	}
	return float64(maxLoad) * float64(vc.K) / float64(total)
}

// EdgeLoad returns the per-part edge counts.
func (vc *VertexCut) EdgeLoad() []int { return append([]int(nil), vc.edgeLoad...) }
