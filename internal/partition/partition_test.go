package partition

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestHashPartitionCovers(t *testing.T) {
	g := gen.ErdosRenyi(500, 2000, 1)
	a := HashPartition(g, 4)
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	if b := a.Balance(g); b > 1.3 {
		t.Fatalf("hash balance = %v", b)
	}
}

func TestHashPartitionSkipsRemoved(t *testing.T) {
	g := gen.Ring(10)
	if err := g.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	a := HashPartition(g, 2)
	if a.Of[3] != -1 {
		t.Fatalf("removed node assigned to part %d", a.Of[3])
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestLDGBeatsHashOnCut(t *testing.T) {
	// A strongly clustered graph: LDG should find a far lower cut.
	g := graph.New()
	const clusters, per = 4, 100
	g.AddNodes(clusters * per)
	for c := 0; c < clusters; c++ {
		base := c * per
		for i := 0; i < per*6; i++ {
			u := base + (i*7)%per
			v := base + (i*13+1)%per
			g.AddEdgeFast(graph.NodeID(u), graph.NodeID(v))
		}
	}
	// Sparse inter-cluster bridges.
	for c := 0; c < clusters; c++ {
		g.AddEdgeFast(graph.NodeID(c*per), graph.NodeID(((c+1)%clusters)*per))
	}
	hashCut := HashPartition(g, clusters).CutFraction(g)
	ldg := LDG(g, clusters, 0.1)
	if err := ldg.Validate(g); err != nil {
		t.Fatal(err)
	}
	ldgCut := ldg.CutFraction(g)
	if ldgCut >= hashCut/2 {
		t.Fatalf("LDG cut %v not clearly better than hash cut %v", ldgCut, hashCut)
	}
	if b := ldg.Balance(g); b > 1.3 {
		t.Fatalf("LDG balance = %v", b)
	}
}

func TestRefineImprovesCut(t *testing.T) {
	g := gen.BarabasiAlbert(600, 4, 3)
	a := HashPartition(g, 4)
	before := a.CutFraction(g)
	Refine(g, a, 4, 0.15)
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	after := a.CutFraction(g)
	if after >= before {
		t.Fatalf("refinement did not improve cut: %v -> %v", before, after)
	}
	if b := a.Balance(g); b > 1.3 {
		t.Fatalf("refined balance = %v", b)
	}
}

func TestRefineRespectsBalanceCap(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 9)
	a := HashPartition(g, 4)
	Refine(g, a, 8, 0.05)
	if b := a.Balance(g); b > 1.15 {
		t.Fatalf("balance cap violated: %v", b)
	}
}

func TestCutFractionBounds(t *testing.T) {
	g := gen.Ring(8)
	a := HashPartition(g, 2)
	cf := a.CutFraction(g)
	if cf < 0 || cf > 1 {
		t.Fatalf("cut fraction = %v", cf)
	}
	// Single part: no cut.
	one := HashPartition(g, 1)
	if got := one.CutFraction(g); got != 0 {
		t.Fatalf("1-part cut = %v", got)
	}
	if got := (&EdgeCut{Of: nil, K: 2}).CutFraction(graph.New()); got != 0 {
		t.Fatalf("empty-graph cut = %v", got)
	}
}

func TestGreedyVertexCutValidRange(t *testing.T) {
	g := gen.Ring(4)
	if _, err := GreedyVertexCut(g, 0); err == nil {
		t.Fatal("accepted 0 parts")
	}
	if _, err := GreedyVertexCut(g, 65); err == nil {
		t.Fatal("accepted 65 parts")
	}
}

func TestGreedyVertexCutCoversEdges(t *testing.T) {
	g := gen.BarabasiAlbert(500, 5, 2)
	vc, err := GreedyVertexCut(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	totalAssigned := 0
	for u := graph.NodeID(0); u < g.MaxNodeID(); u++ {
		if len(vc.EdgeOf[u]) != len(g.OutEdges(u)) {
			t.Fatalf("node %d: %d assignments for %d edges", u, len(vc.EdgeOf[u]), len(g.OutEdges(u)))
		}
		for i, p := range vc.EdgeOf[u] {
			if int(p) >= 8 {
				t.Fatalf("edge %d/%d on part %d", u, i, p)
			}
			// Both endpoints must be replicated on the edge's part.
			e := g.OutEdges(u)[i]
			if vc.replicas[u]&(1<<uint(p)) == 0 || vc.replicas[e.To]&(1<<uint(p)) == 0 {
				t.Fatalf("edge (%d,%d) on part %d lacks endpoint replicas", u, e.To, p)
			}
			totalAssigned++
		}
	}
	if totalAssigned != g.NumEdges() {
		t.Fatalf("assigned %d of %d edges", totalAssigned, g.NumEdges())
	}
}

func TestVertexCutReplicationReasonable(t *testing.T) {
	g := gen.BarabasiAlbert(800, 6, 4)
	vc, err := GreedyVertexCut(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	rf := vc.ReplicationFactor()
	if rf < 1 || rf > 8 {
		t.Fatalf("replication factor = %v", rf)
	}
	// Greedy must beat random edge placement by a clear margin. Random
	// placement on k=8 replicates high-degree nodes ~everywhere.
	if rf > 4.5 {
		t.Fatalf("replication factor %v too high for greedy placement", rf)
	}
	if b := vc.EdgeBalance(); b > 1.5 {
		t.Fatalf("edge balance = %v (loads %v)", b, vc.EdgeLoad())
	}
}

func TestVertexCutHighDegreeSpread(t *testing.T) {
	// A star's centre must be replicated across parts (that is the point
	// of a vertex cut).
	g := graph.New()
	g.AddNodes(101)
	for i := 1; i <= 100; i++ {
		g.AddEdgeFast(0, graph.NodeID(i))
	}
	vc, err := GreedyVertexCut(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := vc.Replicas(0); got < 3 {
		t.Fatalf("star centre on %d parts, want >= 3 (spread under balance guard)", got)
	}
	// Leaves live on exactly one part.
	for i := 1; i <= 100; i++ {
		if got := vc.Replicas(graph.NodeID(i)); got != 1 {
			t.Fatalf("leaf %d on %d parts", i, got)
		}
	}
	if vc.Replicas(5000) != 0 {
		t.Fatal("out-of-range node has replicas")
	}
}

func BenchmarkLDG(b *testing.B) {
	g := gen.RMAT(gen.RMATOptions{Nodes: 20000, Edges: 100000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LDG(g, 12, 0.1)
	}
}

func BenchmarkGreedyVertexCut(b *testing.B) {
	g := gen.RMAT(gen.RMATOptions{Nodes: 20000, Edges: 100000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyVertexCut(g, 12); err != nil {
			b.Fatal(err)
		}
	}
}
