// Package hash implements MurmurHash3, the hash RAMCloud (and therefore the
// paper's storage tier) uses to place keys on storage servers: "The graph is
// partitioned across storage servers via RAMCloud's default and inexpensive
// hash partitioning scheme, MurmurHash3 over graph nodes."
//
// Two variants are provided: the full x64 128-bit digest for arbitrary byte
// keys, and a fast fixed-width path for 8-byte node-id keys (the hot path of
// the storage tier).
package hash

import "encoding/binary"

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

// fmix64 is MurmurHash3's 64-bit finaliser: a full-avalanche bit mixer.
func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func rotl64(x uint64, r uint) uint64 { return (x << r) | (x >> (64 - r)) }

// Sum128 computes the MurmurHash3 x64 128-bit digest of data with the given
// seed, returning the two 64-bit halves.
func Sum128(data []byte, seed uint64) (uint64, uint64) {
	h1, h2 := seed, seed
	n := len(data)

	// Body: 16-byte blocks.
	for len(data) >= 16 {
		k1 := binary.LittleEndian.Uint64(data[0:8])
		k2 := binary.LittleEndian.Uint64(data[8:16])
		data = data[16:]

		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1
		h1 = rotl64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2
		h2 = rotl64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail.
	var k1, k2 uint64
	switch len(data) {
	case 15:
		k2 ^= uint64(data[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(data[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(data[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(data[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(data[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(data[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(data[8])
		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(data[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(data[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(data[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(data[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(data[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(data[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(data[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(data[0])
		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	// Finalisation.
	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// Sum64 returns the first 64 bits of the x64 128-bit digest.
func Sum64(data []byte, seed uint64) uint64 {
	h1, _ := Sum128(data, seed)
	return h1
}

// Key64 hashes an 8-byte (uint64) key: the storage tier's node-id
// placement hash. Equivalent to Sum64 over the key's little-endian bytes
// but without the allocation.
func Key64(key uint64, seed uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	return Sum64(buf[:], seed)
}
