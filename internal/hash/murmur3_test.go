package hash

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// Reference vectors for MurmurHash3 x64-128 (first 64 bits), matching the
// canonical C++ implementation with seed 0.
func TestReferenceVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0x0000000000000000},
		{"hello", 0xcbd8a7b341bd9b02},
		{"hello, world", 0x342fac623a5ebc8e},
		{"19 Jan 2038 at 3:14:07 AM", 0xb89e5988b737affc},
		{"The quick brown fox jumps over the lazy dog.", 0xcd99481f9ee902c9},
	}
	for _, c := range cases {
		if got := Sum64([]byte(c.in), 0); got != c.want {
			t.Errorf("Sum64(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestSeedChangesDigest(t *testing.T) {
	a := Sum64([]byte("key"), 0)
	b := Sum64([]byte("key"), 1)
	if a == b {
		t.Fatal("different seeds produced the same digest")
	}
}

func TestAllTailLengths(t *testing.T) {
	// Exercise every tail-switch arm (lengths 0..16+15) and check
	// determinism + distinctness.
	seen := map[uint64]int{}
	buf := make([]byte, 0, 31)
	for n := 0; n <= 31; n++ {
		h := Sum64(buf, 42)
		if prev, dup := seen[h]; dup {
			t.Fatalf("length %d collides with length %d", n, prev)
		}
		seen[h] = n
		if again := Sum64(buf, 42); again != h {
			t.Fatalf("length %d not deterministic", n)
		}
		buf = append(buf, byte(n+1))
	}
}

func TestKey64MatchesSum64(t *testing.T) {
	f := func(key, seed uint64) bool {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], key)
		return Key64(key, seed) == Sum64(buf[:], seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSum128Halves(t *testing.T) {
	h1, h2 := Sum128([]byte("abcdefghijklmnopqrstuvwxyz"), 0)
	if h1 == 0 || h2 == 0 || h1 == h2 {
		t.Fatalf("suspicious digest halves: %#x, %#x", h1, h2)
	}
}

// TestShardDistribution verifies that Key64 spreads sequential node ids
// uniformly across shards - the property the storage tier's hash
// partitioning relies on. Chi-squared against uniform with generous bounds.
func TestShardDistribution(t *testing.T) {
	const keys = 100000
	for _, shards := range []int{2, 4, 7, 16} {
		counts := make([]int, shards)
		for k := uint64(0); k < keys; k++ {
			counts[Key64(k, 0)%uint64(shards)]++
		}
		expected := float64(keys) / float64(shards)
		var chi2 float64
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 99.9th percentile of chi-squared with <=15 dof is ~37.7.
		if chi2 > 40 {
			t.Errorf("shards=%d: chi2 = %v (counts %v)", shards, chi2, counts)
		}
	}
}

// TestAvalanche flips single input bits and requires ~half the output bits
// to change on average (full-avalanche mixing).
func TestAvalanche(t *testing.T) {
	base := make([]byte, 16)
	h0 := Sum64(base, 0)
	totalFlips := 0
	trials := 0
	for byteIdx := 0; byteIdx < 16; byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mod := make([]byte, 16)
			copy(mod, base)
			mod[byteIdx] ^= 1 << bit
			diff := Sum64(mod, 0) ^ h0
			for d := diff; d != 0; d &= d - 1 {
				totalFlips++
			}
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average = %v output bits flipped, want ~32", avg)
	}
}

func BenchmarkKey64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Key64(uint64(i), 0)
	}
	_ = sink
}

func BenchmarkSum128_64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Sum128(data, 0)
	}
}
