// Package landmark implements the landmark machinery behind the paper's
// first smart routing scheme (Section 3.4.1).
//
// Landmarks are selected "based on their node degree and how well they
// spread over the entire graph": candidates are taken in decreasing degree
// order and discarded when they fall within a minimum hop separation of an
// already-chosen landmark. A BFS per landmark (over the bi-directed graph)
// yields the distance field d(l, u); pivot landmarks are then spread across
// processors farthest-point style, every remaining landmark joins its
// closest pivot's processor, and the router keeps the O(n·P) table
// d(u, p) = min over landmarks assigned to p of d(l, u).
package landmark

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// Inf is the distance recorded for unreachable node/landmark pairs.
const Inf uint16 = ^uint16(0)

// Index holds the selected landmarks and their BFS distance fields.
type Index struct {
	Landmarks []graph.NodeID
	// dist[i] is the bi-directed hop distance from Landmarks[i] to every
	// node id (Inf when unreachable), indexed by NodeID.
	dist [][]uint16
}

// Select picks up to count landmarks in decreasing degree order, skipping
// candidates closer than minSep hops (bi-directed) to an already selected
// landmark. It may return fewer than count landmarks on small or
// fragmented graphs.
func Select(g *graph.Graph, count, minSep int) []graph.NodeID {
	if count <= 0 {
		return nil
	}
	chosen := make([]graph.NodeID, 0, count)
	isChosen := make(map[graph.NodeID]bool, count)
	for _, cand := range g.NodesByDegreeDesc() {
		if len(chosen) == count {
			break
		}
		if g.Degree(cand) == 0 {
			// Isolated nodes cannot anchor distances; and since candidates
			// come sorted by degree, everything after is isolated too.
			break
		}
		if minSep > 0 && len(chosen) > 0 && withinHops(g, cand, minSep-1, isChosen) {
			continue
		}
		chosen = append(chosen, cand)
		isChosen[cand] = true
	}
	return chosen
}

// withinHops reports whether any target node lies within maxHops of src
// (bi-directed), aborting the BFS as soon as one is found — landmark
// selection probes this for every candidate, so early exit matters on
// dense graphs.
func withinHops(g *graph.Graph, src graph.NodeID, maxHops int, targets map[graph.NodeID]bool) bool {
	if targets[src] {
		return true
	}
	if maxHops <= 0 {
		return false
	}
	seen := map[graph.NodeID]struct{}{src: {}}
	frontier := []graph.NodeID{src}
	for h := 0; h < maxHops && len(frontier) > 0; h++ {
		var next []graph.NodeID
		for _, u := range frontier {
			hit := false
			g.VisitNeighbors(u, graph.Both, func(v graph.NodeID) {
				if targets[v] {
					hit = true
				}
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					next = append(next, v)
				}
			})
			if hit {
				return true
			}
		}
		frontier = next
	}
	return false
}

// BuildIndex runs one BFS per landmark (parallel across workers; 0 means
// GOMAXPROCS) and returns the distance index. This is the O(|L|·e)
// preprocessing step of Table 2.
func BuildIndex(g *graph.Graph, landmarks []graph.NodeID, workers int) *Index {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := &Index{
		Landmarks: append([]graph.NodeID(nil), landmarks...),
		dist:      make([][]uint16, len(landmarks)),
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, l := range idx.Landmarks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, l graph.NodeID) {
			defer wg.Done()
			defer func() { <-sem }()
			idx.dist[i] = compressBFS(g.BFS(l, graph.Both))
		}(i, l)
	}
	wg.Wait()
	return idx
}

func compressBFS(d32 []int32) []uint16 {
	d := make([]uint16, len(d32))
	for i, v := range d32 {
		switch {
		case v < 0:
			d[i] = Inf
		case v >= int32(Inf):
			d[i] = Inf - 1
		default:
			d[i] = uint16(v)
		}
	}
	return d
}

// NumLandmarks returns the number of landmarks in the index.
func (idx *Index) NumLandmarks() int { return len(idx.Landmarks) }

// NumNodes returns the node-id capacity of the distance fields.
func (idx *Index) NumNodes() int {
	if len(idx.dist) == 0 {
		return 0
	}
	return len(idx.dist[0])
}

// Dist returns the hop distance from landmark i to node u (Inf when
// unreachable or out of range).
func (idx *Index) Dist(i int, u graph.NodeID) uint16 {
	if i < 0 || i >= len(idx.dist) || int(u) >= len(idx.dist[i]) {
		return Inf
	}
	return idx.dist[i][u]
}

// LandmarkDist returns the hop distance between landmarks i and j.
func (idx *Index) LandmarkDist(i, j int) uint16 {
	return idx.Dist(i, idx.Landmarks[j])
}

// StorageBytes reports the memory the distance fields occupy — the
// "preprocessing storage" quantity of Table 3.
func (idx *Index) StorageBytes() int64 {
	var total int64
	for _, d := range idx.dist {
		total += int64(len(d)) * 2
	}
	return total
}

// Bound returns the landmark lower and upper bounds on d(u, v) from Eq 2:
// |d(u,l) − d(l,v)| ≤ d(u,v) ≤ d(u,l) + d(l,v), tightened over every
// landmark. ok is false when no landmark reaches both nodes.
func (idx *Index) Bound(u, v graph.NodeID) (lo, hi uint16, ok bool) {
	lo, hi = 0, Inf
	for i := range idx.Landmarks {
		du, dv := idx.Dist(i, u), idx.Dist(i, v)
		if du == Inf || dv == Inf {
			continue
		}
		ok = true
		diff := du - dv
		if dv > du {
			diff = dv - du
		}
		if diff > lo {
			lo = diff
		}
		if sum := uint32(du) + uint32(dv); sum < uint32(hi) {
			hi = uint16(sum)
		}
	}
	return lo, hi, ok
}

// growTo extends every distance field to cover node ids < n, marking new
// slots unreachable.
func (idx *Index) growTo(n int) {
	for i := range idx.dist {
		for len(idx.dist[i]) < n {
			idx.dist[i] = append(idx.dist[i], Inf)
		}
	}
}

// IncorporateNode computes the distances of a (new) node u from every
// landmark by relaxing over its current neighbours: d(l,u) =
// 1 + min over neighbours w of d(l,w). This is the paper's lightweight
// update path ("when a new node u is added, we compute the distance of
// this node to every landmark") — exact when the neighbours' distances are
// exact, an upper bound otherwise.
func (idx *Index) IncorporateNode(g *graph.Graph, u graph.NodeID) {
	idx.growTo(int(u) + 1)
	for i := range idx.dist {
		best := uint32(Inf)
		if idx.Landmarks[i] == u {
			best = 0
		}
		relax := func(v graph.NodeID) {
			if int(v) < len(idx.dist[i]) {
				if d := idx.dist[i][v]; d != Inf && uint32(d)+1 < best {
					best = uint32(d) + 1
				}
			}
		}
		for _, e := range g.OutEdges(u) {
			relax(e.To)
		}
		for _, e := range g.InEdges(u) {
			relax(e.To)
		}
		idx.dist[i][u] = uint16(best)
	}
}

// RefreshAround re-relaxes the distance estimates of every node within
// hops of u (bi-directed), the paper's edge-update rule ("for these two
// end-nodes and their neighbors up to a certain number of hops, we
// recompute their distances to every landmark"). Estimates can only
// improve towards the true distance for additions; deletions degrade to
// stale upper bounds until the periodic offline rebuild.
func (idx *Index) RefreshAround(g *graph.Graph, u graph.NodeID, hops int) {
	region := g.BFSBounded(u, hops, graph.Both)
	// Iterate a few relaxation rounds so improvements propagate inside the
	// region (distance corrections travel at one hop per round).
	for round := 0; round < hops+1; round++ {
		changed := false
		for v := range region {
			for i := range idx.dist {
				if int(v) >= len(idx.dist[i]) {
					idx.growTo(int(v) + 1)
				}
				best := uint32(Inf)
				if idx.Landmarks[i] == v {
					best = 0
				}
				relax := func(w graph.NodeID) {
					if int(w) < len(idx.dist[i]) {
						if d := idx.dist[i][w]; d != Inf && uint32(d)+1 < best {
							best = uint32(d) + 1
						}
					}
				}
				for _, e := range g.OutEdges(v) {
					relax(e.To)
				}
				for _, e := range g.InEdges(v) {
					relax(e.To)
				}
				if uint16(best) < idx.dist[i][v] {
					idx.dist[i][v] = uint16(best)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// Validate checks internal consistency (every distance field covers the
// same id range); it exists for tests and debugging.
func (idx *Index) Validate() error {
	for i := 1; i < len(idx.dist); i++ {
		if len(idx.dist[i]) != len(idx.dist[0]) {
			return fmt.Errorf("landmark: field %d covers %d ids, field 0 covers %d",
				i, len(idx.dist[i]), len(idx.dist[0]))
		}
	}
	if len(idx.dist) != len(idx.Landmarks) {
		return fmt.Errorf("landmark: %d fields for %d landmarks", len(idx.dist), len(idx.Landmarks))
	}
	return nil
}
