package landmark

import "repro/internal/graph"

// Assignment maps landmarks to processors and carries the router's O(n·P)
// node→processor distance table.
type Assignment struct {
	// Pivots[p] is the index (into Index.Landmarks) of processor p's pivot
	// landmark.
	Pivots []int
	// ProcOf[i] is the processor owning landmark i.
	ProcOf []int
	// distToProc is row-major [node][processor]: d(u,p) = min over
	// landmarks assigned to p of d(l,u).
	distToProc []uint16
	procs      int
}

// Assign distributes the index's landmarks over procs processors
// (Section 3.4.1 preprocessing):
//
//  1. the first two pivots are the farthest-apart landmark pair;
//  2. each next pivot is the landmark farthest from all chosen pivots;
//  3. every remaining landmark joins its closest pivot's processor;
//  4. the node→processor distance table is materialised.
//
// When there are fewer landmarks than processors, the extra processors get
// no landmarks and keep infinite distance to every node (the router's
// load-balancing term still lets them steal work).
func Assign(idx *Index, procs int) *Assignment {
	L := idx.NumLandmarks()
	a := &Assignment{
		Pivots: make([]int, 0, procs),
		ProcOf: make([]int, L),
		procs:  procs,
	}
	if procs <= 0 {
		return a
	}
	npivots := procs
	if npivots > L {
		npivots = L
	}
	if npivots > 0 {
		a.Pivots = append(a.Pivots, farthestPair(idx, npivots)...)
	}
	// Assign every landmark to the processor of its closest pivot.
	for i := 0; i < L; i++ {
		best, bestD := 0, uint32(Inf)+1
		for p, pivot := range a.Pivots {
			d := uint32(idx.LandmarkDist(pivot, i))
			if pivot == i {
				d = 0
			}
			if d < bestD {
				best, bestD = p, d
			}
		}
		a.ProcOf[i] = best
	}
	a.buildDistTable(idx)
	return a
}

// farthestPair seeds pivot selection with the farthest-apart landmark pair
// and extends it greedily (farthest-point traversal). Unreachable pairs
// rank as maximally far, which naturally spreads pivots across components.
func farthestPair(idx *Index, npivots int) []int {
	L := idx.NumLandmarks()
	if L == 0 {
		return nil
	}
	if L == 1 || npivots == 1 {
		return []int{0}
	}
	bi, bj, bd := 0, 1, uint32(0)
	for i := 0; i < L; i++ {
		for j := i + 1; j < L; j++ {
			d := uint32(idx.LandmarkDist(i, j))
			if d >= bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	pivots := []int{bi, bj}
	inPivot := map[int]bool{bi: true, bj: true}
	for len(pivots) < npivots {
		bestL, bestScore := -1, int64(-1)
		for i := 0; i < L; i++ {
			if inPivot[i] {
				continue
			}
			// Distance to the pivot set = min distance to any pivot.
			score := int64(Inf) + 1
			for _, p := range pivots {
				if d := int64(idx.LandmarkDist(p, i)); d < score {
					score = d
				}
			}
			if score > bestScore {
				bestL, bestScore = i, score
			}
		}
		if bestL < 0 {
			break
		}
		pivots = append(pivots, bestL)
		inPivot[bestL] = true
	}
	return pivots
}

func (a *Assignment) buildDistTable(idx *Index) {
	n := idx.NumNodes()
	a.distToProc = make([]uint16, n*a.procs)
	for i := range a.distToProc {
		a.distToProc[i] = Inf
	}
	for li, p := range a.ProcOf {
		for u := 0; u < n; u++ {
			d := idx.Dist(li, graph.NodeID(u))
			if d < a.distToProc[u*a.procs+p] {
				a.distToProc[u*a.procs+p] = d
			}
		}
	}
}

// Procs returns the number of processors in the assignment.
func (a *Assignment) Procs() int { return a.procs }

// DistToProc returns d(u, p): the distance of node u to the closest
// landmark owned by processor p (Inf when unknown).
func (a *Assignment) DistToProc(u graph.NodeID, p int) uint16 {
	i := int(u)*a.procs + p
	if p < 0 || p >= a.procs || i >= len(a.distToProc) {
		return Inf
	}
	return a.distToProc[i]
}

// SetNodeDistances fills node u's row from the index (used after
// IncorporateNode extends the index with a new node).
func (a *Assignment) SetNodeDistances(idx *Index, u graph.NodeID) {
	need := (int(u) + 1) * a.procs
	for len(a.distToProc) < need {
		a.distToProc = append(a.distToProc, Inf)
	}
	row := a.distToProc[int(u)*a.procs : need]
	for p := range row {
		row[p] = Inf
	}
	for li, p := range a.ProcOf {
		if d := idx.Dist(li, u); d < row[p] {
			row[p] = d
		}
	}
}

// StorageBytes reports the router-side memory of the d(u,p) table —
// Table 3's "preprocessing storage" for landmark routing is dominated by
// this O(n·P) structure.
func (a *Assignment) StorageBytes() int64 {
	return int64(len(a.distToProc)) * 2
}
