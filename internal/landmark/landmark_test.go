package landmark

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestSelectPicksHighDegreeFirst(t *testing.T) {
	g := graph.New()
	g.AddNodes(10)
	// Node 0 is a hub.
	for i := 1; i < 10; i++ {
		g.AddEdgeFast(0, graph.NodeID(i))
	}
	g.AddEdgeFast(1, 2)
	ls := Select(g, 1, 0)
	if len(ls) != 1 || ls[0] != 0 {
		t.Fatalf("Select = %v, want [0]", ls)
	}
}

func TestSelectHonoursSeparation(t *testing.T) {
	// Hub A (node 0, degree 14), its adjacent satellite (node 2, degree 8),
	// and hub B (node 1, degree 7) three hops away from A.
	g := graph.New()
	g.AddNodes(72)
	for i := 30; i < 42; i++ {
		g.AddEdgeFast(0, graph.NodeID(i)) // hub A fan-out
	}
	for i := 50; i < 57; i++ {
		g.AddEdgeFast(2, graph.NodeID(i)) // satellite fan-out
	}
	g.AddEdgeFast(2, 0) // satellite is 1 hop from hub A
	for i := 60; i < 66; i++ {
		g.AddEdgeFast(1, graph.NodeID(i)) // hub B fan-out
	}
	// Path 0 - 70 - 71 - 1 makes dist(A, B) = 3 in the bi-directed view.
	g.AddEdgeFast(0, 70)
	g.AddEdgeFast(70, 71)
	g.AddEdgeFast(71, 1)

	// With no separation requirement, degree order wins: A then satellite.
	ls0 := Select(g, 2, 0)
	if len(ls0) != 2 || ls0[0] != 0 || ls0[1] != 2 {
		t.Fatalf("Select(minSep=0) = %v, want [0 2]", ls0)
	}
	// With 3-hop separation the satellite is discarded for hub B.
	ls := Select(g, 2, 3)
	if len(ls) != 2 || ls[0] != 0 || ls[1] != 1 {
		t.Fatalf("Select(minSep=3) = %v, want [0 1]", ls)
	}
}

func TestSelectSkipsIsolated(t *testing.T) {
	g := graph.New()
	g.AddNodes(5)
	g.AddEdgeFast(0, 1)
	ls := Select(g, 4, 0)
	if len(ls) != 2 {
		t.Fatalf("Select = %v, want only the two connected nodes", ls)
	}
}

func TestSelectZeroCount(t *testing.T) {
	if ls := Select(gen.Ring(5), 0, 0); ls != nil {
		t.Fatalf("Select(count=0) = %v", ls)
	}
}

func TestBuildIndexDistances(t *testing.T) {
	g := gen.Grid(6, 6)
	ls := []graph.NodeID{0, 35} // opposite corners
	idx := BuildIndex(g, ls, 2)
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
	if idx.NumLandmarks() != 2 || idx.NumNodes() != 36 {
		t.Fatalf("index shape: L=%d n=%d", idx.NumLandmarks(), idx.NumNodes())
	}
	// Grid distance from corner 0 to node (x,y) is x+y.
	if d := idx.Dist(0, 14); d != 2+2 {
		t.Fatalf("Dist(corner, (2,2)) = %d, want 4", d)
	}
	if d := idx.LandmarkDist(0, 1); d != 10 {
		t.Fatalf("corner-to-corner = %d, want 10", d)
	}
	if d := idx.Dist(0, 99); d != Inf {
		t.Fatalf("out-of-range Dist = %d, want Inf", d)
	}
	if d := idx.Dist(9, 0); d != Inf {
		t.Fatalf("bad landmark index Dist = %d, want Inf", d)
	}
}

func TestBuildIndexUnreachable(t *testing.T) {
	g := graph.New()
	g.AddNodes(4)
	g.AddEdgeFast(0, 1) // component {0,1}; nodes 2,3 isolated
	idx := BuildIndex(g, []graph.NodeID{0}, 1)
	if idx.Dist(0, 2) != Inf {
		t.Fatalf("distance to disconnected node = %d, want Inf", idx.Dist(0, 2))
	}
	if idx.Dist(0, 1) != 1 {
		t.Fatalf("distance to neighbour = %d", idx.Dist(0, 1))
	}
}

// TestBoundProperty checks Eq 2 against true distances on a random graph.
func TestBoundProperty(t *testing.T) {
	rng := xrand.New(3)
	g := gen.ErdosRenyi(120, 480, 7)
	ls := Select(g, 8, 2)
	idx := BuildIndex(g, ls, 0)
	for trial := 0; trial < 200; trial++ {
		u := graph.NodeID(rng.Intn(120))
		v := graph.NodeID(rng.Intn(120))
		lo, hi, ok := idx.Bound(u, v)
		truth := g.HopDistance(u, v, -1, graph.Both)
		if truth == graph.Unreachable {
			continue
		}
		if !ok {
			continue
		}
		if uint16(truth) < lo || uint16(truth) > hi {
			t.Fatalf("bound violated: d(%d,%d)=%d not in [%d,%d]", u, v, truth, lo, hi)
		}
	}
}

func TestStorageBytes(t *testing.T) {
	g := gen.Ring(100)
	idx := BuildIndex(g, []graph.NodeID{0, 50}, 0)
	if got := idx.StorageBytes(); got != 2*100*2 {
		t.Fatalf("StorageBytes = %d, want 400", got)
	}
}

func TestIncorporateNode(t *testing.T) {
	g := gen.Ring(20)
	idx := BuildIndex(g, []graph.NodeID{0}, 0)
	// Add a node hanging off node 5.
	u := g.AddNode("")
	g.AddEdgeFast(5, u)
	idx.IncorporateNode(g, u)
	want := idx.Dist(0, 5) + 1
	if got := idx.Dist(0, u); got != want {
		t.Fatalf("Dist(0, new) = %d, want %d", got, want)
	}
}

func TestIncorporateIsolatedNode(t *testing.T) {
	g := gen.Ring(10)
	idx := BuildIndex(g, []graph.NodeID{0}, 0)
	u := g.AddNode("")
	idx.IncorporateNode(g, u)
	if got := idx.Dist(0, u); got != Inf {
		t.Fatalf("Dist to isolated new node = %d, want Inf", got)
	}
}

func TestRefreshAroundShortcut(t *testing.T) {
	// Path 0-1-...-9, landmark at 0. Adding shortcut 0->9 shortens node 9
	// and its neighbourhood.
	g := graph.New()
	g.AddNodes(10)
	for i := 0; i < 9; i++ {
		g.AddEdgeFast(graph.NodeID(i), graph.NodeID(i+1))
	}
	idx := BuildIndex(g, []graph.NodeID{0}, 0)
	if idx.Dist(0, 9) != 9 {
		t.Fatalf("pre-update Dist(0,9) = %d", idx.Dist(0, 9))
	}
	g.AddEdgeFast(0, 9)
	idx.RefreshAround(g, 9, 2)
	if got := idx.Dist(0, 9); got != 1 {
		t.Fatalf("post-update Dist(0,9) = %d, want 1", got)
	}
	// 2-hop refresh also corrects node 8 (via 9).
	if got := idx.Dist(0, 8); got != 2 {
		t.Fatalf("post-update Dist(0,8) = %d, want 2", got)
	}
}

func TestAssignPivotsSpread(t *testing.T) {
	// 3 clusters of hubs; 3 processors must get pivots in distinct clusters.
	g := gen.Grid(12, 3) // 36 nodes; landmarks at columns 0, 6, 11
	ls := []graph.NodeID{0, 6, 11, 1, 7}
	idx := BuildIndex(g, ls, 0)
	a := Assign(idx, 3)
	if len(a.Pivots) != 3 {
		t.Fatalf("pivots = %v", a.Pivots)
	}
	// Landmark 3 (node 1) must co-locate with landmark 0 (node 0); landmark
	// 4 (node 7) with landmark 1 (node 6).
	if a.ProcOf[3] != a.ProcOf[0] {
		t.Fatalf("landmark at node 1 assigned to proc %d, hub at node 0 to %d", a.ProcOf[3], a.ProcOf[0])
	}
	if a.ProcOf[4] != a.ProcOf[1] {
		t.Fatalf("landmark at node 7 assigned to proc %d, hub at node 6 to %d", a.ProcOf[4], a.ProcOf[1])
	}
}

func TestAssignDistTable(t *testing.T) {
	g := gen.Grid(10, 1) // path of 10 nodes
	ls := []graph.NodeID{0, 9}
	idx := BuildIndex(g, ls, 0)
	a := Assign(idx, 2)
	if a.Procs() != 2 {
		t.Fatalf("Procs = %d", a.Procs())
	}
	// d(u, p) = distance to that end of the path.
	pLeft := a.ProcOf[0]
	pRight := a.ProcOf[1]
	if pLeft == pRight {
		t.Fatalf("both landmarks on one processor: %v", a.ProcOf)
	}
	for u := graph.NodeID(0); u < 10; u++ {
		if got, want := a.DistToProc(u, pLeft), uint16(u); got != want {
			t.Fatalf("DistToProc(%d, left) = %d, want %d", u, got, want)
		}
		if got, want := a.DistToProc(u, pRight), uint16(9-u); got != want {
			t.Fatalf("DistToProc(%d, right) = %d, want %d", u, got, want)
		}
	}
	// Nearby nodes have similar distance vectors: routing locality.
	if a.DistToProc(3, pLeft) > a.DistToProc(4, pLeft) {
		t.Fatal("distance table not monotone along the path")
	}
	if a.DistToProc(0, 7) != Inf {
		t.Fatal("out-of-range processor should be Inf")
	}
}

func TestAssignMoreProcsThanLandmarks(t *testing.T) {
	g := gen.Ring(10)
	idx := BuildIndex(g, []graph.NodeID{0, 5}, 0)
	a := Assign(idx, 4)
	if len(a.Pivots) != 2 {
		t.Fatalf("pivots = %v, want 2 (only 2 landmarks)", a.Pivots)
	}
	// Unpivoted processors see Inf everywhere.
	sawInf := false
	for p := 0; p < 4; p++ {
		if a.DistToProc(0, p) == Inf {
			sawInf = true
		}
	}
	if !sawInf {
		t.Fatal("expected at least one landmark-less processor with Inf distances")
	}
}

func TestAssignZeroProcs(t *testing.T) {
	g := gen.Ring(4)
	idx := BuildIndex(g, []graph.NodeID{0}, 0)
	a := Assign(idx, 0)
	if a.Procs() != 0 || len(a.Pivots) != 0 {
		t.Fatalf("Assign(0) = %+v", a)
	}
}

func TestSetNodeDistances(t *testing.T) {
	g := gen.Ring(12)
	idx := BuildIndex(g, []graph.NodeID{0, 6}, 0)
	a := Assign(idx, 2)
	u := g.AddNode("")
	g.AddEdgeFast(3, u)
	idx.IncorporateNode(g, u)
	a.SetNodeDistances(idx, u)
	p0 := a.ProcOf[0]
	if got, want := a.DistToProc(u, p0), idx.Dist(0, u); got != want {
		t.Fatalf("DistToProc(new, p0) = %d, want %d", got, want)
	}
	if a.StorageBytes() != int64(13*2)*2 {
		t.Fatalf("StorageBytes = %d", a.StorageBytes())
	}
}

func TestAssignOneProcessor(t *testing.T) {
	g := gen.Ring(8)
	idx := BuildIndex(g, Select(g, 4, 0), 0)
	a := Assign(idx, 1)
	for _, p := range a.ProcOf {
		if p != 0 {
			t.Fatalf("ProcOf = %v, want all zero", a.ProcOf)
		}
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	g := gen.RMAT(gen.RMATOptions{Nodes: 20000, Edges: 100000, Seed: 1})
	ls := Select(g, 16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildIndex(g, ls, 0)
	}
}
