package graph

import (
	"fmt"
	"sort"
)

// Stats summarises the shape of a graph; used for Table 1 and for
// calibrating workload expectations (average h-hop neighbourhood sizes
// drive the caching behaviour measured in Figures 14-16).
type Stats struct {
	Nodes       int
	Edges       int
	MaxOutDeg   int
	MaxInDeg    int
	AvgOutDeg   float64
	DegreeP50   int // median total degree
	DegreeP99   int
	AdjListSize int64 // estimated on-disk adjacency-list size in bytes
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	var s Stats
	s.Nodes = g.NumNodes()
	s.Edges = g.NumEdges()
	degrees := make([]int, 0, s.Nodes)
	for id := NodeID(0); id < g.MaxNodeID(); id++ {
		if !g.Exists(id) {
			continue
		}
		od, ind := g.OutDegree(id), g.InDegree(id)
		if od > s.MaxOutDeg {
			s.MaxOutDeg = od
		}
		if ind > s.MaxInDeg {
			s.MaxInDeg = ind
		}
		degrees = append(degrees, od+ind)
		// Text adjacency list: ~10 bytes per node id, one id per endpoint
		// plus the node's own key — the same format Table 1 sizes.
		s.AdjListSize += int64(10 + 10*(od+ind))
	}
	if s.Nodes > 0 {
		s.AvgOutDeg = float64(s.Edges) / float64(s.Nodes)
		sort.Ints(degrees)
		s.DegreeP50 = degrees[len(degrees)/2]
		s.DegreeP99 = degrees[(len(degrees)*99)/100]
	}
	return s
}

// AvgKHopSize estimates the average number of distinct nodes within h hops
// by sampling nsample BFS sources (deterministically: evenly spaced live
// ids). It reproduces the paper's "average 2-hop neighbourhood size"
// statistic (52K for WebGraph, 0.3M for Friendster).
func AvgKHopSize(g *Graph, h, nsample int, dir Direction) float64 {
	if g.NumNodes() == 0 || nsample <= 0 {
		return 0
	}
	nodes := g.Nodes()
	if nsample > len(nodes) {
		nsample = len(nodes)
	}
	step := len(nodes) / nsample
	if step == 0 {
		step = 1
	}
	var total float64
	count := 0
	for i := 0; i < len(nodes) && count < nsample; i += step {
		total += float64(len(g.KHopNeighborhood(nodes[i], h, dir)))
		count++
	}
	return total / float64(count)
}

// String renders Stats as a single human-readable line.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d avg_out_deg=%.2f max_out=%d max_in=%d p50_deg=%d p99_deg=%d adj_bytes=%d",
		s.Nodes, s.Edges, s.AvgOutDeg, s.MaxOutDeg, s.MaxInDeg, s.DegreeP50, s.DegreeP99, s.AdjListSize)
}
