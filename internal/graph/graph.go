// Package graph implements the labelled, directed graph data model of
// Section 2.1 of the paper.
//
// Every node stores both its outgoing and incoming edges, because both
// directions matter for h-hop queries (the paper's example: an edge
// "founded" from Jerry Yang to Yahoo! implies the reverse relation
// "founded_by", and reachability runs a backward BFS from the target).
// Node and edge labels are interned into a compact label table.
//
// A Graph is safe for concurrent readers; mutations require external
// synchronisation. Mutation methods (AddEdge, RemoveEdge, RemoveNode) keep
// the in/out adjacency views consistent at all times.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are dense, starting at 0, and remain stable
// across removals (removed IDs are tombstoned, not recycled).
type NodeID uint32

// Label identifies an interned node or edge label. Label 0 is the empty
// label.
type Label uint16

// NoLabel is the zero, empty label carried by unlabelled nodes and edges.
const NoLabel Label = 0

// Edge is one adjacency entry: the far endpoint and the edge's label.
type Edge struct {
	To    NodeID
	Label Label
}

// Direction selects which adjacency a traversal follows.
type Direction int

const (
	// Out follows outgoing edges only.
	Out Direction = iota
	// In follows incoming edges only.
	In
	// Both treats the graph as bi-directed, following edges in either
	// direction. The smart routing preprocessing (Section 3.4) always uses
	// Both, matching the paper's "bi-directed version of the input graph".
	Both
)

func (d Direction) String() string {
	switch d {
	case Out:
		return "out"
	case In:
		return "in"
	case Both:
		return "both"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// ErrNoSuchNode is returned when an operation names a node that does not
// exist or has been removed.
var ErrNoSuchNode = errors.New("graph: no such node")

// Graph is a directed multigraph with interned node and edge labels.
type Graph struct {
	out       [][]Edge
	in        [][]Edge
	nodeLabel []Label
	removed   []bool
	numEdges  int
	liveNodes int
	labels    labelTable
}

// New returns an empty graph.
func New() *Graph {
	return NewWithCapacity(0)
}

// NewWithCapacity returns an empty graph with adjacency storage
// pre-allocated for n nodes.
func NewWithCapacity(n int) *Graph {
	g := &Graph{
		out:       make([][]Edge, 0, n),
		in:        make([][]Edge, 0, n),
		nodeLabel: make([]Label, 0, n),
		removed:   make([]bool, 0, n),
	}
	g.labels.intern("") // Label 0 is the empty label.
	return g
}

// NumNodes returns the number of live (non-removed) nodes.
func (g *Graph) NumNodes() int { return g.liveNodes }

// MaxNodeID returns one past the largest NodeID ever allocated. Iteration
// over all nodes should run id in [0, MaxNodeID) and skip !Exists(id).
func (g *Graph) MaxNodeID() NodeID { return NodeID(len(g.out)) }

// NumEdges returns the number of live directed edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Exists reports whether id names a live node.
func (g *Graph) Exists(id NodeID) bool {
	return int(id) < len(g.out) && !g.removed[id]
}

// AddNode creates a node carrying label and returns its id.
func (g *Graph) AddNode(label string) NodeID {
	id := NodeID(len(g.out))
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.nodeLabel = append(g.nodeLabel, g.labels.intern(label))
	g.removed = append(g.removed, false)
	g.liveNodes++
	return id
}

// AddNodes bulk-creates n unlabelled nodes and returns the first new id.
func (g *Graph) AddNodes(n int) NodeID {
	first := NodeID(len(g.out))
	g.out = append(g.out, make([][]Edge, n)...)
	g.in = append(g.in, make([][]Edge, n)...)
	g.nodeLabel = append(g.nodeLabel, make([]Label, n)...)
	g.removed = append(g.removed, make([]bool, n)...)
	g.liveNodes += n
	return first
}

// UpsertNode ensures id names a live node carrying label, growing the id
// space as needed (intermediate fresh ids stay non-existent until upserted
// themselves) and reviving a tombstoned id. It is idempotent — the
// distributed write path applies it once per transport without caring
// whether the node already exists — and reports whether a node was created
// (or revived) as opposed to relabelled in place.
func (g *Graph) UpsertNode(id NodeID, label Label) bool {
	for NodeID(len(g.out)) <= id {
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
		g.nodeLabel = append(g.nodeLabel, NoLabel)
		g.removed = append(g.removed, true)
	}
	created := g.removed[id]
	if created {
		g.removed[id] = false
		g.liveNodes++
	}
	g.nodeLabel[id] = label
	return created
}

// InternLabel interns label and returns its id — the form mutations carry
// (records and queries store interned ids, never strings).
func (g *Graph) InternLabel(label string) Label { return g.labels.intern(label) }

// EnsureEdge inserts the directed edge u->v carrying label unless an
// identical (u, v, label) edge already exists, and reports whether it
// inserted one. This is the idempotent form the distributed write path
// uses: applying the same mutation to the oracle graph and through a
// Client (which may share the same graph on the local transport) cannot
// produce a duplicate parallel edge.
func (g *Graph) EnsureEdge(u, v NodeID, label Label) (bool, error) {
	if !g.Exists(u) || !g.Exists(v) {
		return false, ErrNoSuchNode
	}
	for _, e := range g.out[u] {
		if e.To == v && e.Label == label {
			return false, nil
		}
	}
	g.out[u] = append(g.out[u], Edge{To: v, Label: label})
	g.in[v] = append(g.in[v], Edge{To: u, Label: label})
	g.numEdges++
	return true, nil
}

// AddEdge inserts the directed edge u->v carrying label. Parallel edges are
// permitted (the graph is a multigraph). It returns ErrNoSuchNode if either
// endpoint is missing.
func (g *Graph) AddEdge(u, v NodeID, label string) error {
	if !g.Exists(u) || !g.Exists(v) {
		return ErrNoSuchNode
	}
	l := g.labels.intern(label)
	g.out[u] = append(g.out[u], Edge{To: v, Label: l})
	g.in[v] = append(g.in[v], Edge{To: u, Label: l})
	g.numEdges++
	return nil
}

// AddEdgeFast inserts the unlabelled directed edge u->v without validating
// the endpoints. It is the bulk-load path used by the synthetic generators;
// callers must guarantee both nodes exist.
func (g *Graph) AddEdgeFast(u, v NodeID) {
	g.out[u] = append(g.out[u], Edge{To: v})
	g.in[v] = append(g.in[v], Edge{To: u})
	g.numEdges++
}

// HasEdge reports whether at least one directed edge u->v exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if !g.Exists(u) || !g.Exists(v) {
		return false
	}
	// Scan the smaller endpoint list.
	if len(g.out[u]) <= len(g.in[v]) {
		for _, e := range g.out[u] {
			if e.To == v {
				return true
			}
		}
		return false
	}
	for _, e := range g.in[v] {
		if e.To == u {
			return true
		}
	}
	return false
}

// RemoveEdge deletes one directed edge u->v (any label) and reports whether
// an edge was removed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	if !g.Exists(u) || !g.Exists(v) {
		return false
	}
	if !removeFirst(&g.out[u], v) {
		return false
	}
	if !removeFirst(&g.in[v], u) {
		// The in/out views must agree; a one-sided edge is a corruption bug.
		panic("graph: in/out adjacency inconsistent")
	}
	g.numEdges--
	return true
}

// removeFirst deletes the first entry pointing at target, preserving order
// of the remaining entries, and reports whether one was found.
func removeFirst(adj *[]Edge, target NodeID) bool {
	s := *adj
	for i, e := range s {
		if e.To == target {
			*adj = append(s[:i], s[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveNode deletes a node and every edge incident on it, following the
// paper's update rule ("a node deletion is handled as deletion of the
// multiple edges incident on it"). The id is tombstoned, never reused.
func (g *Graph) RemoveNode(u NodeID) error {
	if !g.Exists(u) {
		return ErrNoSuchNode
	}
	for _, e := range g.out[u] {
		removeFirst(&g.in[e.To], u)
		g.numEdges--
	}
	for _, e := range g.in[u] {
		removeFirst(&g.out[e.To], u)
		g.numEdges--
	}
	g.out[u] = nil
	g.in[u] = nil
	g.removed[u] = true
	g.liveNodes--
	return nil
}

// OutEdges returns the outgoing adjacency of u. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) OutEdges(u NodeID) []Edge {
	if !g.Exists(u) {
		return nil
	}
	return g.out[u]
}

// InEdges returns the incoming adjacency of u (entries point at the edge
// sources). The returned slice is owned by the graph and must not be
// modified.
func (g *Graph) InEdges(u NodeID) []Edge {
	if !g.Exists(u) {
		return nil
	}
	return g.in[u]
}

// OutDegree returns the number of outgoing edges of u.
func (g *Graph) OutDegree(u NodeID) int {
	if !g.Exists(u) {
		return 0
	}
	return len(g.out[u])
}

// InDegree returns the number of incoming edges of u.
func (g *Graph) InDegree(u NodeID) int {
	if !g.Exists(u) {
		return 0
	}
	return len(g.in[u])
}

// Degree returns the total degree (in + out) of u.
func (g *Graph) Degree(u NodeID) int { return g.OutDegree(u) + g.InDegree(u) }

// NodeLabel returns the label string of u ("" when unlabelled or missing).
func (g *Graph) NodeLabel(u NodeID) string {
	if !g.Exists(u) {
		return ""
	}
	return g.labels.str(g.nodeLabel[u])
}

// NodeLabelID returns the interned label id of u.
func (g *Graph) NodeLabelID(u NodeID) Label {
	if !g.Exists(u) {
		return NoLabel
	}
	return g.nodeLabel[u]
}

// SetNodeLabel replaces the label of u.
func (g *Graph) SetNodeLabel(u NodeID, label string) error {
	if !g.Exists(u) {
		return ErrNoSuchNode
	}
	g.nodeLabel[u] = g.labels.intern(label)
	return nil
}

// LabelString resolves an interned label id to its string.
func (g *Graph) LabelString(l Label) string { return g.labels.str(l) }

// LabelID returns the interned id for label and whether it is known.
func (g *Graph) LabelID(label string) (Label, bool) { return g.labels.lookup(label) }

// NumLabels returns the number of distinct interned labels, including the
// empty label.
func (g *Graph) NumLabels() int { return len(g.labels.strs) }

// Nodes returns all live node ids in ascending order. It allocates; hot
// paths should iterate [0, MaxNodeID) with Exists instead.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, 0, g.liveNodes)
	for id := NodeID(0); id < g.MaxNodeID(); id++ {
		if !g.removed[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

// NodesByDegreeDesc returns live node ids sorted by total degree, highest
// first (ties broken by id for determinism). Used by landmark selection.
func (g *Graph) NodesByDegreeDesc() []NodeID {
	ids := g.Nodes()
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.Degree(ids[i]), g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// SortEdges orders es in place by (To, Label) — the canonical adjacency
// order used by the storage codec. Code that must agree with storage-backed
// execution (e.g. random-walk neighbour indexing) sorts through this
// helper so both sides see identical orderings.
func SortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].To != es[j].To {
			return es[i].To < es[j].To
		}
		return es[i].Label < es[j].Label
	})
}

// SortedEdges returns a sorted copy of es, leaving the input untouched.
func SortedEdges(es []Edge) []Edge {
	out := make([]Edge, len(es))
	copy(out, es)
	SortEdges(out)
	return out
}

// labelTable interns label strings to dense Label ids.
type labelTable struct {
	strs []string
	ids  map[string]Label
}

func (t *labelTable) intern(s string) Label {
	if t.ids == nil {
		t.ids = make(map[string]Label)
	}
	if id, ok := t.ids[s]; ok {
		return id
	}
	if len(t.strs) > int(^Label(0)) {
		panic("graph: label table overflow (more than 65536 distinct labels)")
	}
	id := Label(len(t.strs))
	t.strs = append(t.strs, s)
	t.ids[s] = id
	return id
}

func (t *labelTable) lookup(s string) (Label, bool) {
	id, ok := t.ids[s]
	return id, ok
}

func (t *labelTable) str(l Label) string {
	if int(l) >= len(t.strs) {
		return ""
	}
	return t.strs[l]
}
