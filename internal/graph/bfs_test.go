package graph

import (
	"testing"

	"repro/internal/xrand"
)

// buildPath returns the directed path 0 -> 1 -> 2 -> ... -> n-1.
func buildPath(n int) *Graph {
	g := New()
	g.AddNodes(n)
	for i := 0; i < n-1; i++ {
		g.AddEdgeFast(NodeID(i), NodeID(i+1))
	}
	return g
}

func TestBFSPathDistances(t *testing.T) {
	g := buildPath(6)
	dist := g.BFS(0, Out)
	for i := 0; i < 6; i++ {
		if dist[i] != int32(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
	// Backwards the path is unreachable in Out direction.
	dist = g.BFS(5, Out)
	for i := 0; i < 5; i++ {
		if dist[i] != Unreachable {
			t.Fatalf("dist[%d] = %d, want Unreachable", i, dist[i])
		}
	}
	// In direction reverses the reachability.
	dist = g.BFS(5, In)
	for i := 0; i < 6; i++ {
		if dist[i] != int32(5-i) {
			t.Fatalf("In dist[%d] = %d, want %d", i, dist[i], 5-i)
		}
	}
	// Both makes the path symmetric.
	dist = g.BFS(3, Both)
	want := []int32{3, 2, 1, 0, 1, 2}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("Both dist[%d] = %d, want %d", i, dist[i], w)
		}
	}
}

func TestBFSFromMissingNode(t *testing.T) {
	g := buildPath(3)
	dist := g.BFS(99, Out)
	for i, d := range dist {
		if d != Unreachable {
			t.Fatalf("dist[%d] = %d from missing source", i, d)
		}
	}
}

func TestBFSSkipsRemovedNodes(t *testing.T) {
	g := buildPath(5)
	if err := g.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(0, Out)
	if dist[1] != 1 {
		t.Fatalf("dist[1] = %d, want 1", dist[1])
	}
	for _, i := range []int{2, 3, 4} {
		if dist[i] != Unreachable {
			t.Fatalf("dist[%d] = %d, want Unreachable after cut", i, dist[i])
		}
	}
}

func TestBFSBoundedMatchesBFS(t *testing.T) {
	rng := xrand.New(11)
	g := New()
	g.AddNodes(200)
	for i := 0; i < 800; i++ {
		g.AddEdgeFast(NodeID(rng.Intn(200)), NodeID(rng.Intn(200)))
	}
	full := g.BFS(0, Both)
	for _, h := range []int{0, 1, 2, 3} {
		bounded := g.BFSBounded(0, h, Both)
		for v, d := range bounded {
			if full[v] != d {
				t.Fatalf("h=%d: bounded dist[%d]=%d, full=%d", h, v, d, full[v])
			}
			if d > int32(h) {
				t.Fatalf("h=%d: bounded returned node at distance %d", h, d)
			}
		}
		// Every full-BFS node within h must appear.
		for v, d := range full {
			if d != Unreachable && d <= int32(h) {
				if _, ok := bounded[NodeID(v)]; !ok {
					t.Fatalf("h=%d: node %d at distance %d missing from bounded result", h, v, d)
				}
			}
		}
	}
}

func TestKHopNeighborhoodExcludesSource(t *testing.T) {
	g := buildPath(4)
	nb := g.KHopNeighborhood(0, 2, Out)
	if len(nb) != 2 {
		t.Fatalf("2-hop neighbourhood of path head = %v, want 2 nodes", nb)
	}
	for _, v := range nb {
		if v == 0 {
			t.Fatal("neighbourhood contains the source")
		}
	}
}

func TestKHopNeighborhoodDiamondOverlap(t *testing.T) {
	// Topology-aware locality (Figure 4): neighbourhoods of adjacent nodes
	// overlap. 0->1,0->2,1->3,2->3 - N1(0) = {1,2}, N1(1) under Both = {0,3}.
	g := New()
	g.AddNodes(4)
	for _, e := range [][2]NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		g.AddEdgeFast(e[0], e[1])
	}
	n0 := g.KHopNeighborhood(0, 2, Both)
	n1 := g.KHopNeighborhood(1, 2, Both)
	if len(n0) != 3 || len(n1) != 3 {
		t.Fatalf("2-hop sizes = %d, %d, want 3, 3", len(n0), len(n1))
	}
}

func TestHopDistance(t *testing.T) {
	g := buildPath(6)
	cases := []struct {
		src, dst NodeID
		maxHops  int
		dir      Direction
		want     int32
	}{
		{0, 5, -1, Out, 5},
		{0, 5, 5, Out, 5},
		{0, 5, 4, Out, Unreachable}, // bounded too tight
		{5, 0, -1, Out, Unreachable},
		{5, 0, -1, Both, 5},
		{2, 2, -1, Out, 0},
		{2, 2, 0, Out, 0},
		{0, 1, 0, Out, Unreachable},
	}
	for _, c := range cases {
		if got := g.HopDistance(c.src, c.dst, c.maxHops, c.dir); got != c.want {
			t.Errorf("HopDistance(%d,%d,max=%d,%v) = %d, want %d", c.src, c.dst, c.maxHops, c.dir, got, c.want)
		}
	}
}

func TestHopDistanceMissingNodes(t *testing.T) {
	g := buildPath(3)
	if got := g.HopDistance(0, 99, -1, Out); got != Unreachable {
		t.Fatalf("distance to missing node = %d", got)
	}
}

func TestEccentricity(t *testing.T) {
	g := buildPath(5)
	if ecc := g.Eccentricity(0, Out); ecc != 4 {
		t.Fatalf("Eccentricity(0, Out) = %d, want 4", ecc)
	}
	if ecc := g.Eccentricity(2, Both); ecc != 2 {
		t.Fatalf("Eccentricity(2, Both) = %d, want 2", ecc)
	}
}

// TestBFSTriangleInequality validates the landmark bound (Eq 2) on a random
// graph: for all u,v and landmark l, |d(u,l)-d(l,v)| <= d(u,v) <= d(u,l)+d(l,v)
// in the bi-directed view (where distance is a metric).
func TestBFSTriangleInequality(t *testing.T) {
	rng := xrand.New(5)
	g := New()
	g.AddNodes(80)
	for i := 0; i < 300; i++ {
		g.AddEdgeFast(NodeID(rng.Intn(80)), NodeID(rng.Intn(80)))
	}
	l := NodeID(0)
	dl := g.BFS(l, Both)
	for trial := 0; trial < 100; trial++ {
		u := NodeID(rng.Intn(80))
		v := NodeID(rng.Intn(80))
		duv := g.HopDistance(u, v, -1, Both)
		if duv == Unreachable || dl[u] == Unreachable || dl[v] == Unreachable {
			continue
		}
		lo := dl[u] - dl[v]
		if lo < 0 {
			lo = -lo
		}
		hi := dl[u] + dl[v]
		if duv < lo || duv > hi {
			t.Fatalf("landmark bound violated: d(%d,%d)=%d not in [%d,%d]", u, v, duv, lo, hi)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := buildPath(4) // 4 nodes, 3 edges
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxOutDeg != 1 || s.MaxInDeg != 1 {
		t.Fatalf("degree stats = %+v", s)
	}
	if s.AvgOutDeg != 0.75 {
		t.Fatalf("AvgOutDeg = %v, want 0.75", s.AvgOutDeg)
	}
	if s.AdjListSize == 0 {
		t.Fatal("AdjListSize = 0")
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(New())
	if s.Nodes != 0 || s.Edges != 0 || s.AvgOutDeg != 0 {
		t.Fatalf("stats of empty graph = %+v", s)
	}
}

func TestAvgKHopSize(t *testing.T) {
	g := buildPath(10)
	// Every interior node on a path sees exactly 2 nodes within 1 hop (Both).
	avg := AvgKHopSize(g, 1, 10, Both)
	if avg < 1.5 || avg > 2.0 {
		t.Fatalf("AvgKHopSize = %v, want in [1.5, 2.0]", avg)
	}
	if AvgKHopSize(New(), 2, 5, Both) != 0 {
		t.Fatal("AvgKHopSize of empty graph != 0")
	}
}

func BenchmarkBFS10k(b *testing.B) {
	rng := xrand.New(1)
	g := New()
	g.AddNodes(10000)
	for i := 0; i < 50000; i++ {
		g.AddEdgeFast(NodeID(rng.Intn(10000)), NodeID(rng.Intn(10000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(NodeID(i%10000), Both)
	}
}
