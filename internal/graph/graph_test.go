package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// buildDiamond returns the 4-node diamond 0->1, 0->2, 1->3, 2->3.
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode("")
	}
	for _, e := range [][2]NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1], ""); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Exists(0) {
		t.Fatal("node 0 exists in empty graph")
	}
	if g.OutEdges(0) != nil || g.InEdges(0) != nil {
		t.Fatal("adjacency of missing node is non-nil")
	}
}

func TestAddNodeAssignsSequentialIDs(t *testing.T) {
	g := New()
	for want := NodeID(0); want < 10; want++ {
		if got := g.AddNode(""); got != want {
			t.Fatalf("AddNode returned %d, want %d", got, want)
		}
	}
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
}

func TestAddNodesBulk(t *testing.T) {
	g := New()
	g.AddNode("first")
	first := g.AddNodes(5)
	if first != 1 {
		t.Fatalf("AddNodes first id = %d, want 1", first)
	}
	if g.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", g.NumNodes())
	}
	for id := NodeID(0); id < 6; id++ {
		if !g.Exists(id) {
			t.Fatalf("node %d missing after bulk add", id)
		}
	}
}

func TestAddEdgeUpdatesBothDirections(t *testing.T) {
	g := buildDiamond(t)
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if got := g.OutDegree(0); got != 2 {
		t.Fatalf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(3); got != 2 {
		t.Fatalf("InDegree(3) = %d, want 2", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge direction wrong")
	}
}

func TestAddEdgeMissingEndpoint(t *testing.T) {
	g := New()
	g.AddNode("")
	if err := g.AddEdge(0, 99, ""); err != ErrNoSuchNode {
		t.Fatalf("AddEdge to missing node: err = %v, want ErrNoSuchNode", err)
	}
	if err := g.AddEdge(99, 0, ""); err != ErrNoSuchNode {
		t.Fatalf("AddEdge from missing node: err = %v, want ErrNoSuchNode", err)
	}
}

func TestParallelEdgesAllowed(t *testing.T) {
	g := New()
	g.AddNodes(2)
	g.AddEdgeFast(0, 1)
	g.AddEdgeFast(0, 1)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (multigraph)", g.NumEdges())
	}
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge failed on parallel edge")
	}
	if g.NumEdges() != 1 || !g.HasEdge(0, 1) {
		t.Fatal("removing one parallel edge should leave the other")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := buildDiamond(t)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge(0,1) = false")
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge 0->1 still present after removal")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("second RemoveEdge(0,1) = true")
	}
	if g.InDegree(1) != 0 {
		t.Fatalf("InDegree(1) = %d, want 0", g.InDegree(1))
	}
}

func TestRemoveNode(t *testing.T) {
	g := buildDiamond(t)
	if err := g.RemoveNode(1); err != nil {
		t.Fatalf("RemoveNode(1): %v", err)
	}
	if g.Exists(1) {
		t.Fatal("node 1 still exists")
	}
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	// Edges 0->1 and 1->3 must be gone; 0->2 and 2->3 remain.
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 3) {
		t.Fatal("edges incident on removed node survive")
	}
	// The tombstoned id is not reused.
	if id := g.AddNode(""); id != 4 {
		t.Fatalf("AddNode after removal returned %d, want 4", id)
	}
	if err := g.RemoveNode(1); err != ErrNoSuchNode {
		t.Fatalf("double RemoveNode err = %v, want ErrNoSuchNode", err)
	}
}

func TestRemoveNodeWithSelfLoop(t *testing.T) {
	g := New()
	g.AddNodes(2)
	g.AddEdgeFast(0, 0)
	g.AddEdgeFast(0, 1)
	if err := g.RemoveNode(0); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0 after removing self-loop node", g.NumEdges())
	}
}

func TestNodeLabels(t *testing.T) {
	g := New()
	a := g.AddNode("person")
	b := g.AddNode("company")
	c := g.AddNode("person")
	if g.NodeLabel(a) != "person" || g.NodeLabel(b) != "company" {
		t.Fatal("node labels wrong")
	}
	if g.NodeLabelID(a) != g.NodeLabelID(c) {
		t.Fatal("equal labels interned to different ids")
	}
	if g.NodeLabelID(a) == g.NodeLabelID(b) {
		t.Fatal("distinct labels interned to same id")
	}
	if err := g.SetNodeLabel(a, "founder"); err != nil {
		t.Fatal(err)
	}
	if g.NodeLabel(a) != "founder" {
		t.Fatal("SetNodeLabel did not apply")
	}
	if g.NumLabels() != 4 { // "", person, company, founder
		t.Fatalf("NumLabels = %d, want 4", g.NumLabels())
	}
}

func TestEdgeLabels(t *testing.T) {
	g := New()
	jerry := g.AddNode("Jerry Yang")
	yahoo := g.AddNode("Yahoo!")
	if err := g.AddEdge(jerry, yahoo, "founded"); err != nil {
		t.Fatal(err)
	}
	out := g.OutEdges(jerry)
	if len(out) != 1 {
		t.Fatalf("OutEdges(jerry) = %v", out)
	}
	if g.LabelString(out[0].Label) != "founded" {
		t.Fatalf("edge label = %q, want founded", g.LabelString(out[0].Label))
	}
	// The reverse entry carries the same label (Figure 3: F-bar).
	in := g.InEdges(yahoo)
	if len(in) != 1 || in[0].To != jerry || in[0].Label != out[0].Label {
		t.Fatalf("InEdges(yahoo) = %v, want [{%d founded}]", in, jerry)
	}
	if id, ok := g.LabelID("founded"); !ok || g.LabelString(id) != "founded" {
		t.Fatal("LabelID round trip failed")
	}
	if _, ok := g.LabelID("unknown"); ok {
		t.Fatal("LabelID found an unknown label")
	}
}

func TestNodesByDegreeDesc(t *testing.T) {
	g := New()
	g.AddNodes(4)
	// Node 2 gets degree 3, node 0 degree 2, node 1 degree 2, node 3 degree 1.
	g.AddEdgeFast(2, 0)
	g.AddEdgeFast(2, 1)
	g.AddEdgeFast(0, 2) // bumps 2 to degree 3, 0 to 2
	g.AddEdgeFast(3, 1) // 1 to degree 2, 3 to 1
	order := g.NodesByDegreeDesc()
	if order[0] != 2 {
		t.Fatalf("highest-degree node = %d, want 2 (order %v)", order[0], order)
	}
	if order[len(order)-1] != 3 {
		t.Fatalf("lowest-degree node = %d, want 3 (order %v)", order[len(order)-1], order)
	}
	// Ties (0 and 1, both degree 2) break by id.
	if order[1] != 0 || order[2] != 1 {
		t.Fatalf("tie-break order = %v, want [2 0 1 3]", order)
	}
}

// invariantInOutConsistent checks u in out(v) <=> v in in(u), edge counts
// matching, per DESIGN.md invariant.
func invariantInOutConsistent(t *testing.T, g *Graph) {
	t.Helper()
	fwd := map[[2]NodeID]int{}
	bwd := map[[2]NodeID]int{}
	total := 0
	for u := NodeID(0); u < g.MaxNodeID(); u++ {
		if !g.Exists(u) {
			continue
		}
		for _, e := range g.OutEdges(u) {
			fwd[[2]NodeID{u, e.To}]++
			total++
		}
		for _, e := range g.InEdges(u) {
			bwd[[2]NodeID{e.To, u}]++
		}
	}
	if total != g.NumEdges() {
		t.Fatalf("edge count %d != NumEdges %d", total, g.NumEdges())
	}
	if len(fwd) != len(bwd) {
		t.Fatalf("forward/backward edge sets differ in size: %d vs %d", len(fwd), len(bwd))
	}
	for k, n := range fwd {
		if bwd[k] != n {
			t.Fatalf("edge %v: out multiplicity %d, in multiplicity %d", k, n, bwd[k])
		}
	}
}

// TestRandomMutationInvariant drives a random add/remove workload and
// checks the in/out bijection after every step batch.
func TestRandomMutationInvariant(t *testing.T) {
	rng := xrand.New(99)
	g := New()
	g.AddNodes(30)
	for step := 0; step < 500; step++ {
		op := rng.Intn(10)
		switch {
		case op < 6: // add edge
			u := NodeID(rng.Intn(int(g.MaxNodeID())))
			v := NodeID(rng.Intn(int(g.MaxNodeID())))
			if g.Exists(u) && g.Exists(v) {
				g.AddEdgeFast(u, v)
			}
		case op < 8: // remove edge
			u := NodeID(rng.Intn(int(g.MaxNodeID())))
			v := NodeID(rng.Intn(int(g.MaxNodeID())))
			g.RemoveEdge(u, v)
		case op == 8: // remove node
			u := NodeID(rng.Intn(int(g.MaxNodeID())))
			if g.Exists(u) && g.NumNodes() > 5 {
				if err := g.RemoveNode(u); err != nil {
					t.Fatal(err)
				}
			}
		default: // add node
			g.AddNode("")
		}
		if step%50 == 0 {
			invariantInOutConsistent(t, g)
		}
	}
	invariantInOutConsistent(t, g)
}

// Property: after inserting an arbitrary edge list over k nodes, NumEdges
// equals the number of insertions and every edge is observable both ways.
func TestQuickEdgeInsertion(t *testing.T) {
	f := func(pairs []uint16) bool {
		g := New()
		g.AddNodes(64)
		for _, p := range pairs {
			u := NodeID(p % 64)
			v := NodeID((p >> 8) % 64)
			g.AddEdgeFast(u, v)
		}
		if g.NumEdges() != len(pairs) {
			return false
		}
		for _, p := range pairs {
			u := NodeID(p % 64)
			v := NodeID((p >> 8) % 64)
			if !g.HasEdge(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionString(t *testing.T) {
	cases := map[Direction]string{Out: "out", In: "in", Both: "both", Direction(9): "Direction(9)"}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("Direction(%d).String() = %q, want %q", int(d), d.String(), want)
		}
	}
}
