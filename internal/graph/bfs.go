package graph

// Unreachable is the distance value reported for nodes not reachable from
// the BFS source.
const Unreachable int32 = -1

// BFS computes hop distances from src to every node, following dir edges.
// The result is indexed by NodeID over [0, MaxNodeID()) with Unreachable
// for nodes the search cannot reach (including tombstoned ids).
//
// Landmark preprocessing runs this with Both, matching the paper's
// bi-directed view of the graph.
func (g *Graph) BFS(src NodeID, dir Direction) []int32 {
	dist := make([]int32, g.MaxNodeID())
	for i := range dist {
		dist[i] = Unreachable
	}
	if !g.Exists(src) {
		return dist
	}
	dist[src] = 0
	queue := make([]NodeID, 0, 256)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		g.visitNeighbors(u, dir, func(v NodeID) {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		})
	}
	return dist
}

// BFSBounded is BFS truncated at maxHops. It returns a map from reached
// node to distance (including src at distance 0), touching only the
// explored region, so it is cheap on large graphs for small maxHops.
func (g *Graph) BFSBounded(src NodeID, maxHops int, dir Direction) map[NodeID]int32 {
	dist := make(map[NodeID]int32)
	if !g.Exists(src) || maxHops < 0 {
		return dist
	}
	dist[src] = 0
	frontier := []NodeID{src}
	for h := int32(1); h <= int32(maxHops) && len(frontier) > 0; h++ {
		var next []NodeID
		for _, u := range frontier {
			g.visitNeighbors(u, dir, func(v NodeID) {
				if _, seen := dist[v]; !seen {
					dist[v] = h
					next = append(next, v)
				}
			})
		}
		frontier = next
	}
	return dist
}

// KHopNeighborhood returns the set of distinct nodes within h hops of src
// (excluding src itself), following dir edges. This is the reference
// implementation of the h-hop neighbour set that the storage-backed query
// processors must agree with.
func (g *Graph) KHopNeighborhood(src NodeID, h int, dir Direction) []NodeID {
	reached := g.BFSBounded(src, h, dir)
	out := make([]NodeID, 0, len(reached))
	for v := range reached {
		if v != src {
			out = append(out, v)
		}
	}
	return out
}

// HopDistance returns the hop distance from src to dst following dir edges,
// or Unreachable. The search is truncated at maxHops (pass a negative value
// for unbounded). It uses bidirectional search when dir is Both.
func (g *Graph) HopDistance(src, dst NodeID, maxHops int, dir Direction) int32 {
	if !g.Exists(src) || !g.Exists(dst) {
		return Unreachable
	}
	if src == dst {
		return 0
	}
	if maxHops == 0 {
		return Unreachable
	}
	bound := maxHops
	if bound < 0 {
		bound = int(g.MaxNodeID())
	}
	// Plain frontier expansion; for the graph sizes used in preprocessing
	// and tests this is sufficient, and it is trivially correct.
	dist := map[NodeID]int32{src: 0}
	frontier := []NodeID{src}
	for h := int32(1); h <= int32(bound) && len(frontier) > 0; h++ {
		var next []NodeID
		found := false
		for _, u := range frontier {
			g.visitNeighbors(u, dir, func(v NodeID) {
				if v == dst {
					found = true
				}
				if _, seen := dist[v]; !seen {
					dist[v] = h
					next = append(next, v)
				}
			})
			if found {
				return h
			}
		}
		frontier = next
	}
	return Unreachable
}

// VisitNeighbors calls fn for every neighbour of u in direction dir.
// Duplicate neighbours (parallel edges) are visited once per edge; BFS
// callers deduplicate via their visited set.
func (g *Graph) VisitNeighbors(u NodeID, dir Direction, fn func(NodeID)) {
	g.visitNeighbors(u, dir, fn)
}

func (g *Graph) visitNeighbors(u NodeID, dir Direction, fn func(NodeID)) {
	if dir == Out || dir == Both {
		for _, e := range g.out[u] {
			fn(e.To)
		}
	}
	if dir == In || dir == Both {
		for _, e := range g.in[u] {
			fn(e.To)
		}
	}
}

// Eccentricity returns the largest finite hop distance from src following
// dir edges (0 if src reaches nothing).
func (g *Graph) Eccentricity(src NodeID, dir Direction) int32 {
	dist := g.BFS(src, dir)
	var ecc int32
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
