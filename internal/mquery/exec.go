package mquery

import (
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/query"
)

// Run executes one subtask against the storage tier. It returns the
// partial result and the compute units consumed (nodes expanded plus edges
// scanned — the quantity the virtual-time engine bills at ComputePerNode).
// Run is deterministic: frontiers are sorted before every expansion, so
// both transports produce identical partials for identical stores.
func Run(st Subtask, fetch Fetch) (Partial, int, error) {
	switch st.Kind {
	case KindPattern:
		return runPattern(st, fetch)
	case KindReach:
		return runReach(st, fetch)
	case KindKNN:
		return runKNN(st, fetch)
	}
	return Partial{}, 0, fmt.Errorf("%w: unknown subtask kind %d", query.ErrBadQuery, st.Kind)
}

// runPattern materialises the radius-bounded undirected ball around the
// anchor, then extracts each owned pattern edge's relation from it. Every
// node a match could bind near this anchor lies within the ball (the
// pattern path from the anchor's variable maps to a graph path of the same
// length), so the extracted relations are complete for the join.
func runPattern(st Subtask, fetch Fetch) (Partial, int, error) {
	recs := make(map[graph.NodeID]gstore.Record)
	ball := make([]graph.NodeID, 0, 16) // fetch order: sorted per level
	frontier := []graph.NodeID{st.Anchor}
	seen := map[graph.NodeID]bool{st.Anchor: true}
	units := 0
	for depth := 0; depth <= st.Radius && len(frontier) > 0; depth++ {
		got, err := fetch(frontier)
		if err != nil {
			return Partial{}, units, err
		}
		units += len(frontier)
		var next []graph.NodeID
		for _, u := range frontier {
			rec, ok := got[u]
			if !ok {
				continue // dangling id: no record, no edges, no matches
			}
			recs[u] = rec
			ball = append(ball, u)
			if depth == st.Radius {
				continue
			}
			for _, e := range rec.Out {
				units++
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, e := range rec.In {
				units++
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		slices.Sort(next)
		frontier = next
	}

	rels := make([]EdgeRel, 0, len(st.Edges))
	for _, et := range st.Edges {
		var pairs []Pair
		for _, u := range ball {
			if et.FromAnchor != 0 && u != et.FromAnchor {
				continue
			}
			rec := recs[u]
			if et.FromLabel >= 0 && int32(rec.NodeLabel) != et.FromLabel {
				continue
			}
			for _, e := range rec.Out {
				units++
				if et.EdgeLabel >= 0 && int32(e.Label) != et.EdgeLabel {
					continue
				}
				v := e.To
				if et.ToAnchor != 0 && v != et.ToAnchor {
					continue
				}
				vr, ok := recs[v]
				if !ok {
					continue // endpoint outside the ball cannot be in a match near this anchor
				}
				if et.ToLabel >= 0 && int32(vr.NodeLabel) != et.ToLabel {
					continue
				}
				pairs = append(pairs, Pair{From: u, To: v})
			}
		}
		// Dedup: two parallel edges with different labels satisfy an
		// unlabelled EdgeTask as the same binding (the constraint is
		// existence), and must count once in the join.
		slices.SortFunc(pairs, func(a, b Pair) int {
			if a.From != b.From {
				return int(a.From) - int(b.From)
			}
			return int(a.To) - int(b.To)
		})
		pairs = slices.Compact(pairs)
		rels = append(rels, EdgeRel{Edge: et.Edge, Pairs: pairs})
	}
	return Partial{Kind: KindPattern, Anchor: st.Anchor, Rels: rels, Visited: len(ball)}, units, nil
}

// runKNN materialises the Radius-bounded undirected ball around the
// anchor — the same levelwise BFS as runPattern — and reports its node
// ids (anchor excluded, sorted) as KNearest candidates. No distances are
// computed here: the coordinator holds the embedding and re-ranks
// exactly, so the partial stays transport-independent.
func runKNN(st Subtask, fetch Fetch) (Partial, int, error) {
	var cands []graph.NodeID
	frontier := []graph.NodeID{st.Anchor}
	seen := map[graph.NodeID]bool{st.Anchor: true}
	units := 0
	visited := 0
	for depth := 0; depth <= st.Radius && len(frontier) > 0; depth++ {
		got, err := fetch(frontier)
		if err != nil {
			return Partial{}, units, err
		}
		units += len(frontier)
		var next []graph.NodeID
		for _, u := range frontier {
			rec, ok := got[u]
			if !ok {
				continue // dangling id: no record, not a candidate
			}
			visited++
			if u != st.Anchor {
				cands = append(cands, u)
			}
			if depth == st.Radius {
				continue
			}
			for _, e := range rec.Out {
				units++
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, e := range rec.In {
				units++
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		slices.Sort(next)
		frontier = next
	}
	slices.Sort(cands)
	return Partial{Kind: KindKNN, Anchor: st.Anchor, Candidates: cands, Visited: visited}, units, nil
}

// runReach runs one budgeted BFS fragment: levelwise out-edge BFS from the
// anchor toward the target, expanding at most Budget nodes. Nodes the
// budget leaves unexpanded — and any live frontier when it runs out — are
// reported as Boundary entries with their remaining hop allowance, for the
// Merger to relaunch. The budget therefore shapes execution, never the
// answer.
func runReach(st Subtask, fetch Fetch) (Partial, int, error) {
	if st.Anchor == st.Target {
		return Partial{Kind: KindReach, Anchor: st.Anchor, Found: true}, 0, nil
	}
	budget := st.Budget
	if budget < 1 {
		budget = 1 // degenerate subtask still makes progress
	}
	units := 0
	visited := 0
	var boundary []Boundary
	seen := map[graph.NodeID]bool{st.Anchor: true}
	cur := []graph.NodeID{st.Anchor}
	for r := st.Hops; r > 0 && len(cur) > 0; {
		expand := cur
		if len(expand) > budget {
			// Over-budget remainder: discovered, never expanded. Relaunch
			// with the full remaining allowance r.
			for _, n := range expand[budget:] {
				boundary = append(boundary, Boundary{Node: n, Hops: r})
			}
			expand = expand[:budget]
		}
		budget -= len(expand)
		got, err := fetch(expand)
		if err != nil {
			return Partial{}, units, err
		}
		visited += len(expand)
		units += len(expand)
		var next []graph.NodeID
		for _, u := range expand {
			rec, ok := got[u]
			if !ok {
				continue
			}
			for _, e := range rec.Out {
				units++
				if e.To == st.Target {
					return Partial{Kind: KindReach, Anchor: st.Anchor, Found: true, Visited: visited}, units, nil
				}
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		slices.Sort(next)
		cur = next
		r--
		if budget == 0 && r > 0 && len(cur) > 0 {
			// Budget exhausted with the search still live: hand the whole
			// frontier (remaining allowance r) to the next wave.
			for _, n := range cur {
				boundary = append(boundary, Boundary{Node: n, Hops: r})
			}
			cur = nil
		}
	}
	slices.SortFunc(boundary, func(a, b Boundary) int {
		if a.Node != b.Node {
			return int(a.Node) - int(b.Node)
		}
		return b.Hops - a.Hops
	})
	return Partial{Kind: KindReach, Anchor: st.Anchor, Frontier: boundary, Visited: visited}, units, nil
}
