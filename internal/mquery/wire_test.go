package mquery

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

func wireSubtasks() []Subtask {
	return []Subtask{
		{Kind: KindReach, Anchor: 7, Target: 12, Hops: 3, Budget: 64},
		{
			Kind: KindPattern, Anchor: 1, Radius: 2,
			Edges: []EdgeTask{
				{Edge: 0, FromLabel: 3, ToLabel: -1, EdgeLabel: 65535, FromAnchor: 1, ToAnchor: 0},
				{Edge: 15, FromLabel: -1, ToLabel: 0, EdgeLabel: -1, FromAnchor: 0, ToAnchor: 1<<32 - 1},
			},
		},
		{Kind: KindKNN, Anchor: 42, Radius: 2},
	}
}

func wirePartials() []Partial {
	return []Partial{
		{Kind: KindReach, Anchor: 7, Found: true, Visited: 9},
		{
			Kind: KindReach, Anchor: 7, Visited: 64,
			Frontier: []Boundary{{Node: 3, Hops: 2}, {Node: 1<<32 - 1, Hops: 1}},
		},
		{
			Kind: KindPattern, Anchor: 1, Visited: 40,
			Rels: []EdgeRel{
				{Edge: 0, Pairs: []Pair{{From: 1, To: 2}, {From: 1, To: 9}}},
				{Edge: 1},
			},
		},
		{
			Kind: KindKNN, Anchor: 42, Visited: 12,
			Candidates: []graph.NodeID{1, 5, 1<<32 - 1},
		},
	}
}

func TestSubtaskWireRoundTrip(t *testing.T) {
	for _, st := range wireSubtasks() {
		data, err := st.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Subtask
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("decode %+v: %v", st, err)
		}
		if !reflect.DeepEqual(st, back) {
			t.Fatalf("round trip changed the subtask:\n%+v\n%+v", st, back)
		}
	}
}

func TestPartialWireRoundTrip(t *testing.T) {
	for _, p := range wirePartials() {
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Partial
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("decode %+v: %v", p, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("round trip changed the partial:\n%+v\n%+v", p, back)
		}
	}
}

func TestWireDecodeRejects(t *testing.T) {
	for i, st := range wireSubtasks() {
		data, _ := st.MarshalBinary()
		for cut := 0; cut < len(data); cut++ {
			var back Subtask
			if err := back.UnmarshalBinary(data[:cut]); err == nil {
				t.Fatalf("subtask %d: truncation at %d decoded", i, cut)
			}
		}
		var back Subtask
		if err := back.UnmarshalBinary(append(data, 0)); err == nil {
			t.Fatalf("subtask %d: trailing byte decoded", i)
		}
	}
	var back Subtask
	if err := back.UnmarshalBinary([]byte{9}); err == nil {
		t.Fatal("unknown kind decoded")
	}

	for i, p := range wirePartials() {
		pdata, _ := p.MarshalBinary()
		for cut := 0; cut < len(pdata); cut++ {
			var pb Partial
			if err := pb.UnmarshalBinary(pdata[:cut]); err == nil {
				t.Fatalf("partial %d: truncation at %d decoded", i, cut)
			}
		}
		var pb Partial
		if err := pb.UnmarshalBinary(append(pdata, 0)); err == nil {
			t.Fatalf("partial %d: trailing byte decoded", i)
		}
	}
}

// FuzzSubtaskWire checks the decoder never panics and that anything it
// accepts re-encodes to an equivalent subtask.
func FuzzSubtaskWire(f *testing.F) {
	for _, st := range wireSubtasks() {
		data, _ := st.MarshalBinary()
		f.Add(data)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var st Subtask
		if err := st.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := st.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted subtask failed to encode: %v", err)
		}
		var back Subtask
		if err := back.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-encoded subtask failed to decode: %v", err)
		}
		if !reflect.DeepEqual(st, back) {
			t.Fatalf("re-encode changed the subtask:\n%+v\n%+v", st, back)
		}
	})
}

// FuzzPartialWire is the Partial counterpart.
func FuzzPartialWire(f *testing.F) {
	for _, p := range wirePartials() {
		data, _ := p.MarshalBinary()
		f.Add(data)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Partial
		if err := p.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted partial failed to encode: %v", err)
		}
		var back Partial
		if err := back.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-encoded partial failed to decode: %v", err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("re-encode changed the partial:\n%+v\n%+v", p, back)
		}
	})
}
