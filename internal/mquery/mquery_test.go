package mquery

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/query"
)

// fetchFromGraph serves storage records straight off the in-memory graph,
// the way a single all-knowing processor would.
func fetchFromGraph(g *graph.Graph) Fetch {
	return func(ids []graph.NodeID) (map[graph.NodeID]gstore.Record, error) {
		out := make(map[graph.NodeID]gstore.Record, len(ids))
		for _, id := range ids {
			if !g.Exists(id) {
				continue
			}
			out[id] = *gstore.RecordOf(g, id)
		}
		return out, nil
	}
}

// drive runs the full plan → subtask → merge loop the transports implement,
// returning the answer and how many waves partial evaluation needed. It
// asserts the per-partition budget on every KindReach partial — the
// guarantee the subsystem is named for.
func drive(t *testing.T, g *graph.Graph, q query.Query) (query.Result, int) {
	t.Helper()
	pl, err := NewPlan(q, g.LabelID)
	if err != nil {
		t.Fatalf("NewPlan(%+v): %v", q, err)
	}
	m := NewMerger(pl)
	fetch := fetchFromGraph(g)
	wave := pl.Subtasks
	waves := 0
	for len(wave) > 0 && !m.Found() {
		waves++
		for _, st := range wave {
			part, units, err := Run(st, fetch)
			if err != nil {
				t.Fatalf("Run(%+v): %v", st, err)
			}
			if part.Visited > 0 && units < part.Visited {
				t.Fatalf("subtask billed %d units for %d visits", units, part.Visited)
			}
			if st.Kind == KindReach && part.Visited > pl.Budget() {
				t.Fatalf("subtask visited %d nodes, budget %d", part.Visited, pl.Budget())
			}
			if err := m.Absorb(part); err != nil {
				t.Fatalf("Absorb: %v", err)
			}
			if m.Found() {
				break
			}
		}
		wave = m.NextWave()
	}
	return m.Result(), waves
}

func TestOracleEquivalenceMixedWorkload(t *testing.T) {
	g := gen.KnowledgeGraph(600, 2400, 4, 3, 9)
	qs := query.Hotspot(g, query.WorkloadSpec{
		NumHotspots:       40,
		QueriesPerHotspot: 5,
		Types:             []query.Type{query.PatternMatch, query.BoundedReach},
		VisitBudget:       8, // small enough to force relaunch waves
		Seed:              7,
	})
	multiWave := 0
	byType := map[query.Type]int{}
	for _, q := range qs {
		got, waves := drive(t, g, q)
		want := query.Answer(g, q)
		if got != want {
			t.Fatalf("query %d (%v): distributed %+v, oracle %+v", q.ID, q.Type, got, want)
		}
		if waves > 1 {
			multiWave++
		}
		byType[q.Type]++
	}
	if byType[query.PatternMatch] == 0 || byType[query.BoundedReach] == 0 {
		t.Fatalf("workload mix degenerate: %v", byType)
	}
	if multiWave == 0 {
		t.Fatal("budget 8 never forced a second wave — partial evaluation untested")
	}
}

// modCoords is a synthetic coordinate source: coordinates are a pure
// function of the node id, and every 10th node is uncovered (nil row) to
// exercise the ranking path's drop-uncovered rule.
type modCoords struct{}

func (modCoords) Coords(u graph.NodeID) []float32 {
	if u%10 == 0 {
		return nil
	}
	return []float32{float32(u % 7), float32(u % 13), float32(u % 3)}
}

func TestKNNOracleEquivalence(t *testing.T) {
	g := gen.KnowledgeGraph(600, 2400, 4, 3, 9)
	qs := query.Hotspot(g, query.WorkloadSpec{
		NumHotspots:       40,
		QueriesPerHotspot: 5,
		Types:             []query.Type{query.KNearest},
		K:                 5,
		Seed:              7,
	})
	src := modCoords{}
	nonEmpty := 0
	for _, q := range qs {
		if q.Type != query.KNearest {
			continue // degenerate slots fall back to NeighborAgg
		}
		pl, err := NewPlan(q, g.LabelID)
		if err != nil {
			t.Fatalf("NewPlan(%+v): %v", q, err)
		}
		if pl.Kind != KindKNN || len(pl.Subtasks) != 1 {
			t.Fatalf("KNN plan: kind %v, %d subtasks", pl.Kind, len(pl.Subtasks))
		}
		m := NewMerger(pl)
		for _, st := range pl.Subtasks {
			part, units, err := Run(st, fetchFromGraph(g))
			if err != nil {
				t.Fatalf("Run(%+v): %v", st, err)
			}
			if part.Visited > 0 && units < part.Visited {
				t.Fatalf("subtask billed %d units for %d visits", units, part.Visited)
			}
			if err := m.Absorb(part); err != nil {
				t.Fatalf("Absorb: %v", err)
			}
		}
		if len(m.NextWave()) != 0 {
			t.Fatal("KNN plan relaunched a wave")
		}
		for _, c := range m.Candidates() {
			if c == q.Node {
				t.Fatalf("candidate set of node %d contains the anchor", q.Node)
			}
		}
		got := query.KNNResult(src, q, m.Candidates())
		want := query.AnswerKNN(g, src, q)
		if got != want {
			t.Fatalf("query %d on node %d: distributed %+v, oracle %+v", q.ID, q.Node, got, want)
		}
		if got.Count > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every KNN answer empty — the ranking path is untested")
	}
}

func TestLabelledPatternOracle(t *testing.T) {
	// 0 (unused; node 0 never anchors), a:author, p:paper, q:paper,
	// v:venue. a -wrote-> p, a -wrote-> q, p -at-> v, q -at-> v.
	g := graph.New()
	g.AddNode("pad") // 0
	a := g.AddNode("author")
	p := g.AddNode("paper")
	qn := g.AddNode("paper")
	v := g.AddNode("venue")
	for _, e := range []struct {
		u, w graph.NodeID
		l    string
	}{{a, p, "wrote"}, {a, qn, "wrote"}, {p, v, "at"}, {qn, v, "at"}} {
		if err := g.AddEdge(e.u, e.w, e.l); err != nil {
			t.Fatal(err)
		}
	}
	// Anchored at the author: papers x written by a and their venues y.
	pat := &query.Pattern{
		Nodes: []query.PatternNode{{Anchor: a}, {Label: "paper"}, {Label: "venue"}},
		Edges: []query.PatternEdge{
			{From: 0, To: 1, Label: "wrote"},
			{From: 1, To: 2, Label: "at"},
		},
	}
	q := query.Query{Type: query.PatternMatch, Node: a, Pattern: pat, Dir: graph.Out}
	got, _ := drive(t, g, q)
	want := query.Answer(g, q)
	if got != want || got.Matches != 2 {
		t.Fatalf("distributed %+v, oracle %+v, want 2 matches", got, want)
	}

	// A label the dataset never interned: valid empty plan, zero matches.
	pat2 := &query.Pattern{
		Nodes: []query.PatternNode{{Anchor: a}, {Label: "starship"}},
		Edges: []query.PatternEdge{{From: 0, To: 1}},
	}
	q2 := query.Query{Type: query.PatternMatch, Node: a, Pattern: pat2, Dir: graph.Out}
	pl, err := NewPlan(q2, g.LabelID)
	if err != nil {
		t.Fatalf("unknown label should plan cleanly: %v", err)
	}
	if len(pl.Subtasks) != 0 {
		t.Fatalf("unknown label planned %d subtasks", len(pl.Subtasks))
	}
	if r := NewMerger(pl).Result(); r.Matches != 0 {
		t.Fatalf("unknown label matched %d", r.Matches)
	}
	if got, _ := drive(t, g, q2); got != query.Answer(g, q2) {
		t.Fatalf("unknown-label answers diverge")
	}

	// A labelled pattern with no resolver cannot be planned.
	if _, err := NewPlan(q, nil); !errors.Is(err, query.ErrBadQuery) {
		t.Fatalf("labelled pattern with nil resolver: %v", err)
	}
	// An unlabelled pattern needs no resolver.
	q3 := query.Query{
		Type: query.PatternMatch,
		Node: a,
		Dir:  graph.Out,
		Pattern: &query.Pattern{
			Nodes: []query.PatternNode{{Anchor: a}, {}},
			Edges: []query.PatternEdge{{From: 0, To: 1}},
		},
	}
	if _, err := NewPlan(q3, nil); err != nil {
		t.Fatalf("unlabelled pattern with nil resolver: %v", err)
	}
}

func TestPlanPatternOwnership(t *testing.T) {
	// Two anchors at vars 0 and 1, free var 2 between them: each anchor
	// owns its incident edge with radius 1.
	g := graph.New()
	g.AddNode("") // 0
	a1, a2 := g.AddNode(""), g.AddNode("")
	pat := &query.Pattern{
		Nodes: []query.PatternNode{{Anchor: a1}, {Anchor: a2}, {}},
		Edges: []query.PatternEdge{{From: 0, To: 2}, {From: 1, To: 2}},
	}
	q := query.Query{Type: query.PatternMatch, Node: a1, Pattern: pat, Dir: graph.Out}
	pl, err := NewPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Subtasks) != 2 {
		t.Fatalf("planned %d subtasks, want 2", len(pl.Subtasks))
	}
	for i, st := range pl.Subtasks {
		if st.Kind != KindPattern || st.Radius != 1 || len(st.Edges) != 1 {
			t.Fatalf("subtask %d = %+v, want radius-1 single-edge", i, st)
		}
		if st.Edges[0].FromLabel != -1 || st.Edges[0].EdgeLabel != -1 {
			t.Fatalf("unlabelled pattern produced label constraints: %+v", st.Edges[0])
		}
	}
	if pl.Subtasks[0].Anchor != a1 || pl.Subtasks[1].Anchor != a2 {
		t.Fatalf("anchors %d,%d want %d,%d", pl.Subtasks[0].Anchor, pl.Subtasks[1].Anchor, a1, a2)
	}
	if pl.Subtasks[0].Edges[0].Edge != 0 || pl.Subtasks[1].Edges[0].Edge != 1 {
		t.Fatal("edges assigned to the wrong anchors")
	}
}

func TestPlanReachDedupsAnchors(t *testing.T) {
	q := query.Query{
		Type:        query.BoundedReach,
		Node:        1,
		Anchors:     []graph.NodeID{1, 2, 1, 2, 3},
		Target:      9,
		Hops:        2,
		VisitBudget: 4,
		Dir:         graph.Out,
	}
	pl, err := NewPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Subtasks) != 3 {
		t.Fatalf("planned %d subtasks for 3 distinct anchors", len(pl.Subtasks))
	}
	if pl.Budget() != 4 {
		t.Fatalf("Budget() = %d", pl.Budget())
	}
}

func TestNewPlanRejects(t *testing.T) {
	if _, err := NewPlan(query.Query{Type: query.NeighborAgg, Node: 1, Dir: graph.Out}, nil); !errors.Is(err, query.ErrBadQuery) {
		t.Fatalf("single-seed query planned: %v", err)
	}
	if _, err := NewPlan(query.Query{Type: query.PatternMatch, Dir: graph.Out}, nil); !errors.Is(err, query.ErrBadQuery) {
		t.Fatalf("nil pattern planned: %v", err)
	}
}

func TestRunUnknownKind(t *testing.T) {
	if _, _, err := Run(Subtask{Kind: 7}, nil); err == nil {
		t.Fatal("unknown kind ran")
	}
}

func TestReachWavesOnPath(t *testing.T) {
	// Path 1 -> 2 -> ... -> 30 with a pad node 0. Budget 2 forces the BFS
	// to stop every two expansions and relaunch from the frontier.
	g := graph.New()
	g.AddNodes(31)
	for i := 1; i < 30; i++ {
		g.AddEdgeFast(graph.NodeID(i), graph.NodeID(i+1))
	}
	q := query.Query{
		Type:        query.BoundedReach,
		Node:        1,
		Anchors:     []graph.NodeID{1},
		Target:      30,
		Hops:        29,
		VisitBudget: 2,
		Dir:         graph.Out,
	}
	got, waves := drive(t, g, q)
	if !got.Reachable {
		t.Fatal("end of path not reached")
	}
	if waves < 5 {
		t.Fatalf("budget 2 on a 29-hop path took only %d waves", waves)
	}

	// Too few hops: every wave respects the shrinking allowance and the
	// composed answer is still exactly "no".
	q.Hops = 10
	if got, _ := drive(t, g, q); got.Reachable {
		t.Fatal("10 hops reached a 29-hop target")
	}

	// Unreachable target: waves terminate by frontier exhaustion.
	q.Hops = 40
	q.Target = 0x7fff
	q.Anchors = []graph.NodeID{1}
	if got, _ := drive(t, g, q); got.Reachable {
		t.Fatal("reached a node outside the graph")
	}
}

func TestReachAnchorIsTarget(t *testing.T) {
	g := graph.New()
	g.AddNodes(3)
	q := query.Query{
		Type:        query.BoundedReach,
		Node:        2,
		Anchors:     []graph.NodeID{2},
		Target:      2,
		Hops:        0,
		VisitBudget: 1,
		Dir:         graph.Out,
	}
	got, _ := drive(t, g, q)
	if !got.Reachable {
		t.Fatal("anchor == target must be reachable in 0 hops")
	}
	if want := query.Answer(g, q); got != want {
		t.Fatalf("distributed %+v, oracle %+v", got, want)
	}
}

func TestAbsorbRejections(t *testing.T) {
	g := graph.New()
	g.AddNode("")
	a := g.AddNode("")
	reachQ := query.Query{
		Type: query.BoundedReach, Node: a, Anchors: []graph.NodeID{a},
		Target: 9, Hops: 3, VisitBudget: 4, Dir: graph.Out,
	}
	pl, err := NewPlan(reachQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMerger(pl)
	if err := m.Absorb(Partial{Kind: KindPattern}); err == nil {
		t.Fatal("kind mismatch absorbed")
	}
	if err := m.Absorb(Partial{Kind: KindReach, Anchor: a, Visited: 5}); err == nil {
		t.Fatal("budget violation absorbed")
	}
	if err := m.Absorb(Partial{Kind: KindReach, Anchor: a, Frontier: []Boundary{{Node: 3, Hops: 99}}}); err == nil {
		t.Fatal("over-allowance frontier absorbed")
	}
	if err := m.Absorb(Partial{Kind: KindReach, Anchor: a, Visited: 4}); err != nil {
		t.Fatalf("at-budget partial rejected: %v", err)
	}
	if absorbed, maxV := m.Stats(); absorbed != 1 || maxV != 4 {
		t.Fatalf("Stats() = %d, %d", absorbed, maxV)
	}

	patQ := query.Query{
		Type: query.PatternMatch, Node: a, Dir: graph.Out,
		Pattern: &query.Pattern{
			Nodes: []query.PatternNode{{Anchor: a}, {}},
			Edges: []query.PatternEdge{{From: 0, To: 1}},
		},
	}
	pl2, err := NewPlan(patQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMerger(pl2)
	if err := m2.Absorb(Partial{Kind: KindPattern, Rels: []EdgeRel{{Edge: 5}}}); err == nil {
		t.Fatal("out-of-range relation absorbed")
	}
	if m2.NextWave() != nil {
		t.Fatal("pattern plans have no waves")
	}
}

func TestFetchErrorPropagates(t *testing.T) {
	boom := errors.New("storage down")
	fetch := func([]graph.NodeID) (map[graph.NodeID]gstore.Record, error) { return nil, boom }
	if _, _, err := Run(Subtask{Kind: KindReach, Anchor: 1, Target: 2, Hops: 1, Budget: 1}, fetch); !errors.Is(err, boom) {
		t.Fatalf("reach fetch error: %v", err)
	}
	if _, _, err := Run(Subtask{Kind: KindPattern, Anchor: 1, Radius: 1}, fetch); !errors.Is(err, boom) {
		t.Fatalf("pattern fetch error: %v", err)
	}
}
