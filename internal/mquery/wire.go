package mquery

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
	"repro/internal/query"
)

// The wire codecs keep gob envelopes compact: gob honours
// encoding.BinaryMarshaler, so Subtask and Partial travel as varint streams
// instead of per-field type descriptors (the first-message descriptor cost
// the rpc encode-size tests bound). Decoding bounds every count so corrupt
// input fails instead of panicking or over-allocating.

// MarshalBinary encodes the subtask as a compact varint stream.
func (st Subtask) MarshalBinary() ([]byte, error) {
	return st.AppendBinary(nil), nil
}

// AppendBinary appends the subtask's wire form to buf and returns the
// extended slice — the allocation-free entry point the binary rpc framing
// encodes through (MarshalBinary wraps it for gob compatibility).
func (st Subtask) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(st.Kind))
	buf = binary.AppendUvarint(buf, uint64(st.Anchor))
	buf = binary.AppendUvarint(buf, uint64(st.Radius))
	buf = binary.AppendUvarint(buf, uint64(len(st.Edges)))
	for _, et := range st.Edges {
		buf = binary.AppendUvarint(buf, uint64(et.Edge))
		buf = appendLabel(buf, et.FromLabel)
		buf = appendLabel(buf, et.ToLabel)
		buf = appendLabel(buf, et.EdgeLabel)
		buf = binary.AppendUvarint(buf, uint64(et.FromAnchor))
		buf = binary.AppendUvarint(buf, uint64(et.ToAnchor))
	}
	buf = binary.AppendUvarint(buf, uint64(st.Target))
	buf = binary.AppendUvarint(buf, uint64(st.Hops))
	buf = binary.AppendUvarint(buf, uint64(st.Budget))
	return buf
}

// UnmarshalBinary decodes MarshalBinary's form.
func (st *Subtask) UnmarshalBinary(data []byte) error {
	d := wireDec{buf: data}
	kind := Kind(d.u32())
	anchor := graph.NodeID(d.u32())
	radius := int(d.u32())
	nEdges := d.count(query.MaxPatternEdges)
	var edges []EdgeTask
	for i := 0; i < nEdges; i++ {
		edges = append(edges, EdgeTask{
			Edge:       int(d.u32()),
			FromLabel:  d.label(),
			ToLabel:    d.label(),
			EdgeLabel:  d.label(),
			FromAnchor: graph.NodeID(d.u32()),
			ToAnchor:   graph.NodeID(d.u32()),
		})
	}
	target := graph.NodeID(d.u32())
	hops := int(d.u32())
	budget := int(d.u32())
	if err := d.finish("subtask"); err != nil {
		return err
	}
	if kind != KindPattern && kind != KindReach && kind != KindKNN {
		return fmt.Errorf("subtask: unknown kind %d", kind)
	}
	*st = Subtask{Kind: kind, Anchor: anchor, Radius: radius, Edges: edges,
		Target: target, Hops: hops, Budget: budget}
	return nil
}

// MarshalBinary encodes the partial as a compact varint stream.
func (p Partial) MarshalBinary() ([]byte, error) {
	return p.AppendBinary(nil), nil
}

// AppendBinary appends the partial's wire form to buf and returns the
// extended slice; see Subtask.AppendBinary.
func (p Partial) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(p.Kind))
	buf = binary.AppendUvarint(buf, uint64(p.Anchor))
	found := uint64(0)
	if p.Found {
		found = 1
	}
	buf = binary.AppendUvarint(buf, found)
	buf = binary.AppendUvarint(buf, uint64(p.Visited))
	buf = binary.AppendUvarint(buf, uint64(len(p.Rels)))
	for _, er := range p.Rels {
		buf = binary.AppendUvarint(buf, uint64(er.Edge))
		buf = binary.AppendUvarint(buf, uint64(len(er.Pairs)))
		for _, pr := range er.Pairs {
			buf = binary.AppendUvarint(buf, uint64(pr.From))
			buf = binary.AppendUvarint(buf, uint64(pr.To))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Frontier)))
	for _, b := range p.Frontier {
		buf = binary.AppendUvarint(buf, uint64(b.Node))
		buf = binary.AppendUvarint(buf, uint64(b.Hops))
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Candidates)))
	for _, c := range p.Candidates {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf
}

// UnmarshalBinary decodes MarshalBinary's form.
func (p *Partial) UnmarshalBinary(data []byte) error {
	d := wireDec{buf: data}
	kind := Kind(d.u32())
	anchor := graph.NodeID(d.u32())
	found := d.u32()
	visited := int(d.u32())
	nRels := d.count(query.MaxPatternEdges)
	var rels []EdgeRel
	for i := 0; i < nRels; i++ {
		edge := int(d.u32())
		nPairs := d.count(len(d.buf)) // each pair costs >= 2 bytes
		var pairs []Pair
		for j := 0; j < nPairs; j++ {
			from := graph.NodeID(d.u32())
			to := graph.NodeID(d.u32())
			pairs = append(pairs, Pair{From: from, To: to})
		}
		rels = append(rels, EdgeRel{Edge: edge, Pairs: pairs})
	}
	nFront := d.count(len(d.buf))
	var front []Boundary
	for i := 0; i < nFront; i++ {
		node := graph.NodeID(d.u32())
		hops := int(d.u32())
		front = append(front, Boundary{Node: node, Hops: hops})
	}
	nCands := d.count(len(d.buf))
	var cands []graph.NodeID
	for i := 0; i < nCands; i++ {
		cands = append(cands, graph.NodeID(d.u32()))
	}
	if err := d.finish("partial"); err != nil {
		return err
	}
	if kind != KindPattern && kind != KindReach && kind != KindKNN {
		return fmt.Errorf("partial: unknown kind %d", kind)
	}
	if found > 1 {
		return fmt.Errorf("partial: found flag %d", found)
	}
	*p = Partial{Kind: kind, Anchor: anchor, Rels: rels, Found: found == 1,
		Frontier: front, Visited: visited, Candidates: cands}
	return nil
}

// appendLabel encodes a resolved label constraint (-1 = any) as l+1.
func appendLabel(buf []byte, l int32) []byte {
	return binary.AppendUvarint(buf, uint64(l+1))
}

// wireDec is the same tiny bounds-checked varint reader the query package
// uses for Pattern (unexported there): malformed input flips err, every
// later read returns zero, finish reports the failure once.
type wireDec struct {
	buf []byte
	err bool
}

func (d *wireDec) uvarint() uint64 {
	if d.err {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = true
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// u32 reads a value that must fit 32 bits (node ids, small ints).
func (d *wireDec) u32() uint64 {
	v := d.uvarint()
	if v > 1<<32-1 {
		d.err = true
		return 0
	}
	return v
}

// count reads a length capped at max AND at the remaining bytes (each
// element costs at least one byte), so corrupt input cannot force a huge
// allocation.
func (d *wireDec) count(max int) int {
	v := d.uvarint()
	if v > uint64(max) || v > uint64(len(d.buf)) {
		d.err = true
		return 0
	}
	return int(v)
}

// label reads a resolved label constraint encoded as l+1 (0 = any).
func (d *wireDec) label() int32 {
	v := d.uvarint()
	if v > 1<<16 {
		d.err = true
		return -1
	}
	return int32(v) - 1
}

func (d *wireDec) finish(what string) error {
	if d.err {
		return fmt.Errorf("%s: malformed wire encoding", what)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%s: %d trailing bytes", what, len(d.buf))
	}
	return nil
}
