package mquery

import (
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/query"
)

// Merger composes partial results into the exact answer. Feed every
// subtask's Partial to Absorb; for KindReach, drain NextWave and execute
// its relaunched subtasks until it returns none (or Found reports early
// success); then Result yields the oracle-identical answer.
type Merger struct {
	plan *Plan

	// KindPattern: union of the extracted relations, per pattern edge.
	rels []map[Pair]struct{}

	// KindReach: partial-evaluation state. done[n] is the largest hop
	// allowance already launched from n (dominance: a BFS with more hops
	// visits a superset), pend[n] the largest absorbed-but-unlaunched one.
	found bool
	done  map[graph.NodeID]int
	pend  map[graph.NodeID]int

	// KindKNN: union of the candidate balls.
	cands map[graph.NodeID]struct{}

	absorbed   int
	maxVisited int
}

// NewMerger prepares a merger for pl's partials.
func NewMerger(pl *Plan) *Merger {
	m := &Merger{plan: pl}
	switch pl.Kind {
	case KindPattern:
		m.rels = make([]map[Pair]struct{}, len(pl.pat.Edges))
		for i := range m.rels {
			m.rels[i] = make(map[Pair]struct{})
		}
	case KindReach:
		m.done = make(map[graph.NodeID]int, len(pl.Subtasks))
		m.pend = make(map[graph.NodeID]int)
		for _, st := range pl.Subtasks {
			if st.Hops > m.done[st.Anchor] {
				m.done[st.Anchor] = st.Hops
			}
		}
	case KindKNN:
		m.cands = make(map[graph.NodeID]struct{})
	}
	return m
}

// Absorb folds one partial in. It rejects a partial of the wrong kind, a
// relation for a pattern edge the plan does not have, and — the budget
// guarantee — any KindReach partial that expanded more nodes than the
// per-partition budget allows.
func (m *Merger) Absorb(p Partial) error {
	if p.Kind != m.plan.Kind {
		return fmt.Errorf("mquery: absorbed a kind-%d partial into a kind-%d plan", p.Kind, m.plan.Kind)
	}
	// Validate fully before committing anything, so a rejected partial
	// leaves the merger (and its stats) untouched.
	switch m.plan.Kind {
	case KindPattern:
		for _, er := range p.Rels {
			if er.Edge < 0 || er.Edge >= len(m.rels) {
				return fmt.Errorf("mquery: partial carries relation for pattern edge %d of %d", er.Edge, len(m.rels))
			}
		}
	case KindReach:
		if p.Visited > m.plan.budget {
			return fmt.Errorf("mquery: subtask from anchor %d visited %d nodes, exceeding the per-partition budget %d",
				p.Anchor, p.Visited, m.plan.budget)
		}
		if !p.Found {
			for _, b := range p.Frontier {
				if b.Hops <= 0 || b.Hops > m.plan.hops {
					return fmt.Errorf("mquery: frontier entry with hop allowance %d outside 1..%d", b.Hops, m.plan.hops)
				}
			}
		}
	}
	m.absorbed++
	if p.Visited > m.maxVisited {
		m.maxVisited = p.Visited
	}
	switch m.plan.Kind {
	case KindPattern:
		for _, er := range p.Rels {
			for _, pr := range er.Pairs {
				m.rels[er.Edge][pr] = struct{}{}
			}
		}
	case KindReach:
		if p.Found {
			m.found = true
			return nil
		}
		for _, b := range p.Frontier {
			if b.Hops > m.done[b.Node] && b.Hops > m.pend[b.Node] {
				m.pend[b.Node] = b.Hops
			}
		}
	case KindKNN:
		for _, c := range p.Candidates {
			if c == p.Anchor {
				continue // candidates exclude the query node by contract
			}
			m.cands[c] = struct{}{}
		}
	}
	return nil
}

// Candidates returns the union of the absorbed KindKNN candidate balls in
// ascending node order: the input to the coordinator's exact re-rank
// (embedding distance, ties by id, first K). Nil for other kinds.
func (m *Merger) Candidates() []graph.NodeID {
	if m.plan.Kind != KindKNN {
		return nil
	}
	out := make([]graph.NodeID, 0, len(m.cands))
	for c := range m.cands {
		out = append(out, c)
	}
	slices.Sort(out)
	return out
}

// Found reports early success of a KindReach plan: once any partial
// reached the target, remaining subtasks and waves are pointless and the
// transport may cancel them.
func (m *Merger) Found() bool { return m.found }

// NextWave drains the pending relaunch frontier into a new wave of
// subtasks, in ascending node order (deterministic). It returns nil when
// the search is complete — answer found, or no frontier survived the
// dominance check.
func (m *Merger) NextWave() []Subtask {
	if m.plan.Kind != KindReach || m.found || len(m.pend) == 0 {
		return nil
	}
	nodes := make([]graph.NodeID, 0, len(m.pend))
	for n := range m.pend {
		nodes = append(nodes, n)
	}
	slices.Sort(nodes)
	var wave []Subtask
	for _, n := range nodes {
		r := m.pend[n]
		if r <= m.done[n] {
			continue
		}
		m.done[n] = r
		wave = append(wave, Subtask{
			Kind:   KindReach,
			Anchor: n,
			Target: m.plan.target,
			Hops:   r,
			Budget: m.plan.budget,
		})
	}
	m.pend = make(map[graph.NodeID]int)
	return wave
}

// Result assembles the final answer from everything absorbed.
func (m *Merger) Result() query.Result {
	switch m.plan.Kind {
	case KindPattern:
		return query.Result{Type: m.plan.qtype, Matches: m.countPattern()}
	case KindReach:
		return query.Result{Type: m.plan.qtype, Reachable: m.found}
	case KindKNN:
		// The merger has no embedding: the coordinator ranks Candidates
		// itself (query.RankNearest) and fills Nearest/Count.
		return query.Result{Type: m.plan.qtype}
	}
	return query.Result{}
}

// Stats reports how many partials were absorbed and the largest per-subtask
// visit count seen (always within budget for KindReach — Absorb enforces it).
func (m *Merger) Stats() (absorbed, maxVisited int) {
	return m.absorbed, m.maxVisited
}

// countPattern runs the template join over the unioned relations: the same
// backtracking walk as the oracle, with relation lookups standing in for
// graph adjacency. Every pattern edge's relation is complete near its
// owning anchor (runPattern's ball argument), so the join count equals the
// oracle's homomorphism count.
func (m *Merger) countPattern() int {
	p := m.plan.pat
	byU := make([]map[graph.NodeID][]graph.NodeID, len(p.Edges))
	byV := make([]map[graph.NodeID][]graph.NodeID, len(p.Edges))
	for ei := range m.rels {
		byU[ei] = make(map[graph.NodeID][]graph.NodeID)
		byV[ei] = make(map[graph.NodeID][]graph.NodeID)
		for pr := range m.rels[ei] {
			byU[ei][pr.From] = append(byU[ei][pr.From], pr.To)
			byV[ei][pr.To] = append(byV[ei][pr.To], pr.From)
		}
	}

	bind := make([]graph.NodeID, len(p.Nodes))
	isBound := make([]bool, len(p.Nodes))
	for i, n := range p.Nodes {
		if n.Anchor != 0 {
			bind[i] = n.Anchor
			isBound[i] = true
		}
	}

	order := p.JoinOrder()
	var count func(k int) int
	count = func(k int) int {
		if k == len(order) {
			return 1
		}
		ei := order[k]
		e := p.Edges[ei]
		switch {
		case isBound[e.From] && isBound[e.To]:
			if _, ok := m.rels[ei][Pair{From: bind[e.From], To: bind[e.To]}]; ok {
				return count(k + 1)
			}
			return 0
		case isBound[e.From]:
			total := 0
			for _, v := range byU[ei][bind[e.From]] {
				bind[e.To], isBound[e.To] = v, true
				total += count(k + 1)
				isBound[e.To] = false
			}
			return total
		default: // isBound[e.To]; JoinOrder guarantees one endpoint is bound
			total := 0
			for _, u := range byV[ei][bind[e.To]] {
				bind[e.From], isBound[e.From] = u, true
				total += count(k + 1)
				isBound[e.From] = false
			}
			return total
		}
	}
	return count(0)
}
