// Package mquery plans and executes multi-anchor queries: distributed
// graph-pattern matching (query.PatternMatch) and bounded reachability via
// partial evaluation (query.BoundedReach).
//
// A multi-anchor query has several home processors, one per anchor node, so
// it cannot be routed as a single unit. NewPlan decomposes it into
// per-anchor Subtasks; the transport routes each subtask through its
// Strategy (per-anchor by default), executes it on a processor with Run —
// which touches only the storage tier, via the same Fetch interface both
// transports already expose — and feeds the resulting Partials to a Merger,
// which assembles the exact answer:
//
//   - PatternMatch subtasks materialise a bounded candidate ball around
//     their anchor and report the pattern-edge relations (pairs of graph
//     nodes) visible from it; the Merger unions the relations and runs the
//     template join, counting homomorphisms exactly as the oracle does.
//   - BoundedReach subtasks run a budgeted BFS toward the target and report
//     either success or their truncated frontier; the Merger relaunches
//     frontier nodes as new subtasks in later waves (partial evaluation),
//     so no single subtask ever exceeds the per-partition visit budget yet
//     the composed answer is exact.
package mquery

import (
	"repro/internal/graph"
	"repro/internal/gstore"
)

// Kind discriminates the two subtask families.
type Kind uint8

const (
	// KindPattern expands a candidate ball and extracts edge relations.
	KindPattern Kind = 1
	// KindReach runs one budgeted BFS fragment toward the target.
	KindReach Kind = 2
	// KindKNN materialises the hop-bounded candidate ball of a KNearest
	// query. Ranking happens at the coordinator, which holds the
	// embedding; the processors only generate candidates.
	KindKNN Kind = 3
)

// EdgeTask is one pattern edge a subtask must extract relations for. Labels
// are pre-resolved against the dataset's intern table at plan time (the
// networked processors hold no label table); -1 means unconstrained. A
// nonzero FromAnchor/ToAnchor pins that endpoint to a concrete node.
type EdgeTask struct {
	// Edge indexes the pattern's Edges slice.
	Edge int
	// FromLabel and ToLabel constrain the endpoint node labels (-1 = any).
	FromLabel int32
	ToLabel   int32
	// EdgeLabel constrains the graph edge's label (-1 = any).
	EdgeLabel int32
	// FromAnchor and ToAnchor pin endpoints to anchored variables' nodes.
	FromAnchor graph.NodeID
	ToAnchor   graph.NodeID
}

// Subtask is one routed unit of multi-anchor work, executed on a single
// processor against the storage tier.
type Subtask struct {
	Kind   Kind
	Anchor graph.NodeID
	// Radius bounds the candidate ball of a KindPattern subtask.
	Radius int
	// Edges are the pattern edges this subtask owns (KindPattern).
	Edges []EdgeTask
	// Target, Hops and Budget shape a KindReach fragment: a BFS from Anchor
	// toward Target, at most Hops levels, expanding at most Budget nodes.
	Target graph.NodeID
	Hops   int
	Budget int
}

// Pair is one tuple of a pattern-edge relation: a concrete graph edge
// From→To satisfying the EdgeTask's constraints.
type Pair struct {
	From graph.NodeID
	To   graph.NodeID
}

// EdgeRel is the relation a subtask extracted for one pattern edge.
type EdgeRel struct {
	Edge  int
	Pairs []Pair
}

// Boundary is one truncated frontier entry of a KindReach subtask: Node was
// discovered but not expanded, with Hops BFS levels still allowed from it.
// The Merger relaunches it as a fresh subtask in a later wave.
type Boundary struct {
	Node graph.NodeID
	Hops int
}

// Partial is one subtask's result.
type Partial struct {
	Kind   Kind
	Anchor graph.NodeID
	// Rels are the extracted pattern-edge relations (KindPattern).
	Rels []EdgeRel
	// Found reports the target was reached (KindReach).
	Found bool
	// Frontier is the truncated frontier to relaunch (KindReach, when the
	// budget ran out before the search did).
	Frontier []Boundary
	// Candidates are the ball nodes of a KindKNN subtask (sorted, anchor
	// excluded). The coordinator re-ranks them by embedding distance.
	Candidates []graph.NodeID
	// Visited counts the nodes this subtask expanded — the quantity the
	// per-partition budget bounds. The Merger rejects any KindReach partial
	// whose Visited exceeds the plan's budget, so a budget violation is a
	// structural error, not a silent inaccuracy.
	Visited int
}

// Fetch retrieves storage records for a batch of node ids. Ids without a
// record are simply absent from the returned map. Both transports provide
// this: the virtual-time engine from its partitioned stores (billing each
// batch on the contention timeline), the networked processor from its
// storage clients + cache.
type Fetch func(ids []graph.NodeID) (map[graph.NodeID]gstore.Record, error)
