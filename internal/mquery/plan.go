package mquery

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/query"
)

// LabelResolver maps a label string to the dataset's interned id. Labels
// are resolved once at plan time so subtasks carry integer constraints —
// the networked processors hold no label table.
type LabelResolver func(label string) (graph.Label, bool)

// Plan is a decomposed multi-anchor query: the first wave of subtasks plus
// everything the Merger needs to assemble the exact answer.
type Plan struct {
	Kind     Kind
	Subtasks []Subtask

	qtype  query.Type
	pat    *query.Pattern
	target graph.NodeID
	hops   int
	budget int
}

// Budget returns the per-partition visit budget (KindReach plans).
func (pl *Plan) Budget() int { return pl.budget }

// NewPlan decomposes q into per-anchor subtasks. The resolver may be nil
// when the query carries no label constraints; a labelled pattern with a
// nil resolver fails with query.ErrBadQuery (the caller has no label
// table). A label the dataset does not intern yields a valid empty plan:
// zero subtasks, zero matches — exactly the oracle's answer.
func NewPlan(q query.Query, resolve LabelResolver) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	switch q.Type {
	case query.PatternMatch:
		return planPattern(q, resolve)
	case query.BoundedReach:
		return planReach(q), nil
	case query.KNearest:
		return planKNN(q), nil
	}
	return nil, fmt.Errorf("%w: %v is not a multi-anchor query", query.ErrBadQuery, q.Type)
}

func planPattern(q query.Query, resolve LabelResolver) (*Plan, error) {
	p := q.Pattern
	pl := &Plan{Kind: KindPattern, qtype: q.Type, pat: p}

	// Resolve label constraints once. Unknown label → empty plan (0 matches).
	nodeLab := make([]int32, len(p.Nodes))
	for i, n := range p.Nodes {
		nodeLab[i] = -1
		if n.Label == "" {
			continue
		}
		if resolve == nil {
			return nil, fmt.Errorf("%w: labelled pattern needs the dataset's label table", query.ErrBadQuery)
		}
		l, ok := resolve(n.Label)
		if !ok {
			return pl, nil
		}
		nodeLab[i] = int32(l)
	}
	edgeLab := make([]int32, len(p.Edges))
	for i, e := range p.Edges {
		edgeLab[i] = -1
		if e.Label == "" {
			continue
		}
		if resolve == nil {
			return nil, fmt.Errorf("%w: labelled pattern needs the dataset's label table", query.ErrBadQuery)
		}
		l, ok := resolve(e.Label)
		if !ok {
			return pl, nil
		}
		edgeLab[i] = int32(l)
	}

	// Assign every pattern edge to its nearest anchored variable (ties to
	// the lowest variable index): the subtask anchored there can see both
	// endpoints' images within the smallest candidate ball.
	anchors := p.AnchorVars()
	dists := make([][]int, len(anchors))
	for k, av := range anchors {
		dists[k] = p.Distances(av)
	}
	type owned struct {
		radius int
		edges  []EdgeTask
	}
	own := make([]owned, len(anchors))
	for ei, e := range p.Edges {
		best, bestCost := 0, -1
		for k := range anchors {
			cost := dists[k][e.From]
			if c := dists[k][e.To]; c > cost {
				cost = c
			}
			if bestCost < 0 || cost < bestCost {
				best, bestCost = k, cost
			}
		}
		o := &own[best]
		if bestCost > o.radius {
			o.radius = bestCost
		}
		o.edges = append(o.edges, EdgeTask{
			Edge:       ei,
			FromLabel:  nodeLab[e.From],
			ToLabel:    nodeLab[e.To],
			EdgeLabel:  edgeLab[ei],
			FromAnchor: p.Nodes[e.From].Anchor,
			ToAnchor:   p.Nodes[e.To].Anchor,
		})
	}
	for k, o := range own {
		if len(o.edges) == 0 {
			continue
		}
		pl.Subtasks = append(pl.Subtasks, Subtask{
			Kind:   KindPattern,
			Anchor: p.Nodes[anchors[k]].Anchor,
			Radius: o.radius,
			Edges:  o.edges,
		})
	}
	return pl, nil
}

// planKNN emits the single candidate-generation subtask of a KNearest
// query: materialise the Hops-bounded undirected ball around the query
// node. The exact re-rank (embedding distances, tie-break by id, first K)
// happens at the coordinator — see Merger.Candidates — because only the
// coordinator holds the embedding.
func planKNN(q query.Query) *Plan {
	return &Plan{
		Kind:  KindKNN,
		qtype: q.Type,
		hops:  q.Hops,
		Subtasks: []Subtask{{
			Kind:   KindKNN,
			Anchor: q.Node,
			Radius: q.Hops,
		}},
	}
}

func planReach(q query.Query) *Plan {
	pl := &Plan{
		Kind:   KindReach,
		qtype:  q.Type,
		target: q.Target,
		hops:   q.Hops,
		budget: q.VisitBudget,
	}
	seen := make(map[graph.NodeID]bool, len(q.Anchors))
	for _, a := range q.Anchors {
		if seen[a] {
			continue
		}
		seen[a] = true
		pl.Subtasks = append(pl.Subtasks, Subtask{
			Kind:   KindReach,
			Anchor: a,
			Target: q.Target,
			Hops:   q.Hops,
			Budget: q.VisitBudget,
		})
	}
	return pl
}
