package gstore

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kvstore"
)

func newReplicatedTier(t *testing.T, servers, replicas int) (*Tier, *graph.Graph) {
	t.Helper()
	g := gen.ErdosRenyi(300, 1500, 4)
	st, err := kvstore.NewReplicated(servers, replicas)
	if err != nil {
		t.Fatal(err)
	}
	if total := Load(st, g); total <= 0 {
		t.Fatalf("Load returned %d bytes", total)
	}
	return NewTier(st), g
}

// TestFetchBatchIntoSurvivesReplicaFailure pins the tentpole property at
// the tier level: after one of R=2 replicas fails, every record is still
// fetched, byte-accounted and decoded identically.
func TestFetchBatchIntoSurvivesReplicaFailure(t *testing.T) {
	tier, g := newReplicatedTier(t, 3, 2)
	ids := make([]graph.NodeID, 0, 300)
	for id := graph.NodeID(0); id < 300; id++ {
		ids = append(ids, id)
	}
	before := make([]FetchResult, len(ids))
	if err := tier.FetchBatchInto(ids, before, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tier.Store().FailServer(0); err != nil {
		t.Fatal(err)
	}
	after := make([]FetchResult, len(ids))
	if err := tier.FetchBatchInto(ids, after, nil); err != nil {
		t.Fatalf("fetch after replica failure: %v", err)
	}
	for i, id := range ids {
		if !after[i].OK || after[i].Bytes != before[i].Bytes {
			t.Fatalf("node %d: result changed across failure (%+v vs %+v)", id, after[i], before[i])
		}
		if len(after[i].Record.Out) != g.OutDegree(id) {
			t.Fatalf("node %d: %d out-edges after failure, want %d", id, len(after[i].Record.Out), g.OutDegree(id))
		}
	}
}

// TestFetchBatchIntoRetriesStaleBatch drives the bounce-and-replan path
// deliberately: the fetch must succeed even when the planned server fails
// between planning and reading — FetchBatchInto replans internally, and
// the failed attempt is reported to onBatch with bytes == -1.
func TestFetchBatchIntoRetriesStaleBatch(t *testing.T) {
	tier, _ := newReplicatedTier(t, 3, 2)
	st := tier.Store()
	ids := []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	dst := make([]FetchResult, len(ids))

	// Fail a server mid-call by hooking the first onBatch invocation: the
	// remaining batches of the same call (and any retried keys) must still
	// be served. The hook fires before the failure affects the already-read
	// batch, so we fail a *different* server than the one just read.
	failed := false
	err := tier.FetchBatchInto(ids, dst, func(b kvstore.Batch, bytes int64) {
		if !failed {
			failed = true
			victim := (b.Server + 1) % 3
			if _, ferr := st.FailServer(victim); ferr != nil {
				t.Fatalf("fail %d: %v", victim, ferr)
			}
		}
	})
	if err != nil {
		t.Fatalf("fetch across mid-call failure: %v", err)
	}
	for i, id := range ids {
		if !dst[i].OK {
			t.Fatalf("node %d not served across mid-call failure", id)
		}
	}
}

// TestFetchBatchIntoNoLiveReplica pins the R=1 behaviour: keys whose sole
// replica is down fail the fetch with kvstore.ErrNoLiveReplica, while
// keys on surviving servers still come back decoded, and the failed
// batch is reported to onBatch as a burned attempt (bytes == -1).
func TestFetchBatchIntoNoLiveReplica(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 7)
	st, err := kvstore.New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	Load(st, g)
	tier := NewTier(st)
	if _, err := st.FailServer(1); err != nil {
		t.Fatal(err)
	}
	ids := make([]graph.NodeID, 0, 200)
	for id := graph.NodeID(0); id < 200; id++ {
		ids = append(ids, id)
	}
	dst := make([]FetchResult, len(ids))
	sawBurn := false
	err = tier.FetchBatchInto(ids, dst, func(b kvstore.Batch, bytes int64) {
		if bytes < 0 {
			sawBurn = true
			if b.Server != 1 {
				t.Fatalf("burned attempt on server %d, want 1", b.Server)
			}
		}
	})
	if !errors.Is(err, kvstore.ErrNoLiveReplica) {
		t.Fatalf("err = %v, want ErrNoLiveReplica", err)
	}
	if !sawBurn {
		t.Fatal("failed batch not reported to onBatch")
	}
	served, lost := 0, 0
	for i, id := range ids {
		if dst[i].OK {
			served++
			if len(dst[i].Record.Out) != g.OutDegree(id) {
				t.Fatalf("node %d decoded wrongly on the surviving server", id)
			}
		} else {
			lost++
		}
	}
	if served == 0 || lost == 0 {
		t.Fatalf("served=%d lost=%d: expected a mix across a half-dead tier", served, lost)
	}
}

// TestFetchBatchReplicatedAllocs is the benchmark guard for the R=2 happy
// path: replica placement runs on fixed-size stack scratch, so a
// replicated fetch may cost at most a handful of allocations more than
// the R=1 hot path (which pays one allocation per decoded record).
func TestFetchBatchReplicatedAllocs(t *testing.T) {
	measure := func(tier *Tier, ids []graph.NodeID, dst []FetchResult) float64 {
		// Warm the pooled scratch so steady-state allocations are measured.
		if err := tier.FetchBatchInto(ids, dst, nil); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(100, func() {
			if err := tier.FetchBatchInto(ids, dst, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	g := gen.ErdosRenyi(300, 1500, 4)
	ids := make([]graph.NodeID, 0, 64)
	for id := graph.NodeID(0); id < 64; id++ {
		ids = append(ids, id)
	}
	dst := make([]FetchResult, len(ids))

	st1, _ := kvstore.New(3, nil)
	Load(st1, g)
	r1 := measure(NewTier(st1), ids, dst)

	st2, _ := kvstore.NewReplicated(3, 2)
	Load(st2, g)
	r2 := measure(NewTier(st2), ids, dst)

	if r2 > r1+6 {
		t.Fatalf("replicated fetch costs %.1f allocs/op vs %.1f unreplicated — failover machinery leaked onto the happy path", r2, r1)
	}
}
