// Package gstore stores a graph in the key-value storage tier using the
// adjacency-list layout of Figure 3: every node is one entry whose key is
// the node id and whose value encodes the node's label together with both
// its outgoing and incoming labelled edges.
//
// The binary codec is a compact varint encoding with delta-compressed,
// sorted neighbour lists — the value sizes it produces drive the byte-level
// cache-capacity and network-transfer modelling in the engine.
package gstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/kvstore"
)

// Record is the decoded storage entry for one node.
type Record struct {
	Node      graph.NodeID
	NodeLabel graph.Label
	Out       []graph.Edge
	In        []graph.Edge
}

// ErrCorrupt is returned when a stored value cannot be decoded.
var ErrCorrupt = errors.New("gstore: corrupt record")

// Encode serialises r, appending to buf (which may be nil) and returning
// the extended slice. Edge lists are sorted by (To, Label) before encoding;
// Encode does not modify r.
func Encode(buf []byte, r *Record) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.NodeLabel))
	buf = appendEdges(buf, r.Out)
	buf = appendEdges(buf, r.In)
	return buf
}

func appendEdges(buf []byte, edges []graph.Edge) []byte {
	sorted := graph.SortedEdges(edges)
	buf = binary.AppendUvarint(buf, uint64(len(sorted)))
	prev := uint64(0)
	for _, e := range sorted {
		delta := uint64(e.To) - prev
		prev = uint64(e.To)
		buf = binary.AppendUvarint(buf, delta)
		buf = binary.AppendUvarint(buf, uint64(e.Label))
	}
	return buf
}

// Decode parses a record produced by Encode. The node id is not part of the
// value (it is the key), so the caller supplies it.
func Decode(node graph.NodeID, data []byte) (Record, error) {
	r := Record{Node: node}
	label, n := binary.Uvarint(data)
	if n <= 0 || label > uint64(^graph.Label(0)) {
		return r, fmt.Errorf("%w: node label", ErrCorrupt)
	}
	data = data[n:]
	r.NodeLabel = graph.Label(label)
	var err error
	r.Out, data, err = decodeEdges(data)
	if err != nil {
		return r, fmt.Errorf("%w: out edges", ErrCorrupt)
	}
	r.In, data, err = decodeEdges(data)
	if err != nil {
		return r, fmt.Errorf("%w: in edges", ErrCorrupt)
	}
	if len(data) != 0 {
		return r, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
	}
	return r, nil
}

func decodeEdges(data []byte) ([]graph.Edge, []byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, data, ErrCorrupt
	}
	data = data[n:]
	if count > uint64(len(data)) { // each edge needs >= 2 bytes minimum 1+1
		// Guard against allocating absurd slices from corrupt counts. A
		// legitimate edge costs at least 2 varint bytes.
		if count*1 > uint64(len(data)) {
			return nil, data, ErrCorrupt
		}
	}
	edges := make([]graph.Edge, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, data, ErrCorrupt
		}
		data = data[n:]
		label, n := binary.Uvarint(data)
		if n <= 0 || label > uint64(^graph.Label(0)) {
			return nil, data, ErrCorrupt
		}
		data = data[n:]
		prev += delta
		if prev > uint64(^graph.NodeID(0)) {
			return nil, data, ErrCorrupt
		}
		edges = append(edges, graph.Edge{To: graph.NodeID(prev), Label: graph.Label(label)})
	}
	return edges, data, nil
}

// RecordOf extracts node u's storage record from an in-memory graph.
func RecordOf(g *graph.Graph, u graph.NodeID) *Record {
	return &Record{
		Node:      u,
		NodeLabel: g.NodeLabelID(u),
		Out:       g.OutEdges(u),
		In:        g.InEdges(u),
	}
}

// Load encodes every live node of g into the store and returns the total
// encoded bytes. This is the bulk-load step that populates the storage tier
// before queries run.
func Load(st *kvstore.Store, g *graph.Graph) int64 {
	var total int64
	buf := make([]byte, 0, 1024)
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		if !g.Exists(id) {
			continue
		}
		buf = Encode(buf[:0], RecordOf(g, id))
		st.Put(uint64(id), buf)
		total += int64(len(buf))
	}
	return total
}

// Tier is the storage-tier facade the query processors talk to: typed
// fetches of node records with byte accounting, backed by the KV store.
type Tier struct {
	store *kvstore.Store
}

// NewTier wraps a loaded store.
func NewTier(st *kvstore.Store) *Tier { return &Tier{store: st} }

// Store exposes the underlying KV store (for placement and batch planning).
func (t *Tier) Store() *kvstore.Store { return t.store }

// Fetch retrieves and decodes one node record. The bool reports presence.
func (t *Tier) Fetch(id graph.NodeID) (Record, bool, error) {
	v, ok := t.store.Get(uint64(id))
	if !ok {
		return Record{Node: id}, false, nil
	}
	r, err := Decode(id, v)
	return r, true, err
}

// FetchResult is one element of a batched fetch.
type FetchResult struct {
	Record Record
	Bytes  int // encoded size, for cache accounting
	OK     bool
}

// FetchBatch retrieves and decodes many node records grouped by owning
// server. For every input id, results[id] is populated. The onBatch hook
// (optional) observes each per-server batch with its total bytes — the
// engine uses it to charge server timelines.
func (t *Tier) FetchBatch(ids []graph.NodeID, onBatch func(b kvstore.Batch, bytes int64)) (map[graph.NodeID]FetchResult, error) {
	results := make(map[graph.NodeID]FetchResult, len(ids))
	keys := make([]uint64, len(ids))
	for i, id := range ids {
		keys[i] = uint64(id)
	}
	var decodeErr error
	for _, b := range t.store.PlanBatches(keys) {
		bytes := t.store.GetBatch(b, func(key uint64, val []byte, ok bool) {
			id := graph.NodeID(key)
			if !ok {
				results[id] = FetchResult{Record: Record{Node: id}}
				return
			}
			r, err := Decode(id, val)
			if err != nil && decodeErr == nil {
				decodeErr = err
			}
			results[id] = FetchResult{Record: r, Bytes: len(val), OK: true}
		})
		if onBatch != nil {
			onBatch(b, bytes)
		}
	}
	return results, decodeErr
}

// UpdateNode re-encodes node u from g and writes it back; used when the
// graph mutates (Section 3.4, graph updates).
func (t *Tier) UpdateNode(g *graph.Graph, u graph.NodeID) {
	if !g.Exists(u) {
		t.store.Delete(uint64(u))
		return
	}
	buf := Encode(nil, RecordOf(g, u))
	t.store.Put(uint64(u), buf)
}
