// Package gstore stores a graph in the key-value storage tier using the
// adjacency-list layout of Figure 3: every node is one entry whose key is
// the node id and whose value encodes the node's label together with both
// its outgoing and incoming labelled edges.
//
// The binary codec is a compact varint encoding with delta-compressed,
// sorted neighbour lists — the value sizes it produces drive the byte-level
// cache-capacity and network-transfer modelling in the engine.
package gstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/kvstore"
)

// Record is the decoded storage entry for one node.
type Record struct {
	Node      graph.NodeID
	NodeLabel graph.Label
	Out       []graph.Edge
	In        []graph.Edge
}

// ErrCorrupt is returned when a stored value cannot be decoded.
var ErrCorrupt = errors.New("gstore: corrupt record")

// Encode serialises r, appending to buf (which may be nil) and returning
// the extended slice. Edge lists are sorted by (To, Label) before encoding;
// Encode does not modify r.
func Encode(buf []byte, r *Record) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.NodeLabel))
	buf = appendEdges(buf, r.Out)
	buf = appendEdges(buf, r.In)
	return buf
}

func appendEdges(buf []byte, edges []graph.Edge) []byte {
	sorted := graph.SortedEdges(edges)
	buf = binary.AppendUvarint(buf, uint64(len(sorted)))
	prev := uint64(0)
	for _, e := range sorted {
		delta := uint64(e.To) - prev
		prev = uint64(e.To)
		buf = binary.AppendUvarint(buf, delta)
		buf = binary.AppendUvarint(buf, uint64(e.Label))
	}
	return buf
}

// Decode parses a record produced by Encode. The node id is not part of the
// value (it is the key), so the caller supplies it. Both edge lists share a
// single backing allocation: a cheap byte-level pre-scan finds the list
// sizes, then one []graph.Edge serves Out and In — the hot fetch path
// decodes millions of records, so halving its allocations matters.
func Decode(node graph.NodeID, data []byte) (Record, error) {
	r := Record{Node: node}
	label, n := binary.Uvarint(data)
	if n <= 0 || label > uint64(^graph.Label(0)) {
		return r, fmt.Errorf("%w: node label", ErrCorrupt)
	}
	data = data[n:]
	r.NodeLabel = graph.Label(label)
	outCount, afterOut, err := scanEdgeList(data)
	if err != nil {
		return r, fmt.Errorf("%w: out edges", ErrCorrupt)
	}
	inCount, _, err := scanEdgeList(afterOut)
	if err != nil {
		return r, fmt.Errorf("%w: in edges", ErrCorrupt)
	}
	all := make([]graph.Edge, outCount+inCount)
	r.Out = all[:outCount:outCount]
	r.In = all[outCount:]
	if data, err = decodeEdgeList(data, r.Out); err != nil {
		return r, fmt.Errorf("%w: out edges", ErrCorrupt)
	}
	if data, err = decodeEdgeList(data, r.In); err != nil {
		return r, fmt.Errorf("%w: in edges", ErrCorrupt)
	}
	if len(data) != 0 {
		return r, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
	}
	return r, nil
}

// scanEdgeList reads an edge-list count and skips past its varints without
// materialising anything, returning the count and the remaining bytes.
// The count guard rejects absurd values before any allocation: a
// legitimate edge costs at least 2 varint bytes (1 delta + 1 label), so
// any count exceeding len(data)/2 cannot decode.
func scanEdgeList(data []byte) (uint64, []byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, data, ErrCorrupt
	}
	data = data[n:]
	if count > uint64(len(data))/2 {
		return 0, data, ErrCorrupt
	}
	// Skip 2*count varints: a varint ends at its first byte without the
	// continuation bit.
	remaining := count * 2
	i := 0
	for ; remaining > 0 && i < len(data); i++ {
		if data[i] < 0x80 {
			remaining--
		}
	}
	if remaining > 0 {
		return 0, data, ErrCorrupt
	}
	return count, data[i:], nil
}

// decodeEdgeList re-reads the count varint (validated by scanEdgeList) and
// fills dst, which has exactly that length, returning the remaining bytes.
func decodeEdgeList(data []byte, dst []graph.Edge) ([]byte, error) {
	_, n := binary.Uvarint(data)
	if n <= 0 {
		return data, ErrCorrupt
	}
	data = data[n:]
	prev := uint64(0)
	for i := range dst {
		delta, n := binary.Uvarint(data)
		if n <= 0 {
			return data, ErrCorrupt
		}
		data = data[n:]
		label, n := binary.Uvarint(data)
		if n <= 0 || label > uint64(^graph.Label(0)) {
			return data, ErrCorrupt
		}
		data = data[n:]
		prev += delta
		if prev > uint64(^graph.NodeID(0)) {
			return data, ErrCorrupt
		}
		dst[i] = graph.Edge{To: graph.NodeID(prev), Label: graph.Label(label)}
	}
	return data, nil
}

// HasOut reports whether r carries the outgoing edge (v, label).
func (r *Record) HasOut(v graph.NodeID, label graph.Label) bool {
	for _, e := range r.Out {
		if e.To == v && e.Label == label {
			return true
		}
	}
	return false
}

// EnsureOut inserts the outgoing edge (v, label) unless an identical one
// exists, reporting whether it inserted. Decode shares one backing array
// between Out and In, but Out is capacity-capped, so the append can never
// clobber In.
func (r *Record) EnsureOut(v graph.NodeID, label graph.Label) bool {
	if r.HasOut(v, label) {
		return false
	}
	r.Out = append(r.Out, graph.Edge{To: v, Label: label})
	return true
}

// EnsureIn inserts the incoming edge (u, label) unless an identical one
// exists, reporting whether it inserted.
func (r *Record) EnsureIn(u graph.NodeID, label graph.Label) bool {
	for _, e := range r.In {
		if e.To == u && e.Label == label {
			return false
		}
	}
	r.In = append(r.In, graph.Edge{To: u, Label: label})
	return true
}

// RemoveOut deletes the first outgoing edge to v (any label), mirroring
// graph.RemoveEdge, and reports whether one was removed. The surviving
// edges are compacted onto a fresh slice — Decode shares one backing
// array between Out and In, so compacting in place would corrupt In.
func (r *Record) RemoveOut(v graph.NodeID) bool {
	var ok bool
	r.Out, ok = removeEdgeCopy(r.Out, v)
	return ok
}

// RemoveIn deletes the first incoming edge from u (any label) and reports
// whether one was removed.
func (r *Record) RemoveIn(u graph.NodeID) bool {
	var ok bool
	r.In, ok = removeEdgeCopy(r.In, u)
	return ok
}

// removeEdgeCopy drops the first edge pointing at target, returning a
// fresh slice (the input is never mutated) and whether one was found.
func removeEdgeCopy(es []graph.Edge, target graph.NodeID) ([]graph.Edge, bool) {
	for i, e := range es {
		if e.To == target {
			cp := make([]graph.Edge, 0, len(es)-1)
			cp = append(cp, es[:i]...)
			cp = append(cp, es[i+1:]...)
			return cp, true
		}
	}
	return es, false
}

// RecordOf extracts node u's storage record from an in-memory graph.
func RecordOf(g *graph.Graph, u graph.NodeID) *Record {
	return &Record{
		Node:      u,
		NodeLabel: g.NodeLabelID(u),
		Out:       g.OutEdges(u),
		In:        g.InEdges(u),
	}
}

// Load encodes every live node of g into the store and returns the total
// encoded bytes. This is the bulk-load step that populates the storage tier
// before queries run.
func Load(st *kvstore.Store, g *graph.Graph) int64 {
	var total int64
	buf := make([]byte, 0, 1024)
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		if !g.Exists(id) {
			continue
		}
		buf = Encode(buf[:0], RecordOf(g, id))
		st.Put(uint64(id), buf)
		total += int64(len(buf))
	}
	return total
}

// Tier is the storage-tier facade the query processors talk to: typed
// fetches of node records with byte accounting, backed by the KV store.
type Tier struct {
	store *kvstore.Store
}

// NewTier wraps a loaded store.
func NewTier(st *kvstore.Store) *Tier { return &Tier{store: st} }

// Store exposes the underlying KV store (for placement and batch planning).
func (t *Tier) Store() *kvstore.Store { return t.store }

// Fetch retrieves and decodes one node record. The bool reports presence.
func (t *Tier) Fetch(id graph.NodeID) (Record, bool, error) {
	v, ok := t.store.Get(uint64(id))
	if !ok {
		return Record{Node: id}, false, nil
	}
	r, err := Decode(id, v)
	return r, true, err
}

// FetchResult is one element of a batched fetch.
type FetchResult struct {
	Record Record
	Bytes  int // encoded size, for cache accounting
	OK     bool
}

// FetchBatch retrieves and decodes many node records grouped by owning
// server. For every input id, results[id] is populated. The onBatch hook
// (optional) observes each per-server batch with its total bytes — the
// engine uses it to charge server timelines. Failover and availability
// semantics match FetchBatchInto, which implements it.
func (t *Tier) FetchBatch(ids []graph.NodeID, onBatch func(b kvstore.Batch, bytes int64)) (map[graph.NodeID]FetchResult, error) {
	dst := make([]FetchResult, len(ids))
	err := t.FetchBatchInto(ids, dst, onBatch)
	results := make(map[graph.NodeID]FetchResult, len(ids))
	for i, id := range ids {
		results[id] = dst[i]
	}
	return results, err
}

// fetchScratch holds the reusable planning and read buffers behind
// FetchBatchInto. Pooled so concurrent callers (one per experiment cell)
// never contend or share state.
type fetchScratch struct {
	keys []uint64
	plan kvstore.BatchPlan
	vals [][]byte
	oks  []bool
	// Two retry buffer pairs, alternated per attempt: one holds the keys
	// being retried (read side) while the other collects the next round's
	// bounces (write side), so the lists never alias.
	retryIDs [2][]graph.NodeID
	retryPos [2][]int32
}

var scratchPool = sync.Pool{New: func() any { return new(fetchScratch) }}

// fetchAttempts bounds the replan-and-retry loop: each retry reflects one
// storage membership transition that raced the plan, so a handful covers
// any realistic churn without risking a livelock under continuous faults.
const fetchAttempts = 4

// FetchBatchInto retrieves and decodes many node records grouped by owning
// replica, writing dst[i] for ids[i] (dst must have len >= len(ids)). It is
// the allocation-lean counterpart of FetchBatch: batch planning and raw
// reads run through pooled buffers, and only the decoded edge lists are
// freshly allocated (records outlive the call — the engine caches them).
//
// Reads fail over transparently: a batch bounced off a server that a
// concurrent membership transition made unreadable is re-planned against
// the new storage view and retried on the keys' surviving replicas. The
// onBatch hook observes each served batch with its byte total; a failed
// attempt is reported with bytes == -1 (a burned round trip, no data), so
// the engine can charge failover latency without crediting a transfer.
// Keys whose every replica is down fail the fetch with an error wrapping
// kvstore.ErrNoLiveReplica (their dst entries read !OK, but they are
// unavailable, not absent).
func (t *Tier) FetchBatchInto(ids []graph.NodeID, dst []FetchResult, onBatch func(b kvstore.Batch, bytes int64)) error {
	if len(dst) < len(ids) {
		return fmt.Errorf("gstore: FetchBatchInto dst len %d < %d ids", len(dst), len(ids))
	}
	sc := scratchPool.Get().(*fetchScratch)
	defer scratchPool.Put(sc)
	if cap(sc.keys) < len(ids) {
		sc.keys = make([]uint64, len(ids))
		sc.vals = make([][]byte, len(ids))
		sc.oks = make([]bool, len(ids))
		for p := range sc.retryIDs {
			sc.retryIDs[p] = make([]graph.NodeID, 0, len(ids))
			sc.retryPos[p] = make([]int32, 0, len(ids))
		}
	}
	// pend maps the current attempt's key list back to dst positions; the
	// first attempt covers everything, retries only the bounced keys.
	pendIDs, pendPos := ids, []int32(nil)
	var firstErr error
	for attempt := 0; len(pendIDs) > 0; attempt++ {
		keys := sc.keys[:len(pendIDs)]
		for i, id := range pendIDs {
			keys[i] = uint64(id)
		}
		retryIDs := sc.retryIDs[attempt%2][:0]
		retryPos := sc.retryPos[attempt%2][:0]
		for _, b := range t.store.PlanBatchesIn(&sc.plan, keys) {
			origPos := func(i int) int32 {
				if pendPos == nil {
					return b.Pos[i]
				}
				return pendPos[b.Pos[i]]
			}
			vals, oks := sc.vals[:len(b.Keys)], sc.oks[:len(b.Keys)]
			bytes, err := t.store.GetBatchInto(b, vals, oks)
			switch {
			case errors.Is(err, kvstore.ErrServerDown) && attempt < fetchAttempts:
				// Bounced: the keys have live replicas under the new view.
				for i := range b.Keys {
					retryIDs = append(retryIDs, graph.NodeID(b.Keys[i]))
					retryPos = append(retryPos, origPos(i))
				}
				if onBatch != nil {
					onBatch(b, -1)
				}
				continue
			case err != nil:
				// No live replica (or retries exhausted): the batch's keys
				// cannot be distinguished from absent, so fail them all —
				// conservative, never silently wrong.
				for i := range b.Keys {
					dst[origPos(i)] = FetchResult{Record: Record{Node: graph.NodeID(b.Keys[i])}}
				}
				if firstErr == nil {
					firstErr = fmt.Errorf("gstore: %d keys on server %d: %w", len(b.Keys), b.Server, err)
				}
				if onBatch != nil {
					onBatch(b, -1)
				}
				continue
			}
			for i := range b.Keys {
				p := origPos(i)
				id := graph.NodeID(b.Keys[i])
				if !oks[i] {
					dst[p] = FetchResult{Record: Record{Node: id}}
					continue
				}
				r, derr := Decode(id, vals[i])
				if derr != nil && firstErr == nil {
					firstErr = derr
				}
				dst[p] = FetchResult{Record: r, Bytes: len(vals[i]), OK: true}
			}
			if onBatch != nil {
				onBatch(b, bytes)
			}
		}
		sc.retryIDs[attempt%2], sc.retryPos[attempt%2] = retryIDs, retryPos
		pendIDs = retryIDs
		pendPos = retryPos
	}
	return firstErr
}

// UpdateNode re-encodes node u from g and writes it back (or tombstones
// it when the node no longer exists); used when the graph mutates
// (Section 3.4, graph updates). It returns the encoded bytes written (0
// for a delete) and the write's store version — the quantities the
// engine's write cost model and read-your-writes ack are built on.
func (t *Tier) UpdateNode(g *graph.Graph, u graph.NodeID) (int, uint64) {
	if !g.Exists(u) {
		t.store.Delete(uint64(u))
		return 0, 0
	}
	return t.PutRecord(RecordOf(g, u))
}

// PutRecord encodes r and stores it under its node id, returning the
// encoded size and the write's store version.
func (t *Tier) PutRecord(r *Record) (int, uint64) {
	buf := Encode(nil, r)
	ver := t.store.Put(uint64(r.Node), buf)
	return len(buf), ver
}
