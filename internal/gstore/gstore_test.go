package gstore

import (
	"encoding/binary"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kvstore"
)

func sortEdges(es []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, len(es))
	copy(out, es)
	sort.Slice(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Label < out[j].Label
	})
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := &Record{
		Node:      42,
		NodeLabel: 3,
		Out:       []graph.Edge{{To: 7, Label: 1}, {To: 3, Label: 0}, {To: 7, Label: 2}},
		In:        []graph.Edge{{To: 100000, Label: 9}},
	}
	buf := Encode(nil, r)
	got, err := Decode(42, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != 42 || got.NodeLabel != 3 {
		t.Fatalf("decoded header = %+v", got)
	}
	if !reflect.DeepEqual(got.Out, sortEdges(r.Out)) {
		t.Fatalf("Out = %v, want %v", got.Out, sortEdges(r.Out))
	}
	if !reflect.DeepEqual(got.In, sortEdges(r.In)) {
		t.Fatalf("In = %v, want %v", got.In, sortEdges(r.In))
	}
}

func TestEncodeEmptyRecord(t *testing.T) {
	r := &Record{Node: 1}
	buf := Encode(nil, r)
	got, err := Decode(1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Out) != 0 || len(got.In) != 0 || got.NodeLabel != 0 {
		t.Fatalf("decoded empty record = %+v", got)
	}
}

func TestEncodeDoesNotMutateInput(t *testing.T) {
	out := []graph.Edge{{To: 9}, {To: 1}, {To: 5}}
	r := &Record{Node: 0, Out: out}
	Encode(nil, r)
	if out[0].To != 9 || out[1].To != 1 || out[2].To != 5 {
		t.Fatalf("Encode sorted the caller's slice: %v", out)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                       // missing label
		{0x00},                   // missing out count
		{0x00, 0x05},             // out count 5 with no edge data
		{0x00, 0x01, 0x03},       // edge missing label varint
		{0x00, 0x00, 0x00, 0xff}, // trailing garbage / truncated in-list
	}
	for i, data := range cases {
		if _, err := Decode(0, data); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestDecodeOversizedCount(t *testing.T) {
	// A legitimate edge costs >= 2 varint bytes, so any count above
	// len(rest)/2 must be rejected before allocation. These payloads claim
	// huge lists backed by almost no data.
	cases := [][]byte{
		append([]byte{0x00}, binary.AppendUvarint(nil, 1<<40)...),      // out count 2^40, no data
		append([]byte{0x00, 0x03}, 0x01, 0x00, 0x01, 0x00, 0x01, 0x00), // count 3 but only 3 edges' worth... exactly enough
	}
	if _, err := Decode(0, cases[0]); err == nil {
		t.Error("oversized out count decoded without error")
	}
	// cases[1] is count=3 with exactly 6 bytes: valid out-list, then the
	// in-list count is missing -> must error on the in list, not panic.
	if _, err := Decode(0, cases[1]); err == nil {
		t.Error("record with missing in-list decoded without error")
	}
	// count*2 overflow attempt: count near MaxUint64 must not wrap past
	// the guard.
	huge := append([]byte{0x00}, binary.AppendUvarint(nil, ^uint64(0)>>1)...)
	if _, err := Decode(0, huge); err == nil {
		t.Error("wrap-around count decoded without error")
	}
}

// TestDecodeFuzzTruncatedAndMutated decodes every truncation and many
// deterministic single-byte mutations of a real encoded record: Decode
// must never panic or over-allocate, and full-length unmutated input must
// round-trip.
func TestDecodeFuzzTruncatedAndMutated(t *testing.T) {
	g := gen.ErdosRenyi(200, 2000, 9)
	buf := Encode(nil, RecordOf(g, g.NodesByDegreeDesc()[0]))
	for n := 0; n < len(buf); n++ {
		if _, err := Decode(1, buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	if _, err := Decode(1, buf); err != nil {
		t.Fatalf("full record failed to decode: %v", err)
	}
	mut := make([]byte, len(buf))
	for i := 0; i < len(buf); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			copy(mut, buf)
			mut[i] ^= flip
			_, _ = Decode(1, mut) // must not panic; error or reinterpretation both fine
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	buf := Encode(nil, &Record{Node: 1})
	buf = append(buf, 0x7)
	if _, err := Decode(1, buf); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// Property: arbitrary edge lists survive the codec (up to sorting).
func TestQuickRoundTrip(t *testing.T) {
	f := func(nodeLabel uint16, rawOut, rawIn []uint32) bool {
		r := &Record{Node: 5, NodeLabel: graph.Label(nodeLabel)}
		for _, v := range rawOut {
			r.Out = append(r.Out, graph.Edge{To: graph.NodeID(v), Label: graph.Label(v % 17)})
		}
		for _, v := range rawIn {
			r.In = append(r.In, graph.Edge{To: graph.NodeID(v), Label: graph.Label(v % 5)})
		}
		buf := Encode(nil, r)
		got, err := Decode(5, buf)
		if err != nil {
			return false
		}
		return got.NodeLabel == r.NodeLabel &&
			reflect.DeepEqual(got.Out, sortEdges(r.Out)) &&
			reflect.DeepEqual(got.In, sortEdges(r.In))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func newLoadedTier(t *testing.T) (*Tier, *graph.Graph) {
	t.Helper()
	g := gen.ErdosRenyi(300, 1500, 4)
	st, err := kvstore.New(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if total := Load(st, g); total <= 0 {
		t.Fatalf("Load returned %d bytes", total)
	}
	return NewTier(st), g
}

func TestLoadAndFetchMatchesGraph(t *testing.T) {
	tier, g := newLoadedTier(t)
	for _, id := range []graph.NodeID{0, 1, 137, 299} {
		r, ok, err := tier.Fetch(id)
		if err != nil || !ok {
			t.Fatalf("Fetch(%d): ok=%v err=%v", id, ok, err)
		}
		if len(r.Out) != g.OutDegree(id) {
			t.Fatalf("node %d: fetched %d out-edges, graph has %d", id, len(r.Out), g.OutDegree(id))
		}
		if len(r.In) != g.InDegree(id) {
			t.Fatalf("node %d: fetched %d in-edges, graph has %d", id, len(r.In), g.InDegree(id))
		}
		if !reflect.DeepEqual(r.Out, sortEdges(g.OutEdges(id))) {
			t.Fatalf("node %d: out-edges differ", id)
		}
	}
}

func TestFetchMissing(t *testing.T) {
	tier, _ := newLoadedTier(t)
	_, ok, err := tier.Fetch(99999)
	if ok || err != nil {
		t.Fatalf("Fetch(missing) = ok %v err %v", ok, err)
	}
}

func TestFetchBatch(t *testing.T) {
	tier, g := newLoadedTier(t)
	ids := []graph.NodeID{0, 1, 2, 3, 4, 5, 77777}
	var batches int
	var totalBytes int64
	results, err := tier.FetchBatch(ids, func(b kvstore.Batch, bytes int64) {
		batches++
		totalBytes += bytes
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("results cover %d ids, want %d", len(results), len(ids))
	}
	if !results[0].OK || results[77777].OK {
		t.Fatalf("presence flags wrong: %+v, %+v", results[0], results[77777])
	}
	if results[2].Bytes <= 0 {
		t.Fatal("byte accounting missing")
	}
	if batches == 0 || totalBytes <= 0 {
		t.Fatalf("onBatch not invoked: batches=%d bytes=%d", batches, totalBytes)
	}
	if len(results[1].Record.Out) != g.OutDegree(1) {
		t.Fatal("batched record content wrong")
	}
}

// TestFetchBatchIntoAgreesWithFetchBatch checks the slice-backed fetch
// path against the map-based one on a mix of present and dangling ids:
// positional results, byte accounting and batch observations must match.
func TestFetchBatchIntoAgreesWithFetchBatch(t *testing.T) {
	tier, _ := newLoadedTier(t)
	ids := []graph.NodeID{5, 99999, 0, 250, 77777, 1, 131, 2}
	var mapBatches, sliceBatches int
	var mapBytes, sliceBytes int64
	want, err := tier.FetchBatch(ids, func(b kvstore.Batch, bytes int64) {
		mapBatches++
		mapBytes += bytes
	})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]FetchResult, len(ids))
	err = tier.FetchBatchInto(ids, dst, func(b kvstore.Batch, bytes int64) {
		sliceBatches++
		sliceBytes += bytes
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		w := want[id]
		if dst[i].OK != w.OK || dst[i].Bytes != w.Bytes {
			t.Fatalf("id %d: got OK=%v bytes=%d, want OK=%v bytes=%d", id, dst[i].OK, dst[i].Bytes, w.OK, w.Bytes)
		}
		if !reflect.DeepEqual(dst[i].Record, w.Record) {
			t.Fatalf("id %d: record differs between fetch paths", id)
		}
	}
	if mapBatches != sliceBatches || mapBytes != sliceBytes {
		t.Fatalf("batch accounting differs: %d/%d batches, %d/%d bytes",
			mapBatches, sliceBatches, mapBytes, sliceBytes)
	}
	// Reusing the same destination (and the pooled scratch) must not leak
	// state between calls.
	sub := ids[:3]
	if err := tier.FetchBatchInto(sub, dst, nil); err != nil {
		t.Fatal(err)
	}
	for i, id := range sub {
		if !reflect.DeepEqual(dst[i].Record, want[id].Record) {
			t.Fatalf("id %d: record differs on scratch reuse", id)
		}
	}
}

func TestFetchBatchIntoShortDst(t *testing.T) {
	tier, _ := newLoadedTier(t)
	if err := tier.FetchBatchInto([]graph.NodeID{1, 2, 3}, make([]FetchResult, 2), nil); err == nil {
		t.Fatal("short destination accepted")
	}
}

func TestFetchBatchNilHook(t *testing.T) {
	tier, _ := newLoadedTier(t)
	if _, err := tier.FetchBatch([]graph.NodeID{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateNode(t *testing.T) {
	tier, g := newLoadedTier(t)
	// Mutate the graph, then push the update.
	target := graph.NodeID(10)
	before := g.OutDegree(target)
	if err := g.AddEdge(target, 11, "new"); err != nil {
		t.Fatal(err)
	}
	tier.UpdateNode(g, target)
	r, ok, err := tier.Fetch(target)
	if err != nil || !ok {
		t.Fatalf("Fetch after update: %v %v", ok, err)
	}
	if len(r.Out) != before+1 {
		t.Fatalf("updated record has %d out-edges, want %d", len(r.Out), before+1)
	}
	// Removing the node deletes the record.
	if err := g.RemoveNode(target); err != nil {
		t.Fatal(err)
	}
	tier.UpdateNode(g, target)
	if _, ok, _ := tier.Fetch(target); ok {
		t.Fatal("record survives node removal")
	}
}

func TestLoadSkipsRemovedNodes(t *testing.T) {
	g := gen.Ring(10)
	if err := g.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	st, _ := kvstore.New(2, nil)
	Load(st, g)
	if st.TotalKeys() != 9 {
		t.Fatalf("store has %d keys, want 9", st.TotalKeys())
	}
}

func BenchmarkEncode(b *testing.B) {
	g := gen.RMAT(gen.RMATOptions{Nodes: 1000, Edges: 20000, Seed: 1})
	r := RecordOf(g, g.NodesByDegreeDesc()[0])
	buf := make([]byte, 0, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], r)
	}
}

func BenchmarkDecode(b *testing.B) {
	g := gen.RMAT(gen.RMATOptions{Nodes: 1000, Edges: 20000, Seed: 1})
	r := RecordOf(g, g.NodesByDegreeDesc()[0])
	buf := Encode(nil, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(r.Node, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRecordEdgeEditing covers the in-place record editors the networked
// mutate path rewrites fetched records with: idempotent inserts, removal
// by destination (any label), and the copy-on-remove discipline that
// keeps Decode's shared backing array intact.
func TestRecordEdgeEditing(t *testing.T) {
	r := &Record{
		Node: 1,
		Out:  []graph.Edge{{To: 2, Label: 1}, {To: 3, Label: 2}},
		In:   []graph.Edge{{To: 9, Label: 1}},
	}
	if !r.HasOut(2, 1) || r.HasOut(2, 2) || r.HasOut(5, 1) {
		t.Fatal("HasOut wrong")
	}
	if r.EnsureOut(2, 1) {
		t.Fatal("EnsureOut inserted a duplicate")
	}
	if !r.EnsureOut(5, 3) || !r.HasOut(5, 3) {
		t.Fatal("EnsureOut failed to insert")
	}
	if r.EnsureIn(9, 1) {
		t.Fatal("EnsureIn inserted a duplicate")
	}
	if !r.EnsureIn(8, 2) || len(r.In) != 2 {
		t.Fatal("EnsureIn failed to insert")
	}
	if r.RemoveOut(99) {
		t.Fatal("RemoveOut removed a missing edge")
	}
	if !r.RemoveOut(3) || r.HasOut(3, 2) || len(r.Out) != 2 {
		t.Fatalf("RemoveOut: %+v", r.Out)
	}
	if !r.RemoveIn(9) || len(r.In) != 1 || r.In[0].To != 8 {
		t.Fatalf("RemoveIn: %+v", r.In)
	}
	if r.RemoveIn(9) {
		t.Fatal("RemoveIn removed twice")
	}
}

// TestRecordRemoveDoesNotClobberDecodeSiblings: a decoded record's Out and
// In share one backing array; removing from Out must copy, never compact
// in place, or In would be corrupted.
func TestRecordRemoveDoesNotClobberDecodeSiblings(t *testing.T) {
	orig := &Record{
		Node: 7,
		Out:  []graph.Edge{{To: 1, Label: 1}, {To: 2, Label: 2}, {To: 3, Label: 3}},
		In:   []graph.Edge{{To: 4, Label: 4}, {To: 5, Label: 5}},
	}
	dec, err := Decode(7, Encode(nil, orig))
	if err != nil {
		t.Fatal(err)
	}
	wantIn := sortEdges(orig.In)
	if !dec.RemoveOut(1) {
		t.Fatal("RemoveOut missed")
	}
	if got := sortEdges(dec.In); !reflect.DeepEqual(got, wantIn) {
		t.Fatalf("In corrupted by RemoveOut: %+v, want %+v", got, wantIn)
	}
	dec.EnsureOut(9, 9)
	if got := sortEdges(dec.In); !reflect.DeepEqual(got, wantIn) {
		t.Fatalf("In corrupted by EnsureOut: %+v, want %+v", got, wantIn)
	}
}

// TestUpdateNodeReturnsCostInputs: the write path's virtual-time charge
// and ack are built on UpdateNode's (bytes, version) return.
func TestUpdateNodeReturnsCostInputs(t *testing.T) {
	tier, g := newLoadedTier(t)
	target := graph.NodeID(20)
	bytes, ver := tier.UpdateNode(g, target)
	if bytes <= 0 || ver == 0 {
		t.Fatalf("UpdateNode = (%d, %d), want positive bytes and version", bytes, ver)
	}
	if err := g.AddEdge(target, 21, "new"); err != nil {
		t.Fatal(err)
	}
	bytes2, ver2 := tier.UpdateNode(g, target)
	if bytes2 <= bytes || ver2 <= ver {
		t.Fatalf("grown record: (%d, %d) after (%d, %d)", bytes2, ver2, bytes, ver)
	}
	if err := g.RemoveNode(target); err != nil {
		t.Fatal(err)
	}
	if bytes, ver := tier.UpdateNode(g, target); bytes != 0 || ver != 0 {
		t.Fatalf("delete returned (%d, %d), want (0, 0)", bytes, ver)
	}
}

// TestPutRecord: storing an explicit record lands the encoded bytes under
// its node id.
func TestPutRecord(t *testing.T) {
	st, err := kvstore.New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	tier := NewTier(st)
	r := &Record{Node: 77, NodeLabel: 1, Out: []graph.Edge{{To: 5, Label: 2}}}
	bytes, ver := tier.PutRecord(r)
	if bytes != len(Encode(nil, r)) || ver == 0 {
		t.Fatalf("PutRecord = (%d, %d)", bytes, ver)
	}
	got, ok, err := tier.Fetch(77)
	if err != nil || !ok {
		t.Fatalf("Fetch: %v %v", ok, err)
	}
	if got.NodeLabel != 1 || !got.HasOut(5, 2) {
		t.Fatalf("fetched %+v", got)
	}
}
