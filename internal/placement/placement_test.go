package placement

import (
	"reflect"
	"testing"
)

// stubEnv is a deployment surface the tests control exactly.
type stubEnv struct {
	primary  map[uint64]int
	replicas map[uint64][]int
	sizes    map[uint64]int
	near     map[int]int
	rf       int
}

func (e *stubEnv) Primary(key uint64) int {
	if p, ok := e.primary[key]; ok {
		return p
	}
	return -1
}

func (e *stubEnv) Replicas(key uint64, dst []int) []int {
	return append(dst, e.replicas[key]...)
}

func (e *stubEnv) SizeOf(key uint64) int { return e.sizes[key] }

func (e *stubEnv) NearSlot(proc int) int {
	if s, ok := e.near[proc]; ok {
		return s
	}
	return -1
}

func (e *stubEnv) ReplicaTarget() int { return e.rf }

// env returns a two-slot, replica-factor-1 tier where processor p's near
// slot is p%2 and every listed key lives on slot 1 with size 100.
func env(keys ...uint64) *stubEnv {
	e := &stubEnv{
		primary:  make(map[uint64]int),
		replicas: make(map[uint64][]int),
		sizes:    make(map[uint64]int),
		near:     map[int]int{0: 0, 1: 1, 2: 0, 3: 1},
		rf:       1,
	}
	for _, k := range keys {
		e.primary[k] = 1
		e.replicas[k] = []int{1}
		e.sizes[k] = 100
	}
	return e
}

func TestHeatRecordAndDominant(t *testing.T) {
	h := NewHeat()
	if p, r, tot := h.Dominant(7); p != -1 || r != 0 || tot != 0 {
		t.Fatalf("empty Dominant = (%d,%d,%d), want (-1,0,0)", p, r, tot)
	}
	h.Record(7, 2, 5)
	h.Record(7, 0, 3)
	h.Record(7, 2, 1)
	h.Record(7, 1, 0)  // no-op
	h.Record(7, 1, -4) // no-op
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
	p, r, tot := h.Dominant(7)
	if p != 2 || r != 6 || tot != 9 {
		t.Fatalf("Dominant = (%d,%d,%d), want (2,6,9)", p, r, tot)
	}
}

func TestHeatDominantTieLowestProc(t *testing.T) {
	h := NewHeat()
	h.Record(1, 3, 4)
	h.Record(1, 0, 4)
	h.Record(1, 2, 4)
	if p, _, _ := h.Dominant(1); p != 0 {
		t.Fatalf("tie broken toward proc %d, want 0", p)
	}
}

func TestHeatDecay(t *testing.T) {
	h := NewHeat()
	h.Record(1, 0, 8)
	h.Record(1, 1, 1) // cools to zero on first decay
	h.Record(2, 0, 1) // whole record evicted on first decay
	h.Decay()
	if h.Len() != 1 {
		t.Fatalf("Len after decay = %d, want 1", h.Len())
	}
	if p, r, tot := h.Dominant(1); p != 0 || r != 4 || tot != 4 {
		t.Fatalf("Dominant after decay = (%d,%d,%d), want (0,4,4)", p, r, tot)
	}
	h.Decay()
	h.Decay()
	h.Decay() // 8 halves to zero only on the fourth cycle
	if h.Len() != 0 {
		t.Fatalf("heat survived full decay: Len = %d", h.Len())
	}
}

func TestPlanMovesHotKeyTowardReader(t *testing.T) {
	e := env(42)
	p := New(Config{MinReads: 4})
	h := NewHeat()
	h.Record(42, 0, 10) // dominant reader 0, near slot 0; key lives on slot 1
	moves := p.Plan(h, e)
	if len(moves) != 1 {
		t.Fatalf("planned %d moves, want 1", len(moves))
	}
	m := moves[0]
	if m.Key != 42 || m.From != 1 || m.Reader != 0 || m.Reads != 10 || m.Bytes != 100 {
		t.Fatalf("unexpected move %+v", m)
	}
	if !reflect.DeepEqual(m.To, []int{0}) {
		t.Fatalf("move target %v, want [0]", m.To)
	}
	if c := p.Counters(); c.Cycles != 1 || c.Planned != 1 || c.SkippedCold != 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestPlanHysteresis(t *testing.T) {
	e := env(1, 2, 3)
	p := New(Config{MinReads: 8})
	h := NewHeat()
	h.Record(1, 0, 7) // below the heat floor
	h.Record(2, 0, 5) // dominant reader owns 5/10 < strict majority? 0.5*10=5, 5>=5 passes
	h.Record(2, 1, 5)
	h.Record(3, 0, 3) // no reader reaches half of 9 reads
	h.Record(3, 1, 3)
	h.Record(3, 2, 3)
	moves := p.Plan(h, e)
	// Key 2's tie-broken dominant reader (proc 0) owns exactly half the
	// reads — the >= boundary of MinDominance — so it moves; 1 and 3 don't.
	if len(moves) != 1 || moves[0].Key != 2 {
		t.Fatalf("moves = %+v, want exactly key 2", moves)
	}
	if c := p.Counters(); c.SkippedCold != 2 {
		t.Fatalf("SkippedCold = %d, want 2", c.SkippedCold)
	}
}

func TestPlanSkipsSettledAndVanishedKeys(t *testing.T) {
	e := env(1, 2, 3)
	e.primary[1] = 0 // already at its reader's near slot
	e.sizes[2] = 0   // deleted since the heat accrued
	delete(e.primary, 3)
	p := New(Config{MinReads: 1})
	h := NewHeat()
	for _, k := range []uint64{1, 2, 3} {
		h.Record(k, 0, 10)
	}
	h.Record(4, 5, 10) // reader 5 has no near slot
	if moves := p.Plan(h, e); len(moves) != 0 {
		t.Fatalf("planned %+v, want none", moves)
	}
}

func TestPlanBudgetHottestFirst(t *testing.T) {
	e := env(1, 2, 3, 4)
	e.sizes[2] = 150 // too big once key 1 has been picked
	p := New(Config{MinReads: 1, BudgetBytes: 220})
	h := NewHeat()
	h.Record(1, 0, 30)
	h.Record(2, 0, 20)
	h.Record(3, 0, 10)
	h.Record(4, 0, 5)
	moves := p.Plan(h, e)
	// Hottest first: 1 (100) fits, 2 (150) exceeds the 120 remaining, 3
	// (100) fits the remainder exactly, and with the budget spent to zero
	// key 4 must be rejected, not waved through.
	var keys []uint64
	for _, m := range moves {
		keys = append(keys, m.Key)
	}
	if !reflect.DeepEqual(keys, []uint64{1, 3}) {
		t.Fatalf("picked %v, want [1 3]", keys)
	}
	if c := p.Counters(); c.SkippedBudget != 2 || c.Planned != 2 {
		t.Fatalf("counters %+v, want SkippedBudget 2 Planned 2", c)
	}
}

func TestPlanDeterministicTieOrder(t *testing.T) {
	e := env(9, 5, 7)
	p := New(Config{MinReads: 1})
	h := NewHeat()
	for _, k := range []uint64{9, 5, 7} {
		h.Record(k, 0, 10)
	}
	moves := p.Plan(h, e)
	var keys []uint64
	for _, m := range moves {
		keys = append(keys, m.Key)
	}
	if !reflect.DeepEqual(keys, []uint64{5, 7, 9}) {
		t.Fatalf("equal-heat order %v, want ascending keys", keys)
	}
}

func TestPlanKeepsReplicationFactor(t *testing.T) {
	e := env(1)
	e.rf = 2
	e.replicas[1] = []int{1, 0}
	e.near[0] = 2
	p := New(Config{MinReads: 1})
	h := NewHeat()
	h.Record(1, 0, 10)
	moves := p.Plan(h, e)
	if len(moves) != 1 {
		t.Fatalf("planned %d moves, want 1", len(moves))
	}
	// The near slot becomes primary; one existing replica backfills so the
	// tier keeps two copies.
	if !reflect.DeepEqual(moves[0].To, []int{2, 1}) {
		t.Fatalf("target placement %v, want [2 1]", moves[0].To)
	}
}

func TestExecutedCountersAndLog(t *testing.T) {
	p := New(Config{LogSize: 2})
	for i := 0; i < 3; i++ {
		p.Executed(Move{Key: uint64(i), To: []int{0}, From: 1, Bytes: 10}, true)
	}
	p.Executed(Move{Key: 99, Bytes: 1000}, false) // failed moves leave no trace
	c := p.Counters()
	if c.Moved != 3 || c.MovedBytes != 30 {
		t.Fatalf("counters %+v, want Moved 3 MovedBytes 30", c)
	}
	log := p.Log()
	if len(log) != 2 || log[0].Key != 1 || log[1].Key != 2 {
		t.Fatalf("log %+v, want keys [1 2]", log)
	}
	log[0].Key = 77 // the returned slice is a copy
	if p.Log()[0].Key != 1 {
		t.Fatal("Log() exposed internal state")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MinReads != 16 || c.MinDominance != 0.5 || c.LogSize != 32 {
		t.Fatalf("defaults %+v", c)
	}
	if New(Config{BudgetBytes: 512}).Counters().BudgetBytes != 512 {
		t.Fatal("BudgetBytes not surfaced in counters")
	}
}
