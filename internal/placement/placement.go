// Package placement implements the workload-adaptive data-placement
// subsystem: a background planner that watches which processor reads which
// record from the storage tier (the per-partition heat the observability
// surface already carries) and plans bounded migrations of hot records
// toward their dominant readers.
//
// The planner is deliberately split from execution. Plan is a pure
// function of the accumulated heat and a deployment surface (Env): it
// decides *what* should move and *where*, applying hysteresis (cold
// records and records without a sufficiently dominant reader never move)
// and a per-cycle byte budget (a migration storm can never starve the
// query path). The deployment — the virtual-time engine or the networked
// router — executes each move as a versioned copy-then-tombstone
// relocation and reports the outcome back, so the planner's counters and
// decision log always describe what actually happened.
//
// This is PHD-Store's incremental redistribution and Peng et al.'s
// workload-based fragmentation (see PAPERS.md) landed on the decoupled
// architecture: compute stays put, data drifts toward it.
package placement

import (
	"sort"

	"repro/internal/metrics"
)

// Heat accumulates storage-read counts per record, attributed to the
// reading processor. Cache hits contribute nothing — a record the caches
// absorb needs no migration. Not safe for concurrent use; each owner
// (session or router) guards its own.
type Heat struct {
	keys map[uint64]*keyHeat
}

type keyHeat struct {
	total  int64
	byProc map[int]int64
}

// NewHeat returns an empty accumulator.
func NewHeat() *Heat { return &Heat{keys: make(map[uint64]*keyHeat)} }

// Record adds n storage reads of key by processor proc.
func (h *Heat) Record(key uint64, proc int, n int64) {
	if n <= 0 {
		return
	}
	kh := h.keys[key]
	if kh == nil {
		kh = &keyHeat{byProc: make(map[int]int64, 4)}
		h.keys[key] = kh
	}
	kh.total += n
	kh.byProc[proc] += n
}

// Len returns the number of records with non-zero heat.
func (h *Heat) Len() int { return len(h.keys) }

// Dominant returns key's hottest reader (lowest processor id on ties),
// its read count, and the key's total reads. A key without heat returns
// (-1, 0, 0).
func (h *Heat) Dominant(key uint64) (proc int, reads, total int64) {
	kh := h.keys[key]
	if kh == nil {
		return -1, 0, 0
	}
	proc = -1
	for p, n := range kh.byProc {
		if n > reads || (n == reads && (proc < 0 || p < proc)) {
			proc, reads = p, n
		}
	}
	return proc, reads, kh.total
}

// Decay halves every counter and drops records that cool to zero — the
// exponential forgetting that lets the planner track a moving workload
// instead of its whole history. Call it once per planning cycle.
func (h *Heat) Decay() {
	for key, kh := range h.keys {
		kh.total = 0
		for p, n := range kh.byProc {
			n /= 2
			if n == 0 {
				delete(kh.byProc, p)
				continue
			}
			kh.byProc[p] = n
			kh.total += n
		}
		if kh.total == 0 {
			delete(h.keys, key)
		}
	}
}

// Config tunes the planner's hysteresis and budget.
type Config struct {
	// BudgetBytes bounds the record bytes migrated per cycle (<= 0 means
	// unbounded — the offline re-load baseline).
	BudgetBytes int64
	// MinReads is the heat floor: a record read fewer times than this
	// since the last decay never moves (default 16).
	MinReads int64
	// MinDominance is the share of a record's reads its dominant reader
	// must own before the record chases it (default 0.5). Together with
	// MinReads this is the hysteresis that keeps records from ping-ponging
	// between readers on workload noise.
	MinDominance float64
	// LogSize bounds the recent-decision log (default 32).
	LogSize int
}

func (c Config) withDefaults() Config {
	if c.MinReads == 0 {
		c.MinReads = 16
	}
	if c.MinDominance == 0 {
		c.MinDominance = 0.5
	}
	if c.LogSize == 0 {
		c.LogSize = 32
	}
	return c
}

// Env is the deployment surface a planning cycle consults: where records
// live now, what they cost to move, and which storage slot is "near" each
// processor (the slot whose reads that processor gets cheapest — the
// affinity the cost model and the planner must agree on).
type Env interface {
	// Primary returns key's current primary slot (-1 when unknown).
	Primary(key uint64) int
	// Replicas appends key's current placement set (primary first) to dst.
	Replicas(key uint64, dst []int) []int
	// SizeOf returns key's stored size in bytes (0 when absent).
	SizeOf(key uint64) int
	// NearSlot returns proc's affinity storage slot (-1 when none).
	NearSlot(proc int) int
	// ReplicaTarget returns the tier's replication factor.
	ReplicaTarget() int
}

// Move is one planned migration: pin Key onto the To slots (primary
// first). From, Reader, Reads and Bytes carry the decision's evidence for
// the log.
type Move struct {
	Key    uint64
	To     []int
	From   int
	Reader int
	Reads  int64
	Bytes  int64
}

// Planner owns the accumulated counters and decision log across cycles.
// Not safe for concurrent use.
type Planner struct {
	cfg      Config
	counters metrics.PlacementCounters
	log      []metrics.MoveEvent
}

// New returns a planner with cfg (zero fields take defaults).
func New(cfg Config) *Planner {
	cfg = cfg.withDefaults()
	p := &Planner{cfg: cfg}
	p.counters.BudgetBytes = cfg.BudgetBytes
	return p
}

// Plan runs one planning cycle over the accumulated heat: hot records
// whose dominant reader's near slot is not already their primary are
// proposed for migration, hottest first, until the byte budget runs out.
// The returned moves are deterministic for identical heat and env. The
// caller executes them (Executed reports each outcome back) and then
// calls heat.Decay().
func (p *Planner) Plan(h *Heat, env Env) []Move {
	p.counters.Cycles++
	r := env.ReplicaTarget()
	var cand []Move
	for key := range h.keys {
		reader, reads, total := h.Dominant(key)
		if total < p.cfg.MinReads || reader < 0 ||
			float64(reads) < p.cfg.MinDominance*float64(total) {
			p.counters.SkippedCold++
			continue
		}
		near := env.NearSlot(reader)
		if near < 0 {
			continue
		}
		cur := env.Primary(key)
		if cur == near || cur < 0 {
			continue // already where its reader wants it
		}
		size := env.SizeOf(key)
		if size == 0 {
			continue // deleted (or unreachable) since the heat accrued
		}
		// Target placement: the reader's near slot becomes the primary;
		// the current replicas fill the remaining slots so the tier keeps
		// its replication factor.
		to := make([]int, 0, r)
		to = append(to, near)
		var arr [8]int
		for _, slot := range env.Replicas(key, arr[:0]) {
			if len(to) >= r {
				break
			}
			if slot != near {
				to = append(to, slot)
			}
		}
		cand = append(cand, Move{Key: key, To: to, From: cur, Reader: reader, Reads: reads, Bytes: int64(size)})
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].Reads != cand[j].Reads {
			return cand[i].Reads > cand[j].Reads
		}
		return cand[i].Key < cand[j].Key
	})
	var picked []Move
	bounded := p.cfg.BudgetBytes > 0
	budget := p.cfg.BudgetBytes
	for _, m := range cand {
		if bounded && m.Bytes > budget {
			p.counters.SkippedBudget++
			continue
		}
		if bounded {
			budget -= m.Bytes
		}
		picked = append(picked, m)
		p.counters.Planned++
	}
	return picked
}

// Executed reports one move's outcome: ok moves advance the counters and
// enter the decision log; failed ones (the record vanished, its target
// left the tier) only count as planned.
func (p *Planner) Executed(m Move, ok bool) {
	if !ok {
		return
	}
	p.counters.Moved++
	p.counters.MovedBytes += m.Bytes
	to := -1
	if len(m.To) > 0 {
		to = m.To[0]
	}
	p.log = append(p.log, metrics.MoveEvent{
		Key: m.Key, From: m.From, To: to,
		Reader: m.Reader, Reads: m.Reads, Bytes: m.Bytes,
	})
	if over := len(p.log) - p.cfg.LogSize; over > 0 {
		p.log = append(p.log[:0], p.log[over:]...)
	}
}

// Counters returns the accumulated counters (Overrides is the caller's to
// fill — only the store knows how many pins are live).
func (p *Planner) Counters() metrics.PlacementCounters { return p.counters }

// Log returns the bounded recent-decision log, oldest first. The returned
// slice is a copy.
func (p *Planner) Log() []metrics.MoveEvent {
	return append([]metrics.MoveEvent(nil), p.log...)
}
