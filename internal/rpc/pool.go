package rpc

import (
	"context"
	"fmt"

	"sync"

	"repro/internal/query"
)

// DefaultPoolSize bounds concurrent connections per remote daemon.
const DefaultPoolSize = 8

// Pool is a bounded pool of client connections to one daemon. Calls check
// a connection out (dialing lazily when none is idle), so up to size calls
// proceed in parallel instead of serialising on a single gob stream — the
// conn-pool half of the pipelined client path. Connections broken by a
// failure, cancellation or deadline are discarded, not reused.
type Pool struct {
	addr string
	sem  chan struct{}

	mu     sync.Mutex
	idle   []*Conn
	closed bool
}

// NewPool creates a pool of at most size connections to addr (size <= 0
// means DefaultPoolSize). No connection is made until the first call.
func NewPool(addr string, size int) *Pool {
	if size <= 0 {
		size = DefaultPoolSize
	}
	return &Pool{addr: addr, sem: make(chan struct{}, size)}
}

// Addr returns the remote address.
func (p *Pool) Addr() string { return p.addr }

// Call performs one request over a pooled connection.
func (p *Pool) Call(ctx context.Context, req *Request) (Response, error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return Response{}, fmt.Errorf("rpc: %s: %w", p.addr, ctx.Err())
	}
	defer func() { <-p.sem }()
	cn, err := p.take(ctx)
	if err != nil {
		return Response{}, err
	}
	resp, err := cn.Call(ctx, req)
	p.put(cn)
	return resp, err
}

// Ping checks the remote daemon is reachable and speaking the protocol.
func (p *Pool) Ping(ctx context.Context) error {
	_, err := p.Call(ctx, &Request{Op: OpPing})
	return err
}

// take pops an idle connection or dials a new one under ctx's deadline.
func (p *Pool) take(ctx context.Context) (*Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, &remoteError{addr: p.addr, msg: "pool closed", kind: query.ErrUnavailable}
	}
	if n := len(p.idle); n > 0 {
		cn := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return cn, nil
	}
	p.mu.Unlock()
	return DialContext(ctx, p.addr)
}

// put returns a connection to the idle list, discarding broken ones.
func (p *Pool) put(cn *Conn) {
	if cn.Broken() {
		cn.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		cn.Close()
		return
	}
	p.idle = append(p.idle, cn)
	p.mu.Unlock()
}

// Close closes every idle connection and rejects future calls. Connections
// checked out by in-flight calls are closed as they are returned.
func (p *Pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, cn := range idle {
		cn.Close()
	}
}
