package rpc

import (
	"context"
	"sync"

	"repro/internal/query"
)

// DefaultPoolSize bounds the pipelined connections kept per remote daemon.
// With multiplexed framing one socket carries many in-flight calls, so a
// handful of sockets is about spreading bytes across TCP streams (and write
// locks), not about call concurrency — unlike the old checkout pool, whose
// size capped the number of concurrent calls.
const DefaultPoolSize = 4

// Pool maintains up to size pipelined connections to one daemon and
// multiplexes calls across them round-robin. Calls never check a
// connection out: any number may be in flight on each connection, so a
// slow or cancelled call neither occupies a pool slot nor poisons a shared
// socket. Connections broken by a transport failure are pruned and
// replaced lazily.
type Pool struct {
	addr string
	size int

	mu      sync.Mutex
	conns   []*Conn
	next    int
	dialing int
	closed  bool
}

// NewPool creates a pool of at most size connections to addr (size <= 0
// means DefaultPoolSize). No connection is made until the first call.
func NewPool(addr string, size int) *Pool {
	if size <= 0 {
		size = DefaultPoolSize
	}
	return &Pool{addr: addr, size: size}
}

// Addr returns the remote address.
func (p *Pool) Addr() string { return p.addr }

// Call performs one request over a pooled connection.
func (p *Pool) Call(ctx context.Context, req *Request) (Response, error) {
	var resp Response
	err := p.CallInto(ctx, req, &resp)
	return resp, err
}

// CallInto is Call decoding into a caller-owned Response, reusing its
// slice capacity (see Conn.CallInto).
func (p *Pool) CallInto(ctx context.Context, req *Request, resp *Response) error {
	cn, err := p.conn(ctx)
	if err != nil {
		return err
	}
	return cn.CallInto(ctx, req, resp)
}

// Ping checks the remote daemon is reachable and speaking the protocol.
func (p *Pool) Ping(ctx context.Context) error {
	_, err := p.Call(ctx, &Request{Op: OpPing})
	return err
}

// conn picks a live connection round-robin, pruning broken ones and
// dialing a replacement when the pool is not yet full. At most one caller
// dials at a time; everyone else multiplexes onto what exists.
func (p *Pool) conn(ctx context.Context) (*Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, &remoteError{addr: p.addr, msg: "pool closed", kind: query.ErrUnavailable}
	}
	live := p.conns[:0]
	for _, cn := range p.conns {
		if cn.Broken() {
			cn.Close()
			continue
		}
		live = append(live, cn)
	}
	p.conns = live
	if len(p.conns) > 0 && (len(p.conns)+p.dialing >= p.size || p.dialing > 0) {
		cn := p.conns[p.next%len(p.conns)]
		p.next++
		p.mu.Unlock()
		return cn, nil
	}
	p.dialing++
	p.mu.Unlock()

	cn, err := DialContext(ctx, p.addr)

	p.mu.Lock()
	p.dialing--
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	if p.closed {
		p.mu.Unlock()
		cn.Close()
		return nil, &remoteError{addr: p.addr, msg: "pool closed", kind: query.ErrUnavailable}
	}
	if len(p.conns) < p.size {
		p.conns = append(p.conns, cn)
		p.mu.Unlock()
		return cn, nil
	}
	// Concurrent dialers filled the pool first: adopt one of theirs so the
	// extra connection (and its demux goroutine) doesn't leak untracked.
	alt := p.conns[p.next%len(p.conns)]
	p.next++
	p.mu.Unlock()
	cn.Close()
	return alt, nil
}

// Close closes every connection and rejects future calls; calls in flight
// fail with query.ErrUnavailable.
func (p *Pool) Close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.closed = true
	p.mu.Unlock()
	for _, cn := range conns {
		cn.Close()
	}
}
