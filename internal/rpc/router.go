package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/metrics"
	"repro/internal/mquery"
	"repro/internal/placement"
	"repro/internal/query"
	"repro/internal/router"
	"repro/internal/topology"
)

// RouterServer is the networked query router: it accepts client query
// batches, asks its routing strategy for a destination per query, forwards
// each sub-batch to its processor over a pooled connection (carrying the
// client's deadline) and relays the answers. Per-processor in-flight
// counts are the live load signal for the load-balanced distance (Eq 3/7).
//
// Membership is elastic: processors self-register at runtime with OpJoin
// (the router dials back and verifies them before admitting), leave
// cleanly with OpDrain (no new work; the member departs once its in-flight
// queries finish on the old view), and every epoch change re-derives the
// topology-aware strategies' assignments. Slots are stable and never
// reused, so the per-slot accounting stays aligned across epochs.
//
// The router keeps the same per-processor accounting as the virtual-time
// engine (assigned/completed counts, routing-decision-time and queue-depth
// histograms) and serves it as a metrics.Snapshot on OpStats, so local and
// networked clients report through one structure.
type RouterServer struct {
	ln         net.Listener
	ct         connTracker
	policyName string
	poolSize   int

	// emb is the coordinate table KNearest re-ranks against (and the
	// embedding the strategy routes by, when it is embedding-based). Nil
	// means KNearest queries answer query.ErrUnavailable; embErr carries
	// the provider failure that caused a degraded start, if any. Both are
	// set at construction and never change.
	emb    *embed.Embedding
	embErr error

	mu         sync.Mutex // guards the topology, pools and counters below
	topo       *topology.Tracker
	view       topology.View
	pools      []*Pool // slot-indexed; nil once a member has left
	strategy   router.Strategy
	statsObs   router.StatsObserver // strategy's optional feedback hook, nil if absent
	topoAware  router.TopologyAware // strategy's optional topology hook, nil if absent
	inflight   []int
	assigned   []int64                 // queries the strategy sent to each slot
	completed  []int64                 // queries each slot answered successfully
	diverted   []int64                 // queries re-routed away from a non-active slot
	lastCache  []metrics.CacheCounters // latest cache counters piggybacked per slot
	routing    metrics.Histogram       // wall-clock routing decision time (ns)
	depth      metrics.Histogram       // destination in-flight depth at each decision
	reassigned int64
	events     []metrics.EpochEvent

	// The storage tier's membership, tracked for observability: storage
	// shards self-register (OpJoin, Tier "storage") and deregister, each
	// transition bumping the storage epoch; Snapshot polls the members for
	// shard counters. The router never routes storage reads — placement is
	// client-side in the processors — so this view is descriptive, which
	// is exactly what -topology and /statsz need.
	storageTopo     *topology.Tracker
	storageView     topology.View
	storagePools    []*Pool // storage-slot-indexed; nil once a member left
	storageEvents   []metrics.EpochEvent
	storageReplicas int
	// storageJoinVer holds the durable version watermark each storage
	// shard announced on its latest (re)join — the rejoin-warm handshake:
	// 0 means the shard joined cold (or runs without a WAL), anything
	// higher means it recovered that many durable records locally and
	// re-replication only needs to top up the delta. Slot-indexed,
	// guarded by mu.
	storageJoinVer []uint64

	// Online mutations + adaptive placement. The router is the single
	// writer: mutMu serialises mutations and migration cycles, so every
	// record rewrite is a clean read-modify-write and migration never
	// races a write. g is the loaded dataset, used only to intern mutation
	// labels against the same table the loader encoded records with (nil =
	// only unlabelled mutations are accepted). overrides is the
	// authoritative placement-pin table (guarded by mu; complete copies
	// are pushed to the processors' storage clients on every change).
	// storageBase and storageSlots freeze the rendezvous placement domain
	// at the seeded shard count — exactly the domain the processors'
	// storage clients hash over, which late-joining shards are not part
	// of. planner and heat (guarded by mutMu) exist only when
	// RouterConfig.AdaptivePlacement is set; placementEvery > 0 runs a
	// cycle automatically after that many completed queries.
	g              *graph.Graph
	mutMu          sync.Mutex
	mutations      atomic.Int64
	overrides      map[uint64][]int
	storageBase    int
	storageSlots   []int
	planner        *placement.Planner
	heat           *placement.Heat
	placementEvery int
	sinceTick      atomic.Int64
	ticking        atomic.Bool

	requests atomic.Int64
	queries  atomic.Int64
}

// RouterConfig configures a networked router.
type RouterConfig struct {
	// ProcessorAddrs lists the initial processing tier; more processors can
	// join at runtime with OpJoin.
	ProcessorAddrs []string
	// Strategy decides destinations; nil defaults to next-ready.
	Strategy router.Strategy
	// PolicyName is the configured policy's registered name, reported in
	// stats snapshots (defaults to the strategy's self-reported name).
	PolicyName string
	// PoolSize bounds connections per processor (0 = DefaultPoolSize).
	PoolSize int
	// StorageAddrs optionally seeds the router's storage view (for
	// observability); more shards can join at runtime with OpJoin. Seeded
	// shards are ping-verified like processors.
	StorageAddrs []string
	// StorageReplicas is the deployment's storage replication factor,
	// reported in stats snapshots (0 reads as 1).
	StorageReplicas int
	// Graph is the loaded dataset, used to intern mutation labels against
	// the same label table the loader encoded records with. Routers
	// started without it reject mutations that carry a non-empty label.
	Graph *graph.Graph
	// AdaptivePlacement enables the workload-adaptive placement subsystem:
	// the router periodically drains per-record heat from the processors,
	// plans bounded migrations of hot records toward their dominant
	// reader's near shard, and executes each as copy → override push →
	// drop. Requires StorageAddrs.
	AdaptivePlacement bool
	// PlacementBudget bounds the bytes migrated per planning cycle
	// (<= 0 = unbounded).
	PlacementBudget int64
	// PlacementEvery runs one planning cycle automatically after that many
	// completed queries (0 = only explicit OpMigrate calls).
	PlacementEvery int
	// PlacementMinReads is the planner's hysteresis floor (0 = default).
	PlacementMinReads int64
	// Embedding is the coordinate table KNearest queries re-rank against —
	// the one BuildStrategyEmbed surfaces, or a materialised
	// embed.Embedder. Nil routers reject KNearest with
	// query.ErrUnavailable.
	Embedding *embed.Embedding
	// EmbedErr records why a configured embedding provider failed to
	// materialise when the router starts degraded anyway (the policy did
	// not need coordinates): KNearest rejections carry it for diagnosis.
	EmbedErr error
}

// NewRouterServer starts a router on addr.
func NewRouterServer(addr string, cfg RouterConfig) (*RouterServer, error) {
	if len(cfg.ProcessorAddrs) == 0 {
		return nil, fmt.Errorf("rpc: router needs at least one processor")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = router.NewNextReady()
	}
	if cfg.PolicyName == "" {
		cfg.PolicyName = cfg.Strategy.Name()
	}
	n := len(cfg.ProcessorAddrs)
	r := &RouterServer{
		policyName: cfg.PolicyName,
		poolSize:   cfg.PoolSize,
		emb:        cfg.Embedding,
		embErr:     cfg.EmbedErr,
		topo:       topology.NewTrackerAddrs(cfg.ProcessorAddrs),
		strategy:   cfg.Strategy,
		inflight:   make([]int, n),
		assigned:   make([]int64, n),
		completed:  make([]int64, n),
		diverted:   make([]int64, n),
		lastCache:  make([]metrics.CacheCounters, n),
	}
	r.view = r.topo.View()
	r.storageReplicas = cfg.StorageReplicas
	if r.storageReplicas == 0 {
		r.storageReplicas = 1
	}
	r.storageTopo = topology.NewTierTrackerAddrs(topology.TierStorage, cfg.StorageAddrs)
	r.storageView = r.storageTopo.View()
	r.g = cfg.Graph
	r.overrides = make(map[uint64][]int)
	r.storageBase = len(cfg.StorageAddrs)
	r.storageSlots = make([]int, r.storageBase)
	for i := range r.storageSlots {
		r.storageSlots[i] = i
	}
	if cfg.AdaptivePlacement {
		if r.storageBase == 0 {
			return nil, fmt.Errorf("rpc: adaptive placement needs the router's storage view seeded (StorageAddrs)")
		}
		r.planner = placement.New(placement.Config{BudgetBytes: cfg.PlacementBudget, MinReads: cfg.PlacementMinReads})
		r.heat = placement.NewHeat()
		r.placementEvery = cfg.PlacementEvery
	}
	r.statsObs, _ = cfg.Strategy.(router.StatsObserver)
	r.topoAware, _ = cfg.Strategy.(router.TopologyAware)
	if r.topoAware != nil {
		r.topoAware.SetTopology(r.view)
	}
	for _, a := range cfg.ProcessorAddrs {
		p := NewPool(a, cfg.PoolSize)
		if err := p.Ping(context.Background()); err != nil {
			p.Close()
			r.closePools()
			return nil, err
		}
		r.pools = append(r.pools, p)
	}
	for _, a := range cfg.StorageAddrs {
		p := NewPool(a, cfg.PoolSize)
		if err := p.Ping(context.Background()); err != nil {
			p.Close()
			r.closePools()
			return nil, err
		}
		r.storagePools = append(r.storagePools, p)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		r.closePools()
		return nil, fmt.Errorf("rpc: router listen: %w", err)
	}
	r.ln = ln
	go serve(ln, r.handle, &r.ct)
	return r, nil
}

// Addr returns the router's listen address.
func (r *RouterServer) Addr() string { return r.ln.Addr().String() }

// Close stops the router.
func (r *RouterServer) Close() error {
	r.mu.Lock()
	pools := append([]*Pool(nil), r.pools...)
	pools = append(pools, r.storagePools...)
	r.mu.Unlock()
	for _, p := range pools {
		if p != nil {
			p.Close()
		}
	}
	err := r.ln.Close()
	r.ct.closeAll()
	return err
}

func (r *RouterServer) closePools() {
	for _, p := range r.pools {
		if p != nil {
			p.Close()
		}
	}
	for _, p := range r.storagePools {
		if p != nil {
			p.Close()
		}
	}
}

// Epoch returns the router's current topology epoch.
func (r *RouterServer) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view.Epoch
}

// View returns the router's current topology view.
func (r *RouterServer) View() topology.View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return topology.View{Epoch: r.view.Epoch, Members: append([]topology.Member(nil), r.view.Members...)}
}

// applyViewLocked moves the router to a newer view: slot arrays grow for
// joiners, the strategy's topology hook fires, the transition is logged,
// and departed members with no in-flight work have their pools closed.
// Caller holds r.mu.
func (r *RouterServer) applyViewLocked(v topology.View) {
	if v.Epoch <= r.view.Epoch {
		return
	}
	for len(r.inflight) < v.Slots() {
		r.inflight = append(r.inflight, 0)
		r.assigned = append(r.assigned, 0)
		r.completed = append(r.completed, 0)
		r.diverted = append(r.diverted, 0)
		r.lastCache = append(r.lastCache, metrics.CacheCounters{})
		r.pools = append(r.pools, nil)
	}
	d := topology.DiffViews(r.view, v)
	ev := metrics.EpochEvent{Tier: "proc", Epoch: v.Epoch, Joined: d.Joined, Left: d.Left, Failed: d.Failed, Revived: d.Revived}
	for _, slot := range d.LeftSlots {
		// In-flight queries drain on the old view; they are the networked
		// analogue of the virtual-time router's requeued backlog.
		ev.Reassigned += int64(r.inflight[slot])
	}
	r.view = v
	if r.topoAware != nil {
		r.topoAware.SetTopology(v)
	}
	for slot := range r.pools {
		if v.Status(slot) == topology.Left && r.pools[slot] != nil && r.inflight[slot] == 0 {
			go r.pools[slot].Close()
			r.pools[slot] = nil
		}
	}
	r.reassigned += ev.Reassigned
	r.events = append(r.events, ev)
	if len(r.events) > topology.EpochLogCap {
		r.events = r.events[len(r.events)-topology.EpochLogCap:]
	}
}

func (r *RouterServer) handle(ctx context.Context, req *Request) Response {
	r.requests.Add(1)
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpStats:
		snap, err := r.Snapshot(ctx)
		if err != nil {
			return errorResponse(err)
		}
		return Response{OK: true, Epoch: snap.Epoch, Stats: &Stats{Role: "router", Requests: r.requests.Load(), Snapshot: snap}}
	case OpJoin:
		if req.Tier == "storage" {
			return r.joinStorage(ctx, req.Addr, req.Version)
		}
		return r.join(ctx, req.Addr)
	case OpDrain:
		if req.Tier == "storage" {
			return r.drainStorage(req)
		}
		return r.drain(req)
	case OpExecute:
		if req.Exec == nil || len(req.Exec.Queries) == 0 {
			return errorResponse(fmt.Errorf("%w: execute request carries no queries", query.ErrBadQuery))
		}
		return r.execute(ctx, req.Exec)
	case OpMutate:
		return r.mutate(ctx, req.Muts)
	case OpMigrate:
		return r.migrate(ctx)
	}
	return errorResponse(fmt.Errorf("router: unknown op %q", req.Op))
}

// join admits a processor into the running deployment: the router dials
// back to the advertised address and verifies it answers before bumping
// the epoch, so a bad address never becomes a member. Joins are
// idempotent per address.
func (r *RouterServer) join(ctx context.Context, addr string) Response {
	if addr == "" {
		return errorResponse(fmt.Errorf("%w: join request carries no address", query.ErrBadQuery))
	}
	if slot := r.topo.Lookup(addr); slot >= 0 {
		r.mu.Lock()
		epoch := r.view.Epoch
		r.mu.Unlock()
		return Response{OK: true, Proc: slot, Epoch: epoch}
	}
	p := NewPool(addr, r.poolSize)
	if err := p.Ping(ctx); err != nil {
		p.Close()
		return errorResponse(fmt.Errorf("join %s: %w", addr, err))
	}
	// Hand the joiner the current placement pins before it can be routed
	// to: a migrated key must never be read at its baseline location. (A
	// migration racing this join may still add a pin between the push and
	// the admit below; its own post-move push fans out to every admitted
	// member, so the window is the admit itself — and the migration holds
	// the drop back until every push acked.)
	if err := r.pushOverridesTo(ctx, p); err != nil {
		p.Close()
		return errorResponse(fmt.Errorf("join %s: placement push: %w", addr, err))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Re-check under the lock: a concurrent join of the same address wins.
	// Only an Active member counts — a Draining/Down slot at this address
	// is on its way out, and the (re)joining processor must get a fresh
	// slot rather than one about to become Left.
	for _, m := range r.view.Members {
		if m.Addr == addr && m.Status == topology.Active {
			go p.Close()
			return Response{OK: true, Proc: m.Slot, Epoch: r.view.Epoch}
		}
	}
	slot, v := r.topo.Join(addr)
	r.applyViewLocked(v)
	r.pools[slot] = p
	return Response{OK: true, Proc: slot, Epoch: v.Epoch}
}

// logStorageLocked records a storage-tier transition in the bounded
// tier-tagged event log. Caller holds r.mu.
func (r *RouterServer) logStorageLocked(v topology.View) {
	d := topology.DiffViews(r.storageView, v)
	r.storageView = v
	r.storageEvents = append(r.storageEvents, metrics.EpochEvent{
		Tier: "storage", Epoch: v.Epoch,
		Joined: d.Joined, Left: d.Left, Failed: d.Failed, Revived: d.Revived,
	})
	if len(r.storageEvents) > topology.EpochLogCap {
		r.storageEvents = r.storageEvents[len(r.storageEvents)-topology.EpochLogCap:]
	}
}

// joinStorage admits a storage shard into the router's storage view after
// dialling back to verify it answers. Idempotent per address; a rejoin at
// a known address refreshes the shard's announced durable version (the
// rejoin-warm handshake — a shard that crashed and restarted over its
// local WAL re-announces how warm it came back).
func (r *RouterServer) joinStorage(ctx context.Context, addr string, version uint64) Response {
	if addr == "" {
		return errorResponse(fmt.Errorf("%w: storage join request carries no address", query.ErrBadQuery))
	}
	if slot := r.storageTopo.Lookup(addr); slot >= 0 {
		r.mu.Lock()
		r.setStorageJoinVerLocked(slot, version)
		epoch := r.storageView.Epoch
		r.mu.Unlock()
		return Response{OK: true, Proc: slot, Epoch: epoch}
	}
	p := NewPool(addr, r.poolSize)
	if err := p.Ping(ctx); err != nil {
		p.Close()
		return errorResponse(fmt.Errorf("storage join %s: %w", addr, err))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.storageView.Members {
		if m.Addr == addr && m.Status == topology.Active {
			go p.Close()
			r.setStorageJoinVerLocked(m.Slot, version)
			return Response{OK: true, Proc: m.Slot, Epoch: r.storageView.Epoch}
		}
	}
	slot, v := r.storageTopo.Join(addr)
	r.logStorageLocked(v)
	for len(r.storagePools) < v.Slots() {
		r.storagePools = append(r.storagePools, nil)
	}
	r.storagePools[slot] = p
	r.setStorageJoinVerLocked(slot, version)
	return Response{OK: true, Proc: slot, Epoch: v.Epoch}
}

// setStorageJoinVerLocked records the durable version a storage shard
// announced when joining slot. Caller holds r.mu.
func (r *RouterServer) setStorageJoinVerLocked(slot int, version uint64) {
	for len(r.storageJoinVer) <= slot {
		r.storageJoinVer = append(r.storageJoinVer, 0)
	}
	r.storageJoinVer[slot] = version
}

// drainStorage removes a storage shard from the view (membership only —
// over TCP the shard's replicas are not copied off; reads fail over to
// the keys' surviving replicas).
func (r *RouterServer) drainStorage(req *Request) Response {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot := req.Proc
	if req.Addr != "" {
		slot = -1
		for _, m := range r.storageView.Members {
			if m.Addr != req.Addr || m.Status == topology.Left {
				continue
			}
			if slot < 0 || m.Status == topology.Active {
				slot = m.Slot
			}
		}
		if slot < 0 {
			return errorResponse(fmt.Errorf("%w: no storage member at %s", query.ErrBadQuery, req.Addr))
		}
	}
	v, err := r.storageTopo.Leave(slot)
	if err != nil {
		return errorResponse(fmt.Errorf("%w: %v", query.ErrBadQuery, err))
	}
	r.logStorageLocked(v)
	if slot < len(r.storagePools) && r.storagePools[slot] != nil {
		go r.storagePools[slot].Close()
		r.storagePools[slot] = nil
	}
	return Response{OK: true, Proc: slot, Epoch: v.Epoch}
}

// drain begins a member's clean departure: Active→Draining immediately
// (no new work), then Draining→Left once its in-flight queries finish —
// right away when it is already idle, otherwise from finish().
func (r *RouterServer) drain(req *Request) Response {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot := req.Proc
	if req.Addr != "" {
		// Prefer the Active member at this address; an old Draining/Down
		// slot may share it while on its way out.
		slot = -1
		for _, m := range r.view.Members {
			if m.Addr != req.Addr || m.Status == topology.Left {
				continue
			}
			if slot < 0 || m.Status == topology.Active {
				slot = m.Slot
			}
		}
		if slot < 0 {
			return errorResponse(fmt.Errorf("%w: no member at %s", query.ErrBadQuery, req.Addr))
		}
	}
	v, err := r.topo.Drain(slot)
	if err != nil {
		return errorResponse(fmt.Errorf("%w: %v", query.ErrBadQuery, err))
	}
	r.applyViewLocked(v)
	if r.inflight[slot] == 0 {
		if v2, err := r.topo.Leave(slot); err == nil {
			r.applyViewLocked(v2)
		}
	}
	return Response{OK: true, Proc: slot, Epoch: r.view.Epoch}
}

// execute routes every query of the batch, groups them by destination
// processor and forwards the per-processor sub-batches concurrently, so a
// pipelined client pays one router round trip for the whole batch. The
// whole batch is routed under one epoch, stamped on the response;
// sub-batches already forwarded keep draining on that view even if the
// topology moves mid-flight.
func (r *RouterServer) execute(ctx context.Context, ex *ExecRequest) Response {
	for _, q := range ex.Queries {
		if err := q.Validate(); err != nil {
			return errorResponse(err)
		}
	}
	for _, q := range ex.Queries {
		if q.Type.MultiAnchor() {
			return r.executeMixed(ctx, ex)
		}
	}
	return r.executeClassic(ctx, ex)
}

// executeMixed handles a batch containing multi-anchor queries: each one
// runs through the wave machinery, the single-seed remainder goes through
// the classic batch path, and the results are reassembled positionally.
func (r *RouterServer) executeMixed(ctx context.Context, ex *ExecRequest) Response {
	out := Response{OK: true, Epoch: r.Epoch(), Results: make([]query.Result, len(ex.Queries))}
	var classic []int
	for i, q := range ex.Queries {
		if !q.Type.MultiAnchor() {
			classic = append(classic, i)
			continue
		}
		res, epoch, err := r.executeMultiQuery(ctx, q, ex.Deadline)
		if err != nil {
			return errorResponse(err)
		}
		out.Results[i] = res
		if epoch > out.Epoch {
			out.Epoch = epoch
		}
	}
	if len(classic) > 0 {
		sub := &ExecRequest{Queries: make([]query.Query, len(classic)), Deadline: ex.Deadline}
		for j, i := range classic {
			sub.Queries[j] = ex.Queries[i]
		}
		resp := r.executeClassic(ctx, sub)
		if resp.Err != "" {
			return resp
		}
		for j, i := range classic {
			out.Results[i] = resp.Results[j]
		}
		if resp.Epoch > out.Epoch {
			out.Epoch = resp.Epoch
		}
	}
	return out
}

// routeScratch recycles the per-batch routing buffers (and the fast-path
// request envelope) across executeClassic calls. The Response is never
// pooled: its slices are returned to the caller.
type routeScratch struct {
	dest  []int
	loads []int
	pools []*Pool
	req   Request
}

var routePool = sync.Pool{New: func() any { return new(routeScratch) }}

func (r *RouterServer) executeClassic(ctx context.Context, ex *ExecRequest) Response {
	sc := routePool.Get().(*routeScratch)
	defer routePool.Put(sc)
	// Routing decisions under the current in-flight load (one strategy
	// lock for the batch; the strategy is inherently sequential).
	if cap(sc.dest) < len(ex.Queries) {
		sc.dest = make([]int, len(ex.Queries))
	}
	dest := sc.dest[:len(ex.Queries)]
	r.mu.Lock()
	if r.view.NumActive() == 0 {
		r.mu.Unlock()
		return errorResponse(fmt.Errorf("%w: no active processors", query.ErrUnavailable))
	}
	epoch := r.view.Epoch
	if cap(sc.loads) < len(r.inflight) {
		sc.loads = make([]int, len(r.inflight))
	}
	loads := sc.loads[:len(r.inflight)]
	for i, q := range ex.Queries {
		for p := range r.inflight {
			if r.view.Status(p) == topology.Left {
				loads[p] = 1 << 30
			} else {
				loads[p] = r.inflight[p]
			}
		}
		t0 := time.Now()
		p := r.strategy.Pick(q, loads)
		if p < 0 || p >= len(r.pools) {
			p = 0
		}
		if !r.view.IsActive(p) || r.pools[p] == nil {
			r.diverted[p]++
			p = r.divertLocked(q)
		}
		r.strategy.Observe(q, p)
		r.routing.Observe(time.Since(t0).Nanoseconds())
		r.depth.Observe(int64(r.inflight[p]))
		r.assigned[p]++
		r.inflight[p]++
		dest[i] = p
	}
	pools := append(sc.pools[:0], r.pools...)
	sc.pools = pools
	r.mu.Unlock()

	// Fast path — the whole batch (typically a single query) lands on one
	// processor: forward the request as-is, no fan-out machinery.
	single := true
	for _, p := range dest[1:] {
		if p != dest[0] {
			single = false
			break
		}
	}
	if single {
		p := dest[0]
		sc.req = Request{Op: OpExecute, Exec: ex}
		resp, err := pools[p].Call(ctx, &sc.req)
		r.finish(p, len(dest), &resp, err)
		if err != nil {
			return errorResponse(err)
		}
		resp.ProcCache = nil // router-internal feedback, not client payload
		resp.Epoch = epoch
		return resp
	}

	// Group the batch by destination, remembering original positions.
	groups := make(map[int][]int, len(pools))
	for i, p := range dest {
		groups[p] = append(groups[p], i)
	}

	type procResult struct {
		proc    int
		indices []int
		resp    Response
		err     error
	}
	results := make(chan procResult, len(groups))
	for p, indices := range groups {
		go func(p int, indices []int) {
			sub := &ExecRequest{Queries: make([]query.Query, len(indices)), Deadline: ex.Deadline}
			for j, i := range indices {
				sub.Queries[j] = ex.Queries[i]
			}
			resp, err := pools[p].Call(ctx, &Request{Op: OpExecute, Exec: sub})
			results <- procResult{proc: p, indices: indices, resp: resp, err: err}
		}(p, indices)
	}

	out := Response{OK: true, Epoch: epoch, Results: make([]query.Result, len(ex.Queries))}
	var firstErr error
	for range groups {
		pr := <-results
		r.finish(pr.proc, len(pr.indices), &pr.resp, pr.err)
		if pr.err != nil {
			if firstErr == nil {
				firstErr = pr.err
			}
			continue
		}
		for j, i := range pr.indices {
			out.Results[i] = pr.resp.Results[j]
		}
	}
	if firstErr != nil {
		return errorResponse(firstErr)
	}
	return out
}

// divertLocked picks the best active slot for q: the closest one when the
// strategy is distance-aware, the least in-flight otherwise. Caller holds
// r.mu and has checked at least one member is active.
func (r *RouterServer) divertLocked(q query.Query) int {
	da, aware := r.strategy.(router.DistanceAware)
	best, bestScore := -1, 0.0
	for p := range r.pools {
		if !r.view.IsActive(p) || r.pools[p] == nil {
			continue
		}
		var score float64
		if aware {
			score = da.DistanceTo(q, p)
		} else {
			score = float64(r.inflight[p])
		}
		if best < 0 || score < bestScore {
			best, bestScore = p, score
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// executeMultiQuery runs one multi-anchor query as waves of per-anchor
// subtasks fanned out to the processors. Partial results stream back and
// are merged as each processor answers; for BoundedReach, a hit on the
// target cancels the wave's outstanding subtask calls mid-stream (their
// results cannot change the answer) and no further wave launches.
func (r *RouterServer) executeMultiQuery(ctx context.Context, q query.Query, deadline int64) (query.Result, uint64, error) {
	if q.Type == query.KNearest {
		// Ranking needs the coordinate table; fail before issuing subtasks.
		if err := r.knnReady(); err != nil {
			return query.Result{}, 0, err
		}
	}
	var resolve mquery.LabelResolver
	if r.g != nil {
		resolve = r.g.LabelID
	}
	pl, err := mquery.NewPlan(q, resolve)
	if err != nil {
		return query.Result{}, 0, err
	}
	m := mquery.NewMerger(pl)
	epoch := r.Epoch()
	wave := pl.Subtasks
	for len(wave) > 0 && !m.Found() {
		ep, err := r.runWave(ctx, q, wave, deadline, m)
		if ep > 0 {
			epoch = ep
		}
		if err != nil {
			return query.Result{}, epoch, err
		}
		wave = m.NextWave()
	}
	// One client-visible query completed (subtasks were internal work
	// units — finishSubtasks leaves these counters alone).
	r.queries.Add(1)
	r.maybeTick(1)
	res := m.Result()
	if pl.Kind == mquery.KindKNN {
		// Exact re-rank at the router: the processors only generated the
		// hop-bounded candidate ball; the embedding lives here.
		res = query.KNNResult(r.emb, q, m.Candidates())
	}
	return res, epoch, nil
}

// knnReady reports whether this router can answer KNearest queries: it
// holds an embedding. The error is typed query.ErrUnavailable (a missing
// or degraded embedding is a service condition, not a bad query) and
// carries the provider failure that caused a degraded start, if any.
func (r *RouterServer) knnReady() error {
	if r.emb != nil {
		return nil
	}
	if r.embErr != nil {
		return fmt.Errorf("rpc: k-nearest needs an embedding, provider failed: %v: %w", r.embErr, query.ErrUnavailable)
	}
	return fmt.Errorf("rpc: k-nearest needs an embedding (policy %q routes without one and no provider is configured): %w",
		r.policyName, query.ErrUnavailable)
}

// runWave routes one wave of subtasks through the strategy's multi-anchor
// hook, fans the per-processor groups out concurrently, and absorbs the
// partial results as they stream back.
func (r *RouterServer) runWave(ctx context.Context, q query.Query, wave []mquery.Subtask, deadline int64, m *mquery.Merger) (uint64, error) {
	anchors := make([]graph.NodeID, len(wave))
	for i, st := range wave {
		anchors[i] = st.Anchor
	}

	r.mu.Lock()
	if r.view.NumActive() == 0 {
		r.mu.Unlock()
		return 0, fmt.Errorf("%w: no active processors", query.ErrUnavailable)
	}
	epoch := r.view.Epoch
	loads := make([]int, len(r.inflight))
	for p := range r.inflight {
		if r.view.Status(p) == topology.Left {
			loads[p] = 1 << 30
		} else {
			loads[p] = r.inflight[p]
		}
	}
	t0 := time.Now()
	picks := router.PickAnchors(r.strategy, q, anchors, loads)
	perPick := time.Since(t0).Nanoseconds() / int64(len(picks))
	for i := range picks {
		q2 := q
		q2.Node = anchors[i]
		p := picks[i]
		if p < 0 || p >= len(r.pools) {
			p = 0
		}
		if !r.view.IsActive(p) || r.pools[p] == nil {
			r.diverted[p]++
			p = r.divertLocked(q2)
		}
		picks[i] = p
		r.strategy.Observe(q2, p)
		r.routing.Observe(perPick)
		r.depth.Observe(int64(r.inflight[p]))
		r.assigned[p]++
		r.inflight[p]++
	}
	pools := append([]*Pool(nil), r.pools...)
	r.mu.Unlock()

	groups := make(map[int][]int, len(pools))
	for i, p := range picks {
		groups[p] = append(groups[p], i)
	}

	// The wave context lets an early BoundedReach success cancel sibling
	// subtask calls mid-stream.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type procResult struct {
		proc    int
		indices []int
		resp    Response
		err     error
	}
	results := make(chan procResult, len(groups))
	for p, indices := range groups {
		go func(p int, indices []int) {
			sub := &ExecRequest{Subtasks: make([]mquery.Subtask, len(indices)), Deadline: deadline}
			for j, i := range indices {
				sub.Subtasks[j] = wave[i]
			}
			resp, err := pools[p].Call(wctx, &Request{Op: OpExecute, Exec: sub})
			results <- procResult{proc: p, indices: indices, resp: resp, err: err}
		}(p, indices)
	}

	var firstErr error
	for range groups {
		pr := <-results
		r.finishSubtasks(pr.proc, len(pr.indices), &pr.resp, pr.err)
		if m.Found() {
			// Answer already known: late partials are redundant, and late
			// errors are expected — we cancelled those calls ourselves.
			continue
		}
		if pr.err != nil {
			if firstErr == nil {
				firstErr = pr.err
			}
			continue
		}
		if len(pr.resp.Partials) != len(pr.indices) {
			if firstErr == nil {
				firstErr = fmt.Errorf("rpc: processor %d answered %d partials for %d subtasks",
					pr.proc, len(pr.resp.Partials), len(pr.indices))
			}
			continue
		}
		for _, part := range pr.resp.Partials {
			if err := m.Absorb(part); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			if m.Found() {
				cancel() // mid-stream: abort the wave's outstanding calls
				break
			}
		}
	}
	if m.Found() {
		return epoch, nil
	}
	return epoch, firstErr
}

// finishSubtasks settles the accounting for n completed subtasks on
// processor p. It mirrors finish — in-flight load drops, cache counters
// feed the StatsObserver, a draining member may complete its departure —
// but does not advance the client-visible query counters: subtasks are
// routed work units inside one query, not queries.
func (r *RouterServer) finishSubtasks(p, n int, resp *Response, err error) {
	r.mu.Lock()
	r.inflight[p] -= n
	if err == nil {
		r.completed[p] += int64(n)
		if resp.ProcCache != nil {
			r.lastCache[p] = *resp.ProcCache
			if r.statsObs != nil {
				var agg metrics.CacheCounters
				for i := range r.lastCache {
					agg.Add(r.lastCache[i])
				}
				r.statsObs.ObserveStats(agg)
			}
		}
	}
	if r.inflight[p] == 0 && r.view.Status(p) == topology.Draining {
		if v, lerr := r.topo.Leave(p); lerr == nil {
			r.applyViewLocked(v)
		}
	}
	r.mu.Unlock()
}

// finish settles the accounting for a completed sub-batch of n queries on
// processor p: the in-flight load drops, successful completions advance
// the per-processor counters, the processor's piggybacked cache counters
// feed the strategy's optional StatsObserver hook — the live signal
// adaptive strategies hot-swap on — and a draining member whose last
// in-flight query just finished completes its departure.
func (r *RouterServer) finish(p, n int, resp *Response, err error) {
	r.mu.Lock()
	r.inflight[p] -= n
	if err == nil {
		r.completed[p] += int64(n)
		if resp.ProcCache != nil {
			r.lastCache[p] = *resp.ProcCache
			if r.statsObs != nil {
				var agg metrics.CacheCounters
				for i := range r.lastCache {
					agg.Add(r.lastCache[i])
				}
				r.statsObs.ObserveStats(agg)
			}
		}
	}
	if r.inflight[p] == 0 && r.view.Status(p) == topology.Draining {
		if v, lerr := r.topo.Leave(p); lerr == nil {
			r.applyViewLocked(v)
		}
	}
	r.mu.Unlock()
	if err == nil {
		r.queries.Add(int64(n))
		r.maybeTick(n)
	}
}

// maybeTick runs one background migration cycle once placementEvery
// completed queries accumulate. At most one cycle runs at a time; the
// counter resets when a cycle is claimed, so bursts do not queue cycles.
func (r *RouterServer) maybeTick(n int) {
	if r.planner == nil || r.placementEvery <= 0 {
		return
	}
	if r.sinceTick.Add(int64(n)) < int64(r.placementEvery) || !r.ticking.CompareAndSwap(false, true) {
		return
	}
	r.sinceTick.Store(0)
	go func() {
		defer r.ticking.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), migrateTimeout)
		defer cancel()
		r.migrate(ctx)
	}()
}

// Snapshot assembles the system-wide observability snapshot — the same
// metrics.Snapshot structure the virtual-time engine reports — polling
// each live processor's OpStats for fresh cache counters (falling back to
// the last piggybacked counters for processors that do not answer). The
// whole snapshot is assembled under one lock, so it never mixes epochs.
func (r *RouterServer) Snapshot(ctx context.Context) (*metrics.Snapshot, error) {
	r.mu.Lock()
	pools := append([]*Pool(nil), r.pools...)
	storagePools := append([]*Pool(nil), r.storagePools...)
	r.mu.Unlock()

	type procStats struct {
		i  int
		cc *metrics.CacheCounters
	}
	results := make(chan procStats, len(pools))
	polled := 0
	for i := range pools {
		if pools[i] == nil {
			continue
		}
		polled++
		go func(i int, pool *Pool) {
			var cc *metrics.CacheCounters
			if resp, err := pool.Call(ctx, &Request{Op: OpStats}); err == nil && resp.Stats != nil {
				cc = resp.Stats.Cache
			}
			results <- procStats{i, cc}
		}(i, pools[i])
	}
	fresh := make([]*metrics.CacheCounters, len(pools))
	for k := 0; k < polled; k++ {
		ps := <-results
		fresh[ps.i] = ps.cc
	}

	// Poll the storage members' shard counters the same way (members that
	// do not answer keep zero counters but still report their status).
	type shardStats struct {
		i  int
		st *Stats
	}
	sresults := make(chan shardStats, len(storagePools))
	spolled := 0
	for i := range storagePools {
		if storagePools[i] == nil {
			continue
		}
		spolled++
		go func(i int, pool *Pool) {
			var st *Stats
			if resp, err := pool.Call(ctx, &Request{Op: OpStats}); err == nil && resp.Stats != nil {
				st = resp.Stats
			}
			sresults <- shardStats{i, st}
		}(i, storagePools[i])
	}
	shardFresh := make([]*Stats, len(storagePools))
	for k := 0; k < spolled; k++ {
		ss := <-sresults
		shardFresh[ss.i] = ss.st
	}

	// Planner state is guarded by mutMu, which the mutate path takes
	// before mu — so read it before taking mu, never while holding it.
	var placementCounters metrics.PlacementCounters
	var placementLog []metrics.MoveEvent
	if r.planner != nil {
		r.mutMu.Lock()
		placementCounters = r.planner.Counters()
		placementLog = r.planner.Log()
		r.mutMu.Unlock()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &metrics.Snapshot{
		Transport:    "tcp",
		Policy:       r.policyName,
		Strategy:     r.strategy.Name(),
		Processors:   r.view.NumActive(),
		Epoch:        r.view.Epoch,
		Queries:      r.queries.Load(),
		Reassigned:   r.reassigned,
		Epochs:       append([]metrics.EpochEvent(nil), r.events...),
		RoutingNanos: r.routing.Summary(),
		QueueDepth:   r.depth.Summary(),
	}
	snap.Mutations = r.mutations.Load()
	placementCounters.Overrides = int64(len(r.overrides))
	if r.planner != nil {
		snap.Placement = placementCounters
		snap.PlacementLog = placementLog
	}
	for i := range r.inflight {
		if i < len(fresh) && fresh[i] != nil {
			r.lastCache[i] = *fresh[i]
		}
		cc := r.lastCache[i]
		var addr string
		if i < len(r.view.Members) {
			addr = r.view.Members[i].Addr
		}
		pc := metrics.ProcCounters{
			Proc:       i,
			Status:     r.view.Status(i).String(),
			Addr:       addr,
			Assigned:   r.assigned[i],
			Executed:   r.completed[i],
			Diverted:   r.diverted[i],
			QueueDepth: int64(r.inflight[i]),
			Cache:      cc,
		}
		snap.PerProc = append(snap.PerProc, pc)
		snap.Cache.Add(cc)
	}
	snap.Diverted = 0
	for _, d := range r.diverted {
		snap.Diverted += d
	}
	snap.StorageEpoch = r.storageView.Epoch
	snap.StorageReplicas = r.storageReplicas
	for _, m := range r.storageView.Members {
		sc := metrics.StorageCounters{Slot: m.Slot, Status: m.Status.String(), Addr: m.Addr}
		if m.Slot < len(shardFresh) && shardFresh[m.Slot] != nil {
			sf := shardFresh[m.Slot]
			sc.Keys = sf.Keys
			sc.Gets = sf.Reads
			sc.Durable = sf.Durable
			sc.WALBytes = sf.WALBytes
			sc.WALRecords = sf.WALRecords
			sc.Snapshots = sf.Snapshots
			sc.DurableVersion = sf.DurableVersion
			sc.ReplayedBytes = sf.ReplayedBytes
		}
		if sc.DurableVersion == 0 && m.Slot < len(r.storageJoinVer) {
			// Fall back to the version the shard announced at join time
			// when it is not answering stats polls right now.
			sc.DurableVersion = r.storageJoinVer[m.Slot]
		}
		snap.PerStorage = append(snap.PerStorage, sc)
	}
	snap.Epochs = append(snap.Epochs, r.storageEvents...)
	return snap, nil
}

// BuildStrategy constructs a routing strategy for the networked router
// through the strategy registry, running whatever smart-routing
// preprocessing the registration declares (landmark selection + BFS, and
// the graph embedding when required) locally over the graph. Registered
// user strategies resolve exactly like the built-ins.
func BuildStrategy(policy string, g *graph.Graph, procs int, seed int64) (router.Strategy, error) {
	strat, _, err := BuildStrategyEmbed(policy, g, procs, seed, nil)
	return strat, err
}

// BuildStrategyEmbed is BuildStrategy with the embedding surfaced: it
// returns the coordinate table the strategy routes by, for the router to
// re-rank KNearest queries against (RouterConfig.Embedding). A non-nil
// emb overrides the learned embedding wholesale — the provider path —
// and is returned as-is even for policies that route without
// coordinates, so KNearest works under every policy.
func BuildStrategyEmbed(policy string, g *graph.Graph, procs int, seed int64, emb *embed.Embedding) (router.Strategy, *embed.Embedding, error) {
	if policy == "" {
		policy = "nextready"
	}
	reg, ok := router.LookupName(policy)
	if !ok {
		return nil, nil, fmt.Errorf("rpc: unknown policy %q", policy)
	}
	res := router.Resources{Procs: procs, Seed: seed, LoadFactor: 20, Alpha: 0.5, Graph: g, Embedding: emb}
	if reg.Prep >= router.PrepLandmarks {
		if g == nil {
			return nil, nil, fmt.Errorf("rpc: policy %q needs a graph for preprocessing", policy)
		}
		lms := landmark.Select(g, 32, 2)
		if len(lms) < 2 {
			return nil, nil, fmt.Errorf("rpc: graph too small for landmark selection")
		}
		idx := landmark.BuildIndex(g, lms, 0)
		res.Index = idx
		res.Assignment = landmark.Assign(idx, procs)
		if reg.Prep >= router.PrepEmbedding && res.Embedding == nil {
			built, err := embed.Build(g, idx, embed.Options{Dimensions: 8, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			res.Embedding = built
		}
	}
	strat, err := reg.New(res)
	if err != nil {
		return nil, nil, err
	}
	return strat, res.Embedding, nil
}

// RouterClient is a gRouting client talking to a router daemon over a
// connection pool, so concurrent and pipelined submissions proceed in
// parallel.
type RouterClient struct {
	pool *Pool
}

// DialRouter connects a client to the router and verifies it responds.
func DialRouter(ctx context.Context, addr string) (*RouterClient, error) {
	p := NewPool(addr, 0)
	if err := p.Ping(ctx); err != nil {
		p.Close()
		return nil, err
	}
	return &RouterClient{pool: p}, nil
}

// clientCall recycles the single-query Execute envelopes. Recycling the
// Response (and its Results backing array) is safe because each decoded
// Result's internal slices are freshly allocated, and an abandoned call's
// tag is dropped from the demux before CallInto returns — nothing writes
// into resp after the call completes.
type clientCall struct {
	req  Request
	ex   ExecRequest
	qs   [1]query.Query
	resp Response
}

var clientCallPool = sync.Pool{New: func() any { return new(clientCall) }}

// Execute runs one query through the deployment.
func (c *RouterClient) Execute(ctx context.Context, q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	cc := clientCallPool.Get().(*clientCall)
	defer clientCallPool.Put(cc)
	cc.qs[0] = q
	cc.ex = ExecRequest{Queries: cc.qs[:1]}
	if dl, ok := ctx.Deadline(); ok {
		cc.ex.Deadline = dl.UnixNano()
	}
	cc.req = Request{Op: OpExecute, Exec: &cc.ex}
	if err := c.pool.CallInto(ctx, &cc.req, &cc.resp); err != nil {
		return query.Result{}, err
	}
	if len(cc.resp.Results) != 1 {
		return query.Result{}, &remoteError{addr: c.pool.Addr(), msg: fmt.Sprintf("got %d results for 1 query", len(cc.resp.Results)), kind: query.ErrUnavailable}
	}
	return cc.resp.Results[0], nil
}

// ExecuteBatch runs a batch of queries in one round trip to the router,
// which fans the sub-batches out to the processors in parallel. Results
// align positionally with qs; one failing query fails the batch.
func (c *RouterClient) ExecuteBatch(ctx context.Context, qs []query.Query) ([]query.Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}
	resp, err := c.pool.Call(ctx, execRequest(ctx, qs))
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(qs) {
		return nil, &remoteError{addr: c.pool.Addr(), msg: fmt.Sprintf("got %d results for %d queries", len(resp.Results), len(qs)), kind: query.ErrUnavailable}
	}
	return resp.Results, nil
}

// Mutate applies a batch of graph mutations through the router in one
// round trip. It returns how many were applied: the applied prefix stays
// applied on failure (each mutation acks individually), and every mutation
// is idempotent, so retrying a failed batch from the reported index is
// always safe.
func (c *RouterClient) Mutate(ctx context.Context, muts []Mutation) (int, error) {
	if len(muts) == 0 {
		return 0, nil
	}
	req := &Request{Op: OpMutate, Muts: muts}
	if dl, ok := ctx.Deadline(); ok {
		req.Deadline = dl.UnixNano()
	}
	resp, err := c.pool.Call(ctx, req)
	return resp.Applied, err
}

// Migrate asks the router to run one adaptive-placement planning cycle now
// and returns how many records moved. Routers without the subsystem
// enabled reject it with query.ErrBadQuery.
func (c *RouterClient) Migrate(ctx context.Context) (int, error) {
	req := &Request{Op: OpMigrate}
	if dl, ok := ctx.Deadline(); ok {
		req.Deadline = dl.UnixNano()
	}
	resp, err := c.pool.Call(ctx, req)
	return resp.Applied, err
}

// Stats fetches the deployment's observability snapshot from the router
// in one OpStats round trip.
func (c *RouterClient) Stats(ctx context.Context) (*metrics.Snapshot, error) {
	resp, err := c.pool.Call(ctx, &Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil || resp.Stats.Snapshot == nil {
		return nil, &remoteError{addr: c.pool.Addr(), msg: "stats response carries no snapshot", kind: query.ErrUnavailable}
	}
	return resp.Stats.Snapshot, nil
}

// Close disconnects the client.
func (c *RouterClient) Close() error {
	c.pool.Close()
	return nil
}
