package rpc

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/query"
	"repro/internal/router"
)

// RouterServer is the networked query router: it accepts client queries,
// asks its routing strategy for a destination, forwards the query to that
// processor and relays the answer. Per-processor in-flight counts are the
// live load signal for the load-balanced distance (Eq 3/7).
type RouterServer struct {
	ln       net.Listener
	procs    []*Conn
	strategy router.Strategy

	mu       sync.Mutex // guards strategy and inflight
	inflight []int

	requests atomic.Int64
}

// RouterConfig configures a networked router.
type RouterConfig struct {
	// ProcessorAddrs lists the processing tier.
	ProcessorAddrs []string
	// Strategy decides destinations; nil defaults to next-ready.
	Strategy router.Strategy
}

// NewRouterServer starts a router on addr.
func NewRouterServer(addr string, cfg RouterConfig) (*RouterServer, error) {
	if len(cfg.ProcessorAddrs) == 0 {
		return nil, fmt.Errorf("rpc: router needs at least one processor")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = router.NewNextReady()
	}
	r := &RouterServer{strategy: cfg.Strategy, inflight: make([]int, len(cfg.ProcessorAddrs))}
	for _, a := range cfg.ProcessorAddrs {
		cn, err := Dial(a)
		if err != nil {
			r.closeConns()
			return nil, err
		}
		r.procs = append(r.procs, cn)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		r.closeConns()
		return nil, fmt.Errorf("rpc: router listen: %w", err)
	}
	r.ln = ln
	go serve(ln, r.handle)
	return r, nil
}

// Addr returns the router's listen address.
func (r *RouterServer) Addr() string { return r.ln.Addr().String() }

// Close stops the router.
func (r *RouterServer) Close() error {
	r.closeConns()
	return r.ln.Close()
}

func (r *RouterServer) closeConns() {
	for _, cn := range r.procs {
		if cn != nil {
			cn.Close()
		}
	}
}

func (r *RouterServer) handle(req *Request) Response {
	r.requests.Add(1)
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpStats:
		return Response{OK: true, Stats: Stats{Role: "router", Requests: r.requests.Load()}}
	case OpExecute:
		// Routing decision under the current in-flight load.
		r.mu.Lock()
		loads := make([]int, len(r.procs))
		copy(loads, r.inflight)
		p := r.strategy.Pick(req.Query, loads)
		if p < 0 || p >= len(r.procs) {
			p = 0
		}
		r.strategy.Observe(req.Query, p)
		r.inflight[p]++
		r.mu.Unlock()

		resp, err := r.procs[p].Call(&Request{Op: OpExecute, Query: req.Query})

		r.mu.Lock()
		r.inflight[p]--
		r.mu.Unlock()
		if err != nil {
			return errorResponse(err)
		}
		return resp
	}
	return errorResponse(fmt.Errorf("router: unknown op %q", req.Op))
}

// BuildStrategy constructs a routing strategy for the networked router by
// running the smart-routing preprocessing locally over the graph.
func BuildStrategy(policy string, g *graph.Graph, procs int, seed int64) (router.Strategy, error) {
	switch policy {
	case "nextready", "":
		return router.NewNextReady(), nil
	case "hash":
		return router.NewHash(), nil
	case "landmark", "embed":
		lms := landmark.Select(g, 32, 2)
		if len(lms) < 2 {
			return nil, fmt.Errorf("rpc: graph too small for landmark selection")
		}
		idx := landmark.BuildIndex(g, lms, 0)
		if policy == "landmark" {
			return router.NewLandmark(landmark.Assign(idx, procs), 20), nil
		}
		emb, err := embed.Build(g, idx, embed.Options{Dimensions: 8, Seed: seed})
		if err != nil {
			return nil, err
		}
		return router.NewEmbed(emb, procs, 0.5, 20, seed)
	}
	return nil, fmt.Errorf("rpc: unknown policy %q", policy)
}

// Client is a gRouting client talking to a router daemon.
type Client struct {
	conn *Conn
}

// DialRouter connects a client to the router.
func DialRouter(addr string) (*Client, error) {
	cn, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: cn}, nil
}

// Execute runs one query through the deployment.
func (c *Client) Execute(q query.Query) (query.Result, error) {
	resp, err := c.conn.Call(&Request{Op: OpExecute, Query: q})
	if err != nil {
		return query.Result{}, err
	}
	return resp.Result, nil
}

// Close disconnects the client.
func (c *Client) Close() error { return c.conn.Close() }
