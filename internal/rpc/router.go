package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/router"
)

// RouterServer is the networked query router: it accepts client query
// batches, asks its routing strategy for a destination per query, forwards
// each sub-batch to its processor over a pooled connection (carrying the
// client's deadline) and relays the answers. Per-processor in-flight
// counts are the live load signal for the load-balanced distance (Eq 3/7).
//
// The router keeps the same per-processor accounting as the virtual-time
// engine (assigned/completed counts, routing-decision-time and queue-depth
// histograms) and serves it as a metrics.Snapshot on OpStats, so local and
// networked clients report through one structure.
type RouterServer struct {
	ln         net.Listener
	procs      []*Pool
	policyName string

	mu        sync.Mutex // guards strategy, inflight and the counters below
	strategy  router.Strategy
	statsObs  router.StatsObserver // strategy's optional feedback hook, nil if absent
	inflight  []int
	assigned  []int64                 // queries the strategy sent to each processor
	completed []int64                 // queries each processor answered successfully
	lastCache []metrics.CacheCounters // latest cache counters piggybacked per processor
	routing   metrics.Histogram       // wall-clock routing decision time (ns)
	depth     metrics.Histogram       // destination in-flight depth at each decision

	requests atomic.Int64
	queries  atomic.Int64
}

// RouterConfig configures a networked router.
type RouterConfig struct {
	// ProcessorAddrs lists the processing tier.
	ProcessorAddrs []string
	// Strategy decides destinations; nil defaults to next-ready.
	Strategy router.Strategy
	// PolicyName is the configured policy's registered name, reported in
	// stats snapshots (defaults to the strategy's self-reported name).
	PolicyName string
	// PoolSize bounds connections per processor (0 = DefaultPoolSize).
	PoolSize int
}

// NewRouterServer starts a router on addr.
func NewRouterServer(addr string, cfg RouterConfig) (*RouterServer, error) {
	if len(cfg.ProcessorAddrs) == 0 {
		return nil, fmt.Errorf("rpc: router needs at least one processor")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = router.NewNextReady()
	}
	if cfg.PolicyName == "" {
		cfg.PolicyName = cfg.Strategy.Name()
	}
	n := len(cfg.ProcessorAddrs)
	r := &RouterServer{
		strategy:   cfg.Strategy,
		policyName: cfg.PolicyName,
		inflight:   make([]int, n),
		assigned:   make([]int64, n),
		completed:  make([]int64, n),
		lastCache:  make([]metrics.CacheCounters, n),
	}
	r.statsObs, _ = cfg.Strategy.(router.StatsObserver)
	for _, a := range cfg.ProcessorAddrs {
		p := NewPool(a, cfg.PoolSize)
		if err := p.Ping(context.Background()); err != nil {
			p.Close()
			r.closePools()
			return nil, err
		}
		r.procs = append(r.procs, p)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		r.closePools()
		return nil, fmt.Errorf("rpc: router listen: %w", err)
	}
	r.ln = ln
	go serve(ln, r.handle)
	return r, nil
}

// Addr returns the router's listen address.
func (r *RouterServer) Addr() string { return r.ln.Addr().String() }

// Close stops the router.
func (r *RouterServer) Close() error {
	r.closePools()
	return r.ln.Close()
}

func (r *RouterServer) closePools() {
	for _, p := range r.procs {
		if p != nil {
			p.Close()
		}
	}
}

func (r *RouterServer) handle(ctx context.Context, req *Request) Response {
	r.requests.Add(1)
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpStats:
		snap, err := r.Snapshot(ctx)
		if err != nil {
			return errorResponse(err)
		}
		return Response{OK: true, Stats: &Stats{Role: "router", Requests: r.requests.Load(), Snapshot: snap}}
	case OpExecute:
		if req.Exec == nil || len(req.Exec.Queries) == 0 {
			return errorResponse(fmt.Errorf("%w: execute request carries no queries", query.ErrBadQuery))
		}
		return r.execute(ctx, req.Exec)
	}
	return errorResponse(fmt.Errorf("router: unknown op %q", req.Op))
}

// execute routes every query of the batch, groups them by destination
// processor and forwards the per-processor sub-batches concurrently, so a
// pipelined client pays one router round trip for the whole batch.
func (r *RouterServer) execute(ctx context.Context, ex *ExecRequest) Response {
	for _, q := range ex.Queries {
		if err := q.Validate(); err != nil {
			return errorResponse(err)
		}
	}

	// Routing decisions under the current in-flight load (one strategy
	// lock for the batch; the strategy is inherently sequential).
	dest := make([]int, len(ex.Queries))
	loads := make([]int, len(r.procs))
	r.mu.Lock()
	for i, q := range ex.Queries {
		copy(loads, r.inflight)
		t0 := time.Now()
		p := r.strategy.Pick(q, loads)
		if p < 0 || p >= len(r.procs) {
			p = 0
		}
		r.strategy.Observe(q, p)
		r.routing.Observe(time.Since(t0).Nanoseconds())
		r.depth.Observe(int64(r.inflight[p]))
		r.assigned[p]++
		r.inflight[p]++
		dest[i] = p
	}
	r.mu.Unlock()

	// Fast path — the whole batch (typically a single query) lands on one
	// processor: forward the request as-is, no fan-out machinery.
	single := true
	for _, p := range dest[1:] {
		if p != dest[0] {
			single = false
			break
		}
	}
	if single {
		p := dest[0]
		resp, err := r.procs[p].Call(ctx, &Request{Op: OpExecute, Exec: ex})
		r.finish(p, len(dest), &resp, err)
		if err != nil {
			return errorResponse(err)
		}
		resp.ProcCache = nil // router-internal feedback, not client payload
		return resp
	}

	// Group the batch by destination, remembering original positions.
	groups := make(map[int][]int, len(r.procs))
	for i, p := range dest {
		groups[p] = append(groups[p], i)
	}

	type procResult struct {
		proc    int
		indices []int
		resp    Response
		err     error
	}
	results := make(chan procResult, len(groups))
	for p, indices := range groups {
		go func(p int, indices []int) {
			sub := &ExecRequest{Queries: make([]query.Query, len(indices)), Deadline: ex.Deadline}
			for j, i := range indices {
				sub.Queries[j] = ex.Queries[i]
			}
			resp, err := r.procs[p].Call(ctx, &Request{Op: OpExecute, Exec: sub})
			results <- procResult{proc: p, indices: indices, resp: resp, err: err}
		}(p, indices)
	}

	out := Response{OK: true, Results: make([]query.Result, len(ex.Queries))}
	var firstErr error
	for range groups {
		pr := <-results
		r.finish(pr.proc, len(pr.indices), &pr.resp, pr.err)
		if pr.err != nil {
			if firstErr == nil {
				firstErr = pr.err
			}
			continue
		}
		for j, i := range pr.indices {
			out.Results[i] = pr.resp.Results[j]
		}
	}
	if firstErr != nil {
		return errorResponse(firstErr)
	}
	return out
}

// finish settles the accounting for a completed sub-batch of n queries on
// processor p: the in-flight load drops, successful completions advance
// the per-processor counters, and the processor's piggybacked cache
// counters feed the strategy's optional StatsObserver hook — the live
// signal adaptive strategies hot-swap on.
func (r *RouterServer) finish(p, n int, resp *Response, err error) {
	r.mu.Lock()
	r.inflight[p] -= n
	if err == nil {
		r.completed[p] += int64(n)
		if resp.ProcCache != nil {
			r.lastCache[p] = *resp.ProcCache
			if r.statsObs != nil {
				var agg metrics.CacheCounters
				for i := range r.lastCache {
					agg.Add(r.lastCache[i])
				}
				r.statsObs.ObserveStats(agg)
			}
		}
	}
	r.mu.Unlock()
	if err == nil {
		r.queries.Add(int64(n))
	}
}

// Snapshot assembles the system-wide observability snapshot — the same
// metrics.Snapshot structure the virtual-time engine reports — polling
// each processor's OpStats for fresh cache counters (falling back to the
// last piggybacked counters for processors that do not answer).
func (r *RouterServer) Snapshot(ctx context.Context) (*metrics.Snapshot, error) {
	type procStats struct {
		i  int
		cc *metrics.CacheCounters
	}
	results := make(chan procStats, len(r.procs))
	for i := range r.procs {
		go func(i int) {
			var cc *metrics.CacheCounters
			if resp, err := r.procs[i].Call(ctx, &Request{Op: OpStats}); err == nil && resp.Stats != nil {
				cc = resp.Stats.Cache
			}
			results <- procStats{i, cc}
		}(i)
	}
	fresh := make([]*metrics.CacheCounters, len(r.procs))
	for range r.procs {
		ps := <-results
		fresh[ps.i] = ps.cc
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &metrics.Snapshot{
		Transport:    "tcp",
		Policy:       r.policyName,
		Strategy:     r.strategy.Name(),
		Processors:   len(r.procs),
		Queries:      r.queries.Load(),
		RoutingNanos: r.routing.Summary(),
		QueueDepth:   r.depth.Summary(),
	}
	for i := range r.procs {
		if fresh[i] != nil {
			r.lastCache[i] = *fresh[i]
		}
		cc := r.lastCache[i]
		snap.PerProc = append(snap.PerProc, metrics.ProcCounters{
			Proc:       i,
			Assigned:   r.assigned[i],
			Executed:   r.completed[i],
			QueueDepth: int64(r.inflight[i]),
			Cache:      cc,
		})
		snap.Cache.Add(cc)
	}
	return snap, nil
}

// BuildStrategy constructs a routing strategy for the networked router
// through the strategy registry, running whatever smart-routing
// preprocessing the registration declares (landmark selection + BFS, and
// the graph embedding when required) locally over the graph. Registered
// user strategies resolve exactly like the built-ins.
func BuildStrategy(policy string, g *graph.Graph, procs int, seed int64) (router.Strategy, error) {
	if policy == "" {
		policy = "nextready"
	}
	reg, ok := router.LookupName(policy)
	if !ok {
		return nil, fmt.Errorf("rpc: unknown policy %q", policy)
	}
	res := router.Resources{Procs: procs, Seed: seed, LoadFactor: 20, Alpha: 0.5, Graph: g}
	if reg.Prep >= router.PrepLandmarks {
		if g == nil {
			return nil, fmt.Errorf("rpc: policy %q needs a graph for preprocessing", policy)
		}
		lms := landmark.Select(g, 32, 2)
		if len(lms) < 2 {
			return nil, fmt.Errorf("rpc: graph too small for landmark selection")
		}
		idx := landmark.BuildIndex(g, lms, 0)
		res.Assignment = landmark.Assign(idx, procs)
		if reg.Prep >= router.PrepEmbedding {
			emb, err := embed.Build(g, idx, embed.Options{Dimensions: 8, Seed: seed})
			if err != nil {
				return nil, err
			}
			res.Embedding = emb
		}
	}
	return reg.New(res)
}

// RouterClient is a gRouting client talking to a router daemon over a
// connection pool, so concurrent and pipelined submissions proceed in
// parallel.
type RouterClient struct {
	pool *Pool
}

// DialRouter connects a client to the router and verifies it responds.
func DialRouter(ctx context.Context, addr string) (*RouterClient, error) {
	p := NewPool(addr, 0)
	if err := p.Ping(ctx); err != nil {
		p.Close()
		return nil, err
	}
	return &RouterClient{pool: p}, nil
}

// Execute runs one query through the deployment.
func (c *RouterClient) Execute(ctx context.Context, q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	resp, err := c.pool.Call(ctx, execRequest(ctx, []query.Query{q}))
	if err != nil {
		return query.Result{}, err
	}
	if len(resp.Results) != 1 {
		return query.Result{}, &remoteError{addr: c.pool.Addr(), msg: fmt.Sprintf("got %d results for 1 query", len(resp.Results)), kind: query.ErrUnavailable}
	}
	return resp.Results[0], nil
}

// ExecuteBatch runs a batch of queries in one round trip to the router,
// which fans the sub-batches out to the processors in parallel. Results
// align positionally with qs; one failing query fails the batch.
func (c *RouterClient) ExecuteBatch(ctx context.Context, qs []query.Query) ([]query.Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}
	resp, err := c.pool.Call(ctx, execRequest(ctx, qs))
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(qs) {
		return nil, &remoteError{addr: c.pool.Addr(), msg: fmt.Sprintf("got %d results for %d queries", len(resp.Results), len(qs)), kind: query.ErrUnavailable}
	}
	return resp.Results, nil
}

// Stats fetches the deployment's observability snapshot from the router
// in one OpStats round trip.
func (c *RouterClient) Stats(ctx context.Context) (*metrics.Snapshot, error) {
	resp, err := c.pool.Call(ctx, &Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil || resp.Stats.Snapshot == nil {
		return nil, &remoteError{addr: c.pool.Addr(), msg: "stats response carries no snapshot", kind: query.ErrUnavailable}
	}
	return resp.Stats.Snapshot, nil
}

// Close disconnects the client.
func (c *RouterClient) Close() error {
	c.pool.Close()
	return nil
}
