package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/hash"
)

// StorageServer is one shard of the networked storage tier: an in-memory
// key→value map served over TCP. Which server owns which key is decided by
// the clients (murmur hash over the server list, as RAMCloud's coordinator
// would), so servers are completely independent.
type StorageServer struct {
	ln       net.Listener
	mu       sync.RWMutex
	data     map[uint64][]byte
	requests atomic.Int64
	keys     atomic.Int64
}

// NewStorageServer starts a storage shard on addr (use "127.0.0.1:0" for
// an ephemeral port) and begins serving in the background.
func NewStorageServer(addr string) (*StorageServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: storage listen: %w", err)
	}
	s := &StorageServer{ln: ln, data: make(map[uint64][]byte)}
	go serve(ln, s.handle)
	return s, nil
}

// Addr returns the server's listen address.
func (s *StorageServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *StorageServer) Close() error { return s.ln.Close() }

func (s *StorageServer) handle(_ context.Context, req *Request) Response {
	s.requests.Add(1)
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpGet:
		s.mu.RLock()
		v, ok := s.data[req.Key]
		s.mu.RUnlock()
		s.keys.Add(1)
		return Response{OK: true, Value: v, Found: ok}
	case OpMultiGet:
		resp := Response{OK: true, Values: make([][]byte, len(req.Keys)), Founds: make([]bool, len(req.Keys))}
		s.mu.RLock()
		for i, k := range req.Keys {
			resp.Values[i], resp.Founds[i] = s.data[k]
		}
		s.mu.RUnlock()
		s.keys.Add(int64(len(req.Keys)))
		return resp
	case OpPut:
		cp := make([]byte, len(req.Value))
		copy(cp, req.Value)
		s.mu.Lock()
		s.data[req.Key] = cp
		s.mu.Unlock()
		return Response{OK: true}
	case OpStats:
		st := s.Stats()
		return Response{OK: true, Stats: &st}
	}
	return errorResponse(fmt.Errorf("storage: unknown op %q", req.Op))
}

// Stats returns the shard's counters (request total, resident keys).
func (s *StorageServer) Stats() Stats {
	s.mu.RLock()
	n := len(s.data)
	s.mu.RUnlock()
	return Stats{
		Role:     "storage",
		Requests: s.requests.Load(),
		Keys:     int64(n),
	}
}

// StorageClient shards keys over a set of storage servers with the same
// murmur placement the in-process tier uses, over one connection pool per
// shard.
type StorageClient struct {
	pools []*Pool
}

// DialStorage connects to every storage shard, verifying each is
// reachable.
func DialStorage(addrs []string) (*StorageClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("rpc: no storage servers")
	}
	sc := &StorageClient{}
	for _, a := range addrs {
		p := NewPool(a, 0)
		if err := p.Ping(context.Background()); err != nil {
			sc.Close()
			p.Close()
			return nil, err
		}
		sc.pools = append(sc.pools, p)
	}
	return sc, nil
}

// Close closes every shard pool.
func (sc *StorageClient) Close() {
	for _, p := range sc.pools {
		if p != nil {
			p.Close()
		}
	}
}

// shardFor returns the shard index owning key.
func (sc *StorageClient) shardFor(key uint64) int {
	return int(hash.Key64(key, 0) % uint64(len(sc.pools)))
}

// Put stores one encoded record.
func (sc *StorageClient) Put(ctx context.Context, key uint64, value []byte) error {
	_, err := sc.pools[sc.shardFor(key)].Call(ctx, &Request{Op: OpPut, Key: key, Value: value})
	return err
}

// MultiGet fetches the records for ids, grouping keys by owning shard and
// issuing the per-shard multigets concurrently (the networked analogue of
// the engine's batched frontier fetches).
func (sc *StorageClient) MultiGet(ctx context.Context, ids []graph.NodeID) (map[graph.NodeID]gstore.Record, error) {
	groups := make(map[int][]uint64)
	for _, id := range ids {
		sh := sc.shardFor(uint64(id))
		groups[sh] = append(groups[sh], uint64(id))
	}
	type shardResult struct {
		keys []uint64
		resp Response
		err  error
	}
	results := make(chan shardResult, len(groups))
	for sh, keys := range groups {
		go func(sh int, keys []uint64) {
			resp, err := sc.pools[sh].Call(ctx, &Request{Op: OpMultiGet, Keys: keys})
			results <- shardResult{keys: keys, resp: resp, err: err}
		}(sh, keys)
	}
	out := make(map[graph.NodeID]gstore.Record, len(ids))
	var firstErr error
	for range groups {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		for i, k := range r.keys {
			if !r.resp.Founds[i] {
				continue
			}
			rec, err := gstore.Decode(graph.NodeID(k), r.resp.Values[i])
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			out[graph.NodeID(k)] = rec
		}
	}
	return out, firstErr
}

// LoadGraph bulk-loads every live node of g across the shards.
func (sc *StorageClient) LoadGraph(ctx context.Context, g *graph.Graph) error {
	buf := make([]byte, 0, 1024)
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		if !g.Exists(id) {
			continue
		}
		buf = gstore.Encode(buf[:0], gstore.RecordOf(g, id))
		if err := sc.Put(ctx, uint64(id), buf); err != nil {
			return err
		}
	}
	return nil
}
