package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/hash"
	"repro/internal/query"
	"repro/internal/topology"
)

// StorageServer is one shard of the networked storage tier: an in-memory
// key→value map served over TCP. Which servers own which key is decided
// by the clients (murmur hash when unreplicated, rendezvous hashing over
// the shard list with R replicas otherwise — as RAMCloud's coordinator
// would), so servers are completely independent. A shard can announce
// itself to a running router's storage view with Register (groutingd
// -join for the storage role) and leave it cleanly with Deregister.
type StorageServer struct {
	ln       net.Listener
	ct       connTracker
	mu       sync.RWMutex
	data     map[uint64][]byte
	requests atomic.Int64
	keys     atomic.Int64

	regMu      sync.Mutex // guards the registration below
	routerAddr string     // router this shard registered with ("" = none)
	advertise  string     // address announced to the router
	slot       int        // slot the router assigned
}

// NewStorageServer starts a storage shard on addr (use "127.0.0.1:0" for
// an ephemeral port) and begins serving in the background.
func NewStorageServer(addr string) (*StorageServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: storage listen: %w", err)
	}
	s := &StorageServer{ln: ln, data: make(map[uint64][]byte), slot: -1}
	go serve(ln, s.handle, &s.ct)
	return s, nil
}

// Addr returns the server's listen address.
func (s *StorageServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server, severing live connections — the crash
// semantics replica failover is built for.
func (s *StorageServer) Close() error {
	err := s.ln.Close()
	s.ct.closeAll()
	return err
}

// Register announces this shard to a running router's storage view
// (OpJoin with the storage tier): the router dials back to verify it,
// admits it at a new storage epoch, and reports it under -topology /
// Stats. advertise defaults to the listen address. The returned slot is
// the shard's stable storage-slot id.
func (s *StorageServer) Register(ctx context.Context, routerAddr, advertise string) (int, error) {
	if advertise == "" {
		advertise = s.Addr()
	}
	cn, err := DialContext(ctx, routerAddr)
	if err != nil {
		return 0, err
	}
	defer cn.Close()
	resp, err := cn.Call(ctx, &Request{Op: OpJoin, Addr: advertise, Tier: "storage"})
	if err != nil {
		return 0, err
	}
	s.regMu.Lock()
	s.routerAddr, s.advertise, s.slot = routerAddr, advertise, resp.Proc
	s.regMu.Unlock()
	return resp.Proc, nil
}

// Deregister removes this shard from the router's storage view (OpDrain,
// storage tier). Over TCP this is membership-only: the shard's replicas
// are not copied off — reads of keys it held fail over to their other
// replicas, so drain a shard only when the replication factor covers it.
// No-op when the shard never registered.
func (s *StorageServer) Deregister(ctx context.Context) error {
	s.regMu.Lock()
	routerAddr, advertise := s.routerAddr, s.advertise
	s.regMu.Unlock()
	if routerAddr == "" {
		return nil
	}
	cn, err := DialContext(ctx, routerAddr)
	if err != nil {
		return err
	}
	defer cn.Close()
	if _, err := cn.Call(ctx, &Request{Op: OpDrain, Addr: advertise, Tier: "storage"}); err != nil {
		return err
	}
	s.regMu.Lock()
	if s.routerAddr == routerAddr {
		s.routerAddr = ""
	}
	s.regMu.Unlock()
	return nil
}

// RegisteredSlot returns the storage slot the router assigned at
// Register, or -1 when the shard never registered (or has deregistered).
func (s *StorageServer) RegisteredSlot() int {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.routerAddr == "" {
		return -1
	}
	return s.slot
}

func (s *StorageServer) handle(_ context.Context, req *Request) Response {
	s.requests.Add(1)
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpGet:
		s.mu.RLock()
		v, ok := s.data[req.Key]
		s.mu.RUnlock()
		s.keys.Add(1)
		return Response{OK: true, Value: v, Found: ok}
	case OpMultiGet:
		resp := Response{OK: true, Values: make([][]byte, len(req.Keys)), Founds: make([]bool, len(req.Keys))}
		s.mu.RLock()
		for i, k := range req.Keys {
			resp.Values[i], resp.Founds[i] = s.data[k]
		}
		s.mu.RUnlock()
		s.keys.Add(int64(len(req.Keys)))
		return resp
	case OpPut:
		cp := make([]byte, len(req.Value))
		copy(cp, req.Value)
		s.mu.Lock()
		s.data[req.Key] = cp
		s.mu.Unlock()
		return Response{OK: true}
	case OpStats:
		st := s.Stats()
		return Response{OK: true, Stats: &st}
	}
	return errorResponse(fmt.Errorf("storage: unknown op %q", req.Op))
}

// Stats returns the shard's counters (request total, key reads served,
// resident keys).
func (s *StorageServer) Stats() Stats {
	s.mu.RLock()
	n := len(s.data)
	s.mu.RUnlock()
	return Stats{
		Role:     "storage",
		Requests: s.requests.Load(),
		Reads:    s.keys.Load(),
		Keys:     int64(n),
	}
}

// storageProbeInterval is how often the client re-pings shards it marked
// down, so a restarted or network-partition-healed shard rejoins the read
// path without any coordination.
const storageProbeInterval = 200 * time.Millisecond

// StorageClient shards keys over a set of storage servers, over one
// connection pool per shard. Unreplicated (replicas == 1) placement is
// the same murmur hash the legacy in-process tier uses; with replicas
// >= 2 every key lives on R shards placed by rendezvous hashing over the
// shard list, writes go to every replica, and reads prefer the
// highest-scored healthy replica with transparent failover: a shard that
// fails a call is marked down (per-replica health), its keys retry on
// their next replica, and a background probe revives it when it answers
// pings again.
type StorageClient struct {
	pools    []*Pool
	replicas int
	slots    []int // 0..n-1, the rendezvous placement domain

	down      []atomic.Bool
	failovers atomic.Int64

	probeStop chan struct{}
	closeOnce sync.Once
}

// DialStorage connects to every storage shard unreplicated, verifying
// each is reachable.
func DialStorage(addrs []string) (*StorageClient, error) {
	return DialStorageReplicated(addrs, 1)
}

// DialStorageReplicated connects to every storage shard with the given
// replication factor, verifying each shard is reachable. The loader and
// every processor of a deployment must agree on the factor — placement is
// client-side, exactly like the hash placement it generalises.
func DialStorageReplicated(addrs []string, replicas int) (*StorageClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("rpc: no storage servers")
	}
	if replicas < 1 || replicas > topology.MaxReplicas {
		return nil, fmt.Errorf("rpc: storage replicas = %d outside [1,%d]", replicas, topology.MaxReplicas)
	}
	if replicas > len(addrs) {
		return nil, fmt.Errorf("rpc: %d storage replicas need at least that many shards, have %d", replicas, len(addrs))
	}
	sc := &StorageClient{replicas: replicas, probeStop: make(chan struct{})}
	for i, a := range addrs {
		p := NewPool(a, 0)
		if err := p.Ping(context.Background()); err != nil {
			sc.Close()
			p.Close()
			return nil, err
		}
		sc.pools = append(sc.pools, p)
		sc.slots = append(sc.slots, i)
	}
	sc.down = make([]atomic.Bool, len(sc.pools))
	// The probe runs in every mode: even unreplicated clients mark a
	// shard down after a failure, and only the probe clears the flag when
	// the shard answers again.
	go sc.probeLoop()
	return sc, nil
}

// Close closes every shard pool and stops the health probe.
func (sc *StorageClient) Close() {
	sc.closeOnce.Do(func() { close(sc.probeStop) })
	for _, p := range sc.pools {
		if p != nil {
			p.Close()
		}
	}
}

// Replicas returns the client's replication factor.
func (sc *StorageClient) Replicas() int { return sc.replicas }

// Failovers returns how many times a shard call failed and its keys were
// retried on another replica — the client-side health signal.
func (sc *StorageClient) Failovers() int64 { return sc.failovers.Load() }

// probeLoop re-pings down shards so they rejoin the read path once they
// answer again.
func (sc *StorageClient) probeLoop() {
	t := time.NewTicker(storageProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-sc.probeStop:
			return
		case <-t.C:
			for i := range sc.down {
				if !sc.down[i].Load() {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), storageProbeInterval)
				if err := sc.pools[i].Ping(ctx); err == nil {
					sc.down[i].Store(false)
				}
				cancel()
			}
		}
	}
}

// markDown records a failed shard call.
func (sc *StorageClient) markDown(shard int) {
	sc.failovers.Add(1)
	sc.down[shard].Store(true)
}

// placement appends key's replica shards (primary first) to dst.
func (sc *StorageClient) placement(key uint64, dst []int) []int {
	if sc.replicas <= 1 {
		return append(dst[:0], int(hash.Key64(key, 0)%uint64(len(sc.pools))))
	}
	return topology.RendezvousN(key, sc.slots, sc.replicas, dst)
}

// shardFor returns the shard a read of key prefers.
func (sc *StorageClient) shardFor(key uint64) int {
	var buf [topology.MaxReplicas]int
	return sc.placement(key, buf[:0])[0]
}

// Put stores one encoded record on every replica of its placement set.
// Shards marked down are skipped on the first pass (their copy is
// repaired by reloading) — but the flag is advisory, so if no replica
// looked up, every placement shard is tried anyway. The write fails only
// when no replica accepted it.
func (sc *StorageClient) Put(ctx context.Context, key uint64, value []byte) error {
	var buf [topology.MaxReplicas]int
	pl := sc.placement(key, buf[:0])
	var firstErr error
	wrote := 0
	tryPut := func(shard int) {
		if _, err := sc.pools[shard].Call(ctx, &Request{Op: OpPut, Key: key, Value: value}); err != nil {
			// Don't poison the health flags with our own cancellation.
			if ctx.Err() == nil {
				sc.markDown(shard)
			}
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		wrote++
	}
	var tried uint8
	for i, shard := range pl {
		if sc.down[shard].Load() {
			continue
		}
		tried |= 1 << i
		tryPut(shard)
	}
	if wrote == 0 {
		for i, shard := range pl {
			if tried&(1<<i) != 0 {
				continue
			}
			tryPut(shard)
		}
	}
	if wrote == 0 {
		if firstErr != nil {
			return firstErr
		}
		return &remoteError{addr: "storage", msg: fmt.Sprintf("no live replica accepted key %d", key), kind: query.ErrUnavailable}
	}
	return nil
}

// MultiGet fetches the records for ids, grouping keys by their preferred
// replica and issuing the per-shard multigets concurrently (the networked
// analogue of the engine's batched frontier fetches). A shard that fails
// mid-call is marked down and its keys transparently retry on their next
// replica; only a key with no answering replica left fails the call.
func (sc *StorageClient) MultiGet(ctx context.Context, ids []graph.NodeID) (map[graph.NodeID]gstore.Record, error) {
	out := make(map[graph.NodeID]gstore.Record, len(ids))
	// tried is a bitmask over each key's placement indices: a key is
	// exhausted only once every replica has actually been contacted —
	// down flags are advisory and must never skip a replica for good.
	tried := make(map[graph.NodeID]uint8, len(ids))
	pending := ids
	var firstErr error
	for round := 0; len(pending) > 0 && round <= sc.replicas; round++ {
		groups := make(map[int][]graph.NodeID)
		chosen := make(map[graph.NodeID]int, len(pending))
		var buf [topology.MaxReplicas]int
		for _, id := range pending {
			pl := sc.placement(uint64(id), buf[:0])
			// Prefer the first untried healthy replica, falling back to
			// the first untried one of any health.
			pick := -1
			for j := range pl {
				if tried[id]&(1<<j) != 0 {
					continue
				}
				if pick < 0 {
					pick = j
				}
				if !sc.down[pl[j]].Load() {
					pick = j
					break
				}
			}
			if pick < 0 {
				if firstErr == nil {
					firstErr = &remoteError{addr: "storage", msg: fmt.Sprintf("key %d: every replica failed", id), kind: query.ErrUnavailable}
				}
				continue
			}
			chosen[id] = pick
			groups[pl[pick]] = append(groups[pl[pick]], id)
		}
		type shardResult struct {
			shard int
			ids   []graph.NodeID
			resp  Response
			err   error
		}
		results := make(chan shardResult, len(groups))
		for shard, gids := range groups {
			go func(shard int, gids []graph.NodeID) {
				keys := make([]uint64, len(gids))
				for i, id := range gids {
					keys[i] = uint64(id)
				}
				resp, err := sc.pools[shard].Call(ctx, &Request{Op: OpMultiGet, Keys: keys})
				results <- shardResult{shard: shard, ids: gids, resp: resp, err: err}
			}(shard, gids)
		}
		var retry []graph.NodeID
		for range groups {
			r := <-results
			if r.err != nil {
				// The caller gave up (ctx done) — don't burn the health
				// flags or retries on our own cancellation.
				if ctx.Err() != nil {
					if firstErr == nil {
						firstErr = r.err
					}
					continue
				}
				sc.markDown(r.shard)
				for _, id := range r.ids {
					tried[id] |= 1 << chosen[id]
				}
				retry = append(retry, r.ids...)
				continue
			}
			for i, id := range r.ids {
				if !r.resp.Founds[i] {
					continue
				}
				rec, err := gstore.Decode(graph.NodeID(id), r.resp.Values[i])
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				out[id] = rec
			}
		}
		pending = retry
	}
	return out, firstErr
}

// LoadGraph bulk-loads every live node of g across the shards (all
// replicas of each key).
func (sc *StorageClient) LoadGraph(ctx context.Context, g *graph.Graph) error {
	buf := make([]byte, 0, 1024)
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		if !g.Exists(id) {
			continue
		}
		buf = gstore.Encode(buf[:0], gstore.RecordOf(g, id))
		if err := sc.Put(ctx, uint64(id), buf); err != nil {
			return err
		}
	}
	return nil
}
