package rpc

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/hash"
	"repro/internal/kvstore"
	"repro/internal/query"
	"repro/internal/topology"
)

// StorageServer is one shard of the networked storage tier: an in-memory
// key→value map served over TCP. Which servers own which key is decided
// by the clients (murmur hash when unreplicated, rendezvous hashing over
// the shard list with R replicas otherwise — as RAMCloud's coordinator
// would), so servers are completely independent. A shard can announce
// itself to a running router's storage view with Register (groutingd
// -join for the storage role) and leave it cleanly with Deregister.
type StorageServer struct {
	ln       net.Listener
	ct       connTracker
	mu       sync.RWMutex
	data     map[uint64][]byte
	requests atomic.Int64
	keys     atomic.Int64

	// Durability (nil wal = in-memory only). The WAL and snapshot use the
	// same on-disk format as the in-process tier (internal/kvstore): every
	// put is logged before it is acked, and every snapEvery records the
	// shard compacts map + log into an atomic snapshot and truncates the
	// WAL. All fields below mu are guarded by it (writes take the write
	// lock); durVer is atomic so Register and Stats can read it cheaply.
	wal             *kvstore.WAL
	walPath         string
	snapPath        string
	snapEvery       int
	sinceSnap       int
	snapshots       int64
	replayedRecords int64
	replayedBytes   int64
	durVer          atomic.Uint64 // monotonic durable record counter

	regMu      sync.Mutex // guards the registration below
	routerAddr string     // router this shard registered with ("" = none)
	advertise  string     // address announced to the router
	slot       int        // slot the router assigned
}

// NewStorageServer starts a storage shard on addr (use "127.0.0.1:0" for
// an ephemeral port) and begins serving in the background.
func NewStorageServer(addr string) (*StorageServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: storage listen: %w", err)
	}
	s := &StorageServer{ln: ln, data: make(map[uint64][]byte), slot: -1}
	go serve(ln, s.handle, &s.ct)
	return s, nil
}

// NewStorageServerDurable starts a storage shard whose writes survive a
// crash: every put is appended to a WAL under dir before it is acked, and
// the shard compacts into a snapshot periodically. Starting over a
// directory left by a previous (even killed) process replays snapshot +
// WAL first, so the shard comes back warm with every acked write. With
// fsync true each append is fsynced (machine-crash durable); false keeps
// a single write syscall per put (process-death durable).
func NewStorageServerDurable(addr, dir string, fsync bool) (*StorageServer, error) {
	if dir == "" {
		return NewStorageServer(addr)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rpc: storage wal dir: %w", err)
	}
	s := &StorageServer{
		data:      make(map[uint64][]byte),
		slot:      -1,
		walPath:   filepath.Join(dir, "shard.wal"),
		snapPath:  filepath.Join(dir, "shard.snap"),
		snapEvery: kvstore.DefaultSnapshotEvery,
	}
	var maxVer uint64
	apply := func(op kvstore.WALOp, key, ver uint64, val []byte) {
		switch op {
		case kvstore.WALPut:
			cp := make([]byte, len(val))
			copy(cp, val)
			s.data[key] = cp
		case kvstore.WALTomb, kvstore.WALDrop:
			delete(s.data, key)
		}
		if ver > maxVer {
			maxVer = ver
		}
		s.replayedRecords++
	}
	snapVer, snapBytes, err := kvstore.LoadSnapshot(s.snapPath, apply)
	if err != nil {
		return nil, fmt.Errorf("rpc: storage snapshot: %w", err)
	}
	if snapVer > maxVer {
		maxVer = snapVer
	}
	if snapBytes > 0 {
		s.snapshots = 1
		s.replayedBytes += snapBytes
	}
	wal, err := kvstore.OpenWAL(s.walPath, fsync, apply)
	if err != nil {
		return nil, fmt.Errorf("rpc: storage wal: %w", err)
	}
	walBytes, _, _ := wal.Stats()
	s.replayedBytes += walBytes
	s.wal = wal
	s.durVer.Store(maxVer)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("rpc: storage listen: %w", err)
	}
	s.ln = ln
	go serve(ln, s.handle, &s.ct)
	return s, nil
}

// Addr returns the server's listen address.
func (s *StorageServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server, severing live connections — the crash
// semantics replica failover is built for. A durable shard's WAL fd is
// abandoned without a final fsync (records already written survive the
// process; callers wanting machine-crash safety call SyncWAL first — the
// daemon's graceful-shutdown path does).
func (s *StorageServer) Close() error {
	err := s.ln.Close()
	s.ct.closeAll()
	s.mu.Lock()
	if s.wal != nil {
		s.wal.Abandon()
		s.wal = nil
	}
	s.mu.Unlock()
	return err
}

// SetSnapshotEvery overrides how many WAL records the shard accumulates
// before compacting into a snapshot (n <= 0 restores the default). No-op
// without durability.
func (s *StorageServer) SetSnapshotEvery(n int) {
	if n <= 0 {
		n = kvstore.DefaultSnapshotEvery
	}
	s.mu.Lock()
	s.snapEvery = n
	s.mu.Unlock()
}

// SyncWAL fsyncs the shard's WAL so every acked write is durable against
// machine crash, not just process death. No-op without durability.
func (s *StorageServer) SyncWAL() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// Register announces this shard to a running router's storage view
// (OpJoin with the storage tier): the router dials back to verify it,
// admits it at a new storage epoch, and reports it under -topology /
// Stats. advertise defaults to the listen address. The returned slot is
// the shard's stable storage-slot id.
func (s *StorageServer) Register(ctx context.Context, routerAddr, advertise string) (int, error) {
	if advertise == "" {
		advertise = s.Addr()
	}
	cn, err := DialContext(ctx, routerAddr)
	if err != nil {
		return 0, err
	}
	defer cn.Close()
	resp, err := cn.Call(ctx, &Request{Op: OpJoin, Addr: advertise, Tier: "storage", Version: s.durVer.Load()})
	if err != nil {
		return 0, err
	}
	s.regMu.Lock()
	s.routerAddr, s.advertise, s.slot = routerAddr, advertise, resp.Proc
	s.regMu.Unlock()
	return resp.Proc, nil
}

// Deregister removes this shard from the router's storage view (OpDrain,
// storage tier). Over TCP this is membership-only: the shard's replicas
// are not copied off — reads of keys it held fail over to their other
// replicas, so drain a shard only when the replication factor covers it.
// No-op when the shard never registered.
func (s *StorageServer) Deregister(ctx context.Context) error {
	s.regMu.Lock()
	routerAddr, advertise := s.routerAddr, s.advertise
	s.regMu.Unlock()
	if routerAddr == "" {
		return nil
	}
	cn, err := DialContext(ctx, routerAddr)
	if err != nil {
		return err
	}
	defer cn.Close()
	if _, err := cn.Call(ctx, &Request{Op: OpDrain, Addr: advertise, Tier: "storage"}); err != nil {
		return err
	}
	s.regMu.Lock()
	if s.routerAddr == routerAddr {
		s.routerAddr = ""
	}
	s.regMu.Unlock()
	return nil
}

// RegisteredSlot returns the storage slot the router assigned at
// Register, or -1 when the shard never registered (or has deregistered).
func (s *StorageServer) RegisteredSlot() int {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.routerAddr == "" {
		return -1
	}
	return s.slot
}

func (s *StorageServer) handle(_ context.Context, req *Request) Response {
	s.requests.Add(1)
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpGet:
		s.mu.RLock()
		v, ok := s.data[req.Key]
		s.mu.RUnlock()
		s.keys.Add(1)
		return Response{OK: true, Value: v, Found: ok}
	case OpMultiGet:
		resp := Response{OK: true, Values: make([][]byte, len(req.Keys)), Founds: make([]bool, len(req.Keys))}
		s.mu.RLock()
		for i, k := range req.Keys {
			resp.Values[i], resp.Founds[i] = s.data[k]
		}
		s.mu.RUnlock()
		s.keys.Add(int64(len(req.Keys)))
		return resp
	case OpPut:
		cp := make([]byte, len(req.Value))
		copy(cp, req.Value)
		s.mu.Lock()
		s.data[req.Key] = cp
		var err error
		if s.wal != nil {
			err = s.logLocked(kvstore.WALPut, req.Key, req.Value)
		}
		s.mu.Unlock()
		if err != nil {
			return errorResponse(fmt.Errorf("storage wal: %w", err))
		}
		return Response{OK: true}
	case OpDrop:
		// The tombstone half of a copy-then-drop migration: the key leaves
		// the shard, and on a durable shard the drop is WAL-logged so a
		// restart replays it and cannot resurrect the migrated-away copy.
		s.mu.Lock()
		_, found := s.data[req.Key]
		delete(s.data, req.Key)
		var err error
		if found && s.wal != nil {
			err = s.logLocked(kvstore.WALDrop, req.Key, nil)
		}
		s.mu.Unlock()
		if err != nil {
			return errorResponse(fmt.Errorf("storage wal: %w", err))
		}
		return Response{OK: true, Found: found}
	case OpStats:
		st := s.Stats()
		return Response{OK: true, Stats: &st}
	}
	return errorResponse(fmt.Errorf("storage: unknown op %q", req.Op))
}

// logLocked appends one write (put or drop) to the WAL and compacts into a
// snapshot once enough records accumulate. Caller holds s.mu (write).
func (s *StorageServer) logLocked(op kvstore.WALOp, key uint64, val []byte) error {
	ver := s.durVer.Add(1)
	if err := s.wal.Append(op, key, ver, val); err != nil {
		return err
	}
	s.sinceSnap++
	if s.sinceSnap < s.snapEvery {
		return nil
	}
	if _, err := kvstore.WriteSnapshot(s.snapPath, s.durVer.Load(), func(emit func(op kvstore.WALOp, key, ver uint64, val []byte)) {
		for k, v := range s.data {
			emit(kvstore.WALPut, k, 0, v)
		}
	}); err != nil {
		return err
	}
	if err := s.wal.Reset(); err != nil {
		return err
	}
	s.sinceSnap = 0
	s.snapshots++
	return nil
}

// Stats returns the shard's counters (request total, key reads served,
// resident keys) plus its durability counters when it runs a WAL.
func (s *StorageServer) Stats() Stats {
	s.mu.RLock()
	n := len(s.data)
	wal := s.wal
	snapshots := s.snapshots
	replayedRecords := s.replayedRecords
	replayedBytes := s.replayedBytes
	s.mu.RUnlock()
	st := Stats{
		Role:     "storage",
		Requests: s.requests.Load(),
		Reads:    s.keys.Load(),
		Keys:     int64(n),
	}
	if wal != nil {
		walBytes, walRecords, _ := wal.Stats()
		st.Durable = "fresh"
		if replayedRecords > 0 {
			st.Durable = "warm"
		}
		st.WALBytes = walBytes
		st.WALRecords = walRecords
		st.Snapshots = snapshots
		st.DurableVersion = s.durVer.Load()
		st.ReplayedBytes = replayedBytes
	}
	return st
}

// Down-shard probe schedule: the first re-ping comes probeBase after a
// shard is marked down (a restarted shard rejoins the read path fast),
// then the per-shard interval doubles up to probeMax with jitter, so a
// long-dead shard is not hammered in lockstep by every client. Each
// ping's timeout is the shard's current interval.
const (
	probeBase = 50 * time.Millisecond
	probeMax  = 2 * time.Second
)

// probeState tracks one down shard's re-ping schedule; the zero value
// means the shard is healthy.
type probeState struct {
	interval time.Duration // current backoff interval
	next     time.Time     // earliest next probe
}

// StorageClient shards keys over a set of storage servers, over one
// connection pool per shard. Unreplicated (replicas == 1) placement is
// the same murmur hash the legacy in-process tier uses; with replicas
// >= 2 every key lives on R shards placed by rendezvous hashing over the
// shard list, writes go to every replica, and reads prefer the
// highest-scored healthy replica with transparent failover: a shard that
// fails a call is marked down (per-replica health), its keys retry on
// their next replica, and a background probe revives it when it answers
// pings again.
type StorageClient struct {
	pools    []*Pool
	replicas int
	slots    []int // 0..n-1, the rendezvous placement domain

	down      []atomic.Bool
	failovers atomic.Int64

	// overrides pins keys migrated away from their rendezvous placement to
	// their new replica set (primary first). The router owns the
	// authoritative table and pushes complete replacements (OpPlacement);
	// entries naming slots this client does not know are ignored, so an
	// older client degrades to baseline placement instead of misreading.
	ovMu      sync.RWMutex
	overrides map[uint64][]int

	probeStop chan struct{}
	closeOnce sync.Once
}

// DialStorage connects to every storage shard unreplicated, verifying
// each is reachable.
func DialStorage(addrs []string) (*StorageClient, error) {
	return DialStorageReplicated(addrs, 1)
}

// DialStorageReplicated connects to every storage shard with the given
// replication factor, verifying each shard is reachable. The loader and
// every processor of a deployment must agree on the factor — placement is
// client-side, exactly like the hash placement it generalises.
func DialStorageReplicated(addrs []string, replicas int) (*StorageClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("rpc: no storage servers")
	}
	if replicas < 1 || replicas > topology.MaxReplicas {
		return nil, fmt.Errorf("rpc: storage replicas = %d outside [1,%d]", replicas, topology.MaxReplicas)
	}
	if replicas > len(addrs) {
		return nil, fmt.Errorf("rpc: %d storage replicas need at least that many shards, have %d", replicas, len(addrs))
	}
	sc := &StorageClient{replicas: replicas, probeStop: make(chan struct{})}
	for i, a := range addrs {
		p := NewPool(a, 0)
		if err := p.Ping(context.Background()); err != nil {
			sc.Close()
			p.Close()
			return nil, err
		}
		sc.pools = append(sc.pools, p)
		sc.slots = append(sc.slots, i)
	}
	sc.down = make([]atomic.Bool, len(sc.pools))
	// The probe runs in every mode: even unreplicated clients mark a
	// shard down after a failure, and only the probe clears the flag when
	// the shard answers again.
	go sc.probeLoop()
	return sc, nil
}

// Close closes every shard pool and stops the health probe.
func (sc *StorageClient) Close() {
	sc.closeOnce.Do(func() { close(sc.probeStop) })
	for _, p := range sc.pools {
		if p != nil {
			p.Close()
		}
	}
}

// Replicas returns the client's replication factor.
func (sc *StorageClient) Replicas() int { return sc.replicas }

// Failovers returns how many times a shard call failed and its keys were
// retried on another replica — the client-side health signal.
func (sc *StorageClient) Failovers() int64 { return sc.failovers.Load() }

// probeLoop re-pings down shards so they rejoin the read path once they
// answer again. Each down shard backs off independently: probeBase on
// first detection, doubling to probeMax, with jitter spreading probes of
// shards that died together. A successful ping clears both the health
// flag and the backoff. Close cancels the loop's context, so even an
// in-flight ping unblocks immediately.
func (sc *StorageClient) probeLoop() {
	root, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-sc.probeStop
		cancel()
	}()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	state := make([]probeState, len(sc.pools))
	t := time.NewTimer(probeBase)
	defer t.Stop()
	for {
		select {
		case <-sc.probeStop:
			return
		case <-t.C:
		}
		now := time.Now()
		// Wake at least every probeBase to notice newly-down shards (a
		// failed call flips the flag without signalling this loop).
		wake := now.Add(probeBase)
		for i := range sc.down {
			if !sc.down[i].Load() {
				state[i] = probeState{}
				continue
			}
			if state[i].interval == 0 {
				state[i] = probeState{interval: probeBase, next: now}
			}
			if state[i].next.After(now) {
				if state[i].next.Before(wake) {
					wake = state[i].next
				}
				continue
			}
			ctx, pcancel := context.WithTimeout(root, state[i].interval)
			err := sc.pools[i].Ping(ctx)
			pcancel()
			if err == nil {
				sc.down[i].Store(false)
				state[i] = probeState{}
				continue
			}
			iv := state[i].interval * 2
			if iv > probeMax {
				iv = probeMax
			}
			// Jittered next probe in [iv/2, 3iv/2): capped exponential
			// backoff without client lockstep.
			state[i] = probeState{interval: iv, next: time.Now().Add(iv/2 + time.Duration(rng.Int63n(int64(iv))))}
			if state[i].next.Before(wake) {
				wake = state[i].next
			}
		}
		d := time.Until(wake)
		if d < probeBase/4 {
			d = probeBase / 4
		}
		t.Reset(d)
	}
}

// markDown records a failed shard call.
func (sc *StorageClient) markDown(shard int) {
	sc.failovers.Add(1)
	sc.down[shard].Store(true)
}

// SetOverrides replaces the client's placement-override table. The slices
// in the map are retained, not copied — callers hand over ownership.
func (sc *StorageClient) SetOverrides(ov map[uint64][]int) {
	sc.ovMu.Lock()
	sc.overrides = ov
	sc.ovMu.Unlock()
}

// overrideFor returns key's pinned placement, or nil. A pin naming a slot
// outside this client's shard list is ignored wholesale.
func (sc *StorageClient) overrideFor(key uint64) []int {
	sc.ovMu.RLock()
	pl := sc.overrides[key]
	sc.ovMu.RUnlock()
	for _, slot := range pl {
		if slot < 0 || slot >= len(sc.pools) {
			return nil
		}
	}
	return pl
}

// placement appends key's replica shards (primary first) to dst: the
// override pin when migration moved the key, rendezvous placement
// otherwise.
func (sc *StorageClient) placement(key uint64, dst []int) []int {
	if ov := sc.overrideFor(key); len(ov) > 0 {
		return append(dst[:0], ov...)
	}
	if sc.replicas <= 1 {
		return append(dst[:0], int(hash.Key64(key, 0)%uint64(len(sc.pools))))
	}
	return topology.RendezvousN(key, sc.slots, sc.replicas, dst)
}

// shardFor returns the shard a read of key prefers.
func (sc *StorageClient) shardFor(key uint64) int {
	var buf [topology.MaxReplicas]int
	return sc.placement(key, buf[:0])[0]
}

// Put stores one encoded record on every replica of its placement set.
// Shards marked down are skipped on the first pass (their copy is
// repaired by reloading) — but the flag is advisory, so if no replica
// looked up, every placement shard is tried anyway. The write fails only
// when no replica accepted it.
func (sc *StorageClient) Put(ctx context.Context, key uint64, value []byte) error {
	var buf [topology.MaxReplicas]int
	pl := sc.placement(key, buf[:0])
	var firstErr error
	wrote := 0
	tryPut := func(shard int) {
		if _, err := sc.pools[shard].Call(ctx, &Request{Op: OpPut, Key: key, Value: value}); err != nil {
			// Don't poison the health flags with our own cancellation.
			if ctx.Err() == nil {
				sc.markDown(shard)
			}
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		wrote++
	}
	var tried uint8
	for i, shard := range pl {
		if sc.down[shard].Load() {
			continue
		}
		tried |= 1 << i
		tryPut(shard)
	}
	if wrote == 0 {
		for i, shard := range pl {
			if tried&(1<<i) != 0 {
				continue
			}
			tryPut(shard)
		}
	}
	if wrote == 0 {
		if firstErr != nil {
			return firstErr
		}
		return &remoteError{addr: "storage", msg: fmt.Sprintf("no live replica accepted key %d", key), kind: query.ErrUnavailable}
	}
	return nil
}

// MultiGet fetches the records for ids, grouping keys by their preferred
// replica and issuing the per-shard multigets concurrently (the networked
// analogue of the engine's batched frontier fetches). A shard that fails
// mid-call is marked down and its keys transparently retry on their next
// replica; only a key with no answering replica left fails the call.
func (sc *StorageClient) MultiGet(ctx context.Context, ids []graph.NodeID) (map[graph.NodeID]gstore.Record, error) {
	out := make(map[graph.NodeID]gstore.Record, len(ids))
	// tried is a bitmask over each key's placement indices: a key is
	// exhausted only once every replica has actually been contacted —
	// down flags are advisory and must never skip a replica for good.
	tried := make(map[graph.NodeID]uint8, len(ids))
	pending := ids
	var firstErr error
	for round := 0; len(pending) > 0 && round <= sc.replicas; round++ {
		groups := make(map[int][]graph.NodeID)
		chosen := make(map[graph.NodeID]int, len(pending))
		var buf [topology.MaxReplicas]int
		for _, id := range pending {
			pl := sc.placement(uint64(id), buf[:0])
			// Prefer the first untried healthy replica, falling back to
			// the first untried one of any health.
			pick := -1
			for j := range pl {
				if tried[id]&(1<<j) != 0 {
					continue
				}
				if pick < 0 {
					pick = j
				}
				if !sc.down[pl[j]].Load() {
					pick = j
					break
				}
			}
			if pick < 0 {
				if firstErr == nil {
					firstErr = &remoteError{addr: "storage", msg: fmt.Sprintf("key %d: every replica failed", id), kind: query.ErrUnavailable}
				}
				continue
			}
			chosen[id] = pick
			groups[pl[pick]] = append(groups[pl[pick]], id)
		}
		type shardResult struct {
			shard int
			ids   []graph.NodeID
			resp  Response
			err   error
		}
		results := make(chan shardResult, len(groups))
		for shard, gids := range groups {
			go func(shard int, gids []graph.NodeID) {
				keys := make([]uint64, len(gids))
				for i, id := range gids {
					keys[i] = uint64(id)
				}
				resp, err := sc.pools[shard].Call(ctx, &Request{Op: OpMultiGet, Keys: keys})
				results <- shardResult{shard: shard, ids: gids, resp: resp, err: err}
			}(shard, gids)
		}
		var retry []graph.NodeID
		for range groups {
			r := <-results
			if r.err != nil {
				// The caller gave up (ctx done) — don't burn the health
				// flags or retries on our own cancellation.
				if ctx.Err() != nil {
					if firstErr == nil {
						firstErr = r.err
					}
					continue
				}
				sc.markDown(r.shard)
				for _, id := range r.ids {
					tried[id] |= 1 << chosen[id]
				}
				retry = append(retry, r.ids...)
				continue
			}
			for i, id := range r.ids {
				if !r.resp.Founds[i] {
					continue
				}
				rec, err := gstore.Decode(graph.NodeID(id), r.resp.Values[i])
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				out[id] = rec
			}
		}
		pending = retry
	}
	return out, firstErr
}

// LoadGraph bulk-loads every live node of g across the shards (all
// replicas of each key).
func (sc *StorageClient) LoadGraph(ctx context.Context, g *graph.Graph) error {
	buf := make([]byte, 0, 1024)
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		if !g.Exists(id) {
			continue
		}
		buf = gstore.Encode(buf[:0], gstore.RecordOf(g, id))
		if err := sc.Put(ctx, uint64(id), buf); err != nil {
			return err
		}
	}
	return nil
}
