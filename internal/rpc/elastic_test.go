package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/topology"
)

// startElasticCluster builds storage + nProcs processors + router and
// returns the pieces needed to grow the tier at runtime.
func startElasticCluster(t *testing.T, g *graph.Graph, nProcs int, policy string) (*RouterServer, *RouterClient, []string) {
	t.Helper()
	var storageAddrs []string
	for i := 0; i < 2; i++ {
		ss, err := NewStorageServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ss.Close() })
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	sc, err := DialStorage(storageAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.LoadGraph(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	sc.Close()

	var procAddrs []string
	for i := 0; i < nProcs; i++ {
		ps, err := NewProcessorServer("127.0.0.1:0", storageAddrs, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ps.Close() })
		procAddrs = append(procAddrs, ps.Addr())
	}
	strat, err := BuildStrategy(policy, g, nProcs, 7)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRouterServer("127.0.0.1:0", RouterConfig{ProcessorAddrs: procAddrs, Strategy: strat, PolicyName: policy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	cl, err := DialRouter(context.Background(), rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return rs, cl, storageAddrs
}

func TestJoinAdmitsProcessorAtRuntime(t *testing.T) {
	g := gen.LocalWeb(1200, 8, 60, 0.01, 4)
	rs, cl, storageAddrs := startElasticCluster(t, g, 2, "stablehash")
	ctx := context.Background()
	epochBefore := rs.Epoch()

	ps, err := NewProcessorServer("127.0.0.1:0", storageAddrs, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	slot, err := ps.Register(ctx, rs.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	if slot != 2 {
		t.Fatalf("joined slot = %d, want 2", slot)
	}
	if rs.Epoch() <= epochBefore {
		t.Fatal("join did not bump the epoch")
	}
	// Re-joining the same address is idempotent: same slot, no new epoch.
	epoch := rs.Epoch()
	again, err := ps.Register(ctx, rs.Addr(), "")
	if err != nil || again != slot {
		t.Fatalf("re-join: slot=%d err=%v", again, err)
	}
	if rs.Epoch() != epoch {
		t.Fatal("idempotent re-join bumped the epoch")
	}

	// The joined processor receives work.
	qs := query.Hotspot(g, query.WorkloadSpec{NumHotspots: 20, QueriesPerHotspot: 10, R: 2, H: 2, Seed: 5})
	for _, q := range qs {
		res, err := cl.Execute(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res != query.Answer(g, q) {
			t.Fatalf("wrong result after join for query %d", q.ID)
		}
	}
	snap, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != rs.Epoch() || snap.Processors != 3 {
		t.Fatalf("snapshot epoch/processors = %d/%d", snap.Epoch, snap.Processors)
	}
	if snap.PerProc[slot].Status != "active" || snap.PerProc[slot].Addr != ps.Addr() {
		t.Fatalf("joined member row = %+v", snap.PerProc[slot])
	}
	if snap.PerProc[slot].Assigned == 0 || snap.PerProc[slot].Executed == 0 {
		t.Fatalf("joined member got no work: %+v", snap.PerProc[slot])
	}
	// The transition is in the epoch log.
	foundJoin := false
	for _, ev := range snap.Epochs {
		if ev.Joined > 0 {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Fatalf("no join event in epoch log: %+v", snap.Epochs)
	}
}

func TestJoinRejectsUnreachableAddress(t *testing.T) {
	g := gen.LocalWeb(600, 6, 40, 0.01, 4)
	rs, _, _ := startElasticCluster(t, g, 1, "nextready")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	cn, err := DialContext(ctx, rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	if _, err := cn.Call(ctx, &Request{Op: OpJoin, Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable processor admitted")
	}
	if _, err := cn.Call(ctx, &Request{Op: OpJoin}); err == nil {
		t.Fatal("empty join address accepted")
	}
	if rs.View().Slots() != 1 {
		t.Fatal("failed joins grew the membership")
	}
}

func TestDrainRemovesProcessorCleanly(t *testing.T) {
	g := gen.LocalWeb(1200, 8, 60, 0.01, 4)
	rs, cl, _ := startElasticCluster(t, g, 3, "stablehash")
	ctx := context.Background()
	qs := query.Hotspot(g, query.WorkloadSpec{NumHotspots: 10, QueriesPerHotspot: 5, R: 2, H: 2, Seed: 5})
	for _, q := range qs[:len(qs)/2] {
		if _, err := cl.Execute(ctx, q); err != nil {
			t.Fatal(err)
		}
	}

	cn, err := DialContext(ctx, rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	resp, err := cn.Call(ctx, &Request{Op: OpDrain, Proc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Proc != 1 || resp.Epoch <= 1 {
		t.Fatalf("drain response = %+v", resp)
	}
	// Idle at drain time: the member departs immediately.
	if st := rs.View().Status(1); st != topology.Left {
		t.Fatalf("drained member status = %v, want left", st)
	}

	// Queries keep working and never touch the departed member.
	executedBefore := int64(-1)
	if snap, err := cl.Stats(ctx); err == nil {
		executedBefore = snap.PerProc[1].Executed
	}
	for _, q := range qs[len(qs)/2:] {
		res, err := cl.Execute(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res != query.Answer(g, q) {
			t.Fatalf("wrong result after drain for query %d", q.ID)
		}
	}
	snap, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Processors != 2 || snap.PerProc[1].Status != "left" {
		t.Fatalf("post-drain snapshot: procs=%d status=%q", snap.Processors, snap.PerProc[1].Status)
	}
	if snap.PerProc[1].Executed != executedBefore {
		t.Fatalf("departed member kept executing: %d -> %d", executedBefore, snap.PerProc[1].Executed)
	}
	// Draining an unknown member errors with the typed bad-query code.
	if _, err := cn.Call(ctx, &Request{Op: OpDrain, Proc: 99}); !errors.Is(err, query.ErrBadQuery) {
		t.Fatalf("drain of unknown slot: %v", err)
	}
}

func TestExecuteResponseCarriesEpoch(t *testing.T) {
	g := gen.LocalWeb(600, 6, 40, 0.01, 4)
	rs, _, _ := startElasticCluster(t, g, 2, "nextready")
	ctx := context.Background()
	cn, err := DialContext(ctx, rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	q := query.Query{Type: query.NeighborAgg, Node: 1, Hops: 1, Dir: graph.Out}
	resp, err := cn.Call(ctx, execRequest(ctx, []query.Query{q}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != rs.Epoch() {
		t.Fatalf("execute response epoch = %d, want %d", resp.Epoch, rs.Epoch())
	}
}
