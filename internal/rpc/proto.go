// Package rpc implements a real networked deployment of the decoupled
// architecture: storage servers, query processors and the query router as
// separate TCP daemons speaking a small gob protocol.
//
// The virtual-time engine in internal/core is the instrument that
// reproduces the paper's measurements; this package demonstrates that the
// same components (hash-partitioned adjacency storage, LRU-cached
// processors, strategy-driven router) run over a real network. Every call
// takes a context.Context: deadlines propagate over the wire (the router
// forwards the client's remaining budget to the processors) and
// cancellation unblocks in-flight calls. Failures map onto the shared
// typed errors (query.ErrBadQuery, query.ErrUnknownNode,
// query.ErrUnavailable) on both sides of the connection.
package rpc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mquery"
	"repro/internal/query"
)

// Op enumerates protocol operations.
type Op string

// Protocol operations.
const (
	// OpGet fetches one value from a storage server.
	OpGet Op = "get"
	// OpMultiGet fetches many values from a storage server.
	OpMultiGet Op = "multiget"
	// OpPut stores one value on a storage server.
	OpPut Op = "put"
	// OpExecute runs a batch of one or more queries on a processor (or, via
	// the router, on whichever processors the routing strategy picks).
	OpExecute Op = "execute"
	// OpStats asks a daemon for its counters.
	OpStats Op = "stats"
	// OpPing checks liveness.
	OpPing Op = "ping"
	// OpJoin registers a processor with the router at runtime: the request
	// carries the processor's advertised address, the response its assigned
	// slot and the new topology epoch (membership op, router role only).
	OpJoin Op = "join"
	// OpDrain deregisters a processor cleanly: it stops receiving new work
	// and leaves the membership once its in-flight queries finish on the
	// old view — the graceful-shutdown path, as opposed to just vanishing
	// and being a dead peer.
	OpDrain Op = "drain"
	// OpMutate applies a batch of graph mutations through the router: the
	// router serialises writers, rewrites the affected records on every
	// replica of their placement, and evicts them from every active
	// processor's cache before acking — read-your-writes for any client of
	// the deployment (router role only).
	OpMutate Op = "mutate"
	// OpEvict removes keys from a processor's record cache (processor
	// role): the router fans it out after a mutation so no cache serves a
	// pre-write record.
	OpEvict Op = "evict"
	// OpHeat drains a processor's per-record storage-miss heat since the
	// previous OpHeat (processor role): the planner's read signal.
	OpHeat Op = "heat"
	// OpMigrate runs one adaptive-placement planning cycle on the router:
	// poll heat, plan bounded moves, execute each as copy → push placement
	// overrides → drop the old copy (router role only).
	OpMigrate Op = "migrate"
	// OpPlacement replaces a processor's placement-override table
	// (processor role): keys pinned away from their rendezvous placement
	// by migration resolve through it.
	OpPlacement Op = "placement"
	// OpDrop deletes one key from a storage shard — the tombstone half of
	// a copy-then-drop migration. Durable shards log it, so a restart
	// cannot resurrect the migrated-away copy (storage role).
	OpDrop Op = "drop"
)

// Mutation op codes on the wire; the values match internal/core's MutOp so
// both transports speak one enumeration.
const (
	// MutOpUpsertNode creates Node carrying Label, or relabels it.
	MutOpUpsertNode uint8 = 1
	// MutOpAddEdge ensures the edge Node->To with Label exists.
	MutOpAddEdge uint8 = 2
	// MutOpRemoveEdge removes the edge Node->To (any label).
	MutOpRemoveEdge uint8 = 3
)

// Mutation is one graph write as it travels to the router. Label rides as
// a string (the router interns it against the loaded graph's label table),
// exactly like Query.CountLabel.
type Mutation struct {
	Op    uint8
	Node  graph.NodeID
	To    graph.NodeID
	Label string
}

// validateMutation mirrors core.Mutation.Validate: malformed mutations are
// rejected with the typed query.ErrBadQuery before anything executes.
func validateMutation(m *Mutation) error {
	switch m.Op {
	case MutOpUpsertNode:
		if m.To != 0 {
			return fmt.Errorf("%w: upsert-node carries an edge destination", query.ErrBadQuery)
		}
	case MutOpAddEdge, MutOpRemoveEdge:
		if m.Node == m.To {
			return fmt.Errorf("%w: self-loop %d->%d", query.ErrBadQuery, m.Node, m.To)
		}
	default:
		return fmt.Errorf("%w: unknown mutation op %d", query.ErrBadQuery, m.Op)
	}
	return nil
}

// HotKey is one entry of a processor's drained heat: a record and how many
// storage misses it cost since the last drain.
type HotKey struct {
	Key   uint64
	Reads int64
}

// Request is the request envelope. Only the fields of the active operation
// are populated; everything else stays at its zero value (nil for the
// Exec payload), so gob never puts unused payloads on the wire — a ping
// encodes to a few bytes, not the full union.
type Request struct {
	Op Op
	// Key and Value serve OpGet / OpPut.
	Key   uint64
	Value []byte
	// Keys serves OpMultiGet.
	Keys []uint64
	// Exec serves OpExecute; nil for every other op.
	Exec *ExecRequest
	// Addr serves OpJoin (the joining member's advertised address) and
	// may identify the member to OpDrain instead of Proc.
	Addr string
	// Proc identifies the member slot for OpDrain (ignored when Addr is
	// set).
	Proc int
	// Tier selects which tier a membership op (OpJoin / OpDrain) targets:
	// "storage" for the storage tier, empty or "proc" for the processing
	// tier. Each tier has its own epoch counter; the response's Epoch is
	// the targeted tier's.
	Tier string
	// Version serves OpJoin for the storage tier: the joining shard's
	// durable version watermark (records recovered from its local WAL +
	// snapshot). A restarting shard announces how warm it came back, so
	// the router's topology view can distinguish a cold joiner (0) from a
	// warm rejoin. Zero for non-durable shards and processor joins; gob
	// omits it then.
	Version uint64
	// Muts serves OpMutate; nil for every other op.
	Muts []Mutation
	// Overrides serves OpPlacement: the full placement-override table,
	// replacing whatever the processor held (migration pins are router
	// state; the push is always the complete picture).
	Overrides map[uint64][]int
	// Deadline carries the client context's absolute deadline in Unix
	// nanoseconds for ops outside OpExecute (which carries its own inside
	// Exec); 0 = none.
	Deadline int64
}

// ExecRequest is the OpExecute payload: a batch of queries plus the
// client's absolute deadline, which daemons re-impose on their own
// downstream calls (router → processor → storage).
type ExecRequest struct {
	Queries []query.Query
	// Subtasks serves the router→processor leg of a multi-anchor query:
	// the per-anchor work units of one wave routed to this processor.
	// Mutually exclusive with Queries; nil on the client→router leg.
	Subtasks []mquery.Subtask
	// Deadline is the client context's deadline in Unix nanoseconds
	// (0 = none).
	Deadline int64
}

// Response is the response envelope. As with Request, inactive payloads
// stay zero/nil and are omitted from the wire.
type Response struct {
	OK   bool
	Err  string
	Code ErrCode
	// Value and Found serve OpGet.
	Value []byte
	Found bool
	// Values and Founds serve OpMultiGet.
	Values [][]byte
	Founds []bool
	// Results serves OpExecute, positionally aligned with Exec.Queries.
	Results []query.Result
	// Partials serves a subtask OpExecute, positionally aligned with
	// Exec.Subtasks.
	Partials []mquery.Partial
	// Epoch stamps the router's topology epoch on the response: the epoch
	// the queries of an OpExecute were routed under (in-flight queries
	// drain on the view of the epoch that routed them), or the epoch a
	// membership op produced.
	Epoch uint64
	// Proc serves OpJoin: the slot the router assigned to the joiner.
	Proc int
	// ProcCache piggybacks the processor's cumulative cache counters on
	// OpExecute responses, giving the router a live feedback signal for
	// adaptive routing strategies without extra round trips.
	ProcCache *metrics.CacheCounters
	// Stats serves OpStats; nil for every other op.
	Stats *Stats
	// Applied serves OpMutate (mutations applied before the first failure)
	// and OpMigrate (records moved this cycle).
	Applied int
	// Hot serves OpHeat: the processor's hottest storage-missed records
	// since the previous drain, hottest first.
	Hot []HotKey
}

// Stats carries daemon counters over the wire.
type Stats struct {
	Role     string
	Requests int64
	Keys     int64
	// Reads counts key reads served (storage role): unlike Requests it
	// excludes puts, pings and stats polls, so it is the read-traffic
	// signal the router's storage snapshot reports.
	Reads    int64
	Hits     int64
	Misses   int64
	Executed int64
	// Cache carries a processor's full cache counters (nil for other
	// roles).
	Cache *metrics.CacheCounters
	// Durable reports a storage shard's durability state ("fresh" for a
	// durable shard that started empty, "warm" for one that recovered
	// state from its local snapshot + WAL; empty for shards running
	// without a WAL). The fields below are the shard's durability
	// counters; gob omits all of them when zero, so non-durable
	// deployments pay no wire cost.
	Durable        string
	WALBytes       int64
	WALRecords     int64
	Snapshots      int64
	DurableVersion uint64
	ReplayedBytes  int64
	// Snapshot carries the router's system-wide observability snapshot
	// (nil for other roles): the same structure the virtual-time engine
	// reports, so local and networked clients read identical stats.
	Snapshot *metrics.Snapshot
}

// ErrCode classifies a remote failure so the client can reconstruct the
// matching typed error.
type ErrCode string

// Error codes.
const (
	// CodeBadQuery maps to query.ErrBadQuery.
	CodeBadQuery ErrCode = "bad-query"
	// CodeUnknownNode maps to query.ErrUnknownNode.
	CodeUnknownNode ErrCode = "unknown-node"
	// CodeUnavailable maps to query.ErrUnavailable.
	CodeUnavailable ErrCode = "unavailable"
	// CodeConflict maps to query.ErrConflict.
	CodeConflict ErrCode = "conflict"
	// CodeInternal is everything else.
	CodeInternal ErrCode = "internal"
)

// sentinelFor returns the typed error a code maps to (nil for internal).
func sentinelFor(code ErrCode) error {
	switch code {
	case CodeBadQuery:
		return query.ErrBadQuery
	case CodeUnknownNode:
		return query.ErrUnknownNode
	case CodeUnavailable:
		return query.ErrUnavailable
	case CodeConflict:
		return query.ErrConflict
	}
	return nil
}

// errorResponse wraps err into a Response, classifying it for the client.
func errorResponse(err error) Response {
	code := CodeInternal
	switch {
	case errors.Is(err, query.ErrBadQuery):
		code = CodeBadQuery
	case errors.Is(err, query.ErrUnknownNode):
		code = CodeUnknownNode
	case errors.Is(err, query.ErrConflict):
		code = CodeConflict
	case errors.Is(err, query.ErrUnavailable), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = CodeUnavailable
	}
	return Response{Err: err.Error(), Code: code}
}

// remoteError is a failure reported by (or on the way to) a remote daemon.
// It unwraps to the shared typed sentinel so errors.Is works across the
// network boundary.
type remoteError struct {
	addr string
	msg  string
	kind error // sentinel, or nil
}

func (e *remoteError) Error() string { return "rpc: " + e.addr + ": " + e.msg }
func (e *remoteError) Unwrap() error { return e.kind }

// respError reconstructs the typed error carried by a response.
func respError(addr string, resp *Response) error {
	if resp.Err == "" {
		return nil
	}
	return &remoteError{addr: addr, msg: resp.Err, kind: sentinelFor(resp.Code)}
}

// execRequest assembles an OpExecute request, capturing ctx's deadline so
// daemons downstream can honour it.
func execRequest(ctx context.Context, qs []query.Query) *Request {
	ex := &ExecRequest{Queries: qs}
	if dl, ok := ctx.Deadline(); ok {
		ex.Deadline = dl.UnixNano()
	}
	return &Request{Op: OpExecute, Exec: ex}
}

// Conn is one gob-encoded client connection; safe for concurrent use
// (requests are serialised). A call that fails — including by cancellation
// or deadline, which abandon a response mid-stream — breaks the
// connection: subsequent calls return query.ErrUnavailable and the caller
// (normally a Pool) discards it.
type Conn struct {
	mu     sync.Mutex
	c      net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	addr   string
	broken bool
}

// Dial connects to a daemon.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a daemon, abandoning the connection attempt
// when ctx is cancelled or its deadline passes.
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("rpc: %s: dial: %w", addr, cerr)
		}
		return nil, &remoteError{addr: addr, msg: "dial: " + err.Error(), kind: query.ErrUnavailable}
	}
	return &Conn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c), addr: addr}, nil
}

// Addr returns the remote address.
func (cn *Conn) Addr() string { return cn.addr }

// Broken reports whether an earlier failure poisoned the connection.
func (cn *Conn) Broken() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.broken
}

// Call sends req and waits for the response, honouring ctx: a deadline is
// applied to the socket, and cancellation forces the blocked read/write to
// return immediately.
func (cn *Conn) Call(ctx context.Context, req *Request) (Response, error) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.broken {
		return Response{}, &remoteError{addr: cn.addr, msg: "connection broken by earlier failure", kind: query.ErrUnavailable}
	}
	if err := ctx.Err(); err != nil {
		return Response{}, fmt.Errorf("rpc: %s: %w", cn.addr, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		cn.c.SetDeadline(dl)
	} else {
		cn.c.SetDeadline(time.Time{})
	}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-done:
				// Force the in-flight socket op to fail now.
				cn.c.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
		defer func() { close(stop); <-exited }()
	}
	if err := cn.enc.Encode(req); err != nil {
		cn.broken = true
		return Response{}, cn.callError(ctx, "send", err)
	}
	var resp Response
	if err := cn.dec.Decode(&resp); err != nil {
		cn.broken = true
		return Response{}, cn.callError(ctx, "recv", err)
	}
	if resp.Err != "" {
		return resp, respError(cn.addr, &resp)
	}
	return resp, nil
}

// callError attributes a transport failure: the context's own error when
// the caller cancelled or timed out, query.ErrUnavailable otherwise.
func (cn *Conn) callError(ctx context.Context, phase string, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("rpc: %s: %s: %w", cn.addr, phase, cerr)
	}
	return &remoteError{addr: cn.addr, msg: phase + ": " + err.Error(), kind: query.ErrUnavailable}
}

// Close shuts the connection down.
func (cn *Conn) Close() error { return cn.c.Close() }

// connTracker records a daemon's live connections so Close can sever
// them: closing only the listener would leave pooled client connections
// answering, which is not how a killed server behaves — and the replica
// failover machinery exists precisely for servers that stop answering.
type connTracker struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// add registers c, reporting false when the tracker is already closed.
func (ct *connTracker) add(c net.Conn) bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.closed {
		return false
	}
	if ct.conns == nil {
		ct.conns = make(map[net.Conn]struct{})
	}
	ct.conns[c] = struct{}{}
	return true
}

func (ct *connTracker) remove(c net.Conn) {
	ct.mu.Lock()
	delete(ct.conns, c)
	ct.mu.Unlock()
}

// closeAll severs every live connection and refuses new ones.
func (ct *connTracker) closeAll() {
	ct.mu.Lock()
	ct.closed = true
	conns := make([]net.Conn, 0, len(ct.conns))
	for c := range ct.conns {
		conns = append(conns, c)
	}
	ct.conns = nil
	ct.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// serve runs the accept loop for a daemon, dispatching each connection to
// its own goroutine that calls handle per request. The handler context
// carries the deadline an OpExecute request propagated from its client.
// serve returns when the listener closes; ct (optional) lets the daemon
// sever live connections on Close.
func serve(ln net.Listener, handle func(context.Context, *Request) Response, ct *connTracker) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		if ct != nil && !ct.add(c) {
			c.Close()
			return
		}
		go func(c net.Conn) {
			defer func() {
				if ct != nil {
					ct.remove(c)
				}
				c.Close()
			}()
			dec := gob.NewDecoder(c)
			enc := gob.NewEncoder(c)
			for {
				var req Request
				if err := dec.Decode(&req); err != nil {
					return
				}
				ctx := context.Background()
				var cancel context.CancelFunc
				if req.Exec != nil && req.Exec.Deadline > 0 {
					ctx, cancel = context.WithDeadline(ctx, time.Unix(0, req.Exec.Deadline))
				} else if req.Deadline > 0 {
					ctx, cancel = context.WithDeadline(ctx, time.Unix(0, req.Deadline))
				}
				resp := handle(ctx, &req)
				if cancel != nil {
					cancel()
				}
				if err := enc.Encode(&resp); err != nil {
					return
				}
			}
		}(c)
	}
}
