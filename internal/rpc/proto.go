// Package rpc implements a real networked deployment of the decoupled
// architecture: storage servers, query processors and the query router as
// separate TCP daemons speaking a hand-rolled, length-prefixed binary
// protocol with pipelined connections.
//
// The virtual-time engine in internal/core is the instrument that
// reproduces the paper's measurements; this package demonstrates that the
// same components (hash-partitioned adjacency storage, LRU-cached
// processors, strategy-driven router) run over a real network. Every call
// takes a context.Context: deadlines propagate over the wire (the router
// forwards the client's remaining budget to the processors) and
// cancellation unblocks in-flight calls. Failures map onto the shared
// typed errors (query.ErrBadQuery, query.ErrUnknownNode,
// query.ErrUnavailable) on both sides of the connection.
//
// Wire format: see wire.go (framing) and codec.go (payloads). Every frame
// carries a tag, and each connection multiplexes many in-flight calls — a
// per-connection demux goroutine matches response tags to waiting callers,
// so a cancelled or slow call never blocks (or poisons) the shared socket.
package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mquery"
	"repro/internal/query"
)

// Op enumerates protocol operations. On the wire it is a single byte.
type Op uint8

// Protocol operations.
const (
	// OpPing checks liveness.
	OpPing Op = 1 + iota
	// OpGet fetches one value from a storage server.
	OpGet
	// OpMultiGet fetches many values from a storage server.
	OpMultiGet
	// OpPut stores one value on a storage server.
	OpPut
	// OpExecute runs a batch of one or more queries on a processor (or, via
	// the router, on whichever processors the routing strategy picks).
	OpExecute
	// OpStats asks a daemon for its counters.
	OpStats
	// OpJoin registers a processor with the router at runtime: the request
	// carries the processor's advertised address, the response its assigned
	// slot and the new topology epoch (membership op, router role only).
	OpJoin
	// OpDrain deregisters a processor cleanly: it stops receiving new work
	// and leaves the membership once its in-flight queries finish on the
	// old view — the graceful-shutdown path, as opposed to just vanishing
	// and being a dead peer.
	OpDrain
	// OpMutate applies a batch of graph mutations through the router: the
	// router serialises writers, rewrites the affected records on every
	// replica of their placement, and evicts them from every active
	// processor's cache before acking — read-your-writes for any client of
	// the deployment (router role only).
	OpMutate
	// OpEvict removes keys from a processor's record cache (processor
	// role): the router fans it out after a mutation so no cache serves a
	// pre-write record.
	OpEvict
	// OpHeat drains a processor's per-record storage-miss heat since the
	// previous OpHeat (processor role): the planner's read signal.
	OpHeat
	// OpMigrate runs one adaptive-placement planning cycle on the router:
	// poll heat, plan bounded moves, execute each as copy → push placement
	// overrides → drop the old copy (router role only).
	OpMigrate
	// OpPlacement replaces a processor's placement-override table
	// (processor role): keys pinned away from their rendezvous placement
	// by migration resolve through it.
	OpPlacement
	// OpDrop deletes one key from a storage shard — the tombstone half of
	// a copy-then-drop migration. Durable shards log it, so a restart
	// cannot resurrect the migrated-away copy (storage role).
	OpDrop
)

func (op Op) String() string {
	switch op {
	case OpPing:
		return "ping"
	case OpGet:
		return "get"
	case OpMultiGet:
		return "multiget"
	case OpPut:
		return "put"
	case OpExecute:
		return "execute"
	case OpStats:
		return "stats"
	case OpJoin:
		return "join"
	case OpDrain:
		return "drain"
	case OpMutate:
		return "mutate"
	case OpEvict:
		return "evict"
	case OpHeat:
		return "heat"
	case OpMigrate:
		return "migrate"
	case OpPlacement:
		return "placement"
	case OpDrop:
		return "drop"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Mutation op codes on the wire; the values match internal/core's MutOp so
// both transports speak one enumeration.
const (
	// MutOpUpsertNode creates Node carrying Label, or relabels it.
	MutOpUpsertNode uint8 = 1
	// MutOpAddEdge ensures the edge Node->To with Label exists.
	MutOpAddEdge uint8 = 2
	// MutOpRemoveEdge removes the edge Node->To (any label).
	MutOpRemoveEdge uint8 = 3
)

// Mutation is one graph write as it travels to the router. Label rides as
// a string (the router interns it against the loaded graph's label table),
// exactly like Query.CountLabel.
type Mutation struct {
	Op    uint8
	Node  graph.NodeID
	To    graph.NodeID
	Label string
}

// validateMutation mirrors core.Mutation.Validate: malformed mutations are
// rejected with the typed query.ErrBadQuery before anything executes.
func validateMutation(m *Mutation) error {
	switch m.Op {
	case MutOpUpsertNode:
		if m.To != 0 {
			return fmt.Errorf("%w: upsert-node carries an edge destination", query.ErrBadQuery)
		}
	case MutOpAddEdge, MutOpRemoveEdge:
		if m.Node == m.To {
			return fmt.Errorf("%w: self-loop %d->%d", query.ErrBadQuery, m.Node, m.To)
		}
	default:
		return fmt.Errorf("%w: unknown mutation op %d", query.ErrBadQuery, m.Op)
	}
	return nil
}

// HotKey is one entry of a processor's drained heat: a record and how many
// storage misses it cost since the last drain.
type HotKey struct {
	Key   uint64
	Reads int64
}

// Request is the request envelope. Only the fields of the active operation
// are populated; everything else stays at its zero value, and the binary
// codec presence-encodes fields — a ping encodes to a few bytes, not the
// full union.
type Request struct {
	Op Op
	// Key and Value serve OpGet / OpPut / OpDrop.
	Key   uint64
	Value []byte
	// Keys serves OpMultiGet and OpEvict.
	Keys []uint64
	// Exec serves OpExecute; nil for every other op.
	Exec *ExecRequest
	// Addr serves OpJoin (the joining member's advertised address) and
	// may identify the member to OpDrain instead of Proc.
	Addr string
	// Proc identifies the member slot for OpDrain (ignored when Addr is
	// set).
	Proc int
	// Tier selects which tier a membership op (OpJoin / OpDrain) targets:
	// "storage" for the storage tier, empty or "proc" for the processing
	// tier. Each tier has its own epoch counter; the response's Epoch is
	// the targeted tier's.
	Tier string
	// Version serves OpJoin for the storage tier: the joining shard's
	// durable version watermark (records recovered from its local WAL +
	// snapshot). A restarting shard announces how warm it came back, so
	// the router's topology view can distinguish a cold joiner (0) from a
	// warm rejoin. Zero for non-durable shards and processor joins.
	Version uint64
	// Muts serves OpMutate; nil for every other op.
	Muts []Mutation
	// Overrides serves OpPlacement: the full placement-override table,
	// replacing whatever the processor held (migration pins are router
	// state; the push is always the complete picture).
	Overrides map[uint64][]int
	// Deadline carries the client context's absolute deadline in Unix
	// nanoseconds (0 = none). On the wire it rides in the frame header,
	// so every op propagates it; decode mirrors it back here (and into
	// Exec.Deadline when the request carries an Exec payload).
	Deadline int64
}

// ExecRequest is the OpExecute payload: a batch of queries plus the
// client's absolute deadline, which daemons re-impose on their own
// downstream calls (router → processor → storage).
type ExecRequest struct {
	Queries []query.Query
	// Subtasks serves the router→processor leg of a multi-anchor query:
	// the per-anchor work units of one wave routed to this processor.
	// Mutually exclusive with Queries; nil on the client→router leg.
	Subtasks []mquery.Subtask
	// Deadline is the client context's deadline in Unix nanoseconds
	// (0 = none).
	Deadline int64
}

// Response is the response envelope. As with Request, inactive payloads
// stay zero/nil and are omitted from the wire.
type Response struct {
	OK   bool
	Err  string
	Code ErrCode
	// Value and Found serve OpGet.
	Value []byte
	Found bool
	// Values and Founds serve OpMultiGet.
	Values [][]byte
	Founds []bool
	// Results serves OpExecute, positionally aligned with Exec.Queries.
	Results []query.Result
	// Partials serves a subtask OpExecute, positionally aligned with
	// Exec.Subtasks.
	Partials []mquery.Partial
	// Epoch stamps the router's topology epoch on the response: the epoch
	// the queries of an OpExecute were routed under (in-flight queries
	// drain on the view of the epoch that routed them), or the epoch a
	// membership op produced.
	Epoch uint64
	// Proc serves OpJoin: the slot the router assigned to the joiner.
	Proc int
	// ProcCache piggybacks the processor's cumulative cache counters on
	// OpExecute responses, giving the router a live feedback signal for
	// adaptive routing strategies without extra round trips.
	ProcCache *metrics.CacheCounters
	// Stats serves OpStats; nil for every other op.
	Stats *Stats
	// Applied serves OpMutate (mutations applied before the first failure)
	// and OpMigrate (records moved this cycle).
	Applied int
	// Hot serves OpHeat: the processor's hottest storage-missed records
	// since the previous drain, hottest first.
	Hot []HotKey
}

// Stats carries daemon counters over the wire.
type Stats struct {
	Role     string
	Requests int64
	Keys     int64
	// Reads counts key reads served (storage role): unlike Requests it
	// excludes puts, pings and stats polls, so it is the read-traffic
	// signal the router's storage snapshot reports.
	Reads    int64
	Hits     int64
	Misses   int64
	Executed int64
	// Cache carries a processor's full cache counters (nil for other
	// roles).
	Cache *metrics.CacheCounters
	// Durable reports a storage shard's durability state ("fresh" for a
	// durable shard that started empty, "warm" for one that recovered
	// state from its local snapshot + WAL; empty for shards running
	// without a WAL). The fields below are the shard's durability
	// counters; varints keep them to a byte each when zero, so
	// non-durable deployments pay almost no wire cost.
	Durable        string
	WALBytes       int64
	WALRecords     int64
	Snapshots      int64
	DurableVersion uint64
	ReplayedBytes  int64
	// Snapshot carries the router's system-wide observability snapshot
	// (nil for other roles): the same structure the virtual-time engine
	// reports, so local and networked clients read identical stats.
	Snapshot *metrics.Snapshot
}

// ErrCode classifies a remote failure so the client can reconstruct the
// matching typed error.
type ErrCode string

// Error codes.
const (
	// CodeBadQuery maps to query.ErrBadQuery.
	CodeBadQuery ErrCode = "bad-query"
	// CodeUnknownNode maps to query.ErrUnknownNode.
	CodeUnknownNode ErrCode = "unknown-node"
	// CodeUnavailable maps to query.ErrUnavailable.
	CodeUnavailable ErrCode = "unavailable"
	// CodeConflict maps to query.ErrConflict.
	CodeConflict ErrCode = "conflict"
	// CodeInternal is everything else.
	CodeInternal ErrCode = "internal"
)

// sentinelFor returns the typed error a code maps to (nil for internal).
func sentinelFor(code ErrCode) error {
	switch code {
	case CodeBadQuery:
		return query.ErrBadQuery
	case CodeUnknownNode:
		return query.ErrUnknownNode
	case CodeUnavailable:
		return query.ErrUnavailable
	case CodeConflict:
		return query.ErrConflict
	}
	return nil
}

// errorResponse wraps err into a Response, classifying it for the client.
func errorResponse(err error) Response {
	code := CodeInternal
	switch {
	case errors.Is(err, query.ErrBadQuery):
		code = CodeBadQuery
	case errors.Is(err, query.ErrUnknownNode):
		code = CodeUnknownNode
	case errors.Is(err, query.ErrConflict):
		code = CodeConflict
	case errors.Is(err, query.ErrUnavailable), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = CodeUnavailable
	}
	return Response{Err: err.Error(), Code: code}
}

// remoteError is a failure reported by (or on the way to) a remote daemon.
// It unwraps to the shared typed sentinel so errors.Is works across the
// network boundary.
type remoteError struct {
	addr string
	msg  string
	kind error // sentinel, or nil
}

func (e *remoteError) Error() string { return "rpc: " + e.addr + ": " + e.msg }
func (e *remoteError) Unwrap() error { return e.kind }

// respError reconstructs the typed error carried by a response.
func respError(addr string, resp *Response) error {
	if resp.Err == "" {
		return nil
	}
	return &remoteError{addr: addr, msg: resp.Err, kind: sentinelFor(resp.Code)}
}

// execRequest assembles an OpExecute request, capturing ctx's deadline so
// daemons downstream can honour it.
func execRequest(ctx context.Context, qs []query.Query) *Request {
	ex := &ExecRequest{Queries: qs}
	if dl, ok := ctx.Deadline(); ok {
		ex.Deadline = dl.UnixNano()
	}
	return &Request{Op: OpExecute, Exec: ex}
}

// pcall is one in-flight pipelined call. The struct (and its signal
// channel) is pooled and reused across calls.
type pcall struct {
	done chan struct{}
	resp *Response // decode target, owned by the caller
	err  error     // transport/protocol failure, set before done is signalled
}

var callPool = sync.Pool{New: func() any { return &pcall{done: make(chan struct{}, 1)} }}

// reqPool recycles server-side request envelopes (and, via
// decodeRequestInto, their Keys/Muts/Exec buffers) across frames. Handlers
// copy anything they keep, so a request is free for reuse once its response
// is encoded.
var reqPool = sync.Pool{New: func() any { return new(Request) }}

func getCall(resp *Response) *pcall {
	ca := callPool.Get().(*pcall)
	ca.resp = resp
	ca.err = nil
	return ca
}

func putCall(ca *pcall) {
	ca.resp = nil
	ca.err = nil
	callPool.Put(ca)
}

// Conn is one pipelined client connection: many calls may be in flight
// concurrently, each identified by a tag; a demux goroutine delivers
// responses to their waiting callers. Safe for concurrent use. A cancelled
// or timed-out call abandons only its own tag — the connection stays
// healthy and keeps serving other calls; only a transport or protocol
// failure breaks it (failing every in-flight call with
// query.ErrUnavailable), after which the owner (normally a Pool) discards
// it.
type Conn struct {
	c    net.Conn
	addr string

	wmu sync.Mutex // serialises frame writes

	mu      sync.Mutex
	nextTag uint64
	pending map[uint64]*pcall
	broken  error // non-nil once the connection is poisoned
}

// Dial connects to a daemon.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a daemon, abandoning the connection attempt
// when ctx is cancelled or its deadline passes.
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("rpc: %s: dial: %w", addr, cerr)
		}
		return nil, &remoteError{addr: addr, msg: "dial: " + err.Error(), kind: query.ErrUnavailable}
	}
	cn := &Conn{c: c, addr: addr, pending: make(map[uint64]*pcall)}
	go cn.readLoop()
	return cn, nil
}

// Addr returns the remote address.
func (cn *Conn) Addr() string { return cn.addr }

// Broken reports whether a transport failure poisoned the connection.
func (cn *Conn) Broken() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.broken != nil
}

// Call sends req and waits for the response, honouring ctx: cancellation
// or an expired deadline abandons the call immediately (the late response,
// if any, is discarded by the demux) without disturbing other calls in
// flight on the same connection.
func (cn *Conn) Call(ctx context.Context, req *Request) (Response, error) {
	var resp Response
	err := cn.CallInto(ctx, req, &resp)
	return resp, err
}

// CallInto is Call decoding into a caller-owned Response, reusing its
// slice capacity — the zero-alloc path for callers that recycle envelopes.
func (cn *Conn) CallInto(ctx context.Context, req *Request, resp *Response) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("rpc: %s: %w", cn.addr, err)
	}
	ca := getCall(resp)
	cn.mu.Lock()
	if cn.broken != nil {
		cn.mu.Unlock()
		putCall(ca)
		return &remoteError{addr: cn.addr, msg: "connection broken by earlier failure", kind: query.ErrUnavailable}
	}
	cn.nextTag++
	tag := cn.nextTag
	cn.pending[tag] = ca
	cn.mu.Unlock()

	// The wire deadline: what the request carries, else the context's.
	dl := req.Deadline
	if req.Exec != nil && req.Exec.Deadline > 0 {
		dl = req.Exec.Deadline
	}
	if dl == 0 {
		if t, ok := ctx.Deadline(); ok {
			dl = t.UnixNano()
		}
	}

	slab := getSlab()
	scratch := getSlab()
	buf := encodeRequestFrame((*slab)[:0], tag, req, dl, scratch)
	putSlab(scratch)
	cn.wmu.Lock()
	_, werr := cn.c.Write(buf)
	cn.wmu.Unlock()
	*slab = buf
	putSlab(slab)
	if werr != nil {
		// A write failure poisons the whole connection (the stream may be
		// half-written); fail delivers to every pending call, ours included.
		cn.fail(&remoteError{addr: cn.addr, msg: "send: " + werr.Error(), kind: query.ErrUnavailable})
	}

	select {
	case <-ca.done:
		return cn.finishCall(ctx, ca, resp)
	case <-ctx.Done():
		cn.mu.Lock()
		if _, ok := cn.pending[tag]; ok {
			// Abandon only our own tag; the demux will discard the late
			// response and the connection keeps serving other calls.
			delete(cn.pending, tag)
			cn.mu.Unlock()
			putCall(ca)
			return fmt.Errorf("rpc: %s: %w", cn.addr, ctx.Err())
		}
		cn.mu.Unlock()
		// The demux claimed the call first: delivery is imminent — take it.
		<-ca.done
		return cn.finishCall(ctx, ca, resp)
	}
}

// finishCall turns a delivered pcall into the caller-visible verdict.
func (cn *Conn) finishCall(ctx context.Context, ca *pcall, resp *Response) error {
	err := ca.err
	putCall(ca)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("rpc: %s: %w", cn.addr, cerr)
		}
		return err
	}
	return respError(cn.addr, resp)
}

// fail poisons the connection: every pending call (and every future one)
// fails with cause, and the socket is closed.
func (cn *Conn) fail(cause error) {
	cn.mu.Lock()
	if cn.broken == nil {
		cn.broken = cause
	}
	pend := cn.pending
	cn.pending = nil
	cn.mu.Unlock()
	for _, ca := range pend {
		ca.err = cause
		ca.done <- struct{}{}
	}
	cn.c.Close()
}

// readLoop is the demux: it reads frames off the socket and delivers each
// to the call that owns its tag. Responses to abandoned (cancelled) tags
// are discarded. Any read or decode failure poisons the connection.
func (cn *Conn) readLoop() {
	br := bufio.NewReaderSize(cn.c, 32<<10)
	for {
		payload, err := readFrame(br)
		if err != nil {
			cn.fail(&remoteError{addr: cn.addr, msg: "recv: " + err.Error(), kind: query.ErrUnavailable})
			return
		}
		tag, rest, ok := peelTag(payload)
		if !ok {
			releaseFrame(payload)
			cn.fail(&remoteError{addr: cn.addr, msg: "recv: malformed frame", kind: query.ErrUnavailable})
			return
		}
		cn.mu.Lock()
		ca := cn.pending[tag]
		delete(cn.pending, tag)
		cn.mu.Unlock()
		if ca == nil {
			// Abandoned call (cancelled or timed out): drop the response.
			releaseFrame(payload)
			continue
		}
		derr := decodeResponseInto(rest, ca.resp)
		releaseFrame(payload)
		if derr != nil {
			// Protocol desync: deliver to this call, then poison the rest.
			ca.err = &remoteError{addr: cn.addr, msg: derr.Error(), kind: query.ErrUnavailable}
			ca.done <- struct{}{}
			cn.fail(ca.err)
			return
		}
		ca.done <- struct{}{}
	}
}

// Close shuts the connection down; in-flight calls fail with
// query.ErrUnavailable.
func (cn *Conn) Close() error { return cn.c.Close() }

// connTracker records a daemon's live connections so Close can sever
// them: closing only the listener would leave pooled client connections
// answering, which is not how a killed server behaves — and the replica
// failover machinery exists precisely for servers that stop answering.
type connTracker struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// add registers c, reporting false when the tracker is already closed.
func (ct *connTracker) add(c net.Conn) bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.closed {
		return false
	}
	if ct.conns == nil {
		ct.conns = make(map[net.Conn]struct{})
	}
	ct.conns[c] = struct{}{}
	return true
}

func (ct *connTracker) remove(c net.Conn) {
	ct.mu.Lock()
	delete(ct.conns, c)
	ct.mu.Unlock()
}

// closeAll severs every live connection and refuses new ones.
func (ct *connTracker) closeAll() {
	ct.mu.Lock()
	ct.closed = true
	conns := make([]net.Conn, 0, len(ct.conns))
	for c := range ct.conns {
		conns = append(conns, c)
	}
	ct.conns = nil
	ct.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// serve runs the accept loop for a daemon, dispatching each connection to
// its own goroutine. serve returns when the listener closes; ct (optional)
// lets the daemon sever live connections on Close.
func serve(ln net.Listener, handle func(context.Context, *Request) Response, ct *connTracker) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		if ct != nil && !ct.add(c) {
			c.Close()
			return
		}
		go serveConn(c, handle, ct)
	}
}

// serveConn demultiplexes one client connection: each request runs in its
// own goroutine (so a long OpExecute never head-of-line-blocks a ping
// sharing the socket) and responses are written back, tagged, as they
// complete. The per-connection context is cancelled when the client goes
// away, unblocking handlers still working for it. The handler context
// carries the deadline the request propagated from its client.
func serveConn(c net.Conn, handle func(context.Context, *Request) Response, ct *connTracker) {
	connCtx, connCancel := context.WithCancel(context.Background())
	defer func() {
		connCancel()
		if ct != nil {
			ct.remove(c)
		}
		c.Close()
	}()
	var wmu sync.Mutex
	br := bufio.NewReaderSize(c, 32<<10)
	for {
		payload, err := readFrame(br)
		if err != nil {
			return
		}
		tag, rest, ok := peelTag(payload)
		if !ok {
			releaseFrame(payload)
			return
		}
		req := reqPool.Get().(*Request)
		derr := decodeRequestInto(rest, req)
		releaseFrame(payload)
		if derr != nil {
			// Protocol desync: drop the connection (the client's demux will
			// fail its in-flight calls with unavailable).
			reqPool.Put(req)
			return
		}
		go func(tag uint64, req *Request) {
			ctx := connCtx
			var cancel context.CancelFunc
			if req.Exec != nil && req.Exec.Deadline > 0 {
				ctx, cancel = context.WithDeadline(ctx, time.Unix(0, req.Exec.Deadline))
			} else if req.Deadline > 0 {
				ctx, cancel = context.WithDeadline(ctx, time.Unix(0, req.Deadline))
			}
			resp := handle(ctx, req)
			if cancel != nil {
				cancel()
			}
			slab := getSlab()
			scratch := getSlab()
			buf := encodeResponseFrame((*slab)[:0], tag, &resp, scratch)
			putSlab(scratch)
			// Handlers copy anything they keep (values, overrides are fresh
			// per decode), so the request and its buffers recycle here.
			reqPool.Put(req)
			wmu.Lock()
			_, werr := c.Write(buf)
			wmu.Unlock()
			*slab = buf
			putSlab(slab)
			if werr != nil {
				c.Close() // wake the read loop; the conn is done
			}
		}(tag, req)
	}
}
