// Package rpc implements a real networked deployment of the decoupled
// architecture: storage servers, query processors and the query router as
// separate TCP daemons speaking a small gob protocol.
//
// The virtual-time engine in internal/core is the instrument that
// reproduces the paper's measurements; this package demonstrates that the
// same components (hash-partitioned adjacency storage, LRU-cached
// processors, strategy-driven router) run over a real network. The
// examples/distributed program and cmd/groutingd use it.
package rpc

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/query"
)

// Op enumerates protocol operations.
type Op string

// Protocol operations.
const (
	// OpGet fetches one value from a storage server.
	OpGet Op = "get"
	// OpMultiGet fetches many values from a storage server.
	OpMultiGet Op = "multiget"
	// OpPut stores one value on a storage server.
	OpPut Op = "put"
	// OpExecute runs a query on a processor (or, via the router, on
	// whichever processor the routing strategy picks).
	OpExecute Op = "execute"
	// OpStats asks a daemon for its counters.
	OpStats Op = "stats"
	// OpPing checks liveness.
	OpPing Op = "ping"
)

// Request is the single request envelope for every operation.
type Request struct {
	Op    Op
	Key   uint64
	Keys  []uint64
	Value []byte
	Query query.Query
}

// Response is the single response envelope.
type Response struct {
	OK     bool
	Err    string
	Value  []byte
	Found  bool
	Values [][]byte
	Founds []bool
	Result query.Result
	Stats  Stats
}

// Stats carries daemon counters over the wire.
type Stats struct {
	Role     string
	Requests int64
	Keys     int64
	Hits     int64
	Misses   int64
	Executed int64
}

// errorResponse wraps err into a Response.
func errorResponse(err error) Response {
	return Response{Err: err.Error()}
}

// Conn is one gob-encoded client connection; safe for concurrent use
// (requests are serialised).
type Conn struct {
	mu   sync.Mutex
	c    net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	addr string
}

// Dial connects to a daemon.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return &Conn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c), addr: addr}, nil
}

// Addr returns the remote address.
func (cn *Conn) Addr() string { return cn.addr }

// Call sends req and waits for the response.
func (cn *Conn) Call(req *Request) (Response, error) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if err := cn.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("rpc: send to %s: %w", cn.addr, err)
	}
	var resp Response
	if err := cn.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("rpc: recv from %s: %w", cn.addr, err)
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("rpc: %s: %s", cn.addr, resp.Err)
	}
	return resp, nil
}

// Close shuts the connection down.
func (cn *Conn) Close() error { return cn.c.Close() }

// serve runs the accept loop for a daemon, dispatching each connection to
// its own goroutine that calls handle per request. It returns when the
// listener closes.
func serve(ln net.Listener, handle func(*Request) Response) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			dec := gob.NewDecoder(c)
			enc := gob.NewEncoder(c)
			for {
				var req Request
				if err := dec.Decode(&req); err != nil {
					return
				}
				resp := handle(&req)
				if err := enc.Encode(&resp); err != nil {
					return
				}
			}
		}(c)
	}
}
