package rpc

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/mquery"
	"repro/internal/query"
	"repro/internal/xrand"
)

// ProcessorServer is one query processor of the processing tier: it
// receives query batches (from the router), executes the h-hop traversals
// against the storage tier, and caches fetched records in a byte-bounded
// LRU. Processors never talk to each other (Section 2.3). Concurrent
// batches share the cache under a mutex; storage fetches ride the pooled
// shard connections with the caller's deadline.
type ProcessorServer struct {
	ln      net.Listener
	ct      connTracker
	storage *StorageClient

	mu    sync.Mutex // guards cache and heat
	cache *cache.LRU[gstore.Record]
	// heat counts storage misses per record since the last OpHeat drain —
	// the adaptive-placement planner's read signal. Cache hits contribute
	// nothing: a record the cache absorbs needs no migration. Bounded at
	// heatCap keys (new keys are dropped when full; the periodic drain
	// empties it).
	heat map[uint64]int64

	regMu      sync.Mutex // guards the registration below
	routerAddr string     // router this processor registered with ("" = none)
	advertise  string     // address announced to the router
	slot       int        // slot the router assigned

	hits, misses atomic.Int64
	executed     atomic.Int64
}

// ProcessorConfig configures a networked query processor.
type ProcessorConfig struct {
	// Storage lists the storage shards the processor fetches from.
	Storage []string
	// StorageReplicas is the storage tier's replication factor: it must
	// match what the loader used, since placement is client-side. 0 or 1
	// means unreplicated.
	StorageReplicas int
	// CacheBytes is the processor's LRU capacity.
	CacheBytes int64
}

// NewProcessorServer starts a processor on addr, fetching from the given
// unreplicated storage shards with cacheBytes of LRU capacity.
func NewProcessorServer(addr string, storageAddrs []string, cacheBytes int64) (*ProcessorServer, error) {
	return NewProcessorServerWith(addr, ProcessorConfig{Storage: storageAddrs, CacheBytes: cacheBytes})
}

// NewProcessorServerWith starts a processor on addr with the full
// configuration, including the storage replication factor.
func NewProcessorServerWith(addr string, cfg ProcessorConfig) (*ProcessorServer, error) {
	replicas := cfg.StorageReplicas
	if replicas == 0 {
		replicas = 1
	}
	sc, err := DialStorageReplicated(cfg.Storage, replicas)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		sc.Close()
		return nil, fmt.Errorf("rpc: processor listen: %w", err)
	}
	p := &ProcessorServer{ln: ln, storage: sc, cache: cache.New[gstore.Record](cfg.CacheBytes), heat: make(map[uint64]int64), slot: -1}
	go serve(ln, p.handle, &p.ct)
	return p, nil
}

// RegisteredSlot returns the slot the router assigned at Register, or -1
// when the processor never registered (or has deregistered).
func (p *ProcessorServer) RegisteredSlot() int {
	p.regMu.Lock()
	defer p.regMu.Unlock()
	if p.routerAddr == "" {
		return -1
	}
	return p.slot
}

// Addr returns the processor's listen address.
func (p *ProcessorServer) Addr() string { return p.ln.Addr().String() }

// Register announces this processor to a running router (OpJoin): the
// router dials back to verify it, admits it into the topology at a new
// epoch and starts routing to it immediately — scale-out without
// restarting anything. advertise is the address announced to the router
// ("" uses the listen address, right whenever router and processor share
// a network). The returned slot is the processor's stable id; Deregister
// uses the remembered registration for the clean-leave path.
func (p *ProcessorServer) Register(ctx context.Context, routerAddr, advertise string) (int, error) {
	if advertise == "" {
		advertise = p.Addr()
	}
	cn, err := DialContext(ctx, routerAddr)
	if err != nil {
		return 0, err
	}
	defer cn.Close()
	resp, err := cn.Call(ctx, &Request{Op: OpJoin, Addr: advertise})
	if err != nil {
		return 0, err
	}
	p.regMu.Lock()
	p.routerAddr, p.advertise, p.slot = routerAddr, advertise, resp.Proc
	p.regMu.Unlock()
	return resp.Proc, nil
}

// Deregister leaves the router cleanly (OpDrain): the router stops
// sending new work and removes the member once its in-flight queries
// finish, so shutting this processor down afterwards is invisible to
// clients. No-op when the processor never registered.
func (p *ProcessorServer) Deregister(ctx context.Context) error {
	p.regMu.Lock()
	routerAddr, advertise := p.routerAddr, p.advertise
	p.regMu.Unlock()
	if routerAddr == "" {
		return nil
	}
	cn, err := DialContext(ctx, routerAddr)
	if err != nil {
		return err
	}
	defer cn.Close()
	if _, err := cn.Call(ctx, &Request{Op: OpDrain, Addr: advertise}); err != nil {
		// Keep the registration: the drain did not land, so a retry must
		// still know who to deregister from.
		return err
	}
	p.regMu.Lock()
	if p.routerAddr == routerAddr {
		p.routerAddr = ""
	}
	p.regMu.Unlock()
	return nil
}

// Close stops the processor, severing live connections.
func (p *ProcessorServer) Close() error {
	p.storage.Close()
	err := p.ln.Close()
	p.ct.closeAll()
	return err
}

// Stats returns the processor's counters, including the full cache
// accounting (hits, misses, evictions, resident bytes).
func (p *ProcessorServer) Stats() Stats {
	p.mu.Lock()
	cc := p.cache.Stats().Counters()
	p.mu.Unlock()
	return Stats{
		Role:     "processor",
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
		Executed: p.executed.Load(),
		Cache:    &cc,
	}
}

func (p *ProcessorServer) handle(ctx context.Context, req *Request) Response {
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpStats:
		st := p.Stats()
		return Response{OK: true, Stats: &st}
	case OpEvict:
		// Post-mutation cache eviction: drop every named record so the next
		// read refetches the rewritten version from storage.
		p.mu.Lock()
		for _, k := range req.Keys {
			p.cache.Remove(k)
		}
		p.mu.Unlock()
		return Response{OK: true}
	case OpHeat:
		return Response{OK: true, Hot: p.drainHeat()}
	case OpPlacement:
		p.storage.SetOverrides(req.Overrides)
		return Response{OK: true}
	case OpExecute:
		if req.Exec == nil || (len(req.Exec.Queries) == 0 && len(req.Exec.Subtasks) == 0) {
			return errorResponse(fmt.Errorf("%w: execute request carries no queries", query.ErrBadQuery))
		}
		if len(req.Exec.Subtasks) > 0 {
			if len(req.Exec.Queries) > 0 {
				return errorResponse(fmt.Errorf("%w: execute request mixes queries and subtasks", query.ErrBadQuery))
			}
			partials := make([]mquery.Partial, len(req.Exec.Subtasks))
			for i, st := range req.Exec.Subtasks {
				if err := ctx.Err(); err != nil {
					return errorResponse(err)
				}
				part, _, err := mquery.Run(st, func(ids []graph.NodeID) (map[graph.NodeID]gstore.Record, error) {
					return p.fetch(ctx, ids)
				})
				if err != nil {
					return errorResponse(err)
				}
				p.executed.Add(1)
				partials[i] = part
			}
			p.mu.Lock()
			cc := p.cache.Stats().Counters()
			p.mu.Unlock()
			return Response{OK: true, Partials: partials, ProcCache: &cc}
		}
		results := make([]query.Result, len(req.Exec.Queries))
		for i, q := range req.Exec.Queries {
			res, err := p.execute(ctx, q)
			if err != nil {
				return errorResponse(err)
			}
			p.executed.Add(1)
			results[i] = res
		}
		p.mu.Lock()
		cc := p.cache.Stats().Counters()
		p.mu.Unlock()
		return Response{OK: true, Results: results, ProcCache: &cc}
	}
	return errorResponse(fmt.Errorf("processor: unknown op %q", req.Op))
}

// fetch obtains records through the cache, batching misses to storage.
func (p *ProcessorServer) fetch(ctx context.Context, ids []graph.NodeID) (map[graph.NodeID]gstore.Record, error) {
	out := make(map[graph.NodeID]gstore.Record, len(ids))
	var miss []graph.NodeID
	if err := p.fetchInto(ctx, ids, out, &miss); err != nil {
		return nil, err
	}
	return out, nil
}

// fetchInto is fetch filling a caller-owned map (not cleared here) and
// reusing a caller-owned miss buffer, so a cache-hitting fetch allocates
// nothing — the traversal loops run it once per BFS level.
func (p *ProcessorServer) fetchInto(ctx context.Context, ids []graph.NodeID, out map[graph.NodeID]gstore.Record, missBuf *[]graph.NodeID) error {
	miss := (*missBuf)[:0]
	p.mu.Lock()
	for _, id := range ids {
		if rec, ok := p.cache.Get(uint64(id)); ok {
			out[id] = rec
		} else {
			miss = append(miss, id)
		}
	}
	p.mu.Unlock()
	*missBuf = miss
	p.hits.Add(int64(len(ids) - len(miss)))
	p.misses.Add(int64(len(miss)))
	if len(miss) == 0 {
		return nil
	}
	fetched, err := p.storage.MultiGet(ctx, miss)
	if err != nil {
		return err
	}
	p.mu.Lock()
	for id, rec := range fetched {
		out[id] = rec
		// Approximate the record's resident size for capacity accounting.
		size := int64(16 + 8*(len(rec.Out)+len(rec.In)))
		p.cache.Put(uint64(id), rec, size)
		if _, hot := p.heat[uint64(id)]; hot || len(p.heat) < heatCap {
			p.heat[uint64(id)]++
		}
	}
	p.mu.Unlock()
	return nil
}

// execScratch is the per-query traversal state (record map, visited sets,
// frontier buffers) one execution reuses across BFS levels. Pooled so a
// steady-state cache-hitting query allocates nothing beyond what its
// frontier outgrows.
type execScratch struct {
	recs   map[graph.NodeID]gstore.Record
	miss   []graph.NodeID
	visA   map[graph.NodeID]struct{}
	visB   map[graph.NodeID]struct{}
	front  []graph.NodeID
	front2 []graph.NodeID
	spare  []graph.NodeID
}

var scratchPool = sync.Pool{New: func() any {
	return &execScratch{
		recs: make(map[graph.NodeID]gstore.Record),
		visA: make(map[graph.NodeID]struct{}),
		visB: make(map[graph.NodeID]struct{}),
	}
}}

func getScratch() *execScratch {
	sc := scratchPool.Get().(*execScratch)
	clear(sc.recs)
	clear(sc.visA)
	clear(sc.visB)
	return sc
}

// putScratch recycles sc unless a giant traversal grew its tables past the
// point where pinning them beats reallocating (cleared maps keep their
// buckets forever).
func putScratch(sc *execScratch) {
	if len(sc.recs) > 1<<15 || len(sc.visA) > 1<<15 || len(sc.visB) > 1<<15 {
		return
	}
	scratchPool.Put(sc)
}

// Heat bounds: at most heatCap distinct records are tracked between
// drains, and a drain reports the hottest heatTopK of them.
const (
	heatCap  = 8192
	heatTopK = 64
)

// drainHeat returns the hottest missed records since the previous drain,
// hottest first (key ascending on ties, so the report is deterministic),
// and resets the accumulator.
func (p *ProcessorServer) drainHeat() []HotKey {
	p.mu.Lock()
	hot := make([]HotKey, 0, len(p.heat))
	for k, n := range p.heat {
		hot = append(hot, HotKey{Key: k, Reads: n})
	}
	p.heat = make(map[uint64]int64)
	p.mu.Unlock()
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Reads != hot[j].Reads {
			return hot[i].Reads > hot[j].Reads
		}
		return hot[i].Key < hot[j].Key
	})
	if len(hot) > heatTopK {
		hot = hot[:heatTopK]
	}
	return hot
}

// execute validates and runs one query with the same algorithms the
// virtual-time engine uses (levelwise batched BFS, seeded walk,
// bidirectional BFS), so results agree exactly with query.Answer. A query
// whose Node has no record in the storage tier fails with
// query.ErrUnknownNode, matching the virtual-time client.
func (p *ProcessorServer) execute(ctx context.Context, q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	sc := getScratch()
	defer putScratch(sc)
	// Existence probe: one cached lookup of the query node's record. The
	// fetch warms the cache, so the traversal's own level-0 fetch hits.
	sc.front = append(sc.front[:0], q.Node)
	if err := p.fetchInto(ctx, sc.front, sc.recs, &sc.miss); err != nil {
		return query.Result{}, err
	}
	if _, ok := sc.recs[q.Node]; !ok {
		return query.Result{}, fmt.Errorf("%w: node %d has no record in the storage tier", query.ErrUnknownNode, q.Node)
	}
	switch q.Type {
	case query.NeighborAgg:
		return p.execAgg(ctx, q, sc)
	case query.RandomWalk:
		return p.execWalk(ctx, q, sc)
	case query.Reachability:
		return p.execReach(ctx, q, sc)
	}
	return query.Result{}, fmt.Errorf("%w: unknown query type %v", query.ErrBadQuery, q.Type)
}

func (p *ProcessorServer) execAgg(ctx context.Context, q query.Query, sc *execScratch) (query.Result, error) {
	// Label filtering needs the graph's label table, which only the
	// storage-side loader has; the networked processor serves unfiltered
	// aggregation.
	if q.CountLabel != "" {
		return query.Result{}, fmt.Errorf("%w: label-filtered aggregation is not supported over rpc", query.ErrBadQuery)
	}
	visited := sc.visA
	visited[q.Node] = struct{}{}
	frontier := append(sc.front[:0], q.Node)
	spare := sc.front2
	count := 0
	for level := 0; level <= q.Hops && len(frontier) > 0; level++ {
		clear(sc.recs)
		if err := p.fetchInto(ctx, frontier, sc.recs, &sc.miss); err != nil {
			return query.Result{}, err
		}
		if level > 0 {
			count += len(frontier)
		}
		if level == q.Hops {
			break
		}
		next := spare[:0]
		for _, u := range frontier {
			rec, ok := sc.recs[u]
			if !ok {
				continue
			}
			forEdge(rec, q.Dir, func(v graph.NodeID) {
				if _, seen := visited[v]; !seen {
					visited[v] = struct{}{}
					next = append(next, v)
				}
			})
		}
		spare, frontier = frontier, next
	}
	sc.front, sc.front2 = frontier, spare
	return query.Result{Type: q.Type, Count: count}, nil
}

func (p *ProcessorServer) execWalk(ctx context.Context, q query.Query, sc *execScratch) (query.Result, error) {
	rng := xrand.New(q.Seed)
	cur := q.Node
	for step := 0; step < q.Hops; step++ {
		if q.RestartProb > 0 && rng.Float64() < q.RestartProb {
			cur = q.Node
			continue
		}
		clear(sc.recs)
		sc.front = append(sc.front[:0], cur)
		if err := p.fetchInto(ctx, sc.front, sc.recs, &sc.miss); err != nil {
			return query.Result{}, err
		}
		rec := sc.recs[cur]
		next, ok := query.WalkStep(rec.Out, rec.In, q.Dir, rng)
		if !ok {
			cur = q.Node
			continue
		}
		cur = next
	}
	return query.Result{Type: q.Type, EndNode: cur}, nil
}

func (p *ProcessorServer) execReach(ctx context.Context, q query.Query, sc *execScratch) (query.Result, error) {
	if q.Node == q.Target {
		return query.Result{Type: q.Type, Reachable: true}, nil
	}
	if q.Hops <= 0 {
		return query.Result{Type: q.Type, Reachable: false}, nil
	}
	fVis, bVis := sc.visA, sc.visB
	fVis[q.Node] = struct{}{}
	bVis[q.Target] = struct{}{}
	fFront := append(sc.front[:0], q.Node)
	bFront := append(sc.front2[:0], q.Target)
	spare := sc.spare
	reachable := false
	for levels := 0; levels < q.Hops && !reachable && len(fFront) > 0 && len(bFront) > 0; levels++ {
		forward := len(fFront) <= len(bFront)
		front, dir := fFront, graph.Out
		mine, other := fVis, bVis
		if !forward {
			front, dir = bFront, graph.In
			mine, other = bVis, fVis
		}
		clear(sc.recs)
		if err := p.fetchInto(ctx, front, sc.recs, &sc.miss); err != nil {
			return query.Result{}, err
		}
		next := spare[:0]
		for _, u := range front {
			rec, ok := sc.recs[u]
			if !ok {
				continue
			}
			forEdge(rec, dir, func(v graph.NodeID) {
				if _, hit := other[v]; hit {
					reachable = true
				}
				if _, seen := mine[v]; !seen {
					mine[v] = struct{}{}
					next = append(next, v)
				}
			})
		}
		if forward {
			spare, fFront = fFront, next
		} else {
			spare, bFront = bFront, next
		}
	}
	sc.front, sc.front2, sc.spare = fFront, bFront, spare
	return query.Result{Type: q.Type, Reachable: reachable}, nil
}

func forEdge(rec gstore.Record, dir graph.Direction, fn func(graph.NodeID)) {
	if dir == graph.Out || dir == graph.Both {
		for _, e := range rec.Out {
			fn(e.To)
		}
	}
	if dir == graph.In || dir == graph.Both {
		for _, e := range rec.In {
			fn(e.To)
		}
	}
}
