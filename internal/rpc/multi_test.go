package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
)

// TestClusterMultiAnchorMatchesOracle runs the full mixed workload —
// including PatternMatch and BoundedReach — through a real localhost
// deployment, one query at a time and then as a single batch, and checks
// every result against the in-memory oracle.
func TestClusterMultiAnchorMatchesOracle(t *testing.T) {
	g := gen.LocalWeb(1200, 8, 60, 0.01, 6)
	cl := startCluster(t, g, 2, 3, "hash")
	qs := query.Hotspot(g, query.WorkloadSpec{
		NumHotspots: 8, QueriesPerHotspot: 5, R: 2, H: 2,
		Types: query.MixedTypes, VisitBudget: 8, Seed: 13,
	})
	var patterns, reaches int
	for _, q := range qs {
		switch q.Type {
		case query.PatternMatch:
			patterns++
		case query.BoundedReach:
			reaches++
		}
	}
	if patterns == 0 || reaches == 0 {
		t.Fatalf("workload has %d patterns, %d bounded reaches; want both > 0", patterns, reaches)
	}

	ctx := context.Background()
	for _, q := range qs {
		got, err := cl.Execute(ctx, q)
		if err != nil {
			t.Fatalf("query %d (%v): %v", q.ID, q.Type, err)
		}
		if want := query.Answer(g, q); got != want {
			t.Fatalf("query %d (%v): got %+v, want %+v", q.ID, q.Type, got, want)
		}
	}

	// The same workload as one batch: executeMixed must reassemble classic
	// and multi-anchor results positionally.
	results, err := cl.ExecuteBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(results), len(qs))
	}
	for i, q := range qs {
		if want := query.Answer(g, q); results[i] != want {
			t.Fatalf("batch query %d (%v): got %+v, want %+v", q.ID, q.Type, results[i], want)
		}
	}
}

// TestClusterLabelledPattern checks label resolution over the wire: a
// router started with the dataset resolves template label strings; one
// started without it rejects labelled templates with the typed error
// rather than silently matching nothing.
func TestClusterLabelledPattern(t *testing.T) {
	g := gen.KnowledgeGraph(600, 2400, 4, 3, 9)
	var anchor = g.Nodes()[1]
	q := query.Query{
		Type: query.PatternMatch,
		Node: anchor,
		Pattern: &query.Pattern{
			Nodes: []query.PatternNode{{Anchor: anchor}, {Label: "type1"}},
			Edges: []query.PatternEdge{{From: 0, To: 1}},
		},
		Dir: graph.Out,
	}

	ctx := context.Background()
	cl := startClusterCfg(t, g, 2, 3, "hash", true)
	got, err := cl.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if want := query.Answer(g, q); got != want {
		t.Fatalf("labelled pattern: got %+v, want %+v", got, want)
	}

	// A template naming a label absent from the dataset matches nothing.
	q2 := q
	q2.Pattern = &query.Pattern{
		Nodes: []query.PatternNode{{Anchor: anchor}, {Label: "no-such-type"}},
		Edges: []query.PatternEdge{{From: 0, To: 1}},
	}
	if got, err := cl.Execute(ctx, q2); err != nil || got.Matches != 0 {
		t.Fatalf("unknown label: got %+v, %v; want 0 matches", got, err)
	}

	// Without the graph the router has no label table: typed rejection.
	bare := startCluster(t, g, 2, 3, "hash")
	if _, err := bare.Execute(ctx, q); !errors.Is(err, query.ErrBadQuery) {
		t.Fatalf("labelled pattern on graph-less router: err = %v, want ErrBadQuery", err)
	}
}

// TestMultiAnchorCancellation cancels multi-anchor executions mid-stream
// and checks the typed classification plus that the client stays usable
// (the pool discards connections poisoned by cancellation).
func TestMultiAnchorCancellation(t *testing.T) {
	g := gen.LocalWeb(1500, 8, 60, 0.01, 7)
	cl := startCluster(t, g, 2, 3, "hash")
	q := query.Query{
		Type:        query.BoundedReach,
		Node:        5,
		Anchors:     []graph.NodeID{5, 9, 12},
		Target:      1400,
		Hops:        6,
		VisitBudget: 2, // tiny budget forces many relaunch waves
		Dir:         graph.Out,
	}

	// Already-cancelled context: deterministic mid-pipeline abort.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Execute(cancelled, q); err == nil {
		t.Fatal("cancelled multi-anchor execute succeeded")
	} else if !errors.Is(err, context.Canceled) && !errors.Is(err, query.ErrUnavailable) {
		t.Fatalf("cancelled execute error = %v, want context.Canceled or ErrUnavailable", err)
	}

	// Cancel racing the wave loop: either the query finished first or it
	// was cut off with a typed error — never a hang or a wrong answer.
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			time.Sleep(time.Duration(i) * 200 * time.Microsecond)
			cancel()
		}()
		got, err := cl.Execute(ctx, q)
		<-done
		if err == nil {
			if want := query.Answer(g, q); got != want {
				t.Fatalf("raced execute: got %+v, want %+v", got, want)
			}
		} else if !errors.Is(err, context.Canceled) && !errors.Is(err, query.ErrUnavailable) {
			t.Fatalf("raced execute error = %v", err)
		}
	}

	// The client remains usable afterwards.
	got, err := cl.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if want := query.Answer(g, q); got != want {
		t.Fatalf("post-cancel result %+v, want %+v", got, want)
	}
}
