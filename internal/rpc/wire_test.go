package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mquery"
	"repro/internal/query"
)

// roundTripRequest encodes req as a frame with the given header deadline,
// peels the tag, and decodes into a fresh Request.
func roundTripRequest(t *testing.T, req *Request, deadline int64) *Request {
	t.Helper()
	var scratch []byte
	buf := encodeRequestFrame(nil, 7, req, deadline, &scratch)
	if got := int(binary.LittleEndian.Uint32(buf[:frameHeader])); got != len(buf)-frameHeader {
		t.Fatalf("length prefix = %d, payload = %d", got, len(buf)-frameHeader)
	}
	tag, rest, ok := peelTag(buf[frameHeader:])
	if !ok || tag != 7 {
		t.Fatalf("peelTag = (%d, %v)", tag, ok)
	}
	var got Request
	if err := decodeRequestInto(rest, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &got
}

func roundTripResponse(t *testing.T, resp *Response) *Response {
	t.Helper()
	var scratch []byte
	buf := encodeResponseFrame(nil, 9, resp, &scratch)
	tag, rest, ok := peelTag(buf[frameHeader:])
	if !ok || tag != 9 {
		t.Fatalf("peelTag = (%d, %v)", tag, ok)
	}
	var got Response
	if err := decodeResponseInto(rest, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &got
}

// fullRequest exercises every request envelope field at once, including the
// nested query/subtask/pattern sub-encodings.
func fullRequest() *Request {
	return &Request{
		Op:       OpExecute,
		Deadline: 1_700_000_000_123_456_789,
		Key:      15485863,
		Value:    []byte("payload-bytes"),
		Keys:     []uint64{1, 2, 1 << 40},
		Exec: &ExecRequest{
			Deadline: 1_700_000_000_123_456_789,
			Queries: []query.Query{
				{
					ID: 3, Type: query.RandomWalk, Node: 42, Target: 99,
					Hops: 4, RestartProb: 0.15, CountLabel: "follows",
					Dir: graph.Both, Seed: -7, Hotspot: 2,
					Anchors: []graph.NodeID{5, 6}, VisitBudget: 1024,
					Pattern: &query.Pattern{
						Nodes: []query.PatternNode{{Anchor: 42}, {Label: "user"}},
						Edges: []query.PatternEdge{{From: 0, To: 1, Label: "follows"}},
					},
				},
				{ID: 4, Type: query.NeighborAgg, Node: 7, Hops: -1, Dir: graph.In},
				{ID: 5, Type: query.KNearest, Node: 42, Hops: 2, K: 8, Dir: graph.Both},
			},
			Subtasks: []mquery.Subtask{
				{Kind: mquery.KindReach, Anchor: 42, Target: 99, Hops: 2, Budget: 64},
				{Kind: mquery.KindKNN, Anchor: 42, Radius: 2},
			},
		},
		Addr:      "10.0.0.71:7101",
		Proc:      5,
		Tier:      "storage",
		Version:   12,
		Muts:      []Mutation{{Op: MutOpAddEdge, Node: 1, To: 2, Label: "knows"}, {Op: MutOpRemoveEdge, Node: 9, To: 1}},
		Overrides: map[uint64][]int{42: {1, 0}, 99: {2}},
	}
}

// fullResponse exercises every response envelope field, including the
// storage-bearing stats snapshot.
func fullResponse() *Response {
	return &Response{
		OK:     true,
		Value:  []byte("v"),
		Found:  true,
		Values: [][]byte{[]byte("a"), nil, []byte("ccc")},
		Founds: []bool{true, false, true},
		Results: []query.Result{
			{Type: query.PatternMatch, Count: 12, EndNode: 99, Reachable: true, Matches: 3},
			{Type: query.KNearest, Count: 3,
				Nearest: [query.MaxKNearest]graph.NodeID{9, 4, 1<<32 - 1}},
		},
		Partials: []mquery.Partial{
			{Kind: mquery.KindReach, Anchor: 42, Visited: 64,
				Frontier: []mquery.Boundary{{Node: 7, Hops: 1}}},
			{Kind: mquery.KindKNN, Anchor: 42, Visited: 12,
				Candidates: []graph.NodeID{4, 9, 1<<32 - 1}},
		},
		Epoch:     9,
		Proc:      3,
		ProcCache: &metrics.CacheCounters{Hits: 10, Misses: 2, CurrentBytes: 1 << 20},
		Stats: &Stats{
			Role: "router", Requests: 999, Keys: 100, Reads: 5, Hits: 4, Misses: 1,
			Executed: 77, Cache: &metrics.CacheCounters{Hits: 1},
			Durable: "wal", WALBytes: 1 << 16, WALRecords: 12, Snapshots: 2,
			DurableVersion: 3, ReplayedBytes: 512,
			Snapshot: &metrics.Snapshot{
				Transport: "tcp", Policy: "embed", Strategy: "embed",
				Processors: 2, Epoch: 9, Queries: 100, Mutations: 7,
				Stolen: 3, Diverted: 1, Reassigned: 2,
				Epochs: []metrics.EpochEvent{{Tier: "proc", Epoch: 8, Joined: 1, Reassigned: 4}},
				Cache:  metrics.CacheCounters{Hits: 11, Misses: 3},
				PerProc: []metrics.ProcCounters{
					{Proc: 0, Status: "active", Addr: "a:1", Assigned: 50, Executed: 51,
						QueueDepth: 2, Cache: metrics.CacheCounters{Hits: 9}},
				},
				StorageEpoch: 5, StorageReplicas: 2,
				PerStorage: []metrics.StorageCounters{
					{Slot: 0, Status: "active", Addr: "s:1", Keys: 1000, Bytes: 1 << 30,
						Gets: 5000, Misses: 12, Failovers: 1, RepairBytes: 256,
						Durable: "wal", WALBytes: 2048, WALRecords: 9, Snapshots: 1,
						DurableVersion: 2, ReplayedBytes: 100, RecoverNanos: 1e6},
				},
				Placement: metrics.PlacementCounters{
					Cycles: 3, Planned: 10, Moved: 8, MovedBytes: 4096,
					BudgetBytes: 1 << 20, SkippedBudget: 1, SkippedCold: 1, Overrides: 2,
				},
				PlacementLog: []metrics.MoveEvent{
					{Key: 42, From: 0, To: 1, Reader: 1, Reads: 99, Bytes: 512},
				},
				RoutingNanos: metrics.Summary{Count: 100, Mean: 800, P50: 700, P95: 1600, P99: 3100, P999: 8000, Max: 91000},
				QueueDepth:   metrics.Summary{Count: 100, Mean: 2, P50: 1, P95: 7, P99: 15, P999: 31, Max: 63},
			},
		},
		Applied: 4,
		Hot:     []HotKey{{Key: 42, Reads: 1000}, {Key: 7, Reads: -1}},
	}
}

// TestRequestRoundTrip checks every request field survives the binary
// encoding exactly, for both the everything-at-once envelope and the
// sparse common cases.
func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpPing},
		{Op: OpGet, Key: 123456789},
		{Op: OpMultiGet, Keys: []uint64{0, 1, 1<<64 - 1}},
		{Op: OpPut, Key: 1, Value: []byte{0, 255, 1}},
		{Op: OpMutate, Muts: []Mutation{{Op: MutOpAddEdge, Node: 42, To: 99}}},
		{Op: OpJoin, Addr: "127.0.0.1:7001", Tier: "storage", Version: 3},
		{Op: OpPlacement, Overrides: map[uint64][]int{7: {0, 2}}},
		fullRequest(),
	}
	for _, req := range reqs {
		dl := req.Deadline
		if req.Exec != nil && req.Exec.Deadline > dl {
			dl = req.Exec.Deadline
		}
		got := roundTripRequest(t, req, dl)
		want := *req
		want.Deadline = dl
		if want.Exec != nil {
			ex := *want.Exec
			ex.Deadline = dl // the deadline rides in the frame header and is mirrored back
			want.Exec = &ex
		}
		if !reflect.DeepEqual(got, &want) {
			t.Errorf("op %v round trip mismatch:\n got  %+v\n want %+v", req.Op, got, &want)
		}
	}
}

// TestResponseRoundTrip checks every response field survives, including
// error responses that carry payload (OpMutate's partial-failure Applied).
func TestResponseRoundTrip(t *testing.T) {
	full := fullResponse()
	got := roundTripResponse(t, full)
	if !reflect.DeepEqual(got, full) {
		t.Errorf("full response mismatch:\n got  %+v\n want %+v", got, full)
	}

	for _, resp := range []*Response{
		{OK: true},
		{},
		{Err: "node 42 missing", Code: CodeUnknownNode},
		{Err: "conflict at op 3", Code: CodeConflict, Applied: 3},
		{OK: true, Found: false, Value: nil},
	} {
		got := roundTripResponse(t, resp)
		if !reflect.DeepEqual(got, resp) {
			t.Errorf("response round trip mismatch:\n got  %+v\n want %+v", got, resp)
		}
	}

	// An unknown error code degrades to CodeInternal rather than vanishing.
	odd := &Response{Err: "weird", Code: ErrCode("no-such-code")}
	got = roundTripResponse(t, odd)
	if got.Err != "weird" || got.Code != CodeInternal {
		t.Errorf("unknown code round trip = %+v, want internal", got)
	}
}

// TestFrameDecodeTruncation truncates a maximal request and response
// payload at every byte boundary: every strict prefix must decode to an
// error (the bitmap announces fields that then cannot be read, and the
// final reads run off the end), and none may panic.
func TestFrameDecodeTruncation(t *testing.T) {
	var scratch []byte
	reqFrame := encodeRequestFrame(nil, 1, fullRequest(), 12345, &scratch)
	respFrame := encodeResponseFrame(nil, 1, fullResponse(), &scratch)

	reqPayload := reqFrame[frameHeader:]
	for i := 0; i < len(reqPayload); i++ {
		tag, rest, ok := peelTag(reqPayload[:i])
		if !ok {
			continue // tag itself truncated: detected before decode
		}
		_ = tag
		var req Request
		if err := decodeRequestInto(rest, &req); err == nil {
			t.Fatalf("request truncated at %d/%d decoded cleanly", i, len(reqPayload))
		}
	}

	respPayload := respFrame[frameHeader:]
	for i := 0; i < len(respPayload); i++ {
		_, rest, ok := peelTag(respPayload[:i])
		if !ok {
			continue
		}
		var resp Response
		if err := decodeResponseInto(rest, &resp); err == nil {
			t.Fatalf("response truncated at %d/%d decoded cleanly", i, len(respPayload))
		}
	}
}

// TestReadFrameCorruptLength checks the length prefix is distrusted: an
// oversized claim fails fast with errFrameTooBig instead of allocating,
// and a short body surfaces as an unexpected EOF.
func TestReadFrameCorruptLength(t *testing.T) {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := readFrame(bytes.NewReader(hdr[:])); !errors.Is(err, errFrameTooBig) {
		t.Fatalf("oversized length: err = %v, want errFrameTooBig", err)
	}

	binary.LittleEndian.PutUint32(hdr[:], 100)
	short := append(hdr[:], []byte("only-14-bytes!")...)
	if _, err := readFrame(bytes.NewReader(short)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short body: err = %v, want unexpected EOF", err)
	}

	if _, err := readFrame(bytes.NewReader(hdr[:2])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short header: err = %v, want unexpected EOF", err)
	}

	// A well-formed empty frame (pure header, zero-length payload) reads
	// back as an empty payload, not an error.
	binary.LittleEndian.PutUint32(hdr[:], 0)
	payload, err := readFrame(bytes.NewReader(hdr[:]))
	if err != nil || len(payload) != 0 {
		t.Fatalf("empty frame: payload = %v, err = %v", payload, err)
	}
	releaseFrame(payload)
}

// FuzzFrameDecode throws arbitrary bytes at both payload decoders. The
// invariants: never panic, and anything that decodes cleanly must
// re-encode to a payload that decodes cleanly again (the codec never
// emits what it cannot read).
func FuzzFrameDecode(f *testing.F) {
	var scratch []byte
	f.Add(encodeRequestFrame(nil, 1, fullRequest(), 12345, &scratch)[frameHeader:])
	f.Add(encodeResponseFrame(nil, 1, fullResponse(), &scratch)[frameHeader:])
	f.Add(encodeRequestFrame(nil, 0, &Request{Op: OpPing}, 0, &scratch)[frameHeader:])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		var scratch []byte
		if _, rest, ok := peelTag(data); ok {
			var req Request
			if err := decodeRequestInto(rest, &req); err == nil {
				dl := req.Deadline
				buf := encodeRequestFrame(nil, 1, &req, dl, &scratch)
				_, rest2, ok := peelTag(buf[frameHeader:])
				if !ok {
					t.Fatal("re-encoded request: tag unreadable")
				}
				var req2 Request
				if err := decodeRequestInto(rest2, &req2); err != nil {
					t.Fatalf("re-encoded request does not decode: %v", err)
				}
			}
			var resp Response
			if err := decodeResponseInto(rest, &resp); err == nil {
				buf := encodeResponseFrame(nil, 1, &resp, &scratch)
				_, rest2, ok := peelTag(buf[frameHeader:])
				if !ok {
					t.Fatal("re-encoded response: tag unreadable")
				}
				var resp2 Response
				if err := decodeResponseInto(rest2, &resp2); err != nil {
					t.Fatalf("re-encoded response does not decode: %v", err)
				}
			}
		}
		// The frame reader itself must tolerate arbitrary stream bytes.
		if payload, err := readFrame(bytes.NewReader(data)); err == nil {
			releaseFrame(payload)
		}
	})
}
