package rpc

import (
	"context"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/hash"
	"repro/internal/placement"
	"repro/internal/query"
	"repro/internal/topology"
)

// The router is the networked deployment's single writer: OpMutate and
// OpMigrate both serialise on mutMu, so every record rewrite is a clean
// read-modify-write against the storage tier and a migration can never
// race a mutation. Acked means everywhere: a mutation's record rewrites
// land on every replica of the key's placement before the ack, and the
// rewritten keys are evicted from every live processor's cache first —
// read-your-writes for any client of the deployment. A write that cannot
// reach every replica (or every cache) fails without acking; since every
// mutation is idempotent, the client retries it safely.

// migrateTimeout bounds an automatic background migration cycle.
const migrateTimeout = 30 * time.Second

// mutate applies a batch of mutations in order, stopping at the first
// failure. Response.Applied counts the applied prefix, which stays
// applied — the same contract as the virtual-time Session.Mutate.
func (r *RouterServer) mutate(ctx context.Context, muts []Mutation) Response {
	if len(muts) == 0 {
		return errorResponse(fmt.Errorf("%w: mutate request carries no mutations", query.ErrBadQuery))
	}
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	for i := range muts {
		if err := r.applyMutation(ctx, &muts[i]); err != nil {
			resp := errorResponse(err)
			resp.Applied = i
			return resp
		}
		r.mutations.Add(1)
	}
	return Response{OK: true, Applied: len(muts)}
}

// applyMutation executes one mutation end to end. Caller holds mutMu.
func (r *RouterServer) applyMutation(ctx context.Context, m *Mutation) error {
	if err := validateMutation(m); err != nil {
		return err
	}
	lab, err := r.internLabel(m.Label)
	if err != nil {
		return err
	}
	switch m.Op {
	case MutOpUpsertNode:
		rec, pre, err := r.loadRecord(ctx, uint64(m.Node))
		if err != nil {
			return err
		}
		if !pre.found {
			rec = gstore.Record{Node: m.Node}
		}
		rec.NodeLabel = lab
		return r.commit(ctx, write{&rec, pre})
	case MutOpAddEdge:
		ru, rv, preU, preV, err := r.loadEndpoints(ctx, m)
		if err != nil {
			return err
		}
		// Ensure both directions independently: a half-written edge left by
		// an earlier failed attempt heals on retry instead of sticking.
		addedOut := ru.EnsureOut(m.To, lab)
		addedIn := rv.EnsureIn(m.Node, lab)
		switch {
		case addedOut && addedIn:
			return r.commit(ctx, write{ru, preU}, write{rv, preV})
		case addedOut:
			return r.commit(ctx, write{ru, preU})
		case addedIn:
			return r.commit(ctx, write{rv, preV})
		}
		// Fully present already: idempotent success, but still re-evict —
		// if an earlier attempt wrote the records and failed only its
		// eviction fan-out, this retry is what restores read-your-writes.
		return r.evictEverywhere(ctx, []uint64{uint64(m.Node), uint64(m.To)})
	case MutOpRemoveEdge:
		ru, rv, preU, preV, err := r.loadEndpoints(ctx, m)
		if err != nil {
			return err
		}
		removedOut := ru.RemoveOut(m.To)
		removedIn := rv.RemoveIn(m.Node)
		switch {
		case removedOut && removedIn:
			return r.commit(ctx, write{ru, preU}, write{rv, preV})
		case removedOut:
			return r.commit(ctx, write{ru, preU})
		case removedIn:
			return r.commit(ctx, write{rv, preV})
		}
		// No such edge — but re-evict first, for the same retry-after-
		// failed-eviction reason as above; an eviction that cannot ack
		// keeps the mutation retriable instead of misreporting conflict.
		if err := r.evictEverywhere(ctx, []uint64{uint64(m.Node), uint64(m.To)}); err != nil {
			return err
		}
		return fmt.Errorf("%w: remove edge %d->%d: no such edge", query.ErrConflict, m.Node, m.To)
	}
	return nil
}

// internLabel resolves a mutation's label string against the loaded
// graph's label table — the table the loader encoded every record with, so
// ids agree. Routers started without the graph accept only unlabelled
// mutations.
func (r *RouterServer) internLabel(s string) (graph.Label, error) {
	if s == "" {
		return 0, nil
	}
	if r.g == nil {
		return 0, fmt.Errorf("%w: labelled mutations need the router started with the graph (groutingd -graph)", query.ErrBadQuery)
	}
	return r.g.InternLabel(s), nil
}

// preimage is a record's stored bytes as they were before the mutation,
// kept so a partially failed write-all can restore the replicas it
// already touched.
type preimage struct {
	key   uint64
	val   []byte
	found bool
}

// write pairs a rewritten record with its pre-image.
type write struct {
	rec *gstore.Record
	pre preimage
}

// loadEndpoints fetches both endpoint records of an edge mutation (with
// their pre-images); either one missing is a conflict.
func (r *RouterServer) loadEndpoints(ctx context.Context, m *Mutation) (*gstore.Record, *gstore.Record, preimage, preimage, error) {
	var none preimage
	ru, preU, err := r.loadRecord(ctx, uint64(m.Node))
	if err != nil {
		return nil, nil, none, none, err
	}
	rv, preV, err := r.loadRecord(ctx, uint64(m.To))
	if err != nil {
		return nil, nil, none, none, err
	}
	if !preU.found || !preV.found {
		missing := m.Node
		if preU.found {
			missing = m.To
		}
		return nil, nil, none, none, fmt.Errorf("%w: edge %d->%d: endpoint %d has no record", query.ErrConflict, m.Node, m.To, missing)
	}
	return &ru, &rv, preU, preV, nil
}

// placementFor appends key's replica slots (primary first) to dst: the
// migration pin when one exists, rendezvous placement over the seeded
// shard slots otherwise — the identical function the processors' storage
// clients compute, so router writes and processor reads always name the
// same shards.
func (r *RouterServer) placementFor(key uint64, dst []int) []int {
	r.mu.Lock()
	ov := r.overrides[key]
	r.mu.Unlock()
	if len(ov) > 0 {
		return append(dst[:0], ov...)
	}
	if r.storageBase == 0 {
		return dst[:0]
	}
	if r.storageReplicas <= 1 {
		return append(dst[:0], int(hash.Key64(key, 0)%uint64(r.storageBase)))
	}
	return topology.RendezvousN(key, r.storageSlots, r.storageReplicas, dst)
}

// storagePoolFor returns the pool for one storage slot (nil when the slot
// left or never existed).
func (r *RouterServer) storagePoolFor(slot int) *Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if slot < 0 || slot >= len(r.storagePools) {
		return nil
	}
	return r.storagePools[slot]
}

// loadRecordBytes reads key's raw stored value from the first answering
// replica of its placement. A replica that answers "absent" settles it:
// under the router's serialisation plus commit's roll-back, an unacked
// write leaves no partial state behind, so replicas only diverge when a
// roll-back was itself interrupted — and the next successful mutation of
// the record rewrites it on every replica, re-converging them.
func (r *RouterServer) loadRecordBytes(ctx context.Context, key uint64) ([]byte, bool, error) {
	var buf [topology.MaxReplicas]int
	pl := r.placementFor(key, buf[:0])
	if len(pl) == 0 {
		return nil, false, fmt.Errorf("%w: router has no storage view to mutate through (seed it with -storage)", query.ErrUnavailable)
	}
	var firstErr error
	for _, slot := range pl {
		pool := r.storagePoolFor(slot)
		if pool == nil {
			continue
		}
		resp, err := pool.Call(ctx, &Request{Op: OpGet, Key: key})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return resp.Value, resp.Found, nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("%w: key %d: no replica answered", query.ErrUnavailable, key)
	}
	return nil, false, firstErr
}

// loadRecord reads and decodes key's record, returning the raw stored
// bytes alongside as the write path's roll-back pre-image.
func (r *RouterServer) loadRecord(ctx context.Context, key uint64) (gstore.Record, preimage, error) {
	val, found, err := r.loadRecordBytes(ctx, key)
	pre := preimage{key: key, val: val, found: found}
	if err != nil || !found {
		return gstore.Record{}, pre, err
	}
	rec, err := gstore.Decode(graph.NodeID(key), val)
	if err != nil {
		return gstore.Record{}, pre, err
	}
	return rec, pre, nil
}

// writeAll stores val on every replica of key's placement. Write-all, not
// quorum: one unreachable replica fails the write unacked, so an acked
// write survives any single restart of a durable tier — the invariant the
// mutate-rolling-restart chaos scenario holds the deployment to.
func (r *RouterServer) writeAll(ctx context.Context, key uint64, val []byte) error {
	var buf [topology.MaxReplicas]int
	pl := r.placementFor(key, buf[:0])
	if len(pl) == 0 {
		return fmt.Errorf("%w: router has no storage view to mutate through (seed it with -storage)", query.ErrUnavailable)
	}
	for _, slot := range pl {
		pool := r.storagePoolFor(slot)
		if pool == nil {
			return fmt.Errorf("%w: key %d: storage slot %d has left the tier", query.ErrUnavailable, key, slot)
		}
		if _, err := pool.Call(ctx, &Request{Op: OpPut, Key: key, Value: val}); err != nil {
			return err
		}
	}
	return nil
}

// commit writes the rewritten records to every replica, then evicts them
// from every live processor's cache. Only after both does the mutation
// ack — a reader can never be served a pre-write cache entry afterwards.
//
// A write-all that fails partway is rolled back: every record fully or
// partially written gets its pre-image restored on every reachable
// replica, so an unacked mutation leaves the tier as it found it instead
// of with divergent replicas (the read-modify-write of a later retry
// reads one replica and would otherwise conclude a half-written side
// needs nothing, leaving the stale copies stale forever). The roll-back
// is itself best effort — a replica that dies inside the window keeps a
// stale copy until the next successful mutation rewrites the record.
func (r *RouterServer) commit(ctx context.Context, ws ...write) error {
	keys := make([]uint64, 0, len(ws))
	var buf []byte
	for i, w := range ws {
		buf = gstore.Encode(buf[:0], w.rec)
		if err := r.writeAll(ctx, uint64(w.rec.Node), buf); err != nil {
			r.rollback(ctx, ws[:i+1])
			return err
		}
		keys = append(keys, uint64(w.rec.Node))
	}
	return r.evictEverywhere(ctx, keys)
}

// rollback restores the pre-images of the given writes on every reachable
// replica and re-evicts the keys, all best effort — the mutation is
// already failing unacked; this pass only narrows the divergence window.
func (r *RouterServer) rollback(ctx context.Context, ws []write) {
	keys := make([]uint64, 0, len(ws))
	var arr [topology.MaxReplicas]int
	for _, w := range ws {
		keys = append(keys, w.pre.key)
		for _, slot := range r.placementFor(w.pre.key, arr[:0]) {
			pool := r.storagePoolFor(slot)
			if pool == nil {
				continue
			}
			if w.pre.found {
				pool.Call(ctx, &Request{Op: OpPut, Key: w.pre.key, Value: w.pre.val})
			} else {
				pool.Call(ctx, &Request{Op: OpDrop, Key: w.pre.key})
			}
		}
	}
	r.evictEverywhere(ctx, keys)
}

// procTarget pairs a processor slot with its pool.
type procTarget struct {
	slot int
	pool *Pool
}

// liveProcs snapshots every processor that may still answer queries
// (anything not Left — draining members finish in-flight work on the old
// view, so their caches matter too).
func (r *RouterServer) liveProcs() []procTarget {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []procTarget
	for slot, p := range r.pools {
		if p != nil && r.view.Status(slot) != topology.Left {
			out = append(out, procTarget{slot: slot, pool: p})
		}
	}
	return out
}

// evictEverywhere fans OpEvict out to every live processor and requires
// every ack: a processor that cannot confirm the eviction could serve the
// pre-write record, so the mutation must not ack either.
func (r *RouterServer) evictEverywhere(ctx context.Context, keys []uint64) error {
	if len(keys) == 0 {
		return nil
	}
	procs := r.liveProcs()
	errs := make(chan error, len(procs))
	for _, t := range procs {
		go func(t procTarget) {
			_, err := t.pool.Call(ctx, &Request{Op: OpEvict, Keys: keys})
			errs <- err
		}(t)
	}
	var firstErr error
	for range procs {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cache eviction: %w", err)
		}
	}
	return firstErr
}

// pushOverridesTo hands one pool the complete current override table.
// Empty tables are not pushed — the processor's default (no pins) already
// matches.
func (r *RouterServer) pushOverridesTo(ctx context.Context, pool *Pool) error {
	ov := r.copyOverrides()
	if len(ov) == 0 {
		return nil
	}
	_, err := pool.Call(ctx, &Request{Op: OpPlacement, Overrides: ov})
	return err
}

func (r *RouterServer) copyOverrides() map[uint64][]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	ov := make(map[uint64][]int, len(r.overrides))
	for k, v := range r.overrides {
		ov[k] = v
	}
	return ov
}

// routerEnv adapts the router's deployment to the placement planner's Env.
// Locality mirrors the virtual-time engine's nearStorageSlot: processor
// slot i's near shard is i mod the seeded shard count.
type routerEnv struct {
	r   *RouterServer
	ctx context.Context
}

func (e routerEnv) Primary(key uint64) int {
	var buf [topology.MaxReplicas]int
	pl := e.r.placementFor(key, buf[:0])
	if len(pl) == 0 {
		return -1
	}
	return pl[0]
}

func (e routerEnv) Replicas(key uint64, dst []int) []int {
	return e.r.placementFor(key, dst)
}

func (e routerEnv) SizeOf(key uint64) int {
	val, found, err := e.r.loadRecordBytes(e.ctx, key)
	if err != nil || !found {
		return 0
	}
	return len(val)
}

func (e routerEnv) NearSlot(proc int) int {
	if e.r.storageBase == 0 || proc < 0 {
		return -1
	}
	return proc % e.r.storageBase
}

func (e routerEnv) ReplicaTarget() int { return e.r.storageReplicas }

// migrate runs one adaptive-placement cycle: drain heat from the
// processors, plan bounded moves, and execute each as a versioned
// copy-then-drop relocation a racing reader can never observe as wrong —
// the copy lands on the new shards first, then every processor's placement
// pins are replaced, and only once every processor acked the new table are
// the old copies dropped. Response.Applied is the number of records moved.
func (r *RouterServer) migrate(ctx context.Context) Response {
	if r.planner == nil {
		return errorResponse(fmt.Errorf("%w: adaptive placement is not enabled on this router", query.ErrBadQuery))
	}
	r.mutMu.Lock()
	defer r.mutMu.Unlock()

	// Drain heat, attributed to each reporting processor's slot. A
	// processor that does not answer simply contributes none this cycle.
	for _, t := range r.liveProcs() {
		resp, err := t.pool.Call(ctx, &Request{Op: OpHeat})
		if err != nil {
			continue
		}
		for _, hk := range resp.Hot {
			r.heat.Record(hk.Key, t.slot, hk.Reads)
		}
	}

	type executed struct {
		move placement.Move
		old  []int
	}
	var copied []executed
	for _, m := range r.planner.Plan(r.heat, routerEnv{r: r, ctx: ctx}) {
		old := r.placementFor(m.Key, nil)
		ok := r.copyTo(ctx, m.Key, m.To)
		r.planner.Executed(m, ok)
		if !ok {
			continue
		}
		r.mu.Lock()
		r.overrides[m.Key] = append([]int(nil), m.To...)
		r.mu.Unlock()
		copied = append(copied, executed{move: m, old: old})
	}

	if len(copied) > 0 {
		// Replace every processor's pin table; the old copies may only be
		// dropped once no reader can still resolve to them.
		allPushed := true
		for _, t := range r.liveProcs() {
			if err := r.pushOverridesTo(ctx, t.pool); err != nil {
				allPushed = false
			}
		}
		if allPushed {
			for _, d := range copied {
				r.dropOld(ctx, d.move.Key, d.old, d.move.To)
			}
		}
	}
	r.heat.Decay()
	return Response{OK: true, Applied: len(copied)}
}

// copyTo reads key's record from its current placement and writes it to
// every destination slot; the move only counts when every destination
// acked.
func (r *RouterServer) copyTo(ctx context.Context, key uint64, to []int) bool {
	val, found, err := r.loadRecordBytes(ctx, key)
	if err != nil || !found {
		return false
	}
	for _, slot := range to {
		pool := r.storagePoolFor(slot)
		if pool == nil {
			return false
		}
		if _, err := pool.Call(ctx, &Request{Op: OpPut, Key: key, Value: val}); err != nil {
			return false
		}
	}
	return true
}

// dropOld tombstones key on every slot of its previous placement that the
// new one does not reuse. Best effort: a shard that misses the drop keeps
// an unreachable (and on restart, replayed-but-unreachable) stale copy,
// which the override table already hides from every reader.
func (r *RouterServer) dropOld(ctx context.Context, key uint64, old, to []int) {
	keep := make(map[int]bool, len(to))
	for _, slot := range to {
		keep[slot] = true
	}
	for _, slot := range old {
		if keep[slot] {
			continue
		}
		if pool := r.storagePoolFor(slot); pool != nil {
			pool.Call(ctx, &Request{Op: OpDrop, Key: key})
		}
	}
}
