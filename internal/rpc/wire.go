package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Binary framing. Every protocol message travels as one frame:
//
//	[4-byte little-endian payload length][payload]
//
// The payload is a varint-coded stream built in a single pooled []byte slab
// (the length prefix is reserved up front and patched in before the write),
// so a steady-state call encodes with zero heap allocations. Request and
// response payloads both lead with the pipelining tag:
//
//	request:  tag uvarint | op u8 | deadline uvarint | field bitmap | fields
//	response: tag uvarint | status u8 [| errmsg] | field bitmap | fields
//
// Fields are presence-encoded: the bitmap says which envelope fields follow
// (in bit order), and an absent field decodes as its zero value — so a ping
// costs a handful of bytes, not the full union, exactly the property the
// gob envelopes had, without gob's type descriptors.
const (
	// maxFrame bounds a frame payload; a corrupt length prefix fails fast
	// instead of forcing a giant allocation.
	maxFrame = 64 << 20
	// frameHeader is the length prefix size.
	frameHeader = 4
	// maxWireStr bounds decoded envelope strings (addresses, labels, error
	// messages, stats roles).
	maxWireStr = 1 << 16
)

var errFrameTooBig = errors.New("rpc: frame exceeds size limit")

// slabPool recycles frame buffers across calls and connections — the
// "one []byte slab per frame" the zero-alloc encode path is built on.
var slabPool = sync.Pool{New: func() any { s := make([]byte, 0, 1024); return &s }}

func getSlab() *[]byte { return slabPool.Get().(*[]byte) }

func putSlab(s *[]byte) {
	if cap(*s) > maxFrame/4 {
		return // don't let one giant frame pin memory in the pool
	}
	*s = (*s)[:0]
	slabPool.Put(s)
}

// beginFrame reserves the length prefix at the head of buf.
func beginFrame(buf []byte) []byte {
	return append(buf, 0, 0, 0, 0)
}

// finishFrame patches the length prefix once the payload is complete.
func finishFrame(buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[:frameHeader], uint32(len(buf)-frameHeader))
	return buf
}

// readFrame reads one frame payload into a pooled slab. The caller owns the
// returned slab and must release it with putSlab(&payload) when done.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, errFrameTooBig
	}
	s := getSlab()
	buf := *s
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	*s = buf
	if _, err := io.ReadFull(r, buf); err != nil {
		putSlab(s)
		return nil, err
	}
	return buf, nil
}

// releaseFrame returns a payload obtained from readFrame to the slab pool.
func releaseFrame(payload []byte) {
	putSlab(&payload)
}

// Append helpers (the encode half of the codec). All integers are varints:
// unsigned values and IDs as uvarints, signed counters zigzag-coded, so
// small values — the common case everywhere in the protocol — cost one byte.

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendF64(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// wireReader is the bounds-checked decode half: malformed input flips err,
// every later read returns a zero value, and finish reports the failure (or
// trailing garbage) exactly once. The same idiom as internal/mquery's
// wireDec, extended with the primitive set the envelope codec needs.
type wireReader struct {
	buf []byte
	err bool
}

func (d *wireReader) fail() { d.err = true }

func (d *wireReader) uvarint() uint64 {
	if d.err {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = true
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *wireReader) varint() int64 {
	if d.err {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = true
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *wireReader) u8() byte {
	if d.err || len(d.buf) == 0 {
		d.err = true
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *wireReader) bool() bool { return d.u8() == 1 }

func (d *wireReader) f64() float64 {
	if d.err || len(d.buf) < 8 {
		d.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return math.Float64frombits(v)
}

// str decodes a length-prefixed string, copying out of the slab (the slab
// is recycled after decode, so nothing may alias it).
func (d *wireReader) str() string {
	n := d.uvarint()
	if d.err || n > maxWireStr || n > uint64(len(d.buf)) {
		d.err = true
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// bytes decodes a length-prefixed byte string into dst (reusing its
// capacity), so callers that recycle their envelopes skip the allocation.
// A nil wire value stays distinguishable: zero length yields dst[:0] — the
// protocol never needs nil-vs-empty.
func (d *wireReader) bytes(dst []byte) []byte {
	n := d.uvarint()
	if d.err || n > uint64(len(d.buf)) {
		d.err = true
		return nil
	}
	dst = append(dst[:0], d.buf[:n]...)
	d.buf = d.buf[n:]
	return dst
}

// raw decodes a length-prefixed sub-encoding WITHOUT copying: the returned
// slice aliases the frame slab and must be fully consumed (e.g. by an
// UnmarshalBinary that retains nothing) before the slab is released.
func (d *wireReader) raw() []byte {
	n := d.uvarint()
	if d.err || n > uint64(len(d.buf)) {
		d.err = true
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

// count decodes a collection length bounded by max AND by the bytes left
// (every element costs at least one byte), so a corrupt count cannot force
// a huge allocation.
func (d *wireReader) count(max int) int {
	v := d.uvarint()
	if v > uint64(max) || v > uint64(len(d.buf)) {
		d.err = true
		return 0
	}
	return int(v)
}

func (d *wireReader) finish(what string) error {
	if d.err {
		return fmt.Errorf("rpc: %s: malformed wire encoding", what)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("rpc: %s: %d trailing bytes", what, len(d.buf))
	}
	return nil
}
