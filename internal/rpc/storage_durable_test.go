package rpc

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/gstore"
)

// putKeys writes n distinct records through a direct connection to one
// durable shard and returns the encoded record used.
func putKeys(t *testing.T, addr string, n int) []byte {
	t.Helper()
	cn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	rec := gstore.Encode(nil, &gstore.Record{Node: 1, NodeLabel: 9})
	for k := 0; k < n; k++ {
		if _, err := cn.Call(context.Background(), &Request{Op: OpPut, Key: uint64(k), Value: rec}); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	return rec
}

// TestStorageServerDurableCrashRestart kills a durable shard without any
// graceful shutdown and restarts it over the same directory: every acked
// put must come back, and the shard must report itself warm.
func TestStorageServerDurableCrashRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewStorageServerDurable("127.0.0.1:0", dir, false)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	const n = 300
	putKeys(t, addr, n)
	st := srv.Stats()
	if st.Durable != "fresh" || st.DurableVersion != n || st.WALRecords != n {
		t.Fatalf("pre-crash stats: %+v", st)
	}
	srv.Close() // abandons the WAL fd — the crash path, no final sync

	restarted, err := NewStorageServerDurable(addr, dir, false)
	if err != nil {
		t.Fatalf("restart over %s: %v", dir, err)
	}
	defer restarted.Close()
	st = restarted.Stats()
	if st.Durable != "warm" {
		t.Fatalf("restarted shard state = %q, want warm", st.Durable)
	}
	if st.Keys != n || st.DurableVersion != n {
		t.Fatalf("restarted shard: keys %d dur-ver %d, want %d", st.Keys, st.DurableVersion, n)
	}
	if st.ReplayedBytes == 0 {
		t.Fatal("restarted shard reports no replayed bytes")
	}
	cn, err := Dial(restarted.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	resp, err := cn.Call(context.Background(), &Request{Op: OpGet, Key: 7})
	if err != nil || !resp.Found {
		t.Fatalf("get after restart: found=%v err=%v", resp.Found, err)
	}
}

// TestStorageServerDurableSnapshotCompaction drives a durable shard past
// its snapshot threshold and checks the WAL is truncated, the snapshot
// file exists, and a restart over snapshot + short WAL still recovers
// everything.
func TestStorageServerDurableSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewStorageServerDurable("127.0.0.1:0", dir, false)
	if err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	srv.snapEvery = 50
	srv.mu.Unlock()
	const n = 130
	putKeys(t, srv.Addr(), n)
	st := srv.Stats()
	if st.Snapshots == 0 {
		t.Fatal("no snapshot written past the threshold")
	}
	if st.WALRecords >= 50 {
		t.Fatalf("WAL not truncated by compaction: %d records", st.WALRecords)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard.snap")); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	addr := srv.Addr()
	srv.Close()

	restarted, err := NewStorageServerDurable(addr, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if st := restarted.Stats(); st.Keys != n || st.Durable != "warm" {
		t.Fatalf("restart after compaction: keys %d state %q", st.Keys, st.Durable)
	}
}

// TestStorageServerDurableFsync exercises the fsync-per-append mode end
// to end (correctness, not crash injection — the machine-crash guarantee
// is fsync's contract).
func TestStorageServerDurableFsync(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewStorageServerDurable("127.0.0.1:0", dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	putKeys(t, srv.Addr(), 20)
	if err := srv.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.DurableVersion != 20 {
		t.Fatalf("dur-ver = %d, want 20", st.DurableVersion)
	}
}

// TestStorageRejoinWarmHandshake restarts a durable registered shard and
// checks the router's snapshot reflects the durable version it announced
// on rejoin — the rejoin-warm handshake.
func TestStorageRejoinWarmHandshake(t *testing.T) {
	g := gen.LocalWeb(400, 8, 40, 0.01, 2)
	dir := t.TempDir()
	srv, err := NewStorageServerDurable("127.0.0.1:0", dir, false)
	if err != nil {
		t.Fatal(err)
	}
	storageAddrs := []string{srv.Addr()}
	sc, err := DialStorage(storageAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.LoadGraph(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	sc.Close()
	ps, err := NewProcessorServerWith("127.0.0.1:0", ProcessorConfig{Storage: storageAddrs, CacheBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	rs, err := NewRouterServer("127.0.0.1:0", RouterConfig{ProcessorAddrs: []string{ps.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	slot, err := srv.Register(context.Background(), rs.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	wantVer := srv.Stats().DurableVersion
	if wantVer == 0 {
		t.Fatal("durable shard loaded a graph but reports version 0")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	snap, err := rs.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.PerStorage) != 1 {
		t.Fatalf("%d storage rows, want 1", len(snap.PerStorage))
	}
	row := snap.PerStorage[0]
	if row.Durable != "fresh" || row.DurableVersion != wantVer || row.WALBytes == 0 {
		t.Fatalf("live durable row: %+v", row)
	}

	// Crash the shard and restart it over its directory on the same
	// address; the re-register must carry the recovered watermark.
	addr := srv.Addr()
	srv.Close()
	restarted, err := NewStorageServerDurable(addr, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { restarted.Close() })
	again, err := restarted.Register(context.Background(), rs.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	if again != slot {
		t.Fatalf("rejoin slot = %d, want %d", again, slot)
	}
	// The router's pooled connections to the crashed instance break on
	// their first use after the restart; the pool re-dials, so the stats
	// poll goes through within a retry or two.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err = rs.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		row = snap.PerStorage[0]
		if row.Durable == "warm" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined shard state = %q, want warm (row %+v)", row.Durable, row)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if row.DurableVersion != wantVer {
		t.Fatalf("rejoined durable version = %d, want %d", row.DurableVersion, wantVer)
	}
}
