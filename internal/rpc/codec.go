package rpc

import (
	"encoding/binary"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mquery"
	"repro/internal/query"
)

// Envelope field bitmaps. Each envelope encodes a presence bitmap followed
// by the present fields in bit order; an absent field decodes as its zero
// value. Both sides are op-agnostic — the handler layer, not the codec,
// decides which fields an op is allowed to use (exactly as with gob).
const (
	reqKey = 1 << iota
	reqValue
	reqKeys
	reqExec
	reqAddr
	reqProc
	reqTier
	reqVersion
	reqMuts
	reqOverrides
)

const (
	respValue = 1 << iota
	respFound
	respValues
	respResults
	respPartials
	respEpoch
	respProc
	respProcCache
	respStats
	respApplied
	respHot
)

// Response status byte: 0 = OK, 1 = not-OK without an error (unused by the
// current handlers, kept so OK round-trips exactly), 2+ = error codes. An
// error status is followed by the message string; the field bitmap and
// fields still follow, because some error responses carry payload (OpMutate
// reports Applied alongside the failure).
const (
	statusOK    = 0
	statusNotOK = 1
	statusErr   = 2 // statusErr + codeIndex
)

var wireCodes = [...]ErrCode{CodeBadQuery, CodeUnknownNode, CodeUnavailable, CodeConflict, CodeInternal}

func statusFor(resp *Response) byte {
	if resp.Err == "" {
		if resp.OK {
			return statusOK
		}
		return statusNotOK
	}
	for i, c := range wireCodes {
		if resp.Code == c {
			return byte(statusErr + i)
		}
	}
	return byte(statusErr + len(wireCodes) - 1) // internal
}

func codeForStatus(s byte) ErrCode {
	i := int(s) - statusErr
	if i < 0 || i >= len(wireCodes) {
		return CodeInternal
	}
	return wireCodes[i]
}

// peelTag splits the pipelining tag off a frame payload — the demux needs
// it to find the waiting call before the body is decoded.
func peelTag(payload []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, nil, false
	}
	return v, payload[n:], true
}

// encodeRequestFrame appends a complete request frame (length prefix
// included) to buf. deadline is the absolute context deadline in Unix
// nanoseconds (0 = none); it rides in the header so every op propagates it,
// and scratch is a reusable slab for the length-prefixed sub-encodings.
func encodeRequestFrame(buf []byte, tag uint64, req *Request, deadline int64, scratch *[]byte) []byte {
	buf = beginFrame(buf)
	buf = binary.AppendUvarint(buf, tag)
	buf = append(buf, byte(req.Op))
	if deadline < 0 {
		deadline = 0
	}
	buf = binary.AppendUvarint(buf, uint64(deadline))

	var bits uint64
	if req.Key != 0 {
		bits |= reqKey
	}
	if len(req.Value) > 0 {
		bits |= reqValue
	}
	if len(req.Keys) > 0 {
		bits |= reqKeys
	}
	if req.Exec != nil {
		bits |= reqExec
	}
	if req.Addr != "" {
		bits |= reqAddr
	}
	if req.Proc != 0 {
		bits |= reqProc
	}
	if req.Tier != "" {
		bits |= reqTier
	}
	if req.Version != 0 {
		bits |= reqVersion
	}
	if len(req.Muts) > 0 {
		bits |= reqMuts
	}
	if len(req.Overrides) > 0 {
		bits |= reqOverrides
	}
	buf = binary.AppendUvarint(buf, bits)

	if bits&reqKey != 0 {
		buf = binary.AppendUvarint(buf, req.Key)
	}
	if bits&reqValue != 0 {
		buf = appendBytes(buf, req.Value)
	}
	if bits&reqKeys != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(req.Keys)))
		for _, k := range req.Keys {
			buf = binary.AppendUvarint(buf, k)
		}
	}
	if bits&reqExec != 0 {
		buf = appendExec(buf, req.Exec, scratch)
	}
	if bits&reqAddr != 0 {
		buf = appendStr(buf, req.Addr)
	}
	if bits&reqProc != 0 {
		buf = binary.AppendVarint(buf, int64(req.Proc))
	}
	if bits&reqTier != 0 {
		buf = appendStr(buf, req.Tier)
	}
	if bits&reqVersion != 0 {
		buf = binary.AppendUvarint(buf, req.Version)
	}
	if bits&reqMuts != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(req.Muts)))
		for i := range req.Muts {
			m := &req.Muts[i]
			buf = append(buf, m.Op)
			buf = binary.AppendUvarint(buf, uint64(m.Node))
			buf = binary.AppendUvarint(buf, uint64(m.To))
			buf = appendStr(buf, m.Label)
		}
	}
	if bits&reqOverrides != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(req.Overrides)))
		for k, slots := range req.Overrides {
			buf = binary.AppendUvarint(buf, k)
			buf = binary.AppendUvarint(buf, uint64(len(slots)))
			for _, s := range slots {
				buf = binary.AppendVarint(buf, int64(s))
			}
		}
	}
	return finishFrame(buf)
}

// decodeRequestInto decodes a request frame payload (tag already peeled)
// into req, overwriting every field but reusing req's slice capacity — the
// server side recycles Requests, so a steady-state decode allocates
// nothing. Overrides is the one exception: it is always a fresh map,
// because the placement handler retains it after the request completes.
func decodeRequestInto(payload []byte, req *Request) error {
	value := req.Value
	keys := req.Keys
	muts := req.Muts
	exec := req.Exec
	*req = Request{}
	d := wireReader{buf: payload}
	req.Op = Op(d.u8())
	req.Deadline = int64(d.uvarint())
	bits := d.uvarint()

	if bits&reqKey != 0 {
		req.Key = d.uvarint()
	}
	if bits&reqValue != 0 {
		req.Value = d.bytes(value)
	}
	if bits&reqKeys != 0 {
		n := d.count(maxFrame)
		keys = keys[:0]
		for i := 0; i < n; i++ {
			keys = append(keys, d.uvarint())
		}
		req.Keys = keys
	}
	if bits&reqExec != 0 {
		req.Exec = decExec(&d, exec, req.Deadline)
	}
	if bits&reqAddr != 0 {
		req.Addr = d.str()
	}
	if bits&reqProc != 0 {
		req.Proc = int(d.varint())
	}
	if bits&reqTier != 0 {
		req.Tier = d.str()
	}
	if bits&reqVersion != 0 {
		req.Version = d.uvarint()
	}
	if bits&reqMuts != 0 {
		n := d.count(maxFrame)
		muts = muts[:0]
		for i := 0; i < n; i++ {
			var m Mutation
			m.Op = d.u8()
			m.Node = graph.NodeID(d.uvarint())
			m.To = graph.NodeID(d.uvarint())
			m.Label = d.str()
			muts = append(muts, m)
		}
		req.Muts = muts
	}
	if bits&reqOverrides != 0 {
		n := d.count(maxFrame)
		if n > 0 {
			req.Overrides = make(map[uint64][]int, n)
			for i := 0; i < n; i++ {
				k := d.uvarint()
				ns := d.count(maxFrame)
				slots := make([]int, ns)
				for j := range slots {
					slots[j] = int(d.varint())
				}
				if !d.err {
					req.Overrides[k] = slots
				}
			}
		}
	}
	return d.finish("request")
}

// appendExec encodes the OpExecute payload. The deadline lives in the frame
// header, not here (decode mirrors it back into ExecRequest.Deadline).
func appendExec(buf []byte, ex *ExecRequest, scratch *[]byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ex.Queries)))
	for i := range ex.Queries {
		buf = appendQuery(buf, &ex.Queries[i], scratch)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ex.Subtasks)))
	for i := range ex.Subtasks {
		tmp := ex.Subtasks[i].AppendBinary((*scratch)[:0])
		buf = appendBytes(buf, tmp)
		*scratch = tmp
	}
	return buf
}

// decExec decodes the OpExecute payload, reusing a recycled ExecRequest's
// struct and slice capacity when the caller hands one in (ex may be nil).
func decExec(d *wireReader, ex *ExecRequest, deadline int64) *ExecRequest {
	if ex == nil {
		ex = &ExecRequest{}
	}
	qs := ex.Queries[:0]
	sts := ex.Subtasks[:0]
	*ex = ExecRequest{Deadline: deadline}
	nq := d.count(maxFrame)
	for i := 0; i < nq; i++ {
		var q query.Query
		decQuery(d, &q)
		qs = append(qs, q)
	}
	ex.Queries = qs
	ns := d.count(maxFrame)
	for i := 0; i < ns; i++ {
		raw := d.raw()
		if d.err {
			break
		}
		var st mquery.Subtask
		if err := st.UnmarshalBinary(raw); err != nil {
			d.fail()
			break
		}
		sts = append(sts, st)
	}
	ex.Subtasks = sts
	return ex
}

func appendQuery(buf []byte, q *query.Query, scratch *[]byte) []byte {
	buf = binary.AppendVarint(buf, int64(q.ID))
	buf = append(buf, byte(q.Type))
	buf = binary.AppendUvarint(buf, uint64(q.Node))
	buf = binary.AppendUvarint(buf, uint64(q.Target))
	buf = binary.AppendVarint(buf, int64(q.Hops))
	buf = appendF64(buf, q.RestartProb)
	buf = appendStr(buf, q.CountLabel)
	buf = append(buf, byte(q.Dir))
	buf = binary.AppendVarint(buf, q.Seed)
	buf = binary.AppendVarint(buf, int64(q.Hotspot))
	buf = binary.AppendUvarint(buf, uint64(len(q.Anchors)))
	for _, a := range q.Anchors {
		buf = binary.AppendUvarint(buf, uint64(a))
	}
	if q.Pattern != nil {
		buf = append(buf, 1)
		tmp := q.Pattern.AppendBinary((*scratch)[:0])
		buf = appendBytes(buf, tmp)
		*scratch = tmp
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendVarint(buf, int64(q.VisitBudget))
	buf = binary.AppendVarint(buf, int64(q.K))
	return buf
}

func decQuery(d *wireReader, q *query.Query) {
	q.ID = int(d.varint())
	q.Type = query.Type(d.u8())
	q.Node = graph.NodeID(d.uvarint())
	q.Target = graph.NodeID(d.uvarint())
	q.Hops = int(d.varint())
	q.RestartProb = d.f64()
	q.CountLabel = d.str()
	q.Dir = graph.Direction(d.u8())
	q.Seed = d.varint()
	q.Hotspot = int(d.varint())
	na := d.count(maxFrame)
	if na > 0 {
		q.Anchors = make([]graph.NodeID, na)
		for i := range q.Anchors {
			q.Anchors[i] = graph.NodeID(d.uvarint())
		}
	}
	if d.bool() {
		raw := d.raw()
		if !d.err {
			var p query.Pattern
			if err := p.UnmarshalBinary(raw); err != nil {
				d.fail()
			} else {
				q.Pattern = &p
			}
		}
	}
	q.VisitBudget = int(d.varint())
	q.K = int(d.varint())
}

func appendResult(buf []byte, r *query.Result) []byte {
	buf = append(buf, byte(r.Type))
	buf = binary.AppendVarint(buf, int64(r.Count))
	buf = binary.AppendUvarint(buf, uint64(r.EndNode))
	buf = appendBool(buf, r.Reachable)
	buf = binary.AppendVarint(buf, int64(r.Matches))
	// Nearest travels only for KNearest results (Count doubles as its
	// length there); other kinds pay a single zero byte.
	nn := 0
	if r.Type == query.KNearest && r.Count > 0 && r.Count <= query.MaxKNearest {
		nn = r.Count
	}
	buf = append(buf, byte(nn))
	for i := 0; i < nn; i++ {
		buf = binary.AppendUvarint(buf, uint64(r.Nearest[i]))
	}
	return buf
}

func decResult(d *wireReader, r *query.Result) {
	r.Type = query.Type(d.u8())
	r.Count = int(d.varint())
	r.EndNode = graph.NodeID(d.uvarint())
	r.Reachable = d.bool()
	r.Matches = int(d.varint())
	nn := int(d.u8())
	if nn > query.MaxKNearest {
		d.fail()
		return
	}
	for i := 0; i < nn; i++ {
		r.Nearest[i] = graph.NodeID(d.uvarint())
	}
}

// encodeResponseFrame appends a complete response frame to buf.
func encodeResponseFrame(buf []byte, tag uint64, resp *Response, scratch *[]byte) []byte {
	buf = beginFrame(buf)
	buf = binary.AppendUvarint(buf, tag)
	status := statusFor(resp)
	buf = append(buf, status)
	if status >= statusErr {
		buf = appendStr(buf, resp.Err)
	}

	var bits uint64
	if len(resp.Value) > 0 {
		bits |= respValue
	}
	if resp.Found {
		bits |= respFound
	}
	if len(resp.Values) > 0 {
		bits |= respValues
	}
	if len(resp.Results) > 0 {
		bits |= respResults
	}
	if len(resp.Partials) > 0 {
		bits |= respPartials
	}
	if resp.Epoch != 0 {
		bits |= respEpoch
	}
	if resp.Proc != 0 {
		bits |= respProc
	}
	if resp.ProcCache != nil {
		bits |= respProcCache
	}
	if resp.Stats != nil {
		bits |= respStats
	}
	if resp.Applied != 0 {
		bits |= respApplied
	}
	if len(resp.Hot) > 0 {
		bits |= respHot
	}
	buf = binary.AppendUvarint(buf, bits)

	if bits&respValue != 0 {
		buf = appendBytes(buf, resp.Value)
	}
	if bits&respValues != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(resp.Values)))
		for i, v := range resp.Values {
			found := i < len(resp.Founds) && resp.Founds[i]
			buf = appendBool(buf, found)
			buf = appendBytes(buf, v)
		}
	}
	if bits&respResults != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(resp.Results)))
		for i := range resp.Results {
			buf = appendResult(buf, &resp.Results[i])
		}
	}
	if bits&respPartials != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(resp.Partials)))
		for i := range resp.Partials {
			tmp := resp.Partials[i].AppendBinary((*scratch)[:0])
			buf = appendBytes(buf, tmp)
			*scratch = tmp
		}
	}
	if bits&respEpoch != 0 {
		buf = binary.AppendUvarint(buf, resp.Epoch)
	}
	if bits&respProc != 0 {
		buf = binary.AppendVarint(buf, int64(resp.Proc))
	}
	if bits&respProcCache != 0 {
		buf = appendCache(buf, resp.ProcCache)
	}
	if bits&respStats != 0 {
		buf = appendStats(buf, resp.Stats)
	}
	if bits&respApplied != 0 {
		buf = binary.AppendVarint(buf, int64(resp.Applied))
	}
	if bits&respHot != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(resp.Hot)))
		for _, h := range resp.Hot {
			buf = binary.AppendUvarint(buf, h.Key)
			buf = binary.AppendVarint(buf, h.Reads)
		}
	}
	return finishFrame(buf)
}

// decodeResponseInto decodes a response frame payload (tag already peeled)
// into resp, reusing resp's slice capacity — the caller-owned-buffer half
// of the zero-alloc path.
func decodeResponseInto(payload []byte, resp *Response) error {
	value := resp.Value
	values := resp.Values
	founds := resp.Founds
	results := resp.Results
	partials := resp.Partials
	hot := resp.Hot
	procCache := resp.ProcCache
	*resp = Response{}

	d := wireReader{buf: payload}
	status := d.u8()
	switch status {
	case statusOK:
		resp.OK = true
	case statusNotOK:
	default:
		resp.Err = d.str()
		resp.Code = codeForStatus(status)
	}
	bits := d.uvarint()

	if bits&respValue != 0 {
		resp.Value = d.bytes(value)
	}
	resp.Found = bits&respFound != 0
	if bits&respValues != 0 {
		n := d.count(maxFrame)
		if values == nil {
			values = make([][]byte, 0, n)
		}
		values, founds = values[:0], founds[:0]
		for i := 0; i < n; i++ {
			founds = append(founds, d.bool())
			var dst []byte
			if i < cap(values) {
				dst = values[:i+1][i] // reuse the previous buffer in this slot
			}
			values = append(values, d.bytes(dst))
		}
		resp.Values, resp.Founds = values, founds
	}
	if bits&respResults != 0 {
		n := d.count(maxFrame)
		results = results[:0]
		for i := 0; i < n; i++ {
			var r query.Result
			decResult(&d, &r)
			results = append(results, r)
		}
		resp.Results = results
	}
	if bits&respPartials != 0 {
		n := d.count(maxFrame)
		partials = partials[:0]
		for i := 0; i < n; i++ {
			raw := d.raw()
			if d.err {
				break
			}
			var p mquery.Partial
			if err := p.UnmarshalBinary(raw); err != nil {
				d.fail()
				break
			}
			partials = append(partials, p)
		}
		resp.Partials = partials
	}
	if bits&respEpoch != 0 {
		resp.Epoch = d.uvarint()
	}
	if bits&respProc != 0 {
		resp.Proc = int(d.varint())
	}
	if bits&respProcCache != 0 {
		if procCache == nil {
			procCache = &metrics.CacheCounters{}
		}
		decCache(&d, procCache)
		resp.ProcCache = procCache
	}
	if bits&respStats != 0 {
		resp.Stats = decStats(&d)
	}
	if bits&respApplied != 0 {
		resp.Applied = int(d.varint())
	}
	if bits&respHot != 0 {
		n := d.count(maxFrame)
		hot = hot[:0]
		for i := 0; i < n; i++ {
			k := d.uvarint()
			r := d.varint()
			hot = append(hot, HotKey{Key: k, Reads: r})
		}
		resp.Hot = hot
	}
	return d.finish("response")
}

func appendCache(buf []byte, c *metrics.CacheCounters) []byte {
	buf = binary.AppendVarint(buf, c.Hits)
	buf = binary.AppendVarint(buf, c.Misses)
	buf = binary.AppendVarint(buf, c.Inserts)
	buf = binary.AppendVarint(buf, c.Evictions)
	buf = binary.AppendVarint(buf, c.Rejected)
	buf = binary.AppendVarint(buf, c.CurrentBytes)
	buf = binary.AppendVarint(buf, c.CapacityBytes)
	return buf
}

func decCache(d *wireReader, c *metrics.CacheCounters) {
	c.Hits = d.varint()
	c.Misses = d.varint()
	c.Inserts = d.varint()
	c.Evictions = d.varint()
	c.Rejected = d.varint()
	c.CurrentBytes = d.varint()
	c.CapacityBytes = d.varint()
}

func appendSummary(buf []byte, s *metrics.Summary) []byte {
	buf = binary.AppendVarint(buf, s.Count)
	buf = binary.AppendVarint(buf, s.Mean)
	buf = binary.AppendVarint(buf, s.P50)
	buf = binary.AppendVarint(buf, s.P95)
	buf = binary.AppendVarint(buf, s.P99)
	buf = binary.AppendVarint(buf, s.P999)
	buf = binary.AppendVarint(buf, s.Max)
	return buf
}

func decSummary(d *wireReader, s *metrics.Summary) {
	s.Count = d.varint()
	s.Mean = d.varint()
	s.P50 = d.varint()
	s.P95 = d.varint()
	s.P99 = d.varint()
	s.P999 = d.varint()
	s.Max = d.varint()
}

func appendStats(buf []byte, s *Stats) []byte {
	buf = appendStr(buf, s.Role)
	buf = binary.AppendVarint(buf, s.Requests)
	buf = binary.AppendVarint(buf, s.Keys)
	buf = binary.AppendVarint(buf, s.Reads)
	buf = binary.AppendVarint(buf, s.Hits)
	buf = binary.AppendVarint(buf, s.Misses)
	buf = binary.AppendVarint(buf, s.Executed)
	buf = appendBool(buf, s.Cache != nil)
	if s.Cache != nil {
		buf = appendCache(buf, s.Cache)
	}
	buf = appendStr(buf, s.Durable)
	buf = binary.AppendVarint(buf, s.WALBytes)
	buf = binary.AppendVarint(buf, s.WALRecords)
	buf = binary.AppendVarint(buf, s.Snapshots)
	buf = binary.AppendUvarint(buf, s.DurableVersion)
	buf = binary.AppendVarint(buf, s.ReplayedBytes)
	buf = appendBool(buf, s.Snapshot != nil)
	if s.Snapshot != nil {
		buf = appendSnapshot(buf, s.Snapshot)
	}
	return buf
}

func decStats(d *wireReader) *Stats {
	s := &Stats{}
	s.Role = d.str()
	s.Requests = d.varint()
	s.Keys = d.varint()
	s.Reads = d.varint()
	s.Hits = d.varint()
	s.Misses = d.varint()
	s.Executed = d.varint()
	if d.bool() {
		var cc metrics.CacheCounters
		decCache(d, &cc)
		s.Cache = &cc
	}
	s.Durable = d.str()
	s.WALBytes = d.varint()
	s.WALRecords = d.varint()
	s.Snapshots = d.varint()
	s.DurableVersion = d.uvarint()
	s.ReplayedBytes = d.varint()
	if d.bool() {
		s.Snapshot = decSnapshot(d)
	}
	return s
}

func appendSnapshot(buf []byte, sn *metrics.Snapshot) []byte {
	buf = appendStr(buf, sn.Transport)
	buf = appendStr(buf, sn.Policy)
	buf = appendStr(buf, sn.Strategy)
	buf = binary.AppendVarint(buf, int64(sn.Processors))
	buf = binary.AppendUvarint(buf, sn.Epoch)
	buf = binary.AppendVarint(buf, sn.Queries)
	buf = binary.AppendVarint(buf, sn.Mutations)
	buf = binary.AppendVarint(buf, sn.Stolen)
	buf = binary.AppendVarint(buf, sn.Diverted)
	buf = binary.AppendVarint(buf, sn.Reassigned)
	buf = binary.AppendUvarint(buf, uint64(len(sn.Epochs)))
	for i := range sn.Epochs {
		e := &sn.Epochs[i]
		buf = appendStr(buf, e.Tier)
		buf = binary.AppendUvarint(buf, e.Epoch)
		buf = binary.AppendVarint(buf, int64(e.Joined))
		buf = binary.AppendVarint(buf, int64(e.Left))
		buf = binary.AppendVarint(buf, int64(e.Failed))
		buf = binary.AppendVarint(buf, int64(e.Revived))
		buf = binary.AppendVarint(buf, e.Reassigned)
	}
	buf = appendCache(buf, &sn.Cache)
	buf = binary.AppendUvarint(buf, uint64(len(sn.PerProc)))
	for i := range sn.PerProc {
		p := &sn.PerProc[i]
		buf = binary.AppendVarint(buf, int64(p.Proc))
		buf = appendStr(buf, p.Status)
		buf = appendStr(buf, p.Addr)
		buf = binary.AppendVarint(buf, p.Assigned)
		buf = binary.AppendVarint(buf, p.Executed)
		buf = binary.AppendVarint(buf, p.Stolen)
		buf = binary.AppendVarint(buf, p.Diverted)
		buf = binary.AppendVarint(buf, p.QueueDepth)
		buf = appendCache(buf, &p.Cache)
	}
	buf = binary.AppendUvarint(buf, sn.StorageEpoch)
	buf = binary.AppendVarint(buf, int64(sn.StorageReplicas))
	buf = binary.AppendUvarint(buf, uint64(len(sn.PerStorage)))
	for i := range sn.PerStorage {
		m := &sn.PerStorage[i]
		buf = binary.AppendVarint(buf, int64(m.Slot))
		buf = appendStr(buf, m.Status)
		buf = appendStr(buf, m.Addr)
		buf = binary.AppendVarint(buf, m.Keys)
		buf = binary.AppendVarint(buf, m.Bytes)
		buf = binary.AppendVarint(buf, m.Gets)
		buf = binary.AppendVarint(buf, m.Misses)
		buf = binary.AppendVarint(buf, m.Failovers)
		buf = binary.AppendVarint(buf, m.RepairBytes)
		buf = appendStr(buf, m.Durable)
		buf = binary.AppendVarint(buf, m.WALBytes)
		buf = binary.AppendVarint(buf, m.WALRecords)
		buf = binary.AppendVarint(buf, m.Snapshots)
		buf = binary.AppendUvarint(buf, m.DurableVersion)
		buf = binary.AppendVarint(buf, m.ReplayedBytes)
		buf = binary.AppendVarint(buf, m.RecoverNanos)
	}
	buf = binary.AppendVarint(buf, sn.Placement.Cycles)
	buf = binary.AppendVarint(buf, sn.Placement.Planned)
	buf = binary.AppendVarint(buf, sn.Placement.Moved)
	buf = binary.AppendVarint(buf, sn.Placement.MovedBytes)
	buf = binary.AppendVarint(buf, sn.Placement.BudgetBytes)
	buf = binary.AppendVarint(buf, sn.Placement.SkippedBudget)
	buf = binary.AppendVarint(buf, sn.Placement.SkippedCold)
	buf = binary.AppendVarint(buf, sn.Placement.Overrides)
	buf = binary.AppendUvarint(buf, uint64(len(sn.PlacementLog)))
	for i := range sn.PlacementLog {
		m := &sn.PlacementLog[i]
		buf = binary.AppendUvarint(buf, m.Key)
		buf = binary.AppendVarint(buf, int64(m.From))
		buf = binary.AppendVarint(buf, int64(m.To))
		buf = binary.AppendVarint(buf, int64(m.Reader))
		buf = binary.AppendVarint(buf, m.Reads)
		buf = binary.AppendVarint(buf, m.Bytes)
	}
	buf = appendSummary(buf, &sn.RoutingNanos)
	buf = appendSummary(buf, &sn.QueueDepth)
	return buf
}

func decSnapshot(d *wireReader) *metrics.Snapshot {
	sn := &metrics.Snapshot{}
	sn.Transport = d.str()
	sn.Policy = d.str()
	sn.Strategy = d.str()
	sn.Processors = int(d.varint())
	sn.Epoch = d.uvarint()
	sn.Queries = d.varint()
	sn.Mutations = d.varint()
	sn.Stolen = d.varint()
	sn.Diverted = d.varint()
	sn.Reassigned = d.varint()
	if n := d.count(maxFrame); n > 0 {
		sn.Epochs = make([]metrics.EpochEvent, n)
		for i := range sn.Epochs {
			e := &sn.Epochs[i]
			e.Tier = d.str()
			e.Epoch = d.uvarint()
			e.Joined = int(d.varint())
			e.Left = int(d.varint())
			e.Failed = int(d.varint())
			e.Revived = int(d.varint())
			e.Reassigned = d.varint()
		}
	}
	decCache(d, &sn.Cache)
	if n := d.count(maxFrame); n > 0 {
		sn.PerProc = make([]metrics.ProcCounters, n)
		for i := range sn.PerProc {
			p := &sn.PerProc[i]
			p.Proc = int(d.varint())
			p.Status = d.str()
			p.Addr = d.str()
			p.Assigned = d.varint()
			p.Executed = d.varint()
			p.Stolen = d.varint()
			p.Diverted = d.varint()
			p.QueueDepth = d.varint()
			decCache(d, &p.Cache)
		}
	}
	sn.StorageEpoch = d.uvarint()
	sn.StorageReplicas = int(d.varint())
	if n := d.count(maxFrame); n > 0 {
		sn.PerStorage = make([]metrics.StorageCounters, n)
		for i := range sn.PerStorage {
			m := &sn.PerStorage[i]
			m.Slot = int(d.varint())
			m.Status = d.str()
			m.Addr = d.str()
			m.Keys = d.varint()
			m.Bytes = d.varint()
			m.Gets = d.varint()
			m.Misses = d.varint()
			m.Failovers = d.varint()
			m.RepairBytes = d.varint()
			m.Durable = d.str()
			m.WALBytes = d.varint()
			m.WALRecords = d.varint()
			m.Snapshots = d.varint()
			m.DurableVersion = d.uvarint()
			m.ReplayedBytes = d.varint()
			m.RecoverNanos = d.varint()
		}
	}
	sn.Placement.Cycles = d.varint()
	sn.Placement.Planned = d.varint()
	sn.Placement.Moved = d.varint()
	sn.Placement.MovedBytes = d.varint()
	sn.Placement.BudgetBytes = d.varint()
	sn.Placement.SkippedBudget = d.varint()
	sn.Placement.SkippedCold = d.varint()
	sn.Placement.Overrides = d.varint()
	if n := d.count(maxFrame); n > 0 {
		sn.PlacementLog = make([]metrics.MoveEvent, n)
		for i := range sn.PlacementLog {
			m := &sn.PlacementLog[i]
			m.Key = d.uvarint()
			m.From = int(d.varint())
			m.To = int(d.varint())
			m.Reader = int(d.varint())
			m.Reads = d.varint()
			m.Bytes = d.varint()
		}
	}
	decSummary(d, &sn.RoutingNanos)
	decSummary(d, &sn.QueueDepth)
	return sn
}
