package rpc

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// startBlockingServer serves a handler where OpGet parks until release is
// closed (or the per-request context ends) and every other op answers
// immediately — a stand-in for one slow query sharing a pipelined
// connection with fast ones.
func startBlockingServer(t *testing.T, release <-chan struct{}) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go serve(ln, func(ctx context.Context, req *Request) Response {
		if req.Op == OpGet {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return Response{OK: true, Found: true, Value: []byte("slow")}
		}
		return Response{OK: true}
	}, nil)
	return ln.Addr().String()
}

// TestCancelledCallDoesNotPoisonConn is the mid-stream cancellation
// regression test: cancelling one pipelined call abandons only that call's
// stream tag. The shared connection stays healthy for the calls already in
// flight and for new ones — under the old checkout pool a cancelled call
// tore down the whole socket.
func TestCancelledCallDoesNotPoisonConn(t *testing.T) {
	release := make(chan struct{})
	addr := startBlockingServer(t, release)

	cn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()

	// Park a slow call, then cancel it mid-stream while fast calls hammer
	// the same connection from other goroutines.
	ctx, cancel := context.WithCancel(context.Background())
	slowErr := make(chan error, 1)
	go func() {
		_, err := cn.Call(ctx, &Request{Op: OpGet, Key: 42})
		slowErr <- err
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := cn.Call(context.Background(), &Request{Op: OpPing}); err != nil {
					t.Errorf("concurrent ping during cancellation: %v", err)
					return
				}
			}
		}()
	}

	time.Sleep(10 * time.Millisecond) // let the slow call get on the wire
	cancel()
	if err := <-slowErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call: err = %v, want context.Canceled", err)
	}
	wg.Wait()

	if cn.Broken() {
		t.Fatal("connection marked broken after a cancelled call")
	}
	// The server eventually answers the abandoned tag; the demux must
	// discard that orphan response, not crash or misdeliver it.
	close(release)
	for i := 0; i < 20; i++ {
		if _, err := cn.Call(context.Background(), &Request{Op: OpPing}); err != nil {
			t.Fatalf("ping after orphan response: %v", err)
		}
	}
	if cn.Broken() {
		t.Fatal("connection marked broken after orphan response drained")
	}
}

// TestPoolSurvivesCancelledCall is the same property one layer up: with a
// single-connection pool, a cancelled call must not force a redial — the
// next call multiplexes onto the same healthy socket.
func TestPoolSurvivesCancelledCall(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	addr := startBlockingServer(t, release)

	p := NewPool(addr, 1)
	defer p.Close()

	if err := p.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	if len(p.conns) != 1 {
		p.mu.Unlock()
		t.Fatalf("pool has %d conns, want 1", len(p.conns))
	}
	before := p.conns[0]
	p.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Call(ctx, &Request{Op: OpGet, Key: 7})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pooled call: err = %v, want context.Canceled", err)
	}

	if err := p.Ping(context.Background()); err != nil {
		t.Fatalf("ping after cancellation: %v", err)
	}
	p.mu.Lock()
	same := len(p.conns) == 1 && p.conns[0] == before
	p.mu.Unlock()
	if !same {
		t.Fatal("pool replaced the connection after a cancelled call")
	}
}
