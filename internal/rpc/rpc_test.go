package rpc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mquery"
	"repro/internal/query"
)

// startCluster spins up a full localhost deployment: nStorage storage
// shards, nProcs processors, one router with the given policy, loaded with
// graph g. Cleanup is registered on t.
func startCluster(t *testing.T, g *graph.Graph, nStorage, nProcs int, policy string) *RouterClient {
	t.Helper()
	return startClusterCfg(t, g, nStorage, nProcs, policy, false)
}

// startClusterCfg is startCluster with control over whether the router is
// started with the dataset (groutingd -graph), which label-carrying
// patterns and mutations need for string→Label resolution.
func startClusterCfg(t *testing.T, g *graph.Graph, nStorage, nProcs int, policy string, withGraph bool) *RouterClient {
	t.Helper()
	var storageAddrs []string
	for i := 0; i < nStorage; i++ {
		ss, err := NewStorageServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ss.Close() })
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	sc, err := DialStorage(storageAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.LoadGraph(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	sc.Close()

	var procAddrs []string
	for i := 0; i < nProcs; i++ {
		ps, err := NewProcessorServer("127.0.0.1:0", storageAddrs, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ps.Close() })
		procAddrs = append(procAddrs, ps.Addr())
	}

	strat, err := BuildStrategy(policy, g, nProcs, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RouterConfig{ProcessorAddrs: procAddrs, Strategy: strat}
	if withGraph {
		cfg.Graph = g
	}
	rs, err := NewRouterServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	cl, err := DialRouter(context.Background(), rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestStorageGetPut(t *testing.T) {
	ctx := context.Background()
	ss, err := NewStorageServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	cn, err := Dial(ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	if _, err := cn.Call(ctx, &Request{Op: OpPut, Key: 7, Value: []byte("v7")}); err != nil {
		t.Fatal(err)
	}
	resp, err := cn.Call(ctx, &Request{Op: OpGet, Key: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || string(resp.Value) != "v7" {
		t.Fatalf("get = %+v", resp)
	}
	resp, err = cn.Call(ctx, &Request{Op: OpGet, Key: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Found {
		t.Fatal("missing key found")
	}
	resp, err = cn.Call(ctx, &Request{Op: OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil || resp.Stats.Role != "storage" || resp.Stats.Keys != 1 {
		t.Fatalf("stats = %+v", resp.Stats)
	}
}

func TestStorageUnknownOp(t *testing.T) {
	ss, err := NewStorageServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	cn, err := Dial(ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	if _, err := cn.Call(context.Background(), &Request{Op: Op(99)}); err == nil {
		t.Fatal("bogus op accepted")
	}
}

// TestClusterMatchesOracle runs a mixed workload through a real localhost
// deployment and checks every result against the in-memory oracle.
func TestClusterMatchesOracle(t *testing.T) {
	g := gen.LocalWeb(1500, 8, 60, 0.01, 5)
	cl := startCluster(t, g, 2, 3, "hash")
	qs := query.Hotspot(g, query.WorkloadSpec{
		NumHotspots: 8, QueriesPerHotspot: 5, R: 2, H: 2, Seed: 9,
	})
	ctx := context.Background()
	for _, q := range qs {
		got, err := cl.Execute(ctx, q)
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		if want := query.Answer(g, q); got != want {
			t.Fatalf("query %d (%v on %d): got %+v, want %+v", q.ID, q.Type, q.Node, got, want)
		}
	}
}

// TestClusterBatchMatchesOracle sends the whole workload as one batch and
// checks positional alignment with the oracle.
func TestClusterBatchMatchesOracle(t *testing.T) {
	g := gen.LocalWeb(1200, 8, 60, 0.01, 4)
	cl := startCluster(t, g, 2, 3, "hash")
	qs := query.Hotspot(g, query.WorkloadSpec{
		NumHotspots: 6, QueriesPerHotspot: 5, R: 2, H: 2, Seed: 11,
	})
	results, err := cl.ExecuteBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(results), len(qs))
	}
	for i, q := range qs {
		if want := query.Answer(g, q); results[i] != want {
			t.Fatalf("batch query %d: got %+v, want %+v", i, results[i], want)
		}
	}
}

func TestClusterSmartPolicies(t *testing.T) {
	g := gen.LocalWeb(1200, 8, 60, 0.01, 6)
	for _, policy := range []string{"landmark", "embed", "nextready"} {
		cl := startCluster(t, g, 2, 2, policy)
		q := query.Query{ID: 0, Type: query.NeighborAgg, Node: 100, Hops: 2, Dir: graph.Out}
		got, err := cl.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if want := query.Answer(g, q); got != want {
			t.Fatalf("%s: got %+v, want %+v", policy, got, want)
		}
	}
}

func TestClusterConcurrentClients(t *testing.T) {
	g := gen.LocalWeb(1000, 6, 50, 0.01, 8)
	cl := startCluster(t, g, 2, 3, "nextready")
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				node := graph.NodeID((w*37 + i*11) % 1000)
				q := query.Query{Type: query.NeighborAgg, Node: node, Hops: 1, Dir: graph.Out}
				got, err := cl.Execute(ctx, q)
				if err != nil {
					errs <- err
					return
				}
				if want := query.Answer(g, q); got != want {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestClusterTypedErrors checks that the typed sentinels survive the trip
// over the wire.
func TestClusterTypedErrors(t *testing.T) {
	g := gen.LocalWeb(800, 6, 50, 0.01, 2)
	cl := startCluster(t, g, 2, 2, "nextready")
	ctx := context.Background()

	// Malformed query: rejected client-side and (if forced through) by the
	// router with the same sentinel.
	bad := query.Query{Type: query.NeighborAgg, Node: 1, Hops: -1, Dir: graph.Out}
	if _, err := cl.Execute(ctx, bad); !errors.Is(err, query.ErrBadQuery) {
		t.Fatalf("bad query error = %v, want ErrBadQuery", err)
	}
	resp, err := cl.pool.Call(ctx, execRequest(ctx, []query.Query{bad}))
	if err == nil || !errors.Is(err, query.ErrBadQuery) {
		t.Fatalf("router-side bad query error = %v (resp %+v), want ErrBadQuery", err, resp)
	}

	// Unknown node: no record in the storage tier.
	unknown := query.Query{Type: query.NeighborAgg, Node: 1 << 30, Hops: 1, Dir: graph.Out}
	if _, err := cl.Execute(ctx, unknown); !errors.Is(err, query.ErrUnknownNode) {
		t.Fatalf("unknown node error = %v, want ErrUnknownNode", err)
	}

	// Unavailable: dialing a closed port.
	if _, err := DialRouter(context.Background(), "127.0.0.1:1"); !errors.Is(err, query.ErrUnavailable) {
		t.Fatalf("dial error = %v, want ErrUnavailable", err)
	}
}

// TestCallCancellation checks that a cancelled context unblocks an
// in-flight call and that an expired deadline fails fast.
func TestCallCancellation(t *testing.T) {
	g := gen.LocalWeb(600, 6, 50, 0.01, 3)
	cl := startCluster(t, g, 1, 1, "nextready")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := query.Query{Type: query.NeighborAgg, Node: 10, Hops: 2, Dir: graph.Out}
	if _, err := cl.Execute(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled execute error = %v, want context.Canceled", err)
	}

	// A deadline in the past must fail without hanging.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := cl.Execute(expired, q); err == nil {
		t.Fatal("expired deadline succeeded")
	}

	// The client remains usable afterwards (broken conns are discarded by
	// the pool).
	got, err := cl.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if want := query.Answer(g, q); got != want {
		t.Fatalf("post-cancel result %+v, want %+v", got, want)
	}
}

func TestProcessorCacheWarms(t *testing.T) {
	g := gen.Ring(100)
	ctx := context.Background()
	ss, err := NewStorageServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	sc, err := DialStorage([]string{ss.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	sc.Close()
	ps, err := NewProcessorServer("127.0.0.1:0", []string{ss.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	cn, err := Dial(ps.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	q := query.Query{Type: query.NeighborAgg, Node: 5, Hops: 3, Dir: graph.Out}
	for i := 0; i < 2; i++ {
		if _, err := cn.Call(ctx, execRequest(ctx, []query.Query{q})); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := cn.Call(ctx, &Request{Op: OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil || resp.Stats.Hits == 0 {
		t.Fatalf("repeat query produced no cache hits: %+v", resp.Stats)
	}
	if resp.Stats.Executed != 2 {
		t.Fatalf("executed = %d", resp.Stats.Executed)
	}
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouterServer("127.0.0.1:0", RouterConfig{}); err == nil {
		t.Fatal("router with no processors accepted")
	}
	if _, err := BuildStrategy("bogus", gen.Ring(10), 2, 1); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if _, err := DialStorage(nil); err == nil {
		t.Fatal("empty storage list accepted")
	}
	if _, err := DialStorage([]string{"127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable storage accepted")
	}
}

// reqFrameSize binary-encodes req as a complete frame (length prefix, tag,
// header, payload) and returns the byte count — the number that actually
// crosses the wire per request. Unlike gob there is no first-message
// descriptor cost: every frame is steady-state.
func reqFrameSize(t *testing.T, req *Request) int {
	t.Helper()
	var scratch []byte
	dl := req.Deadline
	if req.Exec != nil && req.Exec.Deadline > 0 {
		dl = req.Exec.Deadline
	}
	buf := encodeRequestFrame(nil, 1, req, dl, &scratch)
	// The frame must decode back; a size test on garbage proves nothing.
	tag, rest, ok := peelTag(buf[frameHeader:])
	if !ok || tag != 1 {
		t.Fatalf("frame tag corrupt")
	}
	var got Request
	if err := decodeRequestInto(rest, &got); err != nil {
		t.Fatalf("frame does not decode: %v", err)
	}
	return len(buf)
}

// respFrameSize is reqFrameSize for responses.
func respFrameSize(t *testing.T, resp *Response) int {
	t.Helper()
	var scratch []byte
	buf := encodeResponseFrame(nil, 1, resp, &scratch)
	tag, rest, ok := peelTag(buf[frameHeader:])
	if !ok || tag != 1 {
		t.Fatalf("frame tag corrupt")
	}
	var got Response
	if err := decodeResponseInto(rest, &got); err != nil {
		t.Fatalf("frame does not decode: %v", err)
	}
	return len(buf)
}

// TestEnvelopeEncodedSize is the wire-waste regression test: ops must not
// carry the payloads of other ops, and the binary framing must beat the
// gob ceilings it replaced (ping 16, get 32, mutate 64, migrate 16, evict
// 32, placement 48, execute 128, subtask 96, pattern 160, partial 96,
// pong 16, stats request 16, 7-proc stats response 1024 — plus gob's
// ~960-byte first-message descriptor cost, which is now zero).
func TestEnvelopeEncodedSize(t *testing.T) {
	ping := &Request{Op: OpPing}
	if n := reqFrameSize(t, ping); n > 8 {
		t.Errorf("ping frame encodes to %d bytes, want <= 8", n)
	}
	get := &Request{Op: OpGet, Key: 123456789}
	if n := reqFrameSize(t, get); n > 16 {
		t.Errorf("get frame encodes to %d bytes, want <= 16", n)
	}
	// Mutations: a single-op batch stays a small constant envelope, and an
	// unlabelled op never drags a label string along.
	mut := &Request{Op: OpMutate, Muts: []Mutation{{Op: MutOpAddEdge, Node: 42, To: 99}}}
	if n := reqFrameSize(t, mut); n > 24 {
		t.Errorf("1-op mutate frame encodes to %d bytes, want <= 24", n)
	}
	// Migration-cycle ops: the trigger is bare; an eviction carries only
	// its keys; an override push is proportional to the pin table.
	migrate := &Request{Op: OpMigrate}
	if n := reqFrameSize(t, migrate); n > 8 {
		t.Errorf("migrate frame encodes to %d bytes, want <= 8", n)
	}
	evict := &Request{Op: OpEvict, Keys: []uint64{7, 8}}
	if n := reqFrameSize(t, evict); n > 16 {
		t.Errorf("2-key evict frame encodes to %d bytes, want <= 16", n)
	}
	place := &Request{Op: OpPlacement, Overrides: map[uint64][]int{42: {1, 0}}}
	if n := reqFrameSize(t, place); n > 16 {
		t.Errorf("1-pin placement push frame encodes to %d bytes, want <= 16", n)
	}
	// One-query execute: the query payload plus envelope, nothing else.
	exec := execRequest(context.Background(), []query.Query{
		{ID: 1, Type: query.NeighborAgg, Node: 42, Hops: 2, Dir: graph.Out},
	})
	if n := reqFrameSize(t, exec); n > 48 {
		t.Errorf("1-query execute frame encodes to %d bytes, want <= 48", n)
	}
	// A one-subtask wave dispatch: the varint-packed subtask plus envelope.
	subExec := &Request{Op: OpExecute, Exec: &ExecRequest{Subtasks: []mquery.Subtask{
		{Kind: mquery.KindReach, Anchor: 42, Target: 99, Hops: 2, Budget: 64},
	}}}
	if n := reqFrameSize(t, subExec); n > 32 {
		t.Errorf("1-subtask execute frame encodes to %d bytes, want <= 32", n)
	}
	// A pattern-match query rides its varint-packed template.
	patExec := execRequest(context.Background(), []query.Query{{
		ID: 1, Type: query.PatternMatch, Node: 42, Dir: graph.Out,
		Pattern: &query.Pattern{
			Nodes: []query.PatternNode{{Anchor: 42}, {Anchor: 97}, {}},
			Edges: []query.PatternEdge{{From: 0, To: 2}, {From: 1, To: 2}},
		},
	}})
	if n := reqFrameSize(t, patExec); n > 64 {
		t.Errorf("1-pattern execute frame encodes to %d bytes, want <= 64", n)
	}
	// A k-nearest query is the classic-traversal envelope plus one varint
	// for K; its single-subtask dispatch matches the reach ceiling.
	knnExec := execRequest(context.Background(), []query.Query{
		{ID: 1, Type: query.KNearest, Node: 42, Hops: 2, K: 8, Dir: graph.Both},
	})
	if n := reqFrameSize(t, knnExec); n > 48 {
		t.Errorf("1-knn execute frame encodes to %d bytes, want <= 48", n)
	}
	knnSub := &Request{Op: OpExecute, Exec: &ExecRequest{Subtasks: []mquery.Subtask{
		{Kind: mquery.KindKNN, Anchor: 42, Radius: 2},
	}}}
	if n := reqFrameSize(t, knnSub); n > 32 {
		t.Errorf("1-knn-subtask execute frame encodes to %d bytes, want <= 32", n)
	}
	// A candidate partial and the final ranked result stay proportional to
	// the ids they carry: one byte of count plus a varint per node.
	knnPart := &Response{OK: true, Partials: []mquery.Partial{
		{Kind: mquery.KindKNN, Anchor: 42, Visited: 12,
			Candidates: []graph.NodeID{7, 9, 11, 13}},
	}}
	if n := respFrameSize(t, knnPart); n > 32 {
		t.Errorf("4-candidate knn partial frame encodes to %d bytes, want <= 32", n)
	}
	knnResp := &Response{OK: true, Results: []query.Result{
		{Type: query.KNearest, Count: 4,
			Nearest: [query.MaxKNearest]graph.NodeID{7, 9, 11, 13}},
	}}
	if n := respFrameSize(t, knnResp); n > 32 {
		t.Errorf("4-nearest knn result frame encodes to %d bytes, want <= 32", n)
	}
	// A truncated-frontier partial response stays proportional to its
	// boundary, with a small constant envelope.
	partResp := &Response{OK: true, Partials: []mquery.Partial{
		{Kind: mquery.KindReach, Anchor: 42, Visited: 64,
			Frontier: []mquery.Boundary{{Node: 7, Hops: 1}, {Node: 9, Hops: 1}}},
	}}
	if n := respFrameSize(t, partResp); n > 32 {
		t.Errorf("1-partial response frame encodes to %d bytes, want <= 32", n)
	}
	// An OK response to a ping must not carry result/stats payloads.
	pong := &Response{OK: true}
	if n := respFrameSize(t, pong); n > 8 {
		t.Errorf("pong frame encodes to %d bytes, want <= 8", n)
	}
	// A stats poll is a bare request...
	statsReq := &Request{Op: OpStats}
	if n := reqFrameSize(t, statsReq); n > 8 {
		t.Errorf("stats request frame encodes to %d bytes, want <= 8", n)
	}
	// ...and its response — a full system snapshot at the paper's 7-processor
	// scale, every counter populated — must stay a small, fixed-size payload
	// so a monitoring loop can poll it continuously.
	snap := &metrics.Snapshot{
		Transport:  "tcp",
		Policy:     "embed",
		Strategy:   "embed",
		Processors: 7,
		Epoch:      9,
		Queries:    123456,
		Stolen:     321,
		Diverted:   12,
		Reassigned: 17,
		Epochs: []metrics.EpochEvent{
			{Epoch: 8, Joined: 2},
			{Epoch: 9, Left: 1, Reassigned: 17},
		},
		RoutingNanos: metrics.Summary{
			Count: 123456, Mean: 850, P50: 800, P95: 2047, P99: 4095, Max: 90000,
		},
		QueueDepth: metrics.Summary{Count: 123456, Mean: 2, P50: 1, P95: 7, P99: 15, Max: 31},
	}
	for i := 0; i < 7; i++ {
		cc := metrics.CacheCounters{
			Hits: 900000 + int64(i), Misses: 100000, Inserts: 100000,
			Evictions: 55000, CurrentBytes: 4 << 30, CapacityBytes: 4 << 30,
		}
		snap.PerProc = append(snap.PerProc, metrics.ProcCounters{
			Proc: i, Status: "active", Addr: "10.0.0.71:7101",
			Assigned: 17636, Executed: 17640, Stolen: 40, Diverted: 2,
			QueueDepth: 3, Cache: cc,
		})
		snap.Cache.Add(cc)
	}
	statsResp := &Response{OK: true, Stats: &Stats{Role: "router", Requests: 999999, Snapshot: snap}}
	if n := respFrameSize(t, statsResp); n > 768 {
		t.Errorf("7-proc stats response frame encodes to %d bytes, want <= 768", n)
	}
}

// TestClusterStatsSnapshot checks the networked deployment's OpStats
// surface: after a workload, the router reports a system-wide snapshot
// whose per-processor assignment counts sum to the executed queries and
// whose cache/routing counters are live.
func TestClusterStatsSnapshot(t *testing.T) {
	g := gen.LocalWeb(1200, 8, 60, 0.01, 4)
	cl := startCluster(t, g, 2, 3, "hash")
	qs := query.Hotspot(g, query.WorkloadSpec{
		NumHotspots: 6, QueriesPerHotspot: 5, R: 2, H: 2, Seed: 11,
	})
	ctx := context.Background()
	for _, q := range qs {
		if _, err := cl.Execute(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Transport != "tcp" || snap.Policy != "hash" || snap.Processors != 3 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if snap.Queries != int64(len(qs)) {
		t.Fatalf("Queries = %d, want %d", snap.Queries, len(qs))
	}
	var assigned, executed int64
	for _, p := range snap.PerProc {
		assigned += p.Assigned
		executed += p.Executed
	}
	if assigned != int64(len(qs)) || executed != int64(len(qs)) {
		t.Fatalf("assigned/executed = %d/%d, want %d", assigned, executed, len(qs))
	}
	if snap.Cache.Touches() == 0 {
		t.Fatal("cache counters all zero after a workload")
	}
	if snap.RoutingNanos.Count != int64(len(qs)) {
		t.Fatalf("routing decisions = %d, want %d", snap.RoutingNanos.Count, len(qs))
	}
}
