package rpc

import (
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
)

// startCluster spins up a full localhost deployment: nStorage storage
// shards, nProcs processors, one router with the given policy, loaded with
// graph g. Cleanup is registered on t.
func startCluster(t *testing.T, g *graph.Graph, nStorage, nProcs int, policy string) *Client {
	t.Helper()
	var storageAddrs []string
	for i := 0; i < nStorage; i++ {
		ss, err := NewStorageServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ss.Close() })
		storageAddrs = append(storageAddrs, ss.Addr())
	}
	sc, err := DialStorage(storageAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	sc.Close()

	var procAddrs []string
	for i := 0; i < nProcs; i++ {
		ps, err := NewProcessorServer("127.0.0.1:0", storageAddrs, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ps.Close() })
		procAddrs = append(procAddrs, ps.Addr())
	}

	strat, err := BuildStrategy(policy, g, nProcs, 7)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRouterServer("127.0.0.1:0", RouterConfig{ProcessorAddrs: procAddrs, Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	cl, err := DialRouter(rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestStorageGetPut(t *testing.T) {
	ss, err := NewStorageServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	cn, err := Dial(ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	if _, err := cn.Call(&Request{Op: OpPut, Key: 7, Value: []byte("v7")}); err != nil {
		t.Fatal(err)
	}
	resp, err := cn.Call(&Request{Op: OpGet, Key: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || string(resp.Value) != "v7" {
		t.Fatalf("get = %+v", resp)
	}
	resp, err = cn.Call(&Request{Op: OpGet, Key: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Found {
		t.Fatal("missing key found")
	}
	resp, err = cn.Call(&Request{Op: OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Role != "storage" || resp.Stats.Keys != 1 {
		t.Fatalf("stats = %+v", resp.Stats)
	}
}

func TestStorageUnknownOp(t *testing.T) {
	ss, err := NewStorageServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	cn, err := Dial(ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	if _, err := cn.Call(&Request{Op: "bogus"}); err == nil {
		t.Fatal("bogus op accepted")
	}
}

// TestClusterMatchesOracle runs a mixed workload through a real localhost
// deployment and checks every result against the in-memory oracle.
func TestClusterMatchesOracle(t *testing.T) {
	g := gen.LocalWeb(1500, 8, 60, 0.01, 5)
	cl := startCluster(t, g, 2, 3, "hash")
	qs := query.Hotspot(g, query.WorkloadSpec{
		NumHotspots: 8, QueriesPerHotspot: 5, R: 2, H: 2, Seed: 9,
	})
	for _, q := range qs {
		got, err := cl.Execute(q)
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		if want := query.Answer(g, q); got != want {
			t.Fatalf("query %d (%v on %d): got %+v, want %+v", q.ID, q.Type, q.Node, got, want)
		}
	}
}

func TestClusterSmartPolicies(t *testing.T) {
	g := gen.LocalWeb(1200, 8, 60, 0.01, 6)
	for _, policy := range []string{"landmark", "embed", "nextready"} {
		cl := startCluster(t, g, 2, 2, policy)
		q := query.Query{ID: 0, Type: query.NeighborAgg, Node: 100, Hops: 2, Dir: graph.Out}
		got, err := cl.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if want := query.Answer(g, q); got != want {
			t.Fatalf("%s: got %+v, want %+v", policy, got, want)
		}
	}
}

func TestClusterConcurrentClients(t *testing.T) {
	g := gen.LocalWeb(1000, 6, 50, 0.01, 8)
	cl := startCluster(t, g, 2, 3, "nextready")
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				node := graph.NodeID((w*37 + i*11) % 1000)
				q := query.Query{Type: query.NeighborAgg, Node: node, Hops: 1, Dir: graph.Out}
				got, err := cl.Execute(q)
				if err != nil {
					errs <- err
					return
				}
				if want := query.Answer(g, q); got != want {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestProcessorCacheWarms(t *testing.T) {
	g := gen.Ring(100)
	ss, err := NewStorageServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	sc, err := DialStorage([]string{ss.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	sc.Close()
	ps, err := NewProcessorServer("127.0.0.1:0", []string{ss.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	cn, err := Dial(ps.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	q := query.Query{Type: query.NeighborAgg, Node: 5, Hops: 3, Dir: graph.Out}
	for i := 0; i < 2; i++ {
		if _, err := cn.Call(&Request{Op: OpExecute, Query: q}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := cn.Call(&Request{Op: OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Hits == 0 {
		t.Fatalf("repeat query produced no cache hits: %+v", resp.Stats)
	}
	if resp.Stats.Executed != 2 {
		t.Fatalf("executed = %d", resp.Stats.Executed)
	}
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouterServer("127.0.0.1:0", RouterConfig{}); err == nil {
		t.Fatal("router with no processors accepted")
	}
	if _, err := BuildStrategy("bogus", gen.Ring(10), 2, 1); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if _, err := DialStorage(nil); err == nil {
		t.Fatal("empty storage list accepted")
	}
}
