package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/topology"
)

// startStorageShards brings up n shards and returns them with their
// addresses.
func startStorageShards(t *testing.T, n int) ([]*StorageServer, []string) {
	t.Helper()
	var servers []*StorageServer
	var addrs []string
	for i := 0; i < n; i++ {
		ss, err := NewStorageServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ss.Close() })
		servers = append(servers, ss)
		addrs = append(addrs, ss.Addr())
	}
	return servers, addrs
}

// TestStorageClientReplicatedFailover kills one of R=2 shards and checks
// MultiGet serves every record from the survivors, marking the dead shard
// down (per-replica health) and counting the failover.
func TestStorageClientReplicatedFailover(t *testing.T) {
	g := gen.ErdosRenyi(400, 2000, 11)
	servers, addrs := startStorageShards(t, 3)
	sc, err := DialStorageReplicated(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ctx := context.Background()
	if err := sc.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	ids := make([]graph.NodeID, 0, 400)
	for id := graph.NodeID(0); id < 400; id++ {
		ids = append(ids, id)
	}
	before, err := sc.MultiGet(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(ids) {
		t.Fatalf("got %d of %d records before failure", len(before), len(ids))
	}

	servers[0].Close()
	after, err := sc.MultiGet(ctx, ids)
	if err != nil {
		t.Fatalf("MultiGet across a dead replica: %v", err)
	}
	if len(after) != len(ids) {
		t.Fatalf("got %d of %d records after failure", len(after), len(ids))
	}
	for id, rec := range after {
		if len(rec.Out) != len(before[id].Out) || len(rec.In) != len(before[id].In) {
			t.Fatalf("node %d: record changed across failover", id)
		}
	}
	if sc.Failovers() == 0 {
		t.Fatal("failover not counted")
	}
	// Steady state: the dead shard is remembered as down, so repeated
	// reads pay no further failed round trips (health, not luck).
	f0 := sc.Failovers()
	if _, err := sc.MultiGet(ctx, ids); err != nil {
		t.Fatal(err)
	}
	if sc.Failovers() != f0 {
		t.Fatalf("steady-state reads still failing over (%d -> %d)", f0, sc.Failovers())
	}
}

// TestStorageClientUnreplicatedDies pins the R=1 contrast: a dead shard
// makes its keys unavailable with the typed error.
func TestStorageClientUnreplicatedDies(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 3)
	servers, addrs := startStorageShards(t, 2)
	sc, err := DialStorage(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ctx := context.Background()
	if err := sc.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	servers[1].Close()
	ids := make([]graph.NodeID, 0, 200)
	for id := graph.NodeID(0); id < 200; id++ {
		ids = append(ids, id)
	}
	out, err := sc.MultiGet(ctx, ids)
	if err == nil {
		t.Fatal("unreplicated MultiGet survived a dead shard")
	}
	if !errors.Is(err, query.ErrUnavailable) {
		t.Fatalf("error not typed unavailable: %v", err)
	}
	if len(out) == 0 || len(out) == len(ids) {
		t.Fatalf("got %d of %d: want a partial result from the survivor", len(out), len(ids))
	}
}

// TestStorageClientShardRecovery pins that the down flag is advisory and
// self-healing in every mode, including unreplicated: a shard that dies
// and comes back (same address) is re-admitted by the health probe and
// serves reads and writes again.
func TestStorageClientShardRecovery(t *testing.T) {
	servers, addrs := startStorageShards(t, 2)
	sc, err := DialStorage(addrs) // replicas == 1: no failover to hide behind
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ctx := context.Background()
	rec := gstore.Encode(nil, &gstore.Record{Node: 7, NodeLabel: 3})
	for k := uint64(0); k < 50; k++ {
		if err := sc.Put(ctx, k, rec); err != nil {
			t.Fatal(err)
		}
	}
	victim := sc.shardFor(7)
	servers[victim].Close()
	ids := []graph.NodeID{7}
	if _, err := sc.MultiGet(ctx, ids); err == nil {
		t.Fatal("read off a dead sole replica succeeded")
	}
	// Restart the shard on the same address; the probe must re-admit it.
	restarted, err := NewStorageServer(addrs[victim])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { restarted.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := sc.Put(ctx, 7, rec); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard never re-admitted after restart")
		}
		time.Sleep(probeBase / 2)
	}
	out, err := sc.MultiGet(ctx, ids)
	if err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	if got, ok := out[7]; !ok || got.NodeLabel != 3 {
		t.Fatalf("key 7 after recovery = %+v, %v", got, ok)
	}
}

func TestDialStorageReplicatedValidation(t *testing.T) {
	_, addrs := startStorageShards(t, 2)
	if _, err := DialStorageReplicated(addrs, 3); err == nil {
		t.Fatal("more replicas than shards accepted")
	}
	if _, err := DialStorageReplicated(addrs, 0); err == nil {
		t.Fatal("0 replicas accepted")
	}
	if _, err := DialStorageReplicated(addrs, topology.MaxReplicas+1); err == nil {
		t.Fatal("replicas beyond MaxReplicas accepted")
	}
}

// TestStorageJoinDrain registers storage shards with a running router and
// checks the storage view, the tier-tagged epoch log, and clean leave.
func TestStorageJoinDrain(t *testing.T) {
	g := gen.LocalWeb(600, 8, 40, 0.01, 2)
	_, storageAddrs := startStorageShards(t, 2)
	sc, err := DialStorageReplicated(storageAddrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.LoadGraph(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	sc.Close()
	ps, err := NewProcessorServerWith("127.0.0.1:0", ProcessorConfig{Storage: storageAddrs, StorageReplicas: 2, CacheBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	rs, err := NewRouterServer("127.0.0.1:0", RouterConfig{
		ProcessorAddrs:  []string{ps.Addr()},
		StorageAddrs:    storageAddrs[:1], // seed one; the second joins live
		StorageReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	extra, extraAddrs := startStorageShards(t, 1)
	slot, err := extra[0].Register(context.Background(), rs.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	if slot != 1 {
		t.Fatalf("joined storage slot = %d, want 1", slot)
	}
	if got := extra[0].RegisteredSlot(); got != 1 {
		t.Fatalf("RegisteredSlot = %d", got)
	}
	// Idempotent re-join.
	if again, err := extra[0].Register(context.Background(), rs.Addr(), extraAddrs[0]); err != nil || again != slot {
		t.Fatalf("re-join: slot %d err %v", again, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	snap, err := rs.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.StorageEpoch != 2 || snap.StorageReplicas != 2 {
		t.Fatalf("storage header: epoch %d replicas %d", snap.StorageEpoch, snap.StorageReplicas)
	}
	if len(snap.PerStorage) != 2 {
		t.Fatalf("%d storage rows, want 2", len(snap.PerStorage))
	}
	if snap.PerStorage[0].Addr != storageAddrs[0] || snap.PerStorage[0].Status != "active" {
		t.Fatalf("seeded storage row: %+v", snap.PerStorage[0])
	}
	if snap.PerStorage[0].Keys == 0 {
		t.Fatal("seeded storage row not polled for shard counters")
	}
	joined := false
	for _, e := range snap.Epochs {
		if e.Tier == "storage" && e.Joined == 1 {
			joined = true
		}
	}
	if !joined {
		t.Fatalf("storage join missing from epoch log: %+v", snap.Epochs)
	}

	// Clean leave.
	if err := extra[0].Deregister(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err = rs.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.PerStorage[1].Status != "left" {
		t.Fatalf("deregistered shard status = %q", snap.PerStorage[1].Status)
	}
}

// TestEnvelopeEncodedSizeWithStorage extends the wire-waste regression to
// the storage-bearing snapshot: the paper-scale 7-processor + 4-storage
// deployment's OpStats response, every counter populated, must stay under
// 1 KB (gob needed 1.5 KB) so a monitoring loop can poll it continuously.
func TestEnvelopeEncodedSizeWithStorage(t *testing.T) {
	snap := &metrics.Snapshot{
		Transport:       "tcp",
		Policy:          "embed",
		Strategy:        "embed",
		Processors:      7,
		Epoch:           9,
		Queries:         1234567,
		Stolen:          4321,
		Diverted:        17,
		Reassigned:      256,
		StorageEpoch:    5,
		StorageReplicas: 2,
		Epochs: []metrics.EpochEvent{
			{Tier: "proc", Epoch: 8, Joined: 2, Reassigned: 120},
			{Tier: "proc", Epoch: 9, Left: 1, Reassigned: 136},
			{Tier: "storage", Epoch: 4, Joined: 1},
			{Tier: "storage", Epoch: 5, Failed: 1},
		},
		RoutingNanos: metrics.Summary{Count: 1234567, Mean: 800, P50: 700, P95: 1600, P99: 3100, Max: 91000},
		QueueDepth:   metrics.Summary{Count: 1234567, Mean: 2, P50: 1, P95: 7, P99: 15, Max: 63},
	}
	for i := 0; i < 7; i++ {
		cc := metrics.CacheCounters{
			Hits: 4200000, Misses: 170000, Inserts: 170000,
			Evictions: 55000, CurrentBytes: 4 << 30, CapacityBytes: 4 << 30,
		}
		snap.PerProc = append(snap.PerProc, metrics.ProcCounters{
			Proc: i, Status: "active", Addr: "10.0.0.71:7101",
			Assigned: 17636, Executed: 17640, Stolen: 40, Diverted: 2,
			QueueDepth: 3, Cache: cc,
		})
		snap.Cache.Add(cc)
	}
	for i := 0; i < 4; i++ {
		snap.PerStorage = append(snap.PerStorage, metrics.StorageCounters{
			Slot: i, Status: "active", Addr: "10.0.0.81:7001",
			Keys: 15485863, Bytes: 4 << 30, Gets: 88123456, Misses: 12345, Failovers: 17,
		})
	}
	statsResp := &Response{OK: true, Stats: &Stats{Role: "router", Requests: 999999, Snapshot: snap}}
	if n := respFrameSize(t, statsResp); n > 1024 {
		t.Errorf("7-proc + 4-storage stats response frame encodes to %d bytes, want <= 1024", n)
	}
}
