package embed

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/xrand"
)

func TestNelderMeadQuadratic(t *testing.T) {
	// f(x) = (x0-3)^2 + (x1+1)^2, minimum at (3, -1).
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)
	}
	x, v := NelderMead(f, []float64{0, 0}, NMOptions{MaxIter: 500})
	if math.Abs(x[0]-3) > 0.01 || math.Abs(x[1]+1) > 0.01 {
		t.Fatalf("minimum at %v, want (3,-1)", x)
	}
	if v > 1e-3 {
		t.Fatalf("value = %v", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, v := NelderMead(f, []float64{-1.2, 1}, NMOptions{MaxIter: 5000, Tol: 1e-12})
	if v > 1e-4 {
		t.Fatalf("Rosenbrock minimum not found: x=%v v=%v", x, v)
	}
}

func TestNelderMeadNeverWorsens(t *testing.T) {
	// Best-seen objective is monotone: final value <= initial value.
	f := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += math.Abs(v) + math.Sin(v)*0.5
		}
		return s
	}
	x0 := []float64{5, -3, 2, 8}
	_, v := NelderMead(f, x0, NMOptions{MaxIter: 50})
	if v > f(x0) {
		t.Fatalf("NelderMead worsened the objective: %v > %v", v, f(x0))
	}
}

func TestNelderMeadEmptyInput(t *testing.T) {
	called := false
	_, v := NelderMead(func(x []float64) float64 { called = true; return 7 }, nil, NMOptions{})
	if !called || v != 7 {
		t.Fatalf("empty-input handling broken: called=%v v=%v", called, v)
	}
}

func TestNelderMeadOneDim(t *testing.T) {
	f := func(x []float64) float64 { return (x[0] - 2) * (x[0] - 2) }
	x, _ := NelderMead(f, []float64{10}, NMOptions{MaxIter: 300})
	if math.Abs(x[0]-2) > 0.05 {
		t.Fatalf("1-D minimum at %v, want 2", x[0])
	}
}

func buildEmbedding(t *testing.T, g *graph.Graph, nLandmarks, dims int) (*landmark.Index, *Embedding) {
	t.Helper()
	ls := landmark.Select(g, nLandmarks, 1)
	if len(ls) < 2 {
		t.Fatalf("only %d landmarks selected", len(ls))
	}
	idx := landmark.BuildIndex(g, ls, 0)
	e, err := Build(g, idx, Options{Dimensions: dims, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return idx, e
}

func TestBuildGridEmbedding(t *testing.T) {
	g := gen.Grid(12, 12)
	idx, e := buildEmbedding(t, g, 12, 4)
	if e.NumNodes() != 144 || e.D != 4 {
		t.Fatalf("embedding shape: n=%d D=%d", e.NumNodes(), e.D)
	}
	// Landmarks sit exactly at their anchors: pairwise landmark euclidean
	// distances approximate hop distances within reason.
	var errSum float64
	var terms int
	for i := 0; i < idx.NumLandmarks(); i++ {
		for j := i + 1; j < idx.NumLandmarks(); j++ {
			d := idx.LandmarkDist(i, j)
			if d == landmark.Inf || d == 0 {
				continue
			}
			eu := Euclidean(e.Coords(idx.Landmarks[i]), e.Coords(idx.Landmarks[j]))
			errSum += math.Abs(float64(d)-eu) / float64(d)
			terms++
		}
	}
	if terms == 0 {
		t.Fatal("no landmark pairs measured")
	}
	if avg := errSum / float64(terms); avg > 0.5 {
		t.Fatalf("landmark pairwise relative error = %v, want < 0.5", avg)
	}
}

func TestEmbeddingPreservesNearVsFar(t *testing.T) {
	// The routing property that matters: nearby nodes embed closer than
	// far-apart nodes, on average.
	g := gen.Grid(12, 12)
	_, e := buildEmbedding(t, g, 12, 4)
	rng := xrand.New(9)
	var nearSum, farSum float64
	var n int
	for trial := 0; trial < 60; trial++ {
		u := graph.NodeID(rng.Intn(144))
		near := g.KHopNeighborhood(u, 1, graph.Both)
		if len(near) == 0 {
			continue
		}
		v := near[rng.Intn(len(near))]
		// A node ~10+ hops away.
		far := graph.NodeID((int(u) + 72 + rng.Intn(10)) % 144)
		if truth := g.HopDistance(u, far, -1, graph.Both); truth < 6 {
			continue
		}
		nearSum += Euclidean(e.Coords(u), e.Coords(v))
		farSum += Euclidean(e.Coords(u), e.Coords(far))
		n++
	}
	if n < 10 {
		t.Fatalf("too few samples: %d", n)
	}
	if nearSum/float64(n) >= farSum/float64(n) {
		t.Fatalf("embedding does not separate near (%v) from far (%v)", nearSum/float64(n), farSum/float64(n))
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(150, 600, 3)
	ls := landmark.Select(g, 8, 1)
	idx := landmark.BuildIndex(g, ls, 0)
	a, err := Build(g, idx, Options{Dimensions: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, idx, Options{Dimensions: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.NodeID(0); int(u) < a.NumNodes(); u++ {
		ca, cb := a.Coords(u), b.Coords(u)
		for j := range ca {
			if ca[j] != cb[j] {
				t.Fatalf("node %d dim %d: %v != %v (non-deterministic build)", u, j, ca[j], cb[j])
			}
		}
	}
}

func TestBuildNeedsTwoLandmarks(t *testing.T) {
	g := gen.Ring(10)
	idx := landmark.BuildIndex(g, []graph.NodeID{0}, 0)
	if _, err := Build(g, idx, Options{Dimensions: 3}); err == nil {
		t.Fatal("Build accepted a single landmark")
	}
}

func TestMoreDimensionsNoWorse(t *testing.T) {
	// Figure 12(a): relative error shrinks (or at least does not blow up)
	// with added dimensions.
	g := gen.BarabasiAlbert(400, 4, 5)
	ls := landmark.Select(g, 10, 1)
	idx := landmark.BuildIndex(g, ls, 0)
	e2, err := Build(g, idx, Options{Dimensions: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e10, err := Build(g, idx, Options{Dimensions: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2 := MeasureRelativeError(g, e2, 150, 2, 99)
	r10 := MeasureRelativeError(g, e10, 150, 2, 99)
	if r10 > r2*1.25 {
		t.Fatalf("10-D error %v much worse than 2-D error %v", r10, r2)
	}
}

func TestMeasureLandmarkFitImprovesWithDimensions(t *testing.T) {
	// Figure 12(a)'s mechanism: the Eq 4 objective fits better in higher
	// dimensions.
	g := gen.LocalWeb(1500, 8, 80, 0.01, 3)
	ls := landmark.Select(g, 10, 1)
	idx := landmark.BuildIndex(g, ls, 0)
	fit := func(d int) float64 {
		e, err := Build(g, idx, Options{Dimensions: d, Seed: 1, NM: NMOptions{MaxIter: 60}})
		if err != nil {
			t.Fatal(err)
		}
		return MeasureLandmarkFit(idx, e, 200, 5)
	}
	f2, f10 := fit(2), fit(10)
	if f10 >= f2 {
		t.Fatalf("10-D fit error %v not better than 2-D %v", f10, f2)
	}
	if f2 <= 0 || f10 <= 0 {
		t.Fatalf("fit errors degenerate: %v, %v", f2, f10)
	}
}

func TestMeasureLandmarkFitEmpty(t *testing.T) {
	e := &Embedding{D: 3}
	idx := landmark.BuildIndex(gen.Ring(4), nil, 1)
	if got := MeasureLandmarkFit(idx, e, 10, 1); got != 0 {
		t.Fatalf("fit on empty embedding = %v", got)
	}
}

func TestMeasureRelativeErrorDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(100, 500, 2)
	_, e := buildEmbedding(t, g, 6, 3)
	a := MeasureRelativeError(g, e, 50, 2, 4)
	b := MeasureRelativeError(g, e, 50, 2, 4)
	if a != b {
		t.Fatalf("non-deterministic measurement: %v != %v", a, b)
	}
}

func TestMeasureRelativeErrorEmptyGraph(t *testing.T) {
	e := &Embedding{D: 3}
	if got := MeasureRelativeError(graph.New(), e, 10, 2, 1); got != 0 {
		t.Fatalf("error on empty graph = %v", got)
	}
}

func TestIncorporateNode(t *testing.T) {
	g := gen.Grid(8, 8)
	idx, e := buildEmbedding(t, g, 8, 4)
	// New node attached to node 0 and node 1.
	u := g.AddNode("")
	g.AddEdgeFast(0, u)
	g.AddEdgeFast(u, 1)
	idx.IncorporateNode(g, u)
	e.IncorporateNode(idx, u, Options{Dimensions: 4, Seed: 42})
	cu := e.Coords(u)
	if cu == nil {
		t.Fatal("new node has no coordinates")
	}
	// It should land near node 0's coordinates (1 hop) and far from the
	// opposite corner (~14 hops).
	near := Euclidean(cu, e.Coords(0))
	far := Euclidean(cu, e.Coords(63))
	if near >= far {
		t.Fatalf("incorporated node misplaced: near=%v far=%v", near, far)
	}
}

func TestCoordsOutOfRange(t *testing.T) {
	e := &Embedding{D: 3}
	if e.Coords(5) != nil {
		t.Fatal("Coords out of range should be nil")
	}
	if e.NumNodes() != 0 {
		t.Fatalf("NumNodes = %d", e.NumNodes())
	}
}

func TestStorageBytes(t *testing.T) {
	g := gen.Ring(50)
	_, e := buildEmbedding(t, g, 4, 5)
	if got := e.StorageBytes(); got != int64(50*5*4) {
		t.Fatalf("StorageBytes = %d, want 1000", got)
	}
}

func TestEuclidean(t *testing.T) {
	a := []float32{0, 3}
	b := []float32{4, 0}
	if d := Euclidean(a, b); math.Abs(d-5) > 1e-9 {
		t.Fatalf("Euclidean = %v, want 5", d)
	}
	if d := Euclidean(a, a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func BenchmarkPlaceNode(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 6, 1)
	ls := landmark.Select(g, 16, 2)
	idx := landmark.BuildIndex(g, ls, 0)
	e, err := Build(g, idx, Options{Dimensions: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.IncorporateNode(idx, graph.NodeID(i%2000), Options{Dimensions: 10, Seed: 1})
	}
}
