package embed

// WithSleepForTest exposes the Service backoff-sleeper override to the
// external test package, so retry tests count delays without waiting.
var WithSleepForTest = withSleep
