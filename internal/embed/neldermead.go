// Package embed implements the paper's second smart routing substrate
// (Section 3.4.2): embedding the graph into a low-dimensional Euclidean
// space so that hop-count distances are approximately preserved, using the
// Simplex Downhill (Nelder–Mead) algorithm — the optimiser the paper
// applies both to place the landmarks and to place every remaining node.
package embed

import "repro/internal/xrand"

// NMOptions tunes the Nelder–Mead search.
type NMOptions struct {
	// MaxIter bounds the number of simplex iterations (default 200).
	MaxIter int
	// Tol stops the search when the absolute spread between the best and
	// worst simplex vertex values falls below it (default 1e-6).
	Tol float64
	// Step is the initial simplex edge length (default 1.0).
	Step float64
}

func (o NMOptions) withDefaults() NMOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Step == 0 {
		o.Step = 1.0
	}
	return o
}

// NelderMead minimises f starting from x0, returning the best point found
// and its value. The classic parameters are used: reflection 1, expansion
// 2, contraction 0.5, shrink 0.5. f must not retain its argument.
func NelderMead(f func([]float64) float64, x0 []float64, opts NMOptions) ([]float64, float64) {
	opts = opts.withDefaults()
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}

	// Initial simplex: x0 plus a step along each axis.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		p := make([]float64, n)
		copy(p, x0)
		if i > 0 {
			p[i-1] += opts.Step
		}
		pts[i] = p
		vals[i] = f(p)
	}

	centroid := make([]float64, n)
	trial := make([]float64, n)
	trial2 := make([]float64, n)

	for iter := 0; iter < opts.MaxIter; iter++ {
		// Order: locate best, worst, second-worst.
		best, worst, second := 0, 0, 0
		for i := 1; i <= n; i++ {
			if vals[i] < vals[best] {
				best = i
			}
			if vals[i] > vals[worst] {
				worst = i
			}
		}
		for i := 0; i <= n; i++ {
			if i != worst && vals[i] > vals[second] {
				second = i
			}
		}
		if second == worst { // degenerate (n==0 handled above; n==1 duplicates)
			for i := 0; i <= n; i++ {
				if i != worst {
					second = i
					break
				}
			}
		}
		if vals[worst]-vals[best] < opts.Tol {
			break
		}

		// Centroid of all but the worst.
		for j := 0; j < n; j++ {
			centroid[j] = 0
		}
		for i := 0; i <= n; i++ {
			if i == worst {
				continue
			}
			for j := 0; j < n; j++ {
				centroid[j] += pts[i][j]
			}
		}
		for j := 0; j < n; j++ {
			centroid[j] /= float64(n)
		}

		// Reflection.
		for j := 0; j < n; j++ {
			trial[j] = centroid[j] + (centroid[j] - pts[worst][j])
		}
		fr := f(trial)
		switch {
		case fr < vals[best]:
			// Expansion.
			for j := 0; j < n; j++ {
				trial2[j] = centroid[j] + 2*(centroid[j]-pts[worst][j])
			}
			fe := f(trial2)
			if fe < fr {
				copy(pts[worst], trial2)
				vals[worst] = fe
			} else {
				copy(pts[worst], trial)
				vals[worst] = fr
			}
		case fr < vals[second]:
			copy(pts[worst], trial)
			vals[worst] = fr
		default:
			// Contraction (outside if the reflection improved on the worst,
			// inside otherwise).
			if fr < vals[worst] {
				for j := 0; j < n; j++ {
					trial2[j] = centroid[j] + 0.5*(trial[j]-centroid[j])
				}
			} else {
				for j := 0; j < n; j++ {
					trial2[j] = centroid[j] + 0.5*(pts[worst][j]-centroid[j])
				}
			}
			fc := f(trial2)
			if fc < vals[worst] && fc <= fr {
				copy(pts[worst], trial2)
				vals[worst] = fc
			} else {
				// Shrink towards the best vertex.
				for i := 0; i <= n; i++ {
					if i == best {
						continue
					}
					for j := 0; j < n; j++ {
						pts[i][j] = pts[best][j] + 0.5*(pts[i][j]-pts[best][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
	}

	best := 0
	for i := 1; i <= n; i++ {
		if vals[i] < vals[best] {
			best = i
		}
	}
	out := make([]float64, n)
	copy(out, pts[best])
	return out, vals[best]
}

// randomPoint fills a D-dimensional point with N(0, scale) coordinates.
func randomPoint(rng *xrand.Source, d int, scale float64) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = rng.NormFloat64() * scale
	}
	return p
}
