package embed

import (
	"context"

	"repro/internal/graph"
	"repro/internal/landmark"
)

// BuildOption is a functional option over the embedding pipeline's
// Options; zero-value fields keep the paper's defaults exactly as the
// plain Options struct does.
type BuildOption func(*Options)

// WithDimensions sets the Euclidean dimensionality (paper default: 10).
func WithDimensions(d int) BuildOption { return func(o *Options) { o.Dimensions = d } }

// WithSeed drives every stochastic placement choice.
func WithSeed(s int64) BuildOption { return func(o *Options) { o.Seed = s } }

// WithWorkers bounds per-node placement parallelism (0 = GOMAXPROCS).
func WithWorkers(n int) BuildOption { return func(o *Options) { o.Workers = n } }

// WithNM tunes the per-point Simplex Downhill searches.
func WithNM(nm NMOptions) BuildOption { return func(o *Options) { o.NM = nm } }

// NewOptions assembles an Options from functional options.
func NewOptions(opts ...BuildOption) Options {
	var o Options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// Learned is the built-in provider: the paper's learned-means scheme
// (landmark anchors via incremental pairwise relative-error minimisation,
// then per-node Simplex Downhill placement — Section 3.4.2), computed
// once at construction. Its output is bit-identical to calling Build
// directly with the same graph, index and options, which the golden test
// pins.
type Learned struct {
	e *Embedding
}

// NewLearned builds the learned embedding over g (hop distances supplied
// by idx) and wraps it as a provider.
func NewLearned(g *graph.Graph, idx *landmark.Index, opts ...BuildOption) (*Learned, error) {
	e, err := Build(g, idx, NewOptions(opts...))
	if err != nil {
		return nil, err
	}
	return &Learned{e: e}, nil
}

// Name implements Embedder.
func (l *Learned) Name() string { return "learned" }

// Dimensions implements Embedder.
func (l *Learned) Dimensions() int { return l.e.D }

// Embed implements Embedder, serving rows from the materialised build.
func (l *Learned) Embed(ctx context.Context, nodes []graph.NodeID) ([][]float32, error) {
	return rowsFromEmbedding(ctx, l.e, nodes)
}

// Snapshot implements Snapshotter: the learned scheme is materialised by
// construction, so Materialize is free.
func (l *Learned) Snapshot() *Embedding { return l.e }
