package embed

import (
	"runtime"
	"testing"
)

// TestOptionsWithDefaults pins the withDefaults contract, in particular
// the NM.MaxIter mutation: the simplex budget is scaled by the search
// dimensionality UNCONDITIONALLY — an explicit MaxIter is a base budget,
// not a cap, and gets the same +12·D top-up the default does. Routing
// quality silently regresses if this drifts, so it is pinned here.
func TestOptionsWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		want Options
	}{
		{
			name: "zero value takes paper defaults",
			in:   Options{},
			want: Options{Dimensions: 10, Workers: runtime.GOMAXPROCS(0),
				NM: NMOptions{MaxIter: 100 + 12*10}},
		},
		{
			name: "explicit MaxIter still gains the dimensional top-up",
			in:   Options{Dimensions: 4, NM: NMOptions{MaxIter: 60}},
			want: Options{Dimensions: 4, Workers: runtime.GOMAXPROCS(0),
				NM: NMOptions{MaxIter: 60 + 12*4}},
		},
		{
			name: "negative knobs normalise like zero",
			in:   Options{Dimensions: -3, Workers: -1, NM: NMOptions{MaxIter: -5}},
			want: Options{Dimensions: 10, Workers: runtime.GOMAXPROCS(0),
				NM: NMOptions{MaxIter: 100 + 12*10}},
		},
		{
			name: "seed and NM tolerances pass through untouched",
			in:   Options{Dimensions: 2, Seed: 99, Workers: 3, NM: NMOptions{MaxIter: 10, Tol: 0.5, Step: 2}},
			want: Options{Dimensions: 2, Seed: 99, Workers: 3,
				NM: NMOptions{MaxIter: 10 + 12*2, Tol: 0.5, Step: 2}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.withDefaults(); got != tc.want {
				t.Fatalf("withDefaults(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

// TestNewOptionsFunctional pins the functional-option constructor against
// the plain struct: both spellings produce the identical Options.
func TestNewOptionsFunctional(t *testing.T) {
	got := NewOptions(WithDimensions(6), WithSeed(42), WithWorkers(2),
		WithNM(NMOptions{MaxIter: 80}))
	want := Options{Dimensions: 6, Seed: 42, Workers: 2, NM: NMOptions{MaxIter: 80}}
	if got != want {
		t.Fatalf("NewOptions = %+v, want %+v", got, want)
	}
}
