package embed

import (
	"context"
	"fmt"
	"time"

	"repro/internal/graph"
)

// EmbedFunc is the call a Service provider makes per batch — in
// production an RPC to an external embedding service, in tests a stub.
type EmbedFunc func(ctx context.Context, nodes []graph.NodeID) ([][]float32, error)

// Service adapts an external embedding service to the Embedder interface:
// ctx-aware, with bounded retries and exponential backoff between
// attempts. It is the in-process stand-in the degraded-provider tests
// drive — a Service whose backend keeps failing reports ErrUnavailable,
// which systems surface as a typed query error instead of dying.
type Service struct {
	name    string
	dims    int
	fn      EmbedFunc
	retries int
	backoff time.Duration
	sleep   func(ctx context.Context, d time.Duration) error
}

// ServiceOption configures a Service provider.
type ServiceOption func(*Service)

// WithRetries bounds how many times a failed batch is retried (default 2;
// 0 disables retrying).
func WithRetries(n int) ServiceOption { return func(s *Service) { s.retries = n } }

// WithBackoff sets the first retry delay; each further retry doubles it
// (default 10ms).
func WithBackoff(d time.Duration) ServiceOption { return func(s *Service) { s.backoff = d } }

// withSleep replaces the backoff sleeper (tests count delays without
// waiting them out).
func withSleep(f func(ctx context.Context, d time.Duration) error) ServiceOption {
	return func(s *Service) { s.sleep = f }
}

// NewService wraps fn as a provider named name serving dims-wide rows.
func NewService(name string, dims int, fn EmbedFunc, opts ...ServiceOption) *Service {
	s := &Service{name: name, dims: dims, fn: fn, retries: 2, backoff: 10 * time.Millisecond}
	s.sleep = func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements Embedder.
func (s *Service) Name() string { return s.name }

// Dimensions implements Embedder.
func (s *Service) Dimensions() int { return s.dims }

// Embed implements Embedder: it calls the backend, retrying transient
// failures with exponential backoff. Context cancellation aborts
// immediately (no retry); an exhausted retry budget wraps ErrUnavailable
// so callers can errors.Is the degraded state.
func (s *Service) Embed(ctx context.Context, nodes []graph.NodeID) ([][]float32, error) {
	var lastErr error
	delay := s.backoff
	for attempt := 0; attempt <= s.retries; attempt++ {
		if attempt > 0 {
			if err := s.sleep(ctx, delay); err != nil {
				return nil, err
			}
			delay *= 2
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rows, err := s.fn(ctx, nodes)
		if err == nil {
			if len(rows) != len(nodes) {
				return nil, fmt.Errorf("embed: service %q returned %d rows for %d nodes", s.name, len(rows), len(nodes))
			}
			for _, row := range rows {
				if row != nil && len(row) != s.dims {
					return nil, fmt.Errorf("embed: service %q row has %d dims, want %d", s.name, len(row), s.dims)
				}
			}
			return rows, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
	}
	return nil, fmt.Errorf("embed: service %q failed after %d attempts: %v: %w",
		s.name, s.retries+1, lastErr, ErrUnavailable)
}
