package embed

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/graph"
)

// ErrUnavailable marks a provider that cannot serve coordinates right now:
// a degraded external service, an exhausted retry budget, a missing
// artifact. Systems built over a failing provider degrade instead of
// dying — routing falls back and KNearest queries surface the condition
// as a typed query error.
var ErrUnavailable = errors.New("embed: provider unavailable")

// Embedder is the provider interface every embedding source implements:
// the built-in learned-means scheme, a precomputed file, an external
// service — or anything a downstream user registers. Embed is batched:
// one call returns one coordinate row per requested node, positionally
// aligned with nodes.
//
// Contract (pinned by the embedtest conformance suite):
//   - Every non-nil row has exactly Dimensions() entries.
//   - A node the provider has no coordinates for gets a nil row, not an
//     error — partial coverage is normal (file providers cover only what
//     was written; mutations add nodes the artifact predates).
//   - Deterministic: the same provider instance returns identical rows
//     for identical nodes, and batch calls agree with sequential
//     one-node calls.
//   - Context-aware: a cancelled ctx aborts with ctx.Err(); a provider
//     that cannot answer fails with an error wrapping ErrUnavailable.
type Embedder interface {
	// Name identifies the provider ("learned", "file", "service", ...).
	Name() string
	// Dimensions is the width of every coordinate row.
	Dimensions() int
	// Embed returns nodes' coordinate rows, positionally aligned.
	Embed(ctx context.Context, nodes []graph.NodeID) ([][]float32, error)
}

// Snapshotter is an optional provider fast path: providers that already
// hold a fully materialised Embedding expose it directly, so Materialize
// skips the batched walk (and needs no graph).
type Snapshotter interface {
	Snapshot() *Embedding
}

// materializeBatch is how many nodes Materialize requests per Embed call.
const materializeBatch = 1024

// Materialize evaluates p over every node of g and returns the dense
// router-side Embedding the routing strategies and the KNearest re-rank
// consume. Nodes the provider does not cover stay unembedded (NaN rows).
// Providers implementing Snapshotter short-circuit; g may then be nil.
func Materialize(ctx context.Context, p Embedder, g *graph.Graph) (*Embedding, error) {
	if s, ok := p.(Snapshotter); ok {
		if e := s.Snapshot(); e != nil {
			return e, nil
		}
	}
	if p.Dimensions() <= 0 {
		return nil, fmt.Errorf("embed: provider %q reports %d dimensions", p.Name(), p.Dimensions())
	}
	if g == nil {
		return nil, fmt.Errorf("embed: materializing provider %q needs a graph", p.Name())
	}
	e := &Embedding{D: p.Dimensions()}
	nodes := g.Nodes()
	for lo := 0; lo < len(nodes); lo += materializeBatch {
		hi := min(lo+materializeBatch, len(nodes))
		rows, err := p.Embed(ctx, nodes[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("embed: materialize %q: %w", p.Name(), err)
		}
		if len(rows) != hi-lo {
			return nil, fmt.Errorf("embed: provider %q returned %d rows for %d nodes", p.Name(), len(rows), hi-lo)
		}
		for i, row := range rows {
			if row == nil {
				continue
			}
			if len(row) != e.D {
				return nil, fmt.Errorf("embed: provider %q row has %d dims, want %d", p.Name(), len(row), e.D)
			}
			e.setRow(nodes[lo+i], row)
		}
	}
	return e, nil
}

// rowsFromEmbedding serves an Embed call straight out of a materialised
// Embedding — the shared read path of the learned and file providers.
func rowsFromEmbedding(ctx context.Context, e *Embedding, nodes []graph.NodeID) ([][]float32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows := make([][]float32, len(nodes))
	for i, u := range nodes {
		if row := e.Coords(u); row != nil && !nanRow(row) {
			rows[i] = row
		}
	}
	return rows, nil
}
