package embed_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/embed"
	"repro/internal/embed/embedtest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/landmark"
)

// testIndex builds the shared small graph + landmark index the provider
// tests run over.
func testIndex(t testing.TB) (*graph.Graph, *landmark.Index) {
	t.Helper()
	g := gen.ErdosRenyi(120, 480, 3)
	ls := landmark.Select(g, 8, 1)
	if len(ls) < 2 {
		t.Fatalf("only %d landmarks selected", len(ls))
	}
	return g, landmark.BuildIndex(g, ls, 0)
}

// TestLearnedProviderGolden is the acceptance keystone: the default
// (learned) provider's output is bit-identical to calling Build directly —
// refactoring the scheme behind the provider interface changed nothing.
func TestLearnedProviderGolden(t *testing.T) {
	g, idx := testIndex(t)
	opts := embed.Options{Dimensions: 5, Seed: 7}
	want, err := embed.Build(g, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := embed.NewLearned(g, idx, embed.WithDimensions(5), embed.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := embed.Materialize(context.Background(), p, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.D != want.D || got.NumNodes() != want.NumNodes() {
		t.Fatalf("shape: got D=%d n=%d, want D=%d n=%d", got.D, got.NumNodes(), want.D, want.NumNodes())
	}
	for u := graph.NodeID(0); int(u) < want.NumNodes(); u++ {
		cw, cg := want.Coords(u), got.Coords(u)
		for j := range cw {
			wb, gb := math.Float32bits(cw[j]), math.Float32bits(cg[j])
			if wb != gb && !(math.IsNaN(float64(cw[j])) && math.IsNaN(float64(cg[j]))) {
				t.Fatalf("node %d dim %d: provider %v != Build %v (not bit-identical)", u, j, cg[j], cw[j])
			}
		}
	}
}

// TestProviderConformance runs the embedtest suite over all three
// built-in providers — the same harness downstream providers run.
func TestProviderConformance(t *testing.T) {
	g, idx := testIndex(t)
	nodes := []graph.NodeID{0, 3, 17, 42, 77, 119, 5000} // 5000: beyond the graph, exercises nil rows
	base, err := embed.Build(g, idx, embed.Options{Dimensions: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "emb.bin")
	if err := embed.WriteEmbeddingFile(path, base); err != nil {
		t.Fatal(err)
	}

	targets := map[string]embedtest.Target{
		"learned": {
			Nodes: nodes,
			New: func(t *testing.T) embed.Embedder {
				p, err := embed.NewLearned(g, idx, embed.WithDimensions(4), embed.WithSeed(11))
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
		"file": {
			Nodes: nodes,
			New: func(t *testing.T) embed.Embedder {
				p, err := embed.OpenFileProvider(path)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
		"service": {
			Nodes: nodes,
			New: func(t *testing.T) embed.Embedder {
				return embed.NewService("svc", base.D, func(ctx context.Context, ns []graph.NodeID) ([][]float32, error) {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					rows := make([][]float32, len(ns))
					for i, u := range ns {
						if c := base.Coords(u); c != nil && !math.IsNaN(float64(c[0])) {
							rows[i] = c
						}
					}
					return rows, nil
				})
			},
		},
	}
	for name, tgt := range targets {
		t.Run(name, func(t *testing.T) { embedtest.Run(t, tgt) })
	}
}

// TestFileCodecRoundTrip: encode → decode is the identity on embedded
// rows, and the encoding is canonical (byte-identical across encodes).
func TestFileCodecRoundTrip(t *testing.T) {
	g, idx := testIndex(t)
	e, err := embed.Build(g, idx, embed.Options{Dimensions: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	blob := embed.EncodeEmbedding(e)
	if blob2 := embed.EncodeEmbedding(e); string(blob) != string(blob2) {
		t.Fatal("encoding is not canonical")
	}
	got, err := embed.DecodeEmbedding(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.D != e.D || got.NumNodes() != e.NumNodes() {
		t.Fatalf("shape: got D=%d n=%d, want D=%d n=%d", got.D, got.NumNodes(), e.D, e.NumNodes())
	}
	for u := graph.NodeID(0); int(u) < e.NumNodes(); u++ {
		a, b := e.Coords(u), got.Coords(u)
		for j := range a {
			if math.Float32bits(a[j]) != math.Float32bits(b[j]) {
				t.Fatalf("node %d dim %d: %v != %v", u, j, b[j], a[j])
			}
		}
	}
}

// TestFileCodecTruncation truncates a valid artifact at every byte
// boundary: every strict prefix must fail to decode (the trailing
// checksum guarantees truncation is never silent), and none may panic.
func TestFileCodecTruncation(t *testing.T) {
	g, idx := testIndex(t)
	e, err := embed.Build(g, idx, embed.Options{Dimensions: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	blob := embed.EncodeEmbedding(e)
	for i := 0; i < len(blob); i++ {
		if _, err := embed.DecodeEmbedding(blob[:i]); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", i, len(blob))
		}
	}
}

// TestFileCodecCorruption flips each byte of the header and checksum
// regions: decode must fail (magic, version, dims, count and the CRC all
// guard their bytes).
func TestFileCodecCorruption(t *testing.T) {
	g, idx := testIndex(t)
	e, err := embed.Build(g, idx, embed.Options{Dimensions: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	blob := embed.EncodeEmbedding(e)
	for i := 0; i < len(blob); i++ {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0xff
		if _, err := embed.DecodeEmbedding(bad); err == nil {
			t.Fatalf("corruption at byte %d decoded cleanly", i)
		}
	}
}

// FuzzFileDecode throws arbitrary bytes at the file decoder: never panic,
// and anything that decodes must re-encode to a blob that decodes to the
// same embedding.
func FuzzFileDecode(f *testing.F) {
	g, idx := testIndex(f)
	e, err := embed.Build(g, idx, embed.Options{Dimensions: 2, Seed: 5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(embed.EncodeEmbedding(e))
	f.Add([]byte("GEMB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := embed.DecodeEmbedding(data)
		if err != nil {
			return
		}
		re := embed.EncodeEmbedding(got)
		again, err := embed.DecodeEmbedding(re)
		if err != nil {
			t.Fatalf("re-encoded blob does not decode: %v", err)
		}
		if again.D != got.D || again.NumNodes() != got.NumNodes() {
			t.Fatalf("re-encode changed shape: D %d→%d n %d→%d", got.D, again.D, got.NumNodes(), again.NumNodes())
		}
	})
}

// TestServiceRetriesThenSucceeds: transient failures are retried with
// doubling backoff, and the successful attempt's rows come through.
func TestServiceRetriesThenSucceeds(t *testing.T) {
	calls, sleeps := 0, []time.Duration(nil)
	p := embed.NewService("flaky", 2, func(ctx context.Context, ns []graph.NodeID) ([][]float32, error) {
		calls++
		if calls < 3 {
			return nil, fmt.Errorf("transient %d", calls)
		}
		rows := make([][]float32, len(ns))
		for i := range rows {
			rows[i] = []float32{1, 2}
		}
		return rows, nil
	}, embed.WithRetries(3), embed.WithBackoff(time.Millisecond),
		embed.WithSleepForTest(func(ctx context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return nil
		}))
	rows, err := p.Embed(context.Background(), []graph.NodeID{1, 2})
	if err != nil || len(rows) != 2 || rows[0][0] != 1 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	if calls != 3 {
		t.Fatalf("backend called %d times, want 3", calls)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Fatalf("backoff sleeps = %v, want %v", sleeps, want)
	}
}

// TestServiceExhaustionIsUnavailable: a backend that never recovers
// surfaces as ErrUnavailable after the retry budget.
func TestServiceExhaustionIsUnavailable(t *testing.T) {
	calls := 0
	p := embed.NewService("down", 2, func(ctx context.Context, ns []graph.NodeID) ([][]float32, error) {
		calls++
		return nil, errors.New("backend down")
	}, embed.WithRetries(2), embed.WithSleepForTest(func(context.Context, time.Duration) error { return nil }))
	_, err := p.Embed(context.Background(), []graph.NodeID{1})
	if !errors.Is(err, embed.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if calls != 3 {
		t.Fatalf("backend called %d times, want 3 (1 + 2 retries)", calls)
	}
}

// TestServiceCancellationAborts: ctx cancellation wins over the retry
// loop — no further attempts, ctx.Err() returned.
func TestServiceCancellationAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := embed.NewService("slow", 2, func(ctx context.Context, ns []graph.NodeID) ([][]float32, error) {
		calls++
		cancel() // backend "hangs"; caller gives up
		return nil, errors.New("timeout")
	}, embed.WithRetries(5), embed.WithSleepForTest(func(context.Context, time.Duration) error { return nil }))
	_, err := p.Embed(ctx, []graph.NodeID{1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("backend called %d times after cancellation, want 1", calls)
	}
}

// TestServiceRejectsMisshapenRows: a backend answering with the wrong
// row count or width is an error, not silent corruption.
func TestServiceRejectsMisshapenRows(t *testing.T) {
	short := embed.NewService("short", 2, func(ctx context.Context, ns []graph.NodeID) ([][]float32, error) {
		return make([][]float32, 1), nil
	})
	if _, err := short.Embed(context.Background(), []graph.NodeID{1, 2}); err == nil {
		t.Fatal("short row count accepted")
	}
	wide := embed.NewService("wide", 2, func(ctx context.Context, ns []graph.NodeID) ([][]float32, error) {
		rows := make([][]float32, len(ns))
		for i := range rows {
			rows[i] = []float32{1, 2, 3}
		}
		return rows, nil
	})
	if _, err := wide.Embed(context.Background(), []graph.NodeID{1}); err == nil {
		t.Fatal("over-wide row accepted")
	}
}

// TestMaterializeFromService walks the batched (non-Snapshotter) path and
// must agree with the backing embedding row for row.
func TestMaterializeFromService(t *testing.T) {
	g, idx := testIndex(t)
	base, err := embed.Build(g, idx, embed.Options{Dimensions: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p := embed.NewService("svc", 3, func(ctx context.Context, ns []graph.NodeID) ([][]float32, error) {
		rows := make([][]float32, len(ns))
		for i, u := range ns {
			if c := base.Coords(u); c != nil && !math.IsNaN(float64(c[0])) {
				rows[i] = c
			}
		}
		return rows, nil
	})
	got, err := embed.Materialize(context.Background(), p, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range g.Nodes() {
		a, b := base.Coords(u), got.Coords(u)
		for j := range a {
			if math.Float32bits(a[j]) != math.Float32bits(b[j]) {
				t.Fatalf("node %d dim %d: %v != %v", u, j, b[j], a[j])
			}
		}
	}
	// A failing provider propagates its error (wrapping ErrUnavailable).
	down := embed.NewService("down", 3, func(context.Context, []graph.NodeID) ([][]float32, error) {
		return nil, errors.New("no backend")
	}, embed.WithRetries(0))
	if _, err := embed.Materialize(context.Background(), down, g); !errors.Is(err, embed.ErrUnavailable) {
		t.Fatalf("materialize over a dead provider: err = %v, want ErrUnavailable", err)
	}
}
