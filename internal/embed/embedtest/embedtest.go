// Package embedtest is the provider conformance suite: one table-driven
// harness every Embedder — built-in or registered by a downstream user —
// must pass. It pins the interface contract the routing layer and the
// KNearest re-rank rely on: determinism under a fixed seed, batch ≡
// sequential equality, dimension agreement, and context cancellation.
//
// Use it from a provider's own tests:
//
//	func TestMyProviderConformance(t *testing.T) {
//		embedtest.Run(t, embedtest.Target{
//			Nodes: myNodes,
//			New:   func(t *testing.T) embed.Embedder { return newMyProvider(t) },
//		})
//	}
//
// New is called per subtest so each check starts from a fresh instance;
// determinism is asserted both within one instance and across instances
// (two providers constructed the same way must agree).
package embedtest

import (
	"context"
	"testing"

	"repro/internal/embed"
	"repro/internal/graph"
)

// Target describes one provider under conformance test.
type Target struct {
	// New constructs a fresh provider instance. Every construction must
	// be equivalent (same configuration, same seed).
	New func(t *testing.T) embed.Embedder
	// Nodes are ids to embed. At least one must be covered by the
	// provider (non-nil row); ids the provider does not cover are fine
	// and exercise the nil-row contract.
	Nodes []graph.NodeID
}

// Run executes the conformance suite against the target provider.
func Run(t *testing.T, tgt Target) {
	t.Helper()
	if len(tgt.Nodes) == 0 {
		t.Fatal("embedtest: Target.Nodes is empty")
	}

	t.Run("DimensionAgreement", func(t *testing.T) {
		p := tgt.New(t)
		d := p.Dimensions()
		if d <= 0 {
			t.Fatalf("%s: Dimensions() = %d, want > 0", p.Name(), d)
		}
		rows := mustEmbed(t, p, tgt.Nodes)
		covered := 0
		for i, row := range rows {
			if row == nil {
				continue
			}
			covered++
			if len(row) != d {
				t.Fatalf("%s: node %d row has %d dims, Dimensions() says %d",
					p.Name(), tgt.Nodes[i], len(row), d)
			}
		}
		if covered == 0 {
			t.Fatalf("%s: no node in the target set is covered", p.Name())
		}
	})

	t.Run("DeterministicUnderFixedSeed", func(t *testing.T) {
		p := tgt.New(t)
		a := mustEmbed(t, p, tgt.Nodes)
		b := mustEmbed(t, p, tgt.Nodes)
		assertRowsEqual(t, p.Name()+": same instance", a, b)
		// Across instances: a re-constructed provider must agree too.
		q := tgt.New(t)
		c := mustEmbed(t, q, tgt.Nodes)
		assertRowsEqual(t, p.Name()+": fresh instance", a, c)
	})

	t.Run("BatchEqualsSequential", func(t *testing.T) {
		p := tgt.New(t)
		batch := mustEmbed(t, p, tgt.Nodes)
		seq := make([][]float32, len(tgt.Nodes))
		for i, u := range tgt.Nodes {
			rows := mustEmbed(t, p, []graph.NodeID{u})
			if len(rows) != 1 {
				t.Fatalf("%s: 1-node Embed returned %d rows", p.Name(), len(rows))
			}
			seq[i] = rows[0]
		}
		assertRowsEqual(t, p.Name()+": batch vs sequential", batch, seq)
	})

	t.Run("PositionalAlignment", func(t *testing.T) {
		p := tgt.New(t)
		fwd := mustEmbed(t, p, tgt.Nodes)
		rev := make([]graph.NodeID, len(tgt.Nodes))
		for i, u := range tgt.Nodes {
			rev[len(rev)-1-i] = u
		}
		back := mustEmbed(t, p, rev)
		for i := range fwd {
			assertRowEqual(t, p.Name(), tgt.Nodes[i], fwd[i], back[len(back)-1-i])
		}
	})

	t.Run("ContextCancellation", func(t *testing.T) {
		p := tgt.New(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := p.Embed(ctx, tgt.Nodes); err == nil {
			t.Fatalf("%s: Embed with a cancelled ctx succeeded, want error", p.Name())
		}
	})

	t.Run("EmptyBatch", func(t *testing.T) {
		p := tgt.New(t)
		rows, err := p.Embed(context.Background(), nil)
		if err != nil {
			t.Fatalf("%s: empty batch: %v", p.Name(), err)
		}
		if len(rows) != 0 {
			t.Fatalf("%s: empty batch returned %d rows", p.Name(), len(rows))
		}
	})
}

func mustEmbed(t *testing.T, p embed.Embedder, nodes []graph.NodeID) [][]float32 {
	t.Helper()
	rows, err := p.Embed(context.Background(), nodes)
	if err != nil {
		t.Fatalf("%s: Embed: %v", p.Name(), err)
	}
	if len(rows) != len(nodes) {
		t.Fatalf("%s: Embed returned %d rows for %d nodes", p.Name(), len(rows), len(nodes))
	}
	return rows
}

func assertRowsEqual(t *testing.T, what string, a, b [][]float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d rows", what, len(a), len(b))
	}
	for i := range a {
		assertRowEqual(t, what, graph.NodeID(i), a[i], b[i])
	}
}

func assertRowEqual(t *testing.T, what string, u graph.NodeID, a, b []float32) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: node %d coverage disagrees (nil vs non-nil row)", what, u)
	}
	if len(a) != len(b) {
		t.Fatalf("%s: node %d row widths %d vs %d", what, u, len(a), len(b))
	}
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("%s: node %d dim %d: %v != %v (not bit-identical)", what, u, j, a[j], b[j])
		}
	}
}
