package embed

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/xrand"
)

// Options configures the embedding pipeline.
type Options struct {
	// Dimensions of the Euclidean space (paper default: 10).
	Dimensions int
	// Seed drives the random initial placements.
	Seed int64
	// Workers parallelises the per-node phase (0 = GOMAXPROCS); the paper
	// notes this step "is completely parallelizable per node".
	Workers int
	// NM tunes the per-point Simplex Downhill searches.
	NM NMOptions
}

func (o Options) withDefaults() Options {
	if o.Dimensions <= 0 {
		o.Dimensions = 10
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	// The simplex needs iterations proportional to the search dimension:
	// callers set a base budget and the optimiser scales it so higher-
	// dimensional embeddings do not underfit (they have D+1 vertices to
	// move, so a flat budget would make added dimensions look worse).
	if o.NM.MaxIter <= 0 {
		o.NM.MaxIter = 100
	}
	o.NM.MaxIter += 12 * o.Dimensions
	return o
}

// Embedding holds D coordinates per node id — O(n·D) router storage,
// Table 3's "embed" column.
type Embedding struct {
	D      int
	coords []float32 // flat, row-major [node][dim]
}

// NumNodes returns the node-id capacity of the embedding.
func (e *Embedding) NumNodes() int {
	if e.D == 0 {
		return 0
	}
	return len(e.coords) / e.D
}

// Coords returns node u's coordinate row (owned by the embedding; callers
// must not modify it). Nodes beyond the embedded range return nil.
func (e *Embedding) Coords(u graph.NodeID) []float32 {
	i := int(u) * e.D
	if i+e.D > len(e.coords) {
		return nil
	}
	return e.coords[i : i+e.D]
}

// setCoords copies p into node u's row, growing storage as needed.
func (e *Embedding) setCoords(u graph.NodeID, p []float64) {
	need := (int(u) + 1) * e.D
	for len(e.coords) < need {
		e.coords = append(e.coords, float32(math.NaN()))
	}
	row := e.coords[int(u)*e.D : need]
	for j := 0; j < e.D; j++ {
		row[j] = float32(p[j])
	}
}

// setRow is setCoords' float32 twin, used when materializing a provider.
// SetRow overwrites node u's coordinates with a provider-supplied row —
// the incremental-update path for externally sourced embeddings, where
// re-running the provider replaces the optimiser.
func (e *Embedding) SetRow(u graph.NodeID, row []float32) error {
	if len(row) != e.D {
		return fmt.Errorf("embed: row for node %d has %d dims, embedding has %d", u, len(row), e.D)
	}
	e.setRow(u, row)
	return nil
}

func (e *Embedding) setRow(u graph.NodeID, row []float32) {
	need := (int(u) + 1) * e.D
	for len(e.coords) < need {
		e.coords = append(e.coords, float32(math.NaN()))
	}
	copy(e.coords[int(u)*e.D:need], row)
}

// nanRow reports whether a coordinate row is the unembedded marker.
func nanRow(row []float32) bool { return len(row) > 0 && math.IsNaN(float64(row[0])) }

// StorageBytes reports the embedding's memory footprint (Table 3).
func (e *Embedding) StorageBytes() int64 { return int64(len(e.coords)) * 4 }

// Euclidean returns the L2 distance between two coordinate rows.
func Euclidean(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// relErr is Eq 4: |d − eu| / d for a known hop distance d > 0.
func relErr(d, eu float64) float64 { return math.Abs(d-eu) / d }

// Build embeds the graph: first the landmarks (pairwise relative error
// minimisation), then every other node against the landmark anchors. The
// landmark index supplies all required hop distances, so Build performs no
// additional BFS.
func Build(g *graph.Graph, idx *landmark.Index, opts Options) (*Embedding, error) {
	opts = opts.withDefaults()
	L := idx.NumLandmarks()
	if L < 2 {
		return nil, fmt.Errorf("embed: need at least 2 landmarks, have %d", L)
	}
	e := &Embedding{D: opts.Dimensions}
	rng := xrand.New(opts.Seed)

	anchors := embedLandmarks(idx, opts, rng)

	// Per-node placement, parallel with deterministic per-node seeds.
	n := idx.NumNodes()
	e.coords = make([]float32, n*e.D)
	for i := range e.coords {
		e.coords[i] = float32(math.NaN())
	}
	isLandmark := make(map[graph.NodeID]int, L)
	for i, l := range idx.Landmarks {
		isLandmark[l] = i
	}
	baseSeed := rng.Int63()

	var wg sync.WaitGroup
	ids := make(chan int)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range ids {
				node := graph.NodeID(u)
				var p []float64
				if li, ok := isLandmark[node]; ok {
					p = anchors[li]
				} else {
					wrng := xrand.New(baseSeed ^ int64(uint64(u)*0x9e3779b97f4a7c15))
					p = placeNode(idx, anchors, node, opts, wrng)
				}
				if p == nil {
					continue
				}
				row := e.coords[u*e.D : (u+1)*e.D]
				for j := 0; j < e.D; j++ {
					row[j] = float32(p[j])
				}
			}
		}()
	}
	for u := 0; u < n; u++ {
		if !g.Exists(graph.NodeID(u)) {
			continue
		}
		ids <- u
	}
	close(ids)
	wg.Wait()
	return e, nil
}

// embedLandmarks places the landmark anchors sequentially: the first at
// the origin, each next minimising the aggregate pairwise relative error
// against all previously placed landmarks (the incremental scheme Orion
// popularised for large graphs; jointly optimising all |L|·D coordinates
// with one simplex is intractable at |L| = 96).
func embedLandmarks(idx *landmark.Index, opts Options, rng *xrand.Source) [][]float64 {
	L := idx.NumLandmarks()
	anchors := make([][]float64, L)
	anchors[0] = make([]float64, opts.Dimensions)

	// Typical landmark spacing seeds the random inits.
	var meanD float64
	var cnt int
	for j := 1; j < L; j++ {
		if d := idx.LandmarkDist(0, j); d != landmark.Inf {
			meanD += float64(d)
			cnt++
		}
	}
	if cnt > 0 {
		meanD /= float64(cnt)
	} else {
		meanD = 1
	}

	for i := 1; i < L; i++ {
		placed := anchors[:i]
		obj := func(x []float64) float64 {
			var sum float64
			terms := 0
			for j, a := range placed {
				if a == nil {
					continue
				}
				d := idx.LandmarkDist(i, j)
				if d == landmark.Inf || d == 0 {
					continue
				}
				var eu float64
				for k := range x {
					diff := x[k] - a[k]
					eu += diff * diff
				}
				sum += relErr(float64(d), math.Sqrt(eu))
				terms++
			}
			if terms == 0 {
				return 0
			}
			return sum / float64(terms)
		}
		best, bestVal := []float64(nil), math.Inf(1)
		// A few random restarts dodge poor local minima cheaply.
		for r := 0; r < 3; r++ {
			x0 := randomPoint(rng, opts.Dimensions, meanD/2)
			x, v := NelderMead(obj, x0, opts.NM)
			if v < bestVal {
				best, bestVal = x, v
			}
		}
		anchors[i] = best
	}
	return anchors
}

// placeNode embeds one node against the anchors, minimising the aggregate
// relative error to every landmark that reaches it.
func placeNode(idx *landmark.Index, anchors [][]float64, u graph.NodeID, opts Options, rng *xrand.Source) []float64 {
	type term struct {
		anchor []float64
		d      float64
	}
	terms := make([]term, 0, len(anchors))
	var nearest []float64
	nearestD := math.Inf(1)
	for i, a := range anchors {
		if a == nil {
			continue
		}
		d := idx.Dist(i, u)
		if d == landmark.Inf {
			continue
		}
		if d == 0 {
			// u is (or coincides with) this landmark.
			out := make([]float64, len(a))
			copy(out, a)
			return out
		}
		terms = append(terms, term{anchor: a, d: float64(d)})
		if float64(d) < nearestD {
			nearestD = float64(d)
			nearest = a
		}
	}
	if len(terms) == 0 {
		// Unreachable from every landmark: random placement far out, so it
		// never looks artificially close to active regions.
		return randomPoint(rng, opts.Dimensions, 1000)
	}
	obj := func(x []float64) float64 {
		var sum float64
		for _, t := range terms {
			var eu float64
			for k := range x {
				diff := x[k] - t.anchor[k]
				eu += diff * diff
			}
			sum += relErr(t.d, math.Sqrt(eu))
		}
		return sum / float64(len(terms))
	}
	// Initialise near the closest landmark, jittered by its hop distance.
	x0 := make([]float64, opts.Dimensions)
	for k := range x0 {
		x0[k] = nearest[k] + rng.NormFloat64()*nearestD/2
	}
	x, _ := NelderMead(obj, x0, opts.NM)
	return x
}

// IncorporateNode places a new node (whose landmark distances must already
// be in idx via Index.IncorporateNode) without re-embedding anything else —
// the paper's update path for embed routing. The anchors are the already
// embedded landmark nodes' own coordinates.
func (e *Embedding) IncorporateNode(idx *landmark.Index, u graph.NodeID, opts Options) {
	opts = opts.withDefaults()
	opts.Dimensions = e.D
	anchors := make([][]float64, idx.NumLandmarks())
	for i := range anchors {
		row := e.Coords(idx.Landmarks[i])
		if row == nil {
			continue
		}
		a := make([]float64, len(row))
		for j, v := range row {
			a[j] = float64(v)
		}
		anchors[i] = a
	}
	rng := xrand.New(opts.Seed ^ int64(uint64(u)*0x9e3779b97f4a7c15))
	p := placeNode(idx, anchors, u, opts, rng)
	e.setCoords(u, p)
}

// MeasureLandmarkFit returns the mean relative error (Eq 4) between true
// node→landmark hop distances and their embedded Euclidean distances,
// over sampled nodes — the quantity the Simplex Downhill search actually
// minimises, and the paper's measure of how faithfully an embedding of a
// given dimensionality preserves distances (Figure 12a).
func MeasureLandmarkFit(idx *landmark.Index, e *Embedding, samples int, seed int64) float64 {
	rng := xrand.New(seed)
	n := e.NumNodes()
	if n == 0 || idx.NumLandmarks() == 0 {
		return 0
	}
	var sum float64
	var count int
	for t := 0; t < samples*4 && count < samples; t++ {
		u := graph.NodeID(rng.Intn(n))
		cu := e.Coords(u)
		if cu == nil || math.IsNaN(float64(cu[0])) {
			continue
		}
		for i, l := range idx.Landmarks {
			d := idx.Dist(i, u)
			if d == landmark.Inf || d == 0 {
				continue
			}
			cl := e.Coords(l)
			if cl == nil {
				continue
			}
			sum += relErr(float64(d), Euclidean(cu, cl))
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// MeasureRelativeError samples node pairs within maxHops of each other and
// returns the mean relative distance error (Eq 4) of the embedding — the
// quantity plotted in Figure 12(a). Pairs are drawn deterministically from
// seed; pairs whose true distance is 0 or unreachable are skipped.
func MeasureRelativeError(g *graph.Graph, e *Embedding, samples, maxHops int, seed int64) float64 {
	rng := xrand.New(seed)
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return 0
	}
	var sum float64
	var count int
	for t := 0; t < samples*4 && count < samples; t++ {
		u := nodes[rng.Intn(len(nodes))]
		near := g.BFSBounded(u, maxHops, graph.Both)
		delete(near, u)
		if len(near) == 0 {
			continue
		}
		// Sort the candidate ids so the pick is deterministic (map
		// iteration order is not).
		cands := make([]graph.NodeID, 0, len(near))
		for w := range near {
			cands = append(cands, w)
		}
		slices.Sort(cands)
		v := cands[rng.Intn(len(cands))]
		cu, cv := e.Coords(u), e.Coords(v)
		if cu == nil || cv == nil {
			continue
		}
		d := float64(near[v])
		sum += relErr(d, Euclidean(cu, cv))
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
