package embed

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repro/internal/graph"
)

// Precomputed-embedding file codec. A file is one versioned binary blob:
//
//	magic "GEMB" | version u8 | D uvarint | count uvarint |
//	count × (node uvarint | D × float32 LE) | crc32(IEEE) of all prior bytes
//
// Rows are sorted by node id (the encoder guarantees it, the decoder
// enforces it) so two files of the same embedding are byte-identical.
// The trailing checksum makes every truncation or corruption detectable:
// a prefix of a valid file is never itself a valid file.
const (
	fileMagic   = "GEMB"
	fileVersion = 1
	// maxFileDims bounds the decoded dimensionality; a corrupt header
	// cannot force a huge per-row allocation.
	maxFileDims = 1 << 12
)

// EncodeEmbedding serialises every embedded (non-NaN) row of e into the
// versioned file format.
func EncodeEmbedding(e *Embedding) []byte {
	buf := append([]byte(nil), fileMagic...)
	buf = append(buf, fileVersion)
	buf = binary.AppendUvarint(buf, uint64(e.D))
	var count uint64
	for u := 0; u < e.NumNodes(); u++ {
		if !nanRow(e.Coords(graph.NodeID(u))) {
			count++
		}
	}
	buf = binary.AppendUvarint(buf, count)
	for u := 0; u < e.NumNodes(); u++ {
		row := e.Coords(graph.NodeID(u))
		if nanRow(row) {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(u))
		for _, v := range row {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeEmbedding parses a file-format blob back into an Embedding. Every
// malformed input — bad magic, unknown version, truncation at any byte,
// out-of-order rows, checksum mismatch, trailing bytes — is an error,
// never a panic or a silent partial decode.
func DecodeEmbedding(data []byte) (*Embedding, error) {
	if len(data) < len(fileMagic)+1+4 {
		return nil, fmt.Errorf("embed: file too short (%d bytes)", len(data))
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("embed: bad file magic %q", data[:len(fileMagic)])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("embed: file checksum mismatch (%08x != %08x)", got, want)
	}
	if v := body[len(fileMagic)]; v != fileVersion {
		return nil, fmt.Errorf("embed: unsupported file version %d", v)
	}
	d := fileDec{buf: body[len(fileMagic)+1:]}
	dims := d.uvarint()
	if dims == 0 || dims > maxFileDims {
		return nil, fmt.Errorf("embed: file dimensionality %d out of range", dims)
	}
	count := d.uvarint()
	// Every row costs at least 1 + 4*dims bytes, so a corrupt count cannot
	// force a huge allocation.
	if count > uint64(len(d.buf))/(1+4*dims) {
		return nil, fmt.Errorf("embed: file row count %d exceeds payload", count)
	}
	e := &Embedding{D: int(dims)}
	row := make([]float32, dims)
	last := -1
	for i := uint64(0); i < count; i++ {
		u := d.uvarint()
		if u > math.MaxUint32 || int(u) <= last {
			d.err = true
			break
		}
		last = int(u)
		for j := range row {
			row[j] = d.f32()
		}
		if d.err {
			break
		}
		e.setRow(graph.NodeID(u), row)
	}
	if d.err {
		return nil, fmt.Errorf("embed: malformed embedding file")
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("embed: embedding file has %d trailing bytes", len(d.buf))
	}
	return e, nil
}

// fileDec is the bounds-checked reader for the file payload (the same
// idiom as mquery's wireDec): malformed input flips err and every later
// read returns zero.
type fileDec struct {
	buf []byte
	err bool
}

func (d *fileDec) uvarint() uint64 {
	if d.err {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = true
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *fileDec) f32() float32 {
	if d.err || len(d.buf) < 4 {
		d.err = true
		return 0
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(d.buf))
	d.buf = d.buf[4:]
	return v
}

// WriteEmbeddingFile writes e to path in the versioned file format — the
// producer half of `groutingd -embed-file` (grouting-gen and tests call
// it to precompute artifacts).
func WriteEmbeddingFile(path string, e *Embedding) error {
	return os.WriteFile(path, EncodeEmbedding(e), 0o644)
}

// FileProvider serves coordinates from a precomputed embedding artifact:
// the decoupled-artifact path (compute the embedding offline or on
// another machine, load it everywhere) and the way both transports share
// one identical embedding in the cross-transport tests.
type FileProvider struct {
	e *Embedding
}

// OpenFileProvider loads a versioned embedding file from path.
func OpenFileProvider(path string) (*FileProvider, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("embed: %w", err)
	}
	e, err := DecodeEmbedding(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return &FileProvider{e: e}, nil
}

// NewFileProvider wraps an already-materialised embedding in the provider
// interface without touching disk (round-trip tests, in-memory reuse).
func NewFileProvider(e *Embedding) *FileProvider { return &FileProvider{e: e} }

// Name implements Embedder.
func (f *FileProvider) Name() string { return "file" }

// Dimensions implements Embedder.
func (f *FileProvider) Dimensions() int { return f.e.D }

// Embed implements Embedder.
func (f *FileProvider) Embed(ctx context.Context, nodes []graph.NodeID) ([][]float32, error) {
	return rowsFromEmbedding(ctx, f.e, nodes)
}

// Snapshot implements Snapshotter.
func (f *FileProvider) Snapshot() *Embedding { return f.e }
