package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestRMATBasicShape(t *testing.T) {
	g := RMAT(RMATOptions{Nodes: 1000, Edges: 5000, Seed: 1})
	if g.NumNodes() != 1000 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 5000 {
		t.Fatalf("NumEdges = %d, want exactly 5000", g.NumEdges())
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(RMATOptions{Nodes: 500, Edges: 2000, Seed: 7})
	b := RMAT(RMATOptions{Nodes: 500, Edges: 2000, Seed: 7})
	for id := graph.NodeID(0); id < a.MaxNodeID(); id++ {
		ea, eb := a.OutEdges(id), b.OutEdges(id)
		if len(ea) != len(eb) {
			t.Fatalf("node %d out-degree differs: %d vs %d", id, len(ea), len(eb))
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("node %d edge %d differs", id, i)
			}
		}
	}
	c := RMAT(RMATOptions{Nodes: 500, Edges: 2000, Seed: 8})
	diff := 0
	for id := graph.NodeID(0); id < a.MaxNodeID(); id++ {
		if len(a.OutEdges(id)) != len(c.OutEdges(id)) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical degree sequences")
	}
}

func TestRMATSkew(t *testing.T) {
	g := RMAT(RMATOptions{Nodes: 5000, Edges: 50000, Seed: 2})
	ccdf := DegreeCCDF(g, []int{1, 50, 200})
	if ccdf[0] < 0.5 {
		t.Fatalf("too few nodes with any edge: %v", ccdf)
	}
	// A power-law-ish tail: some nodes accumulate >200 edges while the
	// average is 10.
	if ccdf[2] == 0 {
		t.Fatalf("no heavy tail: ccdf = %v", ccdf)
	}
	if ccdf[2] > 0.05 {
		t.Fatalf("tail too fat to be skewed: ccdf = %v", ccdf)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	const n, m = 2000, 5
	g := BarabasiAlbert(n, m, 3)
	if g.NumNodes() != n {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	// Expected edges: clique on m+1 nodes + m per remaining node.
	clique := (m + 1) * m / 2
	want := clique + (n-(m+1))*m
	if g.NumEdges() != want {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
	// Preferential attachment concentrates degree on early nodes.
	early, late := 0, 0
	for i := 0; i < 100; i++ {
		early += g.Degree(graph.NodeID(i))
		late += g.Degree(graph.NodeID(n - 1 - i))
	}
	if early < 3*late {
		t.Fatalf("no preferential attachment: early=%d late=%d", early, late)
	}
}

func TestBarabasiAlbertSmallN(t *testing.T) {
	g := BarabasiAlbert(3, 5, 1) // m > n: clique fallback must not panic
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	g2 := BarabasiAlbert(10, 0, 1) // m < 1 clamps to 1
	if g2.NumEdges() == 0 {
		t.Fatal("BA with clamped m produced no edges")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 4000, 5)
	if g.NumNodes() != 1000 || g.NumEdges() != 4000 {
		t.Fatalf("shape = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	// Degrees should be concentrated (no heavy tail).
	ccdf := DegreeCCDF(g, []int{30})
	if ccdf[0] > 0.001 {
		t.Fatalf("ER graph has heavy tail: %v", ccdf)
	}
}

func TestCascade(t *testing.T) {
	g := Cascade(3000, 4.3, 6)
	if g.NumNodes() != 3000 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	avg := float64(g.NumEdges()) / float64(g.NumNodes())
	if avg < 3.5 || avg > 5.0 {
		t.Fatalf("avg out-degree = %v, want ~4.3", avg)
	}
	// Cascades only point backwards: every edge i->v has v < i.
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		for _, e := range g.OutEdges(id) {
			if e.To >= id {
				t.Fatalf("cascade edge %d -> %d points forward", id, e.To)
			}
		}
	}
}

func TestKnowledgeGraph(t *testing.T) {
	g := KnowledgeGraph(2000, 1800, 10, 25, 7)
	if g.NumNodes() != 2000 || g.NumEdges() != 1800 {
		t.Fatalf("shape = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	// All node labels drawn from typeN; edges labelled relN.
	typeSeen := map[string]bool{}
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		typeSeen[g.NodeLabel(id)] = true
		for _, e := range g.OutEdges(id) {
			if g.LabelString(e.Label) == "" {
				t.Fatalf("edge from %d has empty label", id)
			}
		}
	}
	if len(typeSeen) < 5 {
		t.Fatalf("only %d node types used", len(typeSeen))
	}
}

func TestGridDistances(t *testing.T) {
	g := Grid(5, 4)
	if g.NumNodes() != 20 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	// Manhattan distance from corner 0 to opposite corner = (5-1)+(4-1).
	d := g.HopDistance(0, graph.NodeID(19), -1, graph.Out)
	if d != 7 {
		t.Fatalf("corner-to-corner distance = %d, want 7", d)
	}
}

func TestRing(t *testing.T) {
	g := Ring(10)
	if g.NumEdges() != 10 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if d := g.HopDistance(0, 9, -1, graph.Out); d != 9 {
		t.Fatalf("directed ring distance = %d, want 9", d)
	}
	if d := g.HopDistance(0, 9, -1, graph.Both); d != 1 {
		t.Fatalf("bidirected ring distance = %d, want 1", d)
	}
}

func TestPresetsGenerate(t *testing.T) {
	for _, d := range Datasets {
		g, err := Preset(d, 0.05, 42)
		if err != nil {
			t.Fatalf("Preset(%s): %v", d, err)
		}
		if g.NumNodes() < 64 {
			t.Fatalf("Preset(%s) has %d nodes", d, g.NumNodes())
		}
		spec := Specs[d]
		avg := float64(g.NumEdges()) / float64(g.NumNodes())
		// Density should be within 2x of the spec's edge factor (except
		// for the BA generator whose clique seed distorts tiny graphs).
		if avg > spec.EdgeFactor*2+1 || avg < spec.EdgeFactor/3 {
			t.Errorf("Preset(%s) avg degree %v, spec %v", d, avg, spec.EdgeFactor)
		}
	}
}

func TestPresetRelativeDensity(t *testing.T) {
	// Friendster must have a much larger 2-hop neighbourhood than Freebase,
	// as the paper's Figure 16 analysis requires.
	fr, err := Preset(Friendster, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Preset(Freebase, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	frHop := graph.AvgKHopSize(fr, 2, 30, graph.Both)
	fbHop := graph.AvgKHopSize(fb, 2, 30, graph.Both)
	if frHop < 4*fbHop {
		t.Fatalf("2-hop sizes: friendster=%v freebase=%v, want friendster >> freebase", frHop, fbHop)
	}
}

func TestPresetErrors(t *testing.T) {
	if _, err := Preset("nope", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := Preset(WebGraph, 0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := Preset(WebGraph, -1, 1); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestPresetDeterministic(t *testing.T) {
	a, _ := Preset(Memetracker, 0.02, 9)
	b, _ := Preset(Memetracker, 0.02, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
}
