package gen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteAdjacency serialises g in the plain adjacency-list text format
// cmd/grouting-gen emits: one line per live node, "id: out1 out2 ...".
// Labels are not preserved (the format exists for interchange with
// external graph tooling and for loading real datasets).
func WriteAdjacency(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		if !g.Exists(id) {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d:", id); err != nil {
			return err
		}
		for _, e := range g.OutEdges(id) {
			if _, err := fmt.Fprintf(bw, " %d", e.To); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAdjacency parses the adjacency-list text format back into a graph.
// Node ids may appear in any order; ids mentioned only as edge targets are
// created implicitly. Blank lines and lines starting with '#' are skipped.
func ReadAdjacency(r io.Reader) (*graph.Graph, error) {
	g := graph.New()
	ensure := func(id uint64) (graph.NodeID, error) {
		if id > uint64(^graph.NodeID(0)) {
			return 0, fmt.Errorf("gen: node id %d overflows NodeID", id)
		}
		for uint64(g.MaxNodeID()) <= id {
			g.AddNode("")
		}
		return graph.NodeID(id), nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		head, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("gen: line %d: missing ':'", lineNo)
		}
		src64, err := strconv.ParseUint(strings.TrimSpace(head), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: line %d: bad node id: %w", lineNo, err)
		}
		src, err := ensure(src64)
		if err != nil {
			return nil, err
		}
		for _, tok := range strings.Fields(rest) {
			dst64, err := strconv.ParseUint(tok, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("gen: line %d: bad edge target %q: %w", lineNo, tok, err)
			}
			dst, err := ensure(dst64)
			if err != nil {
				return nil, err
			}
			g.AddEdgeFast(src, dst)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gen: read: %w", err)
	}
	return g, nil
}
