package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Dataset names one of the paper's four graphs (Table 1).
type Dataset string

const (
	// WebGraph models uk-2007-05: very skewed degrees, dense linkage,
	// strongly overlapping local neighbourhoods. Paper: 106M nodes, 3.7B
	// edges, avg 2-hop neighbourhood 52K.
	WebGraph Dataset = "webgraph"
	// Friendster models the SNAP Friendster sample: social topology with a
	// huge 2-hop neighbourhood (paper: 0.3M avg), which makes caching less
	// effective (Figure 16b).
	Friendster Dataset = "friendster"
	// Memetracker models the news/quote cascade graph: moderate density,
	// temporal-cascade structure. Paper: 97M nodes, 418M edges.
	Memetracker Dataset = "memetracker"
	// Freebase models the knowledge graph: sparse (fewer edges than nodes),
	// labelled, hub entities. Paper: 50M nodes, 47M edges.
	Freebase Dataset = "freebase"
)

// Datasets lists the presets in Table 1 order.
var Datasets = []Dataset{WebGraph, Friendster, Memetracker, Freebase}

// PresetSpec records the shape parameters of a preset at scale 1.0 together
// with the statistics of the paper's original for documentation output.
type PresetSpec struct {
	Name          Dataset
	BaseNodes     int     // nodes at scale 1.0
	EdgeFactor    float64 // edges per node at scale 1.0
	PaperNodes    int64   // original dataset, for Table 1 rendering
	PaperEdges    int64
	PaperSizeDisk string
}

// Specs maps every preset to its generation parameters. BaseNodes are
// chosen so that scale 1.0 runs comfortably on one machine while keeping
// each dataset's relative density.
var Specs = map[Dataset]PresetSpec{
	WebGraph:    {Name: WebGraph, BaseNodes: 60000, EdgeFactor: 12, PaperNodes: 105896555, PaperEdges: 3738733648, PaperSizeDisk: "60.3 GB"},
	Friendster:  {Name: Friendster, BaseNodes: 40000, EdgeFactor: 27, PaperNodes: 65608366, PaperEdges: 1806067135, PaperSizeDisk: "33.5 GB"},
	Memetracker: {Name: Memetracker, BaseNodes: 55000, EdgeFactor: 4.3, PaperNodes: 96608034, PaperEdges: 418237269, PaperSizeDisk: "8.2 GB"},
	Freebase:    {Name: Freebase, BaseNodes: 30000, EdgeFactor: 0.94, PaperNodes: 49731389, PaperEdges: 46708421, PaperSizeDisk: "1.3 GB"},
}

// Preset generates dataset d at the given scale (1.0 = the default bench
// size; tests use much smaller scales). The same (dataset, scale, seed)
// triple always yields the same graph.
func Preset(d Dataset, scale float64, seed int64) (*graph.Graph, error) {
	spec, ok := Specs[d]
	if !ok {
		return nil, fmt.Errorf("gen: unknown dataset %q", d)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("gen: non-positive scale %v", scale)
	}
	n := int(float64(spec.BaseNodes) * scale)
	if n < 64 {
		n = 64
	}
	e := int(float64(n) * spec.EdgeFactor)
	switch d {
	case WebGraph:
		// Window and hub fraction tuned so 2-hop neighbourhoods stay a
		// small fraction of the graph with a heavy in-degree tail, like
		// the real uk-2007-05 crawl. The tuning keeps the hotspot
		// workload's total footprint well below the graph size — the
		// regime the paper's cache-locality results live in.
		return LocalWeb(n, int(spec.EdgeFactor), 160, 0.04, seed), nil
	case Friendster:
		m := int(spec.EdgeFactor)
		return BarabasiAlbert(n, m, seed), nil
	case Memetracker:
		return Cascade(n, spec.EdgeFactor, seed), nil
	case Freebase:
		return KnowledgeGraph(n, e, 40, 120, seed), nil
	}
	return nil, fmt.Errorf("gen: unhandled dataset %q", d)
}

// DegreeCCDF returns the complementary cumulative degree distribution of g
// at the probe degrees: fraction of nodes with total degree >= probe.
// Tests use it to assert heavy tails for the skewed presets.
func DegreeCCDF(g *graph.Graph, probes []int) []float64 {
	degrees := make([]int, 0, g.NumNodes())
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		if g.Exists(id) {
			degrees = append(degrees, g.Degree(id))
		}
	}
	sort.Ints(degrees)
	out := make([]float64, len(probes))
	for i, p := range probes {
		// index of first degree >= p
		idx := sort.SearchInts(degrees, p)
		out[i] = float64(len(degrees)-idx) / float64(len(degrees))
	}
	return out
}
