// Package gen produces the seeded synthetic graphs that stand in for the
// paper's four datasets (Table 1: WebGraph, Friendster, Memetracker,
// Freebase).
//
// The originals are 50-106 M nodes and cannot be redistributed here, so each
// preset generates a scaled-down graph with the same *qualitative* profile
// the experiments depend on: heavy-tailed degree distributions, strongly
// overlapping h-hop neighbourhoods of nearby nodes (topology-aware
// locality, Figure 4), and the relative differences between datasets (e.g.
// Friendster's far larger average 2-hop neighbourhood, which weakens
// caching in Figure 16(b); Freebase's sparsity).
//
// All generators are deterministic given a seed.
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// RMATOptions configures the recursive-matrix (R-MAT) generator used for
// the web-like preset. A, B, C, D are the quadrant probabilities and must
// sum to ~1; the classic skewed setting is 0.57/0.19/0.19/0.05.
type RMATOptions struct {
	Nodes      int
	Edges      int
	A, B, C, D float64
	Seed       int64
}

// RMAT generates a directed R-MAT graph. Self-loops are kept (they occur in
// web graphs); parallel edges are kept as in the multigraph model.
func RMAT(opt RMATOptions) *graph.Graph {
	if opt.A == 0 && opt.B == 0 && opt.C == 0 && opt.D == 0 {
		opt.A, opt.B, opt.C, opt.D = 0.57, 0.19, 0.19, 0.05
	}
	g := graph.NewWithCapacity(opt.Nodes)
	g.AddNodes(opt.Nodes)
	rng := xrand.New(opt.Seed)
	// levels = ceil(log2(n))
	levels := 0
	for 1<<levels < opt.Nodes {
		levels++
	}
	ab := opt.A + opt.B
	abc := opt.A + opt.B + opt.C
	for i := 0; i < opt.Edges; i++ {
		u, v := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < opt.A:
				// top-left: no bit set
			case r < ab:
				v |= 1 << l
			case r < abc:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= opt.Nodes || v >= opt.Nodes {
			// Out-of-range coordinates from the power-of-two envelope are
			// folded back to keep the edge count exact.
			u %= opt.Nodes
			v %= opt.Nodes
		}
		g.AddEdgeFast(graph.NodeID(u), graph.NodeID(v))
	}
	return g
}

// LocalWeb generates a web-like graph with the locality structure of real
// crawl graphs (e.g. uk-2007-05, where URLs sort lexicographically and
// most hyperlinks stay within a site): each node links mostly inside a
// sliding window of nearby ids, with a fraction of "global" links whose
// targets are skewed towards low-id hub pages. The result has heavy-tailed
// in-degree, strong topology-aware locality (Figure 4), and h-hop
// neighbourhoods that remain a tiny fraction of the graph — the regime the
// paper's workloads operate in.
func LocalWeb(n, m, window int, hubFrac float64, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if window < 2 {
		window = 2
	}
	g := graph.NewWithCapacity(n)
	g.AddNodes(n)
	rng := xrand.New(seed)
	for i := 0; i < n; i++ {
		for k := 0; k < m; k++ {
			var v int
			if rng.Float64() < hubFrac {
				// Global link: cubing the uniform skews towards low ids,
				// making them hub pages with heavy in-degree tails.
				u := rng.Float64()
				v = int(u * u * u * float64(n))
			} else {
				// Local link within the window around i.
				v = i - window/2 + rng.Intn(window)
			}
			if v < 0 {
				v = 0
			}
			if v >= n {
				v = n - 1
			}
			if v == i {
				v = (i + 1) % n
			}
			g.AddEdgeFast(graph.NodeID(i), graph.NodeID(v))
		}
	}
	return g
}

// BarabasiAlbert generates a preferential-attachment graph: each new node
// attaches m directed edges to targets drawn proportionally to degree. It
// models the social-network preset (Friendster-like) whose hallmark is a
// large, well-connected 2-hop neighbourhood.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	g := graph.NewWithCapacity(n)
	g.AddNodes(n)
	rng := xrand.New(seed)
	// repeated holds one entry per edge endpoint, so uniform sampling from
	// it is degree-proportional sampling.
	repeated := make([]graph.NodeID, 0, 2*n*m)
	start := m + 1
	if start > n {
		start = n
	}
	// Seed clique over the first start nodes.
	for i := 0; i < start; i++ {
		for j := 0; j < i; j++ {
			g.AddEdgeFast(graph.NodeID(i), graph.NodeID(j))
			repeated = append(repeated, graph.NodeID(i), graph.NodeID(j))
		}
	}
	for i := start; i < n; i++ {
		u := graph.NodeID(i)
		for k := 0; k < m; k++ {
			var v graph.NodeID
			if len(repeated) == 0 {
				v = graph.NodeID(rng.Intn(i))
			} else {
				v = repeated[rng.Intn(len(repeated))]
			}
			g.AddEdgeFast(u, v)
			repeated = append(repeated, u, v)
		}
	}
	return g
}

// ErdosRenyi generates a uniform random directed graph with exactly edges
// edges (G(n, M) model). Used as a low-skew control in tests.
func ErdosRenyi(n, edges int, seed int64) *graph.Graph {
	g := graph.NewWithCapacity(n)
	g.AddNodes(n)
	rng := xrand.New(seed)
	for i := 0; i < edges; i++ {
		g.AddEdgeFast(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return g
}

// Cascade generates a news/meme-style citation cascade (Memetracker-like):
// node i links to a handful of earlier nodes, biased towards recent ones,
// occasionally "bursting" into a popular old node. Average out-degree is
// approximately avgDeg.
func Cascade(n int, avgDeg float64, seed int64) *graph.Graph {
	g := graph.NewWithCapacity(n)
	g.AddNodes(n)
	rng := xrand.New(seed)
	for i := 1; i < n; i++ {
		deg := int(avgDeg)
		if rng.Float64() < avgDeg-float64(deg) {
			deg++
		}
		for k := 0; k < deg; k++ {
			var v int
			if rng.Float64() < 0.7 {
				// Recency bias: link within a sliding window.
				window := 1 + i/10
				v = i - 1 - rng.Intn(window)
				if v < 0 {
					v = 0
				}
			} else {
				// Popularity burst: uniform over all earlier nodes, which
				// combined with transitivity yields heavy-tailed in-degree.
				v = rng.Intn(i)
			}
			g.AddEdgeFast(graph.NodeID(i), graph.NodeID(v))
		}
	}
	return g
}

// KnowledgeGraph generates a sparse labelled entity-relation graph
// (Freebase-like): entities carry one of nTypes node labels, edges one of
// nRelations relation labels, and the edge density is below one edge per
// node, leaving many small components as in the real Freebase dump.
func KnowledgeGraph(n, edges, nTypes, nRelations int, seed int64) *graph.Graph {
	g := graph.NewWithCapacity(n)
	rng := xrand.New(seed)
	types := make([]string, nTypes)
	for i := range types {
		types[i] = fmt.Sprintf("type%d", i)
	}
	rels := make([]string, nRelations)
	for i := range rels {
		rels[i] = fmt.Sprintf("rel%d", i)
	}
	for i := 0; i < n; i++ {
		g.AddNode(types[rng.Intn(nTypes)])
	}
	// Hub-biased endpoints: a small fraction of entities (like "USA" or
	// "human") attract — and, as category/aggregate entities, emit — a
	// disproportionate number of relations. Hub out-links give queries
	// starting near a hub the non-trivial h-hop neighbourhoods the paper
	// observes on Freebase despite its sub-1 average degree.
	hubs := n / 500
	if hubs < 1 {
		hubs = 1
	}
	for i := 0; i < edges; i++ {
		u := graph.NodeID(rng.Intn(n))
		if rng.Float64() < 0.25 {
			u = graph.NodeID(rng.Intn(hubs))
		}
		var v graph.NodeID
		if rng.Float64() < 0.3 {
			v = graph.NodeID(rng.Intn(hubs))
		} else {
			v = graph.NodeID(rng.Intn(n))
		}
		// Endpoints always exist; error is impossible by construction.
		if err := g.AddEdge(u, v, rels[rng.Intn(nRelations)]); err != nil {
			panic(err)
		}
	}
	return g
}

// Grid generates an undirected-style w x h lattice (each lattice edge is
// added in both directions). Its regular structure gives exactly
// predictable BFS distances, which several tests rely on.
func Grid(w, h int) *graph.Graph {
	g := graph.NewWithCapacity(w * h)
	g.AddNodes(w * h)
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdgeFast(id(x, y), id(x+1, y))
				g.AddEdgeFast(id(x+1, y), id(x, y))
			}
			if y+1 < h {
				g.AddEdgeFast(id(x, y), id(x, y+1))
				g.AddEdgeFast(id(x, y+1), id(x, y))
			}
		}
	}
	return g
}

// Ring generates a directed cycle of n nodes: useful for worst-case
// diameter behaviour in tests.
func Ring(n int) *graph.Graph {
	g := graph.NewWithCapacity(n)
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		g.AddEdgeFast(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return g
}
