package gen

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestAdjacencyRoundTrip(t *testing.T) {
	g := RMAT(RMATOptions{Nodes: 200, Edges: 900, Seed: 5})
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			got.NumNodes(), g.NumNodes(), got.NumEdges(), g.NumEdges())
	}
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		if got.OutDegree(id) != g.OutDegree(id) {
			t.Fatalf("node %d out-degree %d != %d", id, got.OutDegree(id), g.OutDegree(id))
		}
	}
	// In-adjacency is rebuilt consistently.
	for id := graph.NodeID(0); id < g.MaxNodeID(); id++ {
		if got.InDegree(id) != g.InDegree(id) {
			t.Fatalf("node %d in-degree mismatch", id)
		}
	}
}

func TestReadAdjacencyComments(t *testing.T) {
	in := "# a comment\n\n0: 1 2\n1: 2\n2:\n"
	g, err := ReadAdjacency(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(1, 2) {
		t.Fatal("edges missing")
	}
}

func TestReadAdjacencyImplicitNodes(t *testing.T) {
	// Targets beyond any source line are created implicitly.
	g, err := ReadAdjacency(strings.NewReader("0: 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", g.NumNodes())
	}
	if !g.HasEdge(0, 5) {
		t.Fatal("edge missing")
	}
}

func TestReadAdjacencyErrors(t *testing.T) {
	for _, in := range []string{
		"no colon here\n",
		"x: 1\n",
		"0: abc\n",
	} {
		if _, err := ReadAdjacency(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestWriteAdjacencySkipsRemoved(t *testing.T) {
	g := Ring(5)
	if err := g.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, g); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\n2:") || strings.HasPrefix(buf.String(), "2:") {
		t.Fatalf("removed node serialised:\n%s", buf.String())
	}
}
