// Package cache implements the query processors' cache (Section 2.3):
// a byte-capacity-bounded LRU keyed by node id.
//
// "Whenever some data is retrieved from the storage, it is saved in cache
// ... When the addition of a new entry surpasses this storage limit, one or
// more old entries are evicted from the cache. We chose the LRU eviction
// policy because of its simplicity ... it favors recent queries. Thus, it
// performs well with our smart routing schemes."
//
// The cache is generic over the cached value so processors can cache
// decoded records without re-parsing. It is not safe for concurrent use;
// each processor owns one cache.
package cache

import "container/list"

// EntryOverhead approximates the per-entry bookkeeping cost (map bucket +
// list element + headers) charged against the capacity in addition to the
// caller-declared value size.
const EntryOverhead = 64

// Stats counts cache activity. TouchedBytes tracks the cumulative size of
// values admitted, which the capacity experiments use to size working sets.
type Stats struct {
	Hits, Misses   int64
	Inserts        int64
	Evictions      int64
	Rejected       int64 // values larger than the whole cache
	CurrentBytes   int64
	CapacityBytes  int64
	CumInsertBytes int64
}

// LRU is a least-recently-used cache with byte-capacity accounting.
type LRU[V any] struct {
	capacity int64
	size     int64
	ll       *list.List // front = most recent
	items    map[uint64]*list.Element
	stats    Stats
}

type entry[V any] struct {
	key  uint64
	val  V
	cost int64
}

// New creates a cache holding up to capacity bytes (values + per-entry
// overhead). A capacity <= 0 yields a cache that stores nothing — the
// paper's "no-cache" mode uses that degenerate configuration.
func New[V any](capacity int64) *LRU[V] {
	return &LRU[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[uint64]*list.Element),
	}
}

// Get returns the cached value for key, marking it most-recently-used.
func (c *LRU[V]) Get(key uint64) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	c.stats.Misses++
	return zero, false
}

// Contains reports residency without touching recency or statistics.
func (c *LRU[V]) Contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or replaces the value for key. valBytes is the caller's size
// estimate for the value (e.g. the encoded record length); the cache adds
// EntryOverhead. Oversized values are rejected rather than flushing the
// whole cache. It returns the number of entries evicted.
func (c *LRU[V]) Put(key uint64, val V, valBytes int64) int {
	cost := valBytes + EntryOverhead
	if cost > c.capacity {
		c.stats.Rejected++
		// An existing entry under this key keeps its old value; the caller
		// replaced it with something uncacheable, so drop it.
		if el, ok := c.items[key]; ok {
			c.removeElement(el)
		}
		return 0
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry[V])
		c.size += cost - e.cost
		e.val = val
		e.cost = cost
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry[V]{key: key, val: val, cost: cost})
		c.items[key] = el
		c.size += cost
		c.stats.Inserts++
		c.stats.CumInsertBytes += valBytes
	}
	evicted := 0
	for c.size > c.capacity {
		c.evictOldest()
		evicted++
	}
	return evicted
}

// Remove drops key from the cache, reporting whether it was resident.
func (c *LRU[V]) Remove(key uint64) bool {
	el, ok := c.items[key]
	if ok {
		c.removeElement(el)
	}
	return ok
}

func (c *LRU[V]) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.removeElement(el)
	c.stats.Evictions++
}

func (c *LRU[V]) removeElement(el *list.Element) {
	e := el.Value.(*entry[V])
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.size -= e.cost
}

// Len returns the number of resident entries.
func (c *LRU[V]) Len() int { return c.ll.Len() }

// Size returns the current charged bytes (values + overhead).
func (c *LRU[V]) Size() int64 { return c.size }

// Capacity returns the configured byte capacity.
func (c *LRU[V]) Capacity() int64 { return c.capacity }

// Stats returns a snapshot of the counters.
func (c *LRU[V]) Stats() Stats {
	s := c.stats
	s.CurrentBytes = c.size
	s.CapacityBytes = c.capacity
	return s
}

// Reset empties the cache and zeroes the statistics (cold-cache start, as
// every experiment in Section 4 begins with an empty cache).
func (c *LRU[V]) Reset() {
	c.ll.Init()
	clear(c.items)
	c.size = 0
	c.stats = Stats{}
}

// Keys returns the resident keys from most- to least-recently used.
// Intended for tests and debugging.
func (c *LRU[V]) Keys() []uint64 {
	out := make([]uint64, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[V]).key)
	}
	return out
}
