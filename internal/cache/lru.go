// Package cache implements the query processors' cache (Section 2.3):
// a byte-capacity-bounded LRU keyed by node id.
//
// "Whenever some data is retrieved from the storage, it is saved in cache
// ... When the addition of a new entry surpasses this storage limit, one or
// more old entries are evicted from the cache. We chose the LRU eviction
// policy because of its simplicity ... it favors recent queries. Thus, it
// performs well with our smart routing schemes."
//
// The cache is generic over the cached value so processors can cache
// decoded records without re-parsing. Entries live in a slot array linked
// by indices (recency list) with evicted slots recycled through a free
// list, so steady-state insert/evict churn allocates nothing. It is not
// safe for concurrent use; each processor owns one cache.
package cache

import "repro/internal/metrics"

// EntryOverhead approximates the per-entry bookkeeping cost (map bucket +
// list element + headers) charged against the capacity in addition to the
// caller-declared value size.
const EntryOverhead = 64

// Stats counts cache activity. TouchedBytes tracks the cumulative size of
// values admitted, which the capacity experiments use to size working sets.
type Stats struct {
	Hits, Misses   int64
	Inserts        int64
	Evictions      int64
	Rejected       int64 // values larger than the whole cache
	CurrentBytes   int64
	CapacityBytes  int64
	CumInsertBytes int64
}

// Counters converts the snapshot into the shared observability form every
// transport reports through metrics.Snapshot.
func (s Stats) Counters() metrics.CacheCounters {
	return metrics.CacheCounters{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Inserts:       s.Inserts,
		Evictions:     s.Evictions,
		Rejected:      s.Rejected,
		CurrentBytes:  s.CurrentBytes,
		CapacityBytes: s.CapacityBytes,
	}
}

// none marks an empty list link / absent slot index.
const none = int32(-1)

// slot is one cache entry, linked into the recency list by index.
type slot[V any] struct {
	key        uint64
	val        V
	cost       int64
	prev, next int32
}

// LRU is a least-recently-used cache with byte-capacity accounting.
type LRU[V any] struct {
	capacity int64
	size     int64
	slots    []slot[V]
	free     []int32
	head     int32 // most recent; none when empty
	tail     int32 // least recent; none when empty
	items    map[uint64]int32
	stats    Stats
}

// New creates a cache holding up to capacity bytes (values + per-entry
// overhead). A capacity <= 0 yields a cache that stores nothing — the
// paper's "no-cache" mode uses that degenerate configuration.
func New[V any](capacity int64) *LRU[V] {
	return &LRU[V]{
		capacity: capacity,
		head:     none,
		tail:     none,
		items:    make(map[uint64]int32),
	}
}

// unlink detaches slot i from the recency list.
func (c *LRU[V]) unlink(i int32) {
	s := &c.slots[i]
	if s.prev != none {
		c.slots[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next != none {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
}

// pushFront links slot i as most-recently used.
func (c *LRU[V]) pushFront(i int32) {
	s := &c.slots[i]
	s.prev, s.next = none, c.head
	if c.head != none {
		c.slots[c.head].prev = i
	}
	c.head = i
	if c.tail == none {
		c.tail = i
	}
}

// Get returns the cached value for key, marking it most-recently-used.
func (c *LRU[V]) Get(key uint64) (V, bool) {
	if i, ok := c.items[key]; ok {
		if c.head != i {
			c.unlink(i)
			c.pushFront(i)
		}
		c.stats.Hits++
		return c.slots[i].val, true
	}
	var zero V
	c.stats.Misses++
	return zero, false
}

// Contains reports residency without touching recency or statistics.
func (c *LRU[V]) Contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or replaces the value for key. valBytes is the caller's size
// estimate for the value (e.g. the encoded record length); the cache adds
// EntryOverhead. Oversized values are rejected rather than flushing the
// whole cache. It returns the number of entries evicted.
func (c *LRU[V]) Put(key uint64, val V, valBytes int64) int {
	cost := valBytes + EntryOverhead
	if cost > c.capacity {
		c.stats.Rejected++
		// An existing entry under this key keeps its old value; the caller
		// replaced it with something uncacheable, so drop it.
		if i, ok := c.items[key]; ok {
			c.removeSlot(i)
		}
		return 0
	}
	if i, ok := c.items[key]; ok {
		s := &c.slots[i]
		c.size += cost - s.cost
		s.val = val
		s.cost = cost
		if c.head != i {
			c.unlink(i)
			c.pushFront(i)
		}
	} else {
		var i int32
		if n := len(c.free); n > 0 {
			i = c.free[n-1]
			c.free = c.free[:n-1]
			c.slots[i] = slot[V]{key: key, val: val, cost: cost}
		} else {
			i = int32(len(c.slots))
			c.slots = append(c.slots, slot[V]{key: key, val: val, cost: cost})
		}
		c.pushFront(i)
		c.items[key] = i
		c.size += cost
		c.stats.Inserts++
		c.stats.CumInsertBytes += valBytes
	}
	evicted := 0
	for c.size > c.capacity {
		c.evictOldest()
		evicted++
	}
	return evicted
}

// Remove drops key from the cache, reporting whether it was resident.
func (c *LRU[V]) Remove(key uint64) bool {
	i, ok := c.items[key]
	if ok {
		c.removeSlot(i)
	}
	return ok
}

func (c *LRU[V]) evictOldest() {
	if c.tail == none {
		return
	}
	c.removeSlot(c.tail)
	c.stats.Evictions++
}

// removeSlot unlinks slot i, forgets its key and recycles the slot.
func (c *LRU[V]) removeSlot(i int32) {
	s := &c.slots[i]
	c.unlink(i)
	delete(c.items, s.key)
	c.size -= s.cost
	var zero slot[V]
	*s = zero // release the value for GC
	c.free = append(c.free, i)
}

// Len returns the number of resident entries.
func (c *LRU[V]) Len() int { return len(c.items) }

// Size returns the current charged bytes (values + overhead).
func (c *LRU[V]) Size() int64 { return c.size }

// Capacity returns the configured byte capacity.
func (c *LRU[V]) Capacity() int64 { return c.capacity }

// Stats returns a snapshot of the counters.
func (c *LRU[V]) Stats() Stats {
	s := c.stats
	s.CurrentBytes = c.size
	s.CapacityBytes = c.capacity
	return s
}

// Reset empties the cache and zeroes the statistics (cold-cache start, as
// every experiment in Section 4 begins with an empty cache).
func (c *LRU[V]) Reset() {
	clear(c.slots) // release cached values for GC before truncating
	c.slots = c.slots[:0]
	c.free = c.free[:0]
	c.head, c.tail = none, none
	clear(c.items)
	c.size = 0
	c.stats = Stats{}
}

// Keys returns the resident keys from most- to least-recently used.
// Intended for tests and debugging.
func (c *LRU[V]) Keys() []uint64 {
	out := make([]uint64, 0, len(c.items))
	for i := c.head; i != none; i = c.slots[i].next {
		out = append(out, c.slots[i].key)
	}
	return out
}
