package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestGetMissOnEmpty(t *testing.T) {
	c := New[string](1024)
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache returned a hit")
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutGet(t *testing.T) {
	c := New[string](1024)
	c.Put(1, "one", 3)
	v, ok := c.Get(1)
	if !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if s := c.Stats(); s.Hits != 1 || s.Inserts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReplaceUpdatesValueAndSize(t *testing.T) {
	c := New[string](1024)
	c.Put(1, "a", 100)
	sz := c.Size()
	c.Put(1, "b", 10)
	if v, _ := c.Get(1); v != "b" {
		t.Fatalf("value after replace = %q", v)
	}
	if c.Size() >= sz {
		t.Fatalf("size did not shrink on smaller replace: %d -> %d", sz, c.Size())
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replace", c.Len())
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	// Capacity fits exactly 3 entries of cost 36+64=100.
	c := New[int](300)
	c.Put(1, 1, 36)
	c.Put(2, 2, 36)
	c.Put(3, 3, 36)
	// Touch 1 so 2 becomes the oldest.
	c.Get(1)
	c.Put(4, 4, 36)
	if c.Contains(2) {
		t.Fatal("LRU kept the least-recently-used entry")
	}
	for _, k := range []uint64{1, 3, 4} {
		if !c.Contains(k) {
			t.Fatalf("entry %d evicted out of order", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestPutMayEvictMultiple(t *testing.T) {
	c := New[int](300)
	c.Put(1, 1, 36) // cost 100
	c.Put(2, 2, 36)
	c.Put(3, 3, 36)
	evicted := c.Put(4, 4, 200) // cost 264 forces out several entries
	if evicted < 2 {
		t.Fatalf("evicted %d entries, want >= 2", evicted)
	}
	if c.Size() > c.Capacity() {
		t.Fatalf("size %d exceeds capacity %d", c.Size(), c.Capacity())
	}
	if !c.Contains(4) {
		t.Fatal("newly inserted entry missing")
	}
}

func TestOversizedValueRejected(t *testing.T) {
	c := New[int](100)
	c.Put(1, 1, 10)
	c.Put(2, 2, 500) // cost 564 > capacity
	if c.Contains(2) {
		t.Fatal("oversized value admitted")
	}
	if !c.Contains(1) {
		t.Fatal("oversized Put flushed existing entries")
	}
	if s := c.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
}

func TestOversizedReplaceDropsOldEntry(t *testing.T) {
	c := New[int](200)
	c.Put(1, 1, 10)
	c.Put(1, 2, 5000)
	if c.Contains(1) {
		t.Fatal("stale value left behind after oversized replace")
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New[int](0)
	c.Put(1, 1, 0)
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache stored an entry")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("zero-capacity cache returned a hit")
	}
}

func TestRemove(t *testing.T) {
	c := New[int](1024)
	c.Put(1, 1, 8)
	if !c.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if c.Remove(1) {
		t.Fatal("second Remove(1) = true")
	}
	if c.Size() != 0 || c.Len() != 0 {
		t.Fatalf("size=%d len=%d after remove", c.Size(), c.Len())
	}
}

func TestReset(t *testing.T) {
	c := New[int](1024)
	c.Put(1, 1, 8)
	c.Get(1)
	c.Reset()
	if c.Len() != 0 || c.Size() != 0 {
		t.Fatal("Reset left entries")
	}
	if s := c.Stats(); s.Hits != 0 || s.Inserts != 0 {
		t.Fatalf("Reset left stats: %+v", s)
	}
	// Cache still usable after Reset.
	c.Put(2, 2, 8)
	if _, ok := c.Get(2); !ok {
		t.Fatal("cache unusable after Reset")
	}
}

func TestKeysRecencyOrder(t *testing.T) {
	c := New[int](10000)
	c.Put(1, 1, 0)
	c.Put(2, 2, 0)
	c.Put(3, 3, 0)
	c.Get(1)
	keys := c.Keys()
	want := []uint64{1, 3, 2}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("Keys() = %v, want %v", keys, want)
		}
	}
}

// Property: size never exceeds capacity and equals the sum of resident
// entry costs, across an arbitrary workload.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(ops []uint16, capSeed uint8) bool {
		capacity := int64(capSeed)*37 + 150
		c := New[uint16](capacity)
		for _, op := range ops {
			key := uint64(op % 32)
			switch {
			case op%3 == 0:
				c.Get(key)
			case op%7 == 0:
				c.Remove(key)
			default:
				c.Put(key, op, int64(op%97))
			}
			if c.Size() > capacity {
				return false
			}
		}
		// Recount from scratch: Len entries, each cost >= EntryOverhead.
		if int64(c.Len())*EntryOverhead > c.Size() && c.Len() > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a just-inserted (cacheable) key is always resident.
func TestQuickInsertedResident(t *testing.T) {
	f := func(keys []uint16) bool {
		c := New[int](1000)
		for i, k := range keys {
			c.Put(uint64(k), i, 50)
			if !c.Contains(uint64(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHitRateImprovesWithCapacity(t *testing.T) {
	// Zipf-ish access pattern: hit rate must be monotone-ish in capacity.
	run := func(capacity int64) int64 {
		c := New[int](capacity)
		rng := xrand.New(1)
		for i := 0; i < 20000; i++ {
			// Quadratic skew towards small keys.
			f := rng.Float64()
			key := uint64(f * f * 500)
			if _, ok := c.Get(key); !ok {
				c.Put(key, i, 100)
			}
		}
		return c.Stats().Hits
	}
	small, large := run(2000), run(100000)
	if large <= small {
		t.Fatalf("hits: capacity 2000 -> %d, capacity 100000 -> %d; expected improvement", small, large)
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := New[int](1 << 20)
	for k := uint64(0); k < 1000; k++ {
		c.Put(k, int(k), 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(uint64(i) % 1000)
	}
}

func BenchmarkPutEvict(b *testing.B) {
	c := New[int](64 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(uint64(i), i, 256)
	}
}
