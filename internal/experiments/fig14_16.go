package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID: "fig14", Paper: "Figure 14",
		Desc: "response time and cache hits/misses for r-hop hotspots (r=1,2), 2-hop traversals",
		Run:  runFig14,
	})
	register(Experiment{
		ID: "fig15", Paper: "Figure 15",
		Desc: "response time for h-hop traversals (h=1,2,3), 2-hop hotspots",
		Run:  runFig15,
	})
	register(Experiment{
		ID: "fig16", Paper: "Figure 16",
		Desc: "response time on Memetracker and Friendster",
		Run:  runFig16,
	})
}

func runFig14(w io.Writer, sc Scale) error {
	e, _ := Get("fig14")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	radii := []int{1, 2}
	workloads := make([][]queryT, len(radii))
	for i, r := range radii {
		workloads[i] = workload(g, sc, r, 2)
	}
	reps, err := policyGrid(len(radii), fig8Policies, func(row int, policy core.Policy) (*core.Report, error) {
		return runPolicy(g, sysConfig(policy, sc), workloads[row])
	})
	if err != nil {
		return err
	}
	for i, r := range radii {
		t := metrics.NewTable("policy", "response-time", "cache-hits", "cache-misses", "hit-rate")
		for j, policy := range fig8Policies {
			rep := reps[i][j]
			t.AddRow(policyLabel(policy), rep.MeanResponse, rep.CacheHits, rep.CacheMisses,
				fmt.Sprintf("%.3f", rep.HitRate))
		}
		fmt.Fprintf(w, "-- %d-hop hotspot, 2-hop traversal --\n%s", r, t.String())
	}
	fmt.Fprintln(w, "paper: smart routings beat baselines for both radii via more cache hits")
	return nil
}

func runFig15(w io.Writer, sc Scale) error {
	e, _ := Get("fig15")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	hops := []int{1, 2, 3}
	workloads := make([][]queryT, len(hops))
	for i, h := range hops {
		workloads[i] = workload(g, sc, 2, h)
	}
	reps, err := policyGrid(len(hops), fig8Policies, func(row int, policy core.Policy) (*core.Report, error) {
		return runPolicy(g, sysConfig(policy, sc), workloads[row])
	})
	if err != nil {
		return err
	}
	for i, h := range hops {
		t := metrics.NewTable("policy", "response-time", "hit-rate")
		for j, policy := range fig8Policies {
			rep := reps[i][j]
			t.AddRow(policyLabel(policy), rep.MeanResponse, fmt.Sprintf("%.3f", rep.HitRate))
		}
		fmt.Fprintf(w, "-- 2-hop hotspot, %d-hop traversal --\n%s", h, t.String())
	}
	fmt.Fprintln(w, "paper: smart routing wins at every h; the gap narrows at h=3 (compute dominates, ~15% lower than baselines)")
	return nil
}

func runFig16(w io.Writer, sc Scale) error {
	e, _ := Get("fig16")
	header(w, e)
	datasets := []gen.Dataset{gen.Memetracker, gen.Friendster}
	graphs := make([]*graphT, len(datasets))
	workloads := make([][]queryT, len(datasets))
	loads := make([]func() error, len(datasets))
	for i, d := range datasets {
		i, d := i, d
		loads[i] = func() error {
			g, err := loadPreset(d, sc)
			if err != nil {
				return err
			}
			graphs[i] = g
			workloads[i] = workload(g, sc, 2, 2)
			return nil
		}
	}
	if err := runCells(loads); err != nil {
		return err
	}
	reps, err := policyGrid(len(datasets), fig8Policies, func(row int, policy core.Policy) (*core.Report, error) {
		return runPolicy(graphs[row], sysConfig(policy, sc), workloads[row])
	})
	if err != nil {
		return err
	}
	for i, d := range datasets {
		t := metrics.NewTable("policy", "response-time", "hit-rate")
		for j, policy := range fig8Policies {
			rep := reps[i][j]
			t.AddRow(policyLabel(policy), rep.MeanResponse, fmt.Sprintf("%.3f", rep.HitRate))
		}
		fmt.Fprintf(w, "-- %s --\n%s", d, t.String())
	}
	fmt.Fprintln(w, "paper: Memetracker mirrors WebGraph (baselines -30% vs no-cache, smart -10% more);")
	fmt.Fprintln(w, "       Friendster's huge 2-hop neighbourhoods shrink all caching gains (~7% + ~3%)")
	return nil
}
