package experiments

import (
	"fmt"
	"io"

	"repro/internal/gen"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID: "fig14", Paper: "Figure 14",
		Desc: "response time and cache hits/misses for r-hop hotspots (r=1,2), 2-hop traversals",
		Run:  runFig14,
	})
	register(Experiment{
		ID: "fig15", Paper: "Figure 15",
		Desc: "response time for h-hop traversals (h=1,2,3), 2-hop hotspots",
		Run:  runFig15,
	})
	register(Experiment{
		ID: "fig16", Paper: "Figure 16",
		Desc: "response time on Memetracker and Friendster",
		Run:  runFig16,
	})
}

func runFig14(w io.Writer, sc Scale) error {
	e, _ := Get("fig14")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	for _, r := range []int{1, 2} {
		qs := workload(g, sc, r, 2)
		t := metrics.NewTable("policy", "response-time", "cache-hits", "cache-misses", "hit-rate")
		for _, policy := range fig8Policies {
			rep, err := runPolicy(g, sysConfig(policy, sc), qs)
			if err != nil {
				return err
			}
			t.AddRow(policyLabel(policy), rep.MeanResponse, rep.CacheHits, rep.CacheMisses,
				fmt.Sprintf("%.3f", rep.HitRate))
		}
		fmt.Fprintf(w, "-- %d-hop hotspot, 2-hop traversal --\n%s", r, t.String())
	}
	fmt.Fprintln(w, "paper: smart routings beat baselines for both radii via more cache hits")
	return nil
}

func runFig15(w io.Writer, sc Scale) error {
	e, _ := Get("fig15")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	for _, h := range []int{1, 2, 3} {
		qs := workload(g, sc, 2, h)
		t := metrics.NewTable("policy", "response-time", "hit-rate")
		for _, policy := range fig8Policies {
			rep, err := runPolicy(g, sysConfig(policy, sc), qs)
			if err != nil {
				return err
			}
			t.AddRow(policyLabel(policy), rep.MeanResponse, fmt.Sprintf("%.3f", rep.HitRate))
		}
		fmt.Fprintf(w, "-- 2-hop hotspot, %d-hop traversal --\n%s", h, t.String())
	}
	fmt.Fprintln(w, "paper: smart routing wins at every h; the gap narrows at h=3 (compute dominates, ~15% lower than baselines)")
	return nil
}

func runFig16(w io.Writer, sc Scale) error {
	e, _ := Get("fig16")
	header(w, e)
	for _, d := range []gen.Dataset{gen.Memetracker, gen.Friendster} {
		g, err := loadPreset(d, sc)
		if err != nil {
			return err
		}
		qs := workload(g, sc, 2, 2)
		t := metrics.NewTable("policy", "response-time", "hit-rate")
		for _, policy := range fig8Policies {
			rep, err := runPolicy(g, sysConfig(policy, sc), qs)
			if err != nil {
				return err
			}
			t.AddRow(policyLabel(policy), rep.MeanResponse, fmt.Sprintf("%.3f", rep.HitRate))
		}
		fmt.Fprintf(w, "-- %s --\n%s", d, t.String())
	}
	fmt.Fprintln(w, "paper: Memetracker mirrors WebGraph (baselines -30% vs no-cache, smart -10% more);")
	fmt.Fprintln(w, "       Friendster's huge 2-hop neighbourhoods shrink all caching gains (~7% + ~3%)")
	return nil
}
