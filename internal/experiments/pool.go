package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the worker count runCells uses. 1 (the default) keeps the
// historical strictly-serial execution; anything higher fans independent
// cells out over a bounded pool. Atomic because experiment runners may
// themselves execute concurrently (the smoke tests run them in parallel).
var parallelism atomic.Int32

func init() { parallelism.Store(1) }

// SetParallelism sets the worker count for independent experiment cells.
// n <= 0 selects GOMAXPROCS. Determinism does not depend on the setting:
// every cell owns a private System/Timeline and writes only its own result
// slot, so reports are bit-identical at any worker count.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the current worker count.
func Parallelism() int { return int(parallelism.Load()) }

// runCells executes independent experiment cells — each a closure that
// stores its result into its own pre-assigned slot — on the configured
// worker pool. Cells must not share mutable state; each owns a private
// System/Timeline, which makes the fan-out race-free by construction.
// Result ordering is deterministic because slots are indexed, and the
// returned error is the lowest-indexed one so parallel runs fail the same
// way serial runs do.
func runCells(cells []func() error) error {
	w := Parallelism()
	if w > len(cells) {
		w = len(cells)
	}
	if w <= 1 {
		for _, cell := range cells {
			if err := cell(); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(cells))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Stop claiming new cells once any cell has failed. Claims are
			// monotonic in index, so the lowest-indexed erroring cell is
			// always already claimed when the flag trips — the error
			// returned matches serial execution exactly.
			for !failed.Load() {
				j := int(next.Add(1)) - 1
				if j >= len(cells) {
					return
				}
				if errs[j] = cells[j](); errs[j] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
