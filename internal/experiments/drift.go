package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/simnet"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID: "drift", Paper: "design (§1)",
		Desc: "hotspot workload whose center moves mid-run: adaptive placement vs static vs full re-load, windowed goodput after the drift",
		Run:  runDrift,
	})
}

// The drift cells share one locality-sensitive deployment: a small cache
// (so reads actually reach the storage tier), a StorageAffinity cost
// model (so where a record lives matters), and the smart-routing policy
// (so each hotspot's queries concentrate on one processor — the reader
// locality the placement subsystem feeds on).
const (
	// driftAffinity multiplies the cost of a fetch served by a storage
	// slot other than the reading processor's near slot.
	driftAffinity = 4.0
	// driftCacheBytes keeps the processor caches small enough that the
	// hotspot working set never fully fits: the workload keeps reading
	// from storage, which is what placement can speed up.
	driftCacheBytes = 1 << 10
	// driftBudget bounds the bytes the adaptive cell may migrate per
	// planning cycle — the knob that keeps a migration storm off the
	// query path. Deliberately smaller than the hot set, so convergence
	// takes several cycles and the bound is visibly doing work. The
	// re-load cell runs unbounded.
	driftBudget = 8 << 10
	// driftMinReads is the planner heat floor, sized to the per-window
	// read counts of the quick-scale workload (the default of 16 is
	// tuned for long-running deployments, not a windowed experiment).
	driftMinReads = 2
	// driftRepeat multiplies Scale.PerHotspot into the per-vertex read
	// repetition count — hotspots are hot because the same vertices are
	// read over and over.
	driftRepeat = 4
	// driftWindows is how many goodput windows each phase is split into;
	// the adaptive cell runs one planning cycle at each boundary.
	driftWindows = 6
	// driftTail is how many final windows average into the steady-state
	// goodput each cell is judged on.
	driftTail = 2
)

// driftCell parameterises one column of the comparison.
type driftCell struct {
	name string
	// budget is the per-cycle migration budget (<= 0 unbounded).
	budget int64
	// ticks runs a planning cycle at every window boundary (the online
	// adaptive mode). False = the placement never changes.
	ticks bool
	// oracle replays the post-drift workload once unmeasured and then
	// migrates with no budget until quiescent before measuring — the
	// offline "re-load the graph with perfect knowledge" upper bound.
	oracle bool
}

// driftMeasure is one cell's outcome.
type driftMeasure struct {
	Windows []float64                 `json:"windows_goodput_qps"`
	Tail    float64                   `json:"tail_goodput_qps"`
	Moved   metrics.PlacementCounters `json:"placement"`
}

// driftReport is the machine-readable artifact (BENCH_drift.json).
type driftReport struct {
	Experiment      string                  `json:"experiment"`
	Nodes           int                     `json:"nodes"`
	Queries         int                     `json:"queries_per_phase"`
	Affinity        float64                 `json:"storage_affinity"`
	BudgetBytes     int64                   `json:"budget_bytes_per_cycle"`
	Cells           map[string]driftMeasure `json:"cells"`
	Recovery        float64                 `json:"recovery_fraction"`
	BudgetRespected bool                    `json:"budget_respected"`
}

// runDrift measures what the adaptive-placement subsystem is for. Phase A
// runs a hotspot workload long enough for any placement to settle; then
// the hotspot centers move (phase B, a fresh workload seed) and the same
// deployment keeps serving. Three cells differ only in what placement may
// do: "static" never migrates (records stay where the hash put them),
// "adaptive" runs the online planner — bounded bytes per cycle, one cycle
// per window — and "re-load" is the offline oracle that repartitions for
// phase B with no budget before measurement begins. Goodput (queries per
// virtual second) is measured per window across phase B; the headline is
// the recovery fraction — how much of the static→re-load goodput gap the
// bounded online planner closes by the final windows.
func runDrift(w io.Writer, sc Scale) error {
	rep, err := driftRun(w, sc)
	if err != nil {
		return err
	}
	return writeBenchJSON(w, "drift", rep)
}

// driftRun executes the three cells and returns the machine-readable
// report (the runner wraps it; the acceptance test asserts on it).
func driftRun(w io.Writer, sc Scale) (driftReport, error) {
	e, _ := Get("drift")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return driftReport{}, err
	}
	// The drifting workload: repeated 1-hop reads pinned at hotspot
	// vertices. Pinning (rather than sampling a region) is what makes a
	// workload placement *can* serve: every repetition reheats the same
	// records, so the planner sees a clear, dominant reader per record. A
	// different seed for phase B = the hotspots move.
	qsA := driftWorkload(g, sc, sc.Seed+1)
	qsB := driftWorkload(g, sc, sc.Seed+101)

	cells := []driftCell{
		{name: "static", ticks: false},
		{name: "adaptive", budget: driftBudget, ticks: true},
		{name: "re-load", budget: 0, oracle: true},
	}
	results := make([]driftMeasure, len(cells))
	work := make([]func() error, len(cells))
	for i, cell := range cells {
		i, cell := i, cell
		work[i] = func() error {
			m, err := runDriftCell(g, sc, cell, qsA, qsB)
			if err != nil {
				return fmt.Errorf("%s: %w", cell.name, err)
			}
			results[i] = m
			return nil
		}
	}
	if err := runCells(work); err != nil {
		return driftReport{}, err
	}

	t := metrics.NewTable("cell", "first-win q/s", "last-win q/s", "tail q/s", "moved", "moved-KiB", "cycles")
	for i, cell := range cells {
		m := results[i]
		t.AddRow(cell.name,
			fmt.Sprintf("%.0f", m.Windows[0]),
			fmt.Sprintf("%.0f", m.Windows[len(m.Windows)-1]),
			fmt.Sprintf("%.0f", m.Tail),
			m.Moved.Moved,
			fmt.Sprintf("%.1f", float64(m.Moved.MovedBytes)/1024),
			m.Moved.Cycles)
	}
	fmt.Fprint(w, t.String())

	static, adaptive, reload := results[0], results[1], results[2]
	recovery := 1.0
	if gap := reload.Tail - static.Tail; gap > 0 {
		recovery = (adaptive.Tail - static.Tail) / gap
	}
	// The budget bound is structural: the planner may never move more than
	// budget bytes per cycle, so the aggregate must obey cycles × budget.
	// A violation is a bug, not a measurement.
	pc := adaptive.Moved
	budgetOK := pc.MovedBytes <= pc.Cycles*driftBudget
	fmt.Fprintf(w, "recovery fraction: %.2f of the static→re-load goodput gap closed by the\n", recovery)
	fmt.Fprintf(w, "bounded online planner (target >= 0.90); adaptive migrated %d KiB over %d\n", pc.MovedBytes/1024, pc.Cycles)
	fmt.Fprintf(w, "cycles against a %d KiB/cycle budget\n", int64(driftBudget)/1024)
	if !budgetOK {
		return driftReport{}, fmt.Errorf("budget violated: moved %d bytes over %d cycles with a %d-byte budget", pc.MovedBytes, pc.Cycles, int64(driftBudget))
	}

	rep := driftReport{
		Experiment:  "drift",
		Nodes:       g.NumNodes(),
		Queries:     len(qsB),
		Affinity:    driftAffinity,
		BudgetBytes: driftBudget,
		Cells: map[string]driftMeasure{
			"static": static, "adaptive": adaptive, "reload": reload,
		},
		Recovery:        recovery,
		BudgetRespected: budgetOK,
	}
	return rep, nil
}

// runDriftCell runs one cell: phase A to steady state, the drift, then
// phase B in measured goodput windows. Every result is verified against
// the in-memory oracle as it streams — a placement move that corrupted an
// answer would fail the experiment, not skew it.
func runDriftCell(g *graphT, sc Scale, cell driftCell, qsA, qsB []queryT) (driftMeasure, error) {
	cfg := sysConfig(core.PolicyEmbed, sc)
	// The Ethernet deployment (gRouting-E): with a 90µs RTT the round-trip
	// legs dominate a frontier fetch, which is the regime where the far
	// penalty — and therefore placement — matters most.
	cfg.Network = simnet.Ethernet()
	// A huge load divisor makes the routing pure-locality and therefore
	// *stable*: the planner chases each record's dominant reader, and a
	// load-adaptive router that reshuffles readers under its feet would
	// invalidate placements as fast as they are made. (Production deployments
	// balance this trade-off; the experiment isolates the placement effect.)
	cfg.LoadFactor = 1e9
	cfg.CacheBytes = driftCacheBytes
	cfg.StorageAffinity = driftAffinity
	cfg.AdaptivePlacement = true
	cfg.PlacementBudget = cell.budget
	cfg.PlacementMinReads = driftMinReads
	sys, err := core.NewSystem(g, cfg)
	if err != nil {
		return driftMeasure{}, err
	}
	ses, err := sys.NewSession()
	if err != nil {
		return driftMeasure{}, err
	}
	run := func(batch []queryT) error {
		for _, q := range batch {
			res, _, err := ses.Execute(q)
			if err != nil {
				return err
			}
			if res != answer(g, q) {
				return fmt.Errorf("query on node %d answered wrongly under placement churn", q.Node)
			}
		}
		return nil
	}

	// Phase A: the workload every placement gets to settle on.
	for _, win := range driftSplit(qsA, driftWindows) {
		if err := run(win); err != nil {
			return driftMeasure{}, err
		}
		if cell.ticks {
			ses.PlacementTick()
		}
	}
	// The oracle cell replays phase B once unmeasured purely to observe
	// the new heat, then migrates unbounded until quiescent: the state a
	// full offline re-load with perfect workload knowledge would produce.
	if cell.oracle {
		if err := run(qsB); err != nil {
			return driftMeasure{}, err
		}
		for i := 0; i < 8; i++ {
			if ses.PlacementTick() == 0 {
				break
			}
		}
	}

	// Phase B, measured: the hotspots have moved.
	var m driftMeasure
	for _, win := range driftSplit(qsB, driftWindows) {
		t0 := ses.Now()
		if err := run(win); err != nil {
			return driftMeasure{}, err
		}
		elapsed := ses.Now() - t0
		if cell.ticks {
			ses.PlacementTick()
		}
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		m.Windows = append(m.Windows, float64(len(win))/elapsed.Seconds())
	}
	for _, gp := range m.Windows[len(m.Windows)-driftTail:] {
		m.Tail += gp
	}
	m.Tail /= driftTail
	m.Moved = ses.Snapshot().Placement
	return m, nil
}

// driftWorkload builds one phase of the drifting workload: sc.Hotspots
// hot vertices (sampled by seed — a new seed moves them), each read with
// a 1-hop NeighborAgg driftRepeat×sc.PerHotspot times. Repetitions are
// interleaved round-robin across the hotspots so every measurement window
// reads every hotspot — goodput windows stay comparable and the planner's
// heat refreshes every cycle.
func driftWorkload(g *graphT, sc Scale, seed int64) []queryT {
	rng := xrand.New(seed)
	var eligible []graph.NodeID
	for _, u := range g.Nodes() {
		if g.Degree(u) > 0 {
			eligible = append(eligible, u)
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	seen := make(map[graph.NodeID]bool, sc.Hotspots)
	centers := make([]graph.NodeID, 0, sc.Hotspots)
	for len(centers) < sc.Hotspots {
		c := eligible[rng.Intn(len(eligible))]
		if !seen[c] {
			seen[c] = true
			centers = append(centers, c)
		}
		if len(seen) == len(eligible) {
			break
		}
	}
	reps := driftRepeat * sc.PerHotspot
	qs := make([]queryT, 0, reps*len(centers))
	for r := 0; r < reps; r++ {
		for _, c := range centers {
			qs = append(qs, queryT{Type: query.NeighborAgg, Node: c, Hops: 1, Dir: graph.Out})
		}
	}
	return qs
}

// driftSplit cuts qs into n contiguous, near-equal windows (fewer when
// len(qs) < n; never an empty window).
func driftSplit(qs []queryT, n int) [][]queryT {
	if n < 1 {
		n = 1
	}
	if n > len(qs) {
		n = len(qs)
	}
	out := make([][]queryT, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(qs)/n, (i+1)*len(qs)/n
		if lo < hi {
			out = append(out, qs[lo:hi])
		}
	}
	return out
}
