package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/landmark"
	"repro/internal/metrics"
	"repro/internal/query"
)

func init() {
	register(Experiment{
		ID: "knn", Paper: "beyond the paper (embedding providers)",
		Desc: "k-nearest-by-embedding under every routing policy: one precomputed embedding shared through the provider interface, every answer checked against the exact oracle",
		Run:  runKNN,
	})
}

// knnK is how many neighbours each KNearest query asks for.
const knnK = 8

// knnBudget is the per-partition visit budget the mix's BoundedReach
// queries carry (same reasoning as the patterns experiment).
const knnBudget = 8

// knnPolicies: the hash baselines and the two smart schemes. Only
// PolicyEmbed builds an embedding on its own; the shared provider gives
// the other three identical coordinates, so KNearest answers — and the
// oracle they are checked against — are the same in every cell. What
// differs across cells is routing: how often a query's candidate
// neighbourhood is already cached on the processor it lands on.
var knnPolicies = []core.Policy{core.PolicyHash, core.PolicyStableHash, core.PolicyLandmark, core.PolicyEmbed}

// knnMeasure is one policy's outcome on the KNN-heavy mixed run.
type knnMeasure struct {
	GoodputQPS float64 `json:"goodput_qps"`
	HitRate    float64 `json:"hit_rate"`
	Subtasks   int64   `json:"subtasks"`
	// NonEmpty counts KNearest answers that returned at least one
	// neighbour (an anchor with an embedded, non-trivial neighbourhood).
	NonEmpty int `json:"non_empty"`
}

// knnReport is the machine-readable artifact (BENCH_knn.json).
type knnReport struct {
	Experiment string                `json:"experiment"`
	Nodes      int                   `json:"nodes"`
	Queries    int                   `json:"queries"`
	KNNQueries int                   `json:"knn_queries"`
	K          int                   `json:"k"`
	Dims       int                   `json:"dims"`
	Cells      map[string]knnMeasure `json:"cells"`
	Verified   bool                  `json:"verified"`
}

// runKNN compares the routing policies on the MixedTypesKNN workload —
// every sixth query a KNearest — with one precomputed embedding shared
// across all cells via the FileProvider, exactly how a deployment shares
// an artifact between transports. Candidate generation runs distributed
// (the ball BFS on the anchor's processor), the exact re-rank at the
// coordinator, and every answer of every kind is verified against the
// in-memory oracle (AnswerKNN for the new class) as it streams.
func runKNN(w io.Writer, sc Scale) error {
	rep, err := knnRun(w, sc)
	if err != nil {
		return err
	}
	return writeBenchJSON(w, "knn", rep)
}

// knnRun executes the per-policy cells and returns the machine-readable
// report (the runner wraps it; tests assert on it).
func knnRun(w io.Writer, sc Scale) (knnReport, error) {
	e, _ := Get("knn")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return knnReport{}, err
	}

	// One embedding for every cell, built once with the run's smart-routing
	// parameters and shared through the provider interface. NewFileProvider
	// wraps it without touching disk; a deployment would WriteEmbeddingFile
	// and point groutingd -embed-file at the artifact.
	lms := landmark.Select(g, sc.Landmarks, sc.MinSep)
	idx := landmark.BuildIndex(g, lms, 0)
	shared, err := embed.Build(g, idx, embed.Options{
		Dimensions: sc.Dims, Seed: sc.Seed, NM: embed.NMOptions{MaxIter: sc.NMIter},
	})
	if err != nil {
		return knnReport{}, err
	}
	provider := embed.NewFileProvider(shared)

	qs := query.Hotspot(g, query.WorkloadSpec{
		NumHotspots:       sc.Hotspots,
		QueriesPerHotspot: sc.PerHotspot,
		R:                 2,
		H:                 2,
		Types:             query.MixedTypesKNN,
		VisitBudget:       knnBudget,
		K:                 knnK,
		Seed:              sc.Seed + 1,
	})
	knnQ := 0
	for _, q := range qs {
		if q.Type == query.KNearest {
			knnQ++
		}
	}
	if knnQ == 0 {
		return knnReport{}, fmt.Errorf("the mix generated no KNearest queries")
	}

	results := make([]knnMeasure, len(knnPolicies))
	cells := make([]func() error, len(knnPolicies))
	for i, policy := range knnPolicies {
		i, policy := i, policy
		cells[i] = func() error {
			m, err := runKNNCell(g, sc, policy, provider, shared, qs)
			if err != nil {
				return fmt.Errorf("%v: %w", policy, err)
			}
			results[i] = m
			return nil
		}
	}
	if err := runCells(cells); err != nil {
		return knnReport{}, err
	}

	t := metrics.NewTable("policy", "goodput q/s", "hit%", "subtasks", "non-empty")
	cellMap := make(map[string]knnMeasure, len(knnPolicies))
	for i, policy := range knnPolicies {
		m := results[i]
		t.AddRow(policyLabel(policy),
			fmt.Sprintf("%.0f", m.GoodputQPS),
			fmt.Sprintf("%.1f", 100*m.HitRate),
			m.Subtasks, m.NonEmpty)
		cellMap[policyLabel(policy)] = m
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "%d of %d queries are KNearest (K=%d, %d-dim shared embedding); candidate\n",
		knnQ, len(qs), knnK, shared.D)
	fmt.Fprintln(w, "generation runs on the anchor's processor, the exact re-rank at the router.")
	fmt.Fprintln(w, "All cells rank with the same provider-shared coordinates, so the per-policy")
	fmt.Fprintln(w, "columns isolate routing quality, not embedding quality")

	return knnReport{
		Experiment: "knn",
		Nodes:      g.NumNodes(),
		Queries:    len(qs),
		KNNQueries: knnQ,
		K:          knnK,
		Dims:       shared.D,
		Cells:      cellMap,
		Verified:   true,
	}, nil
}

// runKNNCell runs the KNN-heavy mix on one policy's session with the
// shared provider plugged in, verifying every answer against the oracle.
func runKNNCell(g *graphT, sc Scale, policy core.Policy, provider embed.Embedder, shared *embed.Embedding, qs []queryT) (knnMeasure, error) {
	cfg := sysConfig(policy, sc)
	cfg.EmbedProvider = provider
	sys, err := core.NewSystem(g, cfg)
	if err != nil {
		return knnMeasure{}, err
	}
	ses, err := sys.NewSession()
	if err != nil {
		return knnMeasure{}, err
	}
	var m knnMeasure
	t0 := ses.Now()
	for _, q := range qs {
		res, _, err := ses.Execute(q)
		if err != nil {
			return knnMeasure{}, err
		}
		if q.Type == query.KNearest {
			if res != query.AnswerKNN(g, shared, q) {
				return knnMeasure{}, fmt.Errorf("KNearest query on node %d disagrees with the oracle", q.Node)
			}
			if res.Count > 0 {
				m.NonEmpty++
			}
		} else if res != answer(g, q) {
			return knnMeasure{}, fmt.Errorf("%v query on node %d answered wrongly", q.Type, q.Node)
		}
	}
	elapsed := ses.Now() - t0
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	m.GoodputQPS = float64(len(qs)) / elapsed.Seconds()
	h, miss := ses.Stats()
	if touched := h + miss; touched > 0 {
		m.HitRate = float64(h) / float64(touched)
	}
	m.Subtasks, _, _ = ses.MultiStats()
	if m.Subtasks == 0 {
		return m, fmt.Errorf("no multi-anchor subtasks executed — KNearest is not reaching the distributed path")
	}
	if m.NonEmpty == 0 {
		return m, fmt.Errorf("every KNearest answer came back empty — the embedding is not reaching the ranker")
	}
	return m, nil
}
