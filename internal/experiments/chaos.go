package experiments

import (
	"fmt"
	"io"

	"repro/internal/chaos"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID: "chaos", Paper: "design (§1)",
		Desc: "run the built-in chaos scenarios on the virtual-time engine: scripted kills, splits, slow links and scale events against the invariants",
		Run:  runChaos,
	})
}

// runChaos executes every built-in chaos scenario on the simnet harness
// and renders one row per run. Unlike the other experiments this one is
// pass/fail rather than a measurement sweep: the scenarios carry their own
// invariants (zero wrong answers, goodput floors, recovery deadlines,
// bounded re-replication), and any violation fails the experiment. Scale
// is ignored — each scenario fixes its own topology and workload so the
// invariant thresholds stay meaningful.
func runChaos(w io.Writer, _ Scale) error {
	e, _ := Get("chaos")
	header(w, e)
	t := metrics.NewTable("scenario", "verdict", "answered", "wrong", "unavail", "goodput-ratio", "max-recovery", "rejoin%")
	violations := 0
	for _, name := range chaos.BuiltinNames() {
		sc := chaos.Builtin(name)
		res, err := chaos.Run(sc, func() chaos.Harness { return chaos.NewSimHarness() })
		if err != nil {
			return fmt.Errorf("chaos %s: %w", name, err)
		}
		verdict := "PASS"
		if !res.Passed() {
			verdict = "FAIL"
			violations += len(res.Violations)
		}
		rec, rejoin := "-", "-"
		if res.MaxRecovery >= 0 {
			rec = fmt.Sprintf("%d", res.MaxRecovery)
		}
		if res.RejoinFraction >= 0 {
			rejoin = fmt.Sprintf("%.1f", 100*res.RejoinFraction)
		}
		t.AddRow(name, verdict,
			fmt.Sprintf("%d/%d", res.Answered, res.Total),
			res.Wrong, res.Unavailable,
			fmt.Sprintf("%.2f", res.GoodputRatio), rec, rejoin)
		for _, v := range res.Violations {
			fmt.Fprintf(w, "  %s VIOLATION: %s\n", name, v)
		}
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "each scenario scripts faults at workload-progress points and checks its own")
	fmt.Fprintln(w, "invariants; rejoin% is a warm restart's re-replication relative to a full")
	fmt.Fprintln(w, "shard copy (the WAL+snapshot recovery keeps it to the crash-window delta)")
	if violations > 0 {
		return fmt.Errorf("%d invariant violation(s) across the chaos scenarios", violations)
	}
	return nil
}
