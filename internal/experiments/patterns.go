package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/query"
)

func init() {
	register(Experiment{
		ID: "patterns", Paper: "beyond the paper (ROADMAP item 3)",
		Desc: "mixed multi-anchor workload (PatternMatch + BoundedReach + the classic three): per-policy goodput and subtask fan-out, per-partition visit budget asserted",
		Run:  runPatterns,
	})
}

// patternsBudget is the per-partition visit budget every BoundedReach
// query in the mix carries. Small enough that budgeted subtasks genuinely
// truncate and relaunch (multi-wave composition), large enough that most
// targets resolve within a few waves.
const patternsBudget = 8

// patternsPolicies: the hash baselines and the two smart schemes — every
// strategy routes multi-anchor subtasks through the same per-anchor
// default hook, so the comparison isolates what anchor locality is worth.
var patternsPolicies = []core.Policy{core.PolicyHash, core.PolicyStableHash, core.PolicyLandmark, core.PolicyEmbed}

// patternsMeasure is one policy's outcome on the mixed multi-anchor run.
type patternsMeasure struct {
	GoodputQPS float64 `json:"goodput_qps"`
	HitRate    float64 `json:"hit_rate"`
	Subtasks   int64   `json:"subtasks"`
	Waves      int64   `json:"waves"`
	MaxVisited int     `json:"max_visited"`
}

// patternsReport is the machine-readable artifact (BENCH_patterns.json).
type patternsReport struct {
	Experiment      string                     `json:"experiment"`
	Nodes           int                        `json:"nodes"`
	Queries         int                        `json:"queries"`
	MultiAnchor     int                        `json:"multi_anchor_queries"`
	VisitBudget     int                        `json:"visit_budget"`
	Cells           map[string]patternsMeasure `json:"cells"`
	BudgetRespected bool                       `json:"budget_respected"`
}

// runPatterns compares the routing policies on a mixed workload where two
// of five queries are multi-anchor: PatternMatch fans each template out as
// per-anchor candidate subtasks joined at the session, and BoundedReach
// composes budget-truncated partial answers across waves. Multi-anchor
// queries execute through sessions (they need wave composition, which the
// one-shot RunWorkload path deliberately rejects), every answer is checked
// against the in-memory oracle as it streams, and the per-partition visit
// budget is asserted structurally: the largest per-subtask visit count any
// policy observed must stay within the budget.
func runPatterns(w io.Writer, sc Scale) error {
	rep, err := patternsRun(w, sc)
	if err != nil {
		return err
	}
	return writeBenchJSON(w, "patterns", rep)
}

// patternsRun executes the per-policy cells and returns the
// machine-readable report (the runner wraps it; tests assert on it).
func patternsRun(w io.Writer, sc Scale) (patternsReport, error) {
	e, _ := Get("patterns")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return patternsReport{}, err
	}
	qs := query.Hotspot(g, query.WorkloadSpec{
		NumHotspots:       sc.Hotspots,
		QueriesPerHotspot: sc.PerHotspot,
		R:                 2,
		H:                 2,
		Types:             query.MixedTypes,
		VisitBudget:       patternsBudget,
		Seed:              sc.Seed + 1,
	})
	multi := 0
	for _, q := range qs {
		if q.Type.MultiAnchor() {
			multi++
		}
	}

	results := make([]patternsMeasure, len(patternsPolicies))
	cells := make([]func() error, len(patternsPolicies))
	for i, policy := range patternsPolicies {
		i, policy := i, policy
		cells[i] = func() error {
			m, err := runPatternsCell(g, sc, policy, qs)
			if err != nil {
				return fmt.Errorf("%v: %w", policy, err)
			}
			results[i] = m
			return nil
		}
	}
	if err := runCells(cells); err != nil {
		return patternsReport{}, err
	}

	t := metrics.NewTable("policy", "goodput q/s", "hit%", "subtasks", "waves", "max-visited")
	budgetOK := true
	cellMap := make(map[string]patternsMeasure, len(patternsPolicies))
	for i, policy := range patternsPolicies {
		m := results[i]
		t.AddRow(policyLabel(policy),
			fmt.Sprintf("%.0f", m.GoodputQPS),
			fmt.Sprintf("%.1f", 100*m.HitRate),
			m.Subtasks, m.Waves, m.MaxVisited)
		if m.MaxVisited > patternsBudget {
			budgetOK = false
		}
		cellMap[policyLabel(policy)] = m
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "%d of %d queries are multi-anchor; every BoundedReach subtask is capped at\n", multi, len(qs))
	fmt.Fprintf(w, "%d node visits (max-visited is the largest any subtask used — a value above\n", patternsBudget)
	fmt.Fprintln(w, "the budget is a bug, not a measurement). waves > multi-anchor queries shows")
	fmt.Fprintln(w, "partial answers genuinely relaunching; the smart schemes route each anchor's")
	fmt.Fprintln(w, "subtask to the processor already holding its neighbourhood")
	if !budgetOK {
		return patternsReport{}, fmt.Errorf("a subtask exceeded the per-partition visit budget of %d", patternsBudget)
	}

	return patternsReport{
		Experiment:      "patterns",
		Nodes:           g.NumNodes(),
		Queries:         len(qs),
		MultiAnchor:     multi,
		VisitBudget:     patternsBudget,
		Cells:           cellMap,
		BudgetRespected: budgetOK,
	}, nil
}

// runPatternsCell runs the mixed workload on one policy's session,
// verifying every answer against the oracle.
func runPatternsCell(g *graphT, sc Scale, policy core.Policy, qs []queryT) (patternsMeasure, error) {
	sys, err := core.NewSystem(g, sysConfig(policy, sc))
	if err != nil {
		return patternsMeasure{}, err
	}
	ses, err := sys.NewSession()
	if err != nil {
		return patternsMeasure{}, err
	}
	t0 := ses.Now()
	for _, q := range qs {
		res, _, err := ses.Execute(q)
		if err != nil {
			return patternsMeasure{}, err
		}
		if res != answer(g, q) {
			return patternsMeasure{}, fmt.Errorf("%v query on node %d answered wrongly", q.Type, q.Node)
		}
	}
	elapsed := ses.Now() - t0
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	var m patternsMeasure
	m.GoodputQPS = float64(len(qs)) / elapsed.Seconds()
	h, miss := ses.Stats()
	if touched := h + miss; touched > 0 {
		m.HitRate = float64(h) / float64(touched)
	}
	m.Subtasks, m.Waves, m.MaxVisited = ses.MultiStats()
	if m.Subtasks == 0 || m.Waves == 0 {
		return m, fmt.Errorf("no multi-anchor subtasks executed — the mix is not reaching the new path")
	}
	return m, nil
}
