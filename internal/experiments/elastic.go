package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/query"
)

// answer is the in-memory oracle (shared with the verification tests).
func answer(g *graphT, q queryT) query.Result { return query.Answer(g, q) }

func init() {
	register(Experiment{
		ID: "elastic", Paper: "design (§1)",
		Desc: "live scale-out/scale-in 4→8→4 mid-workload: cache-hit dip and recovery per policy",
		Run:  runElastic,
	})
}

// elasticPolicies: the modulo-hash baseline, its stable-remap replacement,
// and the two smart schemes — the policies whose cache behaviour under a
// topology change differs most.
var elasticPolicies = []core.Policy{core.PolicyHash, core.PolicyStableHash, core.PolicyLandmark, core.PolicyEmbed}

// elasticRow is one policy's measurements across the 4→8→4 run, paired
// with a static-topology control session that executes the identical
// query sequence — the dip is the gap between the two at the same window.
type elasticRow struct {
	warm   float64 // control: hit rate over a replay window with no topology change
	outDip float64 // first window after scaling 4→8
	outRec float64 // last window of the 8-processor phase
	inDip  float64 // first window after scaling 8→4
	inRec  float64 // last window of the final 4-processor phase
	epoch  uint64
}

// elasticMeasure is one cell of the machine-readable artifact.
type elasticMeasure struct {
	WarmHit     float64 `json:"warm_hit"`
	OutDip      float64 `json:"out_dip"`
	OutRecovery float64 `json:"out_recovery"`
	InDip       float64 `json:"in_dip"`
	InRecovery  float64 `json:"in_recovery"`
	FinalEpoch  uint64  `json:"final_epoch"`
}

// elasticReport is the machine-readable artifact (BENCH_elastic.json).
type elasticReport struct {
	Experiment string                    `json:"experiment"`
	Nodes      int                       `json:"nodes"`
	Queries    int                       `json:"queries"`
	Cells      map[string]elasticMeasure `json:"cells"`
}

// runElastic exercises the paper's core elasticity claim — processors can
// be added and removed without repartitioning the graph — and measures
// what it costs: the per-policy cache-hit-rate dip right after each
// topology change and how fully it recovers, on one session whose caches
// persist across the transitions. Modulo hashing reshuffles nearly the
// whole node space on a size change, so its dip is the deepest; the
// stable-remap hash moves only ~1/N of the keys; the smart schemes
// re-derive their assignments for the new tier.
func runElastic(w io.Writer, sc Scale) error {
	e, _ := Get("elastic")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	rows := make([]elasticRow, len(elasticPolicies))
	cells := make([]func() error, len(elasticPolicies))
	for i, policy := range elasticPolicies {
		i, policy := i, policy
		cells[i] = func() error {
			row, err := runElasticPolicy(g, sc, policy, qs)
			if err != nil {
				return fmt.Errorf("%v: %w", policy, err)
			}
			rows[i] = row
			return nil
		}
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("policy", "warm-hit%", "out-dip%", "out-rec%", "in-dip%", "in-rec%", "epochs")
	for i, policy := range elasticPolicies {
		r := rows[i]
		t.AddRow(policyLabel(policy),
			fmt.Sprintf("%.1f", 100*r.warm),
			fmt.Sprintf("%.1f", 100*r.outDip),
			fmt.Sprintf("%.1f", 100*r.outRec),
			fmt.Sprintf("%.1f", 100*r.inDip),
			fmt.Sprintf("%.1f", 100*r.inRec),
			r.epoch)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "warm-hit% is the static-topology control replaying the same window; the dip is the")
	fmt.Fprintln(w, "gap to it. expected: every policy survives both transitions with exact results;")
	fmt.Fprintln(w, "modulo Hash pays the deepest scale-in dip (a size change remaps almost every node),")
	fmt.Fprintln(w, "StableHash moves only ~1/N of the key space so the original members' caches still")
	fmt.Fprintln(w, "hit after scale-in, and the smart schemes re-derive assignments for the new count")

	rep := elasticReport{
		Experiment: "elastic",
		Nodes:      g.NumNodes(),
		Queries:    len(qs),
		Cells:      make(map[string]elasticMeasure, len(elasticPolicies)),
	}
	for i, policy := range elasticPolicies {
		r := rows[i]
		rep.Cells[policyLabel(policy)] = elasticMeasure{
			WarmHit: r.warm, OutDip: r.outDip, OutRecovery: r.outRec,
			InDip: r.inDip, InRecovery: r.inRec, FinalEpoch: r.epoch,
		}
	}
	return writeBenchJSON(w, "elastic", rep)
}

// runElasticPolicy runs one policy's 4→8→4 cell: warm up on 4 processors,
// scale out to 8 mid-workload, scale back in to 4, measuring the windowed
// cache hit rate right after each transition and at the end of each
// phase. A second, static-topology session on its own system executes the
// identical sequence as the control. Every result is verified against the
// oracle as it streams.
func runElasticPolicy(g *graphT, sc Scale, policy core.Policy, qs []queryT) (elasticRow, error) {
	newSession := func() (*core.System, *core.Session, error) {
		cfg := sysConfig(policy, sc)
		cfg.Processors = 4
		sys, err := core.NewSystem(g, cfg)
		if err != nil {
			return nil, nil, err
		}
		ses, err := sys.NewSession()
		if err != nil {
			return nil, nil, err
		}
		return sys, ses, nil
	}
	sys, ses, err := newSession()
	if err != nil {
		return elasticRow{}, err
	}
	_, control, err := newSession()
	if err != nil {
		return elasticRow{}, err
	}

	// The measurement window is a fifth of the workload; tiny test scales
	// degrade gracefully to single-query windows.
	win := len(qs) / 5
	if win < 1 {
		win = 1
	}
	end := len(qs) - win
	if end < win {
		end = win
	}
	rateOn := func(ses *core.Session, batch []queryT) (float64, error) {
		h0, m0 := ses.Stats()
		for _, q := range batch {
			res, _, err := ses.Execute(q)
			if err != nil {
				return 0, err
			}
			if res != answer(g, q) {
				return 0, fmt.Errorf("query on node %d answered wrongly across an epoch change", q.Node)
			}
		}
		h1, m1 := ses.Stats()
		touched := (h1 - h0) + (m1 - m0)
		if touched == 0 {
			return 0, nil
		}
		return float64(h1-h0) / float64(touched), nil
	}
	both := func(batch []queryT) (float64, error) {
		if _, err := rateOn(control, batch); err != nil {
			return 0, err
		}
		return rateOn(ses, batch)
	}

	var row elasticRow
	// Phase 1: 4 processors, cold start, both sessions identical.
	if _, err := both(qs); err != nil {
		return row, err
	}
	// Scale out 4→8 on the elastic system only, then replay the workload
	// against warm caches. The control's rate over the same first window
	// is the no-change baseline the dip compares against.
	for i := 0; i < 4; i++ {
		sys.AddProcessor()
	}
	if row.warm, err = rateOn(control, qs[:win]); err != nil {
		return row, err
	}
	if row.outDip, err = rateOn(ses, qs[:win]); err != nil {
		return row, err
	}
	if _, err := both(qs[win:end]); err != nil {
		return row, err
	}
	if row.outRec, err = both(qs[end:]); err != nil {
		return row, err
	}
	// Scale back in 8→4: drain the four joined members cleanly.
	for slot := 4; slot < 8; slot++ {
		if err := sys.DrainProcessor(slot); err != nil {
			return row, err
		}
	}
	if row.inDip, err = both(qs[:win]); err != nil {
		return row, err
	}
	if _, err := both(qs[win:end]); err != nil {
		return row, err
	}
	if row.inRec, err = both(qs[end:]); err != nil {
		return row, err
	}
	row.epoch = ses.Snapshot().Epoch
	return row, nil
}
