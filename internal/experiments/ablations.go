package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/partition"
)

func init() {
	register(Experiment{
		ID: "ablation-stealing", Paper: "Req 2 / Section 4.6",
		Desc: "query stealing on vs off for every routing policy",
		Run:  runAblationStealing,
	})
	register(Experiment{
		ID: "ablation-partition", Paper: "Section 2.3 claim",
		Desc: "storage-tier partitioning (hash vs LDG vs refined edge-cut) under smart routing",
		Run:  runAblationPartition,
	})
	register(Experiment{
		ID: "ablation-batch", Paper: "Section 2.3 (page-granularity transfer)",
		Desc: "frontier-batched multi-reads vs one round trip per key",
		Run:  runAblationBatch,
	})
	register(Experiment{
		ID: "ablation-failure", Paper: "Section 1 / 3.4.1 (fault tolerance)",
		Desc: "processor failures: queries divert to the next-best live processor",
		Run:  runAblationFailure,
	})
}

func runAblationStealing(w io.Writer, sc Scale) error {
	e, _ := Get("ablation-stealing")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	t := metrics.NewTable("policy", "throughput(stealing)", "throughput(no-steal)", "stolen", "gain")
	for _, policy := range fig8Policies {
		on := sysConfig(policy, sc)
		repOn, err := runPolicy(g, on, qs)
		if err != nil {
			return err
		}
		off := sysConfig(policy, sc)
		off.DisableStealing = true
		repOff, err := runPolicy(g, off, qs)
		if err != nil {
			return err
		}
		t.AddRow(policyLabel(policy), repOn.ThroughputQPS, repOff.ThroughputQPS,
			repOn.Stolen, fmt.Sprintf("%.2fx", repOn.ThroughputQPS/repOff.ThroughputQPS))
	}
	fmt.Fprintln(w, "expected: stealing helps skewed policies (hash, smart) most; next-ready is already balanced")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runAblationPartition(w io.Writer, sc Scale) error {
	e, _ := Get("ablation-partition")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)

	ldg := partition.LDG(g, 4, 0.1)
	refined := partition.LDG(g, 4, 0.1)
	partition.Refine(g, refined, 2, 0.1)

	placers := []struct {
		name string
		p    kvstore.Placer
		cut  float64
	}{
		{"murmur-hash", nil, partition.HashPartition(g, 4).CutFraction(g)},
		{"ldg-streaming", kvstore.TablePlacer{Assign: ldg.Of}, ldg.CutFraction(g)},
		{"ldg+refine", kvstore.TablePlacer{Assign: refined.Of}, refined.CutFraction(g)},
	}
	t := metrics.NewTable("storage-partitioning", "edge-cut", "Embed-response", "Embed-hit-rate", "NoCache-response")
	for _, pl := range placers {
		cfg := sysConfig(core.PolicyEmbed, sc)
		cfg.Placer = pl.p
		rep, err := runPolicy(g, cfg, qs)
		if err != nil {
			return err
		}
		nc := sysConfig(core.PolicyNoCache, sc)
		nc.Placer = pl.p
		repNC, err := runPolicy(g, nc, qs)
		if err != nil {
			return err
		}
		t.AddRow(pl.name, fmt.Sprintf("%.3f", pl.cut), rep.MeanResponse,
			fmt.Sprintf("%.3f", rep.HitRate), repNC.MeanResponse)
	}
	fmt.Fprintln(w, "expected: under smart routing the storage partitioning barely matters (the paper's core claim)")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runAblationFailure(w io.Writer, sc Scale) error {
	e, _ := Get("ablation-failure")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	t := metrics.NewTable("failed-processors", "Embed-throughput", "Embed-response", "diverted", "hit-rate")
	for _, nFail := range []int{0, 1, 2, 3} {
		cfg := sysConfig(core.PolicyEmbed, sc)
		for p := 0; p < nFail; p++ {
			cfg.FailedProcessors = append(cfg.FailedProcessors, p*2) // spread failures
		}
		rep, err := runPolicy(g, cfg, qs)
		if err != nil {
			return err
		}
		t.AddRow(nFail, rep.ThroughputQPS, rep.MeanResponse, rep.Diverted,
			fmt.Sprintf("%.3f", rep.HitRate))
	}
	fmt.Fprintln(w, "expected: graceful throughput degradation; every query still answered exactly")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runAblationBatch(w io.Writer, sc Scale) error {
	e, _ := Get("ablation-batch")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	t := metrics.NewTable("policy", "batched-response", "per-key-response", "slowdown")
	for _, policy := range []core.Policy{core.PolicyNoCache, core.PolicyHash, core.PolicyEmbed} {
		batched := sysConfig(policy, sc)
		repB, err := runPolicy(g, batched, qs)
		if err != nil {
			return err
		}
		perKey := sysConfig(policy, sc)
		perKey.NoBatching = true
		repK, err := runPolicy(g, perKey, qs)
		if err != nil {
			return err
		}
		t.AddRow(policyLabel(policy), repB.MeanResponse, repK.MeanResponse,
			fmt.Sprintf("%.1fx", float64(repK.MeanResponse)/float64(repB.MeanResponse)))
	}
	fmt.Fprintln(w, "expected: per-key round trips are dramatically slower; caching recovers part of the gap")
	_, err = fmt.Fprint(w, t.String())
	return err
}
