package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/partition"
)

func init() {
	register(Experiment{
		ID: "ablation-stealing", Paper: "Req 2 / Section 4.6",
		Desc: "query stealing on vs off for every routing policy",
		Run:  runAblationStealing,
	})
	register(Experiment{
		ID: "ablation-partition", Paper: "Section 2.3 claim",
		Desc: "storage-tier partitioning (hash vs LDG vs refined edge-cut) under smart routing",
		Run:  runAblationPartition,
	})
	register(Experiment{
		ID: "ablation-batch", Paper: "Section 2.3 (page-granularity transfer)",
		Desc: "frontier-batched multi-reads vs one round trip per key",
		Run:  runAblationBatch,
	})
	register(Experiment{
		ID: "ablation-failure", Paper: "Section 1 / 3.4.1 (fault tolerance)",
		Desc: "processor failures: queries divert to the next-best live processor",
		Run:  runAblationFailure,
	})
}

func runAblationStealing(w io.Writer, sc Scale) error {
	e, _ := Get("ablation-stealing")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	type pair struct{ on, off *core.Report }
	rows := make([]pair, len(fig8Policies))
	var cells []func() error
	for i, policy := range fig8Policies {
		i, policy := i, policy
		cells = append(cells,
			func() error {
				rep, err := runPolicy(g, sysConfig(policy, sc), qs)
				if err != nil {
					return err
				}
				rows[i].on = rep
				return nil
			},
			func() error {
				cfg := sysConfig(policy, sc)
				cfg.DisableStealing = true
				rep, err := runPolicy(g, cfg, qs)
				if err != nil {
					return err
				}
				rows[i].off = rep
				return nil
			},
		)
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("policy", "throughput(stealing)", "throughput(no-steal)", "stolen", "gain")
	for i, policy := range fig8Policies {
		repOn, repOff := rows[i].on, rows[i].off
		t.AddRow(policyLabel(policy), repOn.ThroughputQPS, repOff.ThroughputQPS,
			repOn.Stolen, fmt.Sprintf("%.2fx", repOn.ThroughputQPS/repOff.ThroughputQPS))
	}
	fmt.Fprintln(w, "expected: stealing helps skewed policies (hash, smart) most; next-ready is already balanced")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runAblationPartition(w io.Writer, sc Scale) error {
	e, _ := Get("ablation-partition")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)

	ldg := partition.LDG(g, 4, 0.1)
	refined := partition.LDG(g, 4, 0.1)
	partition.Refine(g, refined, 2, 0.1)

	placers := []struct {
		name string
		p    kvstore.Placer
		cut  float64
	}{
		{"murmur-hash", nil, partition.HashPartition(g, 4).CutFraction(g)},
		{"ldg-streaming", kvstore.TablePlacer{Assign: ldg.Of}, ldg.CutFraction(g)},
		{"ldg+refine", kvstore.TablePlacer{Assign: refined.Of}, refined.CutFraction(g)},
	}
	type pair struct{ embed, noCache *core.Report }
	rows := make([]pair, len(placers))
	var cells []func() error
	for i := range placers {
		i := i
		pl := placers[i]
		cells = append(cells,
			func() error {
				cfg := sysConfig(core.PolicyEmbed, sc)
				cfg.Placer = pl.p
				rep, err := runPolicy(g, cfg, qs)
				if err != nil {
					return err
				}
				rows[i].embed = rep
				return nil
			},
			func() error {
				cfg := sysConfig(core.PolicyNoCache, sc)
				cfg.Placer = pl.p
				rep, err := runPolicy(g, cfg, qs)
				if err != nil {
					return err
				}
				rows[i].noCache = rep
				return nil
			},
		)
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("storage-partitioning", "edge-cut", "Embed-response", "Embed-hit-rate", "NoCache-response")
	for i, pl := range placers {
		t.AddRow(pl.name, fmt.Sprintf("%.3f", pl.cut), rows[i].embed.MeanResponse,
			fmt.Sprintf("%.3f", rows[i].embed.HitRate), rows[i].noCache.MeanResponse)
	}
	fmt.Fprintln(w, "expected: under smart routing the storage partitioning barely matters (the paper's core claim)")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runAblationFailure(w io.Writer, sc Scale) error {
	e, _ := Get("ablation-failure")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	failCounts := []int{0, 1, 2, 3}
	reps := make([]*core.Report, len(failCounts))
	cells := make([]func() error, len(failCounts))
	for i, nFail := range failCounts {
		i, nFail := i, nFail
		cells[i] = func() error {
			cfg := sysConfig(core.PolicyEmbed, sc)
			for p := 0; p < nFail; p++ {
				cfg.FailedProcessors = append(cfg.FailedProcessors, p*2) // spread failures
			}
			rep, err := runPolicy(g, cfg, qs)
			if err != nil {
				return err
			}
			reps[i] = rep
			return nil
		}
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("failed-processors", "Embed-throughput", "Embed-response", "diverted", "hit-rate")
	for i, nFail := range failCounts {
		rep := reps[i]
		t.AddRow(nFail, rep.ThroughputQPS, rep.MeanResponse, rep.Diverted,
			fmt.Sprintf("%.3f", rep.HitRate))
	}
	fmt.Fprintln(w, "expected: graceful throughput degradation; every query still answered exactly")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runAblationBatch(w io.Writer, sc Scale) error {
	e, _ := Get("ablation-batch")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	policies := []core.Policy{core.PolicyNoCache, core.PolicyHash, core.PolicyEmbed}
	type pair struct{ batched, perKey *core.Report }
	rows := make([]pair, len(policies))
	var cells []func() error
	for i, policy := range policies {
		i, policy := i, policy
		cells = append(cells,
			func() error {
				rep, err := runPolicy(g, sysConfig(policy, sc), qs)
				if err != nil {
					return err
				}
				rows[i].batched = rep
				return nil
			},
			func() error {
				cfg := sysConfig(policy, sc)
				cfg.NoBatching = true
				rep, err := runPolicy(g, cfg, qs)
				if err != nil {
					return err
				}
				rows[i].perKey = rep
				return nil
			},
		)
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("policy", "batched-response", "per-key-response", "slowdown")
	for i, policy := range policies {
		repB, repK := rows[i].batched, rows[i].perKey
		t.AddRow(policyLabel(policy), repB.MeanResponse, repK.MeanResponse,
			fmt.Sprintf("%.1fx", float64(repK.MeanResponse)/float64(repB.MeanResponse)))
	}
	fmt.Fprintln(w, "expected: per-key round trips are dramatically slower; caching recovers part of the gap")
	_, err = fmt.Fprint(w, t.String())
	return err
}
