package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID: "table1", Paper: "Table 1",
		Desc: "dataset statistics (synthetic presets standing in for the originals)",
		Run:  runTable1,
	})
	register(Experiment{
		ID: "table2", Paper: "Table 2",
		Desc: "preprocessing times: BFS per landmark, landmark embedding, per-node embedding",
		Run:  runTable2,
	})
	register(Experiment{
		ID: "table3", Paper: "Table 3",
		Desc: "preprocessing storage vs original graph size",
		Run:  runTable3,
	})
}

func runTable1(w io.Writer, sc Scale) error {
	e, _ := Get("table1")
	header(w, e)
	type dsRow struct {
		st   graph.Stats
		hop2 float64
	}
	rows := make([]dsRow, len(gen.Datasets))
	cells := make([]func() error, len(gen.Datasets))
	for i, d := range gen.Datasets {
		i, d := i, d
		cells[i] = func() error {
			g, err := loadPreset(d, sc)
			if err != nil {
				return err
			}
			rows[i] = dsRow{
				st:   graph.ComputeStats(g),
				hop2: graph.AvgKHopSize(g, 2, 40, graph.Both),
			}
			return nil
		}
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("dataset", "nodes", "edges", "avg-deg", "p99-deg", "adj-bytes", "avg-2hop", "paper-nodes", "paper-edges", "paper-size")
	for i, d := range gen.Datasets {
		st := rows[i].st
		spec := gen.Specs[d]
		t.AddRow(string(d), st.Nodes, st.Edges, st.AvgOutDeg, st.DegreeP99, st.AdjListSize,
			fmt.Sprintf("%.0f", rows[i].hop2), spec.PaperNodes, spec.PaperEdges, spec.PaperSizeDisk)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

func runTable2(w io.Writer, sc Scale) error {
	e, _ := Get("table2")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(g, sysConfig(core.PolicyEmbed, sc))
	if err != nil {
		return err
	}
	p := sys.Prep()
	perLandmarkBFS := time.Duration(0)
	if p.Landmarks > 0 {
		perLandmarkBFS = p.BFSTime / time.Duration(p.Landmarks)
	}
	perNodeEmbed := time.Duration(0)
	if n := g.NumNodes(); n > 0 {
		perNodeEmbed = p.EmbedNodeTime / time.Duration(n)
	}
	t := metrics.NewTable("phase", "measured", "paper (WebGraph, 106M nodes)")
	t.AddRow("landmark selection", p.SelectTime, "-")
	t.AddRow("BFS per landmark", perLandmarkBFS, "35 s")
	t.AddRow("BFS total ("+fmt.Sprint(p.Landmarks)+" landmarks)", p.BFSTime, "-")
	t.AddRow("embedding total", p.EmbedNodeTime, "-")
	t.AddRow("embedding per node", perNodeEmbed, "1 s")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runTable3(w io.Writer, sc Scale) error {
	e, _ := Get("table3")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(g, sysConfig(core.PolicyEmbed, sc))
	if err != nil {
		return err
	}
	p := sys.Prep()
	t := metrics.NewTable("structure", "bytes", "fraction-of-graph", "paper")
	frac := func(b int64) string {
		if p.GraphBytes == 0 {
			return "-"
		}
		return fmt.Sprintf("%.3f", float64(b)/float64(p.GraphBytes))
	}
	t.AddRow("landmark d(u,p) table", p.LandmarkBytes, frac(p.LandmarkBytes), "2.8 GB vs 60.3 GB graph")
	t.AddRow("embedding coordinates", p.EmbedBytes, frac(p.EmbedBytes), "4 GB vs 60.3 GB graph")
	t.AddRow("landmark BFS index", p.IndexBytes, frac(p.IndexBytes), "-")
	t.AddRow("encoded graph (storage tier)", p.GraphBytes, "1.000", "60.3 GB")
	_, err = fmt.Fprint(w, t.String())
	return err
}
