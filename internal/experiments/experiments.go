// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section 4), plus the ablations DESIGN.md calls out.
// Each runner regenerates the corresponding result rows/series on the
// synthetic dataset presets and prints them in paper-style tables.
//
// Runners are registered by experiment id (fig7, fig8a, ..., table1, ...)
// and parameterised by a Scale so the same code serves quick benchmark
// runs and the full recorded runs in EXPERIMENTS.md.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/simnet"
)

// Type aliases keep helper signatures inside this package compact.
type (
	graphT = graph.Graph
	queryT = query.Query
)

// Scale sizes an experiment run.
type Scale struct {
	// GraphScale multiplies each dataset preset's base node count.
	GraphScale float64
	// Hotspots × PerHotspot is the workload size (paper: 100 × 10).
	Hotspots   int
	PerHotspot int
	// Landmarks, MinSep, Dims are the smart-routing defaults for runs that
	// do not sweep them (paper: 96, 3, 10).
	Landmarks int
	MinSep    int
	Dims      int
	// NMIter bounds the embedding optimiser.
	NMIter int
	// Seed drives everything.
	Seed int64
}

// Full is the paper-parameter scale used for the recorded runs in
// EXPERIMENTS.md.
var Full = Scale{
	GraphScale: 1.0, Hotspots: 100, PerHotspot: 10,
	Landmarks: 96, MinSep: 3, Dims: 10, NMIter: 120, Seed: 42,
}

// Quick is the reduced scale used by `go test -bench` and CI: the same
// code paths, an order of magnitude smaller. The graph scale keeps the
// workload footprint well below the graph size, preserving the locality
// regime the paper's results depend on.
var Quick = Scale{
	GraphScale: 0.33, Hotspots: 25, PerHotspot: 10,
	Landmarks: 16, MinSep: 2, Dims: 6, NMIter: 60, Seed: 42,
}

// Experiment couples a runner with its description.
type Experiment struct {
	ID    string
	Paper string // which table/figure it reproduces
	Desc  string
	Run   func(w io.Writer, sc Scale) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// Get returns the experiment registered under id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// header prints the experiment banner.
func header(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "== %s (%s): %s ==\n", e.ID, e.Paper, e.Desc)
}

// benchDir is where experiments that produce machine-readable artifacts
// (BENCH_<id>.json) write them. Empty — the default — disables emission,
// so unit tests and ad-hoc library callers only get the text tables;
// grouting-bench sets it (default: the working directory).
var benchDir string

// SetBenchDir sets the artifact output directory ("" disables emission).
func SetBenchDir(dir string) { benchDir = dir }

// writeBenchJSON emits v as BENCH_<id>.json under the bench directory and
// notes the path on w. A no-op (reported as skipped) when no directory is
// configured.
func writeBenchJSON(w io.Writer, id string, v any) error {
	if benchDir == "" {
		fmt.Fprintf(w, "BENCH_%s.json: skipped (no bench dir; grouting-bench sets one)\n", id)
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal BENCH_%s.json: %w", id, err)
	}
	path := filepath.Join(benchDir, "BENCH_"+id+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}

// loadPreset generates a dataset preset at the run's scale.
func loadPreset(d gen.Dataset, sc Scale) (*graph.Graph, error) {
	return gen.Preset(d, sc.GraphScale, sc.Seed)
}

// workload generates the standard r-hop hotspot, h-hop traversal mixture.
func workload(g *graph.Graph, sc Scale, r, h int) []query.Query {
	return query.Hotspot(g, query.WorkloadSpec{
		NumHotspots:       sc.Hotspots,
		QueriesPerHotspot: sc.PerHotspot,
		R:                 r,
		H:                 h,
		Seed:              sc.Seed + 1,
	})
}

// sysConfig builds the standard decoupled configuration for a policy at
// this scale; override fields on the result as needed.
func sysConfig(policy core.Policy, sc Scale) core.Config {
	return core.Config{
		Processors:     7,
		StorageServers: 4,
		Network:        simnet.Infiniband(),
		Policy:         policy,
		Landmarks:      sc.Landmarks,
		MinSeparation:  sc.MinSep,
		Dimensions:     sc.Dims,
		Seed:           sc.Seed,
		EmbedNM:        embed.NMOptions{MaxIter: sc.NMIter},
	}
}

// runPolicy builds a system for cfg and runs the workload.
func runPolicy(g *graph.Graph, cfg core.Config, qs []query.Query) (*core.Report, error) {
	sys, err := core.NewSystem(g, cfg)
	if err != nil {
		return nil, err
	}
	return sys.RunWorkload(qs)
}

// policyLabel renders a policy the way the figures label it.
func policyLabel(p core.Policy) string {
	switch p {
	case core.PolicyNoCache:
		return "NoCache"
	case core.PolicyNextReady:
		return "NextReady"
	case core.PolicyHash:
		return "Hash"
	case core.PolicyLandmark:
		return "Landmark"
	case core.PolicyEmbed:
		return "Embed"
	case core.PolicyStableHash:
		return "StableHash"
	}
	return p.String()
}
