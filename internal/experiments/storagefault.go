package experiments

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/query"
)

func init() {
	register(Experiment{
		ID: "storagefault", Paper: "design (§1)",
		Desc: "kill one storage server mid-workload: R=2 fails over and sustains throughput, R=1 loses its shard's uncached keys",
		Run:  runStorageFault,
	})
}

// sfRow is one cell's phase-B (post-fault) measurements.
type sfRow struct {
	ok, failed int
	qps        float64
	hit        float64
	failovers  int64
	epoch      uint64
}

// sfMeasure is one cell of the machine-readable artifact.
type sfMeasure struct {
	Answered     int     `json:"answered"`
	Failed       int     `json:"failed"`
	GoodputQPS   float64 `json:"goodput_qps"`
	HitRate      float64 `json:"hit_rate"`
	Failovers    int64   `json:"failovers"`
	StorageEpoch uint64  `json:"storage_epoch"`
}

// sfReport is the machine-readable artifact (BENCH_storagefault.json).
type sfReport struct {
	Experiment string               `json:"experiment"`
	Nodes      int                  `json:"nodes"`
	Queries    int                  `json:"queries_per_phase"`
	Cells      map[string]sfMeasure `json:"cells"`
}

// runStorageFault exercises the decoupled design's storage-side
// fault-tolerance claim: with the storage tier replicated (R=2), killing
// one server mid-workload loses zero queries — reads fail over to the
// surviving replicas and the under-replicated records are re-replicated —
// while the unreplicated control (R=1) can only answer queries whose
// records are cached or on surviving shards, failing the rest with the
// typed unavailable error. Every successful result is verified against
// the oracle as it streams; the cells share both workloads, so they
// differ only in replication factor and the fault.
func runStorageFault(w io.Writer, sc Scale) error {
	e, _ := Get("storagefault")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	warm := workload(g, sc, 2, 2)
	// Phase B queries fresh hotspot regions, so they actually reach the
	// storage tier instead of being absorbed by the caches phase A warmed —
	// a fault the cache fully masks would measure nothing.
	cold := query.Hotspot(g, query.WorkloadSpec{
		NumHotspots:       sc.Hotspots,
		QueriesPerHotspot: sc.PerHotspot,
		R:                 2,
		H:                 2,
		Seed:              sc.Seed + 9001,
	})
	specs := []struct {
		name     string
		replicas int
		fault    bool
	}{
		{"control R=2", 2, false},
		{"fault R=2", 2, true},
		{"fault R=1", 1, true},
	}
	rows := make([]sfRow, len(specs))
	cells := make([]func() error, len(specs))
	for i, spec := range specs {
		i, spec := i, spec
		cells[i] = func() error {
			row, err := runStorageFaultCell(g, sc, spec.replicas, spec.fault, warm, cold)
			if err != nil {
				return fmt.Errorf("%s: %w", spec.name, err)
			}
			rows[i] = row
			return nil
		}
	}
	if err := runCells(cells); err != nil {
		return err
	}
	control := rows[0].qps
	t := metrics.NewTable("cell", "answered", "failed", "answered%", "qps", "vs-ctrl%", "hit%", "failovers", "st-epoch")
	for i, spec := range specs {
		r := rows[i]
		vs := 0.0
		if control > 0 {
			vs = 100 * r.qps / control
		}
		total := r.ok + r.failed
		ansPct := 0.0
		if total > 0 {
			ansPct = 100 * float64(r.ok) / float64(total)
		}
		t.AddRow(spec.name, r.ok, r.failed,
			fmt.Sprintf("%.1f", ansPct),
			fmt.Sprintf("%.0f", r.qps),
			fmt.Sprintf("%.1f", vs),
			fmt.Sprintf("%.1f", 100*r.hit),
			r.failovers, r.epoch)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "phase B queries fresh regions after the fault lands. expected: fault R=2 answers")
	fmt.Fprintln(w, "everything (failover + synchronous re-replication) at >=90% of the control's")
	fmt.Fprintln(w, "goodput, while fault R=1 only answers what its caches and surviving shards")
	fmt.Fprintln(w, "cover — the rest fail with the typed unavailable error after burning a")
	fmt.Fprintln(w, "discovery round trip (failures abort early, which is why R=1's goodput per")
	fmt.Fprintln(w, "busy-second can exceed 100%: the degradation is the answered% column)")
	if rows[1].failed != 0 {
		return fmt.Errorf("R=2 lost %d queries across the storage failure", rows[1].failed)
	}
	if control > 0 && rows[1].qps < 0.9*control {
		return fmt.Errorf("R=2 sustained only %.1f%% of control throughput", 100*rows[1].qps/control)
	}
	if total := rows[2].ok + rows[2].failed; total > 0 && rows[2].failed == 0 {
		return fmt.Errorf("the R=1 fault cell lost nothing — the fault is not reaching storage")
	}

	rep := sfReport{
		Experiment: "storagefault",
		Nodes:      g.NumNodes(),
		Queries:    len(cold),
		Cells:      make(map[string]sfMeasure, len(specs)),
	}
	for i, spec := range specs {
		r := rows[i]
		rep.Cells[spec.name] = sfMeasure{
			Answered: r.ok, Failed: r.failed, GoodputQPS: r.qps,
			HitRate: r.hit, Failovers: r.failovers, StorageEpoch: r.epoch,
		}
	}
	return writeBenchJSON(w, "storagefault", rep)
}

// runStorageFaultCell warms one session on the warm workload, optionally
// fails storage slot 0, then runs the cold workload measuring goodput,
// hit rate and failures.
func runStorageFaultCell(g *graphT, sc Scale, replicas int, fault bool, warm, cold []queryT) (sfRow, error) {
	cfg := sysConfig(core.PolicyHash, sc)
	cfg.StorageReplicas = replicas
	sys, err := core.NewSystem(g, cfg)
	if err != nil {
		return sfRow{}, err
	}
	ses, err := sys.NewSession()
	if err != nil {
		return sfRow{}, err
	}
	// Phase A: warm the processor caches on the whole warm workload.
	for _, q := range warm {
		res, _, err := ses.Execute(q)
		if err != nil {
			return sfRow{}, err
		}
		if res != answer(g, q) {
			return sfRow{}, fmt.Errorf("warmup query on node %d answered wrongly", q.Node)
		}
	}
	if fault {
		if err := sys.FailStorage(0); err != nil {
			return sfRow{}, err
		}
	}
	// Phase B: replay. Failed queries still cost virtual time (the burned
	// discovery round trips), so goodput = answered / elapsed is honest.
	var row sfRow
	t0 := ses.Now()
	h0, m0 := ses.Stats()
	for _, q := range cold {
		res, _, err := ses.Execute(q)
		if err != nil {
			if errors.Is(err, query.ErrUnavailable) {
				row.failed++
				continue
			}
			return row, err
		}
		if res != answer(g, q) {
			return row, fmt.Errorf("query on node %d answered wrongly after the fault", q.Node)
		}
		row.ok++
	}
	elapsed := ses.Now() - t0
	if s := elapsed.Seconds(); s > 0 {
		row.qps = float64(row.ok) / s
	}
	h1, m1 := ses.Stats()
	if touched := (h1 - h0) + (m1 - m0); touched > 0 {
		row.hit = float64(h1-h0) / float64(touched)
	}
	view := sys.StorageTopology()
	row.epoch = view.Epoch
	for _, m := range view.Members {
		row.failovers += int64(sys.Store().Stats(m.Slot).Failovers)
	}
	return row, nil
}
