package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/landmark"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID: "fig10", Paper: "Figure 10",
		Desc: "robustness to graph updates: preprocess on a fraction of the graph, query the whole graph",
		Run:  runFig10,
	})
	register(Experiment{
		ID: "fig11a", Paper: "Figure 11(a)",
		Desc: "throughput vs load factor (query-stealing / locality trade-off)",
		Run:  runFig11a,
	})
	register(Experiment{
		ID: "fig11b", Paper: "Figure 11(b)",
		Desc: "response time vs smoothing parameter alpha (embed EMA)",
		Run:  runFig11b,
	})
	register(Experiment{
		ID: "fig12a", Paper: "Figure 12(a)",
		Desc: "embedding relative error vs dimensionality",
		Run:  runFig12a,
	})
	register(Experiment{
		ID: "fig12b", Paper: "Figure 12(b)",
		Desc: "response time vs embedding dimensionality",
		Run:  runFig12b,
	})
	register(Experiment{
		ID: "fig13a", Paper: "Figure 13(a)",
		Desc: "response time vs number of landmarks",
		Run:  runFig13a,
	})
	register(Experiment{
		ID: "fig13b", Paper: "Figure 13(b)",
		Desc: "response time vs minimum landmark separation",
		Run:  runFig13b,
	})
}

func runFig10(w io.Writer, sc Scale) error {
	e, _ := Get("fig10")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	hashRep, err := runPolicy(g, sysConfig(core.PolicyHash, sc), qs)
	if err != nil {
		return err
	}
	t := metrics.NewTable("preprocessed-%", "Landmark", "Embed", "Hash-reference")
	for _, pct := range []int{20, 40, 60, 80, 100} {
		row := []any{pct}
		for _, policy := range []core.Policy{core.PolicyLandmark, core.PolicyEmbed} {
			cfg := sysConfig(policy, sc)
			cfg.PreprocessFraction = float64(pct) / 100
			rep, err := runPolicy(g, cfg, qs)
			if err != nil {
				return err
			}
			row = append(row, rep.MeanResponse)
		}
		row = append(row, hashRep.MeanResponse)
		t.AddRow(row...)
	}
	fmt.Fprintln(w, "paper: 80% preprocessing costs ~3ms extra; at 20% smart routing degrades to ~hash quality")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig11a(w io.Writer, sc Scale) error {
	e, _ := Get("fig11a")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	hashRep, err := runPolicy(g, sysConfig(core.PolicyHash, sc), qs)
	if err != nil {
		return err
	}
	t := metrics.NewTable("load-factor", "Embed", "Landmark", "Hash-reference")
	for _, lf := range []float64{0.01, 0.1, 1, 10, 20, 100, 1000, 10000} {
		row := []any{lf}
		for _, policy := range []core.Policy{core.PolicyEmbed, core.PolicyLandmark} {
			cfg := sysConfig(policy, sc)
			cfg.LoadFactor = lf
			rep, err := runPolicy(g, cfg, qs)
			if err != nil {
				return err
			}
			row = append(row, rep.ThroughputQPS)
		}
		row = append(row, hashRep.ThroughputQPS)
		t.AddRow(row...)
	}
	fmt.Fprintln(w, "paper: best throughput at load factor 10-20; tiny values degenerate to least-loaded, huge values ignore load")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig11b(w io.Writer, sc Scale) error {
	e, _ := Get("fig11b")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	hashRep, err := runPolicy(g, sysConfig(core.PolicyHash, sc), qs)
	if err != nil {
		return err
	}
	t := metrics.NewTable("alpha", "Embed", "Hash-reference")
	for _, alpha := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		cfg := sysConfig(core.PolicyEmbed, sc)
		cfg.Alpha = alpha
		rep, err := runPolicy(g, cfg, qs)
		if err != nil {
			return err
		}
		t.AddRow(alpha, rep.MeanResponse, hashRep.MeanResponse)
	}
	fmt.Fprintln(w, "paper: response time lowest for alpha in [0.25, 0.75]")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig12a(w io.Writer, sc Scale) error {
	e, _ := Get("fig12a")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	lms := landmark.Select(g, sc.Landmarks, sc.MinSep)
	idx := landmark.BuildIndex(g, lms, 0)
	t := metrics.NewTable("dimensions", "distance-fit-error(Eq4)", "2-hop-pair-error")
	for _, d := range []int{2, 5, 10, 15, 20} {
		emb, err := embed.Build(g, idx, embed.Options{Dimensions: d, Seed: sc.Seed, NM: embed.NMOptions{MaxIter: sc.NMIter}})
		if err != nil {
			return err
		}
		fit := embed.MeasureLandmarkFit(idx, emb, 400, sc.Seed+9)
		pairErr := embed.MeasureRelativeError(g, emb, 300, 2, sc.Seed+9)
		t.AddRow(d, fmt.Sprintf("%.3f", fit), fmt.Sprintf("%.3f", pairErr))
	}
	fmt.Fprintln(w, "paper: error decreases with dimensions, saturating around 10")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig12b(w io.Writer, sc Scale) error {
	e, _ := Get("fig12b")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	hashRep, err := runPolicy(g, sysConfig(core.PolicyHash, sc), qs)
	if err != nil {
		return err
	}
	t := metrics.NewTable("dimensions", "Embed", "Hash-reference")
	for _, d := range []int{2, 5, 10, 15, 20, 25, 30} {
		cfg := sysConfig(core.PolicyEmbed, sc)
		cfg.Dimensions = d
		rep, err := runPolicy(g, cfg, qs)
		if err != nil {
			return err
		}
		t.AddRow(d, rep.MeanResponse, hashRep.MeanResponse)
	}
	fmt.Fprintln(w, "paper: minimum response time at ~10 dimensions (accuracy vs routing-cost trade-off)")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig13a(w io.Writer, sc Scale) error {
	e, _ := Get("fig13a")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	hashRep, err := runPolicy(g, sysConfig(core.PolicyHash, sc), qs)
	if err != nil {
		return err
	}
	t := metrics.NewTable("landmarks", "Landmark", "Embed", "Hash-reference")
	counts := []int{4, 8, 16, 32, 64, 96, 128}
	for _, L := range counts {
		if L > g.NumNodes()/4 {
			continue
		}
		row := []any{L}
		for _, policy := range []core.Policy{core.PolicyLandmark, core.PolicyEmbed} {
			cfg := sysConfig(policy, sc)
			cfg.Landmarks = L
			rep, err := runPolicy(g, cfg, qs)
			if err != nil {
				return err
			}
			row = append(row, rep.MeanResponse)
		}
		row = append(row, hashRep.MeanResponse)
		t.AddRow(row...)
	}
	fmt.Fprintln(w, "paper: more landmarks generally help; 96 is the chosen trade-off against preprocessing time")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig13b(w io.Writer, sc Scale) error {
	e, _ := Get("fig13b")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	hashRep, err := runPolicy(g, sysConfig(core.PolicyHash, sc), qs)
	if err != nil {
		return err
	}
	t := metrics.NewTable("min-separation(hops)", "Landmark", "Embed", "Hash-reference")
	for _, sep := range []int{1, 2, 3, 4, 5} {
		row := []any{sep}
		feasible := true
		for _, policy := range []core.Policy{core.PolicyLandmark, core.PolicyEmbed} {
			cfg := sysConfig(policy, sc)
			cfg.MinSeparation = sep
			rep, err := runPolicy(g, cfg, qs)
			if err != nil {
				// On small graphs large separations can leave too few
				// landmarks; report the row as infeasible rather than fail.
				row = append(row, "n/a")
				feasible = false
				continue
			}
			row = append(row, rep.MeanResponse)
		}
		row = append(row, hashRep.MeanResponse)
		t.AddRow(row...)
		if !feasible && sep > sc.MinSep {
			break
		}
	}
	fmt.Fprintln(w, "paper: separation has little influence (best at 3-4 hops)")
	_, err = fmt.Fprint(w, t.String())
	return err
}
