package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/landmark"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID: "fig10", Paper: "Figure 10",
		Desc: "robustness to graph updates: preprocess on a fraction of the graph, query the whole graph",
		Run:  runFig10,
	})
	register(Experiment{
		ID: "fig11a", Paper: "Figure 11(a)",
		Desc: "throughput vs load factor (query-stealing / locality trade-off)",
		Run:  runFig11a,
	})
	register(Experiment{
		ID: "fig11b", Paper: "Figure 11(b)",
		Desc: "response time vs smoothing parameter alpha (embed EMA)",
		Run:  runFig11b,
	})
	register(Experiment{
		ID: "fig12a", Paper: "Figure 12(a)",
		Desc: "embedding relative error vs dimensionality",
		Run:  runFig12a,
	})
	register(Experiment{
		ID: "fig12b", Paper: "Figure 12(b)",
		Desc: "response time vs embedding dimensionality",
		Run:  runFig12b,
	})
	register(Experiment{
		ID: "fig13a", Paper: "Figure 13(a)",
		Desc: "response time vs number of landmarks",
		Run:  runFig13a,
	})
	register(Experiment{
		ID: "fig13b", Paper: "Figure 13(b)",
		Desc: "response time vs minimum landmark separation",
		Run:  runFig13b,
	})
}

// hashRefCell returns a cell computing the hash-policy reference run that
// most sweep figures plot alongside the smart policies.
func hashRefCell(g *graphT, sc Scale, qs []queryT, dst **core.Report) func() error {
	return func() error {
		rep, err := runPolicy(g, sysConfig(core.PolicyHash, sc), qs)
		if err != nil {
			return err
		}
		*dst = rep
		return nil
	}
}

func runFig10(w io.Writer, sc Scale) error {
	e, _ := Get("fig10")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	pcts := []int{20, 40, 60, 80, 100}
	policies := []core.Policy{core.PolicyLandmark, core.PolicyEmbed}
	var hashRep *core.Report
	reps, err := policyGrid(len(pcts), policies, func(row int, policy core.Policy) (*core.Report, error) {
		cfg := sysConfig(policy, sc)
		cfg.PreprocessFraction = float64(pcts[row]) / 100
		return runPolicy(g, cfg, qs)
	}, hashRefCell(g, sc, qs, &hashRep))
	if err != nil {
		return err
	}
	t := metrics.NewTable("preprocessed-%", "Landmark", "Embed", "Hash-reference")
	for i, pct := range pcts {
		row := []any{pct}
		for j := range policies {
			row = append(row, reps[i][j].MeanResponse)
		}
		row = append(row, hashRep.MeanResponse)
		t.AddRow(row...)
	}
	fmt.Fprintln(w, "paper: 80% preprocessing costs ~3ms extra; at 20% smart routing degrades to ~hash quality")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig11a(w io.Writer, sc Scale) error {
	e, _ := Get("fig11a")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	factors := []float64{0.01, 0.1, 1, 10, 20, 100, 1000, 10000}
	policies := []core.Policy{core.PolicyEmbed, core.PolicyLandmark}
	var hashRep *core.Report
	reps, err := policyGrid(len(factors), policies, func(row int, policy core.Policy) (*core.Report, error) {
		cfg := sysConfig(policy, sc)
		cfg.LoadFactor = factors[row]
		return runPolicy(g, cfg, qs)
	}, hashRefCell(g, sc, qs, &hashRep))
	if err != nil {
		return err
	}
	t := metrics.NewTable("load-factor", "Embed", "Landmark", "Hash-reference")
	for i, lf := range factors {
		row := []any{lf}
		for j := range policies {
			row = append(row, reps[i][j].ThroughputQPS)
		}
		row = append(row, hashRep.ThroughputQPS)
		t.AddRow(row...)
	}
	fmt.Fprintln(w, "paper: best throughput at load factor 10-20; tiny values degenerate to least-loaded, huge values ignore load")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig11b(w io.Writer, sc Scale) error {
	e, _ := Get("fig11b")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	alphas := []float64{0.01, 0.25, 0.5, 0.75, 0.99}
	var hashRep *core.Report
	reps := make([]*core.Report, len(alphas))
	cells := []func() error{hashRefCell(g, sc, qs, &hashRep)}
	for i, alpha := range alphas {
		i, alpha := i, alpha
		cells = append(cells, func() error {
			cfg := sysConfig(core.PolicyEmbed, sc)
			cfg.Alpha = alpha
			rep, err := runPolicy(g, cfg, qs)
			if err != nil {
				return err
			}
			reps[i] = rep
			return nil
		})
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("alpha", "Embed", "Hash-reference")
	for i, alpha := range alphas {
		t.AddRow(alpha, reps[i].MeanResponse, hashRep.MeanResponse)
	}
	fmt.Fprintln(w, "paper: response time lowest for alpha in [0.25, 0.75]")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig12a(w io.Writer, sc Scale) error {
	e, _ := Get("fig12a")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	lms := landmark.Select(g, sc.Landmarks, sc.MinSep)
	idx := landmark.BuildIndex(g, lms, 0)
	dims := []int{2, 5, 10, 15, 20}
	type fitRow struct{ fit, pairErr float64 }
	rows := make([]fitRow, len(dims))
	cells := make([]func() error, len(dims))
	for i, d := range dims {
		i, d := i, d
		cells[i] = func() error {
			emb, err := embed.Build(g, idx, embed.Options{Dimensions: d, Seed: sc.Seed, NM: embed.NMOptions{MaxIter: sc.NMIter}})
			if err != nil {
				return err
			}
			rows[i] = fitRow{
				fit:     embed.MeasureLandmarkFit(idx, emb, 400, sc.Seed+9),
				pairErr: embed.MeasureRelativeError(g, emb, 300, 2, sc.Seed+9),
			}
			return nil
		}
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("dimensions", "distance-fit-error(Eq4)", "2-hop-pair-error")
	for i, d := range dims {
		t.AddRow(d, fmt.Sprintf("%.3f", rows[i].fit), fmt.Sprintf("%.3f", rows[i].pairErr))
	}
	fmt.Fprintln(w, "paper: error decreases with dimensions, saturating around 10")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig12b(w io.Writer, sc Scale) error {
	e, _ := Get("fig12b")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	dims := []int{2, 5, 10, 15, 20, 25, 30}
	var hashRep *core.Report
	reps := make([]*core.Report, len(dims))
	cells := []func() error{hashRefCell(g, sc, qs, &hashRep)}
	for i, d := range dims {
		i, d := i, d
		cells = append(cells, func() error {
			cfg := sysConfig(core.PolicyEmbed, sc)
			cfg.Dimensions = d
			rep, err := runPolicy(g, cfg, qs)
			if err != nil {
				return err
			}
			reps[i] = rep
			return nil
		})
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("dimensions", "Embed", "Hash-reference")
	for i, d := range dims {
		t.AddRow(d, reps[i].MeanResponse, hashRep.MeanResponse)
	}
	fmt.Fprintln(w, "paper: minimum response time at ~10 dimensions (accuracy vs routing-cost trade-off)")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig13a(w io.Writer, sc Scale) error {
	e, _ := Get("fig13a")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	var counts []int
	for _, L := range []int{4, 8, 16, 32, 64, 96, 128} {
		if L <= g.NumNodes()/4 {
			counts = append(counts, L)
		}
	}
	policies := []core.Policy{core.PolicyLandmark, core.PolicyEmbed}
	var hashRep *core.Report
	reps, err := policyGrid(len(counts), policies, func(row int, policy core.Policy) (*core.Report, error) {
		cfg := sysConfig(policy, sc)
		cfg.Landmarks = counts[row]
		return runPolicy(g, cfg, qs)
	}, hashRefCell(g, sc, qs, &hashRep))
	if err != nil {
		return err
	}
	t := metrics.NewTable("landmarks", "Landmark", "Embed", "Hash-reference")
	for i, L := range counts {
		row := []any{L}
		for j := range policies {
			row = append(row, reps[i][j].MeanResponse)
		}
		row = append(row, hashRep.MeanResponse)
		t.AddRow(row...)
	}
	fmt.Fprintln(w, "paper: more landmarks generally help; 96 is the chosen trade-off against preprocessing time")
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig13b(w io.Writer, sc Scale) error {
	e, _ := Get("fig13b")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	seps := []int{1, 2, 3, 4, 5}
	policies := []core.Policy{core.PolicyLandmark, core.PolicyEmbed}
	var hashRep *core.Report
	// On small graphs large separations can leave too few landmarks; a
	// cell failure is reported as an infeasible row, not a runner error,
	// so cells record their error instead of returning it.
	reps := make([][]*core.Report, len(seps))
	cellErrs := make([][]error, len(seps))
	cells := []func() error{hashRefCell(g, sc, qs, &hashRep)}
	for i, sep := range seps {
		reps[i] = make([]*core.Report, len(policies))
		cellErrs[i] = make([]error, len(policies))
		for j, policy := range policies {
			i, j, sep, policy := i, j, sep, policy
			cells = append(cells, func() error {
				cfg := sysConfig(policy, sc)
				cfg.MinSeparation = sep
				reps[i][j], cellErrs[i][j] = runPolicy(g, cfg, qs)
				return nil
			})
		}
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("min-separation(hops)", "Landmark", "Embed", "Hash-reference")
	for i, sep := range seps {
		row := []any{sep}
		feasible := true
		for j := range policies {
			if cellErrs[i][j] != nil {
				row = append(row, "n/a")
				feasible = false
				continue
			}
			row = append(row, reps[i][j].MeanResponse)
		}
		row = append(row, hashRep.MeanResponse)
		t.AddRow(row...)
		if !feasible && sep > sc.MinSep {
			break
		}
	}
	fmt.Fprintln(w, "paper: separation has little influence (best at 3-4 hops)")
	_, err = fmt.Fprint(w, t.String())
	return err
}
