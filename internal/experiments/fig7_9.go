package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

func init() {
	register(Experiment{
		ID: "fig7", Paper: "Figure 7",
		Desc: "throughput: SEDGE/Giraph vs PowerGraph vs gRouting-E vs gRouting",
		Run:  runFig7,
	})
	register(Experiment{
		ID: "fig8a", Paper: "Figure 8(a)",
		Desc: "throughput vs number of query processors (1-7), 4 storage servers",
		Run:  runFig8a,
	})
	register(Experiment{
		ID: "fig8b", Paper: "Figure 8(b)",
		Desc: "cache hits vs number of query processors",
		Run:  runFig8b,
	})
	register(Experiment{
		ID: "fig8c", Paper: "Figure 8(c)",
		Desc: "throughput vs number of storage servers (1-7), 4 query processors",
		Run:  runFig8c,
	})
	register(Experiment{
		ID: "fig9a", Paper: "Figure 9(a)",
		Desc: "response time vs per-processor cache capacity",
		Run:  runFig9a,
	})
	register(Experiment{
		ID: "fig9b", Paper: "Figure 9(b)",
		Desc: "cache hits vs per-processor cache capacity",
		Run:  runFig9b,
	})
	register(Experiment{
		ID: "fig9c", Paper: "Figure 9(c)",
		Desc: "minimum cache capacity to reach the no-cache response time",
		Run:  runFig9c,
	})
}

// fig7Datasets: the paper shows WebGraph, MemeTracker, Freebase (Friendster
// appears in Figure 16).
var fig7Datasets = []gen.Dataset{gen.WebGraph, gen.Memetracker, gen.Freebase}

func runFig7(w io.Writer, sc Scale) error {
	e, _ := Get("fig7")
	header(w, e)
	t := metrics.NewTable("dataset", "SEDGE/Giraph", "PowerGraph", "gRouting-E", "gRouting", "gR/SEDGE", "gR/PG")
	for _, d := range fig7Datasets {
		g, err := loadPreset(d, sc)
		if err != nil {
			return err
		}
		qs := workload(g, sc, 2, 2)

		bsp, err := baseline.NewBSP(g, 12, simnet.Ethernet())
		if err != nil {
			return err
		}
		rb, err := bsp.RunWorkload(qs)
		if err != nil {
			return err
		}
		gas, err := baseline.NewGAS(g, 12, simnet.Ethernet())
		if err != nil {
			return err
		}
		rp, err := gas.RunWorkload(qs)
		if err != nil {
			return err
		}

		cfgE := sysConfig(core.PolicyEmbed, sc)
		cfgE.Network = simnet.Ethernet()
		re, err := runPolicy(g, cfgE, qs)
		if err != nil {
			return err
		}
		cfgIB := sysConfig(core.PolicyEmbed, sc)
		ri, err := runPolicy(g, cfgIB, qs)
		if err != nil {
			return err
		}
		t.AddRow(string(d), rb.ThroughputQPS, rp.ThroughputQPS, re.ThroughputQPS, ri.ThroughputQPS,
			ri.ThroughputQPS/rb.ThroughputQPS, ri.ThroughputQPS/rp.ThroughputQPS)
	}
	fmt.Fprintln(w, "paper: gRouting-E 5-10x over coupled systems; gRouting (Infiniband) 10-35x")
	_, err := fmt.Fprint(w, t.String())
	return err
}

// fig8Policies: the five lines of Figures 8 and 9.
var fig8Policies = []core.Policy{core.PolicyNoCache, core.PolicyNextReady, core.PolicyHash, core.PolicyLandmark, core.PolicyEmbed}

func runFig8a(w io.Writer, sc Scale) error {
	e, _ := Get("fig8a")
	header(w, e)
	return fig8Sweep(w, sc, true)
}

func runFig8b(w io.Writer, sc Scale) error {
	e, _ := Get("fig8b")
	header(w, e)
	return fig8Sweep(w, sc, false)
}

func fig8Sweep(w io.Writer, sc Scale, throughput bool) error {
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	head := []string{"processors"}
	for _, p := range fig8Policies {
		head = append(head, policyLabel(p))
	}
	t := metrics.NewTable(head...)
	var totalTouched int64
	for procs := 1; procs <= 7; procs++ {
		row := []any{procs}
		for _, policy := range fig8Policies {
			cfg := sysConfig(policy, sc)
			cfg.Processors = procs
			rep, err := runPolicy(g, cfg, qs)
			if err != nil {
				return err
			}
			if throughput {
				row = append(row, rep.ThroughputQPS)
			} else {
				row = append(row, rep.CacheHits)
				totalTouched = rep.Touched
			}
		}
		t.AddRow(row...)
	}
	if throughput {
		fmt.Fprintln(w, "paper: Embed scales ~linearly; baselines saturate at 3-5 processors")
	} else {
		fmt.Fprintf(w, "paper: 'Cache Hits + Cache Misses = 52M'; here total touched = %d per run\n", totalTouched)
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig8c(w io.Writer, sc Scale) error {
	e, _ := Get("fig8c")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	head := []string{"storage-servers"}
	for _, p := range fig8Policies {
		head = append(head, policyLabel(p))
	}
	t := metrics.NewTable(head...)
	for servers := 1; servers <= 7; servers++ {
		row := []any{servers}
		for _, policy := range fig8Policies {
			cfg := sysConfig(policy, sc)
			cfg.Processors = 4
			cfg.StorageServers = servers
			rep, err := runPolicy(g, cfg, qs)
			if err != nil {
				return err
			}
			row = append(row, rep.ThroughputQPS)
		}
		t.AddRow(row...)
	}
	fmt.Fprintln(w, "paper: 1-2 storage servers bottleneck 4 processors; saturation at ~4 servers")
	_, err = fmt.Fprint(w, t.String())
	return err
}

// workingSetBytes measures the workload's distinct-record footprint: the
// cumulative bytes a single processor with an unbounded cache admits.
func workingSetBytes(g *graphT, sc Scale, qs []queryT) (int64, error) {
	cfg := sysConfig(core.PolicyHash, sc)
	cfg.Processors = 1
	rep, err := runPolicy(g, cfg, qs)
	if err != nil {
		return 0, err
	}
	var ws int64
	for _, pr := range rep.PerProc {
		ws += pr.Cache.CumInsertBytes
	}
	if ws == 0 {
		ws = 1
	}
	return ws, nil
}

// cacheFractions is the Figure 9 sweep, expressed as fractions of the
// per-processor working set (the paper's 16 MB - 4096 MB axis scaled to
// the synthetic datasets).
var cacheFractions = []struct {
	label string
	num   int64
	den   int64
}{
	{"ws/256", 1, 256},
	{"ws/64", 1, 64},
	{"ws/16", 1, 16},
	{"ws/4", 1, 4},
	{"ws", 1, 1},
	{"4ws", 4, 1},
}

func runFig9a(w io.Writer, sc Scale) error {
	e, _ := Get("fig9a")
	header(w, e)
	return fig9Sweep(w, sc, true)
}

func runFig9b(w io.Writer, sc Scale) error {
	e, _ := Get("fig9b")
	header(w, e)
	return fig9Sweep(w, sc, false)
}

func fig9Sweep(w io.Writer, sc Scale, responseTime bool) error {
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	ws, err := workingSetBytes(g, sc, qs)
	if err != nil {
		return err
	}
	// The no-cache reference line.
	noCache, err := runPolicy(g, sysConfig(core.PolicyNoCache, sc), qs)
	if err != nil {
		return err
	}

	head := []string{"capacity"}
	for _, p := range fig8Policies[1:] { // no-cache has no capacity axis
		head = append(head, policyLabel(p))
	}
	t := metrics.NewTable(head...)
	for _, f := range cacheFractions {
		capacity := ws * f.num / f.den
		row := []any{fmt.Sprintf("%s (%dB)", f.label, capacity)}
		for _, policy := range fig8Policies[1:] {
			cfg := sysConfig(policy, sc)
			cfg.CacheBytes = capacity
			rep, err := runPolicy(g, cfg, qs)
			if err != nil {
				return err
			}
			if responseTime {
				row = append(row, rep.MeanResponse)
			} else {
				row = append(row, rep.CacheHits)
			}
		}
		t.AddRow(row...)
	}
	if responseTime {
		fmt.Fprintf(w, "no-cache reference response time: %v (paper: 86 ms)\n", noCache.MeanResponse)
		fmt.Fprintln(w, "paper: tiny caches lose to no-cache; no gain beyond the working set (4GB)")
	} else {
		fmt.Fprintln(w, "paper: hits grow with capacity and saturate once the working set fits")
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig9c(w io.Writer, sc Scale) error {
	e, _ := Get("fig9c")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	ws, err := workingSetBytes(g, sc, qs)
	if err != nil {
		return err
	}
	noCache, err := runPolicy(g, sysConfig(core.PolicyNoCache, sc), qs)
	if err != nil {
		return err
	}
	target := noCache.MeanResponse

	t := metrics.NewTable("policy", "min-cache-bytes", "fraction-of-ws", "response-at-min")
	for _, policy := range fig8Policies[1:] {
		minCap, resp, err := minCacheForTarget(g, sc, qs, policy, ws, target)
		if err != nil {
			return err
		}
		if minCap < 0 {
			t.AddRow(policyLabel(policy), "not reached", "-", "-")
			continue
		}
		t.AddRow(policyLabel(policy), minCap, float64(minCap)/float64(ws), resp)
	}
	fmt.Fprintf(w, "no-cache response time target: %v\n", target)
	fmt.Fprintln(w, "paper: smart routings reach break-even with far less cache than baselines")
	_, err = fmt.Fprint(w, t.String())
	return err
}

// minCacheForTarget binary-searches the smallest capacity whose mean
// response beats target.
func minCacheForTarget(g *graphT, sc Scale, qs []queryT, policy core.Policy, ws int64, target time.Duration) (int64, time.Duration, error) {
	run := func(capacity int64) (time.Duration, error) {
		cfg := sysConfig(policy, sc)
		cfg.CacheBytes = capacity
		rep, err := runPolicy(g, cfg, qs)
		if err != nil {
			return 0, err
		}
		return rep.MeanResponse, nil
	}
	lo, hi := int64(1), ws*4
	respHi, err := run(hi)
	if err != nil {
		return 0, 0, err
	}
	if respHi > target {
		return -1, 0, nil // never reaches the no-cache line
	}
	var bestResp time.Duration = respHi
	for i := 0; i < 12 && lo < hi; i++ {
		mid := (lo + hi) / 2
		resp, err := run(mid)
		if err != nil {
			return 0, 0, err
		}
		if resp <= target {
			hi = mid
			bestResp = resp
		} else {
			lo = mid + 1
		}
	}
	return hi, bestResp, nil
}
