package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

func init() {
	register(Experiment{
		ID: "fig7", Paper: "Figure 7",
		Desc: "throughput: SEDGE/Giraph vs PowerGraph vs gRouting-E vs gRouting",
		Run:  runFig7,
	})
	register(Experiment{
		ID: "fig8a", Paper: "Figure 8(a)",
		Desc: "throughput vs number of query processors (1-7), 4 storage servers",
		Run:  runFig8a,
	})
	register(Experiment{
		ID: "fig8b", Paper: "Figure 8(b)",
		Desc: "cache hits vs number of query processors",
		Run:  runFig8b,
	})
	register(Experiment{
		ID: "fig8c", Paper: "Figure 8(c)",
		Desc: "throughput vs number of storage servers (1-7), 4 query processors",
		Run:  runFig8c,
	})
	register(Experiment{
		ID: "fig9a", Paper: "Figure 9(a)",
		Desc: "response time vs per-processor cache capacity",
		Run:  runFig9a,
	})
	register(Experiment{
		ID: "fig9b", Paper: "Figure 9(b)",
		Desc: "cache hits vs per-processor cache capacity",
		Run:  runFig9b,
	})
	register(Experiment{
		ID: "fig9c", Paper: "Figure 9(c)",
		Desc: "minimum cache capacity to reach the no-cache response time",
		Run:  runFig9c,
	})
}

// fig7Datasets: the paper shows WebGraph, MemeTracker, Freebase (Friendster
// appears in Figure 16).
var fig7Datasets = []gen.Dataset{gen.WebGraph, gen.Memetracker, gen.Freebase}

func runFig7(w io.Writer, sc Scale) error {
	e, _ := Get("fig7")
	header(w, e)
	// Stage 1: generate every dataset (and its workload) concurrently.
	graphs := make([]*graphT, len(fig7Datasets))
	workloads := make([][]queryT, len(fig7Datasets))
	loads := make([]func() error, len(fig7Datasets))
	for i, d := range fig7Datasets {
		i, d := i, d
		loads[i] = func() error {
			g, err := loadPreset(d, sc)
			if err != nil {
				return err
			}
			graphs[i] = g
			workloads[i] = workload(g, sc, 2, 2)
			return nil
		}
	}
	if err := runCells(loads); err != nil {
		return err
	}
	// Stage 2: the four system runs per dataset are independent cells.
	type fig7Row struct{ bsp, pg, gre, gri float64 }
	rows := make([]fig7Row, len(fig7Datasets))
	var cells []func() error
	for i := range fig7Datasets {
		i := i
		g, qs := graphs[i], workloads[i]
		cells = append(cells,
			func() error {
				bsp, err := baseline.NewBSP(g, 12, simnet.Ethernet())
				if err != nil {
					return err
				}
				rep, err := bsp.RunWorkload(qs)
				if err != nil {
					return err
				}
				rows[i].bsp = rep.ThroughputQPS
				return nil
			},
			func() error {
				gas, err := baseline.NewGAS(g, 12, simnet.Ethernet())
				if err != nil {
					return err
				}
				rep, err := gas.RunWorkload(qs)
				if err != nil {
					return err
				}
				rows[i].pg = rep.ThroughputQPS
				return nil
			},
			func() error {
				cfg := sysConfig(core.PolicyEmbed, sc)
				cfg.Network = simnet.Ethernet()
				rep, err := runPolicy(g, cfg, qs)
				if err != nil {
					return err
				}
				rows[i].gre = rep.ThroughputQPS
				return nil
			},
			func() error {
				rep, err := runPolicy(g, sysConfig(core.PolicyEmbed, sc), qs)
				if err != nil {
					return err
				}
				rows[i].gri = rep.ThroughputQPS
				return nil
			},
		)
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("dataset", "SEDGE/Giraph", "PowerGraph", "gRouting-E", "gRouting", "gR/SEDGE", "gR/PG")
	for i, d := range fig7Datasets {
		r := rows[i]
		t.AddRow(string(d), r.bsp, r.pg, r.gre, r.gri, r.gri/r.bsp, r.gri/r.pg)
	}
	fmt.Fprintln(w, "paper: gRouting-E 5-10x over coupled systems; gRouting (Infiniband) 10-35x")
	_, err := fmt.Fprint(w, t.String())
	return err
}

// fig8Policies: the five lines of Figures 8 and 9.
var fig8Policies = []core.Policy{core.PolicyNoCache, core.PolicyNextReady, core.PolicyHash, core.PolicyLandmark, core.PolicyEmbed}

func runFig8a(w io.Writer, sc Scale) error {
	e, _ := Get("fig8a")
	header(w, e)
	return fig8Sweep(w, sc, true)
}

func runFig8b(w io.Writer, sc Scale) error {
	e, _ := Get("fig8b")
	header(w, e)
	return fig8Sweep(w, sc, false)
}

// policyGrid runs one cell per (row value, policy) pair — the common shape
// of the figure sweeps — and returns the reports indexed [row][policy].
// Extra cells (reference runs like the hash baseline) join the same
// fan-out, scheduled before the grid to mirror the historical serial
// order.
func policyGrid(nRows int, policies []core.Policy, run func(row int, policy core.Policy) (*core.Report, error), extra ...func() error) ([][]*core.Report, error) {
	reps := make([][]*core.Report, nRows)
	for i := range reps {
		reps[i] = make([]*core.Report, len(policies))
	}
	cells := append([]func() error(nil), extra...)
	for i := 0; i < nRows; i++ {
		for j, policy := range policies {
			i, j, policy := i, j, policy
			cells = append(cells, func() error {
				rep, err := run(i, policy)
				if err != nil {
					return err
				}
				reps[i][j] = rep
				return nil
			})
		}
	}
	if err := runCells(cells); err != nil {
		return nil, err
	}
	return reps, nil
}

func fig8Sweep(w io.Writer, sc Scale, throughput bool) error {
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	head := []string{"processors"}
	for _, p := range fig8Policies {
		head = append(head, policyLabel(p))
	}
	t := metrics.NewTable(head...)
	reps, err := policyGrid(7, fig8Policies, func(row int, policy core.Policy) (*core.Report, error) {
		cfg := sysConfig(policy, sc)
		cfg.Processors = row + 1
		return runPolicy(g, cfg, qs)
	})
	if err != nil {
		return err
	}
	var totalTouched int64
	for i, procReps := range reps {
		row := []any{i + 1}
		for _, rep := range procReps {
			if throughput {
				row = append(row, rep.ThroughputQPS)
			} else {
				row = append(row, rep.CacheHits)
				totalTouched = rep.Touched
			}
		}
		t.AddRow(row...)
	}
	if throughput {
		fmt.Fprintln(w, "paper: Embed scales ~linearly; baselines saturate at 3-5 processors")
	} else {
		fmt.Fprintf(w, "paper: 'Cache Hits + Cache Misses = 52M'; here total touched = %d per run\n", totalTouched)
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig8c(w io.Writer, sc Scale) error {
	e, _ := Get("fig8c")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	head := []string{"storage-servers"}
	for _, p := range fig8Policies {
		head = append(head, policyLabel(p))
	}
	t := metrics.NewTable(head...)
	reps, err := policyGrid(7, fig8Policies, func(row int, policy core.Policy) (*core.Report, error) {
		cfg := sysConfig(policy, sc)
		cfg.Processors = 4
		cfg.StorageServers = row + 1
		return runPolicy(g, cfg, qs)
	})
	if err != nil {
		return err
	}
	for i, serverReps := range reps {
		row := []any{i + 1}
		for _, rep := range serverReps {
			row = append(row, rep.ThroughputQPS)
		}
		t.AddRow(row...)
	}
	fmt.Fprintln(w, "paper: 1-2 storage servers bottleneck 4 processors; saturation at ~4 servers")
	_, err = fmt.Fprint(w, t.String())
	return err
}

// workingSetBytes measures the workload's distinct-record footprint: the
// cumulative bytes a single processor with an unbounded cache admits.
func workingSetBytes(g *graphT, sc Scale, qs []queryT) (int64, error) {
	cfg := sysConfig(core.PolicyHash, sc)
	cfg.Processors = 1
	rep, err := runPolicy(g, cfg, qs)
	if err != nil {
		return 0, err
	}
	var ws int64
	for _, pr := range rep.PerProc {
		ws += pr.Cache.CumInsertBytes
	}
	if ws == 0 {
		ws = 1
	}
	return ws, nil
}

// cacheFractions is the Figure 9 sweep, expressed as fractions of the
// per-processor working set (the paper's 16 MB - 4096 MB axis scaled to
// the synthetic datasets).
var cacheFractions = []struct {
	label string
	num   int64
	den   int64
}{
	{"ws/256", 1, 256},
	{"ws/64", 1, 64},
	{"ws/16", 1, 16},
	{"ws/4", 1, 4},
	{"ws", 1, 1},
	{"4ws", 4, 1},
}

func runFig9a(w io.Writer, sc Scale) error {
	e, _ := Get("fig9a")
	header(w, e)
	return fig9Sweep(w, sc, true)
}

func runFig9b(w io.Writer, sc Scale) error {
	e, _ := Get("fig9b")
	header(w, e)
	return fig9Sweep(w, sc, false)
}

// fig9Prereqs runs the two inputs every Figure 9 panel needs — the
// workload's working-set size and the no-cache reference — as parallel
// cells.
func fig9Prereqs(g *graphT, sc Scale, qs []queryT) (ws int64, noCache *core.Report, err error) {
	err = runCells([]func() error{
		func() error {
			var err error
			ws, err = workingSetBytes(g, sc, qs)
			return err
		},
		func() error {
			var err error
			noCache, err = runPolicy(g, sysConfig(core.PolicyNoCache, sc), qs)
			return err
		},
	})
	return ws, noCache, err
}

func fig9Sweep(w io.Writer, sc Scale, responseTime bool) error {
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	ws, noCache, err := fig9Prereqs(g, sc, qs)
	if err != nil {
		return err
	}

	head := []string{"capacity"}
	for _, p := range fig8Policies[1:] { // no-cache has no capacity axis
		head = append(head, policyLabel(p))
	}
	t := metrics.NewTable(head...)
	reps, err := policyGrid(len(cacheFractions), fig8Policies[1:], func(row int, policy core.Policy) (*core.Report, error) {
		f := cacheFractions[row]
		cfg := sysConfig(policy, sc)
		cfg.CacheBytes = ws * f.num / f.den
		return runPolicy(g, cfg, qs)
	})
	if err != nil {
		return err
	}
	for i, f := range cacheFractions {
		capacity := ws * f.num / f.den
		row := []any{fmt.Sprintf("%s (%dB)", f.label, capacity)}
		for _, rep := range reps[i] {
			if responseTime {
				row = append(row, rep.MeanResponse)
			} else {
				row = append(row, rep.CacheHits)
			}
		}
		t.AddRow(row...)
	}
	if responseTime {
		fmt.Fprintf(w, "no-cache reference response time: %v (paper: 86 ms)\n", noCache.MeanResponse)
		fmt.Fprintln(w, "paper: tiny caches lose to no-cache; no gain beyond the working set (4GB)")
	} else {
		fmt.Fprintln(w, "paper: hits grow with capacity and saturate once the working set fits")
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

func runFig9c(w io.Writer, sc Scale) error {
	e, _ := Get("fig9c")
	header(w, e)
	g, err := loadPreset(gen.WebGraph, sc)
	if err != nil {
		return err
	}
	qs := workload(g, sc, 2, 2)
	ws, noCache, err := fig9Prereqs(g, sc, qs)
	if err != nil {
		return err
	}
	target := noCache.MeanResponse

	// One cell per policy; the binary search inside each stays sequential.
	policies := fig8Policies[1:]
	minCaps := make([]int64, len(policies))
	resps := make([]time.Duration, len(policies))
	cells := make([]func() error, len(policies))
	for j, policy := range policies {
		j, policy := j, policy
		cells[j] = func() error {
			var err error
			minCaps[j], resps[j], err = minCacheForTarget(g, sc, qs, policy, ws, target)
			return err
		}
	}
	if err := runCells(cells); err != nil {
		return err
	}
	t := metrics.NewTable("policy", "min-cache-bytes", "fraction-of-ws", "response-at-min")
	for j, policy := range policies {
		if minCaps[j] < 0 {
			t.AddRow(policyLabel(policy), "not reached", "-", "-")
			continue
		}
		t.AddRow(policyLabel(policy), minCaps[j], float64(minCaps[j])/float64(ws), resps[j])
	}
	fmt.Fprintf(w, "no-cache response time target: %v\n", target)
	fmt.Fprintln(w, "paper: smart routings reach break-even with far less cache than baselines")
	_, err = fmt.Fprint(w, t.String())
	return err
}

// minCacheForTarget binary-searches the smallest capacity whose mean
// response beats target.
func minCacheForTarget(g *graphT, sc Scale, qs []queryT, policy core.Policy, ws int64, target time.Duration) (int64, time.Duration, error) {
	run := func(capacity int64) (time.Duration, error) {
		cfg := sysConfig(policy, sc)
		cfg.CacheBytes = capacity
		rep, err := runPolicy(g, cfg, qs)
		if err != nil {
			return 0, err
		}
		return rep.MeanResponse, nil
	}
	lo, hi := int64(1), ws*4
	respHi, err := run(hi)
	if err != nil {
		return 0, 0, err
	}
	if respHi > target {
		return -1, 0, nil // never reaches the no-cache line
	}
	var bestResp time.Duration = respHi
	for i := 0; i < 12 && lo < hi; i++ {
		mid := (lo + hi) / 2
		resp, err := run(mid)
		if err != nil {
			return 0, 0, err
		}
		if resp <= target {
			hi = mid
			bestResp = resp
		} else {
			lo = mid + 1
		}
	}
	return hi, bestResp, nil
}
