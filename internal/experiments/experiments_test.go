package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// tiny is an even smaller scale than Quick, for unit tests.
var tiny = Scale{
	GraphScale: 0.02, Hotspots: 6, PerHotspot: 4,
	Landmarks: 6, MinSep: 1, Dims: 3, NMIter: 40, Seed: 42,
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must have a runner.
	want := []string{
		"table1", "table2", "table3",
		"fig7", "fig8a", "fig8b", "fig8c", "fig9a", "fig9b", "fig9c",
		"fig10", "fig11a", "fig11b", "fig12a", "fig12b", "fig13a", "fig13b",
		"fig14", "fig15", "fig16",
		"ablation-stealing", "ablation-partition", "ablation-batch", "ablation-failure",
		"elastic", "storagefault", "chaos", "drift", "patterns", "knn",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		ids := make([]string, 0)
		for _, e := range All() {
			ids = append(ids, e.ID)
		}
		t.Errorf("registry has %d experiments, want %d: %v", len(All()), len(want), ids)
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("All() not sorted: %q >= %q", all[i-1].ID, all[i].ID)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("fig99"); ok {
		t.Fatal("unknown id found")
	}
}

// TestSerialParallelIdentical asserts the engine-level determinism
// invariant of the parallel harness: because every cell owns a private
// System and virtual Timeline, a figure's Report-derived output is
// bit-identical at any worker count.
func TestSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full figure twice")
	}
	e, ok := Get("fig8a")
	if !ok {
		t.Fatal("fig8a not registered")
	}
	defer SetParallelism(1)
	outputs := make([]string, 2)
	for i, workers := range []int{1, 4} {
		SetParallelism(workers)
		var buf bytes.Buffer
		if err := e.Run(&buf, tiny); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		outputs[i] = buf.String()
	}
	if outputs[0] != outputs[1] {
		t.Errorf("serial and parallel harness outputs differ:\n--- serial ---\n%s\n--- parallel ---\n%s", outputs[0], outputs[1])
	}
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	SetParallelism(0) // 0 selects GOMAXPROCS
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(0)", got)
	}
}

func TestRunCellsOrderAndErrors(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(4)
	results := make([]int, 100)
	cells := make([]func() error, 100)
	for i := range cells {
		i := i
		cells[i] = func() error { results[i] = i * i; return nil }
	}
	if err := runCells(cells); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("cell %d wrote %d", i, r)
		}
	}
	// The lowest-indexed error wins, matching serial semantics.
	boom7 := fmt.Errorf("cell 7 failed")
	boom3 := fmt.Errorf("cell 3 failed")
	cells[7] = func() error { return boom7 }
	cells[3] = func() error { return boom3 }
	if err := runCells(cells); err != boom3 {
		t.Fatalf("got error %v, want %v", err, boom3)
	}
}

// TestDriftRecoversGoodput is the adaptive-placement acceptance run: at
// the recorded quick scale, the bounded online planner must close at
// least 90% of the static→re-load goodput gap after the hotspots move,
// without ever exceeding its per-cycle migration budget.
func TestDriftRecoversGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full three-cell drift comparison")
	}
	var buf bytes.Buffer
	rep, err := driftRun(&buf, Quick)
	if err != nil {
		t.Fatalf("drift failed: %v\n%s", err, buf.String())
	}
	if rep.Recovery < 0.90 {
		t.Errorf("recovery fraction %.3f < 0.90\n%s", rep.Recovery, buf.String())
	}
	if !rep.BudgetRespected {
		t.Errorf("migration volume exceeded the planner budget\n%s", buf.String())
	}
	ad := rep.Cells["adaptive"]
	if ad.Moved.Moved == 0 {
		t.Error("adaptive cell never migrated anything — the experiment is vacuous")
	}
	if st := rep.Cells["static"]; st.Moved.Moved != 0 {
		t.Errorf("static cell migrated %d records; placement must not move", st.Moved.Moved)
	}
}

// TestPatternsRespectsBudget is the multi-anchor acceptance run: every
// policy answers the mixed workload oracle-identically (checked inside the
// cells), the multi-anchor path genuinely executes (subtasks and waves
// observed per policy), and no BoundedReach subtask ever exceeds the
// per-partition visit budget.
func TestPatternsRespectsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full four-policy patterns comparison")
	}
	var buf bytes.Buffer
	rep, err := patternsRun(&buf, Quick)
	if err != nil {
		t.Fatalf("patterns failed: %v\n%s", err, buf.String())
	}
	if !rep.BudgetRespected {
		t.Errorf("a subtask exceeded the per-partition visit budget\n%s", buf.String())
	}
	if rep.MultiAnchor == 0 {
		t.Error("workload contains no multi-anchor queries — the experiment is vacuous")
	}
	for name, m := range rep.Cells {
		if m.Subtasks == 0 || m.Waves == 0 {
			t.Errorf("%s: subtasks=%d waves=%d — multi-anchor path not exercised", name, m.Subtasks, m.Waves)
		}
		if m.MaxVisited > rep.VisitBudget {
			t.Errorf("%s: max visited %d exceeds budget %d", name, m.MaxVisited, rep.VisitBudget)
		}
	}
}

// TestKNNMatchesOracle is the k-nearest acceptance run: every policy
// answers the KNN-heavy mix oracle-identically with one provider-shared
// embedding (checked inside the cells), the distributed candidate path
// genuinely executes, and at least one answer per cell is non-empty.
func TestKNNMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full four-policy knn comparison")
	}
	var buf bytes.Buffer
	rep, err := knnRun(&buf, Quick)
	if err != nil {
		t.Fatalf("knn failed: %v\n%s", err, buf.String())
	}
	if rep.KNNQueries == 0 {
		t.Error("workload contains no KNearest queries — the experiment is vacuous")
	}
	for name, m := range rep.Cells {
		if m.Subtasks == 0 {
			t.Errorf("%s: no subtasks — distributed candidate generation not exercised", name)
		}
		if m.NonEmpty == 0 {
			t.Errorf("%s: every KNearest answer empty — ranking not exercised", name)
		}
	}
}

// TestEveryExperimentRuns smoke-tests each runner at tiny scale: it must
// complete without error and produce a non-trivial table.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests take a few seconds")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(&buf, tiny); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("%s output missing banner:\n%s", e.ID, out)
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Errorf("%s output suspiciously short:\n%s", e.ID, out)
			}
		})
	}
}
