package cliutil

import (
	"reflect"
	"strings"
	"testing"
)

func TestSplitAddrs(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
		err  string
	}{
		{in: "", want: nil},
		{in: "   ", want: nil},
		{in: "127.0.0.1:7001", want: []string{"127.0.0.1:7001"}},
		{in: " a:1 , b:2 ", want: []string{"a:1", "b:2"}},
		{in: "a:1,,b:2", err: "entry 2 is empty"},
		{in: "a:1,b:2,", err: "entry 3 is empty"},
		{in: ",a:1", err: "entry 1 is empty"},
		{in: "a:1,b:2,a:1", err: "duplicate address a:1"},
		{in: "a:1, a:1", err: "duplicate address a:1"},
	} {
		got, err := SplitAddrs(tc.in)
		if tc.err != "" {
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Errorf("SplitAddrs(%q) err = %v, want containing %q", tc.in, err, tc.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("SplitAddrs(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitAddrs(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
