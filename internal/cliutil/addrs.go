// Package cliutil holds small helpers shared by the command-line
// binaries (groutingd, grouting-cli).
package cliutil

import (
	"fmt"
	"strings"
)

// SplitAddrs parses a comma-separated address list strictly: entries are
// whitespace-trimmed, and empty entries or duplicates are an error rather
// than something to silently dial later. An empty string is an empty
// list.
func SplitAddrs(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	seen := make(map[string]bool)
	var out []string
	for i, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("address list %q: entry %d is empty", s, i+1)
		}
		if seen[a] {
			return nil, fmt.Errorf("address list %q: duplicate address %s", s, a)
		}
		seen[a] = true
		out = append(out, a)
	}
	return out, nil
}
