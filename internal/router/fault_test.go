package router

import (
	"testing"

	"repro/internal/graph"
)

// TestDeadProcessorGetsNoWork: a dead processor must not pop its own queue
// nor steal — Next always reports no work for it until it is revived.
func TestDeadProcessorGetsNoWork(t *testing.T) {
	r, _ := New(NewHash(), 3, true)
	// Queue work everywhere (nodes 0..8 spread over the 3 queues).
	for i := 0; i < 9; i++ {
		r.Route(q(i, graph.NodeID(i)))
	}
	r.SetAlive(1, false)
	if _, ok := r.Next(1); ok {
		t.Fatal("dead processor was handed work")
	}
	if got := r.Executed()[1]; got != 0 {
		t.Fatalf("dead processor executed %d", got)
	}
	// Its backlog is intact for the live processors to recover.
	if r.QueueLen(1) != 3 {
		t.Fatalf("dead queue drained to %d", r.QueueLen(1))
	}
	// Revival restores normal dispatch.
	r.SetAlive(1, true)
	if qq, ok := r.Next(1); !ok || int(qq.Node)%3 != 1 {
		t.Fatalf("revived processor Next = %v/%v", qq, ok)
	}
	// Out-of-range indices are never alive.
	if _, ok := r.Next(-1); ok {
		t.Fatal("negative index got work")
	}
	if _, ok := r.Next(99); ok {
		t.Fatal("out-of-range index got work")
	}
}

// TestDeadQueueRecoveredByStealing: queries already queued for a processor
// when it dies are recovered by the live processors through stealing (the
// fault-tolerance property of Section 1), with per-processor steal
// accounting.
func TestDeadQueueRecoveredByStealing(t *testing.T) {
	r, _ := New(NewHash(), 3, true)
	// All six queries hash to processor 0.
	for i := 0; i < 6; i++ {
		r.Route(q(i, graph.NodeID(i*3)))
	}
	r.SetAlive(0, false)
	seen := map[int]bool{}
	for {
		q1, ok1 := r.Next(1)
		if ok1 {
			seen[q1.ID] = true
		}
		q2, ok2 := r.Next(2)
		if ok2 {
			seen[q2.ID] = true
		}
		if !ok1 && !ok2 {
			break
		}
	}
	if len(seen) != 6 {
		t.Fatalf("recovered %d of 6 queries from the dead queue", len(seen))
	}
	if r.Stolen() != 6 {
		t.Fatalf("Stolen = %d, want 6", r.Stolen())
	}
	stolenBy := r.StolenBy()
	if stolenBy[0] != 0 || stolenBy[1]+stolenBy[2] != 6 {
		t.Fatalf("StolenBy = %v", stolenBy)
	}
	exec := r.Executed()
	if exec[0] != 0 || exec[1]+exec[2] != 6 {
		t.Fatalf("Executed = %v", exec)
	}
}

// TestDivertedAccountingAcrossKillRevive: new queries picked for a dead
// processor divert (counted globally and per-processor); after revival the
// strategy's choice is honoured again with no further diversions.
func TestDivertedAccountingAcrossKillRevive(t *testing.T) {
	r, _ := New(NewHash(), 2, true)
	r.SetAlive(0, false)
	// Even nodes hash to processor 0, which is down.
	for i := 0; i < 4; i++ {
		if p := r.Route(q(i, graph.NodeID(i*2))); p != 1 {
			t.Fatalf("query %d routed to %d, want live 1", i, p)
		}
	}
	if r.Diverted() != 4 {
		t.Fatalf("Diverted = %d, want 4", r.Diverted())
	}
	if df := r.DivertedFrom(); df[0] != 4 || df[1] != 0 {
		t.Fatalf("DivertedFrom = %v", df)
	}
	// Assignment lands on the processor that actually received the query.
	if a := r.Assigned(); a[0] != 0 || a[1] != 4 {
		t.Fatalf("Assigned = %v", a)
	}

	r.SetAlive(0, true)
	if p := r.Route(q(4, 8)); p != 0 {
		t.Fatalf("revived processor not used: routed to %d", p)
	}
	if r.Diverted() != 4 {
		t.Fatalf("revival produced spurious diversions: %d", r.Diverted())
	}
	if df := r.DivertedFrom(); df[0] != 4 {
		t.Fatalf("DivertedFrom after revive = %v", df)
	}
}
