package router

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/topology"
)

// Router owns one FIFO queue per processor connection and implements
// query stealing (Requirement 2): "whenever a processor is idle and is
// ready to handle a new query, if it does not have any other requests
// assigned to it, it may steal a request that was originally intended for
// another processor."
//
// The router dispatches to a processor only on acknowledgement of its
// previous query, so queue lengths are an online load estimate.
//
// Membership is an epoch-versioned topology.View: slots are stable
// processor ids that only grow, and ApplyView moves the router to a newer
// view atomically — departed members' queued work is re-routed to live
// ones, topology-aware strategies re-derive their assignments, and the
// per-slot counters stay aligned across every epoch.
type Router struct {
	strategy      Strategy
	topoAware     TopologyAware // strategy's optional topology hook, nil if absent
	view          topology.View
	queues        [][]query.Query
	heads         []int // pop index per queue (amortised O(1) pops)
	loads         []int // scratch for Route: per-queue lengths, reused per call
	stealing      bool
	status        []topology.Status
	assigned      []int // total queries routed per processor (pre-steal)
	executed      []int // total queries handed out per processor (post-steal)
	stolenBy      []int // dispatches processor p satisfied by stealing
	diverted      []int // queries re-routed away from dead processor p
	stolen        int
	divertedTotal int
	reassigned    int64
	events        []metrics.EpochEvent
}

// New creates a router over procs processor connections — the static
// single-epoch topology. Use ApplyView to move to newer views.
func New(strategy Strategy, procs int, stealing bool) (*Router, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("router: need procs > 0, got %d", procs)
	}
	return NewFromView(strategy, topology.Static(procs), stealing)
}

// NewFromView creates a router over an existing topology view.
func NewFromView(strategy Strategy, v topology.View, stealing bool) (*Router, error) {
	if strategy == nil {
		return nil, fmt.Errorf("router: nil strategy")
	}
	r := &Router{
		strategy: strategy,
		stealing: stealing,
	}
	r.topoAware, _ = strategy.(TopologyAware)
	r.grow(v.Slots())
	r.view = v
	for _, m := range v.Members {
		r.status[m.Slot] = m.Status
	}
	if r.topoAware != nil {
		r.topoAware.SetTopology(v)
	}
	return r, nil
}

// grow extends every slot-indexed array to n slots.
func (r *Router) grow(n int) {
	for len(r.queues) < n {
		r.queues = append(r.queues, nil)
		r.heads = append(r.heads, 0)
		r.loads = append(r.loads, 0)
		r.status = append(r.status, topology.Active)
		r.assigned = append(r.assigned, 0)
		r.executed = append(r.executed, 0)
		r.stolenBy = append(r.stolenBy, 0)
		r.diverted = append(r.diverted, 0)
	}
}

// ApplyView moves the router to a newer topology view atomically: slot
// arrays grow for joined members, statuses update, the strategy's
// topology hook fires, and queries still queued for members that Left are
// re-routed to live ones (the clean-drain property — a leaving processor's
// backlog is not lost and not stolen piecemeal, it is re-dispatched under
// the new view). It returns the number of re-routed queries. Views at or
// below the current epoch are ignored.
func (r *Router) ApplyView(v topology.View) int {
	if v.Epoch <= r.view.Epoch {
		return 0
	}
	r.grow(v.Slots())
	d := topology.DiffViews(r.view, v)
	ev := metrics.EpochEvent{Tier: "proc", Epoch: v.Epoch, Joined: d.Joined, Left: d.Left, Failed: d.Failed, Revived: d.Revived}
	for _, m := range v.Members {
		r.status[m.Slot] = m.Status
	}
	r.view = v
	if r.topoAware != nil {
		r.topoAware.SetTopology(v)
	}

	// Re-route the backlog of departed members under the new view. Down
	// members keep their queue — stealing recovers it, exactly as before —
	// but Left members are gone for good, so their queued work is
	// re-dispatched now.
	var strays []query.Query
	for p := range r.queues {
		if r.status[p] != topology.Left {
			continue
		}
		for {
			q, ok := r.pop(p)
			if !ok {
				break
			}
			strays = append(strays, q)
		}
		r.queues[p] = nil
		r.heads[p] = 0
	}
	for _, q := range strays {
		r.Route(q)
	}
	ev.Reassigned = int64(len(strays))
	r.reassigned += ev.Reassigned
	r.events = append(r.events, ev)
	if len(r.events) > topology.EpochLogCap {
		r.events = r.events[len(r.events)-topology.EpochLogCap:]
	}
	return len(strays)
}

// View returns the topology view the router currently operates under.
func (r *Router) View() topology.View { return r.view }

// Epoch returns the router's current topology epoch.
func (r *Router) Epoch() uint64 { return r.view.Epoch }

// Reassigned returns the total queries re-routed by topology transitions.
func (r *Router) Reassigned() int64 { return r.reassigned }

// Events returns a copy of the bounded topology-transition log, oldest
// first.
func (r *Router) Events() []metrics.EpochEvent {
	return append([]metrics.EpochEvent(nil), r.events...)
}

// SetAlive marks processor p up or down. Queries already queued for a dead
// processor are recovered through stealing; new queries are diverted to
// the next-best live processor ("a query processor that is down can be
// replaced without affecting the routing strategy", Section 1; the
// distance metric "can also be used for ... fault tolerance", §3.4.1).
// This is the whole-run failure switch; epoch-versioned transitions go
// through ApplyView.
func (r *Router) SetAlive(p int, alive bool) {
	if p < 0 || p >= len(r.status) || r.status[p] == topology.Left {
		return
	}
	if alive {
		r.status[p] = topology.Active
	} else {
		r.status[p] = topology.Down
	}
}

// Alive reports whether processor p receives new work.
func (r *Router) Alive(p int) bool {
	return p >= 0 && p < len(r.status) && r.status[p] == topology.Active
}

// Status returns slot p's topology state.
func (r *Router) Status(p int) topology.Status {
	if p < 0 || p >= len(r.status) {
		return topology.Left
	}
	return r.status[p]
}

// Diverted returns how many queries were re-routed away from dead
// processors.
func (r *Router) Diverted() int { return r.divertedTotal }

// DivertedFrom returns a copy of the per-processor diversion counts (how
// many queries each processor lost to being down when picked).
func (r *Router) DivertedFrom() []int { return append([]int(nil), r.diverted...) }

// StolenBy returns a copy of the per-processor steal counts (how many
// dispatches each processor satisfied by stealing foreign work).
func (r *Router) StolenBy() []int { return append([]int(nil), r.stolenBy...) }

// Procs returns the number of processor slots (active or not; slots never
// shrink).
func (r *Router) Procs() int { return len(r.queues) }

// Strategy returns the routing strategy in use.
func (r *Router) Strategy() Strategy { return r.strategy }

// QueueLen returns the number of queries waiting for processor p.
func (r *Router) QueueLen(p int) int { return len(r.queues[p]) - r.heads[p] }

// Pending returns the total queries waiting across all queues.
func (r *Router) Pending() int {
	total := 0
	for p := range r.queues {
		total += r.QueueLen(p)
	}
	return total
}

// Stolen returns how many dispatches were satisfied by stealing.
func (r *Router) Stolen() int { return r.stolen }

// Assigned returns a copy of the per-processor assignment counts (where
// the strategy originally sent each query).
func (r *Router) Assigned() []int { return append([]int(nil), r.assigned...) }

// Executed returns a copy of the per-processor dispatch counts (where each
// query actually ran, after stealing).
func (r *Router) Executed() []int { return append([]int(nil), r.executed...) }

// Route asks the strategy for a destination and enqueues q there. It
// returns the chosen processor.
func (r *Router) Route(q query.Query) int {
	loads := r.loads
	for p := range r.queues {
		if r.status[p] == topology.Left {
			// Departed slots look maximally loaded, so load-driven
			// strategies that are not topology-aware steer clear without
			// inflating the diversion counters.
			loads[p] = 1 << 30
			continue
		}
		loads[p] = r.QueueLen(p)
	}
	p := r.strategy.Pick(q, loads)
	if p < 0 || p >= len(r.queues) {
		p = 0
	}
	if r.status[p] != topology.Active {
		r.diverted[p]++
		r.divertedTotal++
		p = r.divert(q, loads)
	}
	r.queues[p] = append(r.queues[p], q)
	r.assigned[p]++
	r.strategy.Observe(q, p)
	return p
}

// RouteAnchors routes a multi-anchor query's per-anchor subtasks: one
// destination per anchor, chosen through the strategy's multi-anchor hook
// (PickAnchors — per-anchor routing for the built-ins). Unlike Route,
// nothing is enqueued: subtask execution is driven by the caller's wave
// machinery, not the FIFO queues. Each subtask still counts as assigned
// and executed work on its processor, dead picks are diverted, and the
// strategy observes every final destination (so cache-model strategies
// learn where the anchors' neighbourhoods now live).
func (r *Router) RouteAnchors(q query.Query, anchors []graph.NodeID) []int {
	loads := r.loads
	for p := range r.queues {
		if r.status[p] == topology.Left {
			loads[p] = 1 << 30
			continue
		}
		loads[p] = r.QueueLen(p)
	}
	picks := PickAnchors(r.strategy, q, anchors, loads)
	for i, p := range picks {
		q2 := q
		if i < len(anchors) {
			q2.Node = anchors[i]
		}
		if p < 0 || p >= len(r.queues) {
			p = 0
		}
		if r.status[p] != topology.Active {
			r.diverted[p]++
			r.divertedTotal++
			p = r.divert(q2, loads)
		}
		picks[i] = p
		r.assigned[p]++
		r.executed[p]++
		r.strategy.Observe(q2, p)
	}
	return picks
}

// divert picks the best live processor for q: the closest one when the
// strategy is distance-aware (the paper's "second, third, or so on closest
// processor"), the least loaded otherwise. It panics if no processor is
// alive — an unservable deployment is a caller bug.
func (r *Router) divert(q query.Query, loads []int) int {
	da, aware := r.strategy.(DistanceAware)
	best, bestScore := -1, 0.0
	for p := range r.queues {
		if r.status[p] != topology.Active {
			continue
		}
		var score float64
		if aware {
			score = da.DistanceTo(q, p)
		} else {
			score = float64(loads[p])
		}
		if best < 0 || score < bestScore {
			best, bestScore = p, score
		}
	}
	if best < 0 {
		panic("router: no live processors")
	}
	return best
}

// RouteAll routes a batch in order.
func (r *Router) RouteAll(qs []query.Query) {
	for _, q := range qs {
		r.Route(q)
	}
}

// Next hands processor p its next query. When p's own queue is empty and
// stealing is enabled, a query is stolen from another queue: with a
// DistanceAware strategy, the pending head closest to p (so the stolen
// work still matches p's cache contents); otherwise the oldest query of
// the longest queue. ok is false when no work remains anywhere (or p's
// queue is empty and stealing is disabled).
//
// Only Active processors get work — not even their own backlog otherwise —
// so ok is always false for down/draining/departed slots; queries queued
// before a failure are recovered by the live processors through stealing.
func (r *Router) Next(p int) (query.Query, bool) {
	if p < 0 || p >= len(r.status) || r.status[p] != topology.Active {
		return query.Query{}, false
	}
	if q, ok := r.pop(p); ok {
		r.executed[p]++
		return q, true
	}
	if !r.stealing {
		return query.Query{}, false
	}
	if da, ok := r.strategy.(DistanceAware); ok {
		// Locality-aware steal: take the pending query nearest to p
		// (the router "rearranges the future queries", Section 3.2), so
		// stolen work still matches the thief's cache contents.
		victim, slot := -1, -1
		best := 0.0
		for v := range r.queues {
			for i := r.heads[v]; i < len(r.queues[v]); i++ {
				d := da.DistanceTo(r.queues[v][i], p)
				if victim < 0 || d < best {
					victim, slot, best = v, i, d
				}
			}
		}
		if victim < 0 {
			return query.Query{}, false
		}
		q := r.queues[victim][slot]
		r.queues[victim] = append(r.queues[victim][:slot], r.queues[victim][slot+1:]...)
		r.stolen++
		r.stolenBy[p]++
		r.executed[p]++
		return q, true
	}
	// Blind steal: the oldest query of the longest queue.
	victim, longest := -1, 0
	for v := range r.queues {
		if l := r.QueueLen(v); l > longest {
			victim, longest = v, l
		}
	}
	if victim < 0 {
		return query.Query{}, false
	}
	q, _ := r.pop(victim)
	r.stolen++
	r.stolenBy[p]++
	r.executed[p]++
	return q, true
}

func (r *Router) pop(p int) (query.Query, bool) {
	if r.QueueLen(p) == 0 {
		return query.Query{}, false
	}
	q := r.queues[p][r.heads[p]]
	r.heads[p]++
	// Reclaim space once the consumed prefix dominates.
	if r.heads[p] > 64 && r.heads[p]*2 > len(r.queues[p]) {
		r.queues[p] = append(r.queues[p][:0], r.queues[p][r.heads[p]:]...)
		r.heads[p] = 0
	}
	return q, true
}
