package router

import (
	"fmt"

	"repro/internal/query"
)

// Router owns one FIFO queue per processor connection and implements
// query stealing (Requirement 2): "whenever a processor is idle and is
// ready to handle a new query, if it does not have any other requests
// assigned to it, it may steal a request that was originally intended for
// another processor."
//
// The router dispatches to a processor only on acknowledgement of its
// previous query, so queue lengths are an online load estimate.
type Router struct {
	strategy      Strategy
	queues        [][]query.Query
	heads         []int // pop index per queue (amortised O(1) pops)
	loads         []int // scratch for Route: per-queue lengths, reused per call
	stealing      bool
	alive         []bool
	assigned      []int // total queries routed per processor (pre-steal)
	executed      []int // total queries handed out per processor (post-steal)
	stolenBy      []int // dispatches processor p satisfied by stealing
	diverted      []int // queries re-routed away from dead processor p
	stolen        int
	divertedTotal int
}

// New creates a router over procs processor connections.
func New(strategy Strategy, procs int, stealing bool) (*Router, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("router: need procs > 0, got %d", procs)
	}
	if strategy == nil {
		return nil, fmt.Errorf("router: nil strategy")
	}
	r := &Router{
		strategy: strategy,
		queues:   make([][]query.Query, procs),
		heads:    make([]int, procs),
		loads:    make([]int, procs),
		stealing: stealing,
		alive:    make([]bool, procs),
		assigned: make([]int, procs),
		executed: make([]int, procs),
		stolenBy: make([]int, procs),
		diverted: make([]int, procs),
	}
	for i := range r.alive {
		r.alive[i] = true
	}
	return r, nil
}

// SetAlive marks processor p up or down. Queries already queued for a dead
// processor are recovered through stealing; new queries are diverted to
// the next-best live processor ("a query processor that is down can be
// replaced without affecting the routing strategy", Section 1; the
// distance metric "can also be used for ... fault tolerance", §3.4.1).
func (r *Router) SetAlive(p int, alive bool) {
	if p >= 0 && p < len(r.alive) {
		r.alive[p] = alive
	}
}

// Alive reports whether processor p is up.
func (r *Router) Alive(p int) bool { return p >= 0 && p < len(r.alive) && r.alive[p] }

// Diverted returns how many queries were re-routed away from dead
// processors.
func (r *Router) Diverted() int { return r.divertedTotal }

// DivertedFrom returns a copy of the per-processor diversion counts (how
// many queries each processor lost to being down when picked).
func (r *Router) DivertedFrom() []int { return append([]int(nil), r.diverted...) }

// StolenBy returns a copy of the per-processor steal counts (how many
// dispatches each processor satisfied by stealing foreign work).
func (r *Router) StolenBy() []int { return append([]int(nil), r.stolenBy...) }

// Procs returns the number of processor connections.
func (r *Router) Procs() int { return len(r.queues) }

// Strategy returns the routing strategy in use.
func (r *Router) Strategy() Strategy { return r.strategy }

// QueueLen returns the number of queries waiting for processor p.
func (r *Router) QueueLen(p int) int { return len(r.queues[p]) - r.heads[p] }

// Pending returns the total queries waiting across all queues.
func (r *Router) Pending() int {
	total := 0
	for p := range r.queues {
		total += r.QueueLen(p)
	}
	return total
}

// Stolen returns how many dispatches were satisfied by stealing.
func (r *Router) Stolen() int { return r.stolen }

// Assigned returns a copy of the per-processor assignment counts (where
// the strategy originally sent each query).
func (r *Router) Assigned() []int { return append([]int(nil), r.assigned...) }

// Executed returns a copy of the per-processor dispatch counts (where each
// query actually ran, after stealing).
func (r *Router) Executed() []int { return append([]int(nil), r.executed...) }

// Route asks the strategy for a destination and enqueues q there. It
// returns the chosen processor.
func (r *Router) Route(q query.Query) int {
	loads := r.loads
	for p := range r.queues {
		loads[p] = r.QueueLen(p)
	}
	p := r.strategy.Pick(q, loads)
	if p < 0 || p >= len(r.queues) {
		p = 0
	}
	if !r.alive[p] {
		r.diverted[p]++
		r.divertedTotal++
		p = r.divert(q, loads)
	}
	r.queues[p] = append(r.queues[p], q)
	r.assigned[p]++
	r.strategy.Observe(q, p)
	return p
}

// divert picks the best live processor for q: the closest one when the
// strategy is distance-aware (the paper's "second, third, or so on closest
// processor"), the least loaded otherwise. It panics if no processor is
// alive — an unservable deployment is a caller bug.
func (r *Router) divert(q query.Query, loads []int) int {
	da, aware := r.strategy.(DistanceAware)
	best, bestScore := -1, 0.0
	for p := range r.queues {
		if !r.alive[p] {
			continue
		}
		var score float64
		if aware {
			score = da.DistanceTo(q, p)
		} else {
			score = float64(loads[p])
		}
		if best < 0 || score < bestScore {
			best, bestScore = p, score
		}
	}
	if best < 0 {
		panic("router: no live processors")
	}
	return best
}

// RouteAll routes a batch in order.
func (r *Router) RouteAll(qs []query.Query) {
	for _, q := range qs {
		r.Route(q)
	}
}

// Next hands processor p its next query. When p's own queue is empty and
// stealing is enabled, a query is stolen from another queue: with a
// DistanceAware strategy, the pending head closest to p (so the stolen
// work still matches p's cache contents); otherwise the oldest query of
// the longest queue. ok is false when no work remains anywhere (or p's
// queue is empty and stealing is disabled).
//
// A dead processor gets no work — not even its own backlog — so ok is
// always false for it; queries queued before it died are recovered by the
// live processors through stealing.
func (r *Router) Next(p int) (query.Query, bool) {
	if p < 0 || p >= len(r.alive) || !r.alive[p] {
		return query.Query{}, false
	}
	if q, ok := r.pop(p); ok {
		r.executed[p]++
		return q, true
	}
	if !r.stealing {
		return query.Query{}, false
	}
	if da, ok := r.strategy.(DistanceAware); ok {
		// Locality-aware steal: take the pending query nearest to p
		// (the router "rearranges the future queries", Section 3.2), so
		// stolen work still matches the thief's cache contents.
		victim, slot := -1, -1
		best := 0.0
		for v := range r.queues {
			for i := r.heads[v]; i < len(r.queues[v]); i++ {
				d := da.DistanceTo(r.queues[v][i], p)
				if victim < 0 || d < best {
					victim, slot, best = v, i, d
				}
			}
		}
		if victim < 0 {
			return query.Query{}, false
		}
		q := r.queues[victim][slot]
		r.queues[victim] = append(r.queues[victim][:slot], r.queues[victim][slot+1:]...)
		r.stolen++
		r.stolenBy[p]++
		r.executed[p]++
		return q, true
	}
	// Blind steal: the oldest query of the longest queue.
	victim, longest := -1, 0
	for v := range r.queues {
		if l := r.QueueLen(v); l > longest {
			victim, longest = v, l
		}
	}
	if victim < 0 {
		return query.Query{}, false
	}
	q, _ := r.pop(victim)
	r.stolen++
	r.stolenBy[p]++
	r.executed[p]++
	return q, true
}

func (r *Router) pop(p int) (query.Query, bool) {
	if r.QueueLen(p) == 0 {
		return query.Query{}, false
	}
	q := r.queues[p][r.heads[p]]
	r.heads[p]++
	// Reclaim space once the consumed prefix dominates.
	if r.heads[p] > 64 && r.heads[p]*2 > len(r.queues[p]) {
		r.queues[p] = append(r.queues[p][:0], r.queues[p][r.heads[p]:]...)
		r.heads[p] = 0
	}
	return q, true
}
