package router

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/query"
)

func q(id int, node graph.NodeID) query.Query {
	return query.Query{ID: id, Node: node, Type: query.NeighborAgg, Hops: 2}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(NewHash(), 0, true); err == nil {
		t.Fatal("accepted zero processors")
	}
	if _, err := New(nil, 2, true); err == nil {
		t.Fatal("accepted nil strategy")
	}
}

func TestNextReadyBalances(t *testing.T) {
	s := NewNextReady()
	r, err := New(s, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		r.Route(q(i, graph.NodeID(i)))
	}
	for p := 0; p < 4; p++ {
		if got := r.QueueLen(p); got != 10 {
			t.Fatalf("queue %d holds %d, want 10 (assigned %v)", p, got, r.Assigned())
		}
	}
}

func TestHashIsModulo(t *testing.T) {
	s := NewHash()
	loads := make([]int, 7)
	for node := graph.NodeID(0); node < 100; node++ {
		want := int(node) % 7
		if got := s.Pick(q(0, node), loads); got != want {
			t.Fatalf("hash(%d) = %d, want %d", node, got, want)
		}
	}
	if s.DecisionUnits() != 1 {
		t.Fatal("hash decision units")
	}
}

func TestRouterFIFOPerQueue(t *testing.T) {
	r, _ := New(NewHash(), 2, false)
	// Nodes 0,2,4 hash to queue 0 in order.
	for _, n := range []graph.NodeID{0, 2, 4} {
		r.Route(q(int(n), n))
	}
	for want := 0; want <= 4; want += 2 {
		got, ok := r.Next(0)
		if !ok || got.ID != want {
			t.Fatalf("Next(0) = %v/%v, want id %d", got.ID, ok, want)
		}
	}
	if _, ok := r.Next(0); ok {
		t.Fatal("empty queue returned work without stealing")
	}
}

func TestStealingFromLongestQueue(t *testing.T) {
	r, _ := New(NewHash(), 3, true)
	// All queries hash to processor 0 (nodes ≡ 0 mod 3).
	for i := 0; i < 9; i++ {
		r.Route(q(i, graph.NodeID(i*3)))
	}
	if r.QueueLen(0) != 9 {
		t.Fatalf("setup failed: queue 0 holds %d", r.QueueLen(0))
	}
	// Processor 2 steals the oldest entry.
	got, ok := r.Next(2)
	if !ok || got.ID != 0 {
		t.Fatalf("steal = %+v/%v, want id 0", got, ok)
	}
	if r.Stolen() != 1 {
		t.Fatalf("Stolen = %d", r.Stolen())
	}
	// Own work still prioritised for processor 0.
	got, _ = r.Next(0)
	if got.ID != 1 {
		t.Fatalf("owner pop = %d, want 1", got.ID)
	}
	exec := r.Executed()
	if exec[2] != 1 || exec[0] != 1 {
		t.Fatalf("executed = %v", exec)
	}
}

func TestStealingDrainsEverything(t *testing.T) {
	r, _ := New(NewHash(), 4, true)
	for i := 0; i < 100; i++ {
		r.Route(q(i, graph.NodeID(i)))
	}
	seen := map[int]bool{}
	p := 0
	for {
		qq, ok := r.Next(p % 4)
		if !ok {
			break
		}
		if seen[qq.ID] {
			t.Fatalf("query %d dispatched twice", qq.ID)
		}
		seen[qq.ID] = true
		p++
	}
	if len(seen) != 100 {
		t.Fatalf("drained %d queries, want 100", len(seen))
	}
	if r.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", r.Pending())
	}
}

func TestDeadProcessorDiversion(t *testing.T) {
	r, _ := New(NewHash(), 3, true)
	r.SetAlive(0, false)
	// Node 0 hashes to processor 0, which is down: the query must land on
	// a live processor.
	p := r.Route(q(0, 0))
	if p == 0 {
		t.Fatal("query routed to a dead processor")
	}
	if r.Diverted() != 1 {
		t.Fatalf("Diverted = %d, want 1", r.Diverted())
	}
	if r.Alive(0) || !r.Alive(1) {
		t.Fatal("alive bookkeeping wrong")
	}
	// Recovery: bring it back up and the hash target is honoured again.
	r.SetAlive(0, true)
	if p := r.Route(q(1, 0)); p != 0 {
		t.Fatalf("recovered processor not used: routed to %d", p)
	}
}

func TestDeadProcessorDistanceAwareDiversion(t *testing.T) {
	s, _ := buildLandmarkStrategy(t, 2, 0)
	r, err := New(s, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	loads := []int{0, 0}
	left := s.Pick(q(0, 1), loads)
	r.SetAlive(left, false)
	// A query belonging to the dead processor's region diverts to the
	// other one (the "second closest processor", Section 3.4.1).
	if p := r.Route(q(0, 1)); p == left {
		t.Fatal("query routed to dead processor")
	}
}

func TestAllDeadPanics(t *testing.T) {
	r, _ := New(NewHash(), 2, true)
	r.SetAlive(0, false)
	r.SetAlive(1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("routing with no live processors did not panic")
		}
	}()
	r.Route(q(0, 0))
}

func TestNoStealingLeavesQueues(t *testing.T) {
	r, _ := New(NewHash(), 2, false)
	r.Route(q(0, 0)) // queue 0
	if _, ok := r.Next(1); ok {
		t.Fatal("stealing disabled but Next(1) returned foreign work")
	}
	if r.QueueLen(0) != 1 {
		t.Fatal("query lost")
	}
}

func buildLandmarkStrategy(t *testing.T, procs int, loadFactor float64) (*Landmark, *graph.Graph) {
	t.Helper()
	g := gen.Grid(10, 1) // path: two clear regions
	ls := []graph.NodeID{0, 9}
	idx := landmark.BuildIndex(g, ls, 0)
	a := landmark.Assign(idx, procs)
	return NewLandmark(a, loadFactor), g
}

func TestLandmarkRoutesByRegion(t *testing.T) {
	s, _ := buildLandmarkStrategy(t, 2, 0)
	loads := []int{0, 0}
	left := s.Pick(q(0, 1), loads)
	right := s.Pick(q(1, 8), loads)
	if left == right {
		t.Fatalf("path endpoints routed to same processor %d", left)
	}
	// Nearby nodes co-route.
	if s.Pick(q(2, 2), loads) != left {
		t.Fatal("node 2 should join node 1's processor")
	}
	if s.Pick(q(3, 7), loads) != right {
		t.Fatal("node 7 should join node 8's processor")
	}
	if s.DecisionUnits() != 2 {
		t.Fatalf("DecisionUnits = %d", s.DecisionUnits())
	}
}

func TestLandmarkLoadBalancing(t *testing.T) {
	// Equation 3: a hot processor is abandoned once load/loadFactor
	// exceeds the distance gap.
	s, _ := buildLandmarkStrategy(t, 2, 1) // loadFactor 1: load dominates
	left := s.Pick(q(0, 1), []int{0, 0})
	other := 1 - left
	// Pile load on the preferred side: distance gap for node 1 is
	// (9-1)-(1) = 7ish, so load 20 overwhelms it.
	loads := []int{0, 0}
	loads[left] = 20
	if got := s.Pick(q(1, 1), loads); got != other {
		t.Fatalf("hot processor retained the query (got %d)", got)
	}
	// With a huge load factor the same load is ignored.
	s2, _ := buildLandmarkStrategy(t, 2, 1e9)
	if got := s2.Pick(q(2, 1), loads); got != left {
		t.Fatalf("load factor 1e9 should ignore load (got %d)", got)
	}
}

func buildEmbedStrategy(t *testing.T, procs int, alpha, loadFactor float64) (*Embed, *graph.Graph) {
	t.Helper()
	g := gen.Grid(12, 1)
	idx := landmark.BuildIndex(g, []graph.NodeID{0, 11}, 0)
	emb, err := embed.Build(g, idx, embed.Options{Dimensions: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewEmbed(emb, procs, alpha, loadFactor, 7)
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func TestEmbedValidation(t *testing.T) {
	g := gen.Grid(4, 1)
	idx := landmark.BuildIndex(g, []graph.NodeID{0, 3}, 0)
	emb, err := embed.Build(g, idx, embed.Options{Dimensions: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEmbed(emb, 0, 0.5, 20, 1); err == nil {
		t.Fatal("accepted zero processors")
	}
	if _, err := NewEmbed(emb, 2, -0.1, 20, 1); err == nil {
		t.Fatal("accepted alpha < 0")
	}
	if _, err := NewEmbed(emb, 2, 1.1, 20, 1); err == nil {
		t.Fatal("accepted alpha > 1")
	}
}

func TestEmbedEMAConverges(t *testing.T) {
	s, _ := buildEmbedStrategy(t, 2, 0.5, 0)
	loads := []int{0, 0}
	// Send many queries on node 1's end; the receiving processor's mean
	// must drift towards node 1's coordinates.
	var chosen int
	for i := 0; i < 30; i++ {
		chosen = s.Pick(q(i, 1), loads)
		s.Observe(q(i, 1), chosen)
	}
	c := s.emb.Coords(1)
	if d := distTo(s.Mean(chosen), c); d > 1.0 {
		t.Fatalf("EMA did not converge: distance %v", d)
	}
	// Stickiness: nearby node 2 should now prefer the same processor.
	if got := s.Pick(q(99, 2), loads); got != chosen {
		t.Fatalf("nearby query routed to %d, want %d", got, chosen)
	}
}

func TestEmbedAlphaOneFreezesMeans(t *testing.T) {
	s, _ := buildEmbedStrategy(t, 2, 1.0, 0)
	before := append([]float64(nil), s.Mean(0)...)
	s.Observe(q(0, 3), 0)
	after := s.Mean(0)
	for j := range before {
		if before[j] != after[j] {
			t.Fatal("alpha=1 should retain the initial mean")
		}
	}
}

func TestEmbedAlphaZeroTracksLastQuery(t *testing.T) {
	s, g := buildEmbedStrategy(t, 2, 0.0, 0)
	_ = g
	s.Observe(q(0, 5), 1)
	c := s.emb.Coords(5)
	m := s.Mean(1)
	for j := range m {
		if m[j] != float64(c[j]) {
			t.Fatalf("alpha=0 mean != last coords at dim %d", j)
		}
	}
}

func TestEmbedUnknownNodeFallsBack(t *testing.T) {
	s, _ := buildEmbedStrategy(t, 3, 0.5, 20)
	loads := []int{5, 0, 7}
	if got := s.Pick(q(0, 40000), loads); got != 1 {
		t.Fatalf("unembedded node routed to %d, want least-loaded 1", got)
	}
	// Observe on unknown node must not corrupt means.
	before := append([]float64(nil), s.Mean(1)...)
	s.Observe(q(0, 40000), 1)
	for j := range before {
		if s.Mean(1)[j] != before[j] {
			t.Fatal("Observe on unknown node mutated the mean")
		}
	}
}

func TestEmbedDecisionUnits(t *testing.T) {
	s, _ := buildEmbedStrategy(t, 4, 0.5, 20)
	if s.DecisionUnits() != 4*3 {
		t.Fatalf("DecisionUnits = %d, want 12 (P*D)", s.DecisionUnits())
	}
}

func TestTopologyLocalityEndToEnd(t *testing.T) {
	// The defining smart-routing property, checked for both strategies on
	// a 2-region graph: queries from one hotspot overwhelmingly co-route.
	g := gen.Grid(20, 1)
	idx := landmark.BuildIndex(g, []graph.NodeID{0, 19}, 0)
	a := landmark.Assign(idx, 2)
	emb, err := embed.Build(g, idx, embed.Options{Dimensions: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	embedS, err := NewEmbed(emb, 2, 0.5, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]Strategy{
		"landmark": NewLandmark(a, 0),
		"embed":    embedS,
	} {
		loads := []int{0, 0}
		// Hotspot at nodes 1..4 vs hotspot at 15..18.
		var leftProcs, rightProcs []int
		for i := 1; i <= 4; i++ {
			p := s.Pick(q(i, graph.NodeID(i)), loads)
			s.Observe(q(i, graph.NodeID(i)), p)
			leftProcs = append(leftProcs, p)
		}
		for i := 15; i <= 18; i++ {
			p := s.Pick(q(i, graph.NodeID(i)), loads)
			s.Observe(q(i, graph.NodeID(i)), p)
			rightProcs = append(rightProcs, p)
		}
		same := func(ps []int) bool {
			for _, p := range ps {
				if p != ps[0] {
					return false
				}
			}
			return true
		}
		if !same(leftProcs) || !same(rightProcs) {
			t.Fatalf("%s: hotspot queries scattered: left=%v right=%v", name, leftProcs, rightProcs)
		}
		if leftProcs[0] == rightProcs[0] {
			t.Fatalf("%s: both hotspots on one processor", name)
		}
	}
}
