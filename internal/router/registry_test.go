package router

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/metrics"
	"repro/internal/query"
)

func TestRegistryBuiltins(t *testing.T) {
	for name, id := range map[string]int{
		"nocache": 0, "nextready": 1, "hash": 2, "landmark": 3, "embed": 4,
	} {
		reg, ok := LookupName(name)
		if !ok {
			t.Fatalf("built-in %q not registered", name)
		}
		if reg.ID != id {
			t.Fatalf("%q id = %d, want %d", name, reg.ID, id)
		}
		if back, ok := LookupID(id); !ok || back.Name != name {
			t.Fatalf("id %d resolves to %+v, want %q", id, back, name)
		}
	}
	if _, ok := LookupName("bogus"); ok {
		t.Fatal("bogus name resolved")
	}
}

func TestRegistryBuildBaselines(t *testing.T) {
	for _, name := range []string{"nocache", "nextready", "hash"} {
		s, err := Build(name, Resources{Procs: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p := s.Pick(query.Query{Node: 5}, []int{0, 0, 0}); p < 0 || p > 2 {
			t.Fatalf("%s picked %d", name, p)
		}
	}
	if _, err := Build("bogus", Resources{}); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("bogus build error = %v", err)
	}
}

func TestRegistrySmartStrategiesNeedPrep(t *testing.T) {
	// Without preprocessing products the smart constructors must refuse.
	if _, err := Build("landmark", Resources{Procs: 2, LoadFactor: 20}); err == nil {
		t.Fatal("landmark built without assignment")
	}
	if _, err := Build("embed", Resources{Procs: 2, Alpha: 0.5, LoadFactor: 20}); err == nil {
		t.Fatal("embed built without embedding")
	}
	// With them, they build and route.
	g := gen.Grid(10, 1)
	idx := landmark.BuildIndex(g, []graph.NodeID{0, 9}, 0)
	s, err := Build("landmark", Resources{Procs: 2, LoadFactor: 20, Assignment: landmark.Assign(idx, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "landmark" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestRegisterCustom(t *testing.T) {
	ctor := func(r Resources) (Strategy, error) { return NewHash(), nil }
	id, err := Register("registry-test-custom", PrepNone, ctor)
	if err != nil {
		t.Fatal(err)
	}
	if id < firstCustomID {
		t.Fatalf("custom id %d collides with built-ins", id)
	}
	if _, err := Register("registry-test-custom", PrepNone, ctor); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := Register("", PrepNone, ctor); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := Register("registry-test-nil", PrepNone, nil); err == nil {
		t.Fatal("nil constructor accepted")
	}
	names := Names()
	found := false
	for _, n := range names {
		if n == "registry-test-custom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v missing custom entry", names)
	}
	// Built-ins come first, in id order.
	if names[0] != "nocache" || names[4] != "embed" {
		t.Fatalf("Names() order wrong: %v", names)
	}
}

// adaptiveProbe flips destination once ObserveStats sees any hits —
// exercising the StatsObserver feedback path in isolation.
type adaptiveProbe struct {
	swapped bool
}

func (s *adaptiveProbe) Name() string { return "probe" }
func (s *adaptiveProbe) Pick(q query.Query, loads []int) int {
	if s.swapped {
		return 1
	}
	return 0
}
func (s *adaptiveProbe) Observe(query.Query, int) {}
func (s *adaptiveProbe) DecisionUnits() int       { return 1 }
func (s *adaptiveProbe) ObserveStats(c metrics.CacheCounters) {
	if c.Hits > 0 {
		s.swapped = true
	}
}

func TestStatsObserverInterface(t *testing.T) {
	var s Strategy = &adaptiveProbe{}
	so, ok := s.(StatsObserver)
	if !ok {
		t.Fatal("probe does not satisfy StatsObserver")
	}
	if s.Pick(query.Query{}, []int{0, 0}) != 0 {
		t.Fatal("pre-swap pick")
	}
	so.ObserveStats(metrics.CacheCounters{Hits: 1})
	if s.Pick(query.Query{}, []int{0, 0}) != 1 {
		t.Fatal("post-swap pick")
	}
}
