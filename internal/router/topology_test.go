package router

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/query"
	"repro/internal/topology"
)

func buildTestEmbedding(t *testing.T, g *graph.Graph, idx *landmark.Index) *embed.Embedding {
	t.Helper()
	emb, err := embed.Build(g, idx, embed.Options{Dimensions: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return emb
}

func routeN(r *Router, n int) {
	for i := 0; i < n; i++ {
		r.Route(query.Query{ID: i, Node: graph.NodeID(i * 37)})
	}
}

func TestApplyViewGrowsSlots(t *testing.T) {
	tr := topology.NewTracker(2, nil)
	r, err := NewFromView(NewStableHash(2), tr.View(), true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Procs() != 2 || r.Epoch() != 1 {
		t.Fatalf("initial procs/epoch = %d/%d", r.Procs(), r.Epoch())
	}
	slot, v := tr.Join("")
	if moved := r.ApplyView(v); moved != 0 {
		t.Fatalf("join reassigned %d queries", moved)
	}
	if r.Procs() != 3 || r.Epoch() != 2 || !r.Alive(slot) {
		t.Fatalf("after join: procs=%d epoch=%d alive=%v", r.Procs(), r.Epoch(), r.Alive(slot))
	}
	// New member receives work.
	routeN(r, 300)
	if r.Assigned()[slot] == 0 {
		t.Fatal("joined member assigned no work")
	}
	// Stale views are ignored.
	if r.ApplyView(topology.Static(1)) != 0 || r.Procs() != 3 {
		t.Fatal("stale view applied")
	}
}

func TestApplyViewReassignsDepartedBacklog(t *testing.T) {
	tr := topology.NewTracker(3, nil)
	r, err := NewFromView(NewStableHash(3), tr.View(), true)
	if err != nil {
		t.Fatal(err)
	}
	routeN(r, 90)
	leaving := 1
	backlog := r.QueueLen(leaving)
	if backlog == 0 {
		t.Fatal("test needs a backlog on the leaving member")
	}
	pendingBefore := r.Pending()
	v, err := tr.Leave(leaving)
	if err != nil {
		t.Fatal(err)
	}
	moved := r.ApplyView(v)
	if moved != backlog {
		t.Fatalf("reassigned %d, want the whole %d-query backlog", moved, backlog)
	}
	if r.QueueLen(leaving) != 0 {
		t.Fatal("departed member still has queued work")
	}
	if r.Pending() != pendingBefore {
		t.Fatalf("pending %d != %d: queries lost in transition", r.Pending(), pendingBefore)
	}
	if r.Reassigned() != int64(backlog) {
		t.Fatalf("Reassigned() = %d, want %d", r.Reassigned(), backlog)
	}
	if _, ok := r.Next(leaving); ok {
		t.Fatal("departed member handed work")
	}
	// The transition shows up in the event log.
	evs := r.Events()
	if len(evs) != 1 || evs[0].Left != 1 || evs[0].Reassigned != int64(backlog) || evs[0].Epoch != v.Epoch {
		t.Fatalf("events = %+v", evs)
	}
	// Every query still drains through the live members.
	drained := 0
	for p := 0; p < r.Procs(); p++ {
		for {
			if _, ok := r.Next(p); !ok {
				break
			}
			drained++
		}
	}
	if drained != 90 {
		t.Fatalf("drained %d of 90 queries", drained)
	}
}

// TestStableHashRemapBound pins the acceptance criterion at strategy level:
// growing 4→6 moves at most ~1/3 of a sampled key set, while naive modulo
// hashing reshuffles most of it.
func TestStableHashRemapBound(t *testing.T) {
	const keys = 4000
	s4, s6 := NewStableHash(4), NewStableHash(6)
	h := NewHash()
	loads4, loads6 := make([]int, 4), make([]int, 6)
	stableMoved, naiveMoved := 0, 0
	for k := 0; k < keys; k++ {
		q := query.Query{Node: graph.NodeID(k)}
		if s4.Pick(q, loads4) != s6.Pick(q, loads6) {
			stableMoved++
		}
		if h.Pick(q, loads4) != h.Pick(q, loads6) {
			naiveMoved++
		}
	}
	if frac := float64(stableMoved) / keys; frac > 0.40 {
		t.Fatalf("stablehash moved %.1f%% on 4->6, want ~33%%", 100*frac)
	}
	if frac := float64(naiveMoved) / keys; frac < 0.6 {
		t.Fatalf("modulo hash moved only %.1f%% on 4->6 — comparison baseline broken", 100*frac)
	}
}

// TestStableHashTopologyFollowsMembership pins the fail-vs-leave
// distinction: a Down member keeps its share of the key space (the
// strategy still picks it, the router diverts — §3.4.1 — and its keys
// return on revive), while a Left member is permanently remapped and the
// strategy itself stops picking it.
func TestStableHashTopologyFollowsMembership(t *testing.T) {
	tr := topology.NewTracker(4, nil)
	s := NewStableHash(4)
	r, err := NewFromView(s, tr.View(), true)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tr.Fail(2)
	if err != nil {
		t.Fatal(err)
	}
	r.ApplyView(v)
	// The strategy keeps the failed member in its model; the router
	// diverts every such pick, so the failed queue never grows.
	routeN(r, 400)
	if r.QueueLen(2) != 0 {
		t.Fatal("router queued work for a failed member")
	}
	if r.Diverted() == 0 {
		t.Fatal("no diversions recorded — failed member dropped from the key space instead")
	}
	// Revive restores its keys (no remap happened meanwhile).
	if v, err = tr.Revive(2); err != nil {
		t.Fatal(err)
	}
	r.ApplyView(v)
	loads := make([]int, 4)
	saw := false
	for k := 0; k < 500 && !saw; k++ {
		saw = s.Pick(query.Query{Node: graph.NodeID(k)}, loads) == 2
	}
	if !saw {
		t.Fatal("revived member never picked again")
	}
	// A clean leave, by contrast, drops the member from the strategy.
	if v, err = tr.Leave(2); err != nil {
		t.Fatal(err)
	}
	r.ApplyView(v)
	for k := 0; k < 500; k++ {
		if s.Pick(query.Query{Node: graph.NodeID(k)}, loads) == 2 {
			t.Fatal("stablehash picked a departed member")
		}
	}
}

func TestLandmarkReassignsOnTopologyChange(t *testing.T) {
	g := gen.Grid(12, 1) // 144-node grid
	idx := landmark.BuildIndex(g, []graph.NodeID{0, 11, 132, 143}, 0)
	s := NewLandmarkElastic(idx, landmark.Assign(idx, 2), 0)
	tr := topology.NewTracker(2, nil)
	r, err := NewFromView(s, tr.View(), true)
	if err != nil {
		t.Fatal(err)
	}
	_, v := tr.Join("")
	r.ApplyView(v)
	if s.assign.Procs() != 3 {
		t.Fatalf("assignment procs = %d after join, want 3", s.assign.Procs())
	}
	loads := make([]int, 3)
	got := map[int]bool{}
	for u := 0; u < 144; u++ {
		got[s.Pick(query.Query{Node: graph.NodeID(u)}, loads)] = true
	}
	if !got[2] {
		t.Fatal("joined member owns no landmark region")
	}
	// DistanceTo answers for the new member too.
	if d := s.DistanceTo(query.Query{Node: 0}, 2); d >= 1e6 {
		t.Fatalf("DistanceTo(joined) = %v", d)
	}
}

func TestEmbedMeansSurviveTopologyChange(t *testing.T) {
	g := gen.Grid(8, 1)
	idx := landmark.BuildIndex(g, []graph.NodeID{0, 63}, 0)
	emb := buildTestEmbedding(t, g, idx)
	s, err := NewEmbed(emb, 2, 0.5, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := topology.NewTracker(2, nil)
	r, err := NewFromView(s, tr.View(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Teach slot 0 a mean, then scale out.
	for i := 0; i < 50; i++ {
		s.Observe(query.Query{Node: 0}, 0)
	}
	learned := append([]float64(nil), s.Mean(0)...)
	slot, v := tr.Join("")
	r.ApplyView(v)
	if s.Mean(slot) == nil {
		t.Fatal("joined slot has no mean")
	}
	for j := range learned {
		if s.Mean(0)[j] != learned[j] {
			t.Fatal("surviving slot's learned mean was reset by the epoch change")
		}
	}
	// The joined slot's mean is deterministic: a second strategy seeing the
	// same topology change produces the identical value.
	s2, err := NewEmbed(emb, 2, 0.5, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetTopology(v)
	for j := range s.Mean(slot) {
		if s.Mean(slot)[j] != s2.Mean(slot)[j] {
			t.Fatal("joined-slot mean depends on more than (seed, slot)")
		}
	}
}
