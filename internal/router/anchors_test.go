package router

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/query"
)

// recordingAnchors is a strategy with its own multi-anchor hook, to prove
// the hook takes precedence over per-anchor adaptation.
type recordingAnchors struct {
	Hash
	calls int
}

func (s *recordingAnchors) PickAnchors(q query.Query, anchors []graph.NodeID, loads []int) []int {
	s.calls++
	picks := make([]int, len(anchors))
	for i := range picks {
		picks[i] = 1 // pack everything on processor 1
	}
	return picks
}

func mq(anchors ...graph.NodeID) query.Query {
	return query.Query{
		Type:        query.BoundedReach,
		Node:        anchors[0],
		Anchors:     anchors,
		Target:      99,
		Hops:        2,
		VisitBudget: 4,
		Dir:         graph.Out,
	}
}

func TestPickAnchorsDefaultsToPerAnchor(t *testing.T) {
	// Hash has no hook: each anchor routes as a single-seed query on that
	// node (anchor mod procs).
	loads := []int{0, 0, 0}
	picks := PickAnchors(NewHash(), mq(3, 4, 6), []graph.NodeID{3, 4, 6}, loads)
	want := []int{0, 1, 0}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("picks = %v, want %v", picks, want)
		}
	}
	// The fan-out feeds back into loads as it commits.
	if loads[0] != 2 || loads[1] != 1 || loads[2] != 0 {
		t.Fatalf("loads after fan-out = %v", loads)
	}
}

func TestPickAnchorsUsesHook(t *testing.T) {
	s := &recordingAnchors{}
	picks := PickAnchors(s, mq(3, 4), []graph.NodeID{3, 4}, []int{0, 0, 0})
	if s.calls != 1 {
		t.Fatalf("hook called %d times", s.calls)
	}
	if picks[0] != 1 || picks[1] != 1 {
		t.Fatalf("hook picks ignored: %v", picks)
	}
}

func TestRouteAnchorsAccounting(t *testing.T) {
	r, _ := New(NewHash(), 3, true)
	picks := r.RouteAnchors(mq(3, 4, 6), []graph.NodeID{3, 4, 6})
	if picks[0] != 0 || picks[1] != 1 || picks[2] != 0 {
		t.Fatalf("picks = %v", picks)
	}
	// Subtasks are assigned and executed, never enqueued.
	if got := r.Assigned(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("assigned = %v", got)
	}
	if got := r.Executed(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("executed = %v", got)
	}
	if r.Pending() != 0 {
		t.Fatalf("subtasks left %d queries pending", r.Pending())
	}
}

func TestRouteAnchorsDivertsFromDead(t *testing.T) {
	r, _ := New(NewHash(), 3, true)
	r.SetAlive(0, false)
	picks := r.RouteAnchors(mq(3, 6), []graph.NodeID{3, 6}) // both hash to 0
	for i, p := range picks {
		if p == 0 {
			t.Fatalf("subtask %d routed to the dead processor", i)
		}
	}
	if r.Diverted() != 2 {
		t.Fatalf("Diverted = %d, want 2", r.Diverted())
	}
}
