package router

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/metrics"
)

// Prep enumerates how much smart-routing preprocessing a strategy needs
// before it can be constructed. Each level includes the previous one:
// embedding construction requires the landmark index.
type Prep int

const (
	// PrepNone: the strategy runs on the raw query stream (baselines).
	PrepNone Prep = iota
	// PrepLandmarks: needs the landmark selection + BFS distance index and
	// the node→processor assignment (Section 3.4.1).
	PrepLandmarks
	// PrepEmbedding: additionally needs the graph embedding (Section 3.4.2).
	PrepEmbedding
)

// Resources carries the deployment-time inputs a strategy constructor may
// draw on. Fields beyond the Prep level the strategy registered with may
// be nil; constructors must check what they use.
type Resources struct {
	// Procs is the processing-tier size; Pick must return values in
	// [0, Procs).
	Procs int
	// Seed drives any stochastic initialisation (identical seeds give
	// identical strategies).
	Seed int64
	// LoadFactor is Eq 3/7's load-balancing divisor (0 disables the load
	// term).
	LoadFactor float64
	// Alpha is Eq 5's EMA smoothing parameter.
	Alpha float64
	// Graph is the dataset being served (nil when the deployment hides it,
	// e.g. a baseline networked router).
	Graph *graph.Graph
	// Index is the landmark BFS distance index (non-nil when the
	// registration declared PrepLandmarks or higher). Topology-aware
	// strategies keep it so they can re-derive processor assignments when
	// the tier scales.
	Index *landmark.Index
	// Assignment is the landmark node→processor distance table (non-nil
	// when the registration declared PrepLandmarks or higher).
	Assignment *landmark.Assignment
	// Embedding is the graph embedding (non-nil when the registration
	// declared PrepEmbedding).
	Embedding *embed.Embedding
}

// Constructor builds a fresh strategy instance for one deployment/run.
type Constructor func(Resources) (Strategy, error)

// StatsObserver is optionally implemented by strategies that adapt to the
// system's observed runtime behaviour: after each executed query the
// engine (or networked router) feeds the cumulative cache counters, so a
// strategy can e.g. switch schemes once the hit rate crosses a threshold.
type StatsObserver interface {
	ObserveStats(c metrics.CacheCounters)
}

// Registration is one registry entry binding a policy name to its id and
// constructor.
type Registration struct {
	// Name is the policy name used by Policy.String, ParsePolicy and the
	// daemons' -policy flags.
	Name string
	// ID is the stable integer the core Policy type wraps.
	ID int
	// Prep declares the preprocessing the constructor's Resources must
	// carry.
	Prep Prep
	// New builds the strategy.
	New Constructor
}

var (
	regMu  sync.RWMutex
	byName = make(map[string]*Registration)
	byID   = make(map[int]*Registration)
	nextID int
)

// The built-in policy ids, matching core.Policy's constants.
const (
	idNoCache = iota
	idNextReady
	idHash
	idLandmark
	idEmbed
	idStableHash
	firstCustomID // user registrations start here
)

func init() {
	nextReady := func(Resources) (Strategy, error) { return NewNextReady(), nil }
	mustRegisterAt(idNoCache, "nocache", PrepNone, nextReady)
	mustRegisterAt(idNextReady, "nextready", PrepNone, nextReady)
	mustRegisterAt(idHash, "hash", PrepNone, func(Resources) (Strategy, error) { return NewHash(), nil })
	mustRegisterAt(idLandmark, "landmark", PrepLandmarks, func(r Resources) (Strategy, error) {
		if r.Assignment == nil {
			return nil, fmt.Errorf("router: landmark strategy needs the landmark assignment (preprocessing did not run?)")
		}
		return NewLandmarkElastic(r.Index, r.Assignment, r.LoadFactor), nil
	})
	mustRegisterAt(idEmbed, "embed", PrepEmbedding, func(r Resources) (Strategy, error) {
		if r.Embedding == nil {
			return nil, fmt.Errorf("router: embed strategy needs the graph embedding (preprocessing did not run?)")
		}
		return NewEmbed(r.Embedding, r.Procs, r.Alpha, r.LoadFactor, r.Seed+1)
	})
	mustRegisterAt(idStableHash, "stablehash", PrepNone, func(r Resources) (Strategy, error) {
		if r.Procs <= 0 {
			return nil, fmt.Errorf("router: stablehash strategy needs procs > 0, got %d", r.Procs)
		}
		return NewStableHash(r.Procs), nil
	})
	nextID = firstCustomID
}

func mustRegisterAt(id int, name string, prep Prep, ctor Constructor) {
	byName[name] = &Registration{Name: name, ID: id, Prep: prep, New: ctor}
	byID[id] = byName[name]
}

// Register adds a named strategy to the registry and returns its allocated
// id. Built-ins occupy ids 0–5; registered strategies get increasing ids
// after them, in registration order. Empty and duplicate names error.
func Register(name string, prep Prep, ctor Constructor) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("router: empty strategy name")
	}
	if ctor == nil {
		return 0, fmt.Errorf("router: nil constructor for strategy %q", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := byName[name]; ok {
		return 0, fmt.Errorf("router: strategy %q already registered", name)
	}
	id := nextID
	nextID++
	r := &Registration{Name: name, ID: id, Prep: prep, New: ctor}
	byName[name] = r
	byID[id] = r
	return id, nil
}

// LookupName returns the registration for a policy name.
func LookupName(name string) (Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	if r, ok := byName[name]; ok {
		return *r, true
	}
	return Registration{}, false
}

// LookupID returns the registration for a policy id.
func LookupID(id int) (Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	if r, ok := byID[id]; ok {
		return *r, true
	}
	return Registration{}, false
}

// Names lists every registered policy name in id order (built-ins first,
// then user strategies in registration order).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = byID[id].Name
	}
	return out
}

// Build constructs the named strategy from res.
func Build(name string, res Resources) (Strategy, error) {
	reg, ok := LookupName(name)
	if !ok {
		return nil, fmt.Errorf("router: unknown strategy %q", name)
	}
	return reg.New(res)
}
